// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI), plus ablations of the design choices called out in
// DESIGN.md §4. Each benchmark prints the same rows/series the paper
// reports (visible with `go test -bench=. -v`) and exports the headline
// numbers as custom benchmark metrics.
//
// Scale note: benchmark workloads are laptop-sized (hundreds of rows, 5
// participants) so the whole suite completes in minutes; `ctfl run <exp>`
// exposes the full-size configurations. The paper's comparisons are about
// shape (who wins, by what factor), which is preserved at this scale.
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

// benchWorkload returns a bench-scale workload for the named dataset.
func benchWorkload(name string, skewLabel bool) experiments.Workload {
	return experiments.Workload{
		Dataset:      name,
		Rows:         600,
		Participants: 5,
		SkewLabel:    skewLabel,
		Seed:         1,
		Rounds:       2,
		LocalEpochs:  8,
		Hidden:       48,
	}
}

// BenchmarkTable2 regenerates the Table II motivating example: coalition
// utilities for {A,B,C} and the scores each classical scheme derives.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			res.Render(&buf)
			b.Log("\n" + buf.String())
			b.ReportMetric(res.Utilities["A,B,C"], "v(ABC)")
			b.ReportMetric(res.Utilities["A,B"], "v(AB)")
		}
	}
}

// BenchmarkFig4 regenerates the remove-top-contributors curves, one
// sub-benchmark per dataset × skew case. The AUC of the CTFL-micro curve is
// exported as a metric (smaller = better contribution ranking).
func BenchmarkFig4(b *testing.B) {
	for _, ds := range []string{"tic-tac-toe", "adult", "bank", "dota2"} {
		for _, skew := range []struct {
			name  string
			label bool
		}{{"skew-sample", false}, {"skew-label", true}} {
			b.Run(ds+"/"+skew.name, func(b *testing.B) {
				// The paper drops Shapley/LeastCore on dota2.
				expensive := ds != "dota2"
				for i := 0; i < b.N; i++ {
					s, err := experiments.Materialize(benchWorkload(ds, skew.label))
					if err != nil {
						b.Fatal(err)
					}
					res, err := experiments.RunFig4(s, 4, expensive)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						var buf bytes.Buffer
						res.Render(&buf)
						b.Log("\n" + buf.String())
						for _, m := range res.Methods {
							if m.Name == "CTFL-micro" {
								b.ReportMetric(m.AUC, "ctfl-micro-AUC")
							}
						}
					}
				}
			})
		}
	}
}

// BenchmarkFig5 regenerates the execution-time comparison. The speedup of
// CTFL-micro over the slowest combinatorial scheme is exported; the paper
// reports 2-3 orders of magnitude at full scale.
func BenchmarkFig5(b *testing.B) {
	for _, ds := range []string{"tic-tac-toe", "adult", "bank", "dota2"} {
		b.Run(ds, func(b *testing.B) {
			expensive := ds != "dota2"
			for i := 0; i < b.N; i++ {
				s, err := experiments.Materialize(benchWorkload(ds, true))
				if err != nil {
					b.Fatal(err)
				}
				res, err := experiments.RunFig5(s, expensive)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var buf bytes.Buffer
					res.Render(&buf)
					b.Log("\n" + buf.String())
					b.ReportMetric(res.SpeedupOver("CTFL-micro"), "ctfl-speedup-x")
				}
			}
		})
	}
}

// BenchmarkFig6 regenerates the robustness study: relative contribution
// change of attacked participants under replication, low-quality data and
// label flipping, per scheme.
func BenchmarkFig6(b *testing.B) {
	for _, ds := range []string{"tic-tac-toe", "bank"} {
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := experiments.Materialize(benchWorkload(ds, true))
				if err != nil {
					b.Fatal(err)
				}
				res, err := experiments.RunFig6(s, 2, ds == "tic-tac-toe")
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var buf bytes.Buffer
					res.Render(&buf)
					b.Log("\n" + buf.String())
					for _, row := range res.Rows {
						if row.Behaviour != experiments.Replication {
							continue
						}
						for _, m := range row.Methods {
							if m.Name == "CTFL-macro" {
								b.ReportMetric(m.MeanChange, "macro-replication-drift")
							}
						}
					}
				}
			}
		})
	}
}

// BenchmarkFig7 regenerates the tic-tac-toe interpretability case study.
func BenchmarkFig7(b *testing.B) {
	benchInterpret(b, "tic-tac-toe")
}

// BenchmarkTableV regenerates the adult interpretability case study.
func BenchmarkTableV(b *testing.B) {
	benchInterpret(b, "adult")
}

func benchInterpret(b *testing.B, ds string) {
	for i := 0; i < b.N; i++ {
		w := experiments.Workload{
			Dataset: ds, Rows: 1200, Participants: 3, SkewLabel: true,
			Seed: 5, Rounds: 8, LocalEpochs: 15,
		}
		s, err := experiments.Materialize(w)
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.RunInterpret(s, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			res.Render(&buf)
			b.Log("\n" + buf.String())
			b.ReportMetric(res.Accuracy, "model-accuracy")
		}
	}
}

// trainedFixture trains one model on a bench workload and returns the
// pieces needed for tracing-level ablations.
func trainedFixture(b *testing.B, ds string, rows int) (*experiments.Setup, *rules.Set) {
	b.Helper()
	w := benchWorkload(ds, true)
	w.Rows = rows
	s, err := experiments.Materialize(w)
	if err != nil {
		b.Fatal(err)
	}
	model, err := s.Trainer.Train(s.Parts)
	if err != nil {
		b.Fatal(err)
	}
	return s, rules.Extract(model, s.Trainer.Encoder())
}

// BenchmarkAblationTau sweeps the tracing threshold tau_w (Eq. 4): higher
// thresholds acknowledge fewer related rows (larger coverage gap), lower
// thresholds spread credit more evenly. The paper recommends [0.8, 1].
func BenchmarkAblationTau(b *testing.B) {
	s, rs := trainedFixture(b, "tic-tac-toe", 0)
	for _, tau := range []float64{0.6, 0.8, 0.9, 1.0} {
		b.Run(fmt.Sprintf("tau=%.1f", tau), func(b *testing.B) {
			var gap, spread float64
			for i := 0; i < b.N; i++ {
				tracer := core.NewTracer(rs, s.Parts, core.Config{TauW: tau})
				res := tracer.Trace(s.Test)
				gap = res.CoverageGap()
				micro := res.MicroScores()
				lo, hi := stats.MinMax(micro)
				spread = hi - lo
			}
			b.ReportMetric(gap, "coverage-gap")
			b.ReportMetric(spread, "score-spread")
		})
	}
}

// BenchmarkAblationGrouping compares brute-force tracing against the
// Max-Miner grouped fast path (Section III-C) on the rule-dense dota2 task.
func BenchmarkAblationGrouping(b *testing.B) {
	s, rs := trainedFixture(b, "dota2", 1500)
	for _, grouping := range []bool{false, true} {
		name := "brute-force"
		if grouping {
			name = "max-miner"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tracer := core.NewTracer(rs, s.Parts, core.Config{TauW: 0.9, Grouping: grouping})
				_ = tracer.Trace(s.Test)
			}
		})
	}
}

// BenchmarkAblationGrafting compares the paper's gradient-grafted training
// against continuous training with post-hoc 0.5-binarization. The metric is
// the binarized test accuracy — grafting exists to close this gap.
func BenchmarkAblationGrafting(b *testing.B) {
	tab := dataset.TicTacToe()
	for _, grafting := range []bool{true, false} {
		name := "grafted"
		if !grafting {
			name = "posthoc-binarize"
		}
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				r := stats.NewRNG(1)
				train, test := tab.Split(r, 0.2)
				enc, err := dataset.NewEncoder(tab.Schema, 10, r)
				if err != nil {
					b.Fatal(err)
				}
				xtr, ytr := enc.EncodeTable(train)
				xte, yte := enc.EncodeTable(test)
				m, err := nn.New(enc.Width(), nn.Config{
					Hidden: []int{64}, Epochs: 40, Grafting: grafting, Seed: 7,
					L1Logic: 2e-4, L2Head: 1e-3,
				})
				if err != nil {
					b.Fatal(err)
				}
				m.Train(xtr, ytr)
				acc = m.Accuracy(xte, yte)
			}
			b.ReportMetric(acc, "binarized-accuracy")
		})
	}
}

// BenchmarkAblationMacroDelta sweeps the macro threshold delta (Eq. 6),
// showing the progressive score generation the paper highlights as free.
func BenchmarkAblationMacroDelta(b *testing.B) {
	s, rs := trainedFixture(b, "bank", 800)
	tracer := core.NewTracer(rs, s.Parts, core.Config{TauW: 0.85})
	res := tracer.Trace(s.Test)
	for _, delta := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				sum = stats.Sum(res.MacroScoresAt(delta))
			}
			b.ReportMetric(sum, "allocated-credit")
		})
	}
}

// BenchmarkAblationDP sweeps the local-DP budget on uploaded activation
// vectors (randomized response; Section V privacy analysis). The metric is
// the Spearman rank agreement between DP scores and exact scores — the
// privacy/fidelity trade-off curve.
func BenchmarkAblationDP(b *testing.B) {
	s, rs := trainedFixture(b, "tic-tac-toe", 0)
	base := core.NewTracer(rs, s.Parts, core.Config{TauW: 0.9})
	exact := base.Trace(s.Test).MicroScores()
	for _, eps := range []float64{0.5, 1, 3, 8} {
		b.Run(fmt.Sprintf("eps=%.1f", eps), func(b *testing.B) {
			var corr float64
			for i := 0; i < b.N; i++ {
				noisy := base.WithLocalDP(eps, int64(i)).Trace(s.Test).MicroScores()
				corr = stats.Spearman(exact, noisy)
			}
			b.ReportMetric(corr, "rank-agreement")
		})
	}
}

// BenchmarkTracingThroughput measures the core tracing loop in isolation:
// test instances traced per second against an indexed federation, the
// quantity behind CTFL's single-pass speed claim.
func BenchmarkTracingThroughput(b *testing.B) {
	s, rs := trainedFixture(b, "adult", 1500)
	tracer := core.NewTracer(rs, s.Parts, core.Config{TauW: 0.9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tracer.Trace(s.Test)
	}
	b.ReportMetric(float64(s.Test.Len()), "test-rows/trace")
}

// BenchmarkFedAvgRound measures one FedAvg aggregation round end-to-end.
func BenchmarkFedAvgRound(b *testing.B) {
	w := benchWorkload("adult", false)
	w.Rounds = 1
	w.LocalEpochs = 2
	s, err := experiments.Materialize(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Trainer.Train(s.Parts); err != nil {
			b.Fatal(err)
		}
	}
}
