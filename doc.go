// Package repro is a from-scratch Go reproduction of "Fast, Robust and
// Interpretable Participant Contribution Estimation for Federated Learning"
// (CTFL, ICDE 2024).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are cmd/ctfl and the examples/ programs.
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; EXPERIMENTS.md records paper-vs-measured results.
package repro
