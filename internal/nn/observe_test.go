package nn

import (
	"math"
	"testing"

	"repro/internal/telemetry"
)

func obsModel(t *testing.T, dim int) *Model {
	t.Helper()
	m, err := New(dim, Config{
		Hidden: []int{32}, Grafting: true, Seed: 3,
		L1Logic: 2e-4, L2Head: 1e-3, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainHooksEpochStats(t *testing.T) {
	xs, ys := benchData(400, 40, 1)
	m := obsModel(t, 40)

	var got []EpochStats
	m.SetTrainHooks(&TrainHooks{OnEpoch: func(st EpochStats) { got = append(got, st) }})
	loss := m.TrainEpochs(xs, ys, 4)

	if len(got) != 4 {
		t.Fatalf("observed %d epochs, want 4", len(got))
	}
	for i, st := range got {
		if st.Epoch != i+1 {
			t.Errorf("epoch[%d].Epoch = %d, want %d", i, st.Epoch, i+1)
		}
		if math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) {
			t.Errorf("epoch %d loss not finite: %v", st.Epoch, st.Loss)
		}
		if st.Elapsed < 0 {
			t.Errorf("epoch %d elapsed negative: %v", st.Epoch, st.Elapsed)
		}
		if st.SelectedWeights < 0 || st.SelectedWeights > m.headOff {
			t.Errorf("epoch %d selected weights %d outside [0,%d]", st.Epoch, st.SelectedWeights, m.headOff)
		}
		if st.GraftSwitches < 0 {
			t.Errorf("epoch %d graft switches negative: %d", st.Epoch, st.GraftSwitches)
		}
	}
	if got[len(got)-1].Loss != loss {
		t.Errorf("final hook loss %v, TrainEpochs returned %v", got[len(got)-1].Loss, loss)
	}
}

func TestTrainTelemetryRegisters(t *testing.T) {
	reg := telemetry.NewRegistry()
	xs, ys := benchData(300, 40, 2)
	m := obsModel(t, 40)
	m.SetTrainHooks(TrainTelemetry(reg))
	m.TrainEpochs(xs, ys, 3)

	snap := reg.Snapshot()
	if n, ok := snap["ctfl_train_epochs_total"].(int64); !ok || n != 3 {
		t.Fatalf("ctfl_train_epochs_total = %v, want 3", snap["ctfl_train_epochs_total"])
	}
	hs, ok := snap["ctfl_train_epoch_seconds"].(telemetry.HistogramSnapshot)
	if !ok || hs.Count != 3 {
		t.Fatalf("ctfl_train_epoch_seconds = %#v, want count 3", snap["ctfl_train_epoch_seconds"])
	}
	if _, ok := snap["ctfl_train_last_loss"]; !ok {
		t.Fatal("ctfl_train_last_loss missing from snapshot")
	}
}

// TestTrainInnerLoopZeroAlloc pins the telemetry-disabled training hot loop
// at zero allocations per batch: with no hooks installed, one batchGrad +
// stepFused round must not allocate once scratch pools are warm.
func TestTrainInnerLoopZeroAlloc(t *testing.T) {
	xs, ys := benchData(256, 40, 4)
	m := obsModel(t, 40)

	grad := make([]float64, m.numParams())
	gbs := []*gradBuffers{m.getGradBuffers()}
	defer m.putGradBuffers(gbs[0])
	losses := make([]float64, 1)
	batch := make([]int, 32)
	for i := range batch {
		batch[i] = i
	}

	// Warm the pools and the discrete compilation cache.
	for i := 0; i < 3; i++ {
		m.batchGrad(xs, ys, batch, gbs, losses, grad)
		m.stepFused(grad)
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.batchGrad(xs, ys, batch, gbs, losses, grad)
		m.stepFused(grad)
	})
	if allocs != 0 {
		t.Fatalf("training inner loop allocates %.1f times per batch, want 0", allocs)
	}
}
