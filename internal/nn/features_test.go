package nn

import (
	"math"
	"testing"
)

// xorTask is unlearnable without rules but learnable with conj nodes:
// y = (a AND b) OR (NOT a AND NOT b), with explicit negation predicates.
var xorXS = [][]float64{
	{1, 0, 1, 0}, // a, !a, b, !b
	{1, 0, 0, 1},
	{0, 1, 1, 0},
	{0, 1, 0, 1},
}
var xorYS = []int{1, 0, 0, 1}

func TestFreezeBiasKeepsBiasZero(t *testing.T) {
	m, err := New(4, Config{Hidden: []int{8}, Epochs: 60, BatchSize: 4, Grafting: true, FreezeBias: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xorXS, xorYS)
	if m.HeadBias() != 0 {
		t.Fatalf("bias = %v after training with FreezeBias", m.HeadBias())
	}
	if acc := m.Accuracy(xorXS, xorYS); acc < 1 {
		t.Fatalf("XNOR accuracy = %v with frozen bias", acc)
	}
}

func TestKeepBestNeverWorseThanFinalEpoch(t *testing.T) {
	// Train twice from the same seed, with and without KeepBest; the
	// KeepBest run's final training accuracy must be >= the plain run's.
	build := func(keep bool) *Model {
		m, err := New(4, Config{Hidden: []int{8}, Epochs: 30, BatchSize: 4, Grafting: true, KeepBest: keep, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		m.Train(xorXS, xorYS)
		return m
	}
	plain := build(false).Accuracy(xorXS, xorYS)
	kept := build(true).Accuracy(xorXS, xorYS)
	if kept < plain-1e-12 {
		t.Fatalf("KeepBest accuracy %v < plain %v", kept, plain)
	}
}

func TestL1LogicPrunesOperands(t *testing.T) {
	// Heavy L1 must shrink the number of selected operands relative to none.
	count := func(l1 float64) int {
		m, err := New(4, Config{Hidden: []int{16}, Epochs: 60, BatchSize: 4, Grafting: true, L1Logic: l1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		m.Train(xorXS, xorYS)
		n := 0
		for _, spec := range m.RuleSpecs() {
			n += len(spec.Selected)
		}
		return n
	}
	dense := count(0)
	sparse := count(0.01)
	if sparse >= dense {
		t.Fatalf("L1 did not prune: %d operands vs %d without", sparse, dense)
	}
}

func TestL2HeadBoundsWeights(t *testing.T) {
	norm := func(l2 float64) float64 {
		m, err := New(4, Config{Hidden: []int{8}, Epochs: 80, BatchSize: 4, Grafting: true, L2Head: l2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		m.Train(xorXS, xorYS)
		s := 0.0
		for _, w := range m.HeadWeights() {
			s += w * w
		}
		return math.Sqrt(s)
	}
	free := norm(0)
	decayed := norm(0.05)
	if decayed >= free {
		t.Fatalf("L2 did not bound head weights: %v vs %v", decayed, free)
	}
}

func TestLogicalWeightsStayInUnitInterval(t *testing.T) {
	m, err := New(4, Config{Hidden: []int{8}, Epochs: 20, BatchSize: 4, Grafting: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xorXS, xorYS)
	p := m.Params()
	logicEnd := m.numParams() - m.RuleDim() - 1
	for i := 0; i < logicEnd; i++ {
		if p[i] < 0 || p[i] > 1 {
			t.Fatalf("logical weight %d = %v outside [0,1]", i, p[i])
		}
	}
}

func TestPredictNegativeBranch(t *testing.T) {
	m, err := New(2, Config{Hidden: []int{4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Force a strongly negative score so Predict returns 0.
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	p[len(p)-1] = -5 // bias
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1, 0}); got != 0 {
		t.Fatalf("Predict = %d, want 0", got)
	}
}

func TestParallelOverSingleWorkerAndEmpty(t *testing.T) {
	m, err := New(2, Config{Hidden: []int{4}, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Workers=1 exercises the serial fast path.
	xs := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	if got := m.PredictBatch(xs); len(got) != 3 {
		t.Fatalf("PredictBatch = %v", got)
	}
	// Empty input must not call fn at all.
	if got := m.PredictBatch(nil); len(got) != 0 {
		t.Fatalf("empty PredictBatch = %v", got)
	}
	// Many workers over few items exercises the worker > n clamp.
	m2, err := New(2, Config{Hidden: []int{4}, Workers: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.PredictBatch(xs[:2]); len(got) != 2 {
		t.Fatalf("clamped PredictBatch = %v", got)
	}
}

func TestScoreAndActivationsBatchMatchesSingle(t *testing.T) {
	m, err := New(4, Config{Hidden: []int{8}, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	scores, acts := m.ScoreAndActivationsBatch(xorXS)
	for i, x := range xorXS {
		if scores[i] != m.Score(x) {
			t.Fatalf("row %d batch score %v vs single %v", i, scores[i], m.Score(x))
		}
		single := m.RuleActivations(x, nil)
		for j := range single {
			if acts[i][j] != single[j] {
				t.Fatalf("row %d activation %d mismatch", i, j)
			}
		}
	}
}

func TestXNORLearnableWithConjunctions(t *testing.T) {
	m, err := New(4, Config{Hidden: []int{8}, Epochs: 120, BatchSize: 4, Grafting: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xorXS, xorYS)
	if acc := m.Accuracy(xorXS, xorYS); acc < 1 {
		t.Fatalf("XNOR accuracy = %v, want 1 (needs two conj rules)", acc)
	}
}
