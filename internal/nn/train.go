package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// adamState carries the Adam optimizer moments over the flattened parameters.
type adamState struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adamState {
	return &adamState{m: make([]float64, n), v: make([]float64, n)}
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// numParams returns the flattened parameter count.
func (m *Model) numParams() int { return len(m.flat) }

// Params returns a flat copy of all trainable parameters (logical weights,
// head weights, head bias), suitable for FedAvg aggregation.
func (m *Model) Params() []float64 {
	out := make([]float64, len(m.flat))
	copy(out, m.flat)
	return out
}

// SetParams overwrites all trainable parameters from a flat vector produced
// by Params (possibly averaged across clients).
func (m *Model) SetParams(p []float64) error {
	if len(p) != len(m.flat) {
		return fmt.Errorf("nn: SetParams got %d values, want %d", len(p), len(m.flat))
	}
	copy(m.flat, p)
	return nil
}

// Clone returns a deep copy of the model (including optimizer state reset).
func (m *Model) Clone() *Model {
	c, err := New(m.inDim, m.cfg)
	if err != nil {
		panic(err) // m was valid, so its config is valid
	}
	copy(c.flat, m.flat)
	return c
}

// gradBuffers holds per-worker backprop scratch space.
type gradBuffers struct {
	fwd  *fwdBuffers // continuous pass (kept for partials)
	fwdD *fwdBuffers // discrete pass (grafting)
	// gOut[k] is d loss / d layer-k output; gIn[k] the gradient flowing to
	// layer k's input vector.
	gOut [][]float64
	gIn  [][]float64
	grad []float64 // flattened, same layout as Params
	// Factor cache filled by forwardTrain and consumed by the backward
	// kernels, so the backward pass never recomputes a factor or rescans for
	// zero factors. Indexed by layer (fmat, node-major rows) and by global
	// node id (pnz/nzero/zidx).
	fmat  [][]float64
	pnz   []float64
	nzero []int32
	zidx  []int32
}

func (m *Model) newGradBuffers() *gradBuffers {
	gb := &gradBuffers{fwd: m.newBuffers(), fwdD: m.newBuffers(), grad: make([]float64, m.numParams())}
	for _, l := range m.layers {
		gb.gOut = append(gb.gOut, make([]float64, l.size()))
		gb.gIn = append(gb.gIn, make([]float64, l.inDim))
		gb.fmat = append(gb.fmat, make([]float64, l.size()*l.inDim))
	}
	gb.pnz = make([]float64, m.ruleDim)
	gb.nzero = make([]int32, m.ruleDim)
	gb.zidx = make([]int32, m.ruleDim)
	return gb
}

// getGradBuffers returns pooled backprop scratch; release with putGradBuffers.
func (m *Model) getGradBuffers() *gradBuffers {
	if gb, ok := m.gradPool.Get().(*gradBuffers); ok {
		return gb
	}
	return m.newGradBuffers()
}

func (m *Model) putGradBuffers(gb *gradBuffers) { m.gradPool.Put(gb) }

func sigmoid(s float64) float64 {
	if s >= 0 {
		return 1 / (1 + math.Exp(-s))
	}
	e := math.Exp(s)
	return e / (1 + e)
}

// backprop accumulates into gb.grad the gradient of the logistic loss on one
// sample. With grafting, the loss derivative is evaluated at the *binarized*
// model's score while the parameter partials come from the continuous
// forward pass — the paper's gradient grafting rule
// θ^{t+1} = θ^t − η ∂L(Ȳ)/∂Ȳ · ∂Y/∂θ^t. It returns the sample loss.
func (m *Model) backprop(x []float64, y int, grafting bool, gb *gradBuffers) float64 {
	// Continuous forward fills gb.fwd with the activations used for partials
	// and caches every per-element factor for the backward kernels.
	sCont := m.forwardTrain(x, gb)
	sUsed := sCont
	if grafting {
		// batchGrad compiled the discrete structure for this batch.
		sUsed = m.forwardDiscrete(x, gb.fwdD)
	}
	p := sigmoid(sUsed)
	dLds := p - float64(y)

	// Head gradients (continuous rule activations are the partials).
	// Flat layout: logical weights first, then headW, then headB.
	headOff := m.headOff
	for j, r := range gb.fwd.rules {
		gb.grad[headOff+j] += dLds * r
	}
	if !m.cfg.FreezeBias {
		gb.grad[headOff+m.ruleDim] += dLds
	}

	// Seed rule gradients.
	ri := 0
	for k, l := range m.layers {
		gOut := gb.gOut[k]
		for n := 0; n < l.size(); n++ {
			gOut[n] = dLds * m.headW[ri+n]
		}
		ri += l.size()
	}

	// Backward through layers, last to first. Layer k's input is
	// concat(x, layerOut[k-1]); the part flowing into layerOut[k-1] is added
	// to that layer's gOut. Layer weight offsets are fixed at construction
	// (logicalLayer.off), so no per-call offset table is needed.
	for k := len(m.layers) - 1; k >= 0; k-- {
		l := m.layers[k]
		in := gb.fwd.layerIn[k]
		gIn := gb.gIn[k]
		// Only the skip-concat tail of the input gradient is ever read (it
		// routes to the previous layer's outputs); the x-head — and for the
		// first layer the whole vector — is dead, so neither zeroed nor
		// accumulated.
		gxFrom := len(in)
		if k > 0 {
			gxFrom = m.inDim
			for i := m.inDim; i < len(gIn); i++ {
				gIn[i] = 0
			}
		}
		ni := layerNodeBase(m, k)
		for n := 0; n < l.size(); n++ {
			g := gb.gOut[k][n]
			if g == 0 {
				continue
			}
			w := l.row(n)
			base := l.off + n*l.inDim
			fb := gb.fmat[k][n*l.inDim : (n+1)*l.inDim]
			prodNZ, zeros, zeroIdx := gb.pnz[ni+n], gb.nzero[ni+n], gb.zidx[ni+n]
			if zeros > 1 {
				continue // every partial product contains a zero factor
			}
			if l.nodeKind(n) == nodeConj {
				conjBackward(in, w, g, gb.grad[base:base+l.inDim], gIn, gxFrom, fb, prodNZ, zeros, zeroIdx)
			} else {
				disjBackward(in, w, g, gb.grad[base:base+l.inDim], gIn, gxFrom, fb, prodNZ, zeros, zeroIdx)
			}
		}
		if k > 0 {
			// Route the skip-concat tail into the previous layer's output grad.
			prevOut := gb.gOut[k-1]
			for n := range prevOut {
				prevOut[n] += gIn[m.inDim+n]
			}
		}
	}

	// Logistic loss value at the score the loss derivative was taken at.
	if y == 1 {
		return -math.Log(math.Max(p, 1e-12))
	}
	return -math.Log(math.Max(1-p, 1e-12))
}

const prodZeroEps = 1e-12

// layerNodeBase returns the global node id of layer k's first node.
func layerNodeBase(m *Model, k int) int {
	b := 0
	for j := 0; j < k; j++ {
		b += m.layers[j].size()
	}
	return b
}

// forwardTrain is the continuous forward pass used by backprop. It computes
// exactly the same score as forward(x, false, gb.fwd) — identical factor
// expressions multiplied in identical order — while additionally caching,
// per node, every factor (gb.fmat), the product of its non-near-zero
// factors (gb.pnz) and the near-zero bookkeeping (gb.nzero/gb.zidx) the
// backward kernels need, so the backward pass does no factor recomputation
// or rescanning at all.
func (m *Model) forwardTrain(x []float64, gb *gradBuffers) float64 {
	if len(x) != m.inDim {
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), m.inDim))
	}
	b := gb.fwd
	ni := 0
	ri := 0
	for k, l := range m.layers {
		var in []float64
		if k == 0 {
			in = x
			b.layerIn[0] = x
		} else {
			in = b.layerIn[k]
			copy(in, x)
			copy(in[m.inDim:], b.layerOut[k-1])
		}
		out := b.layerOut[k]
		fslab := gb.fmat[k]
		for n := 0; n < l.size(); n++ {
			w := l.row(n)
			fb := fslab[n*l.inDim : (n+1)*l.inDim]
			var p, prodNZ float64
			var zeros, zeroIdx int32
			if l.nodeKind(n) == nodeConj {
				p, prodNZ, zeros, zeroIdx = conjForwardTrain(in, w, fb)
			} else {
				p, prodNZ, zeros, zeroIdx = disjForwardTrain(in, w, fb)
				p = 1 - p
			}
			out[n] = p
			gb.pnz[ni] = prodNZ
			gb.nzero[ni] = zeros
			gb.zidx[ni] = zeroIdx
			ni++
		}
		copy(b.rules[ri:ri+l.size()], out)
		ri += l.size()
	}
	s := m.flat[len(m.flat)-1]
	for j, r := range b.rules {
		s += m.headW[j] * r
	}
	return s
}

// conjForwardTrain is conjForward's continuous loop fused with the backward
// pass's factor caching and zero-scan. p is the node output (bit-identical
// to conjForward); prodNZ is the product of factors at least prodZeroEps in
// magnitude (the same skip rule and multiply order the backward scan used).
func conjForwardTrain(x, w, fbuf []float64) (p, prodNZ float64, zeros, zeroIdx int32) {
	p = 1.0
	prodNZ = 1.0
	zeroIdx = -1
	for i, xi := range x {
		f := 1 - w[i]*(1-xi)
		fbuf[i] = f
		p *= f
		if math.Abs(f) < prodZeroEps {
			zeros++
			zeroIdx = int32(i)
			continue
		}
		prodNZ *= f
	}
	return
}

// disjForwardTrain mirrors conjForwardTrain for disjunction factors
// G_i = 1 - x_i w_i. It returns the raw product p (the caller computes the
// node output 1-p, matching disjForward bit-for-bit).
func disjForwardTrain(x, w, fbuf []float64) (p, prodNZ float64, zeros, zeroIdx int32) {
	p = 1.0
	prodNZ = 1.0
	zeroIdx = -1
	for i, xi := range x {
		f := 1 - xi*w[i]
		fbuf[i] = f
		p *= f
		if math.Abs(f) < prodZeroEps {
			zeros++
			zeroIdx = int32(i)
			continue
		}
		prodNZ *= f
	}
	return
}

// conjBackward adds the conjunction node's weight and input gradients.
// out = prod_i F_i, F_i = 1 - w_i (1 - x_i);
// d out/d w_i = -(1-x_i) * prod_{j≠i} F_j; d out/d x_i = w_i * prod_{j≠i} F_j.
//
// Input gradients are accumulated only for i >= gxFrom: the x-head of every
// layer input is raw data whose gradient nothing reads (only the skip-concat
// tail flows to the previous layer), and for the first layer that is the
// whole vector. fbuf caches each factor from the zero-scan so the partials
// loop never recomputes it.
//
// The factors, their non-zero product and the zero bookkeeping all come
// precomputed from forwardTrain (fbuf/prodNZ/zeros/zeroIdx); the caller has
// already discarded nodes with more than one zero factor. The loops stay
// branch-free on purpose: data-dependent skips (zero terms, factor-is-1
// divisions) mispredict on real data and cost more than the arithmetic they
// avoid. All work removed relative to the seed is structurally dead —
// identical float expressions in identical order otherwise, which
// TestPropertyFusedStepMatchesReference / TestGoldenTraining pin down.
func conjBackward(x, w []float64, g float64, gw, gx []float64, gxFrom int, fbuf []float64, prodNZ float64, zeros, zeroIdx int32) {
	if zeros == 1 {
		// Only the zero factor's own partial product survives.
		i := zeroIdx
		gw[i] += g * -(1 - x[i]) * prodNZ
		if int(i) >= gxFrom {
			gx[i] += g * w[i] * prodNZ
		}
		return
	}
	if gxFrom >= len(x) {
		for i, f := range fbuf[:len(x)] {
			partial := prodNZ / f
			gw[i] += g * -(1 - x[i]) * partial
		}
		return
	}
	for i, f := range fbuf[:len(x)] {
		partial := prodNZ / f
		gw[i] += g * -(1 - x[i]) * partial
		if i >= gxFrom {
			gx[i] += g * w[i] * partial
		}
	}
}

// disjBackward adds the disjunction node's weight and input gradients.
// out = 1 - prod_i G_i, G_i = 1 - x_i w_i;
// d out/d w_i = x_i * prod_{j≠i} G_j; d out/d x_i = w_i * prod_{j≠i} G_j.
// Same precomputed-cache contract and branch-free structure as conjBackward.
func disjBackward(x, w []float64, g float64, gw, gx []float64, gxFrom int, fbuf []float64, prodNZ float64, zeros, zeroIdx int32) {
	if zeros == 1 {
		i := zeroIdx
		gw[i] += g * x[i] * prodNZ
		if int(i) >= gxFrom {
			gx[i] += g * w[i] * prodNZ
		}
		return
	}
	if gxFrom >= len(x) {
		for i, f := range fbuf[:len(x)] {
			partial := prodNZ / f
			gw[i] += g * x[i] * partial
		}
		return
	}
	for i, f := range fbuf[:len(x)] {
		partial := prodNZ / f
		gw[i] += g * x[i] * partial
		if i >= gxFrom {
			gx[i] += g * w[i] * partial
		}
	}
}

// stepFused applies, in one sequential pass over the flat parameter vector:
// the L1/L2 regularization subgradients, one Adam update, and the [0,1]
// domain clamp of the logical weights, writing directly into the model's
// parameter storage. It is arithmetically element-for-element identical to
// the unfused regularize → Adam → clamp-and-copy sequence it replaced
// (each element's update chain is unchanged; only the loop structure fused),
// which TestGoldenTraining pins down bit-for-bit.
func (m *Model) stepFused(grad []float64) {
	a := m.opt
	a.t++
	bc1 := 1 - math.Pow(adamBeta1, float64(a.t))
	bc2 := 1 - math.Pow(adamBeta2, float64(a.t))
	lr := m.cfg.LearningRate
	l1, l2 := m.cfg.L1Logic, m.cfg.L2Head
	flat := m.flat
	headOff := m.headOff
	last := len(flat) - 1
	for i, g := range grad {
		logical := i < headOff
		if logical {
			if l1 != 0 && flat[i] > 0 {
				g += l1
			}
		} else if i < last && l2 != 0 {
			g += l2 * flat[i]
		}
		a.m[i] = adamBeta1*a.m[i] + (1-adamBeta1)*g
		a.v[i] = adamBeta2*a.v[i] + (1-adamBeta2)*g*g
		mhat := a.m[i] / bc1
		vhat := a.v[i] / bc2
		v := flat[i] - lr*mhat/(math.Sqrt(vhat)+adamEps)
		if logical {
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
		}
		flat[i] = v
	}
}

// TrainEpochs runs mini-batch training for the given number of epochs and
// returns the mean loss of the final epoch. It is the building block both
// for standalone training (Train) and for FedAvg local updates. Parameters
// are updated in place in the flat vector; per-batch work reuses pooled
// scratch and allocates nothing in steady state.
func (m *Model) TrainEpochs(xs [][]float64, ys []int, epochs int) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("nn: %d inputs vs %d labels", len(xs), len(ys)))
	}
	if len(xs) == 0 || epochs <= 0 {
		return 0
	}
	r := rand.New(rand.NewSource(m.cfg.Seed + int64(m.opt.t) + 1))
	grad := make([]float64, m.numParams())
	workers := m.workerCount()
	gbs := make([]*gradBuffers, workers)
	for i := range gbs {
		gbs[i] = m.getGradBuffers()
	}
	losses := make([]float64, workers)
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}

	// Epoch observation state, allocated only when hooks are installed so
	// the unobserved path stays allocation-free.
	hooks := m.hooks
	var selMask []bool
	if hooks != nil && hooks.OnEpoch != nil {
		selMask = make([]bool, m.headOff)
		m.selectionMask(selMask, true)
	}

	lastLoss := 0.0
	bestAcc := -1.0
	var bestParams []float64
	for ep := 0; ep < epochs; ep++ {
		var epStart time.Time
		if selMask != nil {
			epStart = time.Now()
		}
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		for start := 0; start < len(idx); start += m.cfg.BatchSize {
			end := start + m.cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			loss := m.batchGrad(xs, ys, batch, gbs, losses, grad)
			epochLoss += loss * float64(len(batch))
			m.stepFused(grad)
		}
		lastLoss = epochLoss / float64(len(idx))
		if m.cfg.KeepBest {
			if acc := m.Accuracy(xs, ys); acc > bestAcc {
				bestAcc = acc
				bestParams = m.Params()
			}
		}
		if selMask != nil {
			selected, switches := m.selectionMask(selMask, false)
			hooks.OnEpoch(EpochStats{
				Epoch:           ep + 1,
				Loss:            lastLoss,
				Elapsed:         time.Since(epStart),
				SelectedWeights: selected,
				GraftSwitches:   switches,
			})
		}
	}
	if bestParams != nil {
		copy(m.flat, bestParams)
	}
	for _, gb := range gbs {
		m.putGradBuffers(gb)
	}
	return lastLoss
}

// Train runs cfg.Epochs of training and returns the final epoch's mean loss.
func (m *Model) Train(xs [][]float64, ys []int) float64 {
	return m.TrainEpochs(xs, ys, m.cfg.Epochs)
}

// batchGrad computes the mean gradient over batch into grad (overwritten)
// and returns the mean loss. losses must have at least len(gbs) entries.
func (m *Model) batchGrad(xs [][]float64, ys []int, batch []int, gbs []*gradBuffers, losses []float64, grad []float64) float64 {
	workers := len(gbs)
	if workers > len(batch) {
		workers = len(batch)
	}
	inv := 1 / float64(len(batch))
	if m.cfg.Grafting {
		m.compileDiscrete() // weights are fixed for the whole batch
	}

	if workers <= 1 {
		// Inline fast path: small batches (and Workers=1 configs) skip the
		// goroutine machinery entirely.
		gb := gbs[0]
		for i := range gb.grad {
			gb.grad[i] = 0
		}
		sum := 0.0
		for _, s := range batch {
			sum += m.backprop(xs[s], ys[s], m.cfg.Grafting, gb)
		}
		for i, g := range gb.grad {
			grad[i] = g * inv
		}
		return sum * inv
	}

	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	// Ceil-chunking can leave trailing workers with empty ranges; they
	// neither run nor zero their scratch, so reduce over active ones only.
	active := (len(batch) + chunk - 1) / chunk
	for wkr := 0; wkr < active; wkr++ {
		lo := wkr * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			gb := gbs[wkr]
			for i := range gb.grad {
				gb.grad[i] = 0
			}
			sum := 0.0
			for _, s := range batch[lo:hi] {
				sum += m.backprop(xs[s], ys[s], m.cfg.Grafting, gb)
			}
			losses[wkr] = sum
		}(wkr, lo, hi)
	}
	wg.Wait()

	for i := range grad {
		g := 0.0
		for wkr := 0; wkr < active; wkr++ {
			g += gbs[wkr].grad[i]
		}
		grad[i] = g * inv
	}
	total := 0.0
	for wkr := 0; wkr < active; wkr++ {
		total += losses[wkr]
	}
	return total * inv
}

func (m *Model) workerCount() int {
	if m.cfg.Workers > 0 {
		return m.cfg.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// parallelOver splits n items across workers, giving each worker pooled
// forward buffers, and calls fn with the worker's half-open index range.
func (m *Model) parallelOver(n int, fn func(lo, hi int, buf *fwdBuffers)) {
	if n == 0 {
		return
	}
	workers := m.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		buf := m.getBuffers()
		fn(0, n, buf)
		m.putBuffers(buf)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			buf := m.getBuffers()
			fn(lo, hi, buf)
			m.putBuffers(buf)
		}(lo, hi)
	}
	wg.Wait()
}
