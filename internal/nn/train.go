package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// adamState carries the Adam optimizer moments over the flattened parameters.
type adamState struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adamState {
	return &adamState{m: make([]float64, n), v: make([]float64, n)}
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// step applies one Adam update of grad to params in place.
func (a *adamState) step(params, grad []float64, lr float64) {
	a.t++
	bc1 := 1 - math.Pow(adamBeta1, float64(a.t))
	bc2 := 1 - math.Pow(adamBeta2, float64(a.t))
	for i, g := range grad {
		a.m[i] = adamBeta1*a.m[i] + (1-adamBeta1)*g
		a.v[i] = adamBeta2*a.v[i] + (1-adamBeta2)*g*g
		mhat := a.m[i] / bc1
		vhat := a.v[i] / bc2
		params[i] -= lr * mhat / (math.Sqrt(vhat) + adamEps)
	}
}

// numParams returns the flattened parameter count.
func (m *Model) numParams() int {
	n := 0
	for _, l := range m.layers {
		n += l.size() * l.inDim
	}
	return n + m.ruleDim + 1
}

// Params returns a flat copy of all trainable parameters (logical weights,
// head weights, head bias), suitable for FedAvg aggregation.
func (m *Model) Params() []float64 {
	out := make([]float64, 0, m.numParams())
	for _, l := range m.layers {
		for _, w := range l.weights {
			out = append(out, w...)
		}
	}
	out = append(out, m.headW...)
	out = append(out, m.headB)
	return out
}

// SetParams overwrites all trainable parameters from a flat vector produced
// by Params (possibly averaged across clients).
func (m *Model) SetParams(p []float64) error {
	if len(p) != m.numParams() {
		return fmt.Errorf("nn: SetParams got %d values, want %d", len(p), m.numParams())
	}
	i := 0
	for _, l := range m.layers {
		for _, w := range l.weights {
			copy(w, p[i:i+len(w)])
			i += len(w)
		}
	}
	copy(m.headW, p[i:i+m.ruleDim])
	i += m.ruleDim
	m.headB = p[i]
	return nil
}

// Clone returns a deep copy of the model (including optimizer state reset).
func (m *Model) Clone() *Model {
	c, err := New(m.inDim, m.cfg)
	if err != nil {
		panic(err) // m was valid, so its config is valid
	}
	if err := c.SetParams(m.Params()); err != nil {
		panic(err)
	}
	return c
}

// gradBuffers holds per-worker backprop scratch space.
type gradBuffers struct {
	fwd  *fwdBuffers // continuous pass (kept for partials)
	fwdD *fwdBuffers // discrete pass (grafting)
	// gOut[k] is d loss / d layer-k output; gIn[k] the gradient flowing to
	// layer k's input vector.
	gOut [][]float64
	gIn  [][]float64
	grad []float64 // flattened, same layout as Params
}

func (m *Model) newGradBuffers() *gradBuffers {
	gb := &gradBuffers{fwd: m.newBuffers(), fwdD: m.newBuffers(), grad: make([]float64, m.numParams())}
	for _, l := range m.layers {
		gb.gOut = append(gb.gOut, make([]float64, l.size()))
		gb.gIn = append(gb.gIn, make([]float64, l.inDim))
	}
	return gb
}

func sigmoid(s float64) float64 {
	if s >= 0 {
		return 1 / (1 + math.Exp(-s))
	}
	e := math.Exp(s)
	return e / (1 + e)
}

// backprop accumulates into gb.grad the gradient of the logistic loss on one
// sample. With grafting, the loss derivative is evaluated at the *binarized*
// model's score while the parameter partials come from the continuous
// forward pass — the paper's gradient grafting rule
// θ^{t+1} = θ^t − η ∂L(Ȳ)/∂Ȳ · ∂Y/∂θ^t. It returns the sample loss.
func (m *Model) backprop(x []float64, y int, grafting bool, gb *gradBuffers) float64 {
	// Continuous forward fills gb.fwd with the activations used for partials.
	sCont := m.forward(x, false, gb.fwd)
	sUsed := sCont
	if grafting {
		sUsed = m.forward(x, true, gb.fwdD)
	}
	p := sigmoid(sUsed)
	dLds := p - float64(y)

	// Head gradients (continuous rule activations are the partials).
	// Flat layout: logical weights first, then headW, then headB.
	headOff := m.numParams() - m.ruleDim - 1
	for j, r := range gb.fwd.rules {
		gb.grad[headOff+j] += dLds * r
	}
	if !m.cfg.FreezeBias {
		gb.grad[headOff+m.ruleDim] += dLds
	}

	// Seed rule gradients.
	ri := 0
	for k, l := range m.layers {
		gOut := gb.gOut[k]
		for n := 0; n < l.size(); n++ {
			gOut[n] = dLds * m.headW[ri+n]
		}
		ri += l.size()
	}

	// Backward through layers, last to first. Layer k's input is
	// concat(x, layerOut[k-1]); the part flowing into layerOut[k-1] is added
	// to that layer's gOut.
	wOff := make([]int, len(m.layers))
	{
		off := 0
		for k, l := range m.layers {
			wOff[k] = off
			off += l.size() * l.inDim
		}
	}
	for k := len(m.layers) - 1; k >= 0; k-- {
		l := m.layers[k]
		in := gb.fwd.layerIn[k]
		gIn := gb.gIn[k]
		for i := range gIn {
			gIn[i] = 0
		}
		for n := 0; n < l.size(); n++ {
			g := gb.gOut[k][n]
			if g == 0 {
				continue
			}
			w := l.weights[n]
			base := wOff[k] + n*l.inDim
			if l.nodeKind(n) == nodeConj {
				conjBackward(in, w, g, gb.grad[base:base+l.inDim], gIn)
			} else {
				disjBackward(in, w, g, gb.grad[base:base+l.inDim], gIn)
			}
		}
		if k > 0 {
			// Route the skip-concat tail into the previous layer's output grad.
			prevOut := gb.gOut[k-1]
			for n := range prevOut {
				prevOut[n] += gIn[m.inDim+n]
			}
		}
	}

	// Logistic loss value at the score the loss derivative was taken at.
	if y == 1 {
		return -math.Log(math.Max(p, 1e-12))
	}
	return -math.Log(math.Max(1-p, 1e-12))
}

const prodZeroEps = 1e-12

// conjBackward adds the conjunction node's weight and input gradients.
// out = prod_i F_i, F_i = 1 - w_i (1 - x_i);
// d out/d w_i = -(1-x_i) * prod_{j≠i} F_j; d out/d x_i = w_i * prod_{j≠i} F_j.
func conjBackward(x, w []float64, g float64, gw, gx []float64) {
	prodNZ := 1.0
	zeros := 0
	zeroIdx := -1
	for i := range x {
		f := 1 - w[i]*(1-x[i])
		if math.Abs(f) < prodZeroEps {
			zeros++
			zeroIdx = i
			if zeros > 1 {
				return // every partial product contains a zero factor
			}
			continue
		}
		prodNZ *= f
	}
	for i := range x {
		var partial float64
		switch {
		case zeros == 0:
			f := 1 - w[i]*(1-x[i])
			partial = prodNZ / f
		case zeros == 1 && i == zeroIdx:
			partial = prodNZ
		default:
			continue // partial product is zero
		}
		gw[i] += g * -(1 - x[i]) * partial
		gx[i] += g * w[i] * partial
	}
}

// disjBackward adds the disjunction node's weight and input gradients.
// out = 1 - prod_i G_i, G_i = 1 - x_i w_i;
// d out/d w_i = x_i * prod_{j≠i} G_j; d out/d x_i = w_i * prod_{j≠i} G_j.
func disjBackward(x, w []float64, g float64, gw, gx []float64) {
	prodNZ := 1.0
	zeros := 0
	zeroIdx := -1
	for i := range x {
		f := 1 - x[i]*w[i]
		if math.Abs(f) < prodZeroEps {
			zeros++
			zeroIdx = i
			if zeros > 1 {
				return
			}
			continue
		}
		prodNZ *= f
	}
	for i := range x {
		var partial float64
		switch {
		case zeros == 0:
			f := 1 - x[i]*w[i]
			partial = prodNZ / f
		case zeros == 1 && i == zeroIdx:
			partial = prodNZ
		default:
			continue
		}
		gw[i] += g * x[i] * partial
		gx[i] += g * w[i] * partial
	}
}

// TrainEpochs runs mini-batch training for the given number of epochs and
// returns the mean loss of the final epoch. It is the building block both
// for standalone training (Train) and for FedAvg local updates.
func (m *Model) TrainEpochs(xs [][]float64, ys []int, epochs int) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("nn: %d inputs vs %d labels", len(xs), len(ys)))
	}
	if len(xs) == 0 || epochs <= 0 {
		return 0
	}
	r := rand.New(rand.NewSource(m.cfg.Seed + int64(m.opt.t) + 1))
	params := m.Params()
	grad := make([]float64, len(params))
	workers := m.workerCount()
	gbs := make([]*gradBuffers, workers)
	for i := range gbs {
		gbs[i] = m.newGradBuffers()
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}

	lastLoss := 0.0
	bestAcc := -1.0
	var bestParams []float64
	for ep := 0; ep < epochs; ep++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		for start := 0; start < len(idx); start += m.cfg.BatchSize {
			end := start + m.cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			loss := m.batchGrad(xs, ys, batch, gbs, grad)
			epochLoss += loss * float64(len(batch))
			m.regularize(params, grad)
			m.opt.step(params, grad, m.cfg.LearningRate)
			m.applyParams(params)
		}
		lastLoss = epochLoss / float64(len(idx))
		if m.cfg.KeepBest {
			if acc := m.Accuracy(xs, ys); acc > bestAcc {
				bestAcc = acc
				bestParams = m.Params()
			}
		}
	}
	if bestParams != nil {
		m.applyParams(bestParams)
	}
	return lastLoss
}

// Train runs cfg.Epochs of training and returns the final epoch's mean loss.
func (m *Model) Train(xs [][]float64, ys []int) float64 {
	return m.TrainEpochs(xs, ys, m.cfg.Epochs)
}

// batchGrad computes the mean gradient over batch into grad (overwritten)
// and returns the mean loss.
func (m *Model) batchGrad(xs [][]float64, ys []int, batch []int, gbs []*gradBuffers, grad []float64) float64 {
	workers := len(gbs)
	if workers > len(batch) {
		workers = len(batch)
	}
	losses := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			gb := gbs[wkr]
			for i := range gb.grad {
				gb.grad[i] = 0
			}
			sum := 0.0
			for _, s := range batch[lo:hi] {
				sum += m.backprop(xs[s], ys[s], m.cfg.Grafting, gb)
			}
			losses[wkr] = sum
		}(wkr, lo, hi)
	}
	wg.Wait()

	inv := 1 / float64(len(batch))
	for i := range grad {
		g := 0.0
		for wkr := 0; wkr < workers; wkr++ {
			g += gbs[wkr].grad[i]
		}
		grad[i] = g * inv
	}
	total := 0.0
	for _, l := range losses {
		total += l
	}
	return total * inv
}

// regularize adds L1 decay on the logical weights (which live in [0,1], so
// the subgradient is simply +L1Logic wherever the weight is positive) and L2
// decay on the head weights.
func (m *Model) regularize(params, grad []float64) {
	if m.cfg.L1Logic == 0 && m.cfg.L2Head == 0 {
		return
	}
	headOff := m.numParams() - m.ruleDim - 1
	if m.cfg.L1Logic != 0 {
		for i := 0; i < headOff; i++ {
			if params[i] > 0 {
				grad[i] += m.cfg.L1Logic
			}
		}
	}
	if m.cfg.L2Head != 0 {
		for i := headOff; i < headOff+m.ruleDim; i++ {
			grad[i] += m.cfg.L2Head * params[i]
		}
	}
}

// applyParams writes params back into the model, clamping logical weights to
// their [0,1] domain (the head stays unconstrained).
func (m *Model) applyParams(params []float64) {
	i := 0
	for _, l := range m.layers {
		for _, w := range l.weights {
			for j := range w {
				v := params[i]
				if v < 0 {
					v = 0
					params[i] = 0
				} else if v > 1 {
					v = 1
					params[i] = 1
				}
				w[j] = v
				i++
			}
		}
	}
	copy(m.headW, params[i:i+m.ruleDim])
	i += m.ruleDim
	m.headB = params[i]
}

func (m *Model) workerCount() int {
	if m.cfg.Workers > 0 {
		return m.cfg.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// parallelOver splits n items across workers, giving each worker its own
// forward buffers, and calls fn with the worker id and its index chunk.
func (m *Model) parallelOver(n int, fn func(worker int, idx []int, buf *fwdBuffers)) {
	workers := m.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		if n > 0 {
			fn(0, idx, m.newBuffers())
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			idx := make([]int, hi-lo)
			for i := range idx {
				idx[i] = lo + i
			}
			fn(wkr, idx, m.newBuffers())
		}(wkr, lo, hi)
	}
	wg.Wait()
}
