package nn

import (
	"fmt"
	"sync"
)

// Binarized is a compiled snapshot of the deployed (binarized) model: each
// logical node keeps only the input indices its weight selects (w > 0.5), so
// evaluation is pure boolean logic — no float products over the full input
// width. Over {0,1} inputs (which is all the predicate encoder ever emits)
// its scores and rule activations are bit-identical to
// Model.forward(x, true, ...): conjunction/disjunction of binary inputs
// equals the discrete soft-logic product, and the head sum skips exactly
// the zero terms, which cannot change an IEEE sum.
// TestPropertyBinarizedMatchesForward pins the equivalence down on random
// models.
//
// The snapshot is immutable: training the model further does not update it.
// Build it once after training (rule extraction does this) and reuse it for
// all inference.
type Binarized struct {
	inDim   int
	ruleDim int
	layers  []binLayer
	headW   []float64
	headB   float64
	workers int

	pool sync.Pool // *binBuffers
}

type binLayer struct {
	nodes []binNode
}

type binNode struct {
	conj bool
	sel  []int32 // selected indices into the layer's input vector
}

type binBuffers struct {
	layerIn  [][]float64
	layerOut [][]float64
	rules    []float64
	row      []float64 // float32→float64 conversion scratch for wire inputs
}

// Binarize compiles the model's current binarized structure. The returned
// evaluator snapshots the weights; it does not track later training.
func (m *Model) Binarize() *Binarized {
	b := &Binarized{
		inDim:   m.inDim,
		ruleDim: m.ruleDim,
		headW:   append([]float64(nil), m.headW...),
		headB:   m.flat[len(m.flat)-1],
		workers: m.workerCount(),
	}
	for _, l := range m.layers {
		bl := binLayer{nodes: make([]binNode, l.size())}
		for n := 0; n < l.size(); n++ {
			node := binNode{conj: l.nodeKind(n) == nodeConj}
			for i, w := range l.row(n) {
				if w > 0.5 {
					node.sel = append(node.sel, int32(i))
				}
			}
			bl.nodes[n] = node
		}
		b.layers = append(b.layers, bl)
	}
	b.pool = sync.Pool{New: func() any {
		buf := &binBuffers{
			rules: make([]float64, b.ruleDim),
			row:   make([]float64, b.inDim),
		}
		prev := b.inDim
		for _, l := range b.layers {
			buf.layerIn = append(buf.layerIn, make([]float64, prev))
			buf.layerOut = append(buf.layerOut, make([]float64, len(l.nodes)))
			prev = b.inDim + len(l.nodes)
		}
		return buf
	}}
	return b
}

// InDim returns the expected input width.
func (b *Binarized) InDim() int { return b.inDim }

// RuleDim returns the number of rule activations produced.
func (b *Binarized) RuleDim() int { return b.ruleDim }

// eval computes the score and fills buf.rules with the {0,1} activations.
// Inputs must be {0,1} valued (the predicate encoder's output domain).
func (b *Binarized) eval(x []float64, buf *binBuffers) float64 {
	if len(x) != b.inDim {
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), b.inDim))
	}
	ri := 0
	for k := range b.layers {
		in := buf.layerIn[k]
		copy(in, x)
		if k > 0 {
			copy(in[b.inDim:], buf.layerOut[k-1])
		}
		out := buf.layerOut[k]
		for n, node := range b.layers[k].nodes {
			if node.conj {
				v := 1.0
				for _, i := range node.sel {
					if in[i] == 0 {
						v = 0
						break
					}
				}
				out[n] = v
			} else {
				v := 0.0
				for _, i := range node.sel {
					if in[i] != 0 {
						v = 1
						break
					}
				}
				out[n] = v
			}
		}
		copy(buf.rules[ri:ri+len(out)], out)
		ri += len(out)
	}
	s := b.headB
	for j, r := range buf.rules {
		if r != 0 {
			s += b.headW[j]
		}
	}
	return s
}

// Score returns the deployed model's pre-threshold score for x.
func (b *Binarized) Score(x []float64) float64 {
	buf := b.pool.Get().(*binBuffers)
	s := b.eval(x, buf)
	b.pool.Put(buf)
	return s
}

// RuleActivations fills dst (length RuleDim, allocated when nil) with the
// {0,1} rule-activation vector for x and returns it.
func (b *Binarized) RuleActivations(x []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, b.ruleDim)
	}
	buf := b.pool.Get().(*binBuffers)
	b.eval(x, buf)
	copy(dst, buf.rules)
	b.pool.Put(buf)
	return dst
}

// ScoreAndActivationsBatch computes scores and rule-activation rows for
// every input in one parallel pass, mirroring the Model method of the same
// name but on the compiled evaluator.
func (b *Binarized) ScoreAndActivationsBatch(xs [][]float64) (scores []float64, acts [][]float64) {
	scores = make([]float64, len(xs))
	acts = make([][]float64, len(xs))
	slab := make([]float64, len(xs)*b.ruleDim)
	b.parallelOver(len(xs), func(lo, hi int, buf *binBuffers) {
		for i := lo; i < hi; i++ {
			scores[i] = b.eval(xs[i], buf)
			row := slab[i*b.ruleDim : (i+1)*b.ruleDim : (i+1)*b.ruleDim]
			copy(row, buf.rules)
			acts[i] = row
		}
	})
	return scores, acts
}

// ScoreBatchFloat32 scores n = len(rows)/InDim() feature rows, packed
// row-major as float32 wire values, writing the pre-threshold scores into
// dst[:n]. This is the /v1/predict hot path: rows convert into pooled
// scratch and evaluation reuses the same pooled buffers as Score, so the
// steady state allocates nothing (pinned by
// TestBinarizedScoreBatchZeroAlloc). Inputs must be {0,1} valued, like
// every other Binarized entry point. It panics if len(rows) is not a
// multiple of the input width or dst is too short — callers validate the
// wire payload first.
func (b *Binarized) ScoreBatchFloat32(rows []float32, dst []float64) {
	if len(rows)%b.inDim != 0 {
		panic(fmt.Sprintf("nn: %d feature values do not divide into width-%d rows", len(rows), b.inDim))
	}
	n := len(rows) / b.inDim
	if len(dst) < n {
		panic(fmt.Sprintf("nn: score buffer %d, want %d", len(dst), n))
	}
	if n == 0 {
		return
	}
	// The single-worker case skips parallelOver: passing it a closure heap-
	// allocates the capture, and this path's whole point is allocating
	// nothing.
	if b.workers <= 1 || n == 1 {
		buf := b.pool.Get().(*binBuffers)
		b.scoreRangeFloat32(rows, dst, 0, n, buf)
		b.pool.Put(buf)
		return
	}
	b.parallelOver(n, func(lo, hi int, buf *binBuffers) {
		b.scoreRangeFloat32(rows, dst, lo, hi, buf)
	})
}

func (b *Binarized) scoreRangeFloat32(rows []float32, dst []float64, lo, hi int, buf *binBuffers) {
	for i := lo; i < hi; i++ {
		row := rows[i*b.inDim : (i+1)*b.inDim]
		for j, v := range row {
			buf.row[j] = float64(v)
		}
		dst[i] = b.eval(buf.row, buf)
	}
}

func (b *Binarized) parallelOver(n int, fn func(lo, hi int, buf *binBuffers)) {
	if n == 0 {
		return
	}
	workers := b.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		buf := b.pool.Get().(*binBuffers)
		fn(0, n, buf)
		b.pool.Put(buf)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			buf := b.pool.Get().(*binBuffers)
			fn(lo, hi, buf)
			b.pool.Put(buf)
		}(lo, hi)
	}
	wg.Wait()
}
