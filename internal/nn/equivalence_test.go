package nn

// Equivalence tests for the flat-parameter training kernel. The fused
// regularize+Adam+clamp step is checked element-for-element against a
// straight port of the unfused seed sequence (regularize the gradient, run
// a plain Adam update, clamp the logical weights), and full training runs
// must be bit-deterministic across repeats despite buffer pooling and
// worker parallelism. Together with TestGoldenTraining (which pins hashes
// captured from the pre-overhaul implementation) this establishes the
// overhaul changed performance only, never a single output bit.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// referenceStep is the seed's unfused update: regularize a copy of the
// gradient, apply Adam over the full vector, then clamp logical weights to
// [0,1]. flat, am, av are updated in place; t is the post-increment Adam
// step count.
func referenceStep(flat, grad, am, av []float64, t, headOff int, lr, l1, l2 float64) {
	last := len(flat) - 1
	g := append([]float64(nil), grad...)
	for i := 0; i < headOff; i++ {
		if l1 != 0 && flat[i] > 0 {
			g[i] += l1
		}
	}
	if l2 != 0 {
		for i := headOff; i < last; i++ {
			g[i] += l2 * flat[i]
		}
	}
	bc1 := 1 - math.Pow(adamBeta1, float64(t))
	bc2 := 1 - math.Pow(adamBeta2, float64(t))
	for i := range flat {
		am[i] = adamBeta1*am[i] + (1-adamBeta1)*g[i]
		av[i] = adamBeta2*av[i] + (1-adamBeta2)*g[i]*g[i]
		mhat := am[i] / bc1
		vhat := av[i] / bc2
		flat[i] -= lr * mhat / (math.Sqrt(vhat) + adamEps)
	}
	for i := 0; i < headOff; i++ {
		if flat[i] < 0 {
			flat[i] = 0
		} else if flat[i] > 1 {
			flat[i] = 1
		}
	}
}

func TestPropertyFusedStepMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{
			Hidden:       []int{4 + 2*r.Intn(4)},
			LearningRate: 0.01 + r.Float64()*0.1,
			Seed:         r.Int63(),
		}
		if r.Intn(2) == 1 {
			cfg.Hidden = append(cfg.Hidden, 4+2*r.Intn(3))
		}
		if r.Intn(2) == 1 {
			cfg.L1Logic = r.Float64() * 1e-3
		}
		if r.Intn(2) == 1 {
			cfg.L2Head = r.Float64() * 1e-2
		}
		m, err := New(3+r.Intn(8), cfg)
		if err != nil {
			panic(err)
		}
		n := m.numParams()
		grad := make([]float64, n)
		for i := range grad {
			grad[i] = r.NormFloat64()
		}
		// Random optimizer pre-state, as mid-training would have.
		steps := r.Intn(50)
		for i := 0; i < n; i++ {
			m.opt.m[i] = r.NormFloat64() * 0.1
			m.opt.v[i] = r.Float64() * 0.01
		}
		m.opt.t = steps

		wantFlat := append([]float64(nil), m.flat...)
		wantM := append([]float64(nil), m.opt.m...)
		wantV := append([]float64(nil), m.opt.v...)
		referenceStep(wantFlat, grad, wantM, wantV, steps+1, m.headOff,
			cfg.LearningRate, cfg.L1Logic, cfg.L2Head)

		m.stepFused(grad)
		for i := range wantFlat {
			if m.flat[i] != wantFlat[i] || m.opt.m[i] != wantM[i] || m.opt.v[i] != wantV[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTrainingDeterministic(t *testing.T) {
	// Two independent models with identical config and data must produce
	// bit-identical losses and parameters — buffer pooling and fixed-order
	// worker reduction may not introduce nondeterminism.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs, ys := goldenData(60+r.Intn(60), 10+r.Intn(10), r.Int63())
		cfg := Config{
			Hidden:    []int{6 + 2*r.Intn(3)},
			Epochs:    1 + r.Intn(3),
			BatchSize: 8 + r.Intn(24),
			Grafting:  r.Intn(2) == 1,
			KeepBest:  r.Intn(2) == 1,
			Seed:      r.Int63(),
			Workers:   1 + r.Intn(4),
		}
		a, err := New(len(xs[0]), cfg)
		if err != nil {
			panic(err)
		}
		b, err := New(len(xs[0]), cfg)
		if err != nil {
			panic(err)
		}
		if a.Train(xs, ys) != b.Train(xs, ys) {
			return false
		}
		pa, pb := a.Params(), b.Params()
		for i := range pa {
			if pa[i] != pb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchGradAllocs(t *testing.T) {
	// Steady-state per-batch gradient work must be allocation free on the
	// single-worker path (the multi-worker path spends a fixed handful on
	// goroutine startup).
	xs, ys := goldenData(64, 16, 21)
	m, err := New(16, Config{Hidden: []int{8}, Workers: 1, Grafting: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int, len(xs))
	for i := range batch {
		batch[i] = i
	}
	gbs := []*gradBuffers{m.getGradBuffers()}
	defer m.putGradBuffers(gbs[0])
	losses := make([]float64, 1)
	grad := make([]float64, m.numParams())
	m.batchGrad(xs, ys, batch, gbs, losses, grad) // warm up
	if n := testing.AllocsPerRun(50, func() {
		m.batchGrad(xs, ys, batch, gbs, losses, grad)
	}); n != 0 {
		t.Errorf("batchGrad allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		m.stepFused(grad)
	}); n != 0 {
		t.Errorf("stepFused allocates %v per run, want 0", n)
	}
}
