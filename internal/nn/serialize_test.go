package nn

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelRoundTrip(t *testing.T) {
	// An untrained two-layer model with every config field set, and a
	// trained single-layer model: both must round-trip bit-exactly.
	m, err := New(7, Config{
		Hidden: []int{8, 6}, Grafting: true, KeepBest: true, FreezeBias: true,
		LearningRate: 0.03, L1Logic: 1e-4, L2Head: 1e-3,
		Epochs: 25, BatchSize: 32, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(4, Config{Hidden: []int{8}, Grafting: true, Seed: 5, Epochs: 10, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	m2.Train(xorXS, xorYS)

	for _, model := range []*Model{m, m2} {
		var buf bytes.Buffer
		if _, err := model.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadModel(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.InDim() != model.InDim() || back.RuleDim() != model.RuleDim() {
			t.Fatalf("shape changed: %d/%d vs %d/%d",
				back.InDim(), back.RuleDim(), model.InDim(), model.RuleDim())
		}
		a, b := model.Params(), back.Params()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("param %d changed: %v vs %v", i, a[i], b[i])
			}
		}
		if back.Config().LearningRate != model.Config().LearningRate ||
			back.Config().Grafting != model.Config().Grafting {
			t.Fatalf("config changed: %+v vs %+v", back.Config(), model.Config())
		}
		// Behavioural equivalence on suitably-sized inputs.
		x := make([]float64, model.InDim())
		for i := range x {
			x[i] = float64(i % 2)
		}
		if model.Score(x) != back.Score(x) {
			t.Fatal("scores diverge after round trip")
		}
	}
}

func TestReadModelCorruption(t *testing.T) {
	m, err := New(4, Config{Hidden: []int{4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flipped payload byte → checksum error.
	bad := append([]byte(nil), raw...)
	bad[20] ^= 0xFF
	if _, err := ReadModel(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered model err = %v", err)
	}
	// Truncation.
	if _, err := ReadModel(bytes.NewReader(raw[:10])); err == nil {
		t.Fatal("truncated model should error")
	}
	if _, err := ReadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty model should error")
	}
	// Bad magic.
	bad2 := append([]byte(nil), raw...)
	bad2[0] = 'X'
	// Fix the checksum so the magic check is reached.
	if _, err := ReadModel(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad magic should error")
	}
}
