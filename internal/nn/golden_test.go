package nn

// Golden bit-identity tests for the training kernel. The hashes below were
// produced by the pre-overhaul (clarity-first) implementation; the flat
// parameter kernel must reproduce every Params() vector and loss value
// bit-for-bit. Workers is pinned to 1 so chunking does not depend on
// GOMAXPROCS and the hashes are machine-independent.

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"
)

// goldenData generates a deterministic planted-rule dataset (same scheme as
// benchData but smaller).
func goldenData(n, dim int, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		x := make([]float64, dim)
		for j := range x {
			if r.Float64() < 0.4 {
				x[j] = 1
			}
		}
		xs[i] = x
		if (x[0] == 1 && x[1] == 1) || (x[2] == 1 && x[3] == 0) {
			ys[i] = 1
		}
	}
	return xs, ys
}

// hashFloats folds the exact bit patterns of vs into a crc32.
func hashFloats(h uint32, vs ...float64) uint32 {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h = crc32.Update(h, crc32.IEEETable, b[:])
	}
	return h
}

func TestGoldenTraining(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want uint32
	}{
		{"plain", Config{Hidden: []int{16}, Epochs: 5, Seed: 1, Workers: 1}, 0x030a03b0},
		{"grafted", Config{Hidden: []int{16}, Epochs: 5, Grafting: true, Seed: 2, Workers: 1}, 0x23051560},
		{"regularized", Config{Hidden: []int{16}, Epochs: 5, Grafting: true, Seed: 3, Workers: 1, L1Logic: 2e-4, L2Head: 1e-3}, 0xa527beca},
		{"frozen-keepbest", Config{Hidden: []int{16}, Epochs: 5, Grafting: true, Seed: 4, Workers: 1, FreezeBias: true, KeepBest: true}, 0x9d41fba5},
		{"two-layer", Config{Hidden: []int{12, 8}, Epochs: 4, Grafting: true, Seed: 5, Workers: 1, L1Logic: 1e-4}, 0xaccaa6e5},
	}
	xs, ys := goldenData(160, 24, 11)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(24, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			loss := m.Train(xs, ys)
			h := hashFloats(0, loss)
			h = hashFloats(h, m.Params()...)
			if h != tc.want {
				t.Errorf("golden hash %#08x, want %#08x (loss=%v)", h, tc.want, loss)
			}
		})
	}
}

func TestGoldenForward(t *testing.T) {
	xs, _ := goldenData(64, 24, 12)
	m, err := New(24, Config{Hidden: []int{12, 8}, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := uint32(0)
	acts := make([]float64, m.RuleDim())
	for _, x := range xs {
		h = hashFloats(h, m.Score(x))
		h = hashFloats(h, m.RuleActivations(x, acts)...)
	}
	const want = 0x1de83e00
	if h != want {
		t.Errorf("golden forward hash %#08x, want %#08x", h, want)
	}
}
