package nn

import (
	"time"

	"repro/internal/telemetry"
)

// EpochStats is what the training loop reports after each epoch when a
// TrainHooks is installed.
type EpochStats struct {
	// Epoch is the 1-based epoch index within the TrainEpochs call.
	Epoch int
	// Loss is the epoch's mean training loss.
	Loss float64
	// Elapsed is the epoch's wall time (shuffle, batches, optimizer steps).
	Elapsed time.Duration
	// SelectedWeights counts logical weights above the 0.5 binarization
	// threshold — the size of the deployed (grafted) rule structure.
	SelectedWeights int
	// GraftSwitches counts logical weights that crossed the binarization
	// threshold in either direction during this epoch: how much the
	// discrete structure the grafted gradient is taken at is still moving.
	GraftSwitches int
}

// TrainHooks observes training. A nil hooks pointer (the default) is
// completely free: the per-sample kernels are untouched and the per-epoch
// loop performs one nil check, so grafted training stays allocation-free
// in steady state (pinned by TestTrainInnerLoopZeroAlloc).
type TrainHooks struct {
	// OnEpoch is called synchronously after every epoch. It must be fast;
	// it runs on the training goroutine.
	OnEpoch func(EpochStats)
}

// SetTrainHooks installs (or with nil removes) training observation.
func (m *Model) SetTrainHooks(h *TrainHooks) { m.hooks = h }

// selectionMask fills mask (len headOff) with the current binarization of
// every logical weight and returns how many are selected and how many
// entries changed relative to the mask's previous contents.
func (m *Model) selectionMask(mask []bool, first bool) (selected, switches int) {
	for i, w := range m.flat[:m.headOff] {
		sel := w > 0.5
		if sel {
			selected++
		}
		if !first && sel != mask[i] {
			switches++
		}
		mask[i] = sel
	}
	return selected, switches
}

// TrainTelemetry bridges TrainHooks onto a telemetry registry, exposing
// the per-epoch gauges and counters of the training hot path:
//
//	ctfl_train_epochs_total        epochs completed
//	ctfl_train_epoch_seconds       per-epoch wall-time histogram
//	ctfl_train_last_loss           most recent epoch's mean loss
//	ctfl_train_selected_weights    binarized rule-structure size
//	ctfl_train_graft_switches_total  cumulative binarization flips
//
// Install the result with Model.SetTrainHooks.
func TrainTelemetry(r *telemetry.Registry) *TrainHooks {
	epochs := r.Counter("ctfl_train_epochs_total", "training epochs completed")
	seconds := r.Histogram("ctfl_train_epoch_seconds", "per-epoch training wall time", nil)
	loss := r.Gauge("ctfl_train_last_loss", "mean training loss of the most recent epoch")
	selected := r.Gauge("ctfl_train_selected_weights", "logical weights above the binarization threshold")
	switches := r.Counter("ctfl_train_graft_switches_total", "logical weights that crossed the binarization threshold")
	return &TrainHooks{OnEpoch: func(s EpochStats) {
		epochs.Inc()
		seconds.Observe(s.Elapsed.Seconds())
		loss.Set(s.Loss)
		selected.Set(float64(s.SelectedWeights))
		switches.Add(int64(s.GraftSwitches))
	}}
}
