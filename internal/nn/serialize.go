package nn

// Model serialization: the federation persists the trained global model
// between the training and tracing phases (and across marketplace epochs),
// so the deployed rule-based model needs a stable binary form. The format
// is self-describing enough to rebuild the model without the original
// Config literal.
//
// Layout (little-endian):
//
//	magic    "CTNN"
//	version  uint8 (1)
//	inDim    uint32
//	layers   uint32, then per layer: hidden uint32
//	flags    uint8 (bit0 grafting, bit1 freezeBias, bit2 keepBest)
//	lr, l1, l2  float64
//	epochs, batch uint32
//	seed     int64
//	params   uint32 count, then float64 each
//	crc32    uint32 over everything above

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

var nnMagic = [4]byte{'C', 'T', 'N', 'N'}

const serializeVersion = 1

// WriteTo serializes the model. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(nnMagic[:])
	buf.WriteByte(serializeVersion)
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	putF := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf.Write(b[:])
	}
	put32(uint32(m.inDim))
	put32(uint32(len(m.cfg.Hidden)))
	for _, h := range m.cfg.Hidden {
		put32(uint32(h))
	}
	var flags uint8
	if m.cfg.Grafting {
		flags |= 1
	}
	if m.cfg.FreezeBias {
		flags |= 2
	}
	if m.cfg.KeepBest {
		flags |= 4
	}
	buf.WriteByte(flags)
	putF(m.cfg.LearningRate)
	putF(m.cfg.L1Logic)
	putF(m.cfg.L2Head)
	put32(uint32(m.cfg.Epochs))
	put32(uint32(m.cfg.BatchSize))
	var seedb [8]byte
	binary.LittleEndian.PutUint64(seedb[:], uint64(m.cfg.Seed))
	buf.Write(seedb[:])

	params := m.Params()
	put32(uint32(len(params)))
	for _, p := range params {
		putF(p)
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], sum)
	buf.Write(crcb[:])

	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadModel deserializes a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("nn: reading model: %w", err)
	}
	if len(data) < 14 {
		return nil, fmt.Errorf("nn: model data too short (%d bytes)", len(data))
	}
	body, crcb := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(crcb) != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("nn: model checksum mismatch")
	}
	if !bytes.Equal(body[:4], nnMagic[:]) {
		return nil, fmt.Errorf("nn: bad magic %q", body[:4])
	}
	if body[4] != serializeVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", body[4])
	}
	at := 5
	get32 := func() (uint32, error) {
		if at+4 > len(body) {
			return 0, fmt.Errorf("nn: truncated model data")
		}
		v := binary.LittleEndian.Uint32(body[at:])
		at += 4
		return v, nil
	}
	getF := func() (float64, error) {
		if at+8 > len(body) {
			return 0, fmt.Errorf("nn: truncated model data")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[at:]))
		at += 8
		return v, nil
	}
	inDim, err := get32()
	if err != nil {
		return nil, err
	}
	nLayers, err := get32()
	if err != nil {
		return nil, err
	}
	if nLayers > 64 {
		return nil, fmt.Errorf("nn: implausible layer count %d", nLayers)
	}
	cfg := Config{}
	for i := uint32(0); i < nLayers; i++ {
		h, err := get32()
		if err != nil {
			return nil, err
		}
		cfg.Hidden = append(cfg.Hidden, int(h))
	}
	if at >= len(body) {
		return nil, fmt.Errorf("nn: truncated model data")
	}
	flags := body[at]
	at++
	cfg.Grafting = flags&1 != 0
	cfg.FreezeBias = flags&2 != 0
	cfg.KeepBest = flags&4 != 0
	if cfg.LearningRate, err = getF(); err != nil {
		return nil, err
	}
	if cfg.L1Logic, err = getF(); err != nil {
		return nil, err
	}
	if cfg.L2Head, err = getF(); err != nil {
		return nil, err
	}
	epochs, err := get32()
	if err != nil {
		return nil, err
	}
	batch, err := get32()
	if err != nil {
		return nil, err
	}
	cfg.Epochs, cfg.BatchSize = int(epochs), int(batch)
	if at+8 > len(body) {
		return nil, fmt.Errorf("nn: truncated model data")
	}
	cfg.Seed = int64(binary.LittleEndian.Uint64(body[at:]))
	at += 8

	m, err := New(int(inDim), cfg)
	if err != nil {
		return nil, fmt.Errorf("nn: rebuilding model: %w", err)
	}
	nParams, err := get32()
	if err != nil {
		return nil, err
	}
	if int(nParams) != m.numParams() {
		return nil, fmt.Errorf("nn: model has %d params, data holds %d", m.numParams(), nParams)
	}
	params := make([]float64, nParams)
	for i := range params {
		if params[i], err = getF(); err != nil {
			return nil, err
		}
	}
	if err := m.SetParams(params); err != nil {
		return nil, err
	}
	return m, nil
}
