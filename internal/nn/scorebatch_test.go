package nn

import (
	"math/rand"
	"testing"
)

func buildBinarized(t testing.TB, dim int, seed int64) *Binarized {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	xs, ys := goldenData(60, dim, r.Int63())
	m, err := New(dim, Config{Hidden: []int{8}, Epochs: 2, BatchSize: 16, Seed: r.Int63(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xs, ys)
	return m.Binarize()
}

func TestScoreBatchFloat32MatchesScore(t *testing.T) {
	const dim = 9
	b := buildBinarized(t, dim, 41)
	r := rand.New(rand.NewSource(42))

	const n = 17
	rows := make([]float32, n*dim)
	for i := range rows {
		rows[i] = float32(r.Intn(2))
	}
	dst := make([]float64, n)
	b.ScoreBatchFloat32(rows, dst)

	x := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			x[j] = float64(rows[i*dim+j])
		}
		if want := b.Score(x); dst[i] != want {
			t.Fatalf("row %d: batch %v, single %v", i, dst[i], want)
		}
	}

	// Empty batch is a no-op.
	b.ScoreBatchFloat32(nil, nil)
}

func TestScoreBatchFloat32RejectsRaggedInput(t *testing.T) {
	b := buildBinarized(t, 6, 43)
	defer func() {
		if recover() == nil {
			t.Fatal("non-multiple row length did not panic")
		}
	}()
	b.ScoreBatchFloat32(make([]float32, 7), make([]float64, 2))
}

// TestBinarizedScoreBatchZeroAlloc pins the predict hot path: once the
// evaluator's buffer pool is warm, scoring a batch on the single-worker path
// must not allocate.
func TestBinarizedScoreBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops cached buffers under -race")
	}
	const dim = 12
	b := buildBinarized(t, dim, 44)
	rows := make([]float32, 4*dim)
	for i := range rows {
		if i%3 == 0 {
			rows[i] = 1
		}
	}
	dst := make([]float64, 4)
	b.ScoreBatchFloat32(rows, dst) // warm the pool

	allocs := testing.AllocsPerRun(100, func() {
		b.ScoreBatchFloat32(rows, dst)
	})
	if allocs != 0 {
		t.Fatalf("ScoreBatchFloat32 allocates %v times per batch", allocs)
	}
}
