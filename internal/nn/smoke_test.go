package nn

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// TestSmokeTicTacToe is the end-to-end learnability check: the grafted
// logical network must reach high binarized accuracy on the tic-tac-toe
// endgame task, where the ground truth is exactly eight 3-predicate
// conjunctions per class side.
func TestSmokeTicTacToe(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tab := dataset.TicTacToe()
	r := stats.NewRNG(1)
	train, test := tab.Split(r, 0.2)
	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	xtr, ytr := enc.EncodeTable(train)
	xte, yte := enc.EncodeTable(test)

	m, err := New(enc.Width(), Config{Hidden: []int{64}, Epochs: 80, Grafting: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xtr, ytr)
	acc := m.Accuracy(xte, yte)
	t.Logf("tic-tac-toe binarized test accuracy: %.3f", acc)
	if acc < 0.90 {
		t.Fatalf("accuracy %.3f below 0.90 — grafted model failed to learn", acc)
	}
}
