package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Fatal("inDim=0 should error")
	}
	if _, err := New(4, Config{Hidden: []int{1}}); err == nil {
		t.Fatal("hidden layer of 1 node should error")
	}
	m, err := New(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.RuleDim() != 64 {
		t.Fatalf("default RuleDim = %d, want 64", m.RuleDim())
	}
	if m.InDim() != 4 {
		t.Fatalf("InDim = %d", m.InDim())
	}
}

func TestConjDisjForwardSemantics(t *testing.T) {
	// Discrete conj: product over selected inputs.
	x := []float64{1, 0, 1}
	if got := conjForward(x, []float64{1, 0, 1}, true); got != 1 {
		t.Fatalf("conj over satisfied selection = %v, want 1", got)
	}
	if got := conjForward(x, []float64{1, 1, 0}, true); got != 0 {
		t.Fatalf("conj with violated selection = %v, want 0", got)
	}
	if got := conjForward(x, []float64{0, 0, 0}, true); got != 1 {
		t.Fatalf("empty conj = %v, want 1 (neutral element)", got)
	}
	// Discrete disj: 1 iff any selected input is active.
	if got := disjForward(x, []float64{0, 1, 0}, true); got != 0 {
		t.Fatalf("disj over inactive selection = %v, want 0", got)
	}
	if got := disjForward(x, []float64{0, 1, 1}, true); got != 1 {
		t.Fatalf("disj with active selection = %v, want 1", got)
	}
	if got := disjForward(x, []float64{0, 0, 0}, true); got != 0 {
		t.Fatalf("empty disj = %v, want 0", got)
	}
	// Continuous forms at binary weights coincide with discrete ones.
	for trial := 0; trial < 50; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		n := 1 + r.Intn(6)
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(2))
			ws[i] = float64(r.Intn(2))
		}
		if c, d := conjForward(xs, ws, false), conjForward(xs, ws, true); math.Abs(c-d) > 1e-12 {
			t.Fatalf("conj continuous %v != discrete %v at binary weights", c, d)
		}
		if c, d := disjForward(xs, ws, false), disjForward(xs, ws, true); math.Abs(c-d) > 1e-12 {
			t.Fatalf("disj continuous %v != discrete %v at binary weights", c, d)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	m, err := New(7, Config{Hidden: []int{8, 6}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	want := m.numParams()
	// 8 nodes × 7 inputs + 6 nodes × (7+8) inputs + 14 head + 1 bias
	if wantManual := 8*7 + 6*15 + 14 + 1; want != wantManual {
		t.Fatalf("numParams = %d, want %d", want, wantManual)
	}
	if len(p) != want {
		t.Fatalf("Params length = %d, want %d", len(p), want)
	}
	p2 := make([]float64, len(p))
	for i := range p2 {
		p2[i] = float64(i%10) / 10
	}
	if err := m.SetParams(p2); err != nil {
		t.Fatal(err)
	}
	got := m.Params()
	for i := range got {
		if got[i] != p2[i] {
			t.Fatalf("param %d = %v, want %v", i, got[i], p2[i])
		}
	}
	if err := m.SetParams(p2[:3]); err == nil {
		t.Fatal("short SetParams should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := New(5, Config{Hidden: []int{4}, Seed: 1})
	c := m.Clone()
	mp, cp := m.Params(), c.Params()
	for i := range mp {
		if mp[i] != cp[i] {
			t.Fatal("clone params differ")
		}
	}
	p := c.Params()
	p[0] = 0.123
	if err := c.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if m.Params()[0] == 0.123 {
		t.Fatal("mutating clone affected original")
	}
}

func TestPredictConsistency(t *testing.T) {
	m, _ := New(6, Config{Hidden: []int{8}, Seed: 5})
	xs := [][]float64{
		{1, 0, 1, 0, 1, 0},
		{0, 1, 0, 1, 0, 1},
		{1, 1, 1, 1, 1, 1},
		{0, 0, 0, 0, 0, 0},
	}
	batch := m.PredictBatch(xs)
	for i, x := range xs {
		if one := m.Predict(x); one != batch[i] {
			t.Fatalf("Predict(%d)=%d vs batch %d", i, one, batch[i])
		}
		score := m.Score(x)
		want := 0
		if score >= 0 {
			want = 1
		}
		if batch[i] != want {
			t.Fatalf("prediction %d inconsistent with score %v", batch[i], score)
		}
	}
}

func TestAccuracy(t *testing.T) {
	m, _ := New(3, Config{Hidden: []int{4}, Seed: 2})
	xs := [][]float64{{1, 0, 0}, {0, 1, 0}}
	pred := m.PredictBatch(xs)
	if acc := m.Accuracy(xs, pred); acc != 1 {
		t.Fatalf("accuracy vs own predictions = %v, want 1", acc)
	}
	flip := []int{1 - pred[0], 1 - pred[1]}
	if acc := m.Accuracy(xs, flip); acc != 0 {
		t.Fatalf("accuracy vs flipped = %v, want 0", acc)
	}
	if m.Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestRuleActivationsMatchSpecs(t *testing.T) {
	m, _ := New(6, Config{Hidden: []int{8}, Seed: 9})
	// Force a known structure: node 0 (conj) selects inputs 0,1; node 4
	// (disj; numConj=4) selects inputs 2,3.
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	setW := func(node, in int, v float64) { p[node*6+in] = v }
	setW(0, 0, 1)
	setW(0, 1, 1)
	setW(4, 2, 1)
	setW(4, 3, 1)
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	specs := m.RuleSpecs()
	if len(specs) != 8 {
		t.Fatalf("specs = %d, want 8", len(specs))
	}
	if !specs[0].Conj || len(specs[0].Selected) != 2 {
		t.Fatalf("spec 0 wrong: %+v", specs[0])
	}
	if specs[4].Conj || len(specs[4].Selected) != 2 {
		t.Fatalf("spec 4 wrong: %+v", specs[4])
	}

	act := m.RuleActivations([]float64{1, 1, 0, 0, 0, 0}, nil)
	if act[0] != 1 {
		t.Fatal("conj node should fire when both selected inputs are 1")
	}
	if act[4] != 0 {
		t.Fatal("disj node should not fire when selected inputs are 0")
	}
	act = m.RuleActivations([]float64{1, 0, 1, 0, 0, 0}, nil)
	if act[0] != 0 {
		t.Fatal("conj node must not fire with one input missing")
	}
	if act[4] != 1 {
		t.Fatal("disj node should fire with one selected input active")
	}
}

// TestGradientCheck compares analytic continuous-mode gradients against
// central finite differences of the logistic loss.
func TestGradientCheck(t *testing.T) {
	m, err := New(5, Config{Hidden: []int{6}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Move weights into the interior so finite differences are smooth.
	p := m.Params()
	r := rand.New(rand.NewSource(4))
	for i := range p {
		p[i] = 0.15 + 0.7*r.Float64()
	}
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 0, 1, 1, 0}
	y := 1

	gb := m.newGradBuffers()
	m.backprop(x, y, false, gb)
	analytic := gb.grad

	loss := func(params []float64) float64 {
		if err := m.SetParams(params); err != nil {
			t.Fatal(err)
		}
		s := m.forward(x, false, m.newBuffers())
		pp := sigmoid(s)
		if y == 1 {
			return -math.Log(pp)
		}
		return -math.Log(1 - pp)
	}
	const h = 1e-6
	base := m.Params()
	for i := range base {
		up := append([]float64(nil), base...)
		dn := append([]float64(nil), base...)
		up[i] += h
		dn[i] -= h
		num := (loss(up) - loss(dn)) / (2 * h)
		if diff := math.Abs(num - analytic[i]); diff > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("param %d: numeric %v vs analytic %v", i, num, analytic[i])
		}
	}
}

// TestGradientCheckTwoLayers exercises the skip-connection backprop path.
func TestGradientCheckTwoLayers(t *testing.T) {
	m, err := New(4, Config{Hidden: []int{4, 4}, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	r := rand.New(rand.NewSource(8))
	for i := range p {
		p[i] = 0.15 + 0.7*r.Float64()
	}
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	x := []float64{0, 1, 1, 0}
	y := 0

	gb := m.newGradBuffers()
	m.backprop(x, y, false, gb)
	analytic := append([]float64(nil), gb.grad...)

	loss := func(params []float64) float64 {
		if err := m.SetParams(params); err != nil {
			t.Fatal(err)
		}
		s := m.forward(x, false, m.newBuffers())
		pp := sigmoid(s)
		return -math.Log(1 - pp)
	}
	const h = 1e-6
	base := m.Params()
	for i := range base {
		up := append([]float64(nil), base...)
		dn := append([]float64(nil), base...)
		up[i] += h
		dn[i] -= h
		num := (loss(up) - loss(dn)) / (2 * h)
		if diff := math.Abs(num - analytic[i]); diff > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("param %d: numeric %v vs analytic %v", i, num, analytic[i])
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Learn a simple AND of two inputs.
	xs := [][]float64{{0, 0, 1}, {0, 1, 1}, {1, 0, 0}, {1, 1, 0}}
	ys := []int{0, 0, 0, 1}
	m, _ := New(3, Config{Hidden: []int{8}, Epochs: 150, BatchSize: 4, Grafting: true, Seed: 21})
	first := m.TrainEpochs(xs, ys, 1)
	last := m.TrainEpochs(xs, ys, 149)
	if last >= first {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
	if acc := m.Accuracy(xs, ys); acc < 1 {
		t.Fatalf("AND task accuracy = %v, want 1.0", acc)
	}
}

func TestTrainEmptyAndMismatched(t *testing.T) {
	m, _ := New(3, Config{Hidden: []int{4}})
	if got := m.TrainEpochs(nil, nil, 5); got != 0 {
		t.Fatalf("training on empty data returned %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	m.TrainEpochs([][]float64{{1, 0, 0}}, nil, 1)
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
}

func TestConjBackwardZeroFactorHandling(t *testing.T) {
	// One exactly-zero factor: w=1, x=0 makes F = 0. Gradients for that index
	// must use the product of the remaining factors.
	x := []float64{0, 1, 1}
	w := []float64{1, 0.5, 0.5}
	gw := make([]float64, 3)
	gx := make([]float64, 3)
	fbuf := make([]float64, 3)
	_, prodNZ, zeros, zeroIdx := conjForwardTrain(x, w, fbuf)
	if zeros != 1 || zeroIdx != 0 {
		t.Fatalf("scan found zeros=%d zeroIdx=%d, want 1 at 0", zeros, zeroIdx)
	}
	conjBackward(x, w, 1, gw, gx, 0, fbuf, prodNZ, zeros, zeroIdx)
	// d out / d w_0 = -(1-x0) * F1*F2 = -(1)*(1*1) = -1
	if math.Abs(gw[0]+1) > 1e-9 {
		t.Fatalf("gw[0] = %v, want -1", gw[0])
	}
	// Other partials contain the zero factor, so they vanish.
	if gw[1] != 0 || gw[2] != 0 {
		t.Fatalf("gw[1,2] = %v,%v, want 0", gw[1], gw[2])
	}
	// Two zero factors: every partial is zero, so backprop skips the node
	// entirely — the scan must report the count that triggers that skip.
	_, _, zeros2, _ := conjForwardTrain([]float64{0, 0, 1}, []float64{1, 1, 0.5}, fbuf)
	if zeros2 != 2 {
		t.Fatalf("double-zero case: scan found %d zero factors, want 2", zeros2)
	}
}

func TestDisjBackwardZeroFactorHandling(t *testing.T) {
	// G_0 = 1 - x0*w0 = 0 when both are 1.
	x := []float64{1, 0, 1}
	w := []float64{1, 0.5, 0.25}
	gw := make([]float64, 3)
	gx := make([]float64, 3)
	fbuf := make([]float64, 3)
	_, prodNZ, zeros, zeroIdx := disjForwardTrain(x, w, fbuf)
	disjBackward(x, w, 1, gw, gx, 0, fbuf, prodNZ, zeros, zeroIdx)
	// d out/d w_0 = x0 * G1*G2 = 1 * (1)*(0.75) = 0.75
	if math.Abs(gw[0]-0.75) > 1e-9 {
		t.Fatalf("gw[0] = %v, want 0.75", gw[0])
	}
	if gw[1] != 0 || gw[2] != 0 {
		t.Fatalf("partials through the zero factor should vanish: %v", gw)
	}
}

func TestWorkersConfigRespected(t *testing.T) {
	m, _ := New(3, Config{Hidden: []int{4}, Workers: 2})
	if got := m.workerCount(); got != 2 {
		t.Fatalf("workerCount = %d, want 2", got)
	}
	m2, _ := New(3, Config{Hidden: []int{4}})
	if got := m2.workerCount(); got < 1 {
		t.Fatalf("default workerCount = %d", got)
	}
}

func BenchmarkForwardDiscrete(b *testing.B) {
	m, _ := New(120, Config{Hidden: []int{128}, Seed: 1})
	x := make([]float64, 120)
	for i := range x {
		if i%3 == 0 {
			x[i] = 1
		}
	}
	buf := m.newBuffers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.forward(x, true, buf)
	}
}

func BenchmarkBackprop(b *testing.B) {
	m, _ := New(120, Config{Hidden: []int{128}, Seed: 1})
	x := make([]float64, 120)
	for i := range x {
		if i%3 == 0 {
			x[i] = 1
		}
	}
	gb := m.newGradBuffers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.backprop(x, 1, true, gb)
	}
}
