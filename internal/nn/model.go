// Package nn implements the practical rule-based model of CTFL Section V: a
// logical neural network whose hidden nodes compute soft conjunctions and
// disjunctions over encoded predicates (Eq. 7), topped by a linear voting
// head, and trained with gradient grafting so that the deployed model has
// hard {0,1} logical weights and therefore produces non-fuzzy, traceable
// rules.
//
// Architecture (paper Fig. 3):
//
//	encoded predicates (from dataset.Encoder; the binarization layer with
//	random bounds lives there)
//	  -> logical layer 1 (half conjunction, half disjunction nodes)
//	  -> ... optional further logical layers with skip connections ...
//	  -> linear head over the concatenation of all logical layers' outputs
//
// The classification rule is the paper's Eq. 3: nodes whose head weight is
// positive act as positive rules r+, negative head weights as negative rules
// r-, and the model predicts the positive class iff the weighted vote
// crosses the bias threshold.
//
// Parameter storage is one contiguous flat vector (see Model.flat): each
// logical layer's weights occupy a row-major block, followed by the head
// weights and the head bias. Training updates the flat vector in place, so
// Params/SetParams are single copies and the Adam step streams sequentially
// through memory.
package nn

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Config controls model shape and training.
type Config struct {
	// Hidden lists the node count of each logical layer. Each layer is split
	// half conjunction / half disjunction nodes. Default: one layer of 64.
	Hidden []int
	// LearningRate for Adam. Default 0.05.
	LearningRate float64
	// Epochs of local training. Default 60.
	Epochs int
	// BatchSize for mini-batch SGD. Default 64.
	BatchSize int
	// Grafting selects gradient-grafted training of the binarized model
	// (the paper's method). When false, training optimizes the continuous
	// model and binarizes post hoc — the ablation baseline.
	Grafting bool
	// L1Logic applies an L1 penalty to the logical weights, pruning rule
	// operands so the extracted rules stay crisp and small. Default 0.
	L1Logic float64
	// L2Head applies weight decay to the linear head, keeping rule
	// importance weights bounded. Default 0.
	L2Head float64
	// FreezeBias pins the head bias at zero, making the deployed model
	// exactly the paper's Eq. 3 vote 1[w+·r+ >= w−·r−]. Without a bias the
	// model cannot fall back on a majority-class default, so every
	// prediction is carried by activated rules and stays traceable.
	FreezeBias bool
	// KeepBest restores, at the end of each TrainEpochs call, the parameter
	// snapshot with the highest binarized training accuracy seen after any
	// epoch. Grafted training of hard-threshold models is non-monotone; the
	// deployed model is the binarized one, so selecting its best snapshot is
	// the natural stopping rule.
	KeepBest bool
	// Seed for weight initialization and batch shuffling.
	Seed int64
	// Workers bounds the goroutines used for batch-parallel gradient
	// computation; 0 means GOMAXPROCS.
	Workers int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64}
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	return c
}

// layerKind tags each logical node.
const (
	nodeConj = iota
	nodeDisj
)

// logicalLayer describes one layer's shape and where its weight block lives
// in the model's flat parameter vector. w[n*inDim+i] is the involvement
// degree of input i in node n, constrained to [0,1].
type logicalLayer struct {
	inDim   int
	numConj int
	numDisj int
	// off is the flat-vector offset of this layer's weight block; w is the
	// block itself, aliasing Model.flat[off : off+size()*inDim].
	off int
	w   []float64
}

func (l *logicalLayer) size() int { return l.numConj + l.numDisj }

// row returns node n's weight row (a view into the flat vector).
func (l *logicalLayer) row(n int) []float64 {
	return l.w[n*l.inDim : (n+1)*l.inDim]
}

// nodeKind reports whether node n is a conjunction or disjunction node.
func (l *logicalLayer) nodeKind(n int) int {
	if n < l.numConj {
		return nodeConj
	}
	return nodeDisj
}

// Model is a logical neural network for binary classification.
type Model struct {
	cfg    Config
	inDim  int
	layers []*logicalLayer
	// ruleDim is the total number of logical nodes across layers = the
	// number of candidate rules.
	ruleDim int
	// flat holds every trainable parameter contiguously: the layers' weight
	// blocks in order (row-major per node), then the head weights over rule
	// activations, then the head bias. layers[k].w and headW alias into it.
	flat []float64
	// headOff is the flat offset of the head weights; the bias sits at
	// flat[len(flat)-1].
	headOff int
	// headW aliases flat[headOff : headOff+ruleDim]. The head stays
	// continuous (the paper binarizes every layer except the one feeding the
	// linear classifier).
	headW []float64

	opt *adamState

	// disc is the per-batch compilation of the binarized structure used by
	// the grafted discrete forward pass; see compileDiscrete. Rebuilt at the
	// start of every batch (weights are fixed within one), storage reused.
	disc discSnap

	// bufPool and gradPool recycle forward/backprop scratch buffers across
	// calls, so steady-state batch work allocates nothing. Buffers depend
	// only on the (immutable) model shape, so pooled entries never go stale.
	bufPool  sync.Pool
	gradPool sync.Pool

	// hooks observes training per epoch; nil (the default) keeps the
	// training loop free of any telemetry work. See SetTrainHooks.
	hooks *TrainHooks
}

// New creates a model for inputs of width inDim using cfg.
func New(inDim int, cfg Config) (*Model, error) {
	if inDim <= 0 {
		return nil, fmt.Errorf("nn: inDim must be positive, got %d", inDim)
	}
	cfg = cfg.withDefaults()
	for i, h := range cfg.Hidden {
		if h < 2 {
			return nil, fmt.Errorf("nn: hidden layer %d has %d nodes, need >= 2", i, h)
		}
	}
	m := &Model{cfg: cfg, inDim: inDim}

	// Shape pass: compute layer offsets and the total parameter count, then
	// carve the flat vector into per-layer views.
	total := 0
	prev := inDim
	for _, h := range cfg.Hidden {
		l := &logicalLayer{inDim: prev, numConj: h / 2, numDisj: h - h/2, off: total}
		m.layers = append(m.layers, l)
		total += h * prev
		m.ruleDim += h
		// Skip connection: the next layer sees the original predicates too.
		prev = inDim + h
	}
	m.headOff = total
	total += m.ruleDim + 1 // head weights + bias
	m.flat = make([]float64, total)
	for _, l := range m.layers {
		l.w = m.flat[l.off : l.off+l.size()*l.inDim]
	}
	m.headW = m.flat[m.headOff : m.headOff+m.ruleDim]

	r := rand.New(rand.NewSource(cfg.Seed))
	for _, l := range m.layers {
		for n := 0; n < l.size(); n++ {
			w := l.row(n)
			for i := range w {
				// Small positive init keeps soft products near their neutral
				// element so early gradients do not vanish; a few weights are
				// seeded above the 0.5 binarization threshold so the grafted
				// (discrete) model is non-constant from the start.
				w[i] = r.Float64() * 0.2
				if r.Float64() < 2.0/float64(l.inDim) {
					w[i] = 0.5 + r.Float64()*0.3
				}
			}
		}
	}
	for i := range m.headW {
		m.headW[i] = (r.Float64() - 0.5) * 0.2
	}
	m.opt = newAdam(m.numParams())
	return m, nil
}

// InDim returns the expected input width.
func (m *Model) InDim() int { return m.inDim }

// RuleDim returns the number of candidate rules (logical nodes).
func (m *Model) RuleDim() int { return m.ruleDim }

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// HeadWeights returns the linear head weights over rule activations (live
// slice; callers must not modify).
func (m *Model) HeadWeights() []float64 { return m.headW }

// HeadBias returns the linear head bias.
func (m *Model) HeadBias() float64 { return m.flat[len(m.flat)-1] }

// fwdBuffers holds per-sample forward activations reused across calls.
type fwdBuffers struct {
	// layerIn[k] is the input vector to layer k (with skip concat),
	// layerOut[k] its output.
	layerIn  [][]float64
	layerOut [][]float64
	rules    []float64
}

func (m *Model) newBuffers() *fwdBuffers {
	b := &fwdBuffers{rules: make([]float64, m.ruleDim)}
	prev := m.inDim
	for _, l := range m.layers {
		b.layerIn = append(b.layerIn, make([]float64, prev))
		b.layerOut = append(b.layerOut, make([]float64, l.size()))
		prev = m.inDim + l.size()
	}
	return b
}

// getBuffers returns pooled forward buffers; release with putBuffers.
func (m *Model) getBuffers() *fwdBuffers {
	if b, ok := m.bufPool.Get().(*fwdBuffers); ok {
		return b
	}
	return m.newBuffers()
}

func (m *Model) putBuffers(b *fwdBuffers) { m.bufPool.Put(b) }

// forward computes the score of x. When discrete is true the logical
// weights are binarized at 0.5 (the deployed model); otherwise the soft
// continuous activations of Eq. 7 are used. Returns the pre-sigmoid score.
func (m *Model) forward(x []float64, discrete bool, b *fwdBuffers) float64 {
	if len(x) != m.inDim {
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), m.inDim))
	}
	ri := 0
	for k, l := range m.layers {
		var in []float64
		if k == 0 {
			// Alias the caller's input instead of copying: the buffer entry is
			// only ever read (backprop partials), never written through.
			in = x
			b.layerIn[0] = x
		} else {
			in = b.layerIn[k]
			copy(in, x)
			copy(in[m.inDim:], b.layerOut[k-1])
		}
		out := b.layerOut[k]
		for n := 0; n < l.size(); n++ {
			w := l.row(n)
			if l.nodeKind(n) == nodeConj {
				out[n] = conjForward(in, w, discrete)
			} else {
				out[n] = disjForward(in, w, discrete)
			}
		}
		copy(b.rules[ri:ri+l.size()], out)
		ri += l.size()
	}
	s := m.flat[len(m.flat)-1]
	for j, r := range b.rules {
		s += m.headW[j] * r
	}
	return s
}

// discSnap is a compiled snapshot of the binarized network structure: per
// logical node, the input indices its weight selects (w > 0.5), concatenated
// into one slab. The grafted discrete forward walks only these indices
// instead of scanning every weight for every sample — identical multiply /
// early-exit order to conjForward/disjForward's discrete loops (which also
// touch only selected elements), so the scores are bit-identical.
type discSnap struct {
	sel []int32 // concatenated selected indices, per node
	off []int32 // node -> [off[n], off[n+1]) into sel; len = ruleDim+1
}

// compileDiscrete rebuilds the discrete snapshot from the current weights.
// Called once per batch by batchGrad; amortizes the full weight scan over
// every sample of the batch. Steady-state it allocates nothing (the slab is
// reused and only regrows while binarization is still selecting new weights).
func (m *Model) compileDiscrete() {
	d := &m.disc
	d.sel = d.sel[:0]
	if d.off == nil {
		d.off = make([]int32, m.ruleDim+1)
	}
	ni := 0
	for _, l := range m.layers {
		for n := 0; n < l.size(); n++ {
			for i, w := range l.row(n) {
				if w > 0.5 {
					d.sel = append(d.sel, int32(i))
				}
			}
			ni++
			d.off[ni] = int32(len(d.sel))
		}
	}
}

// forwardDiscrete computes forward(x, true, b) using the compiled snapshot.
// The per-node products run over the same selected indices in the same
// ascending order as the discrete conjForward/disjForward loops, with the
// same early exits, so every output bit matches.
func (m *Model) forwardDiscrete(x []float64, b *fwdBuffers) float64 {
	if len(x) != m.inDim {
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), m.inDim))
	}
	d := &m.disc
	ni := 0
	ri := 0
	for k, l := range m.layers {
		var in []float64
		if k == 0 {
			in = x
			b.layerIn[0] = x
		} else {
			in = b.layerIn[k]
			copy(in, x)
			copy(in[m.inDim:], b.layerOut[k-1])
		}
		out := b.layerOut[k]
		for n := 0; n < l.size(); n++ {
			sel := d.sel[d.off[ni]:d.off[ni+1]]
			ni++
			if l.nodeKind(n) == nodeConj {
				p := 1.0
				for _, i := range sel {
					p *= in[i]
					if p == 0 {
						p = 0 // conjForward returns literal 0 (+0.0) here
						break
					}
				}
				out[n] = p
			} else {
				v := 0.0
				for _, i := range sel {
					if in[i] > 0 {
						v = 1
						break
					}
				}
				out[n] = v
			}
		}
		copy(b.rules[ri:ri+l.size()], out)
		ri += l.size()
	}
	s := m.flat[len(m.flat)-1]
	for j, r := range b.rules {
		s += m.headW[j] * r
	}
	return s
}

// conjForward computes Conj(x,w) = prod_i (1 - w_i (1 - x_i)). The discrete
// and continuous loops are split so the mode test is hoisted out of the hot
// loop; the continuous body stays branch-free (data-dependent skips
// mispredict on real data and cost more than the multiply they save).
func conjForward(x, w []float64, discrete bool) float64 {
	p := 1.0
	if discrete {
		for i, xi := range x {
			if w[i] > 0.5 {
				p *= xi
				if p == 0 {
					return 0
				}
			}
		}
		return p
	}
	for i, xi := range x {
		p *= 1 - w[i]*(1-xi)
	}
	return p
}

// disjForward computes Disj(x,w) = 1 - prod_i (1 - x_i w_i); loop split as
// in conjForward.
func disjForward(x, w []float64, discrete bool) float64 {
	p := 1.0
	if discrete {
		for i, xi := range x {
			if w[i] > 0.5 && xi > 0 {
				return 1
			}
		}
		return 1 - p
	}
	for i, xi := range x {
		p *= 1 - xi*w[i]
	}
	return 1 - p
}

// Score returns the deployed (binarized) model's pre-threshold score for x:
// positive score means the positive class wins the rule vote of Eq. 3.
func (m *Model) Score(x []float64) float64 {
	b := m.getBuffers()
	s := m.forward(x, true, b)
	m.putBuffers(b)
	return s
}

// Predict returns the deployed model's label for x.
func (m *Model) Predict(x []float64) int {
	if m.Score(x) >= 0 {
		return 1
	}
	return 0
}

// PredictBatch labels every row of xs using parallel workers.
func (m *Model) PredictBatch(xs [][]float64) []int {
	out := make([]int, len(xs))
	m.parallelOver(len(xs), func(lo, hi int, buf *fwdBuffers) {
		for i := lo; i < hi; i++ {
			if m.forward(xs[i], true, buf) >= 0 {
				out[i] = 1
			}
		}
	})
	return out
}

// Accuracy returns the deployed model's accuracy on (xs, ys). Predictions
// are counted in place rather than materialized: callers like the streaming
// valuation engine evaluate thousands of coalitions per round, and a
// per-call prediction slice is pure GC pressure. The integer hit counts are
// order-independent, so the result is identical at any worker count.
func (m *Model) Accuracy(xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ok atomic.Int64
	m.parallelOver(len(xs), func(lo, hi int, buf *fwdBuffers) {
		n := 0
		for i := lo; i < hi; i++ {
			p := 0
			if m.forward(xs[i], true, buf) >= 0 {
				p = 1
			}
			if p == ys[i] {
				n++
			}
		}
		ok.Add(int64(n))
	})
	return float64(ok.Load()) / float64(len(xs))
}

// CountCorrect returns how many rows of xs the deployed model labels as
// ys. Serial and allocation-free in steady state (pooled forward buffers,
// no prediction slice, no worker fan-out): the streaming valuation engine's
// per-coalition scorer, where concurrency already lives above the model and
// any per-call allocation multiplies across thousands of evaluations.
func (m *Model) CountCorrect(xs [][]float64, ys []int) int {
	buf := m.getBuffers()
	ok := 0
	for i, x := range xs {
		p := 0
		if m.forward(x, true, buf) >= 0 {
			p = 1
		}
		if p == ys[i] {
			ok++
		}
	}
	m.putBuffers(buf)
	return ok
}

// RuleActivations fills dst (length RuleDim) with the binarized model's
// {0,1} rule activation vector for x and returns it. This is the vector
// CTFL's tracer consumes.
func (m *Model) RuleActivations(x []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.ruleDim)
	}
	b := m.getBuffers()
	m.forward(x, true, b)
	copy(dst, b.rules)
	m.putBuffers(b)
	return dst
}

// ScoreAndActivationsBatch computes, in one parallel pass over xs, the
// deployed model's pre-threshold scores and {0,1} rule-activation vectors.
// It is the batched form of Score + RuleActivations used by the tracer,
// avoiding one redundant forward pass and per-row buffer allocation.
func (m *Model) ScoreAndActivationsBatch(xs [][]float64) (scores []float64, acts [][]float64) {
	scores = make([]float64, len(xs))
	acts = make([][]float64, len(xs))
	// One contiguous slab for all activation rows keeps the result cache
	// friendly and cuts per-row allocations.
	slab := make([]float64, len(xs)*m.ruleDim)
	m.parallelOver(len(xs), func(lo, hi int, buf *fwdBuffers) {
		for i := lo; i < hi; i++ {
			scores[i] = m.forward(xs[i], true, buf)
			row := slab[i*m.ruleDim : (i+1)*m.ruleDim : (i+1)*m.ruleDim]
			copy(row, buf.rules)
			acts[i] = row
		}
	})
	return scores, acts
}

// RuleSpec describes one logical node of the deployed model for the rule
// extractor: which layer it lives in, its kind, and which input indices its
// binarized weights select.
type RuleSpec struct {
	Layer    int
	Node     int
	Conj     bool
	Selected []int // indices into the layer's input vector
}

// RuleSpecs enumerates every logical node's binarized structure, in rule
// vector order (layer by layer).
func (m *Model) RuleSpecs() []RuleSpec {
	var specs []RuleSpec
	for k, l := range m.layers {
		for n := 0; n < l.size(); n++ {
			spec := RuleSpec{Layer: k, Node: n, Conj: l.nodeKind(n) == nodeConj}
			for i, w := range l.row(n) {
				if w > 0.5 {
					spec.Selected = append(spec.Selected, i)
				}
			}
			specs = append(specs, spec)
		}
	}
	return specs
}
