// Package nn implements the practical rule-based model of CTFL Section V: a
// logical neural network whose hidden nodes compute soft conjunctions and
// disjunctions over encoded predicates (Eq. 7), topped by a linear voting
// head, and trained with gradient grafting so that the deployed model has
// hard {0,1} logical weights and therefore produces non-fuzzy, traceable
// rules.
//
// Architecture (paper Fig. 3):
//
//	encoded predicates (from dataset.Encoder; the binarization layer with
//	random bounds lives there)
//	  -> logical layer 1 (half conjunction, half disjunction nodes)
//	  -> ... optional further logical layers with skip connections ...
//	  -> linear head over the concatenation of all logical layers' outputs
//
// The classification rule is the paper's Eq. 3: nodes whose head weight is
// positive act as positive rules r+, negative head weights as negative rules
// r-, and the model predicts the positive class iff the weighted vote
// crosses the bias threshold.
package nn

import (
	"fmt"
	"math/rand"
)

// Config controls model shape and training.
type Config struct {
	// Hidden lists the node count of each logical layer. Each layer is split
	// half conjunction / half disjunction nodes. Default: one layer of 64.
	Hidden []int
	// LearningRate for Adam. Default 0.05.
	LearningRate float64
	// Epochs of local training. Default 60.
	Epochs int
	// BatchSize for mini-batch SGD. Default 64.
	BatchSize int
	// Grafting selects gradient-grafted training of the binarized model
	// (the paper's method). When false, training optimizes the continuous
	// model and binarizes post hoc — the ablation baseline.
	Grafting bool
	// L1Logic applies an L1 penalty to the logical weights, pruning rule
	// operands so the extracted rules stay crisp and small. Default 0.
	L1Logic float64
	// L2Head applies weight decay to the linear head, keeping rule
	// importance weights bounded. Default 0.
	L2Head float64
	// FreezeBias pins the head bias at zero, making the deployed model
	// exactly the paper's Eq. 3 vote 1[w+·r+ >= w−·r−]. Without a bias the
	// model cannot fall back on a majority-class default, so every
	// prediction is carried by activated rules and stays traceable.
	FreezeBias bool
	// KeepBest restores, at the end of each TrainEpochs call, the parameter
	// snapshot with the highest binarized training accuracy seen after any
	// epoch. Grafted training of hard-threshold models is non-monotone; the
	// deployed model is the binarized one, so selecting its best snapshot is
	// the natural stopping rule.
	KeepBest bool
	// Seed for weight initialization and batch shuffling.
	Seed int64
	// Workers bounds the goroutines used for batch-parallel gradient
	// computation; 0 means GOMAXPROCS.
	Workers int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64}
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	return c
}

// layerKind tags each logical node.
const (
	nodeConj = iota
	nodeDisj
)

// logicalLayer holds one layer's continuous weights. weights[n][i] is the
// involvement degree of input i in node n, constrained to [0,1].
type logicalLayer struct {
	inDim   int
	numConj int
	numDisj int
	weights [][]float64
}

func (l *logicalLayer) size() int { return l.numConj + l.numDisj }

// nodeKind reports whether node n is a conjunction or disjunction node.
func (l *logicalLayer) nodeKind(n int) int {
	if n < l.numConj {
		return nodeConj
	}
	return nodeDisj
}

// Model is a logical neural network for binary classification.
type Model struct {
	cfg    Config
	inDim  int
	layers []*logicalLayer
	// ruleDim is the total number of logical nodes across layers = the
	// number of candidate rules.
	ruleDim int
	// headW and headB form the linear voting head over rule activations.
	// These stay continuous (the paper binarizes every layer except the one
	// feeding the linear classifier).
	headW []float64
	headB float64

	opt *adamState
}

// New creates a model for inputs of width inDim using cfg.
func New(inDim int, cfg Config) (*Model, error) {
	if inDim <= 0 {
		return nil, fmt.Errorf("nn: inDim must be positive, got %d", inDim)
	}
	cfg = cfg.withDefaults()
	for i, h := range cfg.Hidden {
		if h < 2 {
			return nil, fmt.Errorf("nn: hidden layer %d has %d nodes, need >= 2", i, h)
		}
	}
	m := &Model{cfg: cfg, inDim: inDim}
	r := rand.New(rand.NewSource(cfg.Seed))
	prev := inDim
	for _, h := range cfg.Hidden {
		l := &logicalLayer{inDim: prev, numConj: h / 2, numDisj: h - h/2}
		l.weights = make([][]float64, h)
		for n := range l.weights {
			w := make([]float64, prev)
			for i := range w {
				// Small positive init keeps soft products near their neutral
				// element so early gradients do not vanish; a few weights are
				// seeded above the 0.5 binarization threshold so the grafted
				// (discrete) model is non-constant from the start.
				w[i] = r.Float64() * 0.2
				if r.Float64() < 2.0/float64(prev) {
					w[i] = 0.5 + r.Float64()*0.3
				}
			}
			l.weights[n] = w
		}
		m.layers = append(m.layers, l)
		m.ruleDim += h
		// Skip connection: the next layer sees the original predicates too.
		prev = inDim + h
	}
	m.headW = make([]float64, m.ruleDim)
	for i := range m.headW {
		m.headW[i] = (r.Float64() - 0.5) * 0.2
	}
	m.opt = newAdam(m.numParams())
	return m, nil
}

// InDim returns the expected input width.
func (m *Model) InDim() int { return m.inDim }

// RuleDim returns the number of candidate rules (logical nodes).
func (m *Model) RuleDim() int { return m.ruleDim }

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// HeadWeights returns the linear head weights over rule activations (live
// slice; callers must not modify).
func (m *Model) HeadWeights() []float64 { return m.headW }

// HeadBias returns the linear head bias.
func (m *Model) HeadBias() float64 { return m.headB }

// fwdBuffers holds per-sample forward activations reused across calls.
type fwdBuffers struct {
	// layerIn[k] is the input vector to layer k (with skip concat),
	// layerOut[k] its output.
	layerIn  [][]float64
	layerOut [][]float64
	rules    []float64
}

func (m *Model) newBuffers() *fwdBuffers {
	b := &fwdBuffers{rules: make([]float64, m.ruleDim)}
	prev := m.inDim
	for _, l := range m.layers {
		b.layerIn = append(b.layerIn, make([]float64, prev))
		b.layerOut = append(b.layerOut, make([]float64, l.size()))
		prev = m.inDim + l.size()
	}
	return b
}

// forward computes the score of x. When discrete is true the logical
// weights are binarized at 0.5 (the deployed model); otherwise the soft
// continuous activations of Eq. 7 are used. Returns the pre-sigmoid score.
func (m *Model) forward(x []float64, discrete bool, b *fwdBuffers) float64 {
	if len(x) != m.inDim {
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), m.inDim))
	}
	ri := 0
	for k, l := range m.layers {
		in := b.layerIn[k]
		if k == 0 {
			copy(in, x)
		} else {
			copy(in, x)
			copy(in[m.inDim:], b.layerOut[k-1])
		}
		out := b.layerOut[k]
		for n := 0; n < l.size(); n++ {
			w := l.weights[n]
			if l.nodeKind(n) == nodeConj {
				out[n] = conjForward(in, w, discrete)
			} else {
				out[n] = disjForward(in, w, discrete)
			}
		}
		copy(b.rules[ri:ri+l.size()], out)
		ri += l.size()
	}
	s := m.headB
	for j, r := range b.rules {
		s += m.headW[j] * r
	}
	return s
}

// conjForward computes Conj(x,w) = prod_i (1 - w_i (1 - x_i)).
func conjForward(x, w []float64, discrete bool) float64 {
	p := 1.0
	for i, xi := range x {
		wi := w[i]
		if discrete {
			if wi > 0.5 {
				p *= xi
			}
			if p == 0 {
				return 0
			}
			continue
		}
		p *= 1 - wi*(1-xi)
	}
	return p
}

// disjForward computes Disj(x,w) = 1 - prod_i (1 - x_i w_i).
func disjForward(x, w []float64, discrete bool) float64 {
	p := 1.0
	for i, xi := range x {
		wi := w[i]
		if discrete {
			if wi > 0.5 && xi > 0 {
				return 1
			}
			continue
		}
		p *= 1 - xi*wi
	}
	return 1 - p
}

// Score returns the deployed (binarized) model's pre-threshold score for x:
// positive score means the positive class wins the rule vote of Eq. 3.
func (m *Model) Score(x []float64) float64 {
	return m.forward(x, true, m.newBuffers())
}

// Predict returns the deployed model's label for x.
func (m *Model) Predict(x []float64) int {
	if m.Score(x) >= 0 {
		return 1
	}
	return 0
}

// PredictBatch labels every row of xs using parallel workers.
func (m *Model) PredictBatch(xs [][]float64) []int {
	out := make([]int, len(xs))
	m.parallelOver(len(xs), func(_ int, idx []int, buf *fwdBuffers) {
		for _, i := range idx {
			if m.forward(xs[i], true, buf) >= 0 {
				out[i] = 1
			}
		}
	})
	return out
}

// Accuracy returns the deployed model's accuracy on (xs, ys).
func (m *Model) Accuracy(xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	pred := m.PredictBatch(xs)
	ok := 0
	for i, p := range pred {
		if p == ys[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(xs))
}

// RuleActivations fills dst (length RuleDim) with the binarized model's
// {0,1} rule activation vector for x and returns it. This is the vector
// CTFL's tracer consumes.
func (m *Model) RuleActivations(x []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.ruleDim)
	}
	b := m.newBuffers()
	m.forward(x, true, b)
	copy(dst, b.rules)
	return dst
}

// ScoreAndActivationsBatch computes, in one parallel pass over xs, the
// deployed model's pre-threshold scores and {0,1} rule-activation vectors.
// It is the batched form of Score + RuleActivations used by the tracer,
// avoiding one redundant forward pass and per-row buffer allocation.
func (m *Model) ScoreAndActivationsBatch(xs [][]float64) (scores []float64, acts [][]float64) {
	scores = make([]float64, len(xs))
	acts = make([][]float64, len(xs))
	m.parallelOver(len(xs), func(_ int, idx []int, buf *fwdBuffers) {
		for _, i := range idx {
			scores[i] = m.forward(xs[i], true, buf)
			row := make([]float64, m.ruleDim)
			copy(row, buf.rules)
			acts[i] = row
		}
	})
	return scores, acts
}

// RuleSpec describes one logical node of the deployed model for the rule
// extractor: which layer it lives in, its kind, and which input indices its
// binarized weights select.
type RuleSpec struct {
	Layer    int
	Node     int
	Conj     bool
	Selected []int // indices into the layer's input vector
}

// RuleSpecs enumerates every logical node's binarized structure, in rule
// vector order (layer by layer).
func (m *Model) RuleSpecs() []RuleSpec {
	var specs []RuleSpec
	for k, l := range m.layers {
		for n := 0; n < l.size(); n++ {
			spec := RuleSpec{Layer: k, Node: n, Conj: l.nodeKind(n) == nodeConj}
			for i, w := range l.weights[n] {
				if w > 0.5 {
					spec.Selected = append(spec.Selected, i)
				}
			}
			specs = append(specs, spec)
		}
	}
	return specs
}
