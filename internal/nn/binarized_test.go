package nn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyBinarizedMatchesForward proves the compiled evaluator is
// bit-identical to the model's discrete forward pass on {0,1} inputs:
// same scores, same rule-activation vectors, across random architectures,
// random (trained) weights and random inputs.
func TestPropertyBinarizedMatchesForward(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 4 + r.Intn(12)
		xs, ys := goldenData(40+r.Intn(40), dim, r.Int63())
		cfg := Config{
			Hidden:    []int{4 + 2*r.Intn(4)},
			Epochs:    1 + r.Intn(2),
			BatchSize: 16,
			Grafting:  r.Intn(2) == 1,
			Seed:      r.Int63(),
			Workers:   1 + r.Intn(4),
		}
		if r.Intn(2) == 1 {
			cfg.Hidden = append(cfg.Hidden, 4+2*r.Intn(3))
		}
		m, err := New(dim, cfg)
		if err != nil {
			panic(err)
		}
		m.Train(xs, ys)
		b := m.Binarize()

		wantScores, wantActs := m.ScoreAndActivationsBatch(xs)
		gotScores, gotActs := b.ScoreAndActivationsBatch(xs)
		for i := range xs {
			if gotScores[i] != wantScores[i] {
				return false
			}
			for j := range wantActs[i] {
				if gotActs[i][j] != wantActs[i][j] {
					return false
				}
			}
			// Single-instance paths must agree too.
			if b.Score(xs[i]) != m.Score(xs[i]) {
				return false
			}
			one := b.RuleActivations(xs[i], nil)
			ref := m.RuleActivations(xs[i], nil)
			for j := range ref {
				if one[j] != ref[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBinarizedSnapshot pins the snapshot semantics: training the model
// after Binarize must not change the compiled evaluator's outputs.
func TestBinarizedSnapshot(t *testing.T) {
	xs, ys := goldenData(80, 12, 7)
	m, err := New(12, Config{Hidden: []int{8}, Epochs: 1, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xs, ys)
	b := m.Binarize()
	before := make([]float64, len(xs))
	for i, x := range xs {
		before[i] = b.Score(x)
	}
	m.Train(xs, ys) // keep training the model
	for i, x := range xs {
		if b.Score(x) != before[i] {
			t.Fatalf("snapshot drifted at row %d", i)
		}
	}
}
