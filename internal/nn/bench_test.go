package nn

// Hot-path benchmarks for the logical-NN training and inference kernels.
// BENCH_*.json (repo root) records the before/after trajectory of these
// numbers across PRs; regenerate with `go run ./cmd/ctfl bench`.

import (
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

// benchData plants the rule label = (x0 ∧ x1) ∨ x2 over random binary
// predicate vectors, mimicking encoder output without dataset machinery.
func benchData(n, dim int, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		x := make([]float64, dim)
		for j := range x {
			if r.Float64() < 0.35 {
				x[j] = 1
			}
		}
		xs[i] = x
		if (x[0] == 1 && x[1] == 1) || x[2] == 1 {
			ys[i] = 1
		}
	}
	return xs, ys
}

func benchModel(b *testing.B, dim int) *Model {
	b.Helper()
	m, err := New(dim, Config{
		Hidden: []int{64}, Grafting: true, Seed: 3,
		L1Logic: 2e-4, L2Head: 1e-3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTrainEpochs measures grafted mini-batch training: forward
// (continuous + discrete), backward, regularization and the Adam step.
func BenchmarkTrainEpochs(b *testing.B) {
	xs, ys := benchData(2000, 80, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchModel(b, 80)
		b.StartTimer()
		m.TrainEpochs(xs, ys, 3)
	}
}

// BenchmarkTrainEpochsObserved is BenchmarkTrainEpochs with per-epoch
// telemetry hooks installed, so BENCH_*.json pins the observation overhead
// (one selection-mask scan + histogram update per epoch) against the plain
// run.
func BenchmarkTrainEpochsObserved(b *testing.B) {
	xs, ys := benchData(2000, 80, 1)
	reg := telemetry.NewRegistry()
	hooks := TrainTelemetry(reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchModel(b, 80)
		m.SetTrainHooks(hooks)
		b.StartTimer()
		m.TrainEpochs(xs, ys, 3)
	}
}

// BenchmarkPredictBatch measures deployed-model (binarized) batch inference.
func BenchmarkPredictBatch(b *testing.B) {
	xs, ys := benchData(4000, 80, 2)
	m := benchModel(b, 80)
	m.TrainEpochs(xs[:500], ys[:500], 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PredictBatch(xs)
	}
}

// BenchmarkScoreAndActivations measures the batched score+activation pass
// feeding the tracer.
func BenchmarkScoreAndActivations(b *testing.B) {
	xs, ys := benchData(4000, 80, 2)
	m := benchModel(b, 80)
	m.TrainEpochs(xs[:500], ys[:500], 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m.ScoreAndActivationsBatch(xs)
	}
}
