package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal text-table builder used by every experiment's report.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	maxCols int
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header, maxCols: len(header)}
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > t.maxCols {
		t.maxCols = len(cells)
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where every value after the first is formatted with
// the given verb (e.g. "%.4f").
func (t *Table) AddRowf(label string, verb string, values ...float64) {
	cells := []string{label}
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.AddRow(cells...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, t.maxCols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.rows {
		measure(r)
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i := 0; i < t.maxCols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	if len(t.Header) > 0 {
		fmt.Fprintf(w, "%s\n", line(t.Header))
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		fmt.Fprintf(w, "%s\n", strings.Repeat("-", total-2))
	}
	for _, r := range t.rows {
		fmt.Fprintf(w, "%s\n", line(r))
	}
}

// sparkline renders ys as a compact unicode bar series, scaled to the
// series' own min/max (a flat series renders mid-height bars). It gives the
// CLI's accuracy curves an at-a-glance shape, like the paper's plots.
func sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := len(levels) / 2
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// formatScores renders a score vector compactly.
func formatScores(scores []float64) string {
	parts := make([]string, len(scores))
	for i, s := range scores {
		parts[i] = fmt.Sprintf("%.4f", s)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
