package experiments

import (
	"runtime"
	"sync"
)

// forEachCell runs f(0..n-1) concurrently, bounded by GOMAXPROCS, and
// returns the first error by cell index (deterministic regardless of
// scheduling). Experiment cells — one scheme's scores, one behaviour's
// row — are independent given the shared coalition oracle: the oracle's
// in-flight dedup guarantees each distinct coalition still trains once, and
// every cell writes only its own index, so results are bit-identical to the
// sequential loop.
func forEachCell(n int, f func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
