package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// InterpretResult reproduces the paper's interpretability case studies: the
// Fig. 7 tic-tac-toe study and the Table V adult study, both with three
// participants under skew-label partitioning.
type InterpretResult struct {
	Workload Workload
	// Accuracy of the traced global model.
	Accuracy float64
	// Micro and Macro contribution scores.
	Micro, Macro []float64
	// Profiles holds each participant's frequent beneficial/harmful rules.
	Profiles []core.ParticipantProfile
	// Guidance lists the rules most activated by uncovered misclassified
	// test data (Section IV-B data-collection guidance).
	Guidance []core.RuleFrequency
	// Names are the participant display names.
	Names []string
	// Suspicion is the label-flip detector's report.
	Suspicion *core.SuspicionReport
}

// RunInterpret trains CTFL's global model on the workload's federation and
// produces the full interpretability report with at most topK rules per
// participant list.
func RunInterpret(s *Setup, topK int) (*InterpretResult, error) {
	scheme := &core.Scheme{Variant: core.Micro, Trainer: s.Trainer, Cfg: s.CTFLConfig()}
	_, _, res, err := scheme.Run(s.Parts, s.Test)
	if err != nil {
		return nil, err
	}
	return &InterpretResult{
		Workload:  s.Workload,
		Accuracy:  res.Accuracy(),
		Micro:     res.MicroScores(),
		Macro:     res.MacroScores(),
		Profiles:  res.Profiles(topK),
		Guidance:  res.CollectionGuidance(topK),
		Names:     s.ParticipantNames(),
		Suspicion: res.Suspicion(0.5),
	}, nil
}

// Render prints the case study as the paper's Fig. 7 / Table V do: one block
// of frequently activated rules per participant plus contribution scores.
func (r *InterpretResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Interpretability case study: %s\n", r.Workload.String())
	fmt.Fprintf(w, "global model accuracy: %.4f\n", r.Accuracy)
	t := NewTable("contribution scores", "participant", "micro", "macro", "loss-ratio")
	for i, name := range r.Names {
		t.AddRow(name,
			fmt.Sprintf("%.4f", r.Micro[i]),
			fmt.Sprintf("%.4f", r.Macro[i]),
			fmt.Sprintf("%.3f", r.Suspicion.Ratio[i]))
	}
	t.Render(w)
	fmt.Fprintln(w)
	for i, p := range r.Profiles {
		fmt.Fprint(w, core.FormatProfile(p, r.Names[i]))
	}
	if len(r.Guidance) > 0 {
		fmt.Fprintln(w, "data-collection guidance (under-covered patterns):")
		for _, g := range r.Guidance {
			fmt.Fprintf(w, "  [weight %.3f] %s\n", g.Credit, g.Expr)
		}
	}
}
