package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/quality"
	"repro/internal/rules"
	"repro/internal/stats"
)

// QualityResult is the data-quality audit experiment: the workload's
// federation is seeded with one replicating and one label-flipping
// participant, and the per-participant quality reports must separate them
// from the honest majority.
type QualityResult struct {
	Workload   Workload
	Accuracy   float64
	Reports    []quality.Report
	Names      []string
	Replicator int
	Flipper    int
}

// RunQuality injects the two adversaries, trains, traces, and assesses.
func RunQuality(s *Setup) (*QualityResult, error) {
	if len(s.Parts) < 3 {
		return nil, fmt.Errorf("experiments: quality audit needs >= 3 participants")
	}
	r := stats.NewRNG(s.Workload.Seed + 31)
	parts := s.Parts
	replicator, flipper := 0, 1
	parts = fl.ReplaceParticipant(parts, fl.Replicate(parts[replicator], 1.0, r))
	parts = fl.ReplaceParticipant(parts, fl.FlipLabels(parts[flipper], 0.5, r))

	model, err := s.Trainer.Train(parts)
	if err != nil {
		return nil, err
	}
	rs := rules.Extract(model, s.Trainer.Encoder())

	var uploads []core.TrainingUpload
	for pi, p := range parts {
		acts, _ := rs.ActivationsTable(p.Data)
		for i, a := range acts {
			uploads = append(uploads, core.TrainingUpload{
				Owner: pi, Label: p.Data.Instances[i].Label, Activations: a,
			})
		}
	}
	clones := make([]core.TrainingUpload, len(uploads))
	for i, u := range uploads {
		clones[i] = core.TrainingUpload{Owner: u.Owner, Label: u.Label, Activations: u.Activations.Clone()}
	}
	tracer := core.NewTracerFromUploads(rs, len(parts), clones, s.CTFLConfig())
	res := tracer.Trace(s.Test)

	return &QualityResult{
		Workload:   s.Workload,
		Accuracy:   res.Accuracy(),
		Reports:    quality.Assess(res, uploads, rs.Weights(), rs.ClassMask(1), rs.ClassMask(0)),
		Names:      s.ParticipantNames(),
		Replicator: replicator,
		Flipper:    flipper,
	}, nil
}

// Render prints the audit with the injected adversaries marked.
func (q *QualityResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Data-quality audit: %s (model accuracy %.4f)\n", q.Workload.String(), q.Accuracy)
	fmt.Fprintf(w, "injected adversaries: %s replicates 100%%, %s flips 50%% of labels\n\n",
		q.Names[q.Replicator], q.Names[q.Flipper])
	fmt.Fprint(w, quality.Render(q.Reports, q.Names))
}
