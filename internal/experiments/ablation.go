package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/stats"
)

// AblationResult sweeps CTFL's own design knobs on one workload: the
// tracing threshold tau_w (Eq. 4), the macro delta (Eq. 6), the Max-Miner
// grouped fast path, and the local-DP budget on uploaded activation
// vectors. One global model is trained; every row below is a re-trace.
type AblationResult struct {
	Workload Workload
	Accuracy float64

	TauRows      []TauRow
	DeltaRows    []DeltaRow
	GroupingRows []GroupingRow
	DPRows       []DPRow
}

// TauRow is one tau_w setting's outcome.
type TauRow struct {
	Tau         float64
	CoverageGap float64
	ScoreSpread float64 // max-min micro score: how discriminating tracing is
	MeanRelated float64 // average related instances per covered test row
}

// DeltaRow is one macro-delta setting's outcome.
type DeltaRow struct {
	Delta           int
	AllocatedCredit float64 // sum of macro scores (≤ accuracy)
}

// GroupingRow compares tracing wall time with and without Max-Miner groups.
type GroupingRow struct {
	Grouping bool
	Elapsed  time.Duration
}

// DPRow is one local-DP budget's outcome.
type DPRow struct {
	Epsilon       float64
	RankAgreement float64 // Spearman vs the exact (non-DP) micro scores
}

// RunAblation trains once on the workload and sweeps the tracing knobs.
func RunAblation(s *Setup) (*AblationResult, error) {
	model, err := s.Trainer.Train(s.Parts)
	if err != nil {
		return nil, err
	}
	rs := rules.Extract(model, s.Trainer.Encoder())
	res := &AblationResult{Workload: s.Workload}

	// tau_w sweep.
	for _, tau := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		tr := core.NewTracer(rs, s.Parts, core.Config{TauW: tau, Delta: s.Workload.Delta})
		out := tr.Trace(s.Test)
		if res.Accuracy == 0 {
			res.Accuracy = out.Accuracy()
		}
		micro := out.MicroScores()
		lo, hi := stats.MinMax(micro)
		covered, related := 0, 0
		for te := 0; te < out.TestSize; te++ {
			total := 0
			for _, c := range out.Counts[te] {
				total += c
			}
			if total > 0 {
				covered++
				related += total
			}
		}
		mean := 0.0
		if covered > 0 {
			mean = float64(related) / float64(covered)
		}
		res.TauRows = append(res.TauRows, TauRow{
			Tau:         tau,
			CoverageGap: out.CoverageGap(),
			ScoreSpread: hi - lo,
			MeanRelated: mean,
		})
	}

	// Macro delta sweep reuses one trace (allocation is independent of
	// tracing, as the paper stresses).
	base := core.NewTracer(rs, s.Parts, core.Config{TauW: s.Workload.TauW}).Trace(s.Test)
	for _, delta := range []int{1, 2, 4, 8, 16} {
		res.DeltaRows = append(res.DeltaRows, DeltaRow{
			Delta:           delta,
			AllocatedCredit: stats.Sum(base.MacroScoresAt(delta)),
		})
	}

	// Grouping fast path timing.
	for _, grouping := range []bool{false, true} {
		tr := core.NewTracer(rs, s.Parts, core.Config{TauW: s.Workload.TauW, Grouping: grouping})
		start := time.Now()
		tr.Trace(s.Test)
		res.GroupingRows = append(res.GroupingRows, GroupingRow{
			Grouping: grouping,
			Elapsed:  time.Since(start),
		})
	}

	// Local-DP sweep.
	exactTracer := core.NewTracer(rs, s.Parts, core.Config{TauW: s.Workload.TauW})
	exact := exactTracer.Trace(s.Test).MicroScores()
	for _, eps := range []float64{0.5, 1, 2, 4, 8} {
		noisy := exactTracer.WithLocalDP(eps, s.Workload.Seed).Trace(s.Test).MicroScores()
		res.DPRows = append(res.DPRows, DPRow{
			Epsilon:       eps,
			RankAgreement: stats.Spearman(exact, noisy),
		})
	}
	return res, nil
}

// Render prints the four ablation tables.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablations on %s (model accuracy %.4f)\n\n", r.Workload.String(), r.Accuracy)

	t1 := NewTable("tau_w sweep (Eq. 4 tracing threshold)",
		"tau", "coverage-gap", "score-spread", "mean-related")
	for _, row := range r.TauRows {
		t1.AddRow(fmt.Sprintf("%.1f", row.Tau),
			fmt.Sprintf("%.4f", row.CoverageGap),
			fmt.Sprintf("%.4f", row.ScoreSpread),
			fmt.Sprintf("%.1f", row.MeanRelated))
	}
	t1.Render(w)
	fmt.Fprintln(w)

	t2 := NewTable("macro delta sweep (Eq. 6 threshold)", "delta", "allocated-credit")
	for _, row := range r.DeltaRows {
		t2.AddRow(fmt.Sprintf("%d", row.Delta), fmt.Sprintf("%.4f", row.AllocatedCredit))
	}
	t2.Render(w)
	fmt.Fprintln(w)

	t3 := NewTable("grouped tracing (Max-Miner fast path)", "mode", "seconds")
	for _, row := range r.GroupingRows {
		mode := "brute-force"
		if row.Grouping {
			mode = "max-miner"
		}
		t3.AddRow(mode, fmt.Sprintf("%.4f", row.Elapsed.Seconds()))
	}
	t3.Render(w)
	fmt.Fprintln(w)

	t4 := NewTable("local-DP on uploaded activation vectors", "epsilon", "rank-agreement")
	for _, row := range r.DPRows {
		t4.AddRow(fmt.Sprintf("%.1f", row.Epsilon), fmt.Sprintf("%.4f", row.RankAgreement))
	}
	t4.Render(w)
}
