package experiments

// The ContAvg defense trade-off study: under a fixed seeded attack
// (label-flip + scaling on one participant), sweep the contribution-gate
// threshold and measure what the defense buys and what it costs. Each
// threshold answers three questions at once — how much of the clean
// accuracy does gated aggregation recover, how hard is the attacker's
// score suppressed, and does the gate ever catch an honest participant in
// the crossfire. The ungated attacked run and the unattacked run bracket
// the sweep.

import (
	"fmt"
	"io"

	"repro/internal/attack"
	"repro/internal/rounds"
)

// DefenseConfig parameterizes RunDefense. The zero value runs the default
// study: one scaling label-flipper, an 8-round federation, and a
// five-point threshold sweep.
type DefenseConfig struct {
	// Rounds / LocalEpochs configure the simulated federation
	// (defaults 8 and 3 — the streaming engine needs a trajectory, not
	// the batch path's 2 rounds).
	Rounds      int
	LocalEpochs int
	// Intensity is the attacker's scaling factor (default 8).
	Intensity float64
	// Thresholds is the gate sweep (default -0.01 … -0.2).
	Thresholds []float64
	// Warmup / Hysteresis are shared across the sweep (defaults 1, 0.02).
	Warmup     int
	Hysteresis float64
}

func (c DefenseConfig) withDefaults() DefenseConfig {
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 3
	}
	if c.Intensity == 0 {
		c.Intensity = 8
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{-0.01, -0.03, -0.05, -0.1, -0.2}
	}
	if c.Warmup == 0 {
		c.Warmup = 1
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.02
	}
	return c
}

// DefenseRow is one threshold's outcome.
type DefenseRow struct {
	Threshold float64
	// Acc is the gated run's final test accuracy; Recovery is Acc over
	// the clean run's accuracy.
	Acc      float64
	Recovery float64
	// AttackerScore and MinHonest summarize the final leaderboard: the
	// defense worked when the former sits below the latter.
	AttackerScore float64
	MinHonest     float64
	// GatedRounds counts round-participant exclusions; HonestGated counts
	// how many of them hit honest participants (the gate's false
	// positives — the hidden cost of an aggressive threshold).
	GatedRounds int
	HonestGated int
}

// DefenseResult is the completed sweep.
type DefenseResult struct {
	Setup    *Setup
	Config   DefenseConfig
	Attacker int
	// CleanAcc / UngatedAcc bracket the sweep: the unattacked federation
	// and the attacked-but-undefended one.
	CleanAcc   float64
	UngatedAcc float64
	// UngatedAttackerScore shows the score signal is there even without
	// the gate acting on it.
	UngatedAttackerScore float64
	Rows                 []DefenseRow
}

// RunDefense runs the threshold sweep on the setup's federation. The
// attacker is the last participant; every run derives from the workload
// seed, so the sweep is reproducible bit-for-bit.
func RunDefense(s *Setup, cfg DefenseConfig) (*DefenseResult, error) {
	cfg = cfg.withDefaults()
	if len(s.Parts) < 2 {
		return nil, fmt.Errorf("experiments: defense needs at least 2 participants, have %d", len(s.Parts))
	}
	attacker := s.Parts[len(s.Parts)-1].ID
	acfg := attack.Config{
		Enc:         s.Trainer.Encoder(),
		Parts:       s.Parts,
		Test:        s.Test,
		Model:       s.Trainer.Config().Model,
		Rounds:      cfg.Rounds,
		LocalEpochs: cfg.LocalEpochs,
		Seed:        s.Workload.Seed,
		Attackers:   []int{attacker},
	}

	clean, err := attack.RunFederation(acfg, acfg.Parts, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: defense clean run: %w", err)
	}
	parts, tampers := attack.Apply(acfg, attack.LabelFlipAndScaling(), cfg.Intensity, s.Workload.Seed+1)
	ungated, err := attack.RunFederation(acfg, parts, tampers, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: defense ungated run: %w", err)
	}

	res := &DefenseResult{
		Setup:                s,
		Config:               cfg,
		Attacker:             attacker,
		CleanAcc:             clean.FinalAcc,
		UngatedAcc:           ungated.FinalAcc,
		UngatedAttackerScore: ungated.Scores[attacker],
	}
	for _, th := range cfg.Thresholds {
		gate := &rounds.GateConfig{Threshold: th, Warmup: cfg.Warmup, Hysteresis: cfg.Hysteresis}
		run, err := attack.RunFederation(acfg, parts, tampers, gate)
		if err != nil {
			return nil, fmt.Errorf("experiments: defense threshold %.3f: %w", th, err)
		}
		row := DefenseRow{
			Threshold:     th,
			Acc:           run.FinalAcc,
			AttackerScore: run.Scores[attacker],
		}
		if clean.FinalAcc > 0 {
			row.Recovery = run.FinalAcc / clean.FinalAcc
		}
		first := true
		for id, sc := range run.Scores {
			if id == attacker {
				continue
			}
			if first || sc < row.MinHonest {
				row.MinHonest = sc
				first = false
			}
		}
		for _, rs := range run.Result.Rounds {
			for _, id := range rs.Gated {
				row.GatedRounds++
				if id != attacker {
					row.HonestGated++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep as one table.
func (r *DefenseResult) Render(w io.Writer) {
	t := NewTable(
		fmt.Sprintf("ContAvg defense sweep — %s, attacker %d, flip+scale ×%.0f",
			r.Setup.Workload, r.Attacker, r.Config.Intensity),
		"threshold", "acc", "recovery", "attacker score", "min honest", "gated", "honest gated")
	t.AddRow("clean", fmt.Sprintf("%.3f", r.CleanAcc), "1.00", "-", "-", "-", "-")
	t.AddRow("ungated", fmt.Sprintf("%.3f", r.UngatedAcc),
		fmt.Sprintf("%.2f", safeRatio(r.UngatedAcc, r.CleanAcc)),
		fmt.Sprintf("%+.3f", r.UngatedAttackerScore), "-", "0", "0")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%.3f", row.Threshold),
			fmt.Sprintf("%.3f", row.Acc),
			fmt.Sprintf("%.2f", row.Recovery),
			fmt.Sprintf("%+.3f", row.AttackerScore),
			fmt.Sprintf("%+.3f", row.MinHonest),
			fmt.Sprintf("%d", row.GatedRounds),
			fmt.Sprintf("%d", row.HonestGated),
		)
	}
	t.Render(w)
}

func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
