package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// Table2Result reproduces the paper's Table II motivating example: three
// participants where A and B hold similar, sufficient typical data while C
// holds a small amount of complementary task-critical data. The table shows
// v(D_S) for every coalition plus the scores each scheme derives from it.
type Table2Result struct {
	// Utilities maps coalition label ("∅", "A", "A,B", ...) to test accuracy.
	Utilities map[string]float64
	// CoalitionOrder lists the labels in presentation order.
	CoalitionOrder []string
	// Individual, LeaveOneOut, Shapley are the derived scores for A, B, C.
	Individual, LeaveOneOut, Shapley []float64
}

// RunTable2 builds the A/B/C scenario on tic-tac-toe: A and B hold
// overlapping samples dominated by the majority (x-wins) class, C holds the
// scarce o-wins class data that the model cannot learn from A and B alone.
func RunTable2(seed int64) (*Table2Result, error) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(seed)
	train, test := tab.Split(r, 0.25)

	// Indices by class.
	var pos, neg []int
	for i, in := range train.Instances {
		if in.Label == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	stats.Shuffle(r, pos)
	stats.Shuffle(r, neg)

	// A and B: large, overlapping shards dominated by the typical (x-wins)
	// class with only a sliver of negatives — "similar and sufficient
	// typical data"; C: a small shard holding nearly all the o-wins class,
	// the complementary task-critical data.
	p40, p20, p60, p70 := 2*len(pos)/5, len(pos)/5, 3*len(pos)/5, 7*len(pos)/10
	n5, n10 := len(neg)/20, len(neg)/10
	mkA := append(append([]int{}, pos[:p40]...), neg[:n5]...)
	mkB := append(append([]int{}, pos[p20:p60]...), neg[n5:n10]...)
	mkC := append(append([]int{}, pos[p60:p70]...), neg[n10:]...)

	parts := []*fl.Participant{
		{ID: 0, Name: "A", Data: train.Subset(mkA)},
		{ID: 1, Name: "B", Data: train.Subset(mkB)},
		{ID: 2, Name: "C", Data: train.Subset(mkC)},
	}

	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		return nil, err
	}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 8, LocalEpochs: 20, Parallel: true,
		Model: nn.Config{Hidden: []int{64}, Grafting: true, Seed: seed + 1, L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true},
	})
	oracle, err := valuation.NewOracle(trainer, parts, test)
	if err != nil {
		return nil, err
	}

	labels := map[uint64]string{
		0b000: "∅", 0b001: "A", 0b010: "B", 0b100: "C",
		0b011: "A,B", 0b101: "A,C", 0b110: "B,C", 0b111: "A,B,C",
	}
	res := &Table2Result{Utilities: map[string]float64{}}
	var masks []uint64
	for m := range labels {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(a, b int) bool {
		if popcount(masks[a]) != popcount(masks[b]) {
			return popcount(masks[a]) < popcount(masks[b])
		}
		return masks[a] < masks[b]
	})
	// The full coalition lattice is known up front (every scheme below
	// reads from it), so train all seven non-empty coalitions as one
	// parallel batch; the presentation loop and the scheme derivations then
	// run against a warm cache.
	if err := oracle.EvalBatch(masks); err != nil {
		return nil, err
	}
	for _, m := range masks {
		u, err := oracle.Utility(m)
		if err != nil {
			return nil, err
		}
		res.Utilities[labels[m]] = u
		res.CoalitionOrder = append(res.CoalitionOrder, labels[m])
	}

	if res.Individual, err = valuation.IndividualValues(3, oracle.Utility); err != nil {
		return nil, err
	}
	if res.LeaveOneOut, err = valuation.LeaveOneOutValues(3, oracle.Utility); err != nil {
		return nil, err
	}
	if res.Shapley, err = valuation.ExactShapley(3, oracle.Utility); err != nil {
		return nil, err
	}
	return res, nil
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Render prints the coalition utility table and the derived scores.
func (r *Table2Result) Render(w io.Writer) {
	t := NewTable("Table II — model test accuracy across participant sets",
		append([]string{"participant set"}, r.CoalitionOrder...)...)
	cells := []string{"v: test acc."}
	for _, c := range r.CoalitionOrder {
		cells = append(cells, fmt.Sprintf("%.2f", r.Utilities[c]))
	}
	t.AddRow(cells...)
	t.Render(w)
	fmt.Fprintln(w)

	t2 := NewTable("derived scores", "scheme", "A", "B", "C")
	t2.AddRowf("Individual", "%.4f", r.Individual...)
	t2.AddRowf("LeaveOneOut", "%.4f", r.LeaveOneOut...)
	t2.AddRowf("ShapleyValue (exact)", "%.4f", r.Shapley...)
	t2.Render(w)
}
