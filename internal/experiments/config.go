// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VI): the Table II motivating example, the Fig. 4
// remove-top-contributors accuracy curves, the Fig. 5 execution-time
// comparison, the Fig. 6 robustness study, and the Fig. 7 / Table V
// interpretability case studies. Each experiment is a pure function from a
// Workload to a printable result, so the CLI, the benchmarks and the tests
// all share one implementation.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// Workload describes one experimental configuration.
type Workload struct {
	// Dataset is one of the registry names: tic-tac-toe, adult, bank, dota2.
	Dataset string
	// Rows caps the generated dataset size; 0 means the paper's full size.
	// (tic-tac-toe is always its natural 958 rows.)
	Rows int
	// Participants is the federation size (paper default 8).
	Participants int
	// Alpha is the Dirichlet skew parameter (paper range [0.6, 1]).
	Alpha float64
	// SkewLabel selects the skew-label partitioner; false means skew-sample.
	SkewLabel bool
	// TestFrac is the share of rows reserved by the federation (default 0.2).
	TestFrac float64
	// Seed drives every random choice in the workload.
	Seed int64

	// TauW is CTFL's tracing threshold (default 0.9).
	TauW float64
	// Delta is CTFL's macro threshold (default 2).
	Delta int
	// Rounds / LocalEpochs / Hidden configure FedAvg training; zero values
	// take dataset-appropriate defaults.
	Rounds      int
	LocalEpochs int
	Hidden      int
	// TauD is the binarization-layer dimension (default 10, per the paper).
	TauD int
	// L1Logic prunes rule operands (default 2e-4); L2Head bounds rule
	// importance weights (default 1e-3). Together they keep extracted rules
	// crisp under FedAvg averaging. Set negative to disable.
	L1Logic float64
	L2Head  float64
}

func (w Workload) withDefaults() Workload {
	if w.Participants == 0 {
		w.Participants = 8
	}
	if w.Alpha == 0 {
		w.Alpha = 0.8
	}
	if w.TestFrac == 0 {
		w.TestFrac = 0.2
	}
	if w.TauW == 0 {
		w.TauW = 0.9
	}
	if w.Delta == 0 {
		w.Delta = 2
	}
	if w.Rounds == 0 {
		w.Rounds = 2
	}
	if w.LocalEpochs == 0 {
		w.LocalEpochs = 10
	}
	if w.Hidden == 0 {
		w.Hidden = 64
	}
	if w.TauD == 0 {
		w.TauD = 10
	}
	switch {
	case w.L1Logic == 0:
		w.L1Logic = 2e-4
	case w.L1Logic < 0:
		w.L1Logic = 0
	}
	switch {
	case w.L2Head == 0:
		w.L2Head = 1e-3
	case w.L2Head < 0:
		w.L2Head = 0
	}
	return w
}

// QuickWorkload returns a laptop-scale workload for the named dataset with
// row counts small enough for interactive runs and CI, preserving the
// paper's participant count and skew defaults.
func QuickWorkload(name string, skewLabel bool, seed int64) Workload {
	w := Workload{Dataset: name, SkewLabel: skewLabel, Seed: seed}
	switch name {
	case "tic-tac-toe":
		w.Rows = 0 // natural size
	case "dota2":
		w.Rows = 1500
	default:
		w.Rows = 1500
	}
	return w
}

// Setup is a materialized workload: partitioned participants, the reserved
// test set, and a FedAvg trainer bound to the federation's encoder.
type Setup struct {
	Workload Workload
	Parts    []*fl.Participant
	Test     *dataset.Table
	Trainer  *fl.Trainer
}

// Materialize generates the dataset, splits off the federation test set,
// partitions the training data across participants, and builds the trainer.
func Materialize(w Workload) (*Setup, error) {
	w = w.withDefaults()
	info, err := dataset.ByName(w.Dataset)
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(w.Seed)
	tab := info.Generate(r, w.Rows)
	train, test := tab.Split(r, w.TestFrac)

	var parts []*fl.Participant
	if w.SkewLabel {
		parts = fl.PartitionSkewLabel(train, w.Participants, w.Alpha, r)
	} else {
		parts = fl.PartitionSkewSample(train, w.Participants, w.Alpha, r)
	}

	enc, err := dataset.NewEncoder(tab.Schema, w.TauD, r)
	if err != nil {
		return nil, err
	}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds:      w.Rounds,
		LocalEpochs: w.LocalEpochs,
		Parallel:    true,
		Model: nn.Config{
			Hidden:   []int{w.Hidden},
			Grafting: true,
			Seed:     w.Seed + 1,
			L1Logic:  w.L1Logic,
			L2Head:   w.L2Head,
			KeepBest: true,
		},
	})
	return &Setup{Workload: w, Parts: parts, Test: test, Trainer: trainer}, nil
}

// CTFLConfig returns the tracer configuration implied by the workload.
func (s *Setup) CTFLConfig() core.Config {
	return core.Config{TauW: s.Workload.TauW, Delta: s.Workload.Delta}
}

// Schemes builds the full method lineup of the paper's figures: the four
// baselines plus CTFL-micro and CTFL-macro. When includeExpensive is false,
// ShapleyValue and LeastCore are omitted (the paper itself drops them on
// dota2 because they cannot finish in reasonable time).
func (s *Setup) Schemes(includeExpensive bool) []valuation.Scheme {
	out := []valuation.Scheme{
		&valuation.Individual{Trainer: s.Trainer},
		&valuation.LeaveOneOut{Trainer: s.Trainer},
	}
	if includeExpensive {
		out = append(out,
			&valuation.ShapleyValue{Trainer: s.Trainer, Seed: s.Workload.Seed},
			&valuation.LeastCore{Trainer: s.Trainer, Seed: s.Workload.Seed},
		)
	}
	out = append(out,
		&core.Scheme{Variant: core.Micro, Trainer: s.Trainer, Cfg: s.CTFLConfig()},
		&core.Scheme{Variant: core.Macro, Trainer: s.Trainer, Cfg: s.CTFLConfig()},
	)
	return out
}

// AttachOracle points every combinatorial baseline in schemes at a shared
// memoizing oracle so coalition trainings are reused across schemes. Only
// valid while the participant list the oracle was built for is unchanged;
// CTFL schemes are unaffected (they never retrain coalitions).
func AttachOracle(schemes []valuation.Scheme, o *valuation.Oracle) {
	for _, s := range schemes {
		switch b := s.(type) {
		case *valuation.Individual:
			b.SharedOracle = o
		case *valuation.LeaveOneOut:
			b.SharedOracle = o
		case *valuation.ShapleyValue:
			b.SharedOracle = o
		case *valuation.LeastCore:
			b.SharedOracle = o
		}
	}
}

// ParticipantNames returns the display names in index order.
func (s *Setup) ParticipantNames() []string {
	names := make([]string, len(s.Parts))
	for i, p := range s.Parts {
		names[i] = p.Name
	}
	return names
}

// String summarizes the workload for report headers.
func (w Workload) String() string {
	skew := "skew-sample"
	if w.SkewLabel {
		skew = "skew-label"
	}
	rows := "full"
	if w.Rows > 0 {
		rows = fmt.Sprintf("%d rows", w.Rows)
	}
	return fmt.Sprintf("%s (%s, %s, n=%d, alpha=%.2f, seed=%d)",
		w.Dataset, rows, skew, w.Participants, w.Alpha, w.Seed)
}
