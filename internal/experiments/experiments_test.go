package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/valuation"
)

// tinySetup materializes a fast tic-tac-toe workload for integration tests.
func tinySetup(t *testing.T, skewLabel bool) *Setup {
	t.Helper()
	w := Workload{
		Dataset:      "tic-tac-toe",
		Participants: 4,
		SkewLabel:    skewLabel,
		Seed:         3,
		Rounds:       1,
		LocalEpochs:  6,
		Hidden:       32,
	}
	s, err := Materialize(w)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMaterializeDefaults(t *testing.T) {
	s, err := Materialize(Workload{Dataset: "tic-tac-toe", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Parts) != 8 {
		t.Fatalf("default participants = %d, want 8", len(s.Parts))
	}
	if s.Test.Len() == 0 {
		t.Fatal("no test data")
	}
	total := s.Test.Len()
	for _, p := range s.Parts {
		total += p.Size()
	}
	if total != 958 {
		t.Fatalf("rows lost: %d", total)
	}
	if s.Workload.TauW != 0.9 || s.Workload.Delta != 2 {
		t.Fatalf("defaults not applied: %+v", s.Workload)
	}
}

func TestMaterializeUnknownDataset(t *testing.T) {
	if _, err := Materialize(Workload{Dataset: "nope"}); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestQuickWorkloadSizes(t *testing.T) {
	if QuickWorkload("tic-tac-toe", true, 1).Rows != 0 {
		t.Fatal("tic-tac-toe should use natural size")
	}
	if QuickWorkload("adult", false, 1).Rows == 0 {
		t.Fatal("adult quick workload should cap rows")
	}
}

func TestWorkloadString(t *testing.T) {
	s := Workload{Dataset: "adult", Rows: 100, Participants: 3, Alpha: 0.5, SkewLabel: true}.String()
	for _, want := range []string{"adult", "100 rows", "skew-label", "n=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String = %q missing %q", s, want)
		}
	}
}

func TestSchemesLineup(t *testing.T) {
	s := tinySetup(t, true)
	all := s.Schemes(true)
	if len(all) != 6 {
		t.Fatalf("full lineup = %d schemes", len(all))
	}
	cheap := s.Schemes(false)
	if len(cheap) != 4 {
		t.Fatalf("cheap lineup = %d schemes", len(cheap))
	}
	names := map[string]bool{}
	for _, sc := range all {
		names[sc.Name()] = true
	}
	for _, want := range []string{"Individual", "LeaveOneOut", "ShapleyValue", "LeastCore", "CTFL-micro", "CTFL-macro"} {
		if !names[want] {
			t.Fatalf("missing scheme %q in %v", want, names)
		}
	}
}

func TestRunFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	s := tinySetup(t, true)
	res, err := RunFig4(s, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 4 {
		t.Fatalf("methods = %d", len(res.Methods))
	}
	for _, m := range res.Methods {
		if len(m.Curve) != 3 { // full + 2 removals
			t.Fatalf("%s curve length = %d", m.Name, len(m.Curve))
		}
		if len(m.Removed) != 2 {
			t.Fatalf("%s removed = %v", m.Name, m.Removed)
		}
		if m.AUC <= 0 || m.AUC > 1 {
			t.Fatalf("%s AUC = %v", m.Name, m.AUC)
		}
		// Removal order must be contribution-descending.
		if m.Scores[m.Removed[0]] < m.Scores[m.Removed[1]]-1e-12 {
			t.Fatalf("%s removal order not descending: %v %v", m.Name, m.Removed, m.Scores)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig.4") || !strings.Contains(buf.String(), "AUC=") {
		t.Fatalf("render output unexpected:\n%s", buf.String())
	}
}

func TestRunFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	s := tinySetup(t, false)
	res, err := RunFig5(s, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) != 6 {
		t.Fatalf("timings = %d", len(res.Timings))
	}
	byName := map[string]float64{}
	for _, m := range res.Timings {
		if m.Elapsed <= 0 {
			t.Fatalf("%s elapsed = %v", m.Name, m.Elapsed)
		}
		byName[m.Name] = m.Elapsed.Seconds()
	}
	// The combinatorial baselines must cost more than CTFL even at n=4.
	if byName["ShapleyValue"] < byName["CTFL-micro"] {
		t.Fatalf("Shapley (%.3fs) should cost more than CTFL (%.3fs)",
			byName["ShapleyValue"], byName["CTFL-micro"])
	}
	if sp := res.SpeedupOver("CTFL-micro"); sp < 1 {
		t.Fatalf("speedup = %v", sp)
	}
	if res.SpeedupOver("no-such") != 0 {
		t.Fatal("unknown method should give 0 speedup")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig.5") {
		t.Fatal("render missing title")
	}
}

func TestRunFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	s := tinySetup(t, true)
	res, err := RunFig6(s, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Modified) != 2 || len(row.Ratios) != 2 {
			t.Fatalf("row %s victims = %v ratios = %v", row.Behaviour, row.Modified, row.Ratios)
		}
		for _, ratio := range row.Ratios {
			if ratio < 0.1 || ratio > 0.5 {
				t.Fatalf("ratio %v outside [0.1,0.5]", ratio)
			}
		}
		for _, m := range row.Methods {
			for _, c := range m.Changes {
				if c < -1-1e-9 || c > 1+1e-9 {
					t.Fatalf("%s/%s change %v not clipped", row.Behaviour, m.Name, c)
				}
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, b := range Behaviours() {
		if !strings.Contains(out, string(b)) {
			t.Fatalf("render missing %s", b)
		}
	}
}

func TestRunFig4AvgAveragesCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	w := Workload{
		Dataset: "tic-tac-toe", Participants: 4, SkewLabel: true,
		Seed: 3, Rounds: 1, LocalEpochs: 6, Hidden: 32,
	}
	res, err := RunFig4Avg(w, 2, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 4 {
		t.Fatalf("methods = %d", len(res.Methods))
	}
	for _, m := range res.Methods {
		if len(m.Curve) != 3 {
			t.Fatalf("%s curve = %v", m.Name, m.Curve)
		}
		for _, v := range m.Curve {
			if v < 0 || v > 1 {
				t.Fatalf("%s averaged curve out of range: %v", m.Name, m.Curve)
			}
		}
		if math.Abs(m.AUC-stats.AUC(m.Curve)) > 1e-12 {
			t.Fatalf("%s AUC not recomputed from averaged curve", m.Name)
		}
	}
}

func TestRunFig6AvgAveragesChanges(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	w := Workload{
		Dataset: "tic-tac-toe", Participants: 4, SkewLabel: true,
		Seed: 3, Rounds: 1, LocalEpochs: 6, Hidden: 32,
	}
	res, err := RunFig6Avg(w, 2, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, m := range row.Methods {
			if math.Abs(m.MeanChange-stats.Mean(m.Changes)) > 1e-12 {
				t.Fatalf("%s mean not recomputed", m.Name)
			}
		}
	}
}

func TestAttachOracleSharesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	s := tinySetup(t, false)
	oracle, err := valuation.NewOracle(s.Trainer, s.Parts, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	schemes := s.Schemes(false) // Individual + LOO + CTFL×2
	AttachOracle(schemes, oracle)
	for _, sc := range schemes {
		if _, err := sc.Scores(s.Parts, s.Test); err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
	}
	// Individual needs the n singletons, LOO needs full + n leave-outs:
	// 2n+1 distinct coalitions when shared (CTFL trains outside the oracle).
	want := 2*len(s.Parts) + 1
	if oracle.Evals() != want {
		t.Fatalf("shared oracle evals = %d, want %d", oracle.Evals(), want)
	}
}

func TestRelativeChange(t *testing.T) {
	if got := relativeChange(0.2, 0.3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("relativeChange = %v, want 0.5", got)
	}
	if got := relativeChange(0.2, 0); math.Abs(got+1) > 1e-12 {
		t.Fatalf("relativeChange to zero = %v, want -1", got)
	}
	if got := relativeChange(0.1, 1.5); got != 1 {
		t.Fatalf("clipping failed: %v", got)
	}
	if got := relativeChange(0, 0.4); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("zero baseline = %v, want 0.4", got)
	}
}

func TestRunInterpret(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	w := Workload{
		Dataset: "tic-tac-toe", Participants: 3, SkewLabel: true,
		Seed: 5, Rounds: 15, LocalEpochs: 20, Hidden: 64,
	}
	s, err := Materialize(w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunInterpret(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 3 || len(res.Micro) != 3 {
		t.Fatalf("profile/micro sizes wrong: %d %d", len(res.Profiles), len(res.Micro))
	}
	if res.Accuracy < 0.75 {
		t.Fatalf("model accuracy %v too low for a meaningful case study", res.Accuracy)
	}
	// At least one participant must have beneficial rules to report.
	any := false
	for _, p := range res.Profiles {
		if len(p.Beneficial) > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no beneficial rules extracted")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "contribution scores") {
		t.Fatal("render missing scores table")
	}
}

func TestRunTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	res, err := RunTable2(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoalitionOrder) != 8 {
		t.Fatalf("coalitions = %d", len(res.CoalitionOrder))
	}
	vFull := res.Utilities["A,B,C"]
	vAB := res.Utilities["A,B"]
	// The designed scenario: adding C to {A,B} must improve accuracy
	// (C holds the complementary o-wins data).
	if vFull <= vAB {
		t.Fatalf("C should be complementary: v(ABC)=%v <= v(AB)=%v", vFull, vAB)
	}
	// Shapley must give C at least a comparable share, unlike Individual.
	if res.Shapley[2] <= 0 {
		t.Fatalf("Shapley gave C %v", res.Shapley[2])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("render missing title")
	}
}

func TestRunAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	s := tinySetup(t, true)
	res, err := RunAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TauRows) != 5 || len(res.DeltaRows) != 5 || len(res.GroupingRows) != 2 || len(res.DPRows) != 5 {
		t.Fatalf("row counts: %d %d %d %d",
			len(res.TauRows), len(res.DeltaRows), len(res.GroupingRows), len(res.DPRows))
	}
	// Coverage gap must not shrink as tau rises.
	for i := 1; i < len(res.TauRows); i++ {
		if res.TauRows[i].CoverageGap < res.TauRows[i-1].CoverageGap-1e-9 {
			t.Fatalf("coverage gap decreased with stricter tau: %+v", res.TauRows)
		}
	}
	// Allocated macro credit must not grow with delta.
	for i := 1; i < len(res.DeltaRows); i++ {
		if res.DeltaRows[i].AllocatedCredit > res.DeltaRows[i-1].AllocatedCredit+1e-9 {
			t.Fatalf("macro credit grew with delta: %+v", res.DeltaRows)
		}
	}
	// DP rank agreement should broadly improve with epsilon.
	if res.DPRows[len(res.DPRows)-1].RankAgreement < res.DPRows[0].RankAgreement-0.2 {
		t.Fatalf("DP agreement not improving with budget: %+v", res.DPRows)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"tau_w sweep", "macro delta sweep", "max-miner", "local-DP"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestTableBuilder(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x", "1")
	tb.AddRowf("y", "%.1f", 2.0, 3.0)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"t", "a", "b", "x", "2.0", "3.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output %q missing %q", out, want)
		}
	}
}

func TestRunQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	s := tinySetup(t, false)
	res, err := RunQuality(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 4 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	// The replicator must show the strongest duplicate signal.
	for i, r := range res.Reports {
		if i == res.Replicator {
			continue
		}
		if r.DuplicateRatio > res.Reports[res.Replicator].DuplicateRatio {
			t.Fatalf("participant %d out-duplicates the replicator: %+v", i, res.Reports)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Data-quality audit") {
		t.Fatal("render missing title")
	}
	// Too few participants errors.
	small := tinySetup(t, false)
	small.Parts = small.Parts[:2]
	if _, err := RunQuality(small); err == nil {
		t.Fatal("2 participants should error")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	down := sparkline([]float64{1, 0.75, 0.5, 0.25, 0})
	if []rune(down)[0] != '█' || []rune(down)[4] != '▁' {
		t.Fatalf("descending sparkline = %q", down)
	}
	flat := sparkline([]float64{0.5, 0.5, 0.5})
	runes := []rune(flat)
	if runes[0] != runes[1] || runes[1] != runes[2] {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestRunDefense(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	s := tinySetup(t, false)
	res, err := RunDefense(s, DefenseConfig{
		Rounds:      6,
		LocalEpochs: 3,
		Thresholds:  []float64{-0.03, -0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attacker != s.Parts[len(s.Parts)-1].ID {
		t.Fatalf("attacker = %d, want the last participant", res.Attacker)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want one per threshold", len(res.Rows))
	}
	if res.CleanAcc <= 0 || res.UngatedAcc <= 0 {
		t.Fatalf("degenerate bracket: clean %.3f ungated %.3f", res.CleanAcc, res.UngatedAcc)
	}
	for _, row := range res.Rows {
		if row.Acc <= 0 || row.Recovery <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
	}
	// The sweep and its bracket runs must reproduce bit-identically.
	again, err := RunDefense(s, DefenseConfig{
		Rounds:      6,
		LocalEpochs: 3,
		Thresholds:  []float64{-0.03, -0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(again.CleanAcc) != math.Float64bits(res.CleanAcc) ||
		math.Float64bits(again.UngatedAcc) != math.Float64bits(res.UngatedAcc) {
		t.Fatal("defense bracket runs not reproducible from the seed")
	}
	for i := range res.Rows {
		if math.Float64bits(again.Rows[i].Acc) != math.Float64bits(res.Rows[i].Acc) ||
			math.Float64bits(again.Rows[i].AttackerScore) != math.Float64bits(res.Rows[i].AttackerScore) {
			t.Fatalf("defense row %d not reproducible", i)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "ContAvg defense sweep") || !strings.Contains(out, "ungated") {
		t.Fatalf("render missing sections:\n%s", out)
	}
	// Too few participants errors.
	small := tinySetup(t, false)
	small.Parts = small.Parts[:1]
	if _, err := RunDefense(small, DefenseConfig{}); err == nil {
		t.Fatal("1 participant should error")
	}
}
