package experiments

import (
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/valuation"
)

// MethodCurve is one method's remove-top-contributors trajectory.
type MethodCurve struct {
	Name string
	// Scores is the method's contribution vector on the full federation.
	Scores []float64
	// Removed lists the participant indices in removal order (contribution
	// descending, without replacement).
	Removed []int
	// Curve[k] is the model test accuracy with the top-k contributors
	// removed; Curve[0] is the full-federation accuracy.
	Curve []float64
	// AUC summarizes the curve (mean height): smaller means the method
	// identified truly important participants (paper Fig. 4 criterion).
	AUC float64
	// AUCStd is the standard deviation of per-repetition AUCs when the
	// result came from RunFig4Avg with more than one repetition.
	AUCStd float64
}

// Fig4Result reproduces one subplot of the paper's Fig. 4.
type Fig4Result struct {
	Workload Workload
	Methods  []MethodCurve
}

// RunFig4 computes remove-top-k accuracy curves for every scheme on the
// workload. All removal retrainings share one memoizing oracle, so methods
// that agree on removal order reuse coalition evaluations.
func RunFig4(s *Setup, topK int, includeExpensive bool) (*Fig4Result, error) {
	if topK <= 0 || topK >= len(s.Parts) {
		topK = min(5, len(s.Parts)-1)
	}
	oracle, err := valuation.NewOracle(s.Trainer, s.Parts, s.Test)
	if err != nil {
		return nil, err
	}
	full := fullMask(len(s.Parts))

	res := &Fig4Result{Workload: s.Workload}
	schemes := s.Schemes(includeExpensive)
	// The participant list is fixed for the whole experiment, so every
	// baseline and every removal retraining can share one coalition cache.
	AttachOracle(schemes, oracle)
	// Each (scheme, curve) cell is independent given the shared oracle, so
	// the cells run concurrently; the oracle's in-flight dedup keeps each
	// distinct coalition trained once even when methods agree on removal
	// order, and per-index writes keep the output order deterministic.
	res.Methods = make([]MethodCurve, len(schemes))
	err = forEachCell(len(schemes), func(ci int) error {
		scheme := schemes[ci]
		scores, err := scheme.Scores(s.Parts, s.Test)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", scheme.Name(), err)
		}
		mc := MethodCurve{Name: scheme.Name(), Scores: scores}
		order := stats.ArgsortDesc(scores)
		// The removal masks are a function of the scores alone, so the
		// cell's whole trajectory can be batch-trained before reading it.
		mask := full
		plan := []uint64{mask}
		for k := 0; k < topK; k++ {
			mask &^= 1 << uint(order[k])
			plan = append(plan, mask)
		}
		if err := oracle.EvalBatch(plan); err != nil {
			return err
		}
		for k, m := range plan {
			acc, err := oracle.Utility(m)
			if err != nil {
				return err
			}
			if k > 0 {
				mc.Removed = append(mc.Removed, order[k-1])
			}
			mc.Curve = append(mc.Curve, acc)
		}
		mc.AUC = stats.AUC(mc.Curve)
		res.Methods[ci] = mc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunFig4Avg repeats RunFig4 over `repeats` reseeded materializations of the
// workload and averages the accuracy curves per method, as the paper does
// (all experiments repeated 10 times). Scores and removal orders are
// reported from the first repetition.
func RunFig4Avg(w Workload, topK int, includeExpensive bool, repeats int) (*Fig4Result, error) {
	if repeats < 1 {
		repeats = 1
	}
	var agg *Fig4Result
	var perRepAUC [][]float64 // [method][rep]
	for rep := 0; rep < repeats; rep++ {
		wr := w
		wr.Seed = w.Seed + int64(rep)*1000
		s, err := Materialize(wr)
		if err != nil {
			return nil, err
		}
		res, err := RunFig4(s, topK, includeExpensive)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = res
			agg.Workload = w.withDefaults()
			agg.Workload.Seed = w.Seed
			perRepAUC = make([][]float64, len(res.Methods))
		} else {
			for mi := range agg.Methods {
				for k := range agg.Methods[mi].Curve {
					agg.Methods[mi].Curve[k] += res.Methods[mi].Curve[k]
				}
			}
		}
		for mi := range res.Methods {
			perRepAUC[mi] = append(perRepAUC[mi], res.Methods[mi].AUC)
		}
	}
	inv := 1 / float64(repeats)
	for mi := range agg.Methods {
		for k := range agg.Methods[mi].Curve {
			agg.Methods[mi].Curve[k] *= inv
		}
		agg.Methods[mi].AUC = stats.AUC(agg.Methods[mi].Curve)
		agg.Methods[mi].AUCStd = stats.Std(perRepAUC[mi])
	}
	return agg, nil
}

// Render prints the curves and AUCs as the same series the paper plots.
func (r *Fig4Result) Render(w io.Writer) {
	t := NewTable("Fig.4 — accuracy while removing top contributors: "+r.Workload.String(),
		append([]string{"method"}, curveHeader(len(r.Methods[0].Curve))...)...)
	for _, m := range r.Methods {
		cells := []string{m.Name}
		for _, v := range m.Curve {
			cells = append(cells, fmt.Sprintf("%.4f", v))
		}
		summary := fmt.Sprintf("AUC=%.4f", m.AUC)
		if m.AUCStd > 0 {
			summary += fmt.Sprintf("±%.4f", m.AUCStd)
		}
		cells = append(cells, summary, sparkline(m.Curve))
		t.AddRow(cells...)
	}
	t.Render(w)
}

func curveHeader(n int) []string {
	out := make([]string, 0, n+2)
	for k := 0; k < n; k++ {
		out = append(out, fmt.Sprintf("-top%d", k))
	}
	return append(out, "summary", "shape")
}

func fullMask(n int) uint64 { return (1 << uint(n)) - 1 }
