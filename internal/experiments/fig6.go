package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/fl"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// Behaviour names one adverse participant behaviour of the robustness study.
type Behaviour string

// The three behaviours of the paper's Fig. 6, top to bottom row.
const (
	Replication Behaviour = "replication"
	LowQuality  Behaviour = "low-quality"
	LabelFlip   Behaviour = "label-flip"
)

// Behaviours lists the Fig. 6 rows in paper order.
func Behaviours() []Behaviour { return []Behaviour{Replication, LowQuality, LabelFlip} }

func applyBehaviour(b Behaviour, p *fl.Participant, ratio float64, r *rand.Rand) *fl.Participant {
	switch b {
	case Replication:
		return fl.Replicate(p, ratio, r)
	case LowQuality:
		return fl.InjectLowQuality(p, ratio, r)
	case LabelFlip:
		return fl.FlipLabels(p, ratio, r)
	default:
		panic(fmt.Sprintf("experiments: unknown behaviour %q", b))
	}
}

// MethodRobustness is one method's reaction to one behaviour.
type MethodRobustness struct {
	Name string
	// Changes[j] is the relative contribution change of the j-th modified
	// participant, clipped to [-1, 1] as in the paper's plots.
	Changes []float64
	// MeanChange averages Changes.
	MeanChange float64
}

// Fig6Row is one behaviour row of Fig. 6 for one workload.
type Fig6Row struct {
	Behaviour Behaviour
	// Modified lists the indices of the attacked participants and the
	// data ratios applied to them.
	Modified []int
	Ratios   []float64
	Methods  []MethodRobustness
}

// Fig6Result reproduces the paper's Fig. 6 for one workload.
type Fig6Result struct {
	Workload Workload
	Rows     []Fig6Row
}

// RunFig6 measures, for every scheme and every adverse behaviour, the
// relative contribution change of the modified participants
// (phi(i') − phi(i)) / phi(i), clipped to [-1, 1]. numModified participants
// (paper default 2) are attacked with ratios drawn uniformly from
// [0.1, 0.5].
func RunFig6(s *Setup, numModified int, includeExpensive bool) (*Fig6Result, error) {
	if numModified <= 0 {
		numModified = 2
	}
	if numModified > len(s.Parts) {
		numModified = len(s.Parts)
	}
	r := stats.NewRNG(s.Workload.Seed + 77)
	victims := r.Perm(len(s.Parts))[:numModified]
	ratios := make([]float64, numModified)
	for i := range ratios {
		ratios[i] = 0.1 + 0.4*r.Float64()
	}

	schemes := s.Schemes(includeExpensive)
	// Baseline scores once per scheme, sharing one coalition cache (the
	// participant list is the honest one for every baseline score). Scheme
	// cells run concurrently; the shared oracle's in-flight dedup keeps
	// every distinct coalition trained once across them.
	oracle, err := valuation.NewOracle(s.Trainer, s.Parts, s.Test)
	if err != nil {
		return nil, err
	}
	AttachOracle(schemes, oracle)
	baseScores := make([][]float64, len(schemes))
	err = forEachCell(len(schemes), func(ci int) error {
		sc, err := schemes[ci].Scores(s.Parts, s.Test)
		if err != nil {
			return fmt.Errorf("experiments: baseline %s: %w", schemes[ci].Name(), err)
		}
		baseScores[ci] = sc
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := make(map[string][]float64, len(schemes))
	for ci, scheme := range schemes {
		base[scheme.Name()] = baseScores[ci]
	}

	res := &Fig6Result{Workload: s.Workload}
	for _, b := range Behaviours() {
		parts := s.Parts
		for j, vi := range victims {
			parts = fl.ReplaceParticipant(parts, applyBehaviour(b, s.Parts[vi], ratios[j], r))
		}
		// Re-point the shared cache at the modified participant list.
		behaviourOracle, err := valuation.NewOracle(s.Trainer, parts, s.Test)
		if err != nil {
			return nil, err
		}
		AttachOracle(schemes, behaviourOracle)
		row := Fig6Row{Behaviour: b, Modified: victims, Ratios: ratios}
		row.Methods = make([]MethodRobustness, len(schemes))
		err = forEachCell(len(schemes), func(ci int) error {
			scheme := schemes[ci]
			after, err := scheme.Scores(parts, s.Test)
			if err != nil {
				return fmt.Errorf("experiments: %s under %s: %w", scheme.Name(), b, err)
			}
			m := MethodRobustness{Name: scheme.Name()}
			for _, vi := range victims {
				before := base[scheme.Name()][vi]
				change := relativeChange(before, after[vi])
				m.Changes = append(m.Changes, change)
			}
			m.MeanChange = stats.Mean(m.Changes)
			row.Methods[ci] = m
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunFig6Avg repeats RunFig6 over reseeded materializations and averages
// each method's per-victim relative changes, mirroring the paper's repeated
// trials. Victim indices and ratios are reported from the first repetition.
func RunFig6Avg(w Workload, numModified int, includeExpensive bool, repeats int) (*Fig6Result, error) {
	if repeats < 1 {
		repeats = 1
	}
	var agg *Fig6Result
	for rep := 0; rep < repeats; rep++ {
		wr := w
		wr.Seed = w.Seed + int64(rep)*1000
		s, err := Materialize(wr)
		if err != nil {
			return nil, err
		}
		res, err := RunFig6(s, numModified, includeExpensive)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = res
			agg.Workload = w.withDefaults()
			agg.Workload.Seed = w.Seed
			continue
		}
		for ri := range agg.Rows {
			for mi := range agg.Rows[ri].Methods {
				for ci := range agg.Rows[ri].Methods[mi].Changes {
					agg.Rows[ri].Methods[mi].Changes[ci] += res.Rows[ri].Methods[mi].Changes[ci]
				}
			}
		}
	}
	inv := 1 / float64(repeats)
	for ri := range agg.Rows {
		for mi := range agg.Rows[ri].Methods {
			m := &agg.Rows[ri].Methods[mi]
			for ci := range m.Changes {
				m.Changes[ci] *= inv
			}
			m.MeanChange = stats.Mean(m.Changes)
		}
	}
	return agg, nil
}

// relativeChange computes (after − before)/|before| clipped to [-1, 1],
// treating a near-zero baseline as the change magnitude itself (clipped).
func relativeChange(before, after float64) float64 {
	const eps = 1e-9
	den := math.Abs(before)
	if den < eps {
		return stats.Clip(after, -1, 1)
	}
	return stats.Clip((after-before)/den, -1, 1)
}

// Render prints one table per behaviour row.
func (r *Fig6Result) Render(w io.Writer) {
	for _, row := range r.Rows {
		t := NewTable(
			fmt.Sprintf("Fig.6 — %s on %s (victims %v, ratios %s)",
				row.Behaviour, r.Workload.String(), row.Modified, formatScores(row.Ratios)),
			"method", "per-victim change", "mean")
		for _, m := range row.Methods {
			t.AddRow(m.Name, formatScores(m.Changes), fmt.Sprintf("%+.3f", m.MeanChange))
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
}
