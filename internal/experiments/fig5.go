package experiments

import (
	"fmt"
	"io"
	"time"
)

// MethodTiming records one scheme's wall-clock cost to produce final scores.
type MethodTiming struct {
	Name    string
	Elapsed time.Duration
	Scores  []float64
}

// Fig5Result reproduces one group of bars of the paper's Fig. 5.
type Fig5Result struct {
	Workload Workload
	Timings  []MethodTiming
}

// RunFig5 times every scheme end-to-end (training included) with no shared
// caches, mirroring the paper's execution-time measurement.
func RunFig5(s *Setup, includeExpensive bool) (*Fig5Result, error) {
	res := &Fig5Result{Workload: s.Workload}
	for _, scheme := range s.Schemes(includeExpensive) {
		start := time.Now()
		scores, err := scheme.Scores(s.Parts, s.Test)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", scheme.Name(), err)
		}
		res.Timings = append(res.Timings, MethodTiming{
			Name:    scheme.Name(),
			Elapsed: time.Since(start),
			Scores:  scores,
		})
	}
	return res, nil
}

// SpeedupOver returns how many times faster the named method is than the
// slowest method in the result (the paper's "2-3 orders of magnitude" claim
// compares CTFL against ShapleyValue/LeastCore).
func (r *Fig5Result) SpeedupOver(name string) float64 {
	var target, slowest time.Duration
	for _, m := range r.Timings {
		if m.Name == name {
			target = m.Elapsed
		}
		if m.Elapsed > slowest {
			slowest = m.Elapsed
		}
	}
	if target == 0 {
		return 0
	}
	return float64(slowest) / float64(target)
}

// Render prints the timing rows.
func (r *Fig5Result) Render(w io.Writer) {
	t := NewTable("Fig.5 — execution time: "+r.Workload.String(),
		"method", "seconds", "scores")
	for _, m := range r.Timings {
		t.AddRow(m.Name, fmt.Sprintf("%.3f", m.Elapsed.Seconds()), formatScores(m.Scores))
	}
	t.Render(w)
}
