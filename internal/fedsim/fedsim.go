// Package fedsim simulates a federation's operational lifecycle over many
// FedAvg rounds: clients drop out and rejoin, stragglers miss deadlines,
// the server tracks the global model's accuracy trajectory, and every event
// lands in an auditable log. It stress-tests the substrate CTFL sits on —
// contribution estimation is only as reliable as the training process that
// produced the global model — and gives the examples and benches a
// reproducible "messy real federation" to run against.
package fedsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
)

// Config controls the simulation.
type Config struct {
	// Rounds of federated training. Default 10.
	Rounds int
	// LocalEpochs per selected client per round. Default 10.
	LocalEpochs int
	// DropoutProb is the per-round probability a client is offline.
	DropoutProb float64
	// StragglerProb is the per-round probability a client misses the
	// deadline: it trains but its update arrives too late to aggregate.
	StragglerProb float64
	// Model is the shared logical-network configuration.
	Model nn.Config
	// Seed drives dropouts and straggling.
	Seed int64
	// Tampers maps participant ID → update-space attack (fl.UpdateTamper)
	// applied to that client's locally trained parameters before upload.
	// Unmapped participants upload honestly. Tampers compose with
	// data-space attacks (the participant list may already carry poisoned
	// data) — the data attack shapes what the client trains, the tamper
	// rewrites what it uploads.
	Tampers map[int]fl.UpdateTamper
	// Selector, when set, closes the contribution-gating feedback loop
	// (ContAvg): before aggregating a round it picks which available
	// clients' updates may be averaged, and after the round it observes
	// every submitted update (gated clients included, so their scores keep
	// moving and readmission stays possible). Nil aggregates every
	// available client — plain FedAvg.
	Selector RoundSelector
}

// RoundSelector is the contribution-gating hook (see rounds.ContAvg).
// Implementations must be deterministic for Run to stay a pure function of
// its Config.
type RoundSelector interface {
	// Select returns the subset of the available participant IDs whose
	// updates may be aggregated this round, based on state through the
	// previous round.
	Select(round int, available []int) []int
	// Observe feeds one round's submitted client updates (in ascending
	// participant order, gated clients included) back to the selector
	// after aggregation. An error aborts the simulation.
	Observe(round int, updates []ClientUpdate) error
}

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 10
	}
	return c
}

// EventKind classifies log entries.
type EventKind string

// Event kinds.
const (
	EventDropout   EventKind = "dropout"
	EventStraggler EventKind = "straggler"
	EventAggregate EventKind = "aggregate"
	EventSkipped   EventKind = "round-skipped"
	// EventGated marks a client whose update was submitted but excluded
	// from aggregation by the contribution gate (Config.Selector).
	EventGated EventKind = "gated"
)

// Event is one audit-log entry.
type Event struct {
	Round       int
	Kind        EventKind
	Participant int // -1 for round-level events
	Detail      string
}

// RoundStats summarizes one training round.
type RoundStats struct {
	Round        int
	Selected     int // clients whose updates were aggregated
	Dropouts     int
	Stragglers   int
	TestAcc      float64
	Participated []int // aggregated participant indices
	// Gated lists available clients whose updates the selector excluded
	// from aggregation this round (they still submitted and were scored).
	Gated []int
}

// ClientUpdate is one client's aggregated contribution to a round: its
// participant id, FedAvg weight (local data size), and the flat parameters
// of its locally trained model. The streaming valuation engine
// (internal/rounds) consumes these — aggregating every update of a round
// with these weights reproduces that round's global model bit-identically.
type ClientUpdate struct {
	Participant int
	Weight      float64
	Params      []float64
}

// Result is the simulation outcome.
type Result struct {
	Model  *nn.Model
	Rounds []RoundStats
	Events []Event
	// Participation[i] counts rounds participant i's update was aggregated.
	Participation []int
	// Updates holds each round's submitted client updates in ascending
	// participant order (nil for rounds no client reached) — the round
	// stream a live federation would push to POST /v1/rounds. Under
	// contribution gating this includes updates the gate excluded from
	// aggregation: they were still uploaded and still get scored.
	Updates [][]ClientUpdate
}

// Run simulates cfg.Rounds of federated training over the participants,
// evaluating the global model on test after every round.
func Run(enc *dataset.Encoder, parts []*fl.Participant, test *dataset.Table, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(parts) == 0 {
		return nil, fmt.Errorf("fedsim: no participants")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds:      1,
		LocalEpochs: cfg.LocalEpochs,
		Parallel:    true,
		Model:       cfg.Model,
		Seed:        cfg.Seed,
	})

	global, err := nn.New(enc.Width(), cfg.Model)
	if err != nil {
		return nil, err
	}
	res := &Result{Participation: make([]int, len(parts))}

	// Round-level model selection mirrors fl.Trainer: the server keeps the
	// snapshot with the best training accuracy across all participants, so
	// one bad round (e.g. aggregated from a single straggling client's
	// update) cannot regress the deployed model.
	bestAcc := -1.0
	var bestParams []float64
	snapshot := func() {
		correct, total := 0, 0
		for _, p := range parts {
			x, y := enc.EncodeTable(p.Data)
			pred := global.PredictBatch(x)
			for i := range y {
				if pred[i] == y[i] {
					correct++
				}
			}
			total += len(y)
		}
		if acc := float64(correct) / float64(total); acc > bestAcc {
			bestAcc = acc
			bestParams = global.Params()
		}
	}

	for round := 0; round < cfg.Rounds; round++ {
		var available []*fl.Participant
		stats := RoundStats{Round: round}
		for _, p := range parts {
			switch {
			case r.Float64() < cfg.DropoutProb:
				stats.Dropouts++
				res.Events = append(res.Events, Event{
					Round: round, Kind: EventDropout, Participant: p.ID,
					Detail: "offline this round",
				})
			case r.Float64() < cfg.StragglerProb:
				stats.Stragglers++
				res.Events = append(res.Events, Event{
					Round: round, Kind: EventStraggler, Participant: p.ID,
					Detail: "update missed the aggregation deadline",
				})
			default:
				available = append(available, p)
			}
		}
		if len(available) == 0 {
			res.Events = append(res.Events, Event{
				Round: round, Kind: EventSkipped, Participant: -1,
				Detail: "no client reachable; global model unchanged",
			})
			stats.TestAcc = trainer.Evaluate(global, test)
			res.Rounds = append(res.Rounds, stats)
			res.Updates = append(res.Updates, nil)
			continue
		}

		// Contribution gating: the selector (scores through round-1) picks
		// which available clients' updates may be aggregated. Everyone
		// available still trains and submits — gated clients are excluded
		// from the weighted average only, so the selector keeps observing
		// (and re-scoring) them and hysteretic readmission stays possible.
		admitted := available
		if cfg.Selector != nil {
			ids := make([]int, len(available))
			for i, p := range available {
				ids[i] = p.ID
			}
			admit := make(map[int]bool, len(ids))
			for _, id := range cfg.Selector.Select(round, ids) {
				admit[id] = true
			}
			admitted = admitted[:0:0]
			for _, p := range available {
				if admit[p.ID] {
					admitted = append(admitted, p)
					continue
				}
				stats.Gated = append(stats.Gated, p.ID)
				res.Events = append(res.Events, Event{
					Round: round, Kind: EventGated, Participant: p.ID,
					Detail: "update excluded from aggregation by contribution gate",
				})
			}
			sort.Ints(stats.Gated)
		}

		// One FedAvg round over the available clients, warm-started from the
		// current global parameters; only admitted clients' (possibly
		// tampered) updates enter the weighted average.
		roundModel, updates, err := trainOneRound(trainer, global, available, admitted, round, cfg.Tampers)
		if err != nil {
			return nil, err
		}
		res.Updates = append(res.Updates, updates)
		if roundModel == nil {
			res.Events = append(res.Events, Event{
				Round: round, Kind: EventSkipped, Participant: -1,
				Detail: "every available client gated; global model unchanged",
			})
		} else {
			global = roundModel
			stats.Selected = len(admitted)
			for _, p := range admitted {
				res.Participation[indexOf(parts, p)]++
				stats.Participated = append(stats.Participated, p.ID)
			}
			sort.Ints(stats.Participated)
		}
		stats.TestAcc = trainer.Evaluate(global, test)
		if roundModel != nil {
			res.Events = append(res.Events, Event{
				Round: round, Kind: EventAggregate, Participant: -1,
				Detail: fmt.Sprintf("aggregated %d updates, test acc %.3f", stats.Selected, stats.TestAcc),
			})
		}
		res.Rounds = append(res.Rounds, stats)
		if cfg.Selector != nil {
			if err := cfg.Selector.Observe(round, updates); err != nil {
				return nil, fmt.Errorf("fedsim: selector observe round %d: %w", round, err)
			}
		}
		snapshot()
	}
	if bestParams != nil {
		if err := global.SetParams(bestParams); err != nil {
			return nil, err
		}
	}
	res.Model = global
	return res, nil
}

// trainOneRound warm-starts a single-round trainer from the current global
// parameters. fl.Trainer creates a fresh model per Train call, so the warm
// start is injected by cloning parameters after construction via a
// one-round training on each client from the given starting point.
//
// Every participant in parts trains and submits an update (tampers from
// the attack map rewrite the upload in place first); only the admitted
// subset enters the weighted average. A nil model is returned when nothing
// was admitted — the caller keeps the previous global.
func trainOneRound(trainer *fl.Trainer, global *nn.Model, parts, admitted []*fl.Participant, round int, tampers map[int]fl.UpdateTamper) (*nn.Model, []ClientUpdate, error) {
	// Emulate fl.Trainer's round with an explicit warm start: each client
	// clones the global model, trains locally, and the server averages
	// weighted by data size. The per-client (weight, params) pairs are
	// captured as the round's ClientUpdates so downstream consumers (the
	// streaming valuation engine) can re-aggregate any sub-coalition.
	total := 0
	admit := make(map[int]bool, len(admitted))
	for _, p := range admitted {
		admit[p.ID] = true
		total += p.Size()
	}
	globalParams := global.Params()
	agg := make([]float64, len(globalParams))
	updates := make([]ClientUpdate, 0, len(parts))
	for _, p := range parts {
		local := global.Clone()
		x, y := trainer.Encoder().EncodeTable(p.Data)
		local.TrainEpochs(x, y, trainer.Config().LocalEpochs)
		params := local.Params()
		if tam := tampers[p.ID]; tam != nil {
			tam.Tamper(round, globalParams, params)
		}
		if admit[p.ID] {
			w := float64(p.Size()) / float64(total)
			for i, v := range params {
				agg[i] += w * v
			}
		}
		updates = append(updates, ClientUpdate{Participant: p.ID, Weight: float64(p.Size()), Params: params})
	}
	if len(admitted) == 0 {
		return nil, updates, nil
	}
	next := global.Clone()
	if err := next.SetParams(agg); err != nil {
		return nil, nil, err
	}
	return next, updates, nil
}

func indexOf(parts []*fl.Participant, p *fl.Participant) int {
	for i, q := range parts {
		if q == p {
			return i
		}
	}
	return -1
}

// AccuracyTrajectory returns the per-round test accuracies.
func (r *Result) AccuracyTrajectory() []float64 {
	out := make([]float64, len(r.Rounds))
	for i, rs := range r.Rounds {
		out[i] = rs.TestAcc
	}
	return out
}

// EventLog renders the audit log.
func (r *Result) EventLog() string {
	var b strings.Builder
	for _, e := range r.Events {
		who := "server"
		if e.Participant >= 0 {
			who = fmt.Sprintf("client %d", e.Participant)
		}
		fmt.Fprintf(&b, "round %2d  %-14s %-9s %s\n", e.Round, e.Kind, who, e.Detail)
	}
	return b.String()
}
