package fedsim

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/stats"
)

func setup(t *testing.T) (*dataset.Encoder, []*fl.Participant, *dataset.Table) {
	t.Helper()
	tab := dataset.TicTacToe()
	r := stats.NewRNG(5)
	train, test := tab.Split(r, 0.2)
	parts := fl.PartitionSkewSample(train, 4, 2.0, r)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	return enc, parts, test
}

func TestRunCleanFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	enc, parts, test := setup(t)
	res, err := Run(enc, parts, test, Config{
		Rounds: 5, LocalEpochs: 8, Seed: 1,
		Model: nn.Config{Hidden: []int{48}, Grafting: true, Seed: 2, L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 5 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	// No dropouts configured: everyone participates every round.
	for i, n := range res.Participation {
		if n != 5 {
			t.Fatalf("participant %d participated %d/5 rounds", i, n)
		}
	}
	traj := res.AccuracyTrajectory()
	if len(traj) != 5 {
		t.Fatalf("trajectory = %v", traj)
	}
	// Training should beat the untrained starting point decisively by the
	// last round.
	if traj[len(traj)-1] < 0.75 {
		t.Fatalf("final accuracy %v too low: %v", traj[len(traj)-1], traj)
	}
	if res.Model == nil {
		t.Fatal("no final model")
	}
}

func TestRunWithChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	enc, parts, test := setup(t)
	res, err := Run(enc, parts, test, Config{
		Rounds: 6, LocalEpochs: 6, Seed: 3,
		DropoutProb: 0.3, StragglerProb: 0.2,
		Model: nn.Config{Hidden: []int{32}, Grafting: true, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var drops, lags int
	for _, e := range res.Events {
		switch e.Kind {
		case EventDropout:
			drops++
		case EventStraggler:
			lags++
		}
	}
	if drops == 0 {
		t.Fatal("expected dropout events at 30% dropout probability")
	}
	if lags == 0 {
		t.Fatal("expected straggler events at 20% straggler probability")
	}
	log := res.EventLog()
	for _, want := range []string{"dropout", "aggregated"} {
		if !strings.Contains(log, want) {
			t.Fatalf("event log missing %q:\n%s", want, log)
		}
	}
	// Participation counts reflect churn: nobody exceeds the round count.
	for i, n := range res.Participation {
		if n > 6 {
			t.Fatalf("participant %d participated %d/6", i, n)
		}
	}
}

func TestRunAllOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	enc, parts, test := setup(t)
	res, err := Run(enc, parts, test, Config{
		Rounds: 2, LocalEpochs: 2, Seed: 1, DropoutProb: 1.0,
		Model: nn.Config{Hidden: []int{16}, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every round skipped; the model stays untrained but valid.
	skips := 0
	for _, e := range res.Events {
		if e.Kind == EventSkipped {
			skips++
		}
	}
	if skips != 2 {
		t.Fatalf("skipped rounds = %d, want 2", skips)
	}
	for _, rs := range res.Rounds {
		if rs.Selected != 0 {
			t.Fatalf("round %d selected %d", rs.Round, rs.Selected)
		}
	}
}

func TestRunValidation(t *testing.T) {
	enc, _, test := setup(t)
	if _, err := Run(enc, nil, test, Config{}); err == nil {
		t.Fatal("no participants should error")
	}
}
