package fedsim

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/stats"
)

func setup(t *testing.T) (*dataset.Encoder, []*fl.Participant, *dataset.Table) {
	t.Helper()
	tab := dataset.TicTacToe()
	r := stats.NewRNG(5)
	train, test := tab.Split(r, 0.2)
	parts := fl.PartitionSkewSample(train, 4, 2.0, r)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	return enc, parts, test
}

func TestRunCleanFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	enc, parts, test := setup(t)
	res, err := Run(enc, parts, test, Config{
		Rounds: 5, LocalEpochs: 8, Seed: 1,
		Model: nn.Config{Hidden: []int{48}, Grafting: true, Seed: 2, L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 5 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	// No dropouts configured: everyone participates every round.
	for i, n := range res.Participation {
		if n != 5 {
			t.Fatalf("participant %d participated %d/5 rounds", i, n)
		}
	}
	traj := res.AccuracyTrajectory()
	if len(traj) != 5 {
		t.Fatalf("trajectory = %v", traj)
	}
	// Training should beat the untrained starting point decisively by the
	// last round.
	if traj[len(traj)-1] < 0.75 {
		t.Fatalf("final accuracy %v too low: %v", traj[len(traj)-1], traj)
	}
	if res.Model == nil {
		t.Fatal("no final model")
	}
}

func TestRunWithChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	enc, parts, test := setup(t)
	res, err := Run(enc, parts, test, Config{
		Rounds: 6, LocalEpochs: 6, Seed: 3,
		DropoutProb: 0.3, StragglerProb: 0.2,
		Model: nn.Config{Hidden: []int{32}, Grafting: true, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var drops, lags int
	for _, e := range res.Events {
		switch e.Kind {
		case EventDropout:
			drops++
		case EventStraggler:
			lags++
		}
	}
	if drops == 0 {
		t.Fatal("expected dropout events at 30% dropout probability")
	}
	if lags == 0 {
		t.Fatal("expected straggler events at 20% straggler probability")
	}
	log := res.EventLog()
	for _, want := range []string{"dropout", "aggregated"} {
		if !strings.Contains(log, want) {
			t.Fatalf("event log missing %q:\n%s", want, log)
		}
	}
	// Participation counts reflect churn: nobody exceeds the round count.
	for i, n := range res.Participation {
		if n > 6 {
			t.Fatalf("participant %d participated %d/6", i, n)
		}
	}
}

func TestRunAllOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	enc, parts, test := setup(t)
	res, err := Run(enc, parts, test, Config{
		Rounds: 2, LocalEpochs: 2, Seed: 1, DropoutProb: 1.0,
		Model: nn.Config{Hidden: []int{16}, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every round skipped; the model stays untrained but valid.
	skips := 0
	for _, e := range res.Events {
		if e.Kind == EventSkipped {
			skips++
		}
	}
	if skips != 2 {
		t.Fatalf("skipped rounds = %d, want 2", skips)
	}
	for _, rs := range res.Rounds {
		if rs.Selected != 0 {
			t.Fatalf("round %d selected %d", rs.Round, rs.Selected)
		}
	}
}

func TestRunValidation(t *testing.T) {
	enc, _, test := setup(t)
	if _, err := Run(enc, nil, test, Config{}); err == nil {
		t.Fatal("no participants should error")
	}
}

// stubSelector gates a fixed participant from a given round on and records
// what it observed.
type stubSelector struct {
	gateID    int
	fromRound int
	observed  [][]ClientUpdate
}

func (s *stubSelector) Select(round int, available []int) []int {
	if round < s.fromRound {
		return available
	}
	out := make([]int, 0, len(available))
	for _, id := range available {
		if id != s.gateID {
			out = append(out, id)
		}
	}
	return out
}

func (s *stubSelector) Observe(round int, updates []ClientUpdate) error {
	cp := make([]ClientUpdate, len(updates))
	copy(cp, updates)
	s.observed = append(s.observed, cp)
	return nil
}

func TestRunWithSelectorGatesAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	enc, parts, test := setup(t)
	sel := &stubSelector{gateID: 2, fromRound: 1}
	res, err := Run(enc, parts, test, Config{
		Rounds: 3, LocalEpochs: 3, Seed: 1, Selector: sel,
		Model: nn.Config{Hidden: []int{16}, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 aggregates everyone; rounds 1-2 exclude participant 2 from
	// the average but still collect (and observe) its update.
	if res.Participation[2] != 1 {
		t.Fatalf("gated participant aggregated %d rounds, want 1", res.Participation[2])
	}
	for round, rs := range res.Rounds {
		wantSel := 4
		if round >= 1 {
			wantSel = 3
		}
		if rs.Selected != wantSel {
			t.Fatalf("round %d selected %d, want %d", round, rs.Selected, wantSel)
		}
		if len(res.Updates[round]) != 4 {
			t.Fatalf("round %d submitted %d updates, want 4 (gated clients still submit)", round, len(res.Updates[round]))
		}
	}
	if got := res.Rounds[1].Gated; len(got) != 1 || got[0] != 2 {
		t.Fatalf("round 1 gated list = %v, want [2]", got)
	}
	if len(sel.observed) != 3 {
		t.Fatalf("selector observed %d rounds, want 3", len(sel.observed))
	}
	gatedEvents := 0
	for _, ev := range res.Events {
		if ev.Kind == EventGated {
			gatedEvents++
			if ev.Participant != 2 {
				t.Fatalf("gate event for participant %d", ev.Participant)
			}
		}
	}
	if gatedEvents != 2 {
		t.Fatalf("gate events = %d, want 2", gatedEvents)
	}
	if !strings.Contains(res.EventLog(), "gated") {
		t.Fatal("event log does not render gate events")
	}
}

func TestRunTampersRewriteUploads(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	enc, parts, test := setup(t)
	cfg := Config{
		Rounds: 2, LocalEpochs: 3, Seed: 1,
		Model: nn.Config{Hidden: []int{16}, Seed: 2},
	}
	honest, err := Run(enc, parts, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tampers = map[int]fl.UpdateTamper{1: &fl.FreeRider{Mode: fl.FreeRideZero}}
	attacked, err := Run(enc, parts, test, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Round 0 starts from the same global on both runs, so the zero
	// free-rider's upload must equal the (shared) starting parameters while
	// its honest counterpart's differs.
	diff := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	var honestUp, attackedUp, honestOther, attackedOther []float64
	for _, u := range honest.Updates[0] {
		if u.Participant == 1 {
			honestUp = u.Params
		} else if honestOther == nil {
			honestOther = u.Params
		}
	}
	for _, u := range attacked.Updates[0] {
		if u.Participant == 1 {
			attackedUp = u.Params
		} else if attackedOther == nil {
			attackedOther = u.Params
		}
	}
	if !diff(honestUp, attackedUp) {
		t.Fatal("tamper left the attacker's upload unchanged")
	}
	if diff(honestOther, attackedOther) {
		t.Fatal("tamper leaked into an honest client's round-0 upload")
	}
}
