package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitDone(t *testing.T, e *Engine, j *Job) View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := e.Wait(ctx, j)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return v
}

func TestSubmitRunsAndReportsResult(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close(context.Background())
	j, err := e.Submit("k1", func(ctx context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e, j)
	if v.Status != StatusDone || v.Result != 42 || v.Err != nil {
		t.Fatalf("view = %+v", v)
	}
	if v.Enqueued.IsZero() || v.Started.IsZero() || v.Finished.IsZero() {
		t.Fatalf("timestamps missing: %+v", v)
	}
	got, ok := e.Get(j.ID())
	if !ok || got != j {
		t.Fatal("Get did not find the job")
	}
}

func TestFailedJobStatus(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	boom := errors.New("boom")
	j, _ := e.Submit("", func(ctx context.Context) (any, error) { return nil, boom })
	v := waitDone(t, e, j)
	if v.Status != StatusFailed || !errors.Is(v.Err, boom) {
		t.Fatalf("view = %+v", v)
	}
	if e.MetricsView()["failed"] != 1 {
		t.Fatalf("metrics = %v", e.MetricsView())
	}
}

func TestPanickingJobFailsWithoutKillingWorker(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	j, _ := e.Submit("", func(ctx context.Context) (any, error) { panic("poisoned") })
	if v := waitDone(t, e, j); v.Status != StatusFailed {
		t.Fatalf("view = %+v", v)
	}
	// The single worker must still be alive to run this.
	j2, _ := e.Submit("", func(ctx context.Context) (any, error) { return "ok", nil })
	if v := waitDone(t, e, j2); v.Result != "ok" {
		t.Fatalf("view = %+v", v)
	}
}

func TestContentCacheRunsOnce(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close(context.Background())
	var runs atomic.Int64
	fn := func(ctx context.Context) (any, error) { runs.Add(1); return "r", nil }
	j1, _ := e.Submit("same-key", fn)
	waitDone(t, e, j1)
	j2, err := e.Submit("same-key", fn)
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j1 {
		t.Fatal("cached submission returned a different job")
	}
	v := waitDone(t, e, j2)
	if !v.CacheHit || v.Result != "r" {
		t.Fatalf("view = %+v", v)
	}
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times", runs.Load())
	}
	if e.MetricsView()["cache_hits"] != 1 {
		t.Fatalf("metrics = %v", e.MetricsView())
	}
}

func TestInFlightDeduplication(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	release := make(chan struct{})
	var runs atomic.Int64
	fn := func(ctx context.Context) (any, error) { runs.Add(1); <-release; return 1, nil }
	j1, _ := e.Submit("k", fn)
	j2, _ := e.Submit("k", fn)
	if j1 != j2 {
		t.Fatal("in-flight submission not deduplicated")
	}
	close(release)
	waitDone(t, e, j1)
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times", runs.Load())
	}
}

func TestFailedJobsAreNotCached(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	j1, _ := e.Submit("k", func(ctx context.Context) (any, error) { return nil, errors.New("x") })
	waitDone(t, e, j1)
	j2, _ := e.Submit("k", func(ctx context.Context) (any, error) { return "recovered", nil })
	if j1 == j2 {
		t.Fatal("failed job served from cache")
	}
	if v := waitDone(t, e, j2); v.Result != "recovered" {
		t.Fatalf("view = %+v", v)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Close(context.Background())
	release := make(chan struct{})
	blocker := func(ctx context.Context) (any, error) { <-release; return nil, nil }
	j1, _ := e.Submit("", blocker) // occupies the worker (after dequeue)
	// Fill the queue; depending on scheduling the worker may have already
	// dequeued j1, so allow one extra successful submit before the wall.
	var err error
	for i := 0; i < 3; i++ {
		if _, err = e.Submit("", blocker); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if e.MetricsView()["rejected"] == 0 {
		t.Fatal("rejected counter not bumped")
	}
	close(release)
	waitDone(t, e, j1)
}

func TestJobTimeoutCancelsContext(t *testing.T) {
	e := New(Config{Workers: 1, JobTimeout: 20 * time.Millisecond})
	defer e.Close(context.Background())
	j, _ := e.Submit("", func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	v := waitDone(t, e, j)
	if v.Status != StatusFailed || !errors.Is(v.Err, context.DeadlineExceeded) {
		t.Fatalf("view = %+v", v)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	e := New(Config{Workers: 2})
	var done atomic.Int64
	const n = 20
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := e.Submit(fmt.Sprintf("k%d", i), func(ctx context.Context) (any, error) {
			time.Sleep(time.Millisecond)
			done.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if done.Load() != n {
		t.Fatalf("drained %d/%d jobs", done.Load(), n)
	}
	for _, j := range jobs {
		if v := j.Snapshot(); v.Status != StatusDone {
			t.Fatalf("job %s status %s after drain", v.ID, v.Status)
		}
	}
	if _, err := e.Submit("late", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestCloseDeadlineCancelsRunningJobs(t *testing.T) {
	e := New(Config{Workers: 1})
	j, _ := e.Submit("", func(ctx context.Context) (any, error) {
		<-ctx.Done() // only ends when shutdown cancels us
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := e.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close err = %v", err)
	}
	if v := j.Snapshot(); v.Status != StatusFailed {
		t.Fatalf("job status %s after forced shutdown", v.Status)
	}
}

func TestRetentionEviction(t *testing.T) {
	e := New(Config{Workers: 1, CacheSize: 2, RetainJobs: 3})
	defer e.Close(context.Background())
	ids := []string{}
	for i := 0; i < 6; i++ {
		j, err := e.Submit(fmt.Sprintf("k%d", i), func(ctx context.Context) (any, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, e, j)
		ids = append(ids, j.ID())
	}
	if _, ok := e.Get(ids[0]); ok {
		t.Fatal("oldest job survived retention limit")
	}
	if _, ok := e.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest job evicted")
	}
}

func TestConcurrentSubmitsRace(t *testing.T) {
	e := New(Config{Workers: 8, QueueDepth: 512})
	defer e.Close(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				j, err := e.Submit(fmt.Sprintf("g%d-i%d", g%4, i), func(ctx context.Context) (any, error) {
					return g, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				waitDone(t, e, j)
				_ = j.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	m := e.MetricsView()
	if m["running"] != 0 || m["queued"] != 0 {
		t.Fatalf("gauges nonzero after drain: %v", m)
	}
}
