package jobs

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

func retryCfg(attempts int) Config {
	return Config{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: attempts, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
	}
}

// TestRetryPolicyRecovers: a job that fails transiently succeeds within its
// attempt budget, the retry counter records the re-runs, and the final view
// carries the attempt count.
func TestRetryPolicyRecovers(t *testing.T) {
	e := New(retryCfg(5))
	defer e.Close(context.Background())
	var runs atomic.Int64
	j, _ := e.Submit("k", func(ctx context.Context) (any, error) {
		if runs.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return "recovered", nil
	})
	v := waitDone(t, e, j)
	if v.Status != StatusDone || v.Result != "recovered" {
		t.Fatalf("view = %+v", v)
	}
	if v.Attempts != 3 || runs.Load() != 3 {
		t.Fatalf("attempts = %d (ran %d), want 3", v.Attempts, runs.Load())
	}
	if got := e.MetricsView()["retries"]; got != 2 {
		t.Fatalf("retries metric = %d, want 2", got)
	}
}

// TestRetryExhaustionFails: a persistently failing job stops at MaxAttempts
// and surfaces the last error.
func TestRetryExhaustionFails(t *testing.T) {
	e := New(retryCfg(3))
	defer e.Close(context.Background())
	boom := errors.New("still broken")
	var runs atomic.Int64
	j, _ := e.Submit("", func(ctx context.Context) (any, error) {
		runs.Add(1)
		return nil, boom
	})
	v := waitDone(t, e, j)
	if v.Status != StatusFailed || !errors.Is(v.Err, boom) {
		t.Fatalf("view = %+v", v)
	}
	if v.Attempts != 3 || runs.Load() != 3 {
		t.Fatalf("attempts = %d (ran %d), want exactly MaxAttempts=3", v.Attempts, runs.Load())
	}
	if v.Quarantined {
		t.Fatal("plain failure must not be quarantined")
	}
}

// TestPanickingJobQuarantinedNotRetried: the poison-job contract. One panic
// → failed status with the panic message, exactly one run despite a generous
// retry budget, quarantined flag set, and the job visible in DeadLetters.
func TestPanickingJobQuarantinedNotRetried(t *testing.T) {
	e := New(retryCfg(10))
	defer e.Close(context.Background())
	var runs atomic.Int64
	j, _ := e.Submit("", func(ctx context.Context) (any, error) {
		runs.Add(1)
		panic("poisoned payload")
	})
	v := waitDone(t, e, j)
	if v.Status != StatusFailed {
		t.Fatalf("view = %+v", v)
	}
	if !strings.Contains(v.Err.Error(), "jobs: job panicked: poisoned payload") {
		t.Fatalf("err = %v, want panic message", v.Err)
	}
	var pe *PanicError
	if !errors.As(v.Err, &pe) || pe.Value != "poisoned payload" {
		t.Fatalf("err is not a *PanicError carrying the value: %v", v.Err)
	}
	if runs.Load() != 1 {
		t.Fatalf("poison job ran %d times, want 1 (never retried)", runs.Load())
	}
	if !v.Quarantined || v.Attempts != 1 {
		t.Fatalf("view = %+v, want quarantined after 1 attempt", v)
	}
	dl := e.DeadLetters()
	if len(dl) != 1 || dl[0].ID != v.ID {
		t.Fatalf("dead letters = %+v", dl)
	}
	if got := e.MetricsView()["quarantined"]; got != 1 {
		t.Fatalf("quarantined metric = %d", got)
	}
}

// TestDeadLetterListBounded: the quarantine list is FIFO-bounded.
func TestDeadLetterListBounded(t *testing.T) {
	e := New(Config{Workers: 1, DeadLetterSize: 2})
	defer e.Close(context.Background())
	var last View
	for i := 0; i < 4; i++ {
		j, _ := e.Submit("", func(ctx context.Context) (any, error) { panic(i) })
		last = waitDone(t, e, j)
	}
	dl := e.DeadLetters()
	if len(dl) != 2 {
		t.Fatalf("dead letters = %d, want bound of 2", len(dl))
	}
	if dl[1].ID != last.ID {
		t.Fatal("newest poison job missing from bounded list")
	}
}

// TestInjectedFaultsRetried: errors injected at the jobs.run site are
// ordinary failures — retried until the fault budget runs out — while an
// injected panic lands in quarantine like a real one.
func TestInjectedFaultsRetried(t *testing.T) {
	in := faults.New(31, map[string]faults.Site{
		FaultRun: {ErrProb: 1, MaxFaults: 2},
	})
	cfg := retryCfg(5)
	cfg.Faults = in
	e := New(cfg)
	defer e.Close(context.Background())
	var runs atomic.Int64
	j, _ := e.Submit("", func(ctx context.Context) (any, error) {
		runs.Add(1)
		return "ok", nil
	})
	v := waitDone(t, e, j)
	if v.Status != StatusDone || v.Result != "ok" {
		t.Fatalf("view = %+v", v)
	}
	// Two injected failures precede the fn, so it runs once on attempt 3.
	if v.Attempts != 3 || runs.Load() != 1 {
		t.Fatalf("attempts = %d, fn runs = %d; want 3 attempts, 1 run", v.Attempts, runs.Load())
	}

	inPanic := faults.New(7, map[string]faults.Site{
		FaultRun: {PanicProb: 1, MaxFaults: 1},
	})
	cfg2 := retryCfg(5)
	cfg2.Faults = inPanic
	e2 := New(cfg2)
	defer e2.Close(context.Background())
	j2, _ := e2.Submit("", func(ctx context.Context) (any, error) { return "unreached-first-try", nil })
	v2 := waitDone(t, e2, j2)
	if !v2.Quarantined || v2.Attempts != 1 {
		t.Fatalf("injected panic view = %+v, want quarantine after 1 attempt", v2)
	}
	if !strings.Contains(v2.Err.Error(), "injected panic at jobs.run") {
		t.Fatalf("err = %v", v2.Err)
	}
}

// TestRetryBackoffSchedule pins the exponential-with-cap shape.
func TestRetryBackoffSchedule(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}.withDefaults()
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}
