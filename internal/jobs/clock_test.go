package jobs

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// stepClock returns pre-scripted instants in call order, then keeps
// returning the last one. Safe for concurrent use (the engine reads the
// clock from both the submitting and the worker goroutine).
type stepClock struct {
	mu    sync.Mutex
	base  time.Time
	steps []time.Duration
	calls int
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.calls
	if i >= len(c.steps) {
		i = len(c.steps) - 1
	}
	c.calls++
	return c.base.Add(c.steps[i])
}

// TestInjectedClockTimings drives one job through the engine with a fake
// clock: the three timestamp reads (enqueued, started, finished) land on
// scripted instants, so the wait/run histograms and the job view's
// timestamps are exactly predictable.
func TestInjectedClockTimings(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	clock := &stepClock{base: base, steps: []time.Duration{
		0,               // Submit: enqueued
		2 * time.Second, // worker: started (2s queue wait)
		3 * time.Second, // worker: finished (1s run)
	}}
	reg := telemetry.NewRegistry()
	obs := NewObs(reg)
	e := New(Config{Workers: 1, Obs: obs, Now: clock.Now})
	defer e.Close(context.Background())

	j, err := e.Submit("k", func(ctx context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Wait(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}

	if !v.Enqueued.Equal(base) {
		t.Errorf("enqueued = %v, want %v", v.Enqueued, base)
	}
	if !v.Started.Equal(base.Add(2 * time.Second)) {
		t.Errorf("started = %v, want %v", v.Started, base.Add(2*time.Second))
	}
	if !v.Finished.Equal(base.Add(3 * time.Second)) {
		t.Errorf("finished = %v, want %v", v.Finished, base.Add(3*time.Second))
	}

	wait := obs.WaitSeconds.Snapshot()
	if wait.Count != 1 || wait.Sum != 2 {
		t.Errorf("wait histogram count=%d sum=%v, want count=1 sum=2", wait.Count, wait.Sum)
	}
	run := obs.RunSeconds.Snapshot()
	if run.Count != 1 || run.Sum != 1 {
		t.Errorf("run histogram count=%d sum=%v, want count=1 sum=1", run.Count, run.Sum)
	}

	mv := e.MetricsView()
	for k, want := range map[string]int64{"submitted": 1, "done": 1, "queued": 0, "running": 0, "failed": 0} {
		if mv[k] != want {
			t.Errorf("MetricsView[%q] = %d, want %d", k, mv[k], want)
		}
	}
}
