// Package jobs runs the federation server's trace computations
// asynchronously: a bounded submission queue feeds a fixed worker pool, each
// job walks a queued → running → done/failed status machine, and a
// content-hash result cache collapses identical requests — if two clients
// score the same test set against the same federation state, the tracer runs
// once. Per-job contexts carry a configurable timeout and are cancelled on
// engine shutdown, so a graceful drain never hangs on a stuck computation.
//
// The engine is result-type agnostic (results are `any`); the server layer
// defines what a trace job returns.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// FaultRun is the fault-injection site inside a job's protected run: an
// injected error there is indistinguishable from the job function failing,
// and an injected panic exercises the quarantine path. Config.Faults of nil
// leaves it inert.
const FaultRun = "jobs.run"

// Status is a job's position in its lifecycle state machine.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// ErrQueueFull is returned by Submit when the bounded queue has no room;
// callers should surface it as backpressure (HTTP 429/503), not retry-loop.
var ErrQueueFull = errors.New("jobs: submission queue full")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("jobs: engine closed")

// PanicError marks a job that panicked. Panics are treated as poison — the
// job is quarantined, never retried — because a deterministic computation
// that panicked once will panic again, and retrying it only burns workers.
type PanicError struct {
	// Value is what the job passed to panic.
	Value any
}

func (p *PanicError) Error() string { return fmt.Sprintf("jobs: job panicked: %v", p.Value) }

// Fn is the work a job performs. It must honour ctx: the context is
// cancelled on per-job timeout and on engine shutdown.
type Fn func(ctx context.Context) (any, error)

// Job is one submitted computation. Snapshot returns a consistent view;
// Done exposes a channel closed when the job reaches a terminal status.
type Job struct {
	id  string
	key string

	mu          sync.Mutex
	status      Status
	result      any
	err         error
	cacheHit    bool
	attempts    int
	quarantined bool
	enqueued    time.Time
	started     time.Time
	finished    time.Time

	done chan struct{}
	fn   Fn
}

// ID returns the job's engine-unique identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// View is an immutable snapshot of a job's externally visible state.
type View struct {
	ID       string
	Key      string
	Status   Status
	Result   any
	Err      error
	CacheHit bool
	// Attempts is how many times the job function ran (1 unless retried).
	Attempts int
	// Quarantined marks a poison job: it panicked and was moved to the
	// dead-letter list instead of being retried.
	Quarantined bool
	Enqueued    time.Time
	Started     time.Time
	Finished    time.Time
}

// Snapshot returns the job's current state without races.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return View{
		ID: j.id, Key: j.key, Status: j.status, Result: j.result, Err: j.err,
		CacheHit: j.cacheHit, Attempts: j.attempts, Quarantined: j.quarantined,
		Enqueued: j.enqueued, Started: j.started, Finished: j.finished,
	}
}

// RetryPolicy governs re-running failed jobs. The zero value means no
// retries (each job runs once), preserving pre-policy behaviour.
type RetryPolicy struct {
	// MaxAttempts caps total runs of one job (first try included). Values
	// below 1 mean 1.
	MaxAttempts int
	// BaseBackoff is the pause before the first retry; each further retry
	// doubles it. Default 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Default 1s.
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// backoff is the pause before retry number n (n starts at 1).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	return min(d, p.MaxBackoff)
}

// Config tunes an Engine.
type Config struct {
	// Workers is the pool size. Default 4.
	Workers int
	// QueueDepth bounds jobs waiting for a worker. Default 64.
	QueueDepth int
	// JobTimeout caps a single job's run time. Default 2 minutes.
	JobTimeout time.Duration
	// CacheSize bounds the result cache (completed jobs retained by content
	// key, FIFO eviction). Default 128; negative disables caching.
	CacheSize int
	// RetainJobs bounds how many terminal jobs stay queryable by id beyond
	// those in the cache. Default 512.
	RetainJobs int
	// Retry re-runs failed jobs (panics excepted — those are quarantined).
	// The zero value disables retries.
	Retry RetryPolicy
	// DeadLetterSize bounds the quarantine list of poison jobs. Default 64.
	DeadLetterSize int
	// Faults injects failures at FaultRun inside the protected run, for
	// resilience testing. Nil (the production default) disables injection.
	Faults *faults.Injector
	// Obs receives engine telemetry. Nil uses a private, unregistered
	// instrument set, so MetricsView always works.
	Obs *Obs
	// Now is the engine's clock for job timestamps (enqueued/started/
	// finished and the derived wait/run histograms). Nil means time.Now;
	// tests inject a fake for deterministic timing assertions.
	Now func() time.Time
	// OnFinish observes every job reaching a terminal status (done or
	// failed), with its final snapshot. It runs on the worker goroutine
	// before the job's Done channel closes, so waiters always see the
	// callback's effects; keep it cheap and never block. Nil disables.
	// The server wires the flight recorder here.
	OnFinish func(View)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 512
	}
	c.Retry = c.Retry.withDefaults()
	if c.DeadLetterSize <= 0 {
		c.DeadLetterSize = 64
	}
	if c.Obs == nil {
		c.Obs = NewObs(telemetry.NewRegistry())
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Obs is the engine's instrument set. Gauges (QueueDepth, Running) move
// both ways; counters are monotonic. The cache hit ratio is
// CacheHits / CacheLookups.
type Obs struct {
	Submitted    *telemetry.Counter
	Done         *telemetry.Counter
	Failed       *telemetry.Counter
	CacheHits    *telemetry.Counter
	CacheLookups *telemetry.Counter
	Rejected     *telemetry.Counter
	// Retries counts re-runs of failed jobs; Quarantined counts poison
	// (panicking) jobs moved to the dead-letter list.
	Retries     *telemetry.Counter
	Quarantined *telemetry.Counter
	QueueDepth  *telemetry.Gauge
	Running     *telemetry.Gauge
	// WaitSeconds is time spent queued before a worker picked the job up;
	// RunSeconds is the job function's execution time.
	WaitSeconds *telemetry.Histogram
	RunSeconds  *telemetry.Histogram
}

// NewObs registers the job-engine metric family on r and returns the
// handle to pass in Config.Obs.
func NewObs(r *telemetry.Registry) *Obs {
	return &Obs{
		Submitted:    r.Counter("ctfl_jobs_submitted_total", "jobs accepted into the queue"),
		Done:         r.Counter("ctfl_jobs_done_total", "jobs finished successfully"),
		Failed:       r.Counter("ctfl_jobs_failed_total", "jobs finished with an error"),
		CacheHits:    r.Counter("ctfl_jobs_cache_hits_total", "submissions served by the result cache"),
		CacheLookups: r.Counter("ctfl_jobs_cache_lookups_total", "submissions that consulted the result cache"),
		Rejected:     r.Counter("ctfl_jobs_rejected_total", "submissions rejected by queue backpressure"),
		Retries:      r.Counter("ctfl_jobs_retries_total", "re-runs of failed jobs under the retry policy"),
		Quarantined:  r.Counter("ctfl_jobs_quarantined_total", "poison jobs moved to the dead-letter list"),
		QueueDepth:   r.Gauge("ctfl_jobs_queue_depth", "jobs waiting for a worker"),
		Running:      r.Gauge("ctfl_jobs_running", "jobs currently executing"),
		WaitSeconds:  r.Histogram("ctfl_jobs_wait_seconds", "queue wait time before execution", nil),
		RunSeconds:   r.Histogram("ctfl_jobs_run_seconds", "job execution time", nil),
	}
}

// Engine is the async job runner. Create with New, stop with Close.
type Engine struct {
	cfg Config
	obs *Obs
	now func() time.Time

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Job
	wg     sync.WaitGroup

	mu          sync.Mutex
	closed      bool
	seq         uint64
	jobs        map[string]*Job // by id, bounded by RetainJobs + live jobs
	jobOrder    []string        // terminal job ids, eviction order
	cache       map[string]*Job // by content key: in-flight or done jobs
	cacheOrd    []string        // done-job keys, eviction order
	deadLetters []*Job          // quarantined poison jobs, bounded FIFO
}

// New starts an engine with cfg's worker pool.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:    cfg,
		obs:    cfg.Obs,
		now:    cfg.Now,
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *Job, cfg.QueueDepth),
		jobs:   make(map[string]*Job),
		cache:  make(map[string]*Job),
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// MetricsView reads the engine's counters.
func (e *Engine) MetricsView() map[string]int64 {
	return map[string]int64{
		"submitted":   e.obs.Submitted.Value(),
		"queued":      int64(e.obs.QueueDepth.Value()),
		"running":     int64(e.obs.Running.Value()),
		"done":        e.obs.Done.Value(),
		"failed":      e.obs.Failed.Value(),
		"cache_hits":  e.obs.CacheHits.Value(),
		"rejected":    e.obs.Rejected.Value(),
		"retries":     e.obs.Retries.Value(),
		"quarantined": e.obs.Quarantined.Value(),
	}
}

// DeadLetters snapshots the quarantine list: poison jobs that panicked and
// were pulled out of circulation, oldest first.
func (e *Engine) DeadLetters() []View {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]View, len(e.deadLetters))
	for i, j := range e.deadLetters {
		out[i] = j.Snapshot()
	}
	return out
}

// Submit enqueues fn under a content key. If a completed job with the same
// key is cached, or one is already queued/running, that job is returned
// (deduplication) and no new work is enqueued; the returned job's CacheHit
// reflects this. An empty key bypasses the cache entirely. Fails fast with
// ErrQueueFull when the bounded queue is at capacity.
func (e *Engine) Submit(key string, fn Fn) (*Job, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if key != "" && e.cfg.CacheSize > 0 {
		e.obs.CacheLookups.Inc()
		if j, ok := e.cache[key]; ok {
			j.mu.Lock()
			j.cacheHit = true
			j.mu.Unlock()
			e.obs.CacheHits.Inc()
			e.mu.Unlock()
			return j, nil
		}
	}
	e.seq++
	j := &Job{
		id:       fmt.Sprintf("job-%08d", e.seq),
		key:      key,
		status:   StatusQueued,
		enqueued: e.now(),
		done:     make(chan struct{}),
		fn:       fn,
	}

	select {
	case e.queue <- j:
	default:
		e.obs.Rejected.Inc()
		e.mu.Unlock()
		return nil, ErrQueueFull
	}
	e.jobs[j.id] = j
	if key != "" && e.cfg.CacheSize > 0 {
		e.cache[key] = j // dedup in-flight submissions immediately
	}
	e.obs.Submitted.Inc()
	e.obs.QueueDepth.Add(1)
	e.mu.Unlock()
	return j, nil
}

// Get looks a job up by id.
func (e *Engine) Get(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Wait blocks until the job finishes or ctx is done, returning the final
// snapshot.
func (e *Engine) Wait(ctx context.Context, j *Job) (View, error) {
	select {
	case <-j.Done():
		return j.Snapshot(), nil
	case <-ctx.Done():
		return j.Snapshot(), ctx.Err()
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.run(j)
	}
}

func (e *Engine) run(j *Job) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = e.now()
	wait := j.started.Sub(j.enqueued)
	fn := j.fn
	j.fn = nil // release captured state once run
	j.mu.Unlock()
	e.obs.QueueDepth.Add(-1)
	e.obs.Running.Add(1)
	e.obs.WaitSeconds.Observe(wait.Seconds())

	var (
		result      any
		err         error
		attempts    int
		quarantined bool
	)
	for {
		attempts++
		ctx, cancel := context.WithTimeout(e.ctx, e.cfg.JobTimeout)
		result, err = runProtected(ctx, e.cfg.Faults, fn)
		cancel()
		if err == nil {
			break
		}
		// A panic is poison: deterministic work that panicked once will
		// panic again, so quarantine instead of retrying.
		var pe *PanicError
		if errors.As(err, &pe) {
			quarantined = true
			break
		}
		// Context errors mean shutdown or the per-attempt timeout fired;
		// retrying cannot help either.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || e.ctx.Err() != nil {
			break
		}
		if attempts >= e.cfg.Retry.MaxAttempts {
			break
		}
		e.obs.Retries.Inc()
		if !e.sleepBackoff(e.cfg.Retry.backoff(attempts)) {
			break // engine shut down mid-backoff
		}
	}

	j.mu.Lock()
	j.finished = e.now()
	run := j.finished.Sub(j.started)
	j.attempts = attempts
	j.quarantined = quarantined
	if err != nil {
		j.status = StatusFailed
		j.err = err
	} else {
		j.status = StatusDone
		j.result = result
	}
	j.mu.Unlock()
	e.obs.Running.Add(-1)
	e.obs.RunSeconds.Observe(run.Seconds())
	if err != nil {
		e.obs.Failed.Inc()
	} else {
		e.obs.Done.Inc()
	}
	if quarantined {
		e.obs.Quarantined.Inc()
		e.quarantine(j)
	}
	if e.cfg.OnFinish != nil {
		e.cfg.OnFinish(j.Snapshot())
	}
	close(j.done)
	e.retire(j, err == nil)
}

// sleepBackoff pauses between retry attempts, returning false if the engine
// shut down first.
func (e *Engine) sleepBackoff(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.ctx.Done():
		return false
	}
}

// quarantine records a poison job on the bounded dead-letter list.
func (e *Engine) quarantine(j *Job) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.deadLetters = append(e.deadLetters, j)
	if over := len(e.deadLetters) - e.cfg.DeadLetterSize; over > 0 {
		e.deadLetters = append(e.deadLetters[:0], e.deadLetters[over:]...)
	}
}

// runProtected converts a panicking job into a failed one carrying a
// *PanicError; one poisoned trace must not take down the worker pool. The
// injector's FaultRun site fires inside the recovery scope, so injected
// panics exercise the same quarantine path as real ones.
func runProtected(ctx context.Context, in *faults.Injector, fn Fn) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, &PanicError{Value: r}
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := in.Err(FaultRun); err != nil {
		return nil, err
	}
	return fn(ctx)
}

// retire moves a terminal job into the bounded cache / retention structures.
func (e *Engine) retire(j *Job, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if j.key != "" && e.cfg.CacheSize > 0 {
		if ok {
			e.cacheOrd = append(e.cacheOrd, j.key)
			for len(e.cacheOrd) > e.cfg.CacheSize {
				evict := e.cacheOrd[0]
				e.cacheOrd = e.cacheOrd[1:]
				if cached, exists := e.cache[evict]; exists && cached != j {
					delete(e.cache, evict)
				}
			}
		} else if e.cache[j.key] == j {
			// Failed jobs must not satisfy future submissions.
			delete(e.cache, j.key)
		}
	}
	e.jobOrder = append(e.jobOrder, j.id)
	for len(e.jobOrder) > e.cfg.RetainJobs {
		evict := e.jobOrder[0]
		e.jobOrder = e.jobOrder[1:]
		if old, exists := e.jobs[evict]; exists {
			if old.key != "" && e.cache[old.key] == old {
				delete(e.cache, old.key)
			}
			delete(e.jobs, evict)
		}
	}
}

// Close drains the engine: no new submissions, queued jobs still run, and
// Close returns when workers finish or ctx expires — in which case running
// job contexts are cancelled and Close waits for the workers to observe it.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		e.cancel()
		return nil
	case <-ctx.Done():
		// Deadline hit: cancel in-flight job contexts and wait them out.
		e.cancel()
		<-finished
		return ctx.Err()
	}
}
