// Package faults is a deterministic fault-injection harness: call sites in
// the store, job engine, server, and HTTP client ask a shared Injector
// whether "the world breaks here, now", and the injector answers from a
// seeded probability schedule. Four fault kinds are supported — returned
// errors, added latency, panics, and byte corruption — each drawn per named
// site from a stats.NewRNG stream, so a fixed seed replays the same fault
// pattern for a fixed call sequence.
//
// The design mirrors the repository's telemetry instruments: a nil
// *Injector (and any unconfigured site) is a no-op costing one pointer
// check, so production paths carry injection points at zero overhead.
// Per-site MaxFaults caps bound the total damage, which is what lets chaos
// tests assert convergence: retry loops are guaranteed to outlast a budget
// of injected failures.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/stats"
)

// ErrInjected is the sentinel every injected error wraps; resilience layers
// and tests match it with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Site schedules one injection point. Probabilities are evaluated
// independently per call in a fixed order — latency, then panic, then error
// — so one call can both stall and fail. Corruption has its own entry point
// (Corrupt) because it needs the bytes.
type Site struct {
	// ErrProb is the probability Err returns an injected error.
	ErrProb float64
	// PanicProb is the probability Err panics instead of returning.
	PanicProb float64
	// LatencyProb is the probability Err sleeps Latency first.
	LatencyProb float64
	// Latency is the stall added when the latency draw fires.
	Latency time.Duration
	// CorruptProb is the probability Corrupt flips one byte.
	CorruptProb float64
	// MaxFaults caps the total faults injected at this site (0 = unlimited).
	// Bounding the budget guarantees retrying callers eventually succeed.
	MaxFaults int
}

// Stats is one site's observed injection history.
type Stats struct {
	// Hits counts calls that consulted the site (faulted or not).
	Hits int64
	// Errors, Panics, Delays, Corruptions count fired faults by kind.
	Errors      int64
	Panics      int64
	Delays      int64
	Corruptions int64
}

// Fired is the total faults this site injected.
func (s Stats) Fired() int64 { return s.Errors + s.Panics + s.Delays + s.Corruptions }

type siteState struct {
	cfg   Site
	stats Stats
}

// budget reports whether the site may inject another fault.
func (st *siteState) budget() bool {
	return st.cfg.MaxFaults <= 0 || st.stats.Fired() < int64(st.cfg.MaxFaults)
}

// Injector drives every configured site from one seeded RNG. Methods are
// safe for concurrent use; decisions are serialized, so a fixed seed and a
// fixed call sequence replay the same faults.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*siteState
	// sleep is time.Sleep unless a test injects a fake clock.
	sleep func(time.Duration)
}

// New builds an injector over the given site schedule, seeded for
// reproducibility. Sites not present in the map never fault.
func New(seed int64, sites map[string]Site) *Injector {
	in := &Injector{
		rng:   stats.NewRNG(seed),
		sites: make(map[string]*siteState, len(sites)),
		sleep: time.Sleep,
	}
	for name, cfg := range sites {
		in.sites[name] = &siteState{cfg: cfg}
	}
	return in
}

// SetSleep replaces the latency clock (tests only).
func (in *Injector) SetSleep(fn func(time.Duration)) { in.sleep = fn }

// Err consults the site and possibly injects: it may sleep the configured
// latency, panic, or return an error wrapping ErrInjected. A nil injector
// or unconfigured site returns nil without allocating.
func (in *Injector) Err(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st, ok := in.sites[site]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	st.stats.Hits++
	if !st.budget() {
		in.mu.Unlock()
		return nil
	}
	var delay time.Duration
	if st.cfg.LatencyProb > 0 && in.rng.Float64() < st.cfg.LatencyProb && st.budget() {
		st.stats.Delays++
		delay = st.cfg.Latency
	}
	doPanic := st.cfg.PanicProb > 0 && st.budget() && in.rng.Float64() < st.cfg.PanicProb
	if doPanic {
		st.stats.Panics++
	}
	var err error
	if !doPanic && st.cfg.ErrProb > 0 && st.budget() && in.rng.Float64() < st.cfg.ErrProb {
		st.stats.Errors++
		err = fmt.Errorf("%w at %s", ErrInjected, site)
	}
	sleep := in.sleep
	in.mu.Unlock()

	if delay > 0 {
		sleep(delay)
	}
	if doPanic {
		panic(fmt.Sprintf("faults: injected panic at %s", site))
	}
	return err
}

// Corrupt possibly flips one byte of b, returning a corrupted copy; when the
// draw does not fire (or the injector/site is inert) b is returned
// unchanged and nothing is allocated.
func (in *Injector) Corrupt(site string, b []byte) []byte {
	if in == nil || len(b) == 0 {
		return b
	}
	in.mu.Lock()
	st, ok := in.sites[site]
	if !ok {
		in.mu.Unlock()
		return b
	}
	st.stats.Hits++
	if st.cfg.CorruptProb <= 0 || !st.budget() || in.rng.Float64() >= st.cfg.CorruptProb {
		in.mu.Unlock()
		return b
	}
	st.stats.Corruptions++
	pos := in.rng.Intn(len(b))
	in.mu.Unlock()

	out := append([]byte(nil), b...)
	out[pos] ^= 0xA5
	return out
}

// Stats returns a copy of every configured site's injection history.
func (in *Injector) Stats() map[string]Stats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]Stats, len(in.sites))
	for name, st := range in.sites {
		out[name] = st.stats
	}
	return out
}

// SiteStats returns one site's injection history.
func (in *Injector) SiteStats(site string) Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.sites[site]; ok {
		return st.stats
	}
	return Stats{}
}

// Total is the number of faults injected across all sites.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, st := range in.sites {
		n += st.stats.Fired()
	}
	return n
}
