package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Err("anything"); err != nil {
		t.Fatalf("nil injector errored: %v", err)
	}
	b := []byte{1, 2, 3}
	if got := in.Corrupt("anything", b); !bytes.Equal(got, b) {
		t.Fatalf("nil injector corrupted: %v", got)
	}
	if in.Total() != 0 || in.Stats() != nil {
		t.Fatal("nil injector reports activity")
	}
}

func TestUnconfiguredSiteNeverFaults(t *testing.T) {
	in := New(1, map[string]Site{"a": {ErrProb: 1}})
	for i := 0; i < 100; i++ {
		if err := in.Err("b"); err != nil {
			t.Fatalf("unconfigured site faulted: %v", err)
		}
	}
	if in.SiteStats("b").Hits != 0 {
		t.Fatal("unconfigured site recorded hits")
	}
}

func TestErrProbabilityOneAlwaysFires(t *testing.T) {
	in := New(7, map[string]Site{"s": {ErrProb: 1}})
	for i := 0; i < 10; i++ {
		err := in.Err("s")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
		if !strings.Contains(err.Error(), "at s") {
			t.Fatalf("error does not name the site: %v", err)
		}
	}
	st := in.SiteStats("s")
	if st.Errors != 10 || st.Hits != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMaxFaultsBoundsInjection(t *testing.T) {
	in := New(3, map[string]Site{"s": {ErrProb: 1, MaxFaults: 4}})
	fails := 0
	for i := 0; i < 50; i++ {
		if in.Err("s") != nil {
			fails++
		}
	}
	if fails != 4 {
		t.Fatalf("injected %d faults, want exactly MaxFaults=4", fails)
	}
	if in.Total() != 4 {
		t.Fatalf("Total() = %d", in.Total())
	}
}

func TestDeterministicReplay(t *testing.T) {
	seq := func() []bool {
		in := New(42, map[string]Site{"s": {ErrProb: 0.5}})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Err("s") != nil
		}
		return out
	}
	a, b := seq(), seq()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged across identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 schedule fired %d/%d times; schedule not probabilistic", fired, len(a))
	}
}

func TestPanicInjection(t *testing.T) {
	in := New(9, map[string]Site{"s": {PanicProb: 1, MaxFaults: 1}})
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(r.(string), "injected panic at s") {
				t.Fatalf("recover() = %v", r)
			}
		}()
		in.Err("s")
		t.Fatal("Err did not panic")
	}()
	// Budget spent: next call is clean.
	if err := in.Err("s"); err != nil {
		t.Fatalf("post-budget call faulted: %v", err)
	}
	if st := in.SiteStats("s"); st.Panics != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLatencyInjectionUsesClock(t *testing.T) {
	var slept time.Duration
	in := New(5, map[string]Site{"s": {LatencyProb: 1, Latency: 250 * time.Millisecond, MaxFaults: 2}})
	in.SetSleep(func(d time.Duration) { slept += d })
	for i := 0; i < 5; i++ {
		if err := in.Err("s"); err != nil {
			t.Fatal(err)
		}
	}
	if slept != 500*time.Millisecond {
		t.Fatalf("slept %v, want 500ms (2 capped delays)", slept)
	}
}

func TestCorruptFlipsOneByteInCopy(t *testing.T) {
	in := New(11, map[string]Site{"s": {CorruptProb: 1, MaxFaults: 1}})
	orig := []byte("hello, federation")
	keep := append([]byte(nil), orig...)
	got := in.Corrupt("s", orig)
	if !bytes.Equal(orig, keep) {
		t.Fatal("Corrupt mutated the caller's slice")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want 1", diff)
	}
	// Budget exhausted: passthrough without copying.
	if again := in.Corrupt("s", orig); &again[0] != &orig[0] {
		t.Fatal("post-budget Corrupt copied the slice")
	}
}

// TestDisabledInjectorZeroAlloc pins the contract the hot paths rely on: a
// nil injector — and an unconfigured site on a live one — cost no
// allocations (the same bar TestTrainInnerLoopZeroAlloc sets for telemetry).
func TestDisabledInjectorZeroAlloc(t *testing.T) {
	var nilIn *Injector
	buf := []byte{1, 2, 3, 4}
	if n := testing.AllocsPerRun(200, func() {
		_ = nilIn.Err("store.append")
		_ = nilIn.Corrupt("store.append", buf)
	}); n != 0 {
		t.Fatalf("nil injector path allocates %v/op, want 0", n)
	}
	live := New(1, map[string]Site{"other": {ErrProb: 1}})
	if n := testing.AllocsPerRun(200, func() {
		_ = live.Err("store.append")
		_ = live.Corrupt("store.append", buf)
	}); n != 0 {
		t.Fatalf("unconfigured-site path allocates %v/op, want 0", n)
	}
}
