// Package server exposes the federation's contribution-estimation pipeline
// as an HTTP service — the deployment shape a real data federation would
// run. The lifecycle mirrors the paper's protocol:
//
//	POST /v1/encoder   the federation publishes the predicate encoding
//	POST /v1/model     the trained global rule-based model (binary form)
//	POST /v1/uploads   participants submit activation-vector frames
//	POST /v1/trace     the reserved test set (CSV) → scores + audit JSON
//	GET  /v1/rules     the extracted rule set (interpretability)
//	GET  /healthz      liveness
//
// Raw training features never cross this API: participants send only
// protocol frames of (label, activation bitset) records.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/rules"
)

// Server is the federation scoring service. The zero value is not usable;
// call New.
type Server struct {
	mu      sync.Mutex
	enc     *dataset.Encoder
	model   *nn.Model
	rs      *rules.Set
	uploads []core.TrainingUpload
	// parts tracks the highest participant id seen + 1.
	parts int

	mux *http.ServeMux
}

// New constructs the service with its routes registered.
func New() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/encoder", s.handleEncoder)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/v1/uploads", s.handleUploads)
	s.mux.HandleFunc("/v1/trace", s.handleTrace)
	s.mux.HandleFunc("/v1/rules", s.handleRules)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.mu.Lock()
	state := map[string]any{
		"ok":           true,
		"encoder":      s.enc != nil,
		"model":        s.model != nil,
		"uploads":      len(s.uploads),
		"participants": s.parts,
	}
	s.mu.Unlock()
	_ = json.NewEncoder(w).Encode(state)
}

func (s *Server) handleEncoder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var enc dataset.Encoder
	if err := json.NewDecoder(r.Body).Decode(&enc); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc = &enc
	// A new encoding invalidates any model and uploads tied to the old one.
	s.model, s.rs = nil, nil
	s.uploads, s.parts = nil, 0
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	m, err := nn.ReadModel(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		httpError(w, http.StatusConflict, errors.New("publish the encoder first"))
		return
	}
	if m.InDim() != s.enc.Width() {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("model input width %d, encoder produces %d", m.InDim(), s.enc.Width()))
		return
	}
	s.model = m
	s.rs = rules.Extract(m, s.enc)
	// Uploads reference the previous model's rule space.
	s.uploads, s.parts = nil, 0
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUploads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rs == nil {
		httpError(w, http.StatusConflict, errors.New("publish encoder and model first"))
		return
	}
	accepted := 0
	for {
		up, err := protocol.ReadUpload(r.Body)
		if err != nil {
			// A clean EOF at a frame boundary ends the batch; anything else
			// (including a truncated frame) is a client error.
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if up.RuleWidth != s.rs.Width() {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("upload rule width %d, model has %d", up.RuleWidth, s.rs.Width()))
			return
		}
		for _, rec := range up.Records {
			s.uploads = append(s.uploads, core.TrainingUpload{
				Owner:       up.Participant,
				Label:       rec.Label,
				Activations: rec.Activations,
			})
		}
		if up.Participant+1 > s.parts {
			s.parts = up.Participant + 1
		}
		accepted++
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{"frames": accepted, "records": len(s.uploads)})
}

// TraceResponse is the JSON result of POST /v1/trace.
type TraceResponse struct {
	Accuracy     float64   `json:"accuracy"`
	CoverageGap  float64   `json:"coverage_gap"`
	Micro        []float64 `json:"micro"`
	Macro        []float64 `json:"macro"`
	LossRatio    []float64 `json:"loss_ratio"`
	UselessRatio []float64 `json:"useless_ratio"`
	Suspects     []int     `json:"suspects"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	tau, err := queryFloat(r, "tau", 0.9)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	delta, err := queryInt(r, "delta", 2)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if tau <= 0 || tau > 1 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("tau %v outside (0,1]", tau))
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rs == nil {
		httpError(w, http.StatusConflict, errors.New("publish encoder and model first"))
		return
	}
	if len(s.uploads) == 0 {
		httpError(w, http.StatusConflict, errors.New("no participant uploads registered"))
		return
	}
	test, err := dataset.ReadCSV(r.Body, s.enc.Schema(), dataset.CSVOptions{
		HasHeader:       true,
		PositiveLabel:   s.enc.Schema().Labels[1],
		TrimSpace:       true,
		ClampContinuous: true,
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if test.Len() == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty test set"))
		return
	}

	tracer := core.NewTracerFromUploads(s.rs, s.parts, cloneUploads(s.uploads), core.Config{TauW: tau, Delta: delta})
	res := tracer.Trace(test)
	sus := res.Suspicion(0.5)
	resp := TraceResponse{
		Accuracy:     res.Accuracy(),
		CoverageGap:  res.CoverageGap(),
		Micro:        res.MicroScores(),
		Macro:        res.MacroScores(),
		LossRatio:    sus.Ratio,
		UselessRatio: res.UselessRatio(),
		Suspects:     sus.Suspects,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// cloneUploads protects the registered uploads from the tracer's in-place
// class-side masking, so /v1/trace stays repeatable.
func cloneUploads(ups []core.TrainingUpload) []core.TrainingUpload {
	out := make([]core.TrainingUpload, len(ups))
	for i, u := range ups {
		out[i] = core.TrainingUpload{Owner: u.Owner, Label: u.Label, Activations: u.Activations.Clone()}
	}
	return out
}

// RuleJSON is one rule in GET /v1/rules responses.
type RuleJSON struct {
	Index    int     `json:"index"`
	Positive bool    `json:"positive"`
	Weight   float64 `json:"weight"`
	Expr     string  `json:"expr"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rs == nil {
		httpError(w, http.StatusConflict, errors.New("publish encoder and model first"))
		return
	}
	out := make([]RuleJSON, 0, len(s.rs.Rules))
	for _, ru := range s.rs.Rules {
		out = append(out, RuleJSON{Index: ru.Index, Positive: ru.Positive, Weight: ru.Weight, Expr: ru.Expr})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("query %s: %w", key, err)
	}
	return f, nil
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query %s: %w", key, err)
	}
	return n, nil
}
