// Package server exposes the federation's contribution-estimation pipeline
// as an HTTP service — the deployment shape a real data federation would
// run. The lifecycle mirrors the paper's protocol:
//
//	POST /v1/encoder       the federation publishes the predicate encoding
//	POST /v1/model         the trained global rule-based model (binary form)
//	POST /v1/uploads       participants submit activation-vector frames
//	POST /v1/predict       score encoded feature rows (binary v2 or JSON)
//	POST /v1/rounds        register a streaming eval set (CSV) or push one
//	                       round-update frame (binary v2)
//	GET  /v1/scores        live streaming contribution scores (?wait= poll)
//	POST /v1/trace         submit a reserved test set (CSV) → trace job
//	GET  /v1/trace/{id}    poll a trace job's status / result
//	GET  /v1/rules         the extracted rule set (interpretability)
//	GET  /v1/stats         observability counters (requests, jobs, store)
//	GET  /v1/events        flight-recorder wide events (JSON or binary v2)
//	GET  /v1/debug/bundle  one-shot incident capture (state+SLO+events+traces)
//	GET  /v1/version       build identity (module, VCS revision)
//	GET  /healthz          liveness
//
// Raw training features never cross this API: participants send only
// protocol frames of (label, activation bitset) records.
//
// The hot paths speak the binary wire protocol (internal/protocol):
// uploads are validated in place and persisted byte-for-byte (no
// decode→re-encode round trip), /v1/predict serves the compiled
// nn.Binarized evaluator over v2 predict frames (JSON negotiable via
// Content-Type/Accept), and completed trace results stream as binary v2
// frames to clients that Accept application/x-ctfl.
//
// Tracing is asynchronous: POST /v1/trace enqueues a job on a bounded
// worker pool (internal/jobs) and returns 202 with a job id; `?wait=30s`
// blocks for the result as a synchronous convenience. Identical submissions
// against unchanged federation state are served from a content-hash cache.
//
// With Options.DataDir set, every accepted lifecycle mutation is logged to
// a durable store (internal/store) before it is applied, and a restarted
// server replays the log into exactly the pre-restart state — traces score
// byte-for-byte identically across restarts.
//
// Concurrency follows a snapshot-read pattern: mutations take a short write
// lock, traces take an even shorter read lock to capture an immutable view,
// and all scoring compute runs lock-free on worker goroutines — uploads and
// traces never contend on compute.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/flight"
	"repro/internal/jobs"
	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/rounds"
	"repro/internal/rules"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// FaultHandler is the fault-injection site at the top of every mutating
// handler (and the trace submit/poll paths): an injected error there is
// answered with 503 + Retry-After before the request has any effect, so a
// retrying client always converges. Options.Faults of nil leaves it inert.
const FaultHandler = "server.handler"

// errDegraded is the rejection writes receive while the server is in
// degraded mode (WAL persistently unwritable). It maps to 503 + Retry-After.
var errDegraded = errors.New("server: degraded: WAL unavailable, writes rejected; retry later")

// Options tunes the service. The zero value is a fully in-memory server
// with production-shaped defaults.
type Options struct {
	// DataDir enables durable persistence: lifecycle events are WAL-logged
	// under this directory and replayed on construction. Empty = ephemeral.
	DataDir string
	// Workers sizes the trace worker pool (default 4).
	Workers int
	// QueueDepth bounds pending trace jobs (default 64); beyond it POST
	// /v1/trace returns 503.
	QueueDepth int
	// JobTimeout caps one trace computation (default 2m).
	JobTimeout time.Duration
	// MaxBodyBytes caps any POST body (default 64 MiB); beyond it the
	// request fails with 413.
	MaxBodyBytes int64
	// CompactBytes triggers WAL→snapshot compaction once the WAL exceeds
	// this size (default 8 MiB). Only meaningful with DataDir.
	CompactBytes int64
	// NoSync disables the per-append WAL fsync (durability for speed).
	NoSync bool
	// Logger is the service's structured logger: access log, recovery and
	// lifecycle diagnostics. Defaults to a logger built from Logf when that
	// is set, else slog.Default().
	Logger *slog.Logger
	// Logf is the legacy printf-style hook, kept as a compatibility shim:
	// when set (and Logger is not), all logging renders through it. When
	// only Logger is set, Logf is derived from it so internal printf-style
	// call sites keep working.
	Logf func(format string, args ...any)
	// SpanLogSize bounds the ring buffer of recent request trace trees
	// served by GET /v1/traces/recent (default 64).
	SpanLogSize int
	// JobRetry re-runs failed trace jobs (panics are quarantined instead).
	// The zero value disables retries.
	JobRetry jobs.RetryPolicy
	// DegradedThreshold is how many consecutive WAL append failures trip
	// degraded mode (default 3): reads and traces keep working, writes are
	// rejected with 503 + Retry-After until a probe append succeeds.
	DegradedThreshold int
	// ProbeInterval rate-limits degraded-mode recovery probes (default 1s).
	ProbeInterval time.Duration
	// RetryAfter is the Retry-After hint attached to 503 rejections
	// (default 1s).
	RetryAfter time.Duration
	// Faults injects failures across the stack (store sites, jobs.run,
	// server.handler) for resilience testing. Nil disables injection.
	Faults *faults.Injector

	// RoundEpsilon is the streaming engine's between-round truncation
	// threshold (0 = the engine default 1e-3, negative disables skipping).
	RoundEpsilon float64
	// RoundInnerEpsilon is the within-round truncation threshold
	// (0 = same as RoundEpsilon, negative disables).
	RoundInnerEpsilon float64
	// RoundPermutations is the per-round sampling budget (0 = n·log2(n+1)).
	RoundPermutations int
	// RoundSeed drives the engine's permutation sampling.
	RoundSeed int64
	// RoundWorkers bounds concurrent coalition evaluations per round
	// (0 = GOMAXPROCS). Scores are bit-identical at any value.
	RoundWorkers int
	// RoundGate enables contribution-gated client selection (the ContAvg
	// defense): participants whose streaming score falls below the
	// threshold are flagged gated on GET /v1/scores and surface as
	// KindGate flight events. Nil disables gating.
	RoundGate *rounds.GateConfig

	// FlightSize bounds the flight recorder's routine ring (default 1024
	// events); FlightTailSize bounds the pinned tail of interesting events
	// (default 256). The recorder is always on.
	FlightSize     int
	FlightTailSize int
	// SLOInterval is the background SLO evaluation cadence (default 5s;
	// negative disables the ticker — WAL traffic still ticks
	// synchronously, which is what deterministic tests rely on).
	SLOInterval time.Duration
	// SLOLatencyBound is the per-route latency objective's threshold in
	// seconds (default 0.25): a request slower than this burns budget.
	SLOLatencyBound float64
	// SLOStalenessBound is the score_staleness objective's threshold in
	// seconds (default 300).
	SLOStalenessBound float64
	// SLOIngestBound is the rounds_ingest_lag objective's threshold in
	// seconds (default 1): a round update slower than this burns budget.
	SLOIngestBound float64

	// ClusterSelf is this node's public base URL on the shard ring, e.g.
	// "http://10.0.0.1:8080". Required when ClusterPeers is set.
	ClusterSelf string
	// ClusterPeers is the full ring membership (every node's base URL,
	// ClusterSelf included). When set, requests carrying an X-CTFL-Fed
	// header for a federation this node does not own are answered with
	// 421 + X-CTFL-Shard so clients re-route. Empty disables sharding.
	ClusterPeers []string
	// ReplicaURL makes this node a shard leader: every persist batch is
	// synchronously shipped to the follower at this URL before it touches
	// the local WAL, so an acknowledged write is durable on both nodes.
	// Requires DataDir.
	ReplicaURL string
	// LeaderURL makes this node a follower: mutating requests are fenced
	// with 503 + X-CTFL-Shard, POST /v1/replicate is accepted, and the
	// leader's /healthz is probed every FollowInterval. A burn-rate breach
	// of the replication_lag objective promotes this node to leader.
	LeaderURL string
	// FollowInterval paces the follower's leader health probes
	// (default 250ms).
	FollowInterval time.Duration
	// ReplLagBound is the replication_lag objective's threshold in seconds
	// (default 2): a follower that has not heard from its leader for
	// longer burns budget toward promotion.
	ReplLagBound float64
	// ReplTimeout bounds one replication push or leader probe (default 5s).
	ReplTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 2 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 8 << 20
	}
	if o.Logger == nil {
		o.Logger = telemetry.LogfLogger(o.Logf) // nil Logf → slog.Default()
	}
	if o.Logf == nil {
		lg := o.Logger
		o.Logf = func(format string, args ...any) {
			lg.Info(fmt.Sprintf(format, args...))
		}
	}
	if o.SpanLogSize <= 0 {
		o.SpanLogSize = 64
	}
	if o.DegradedThreshold <= 0 {
		o.DegradedThreshold = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.FlightSize <= 0 {
		o.FlightSize = 1024
	}
	if o.FlightTailSize <= 0 {
		o.FlightTailSize = 256
	}
	if o.SLOInterval == 0 {
		o.SLOInterval = 5 * time.Second
	}
	if o.SLOLatencyBound <= 0 {
		o.SLOLatencyBound = 0.25
	}
	if o.SLOStalenessBound <= 0 {
		o.SLOStalenessBound = 300
	}
	if o.SLOIngestBound <= 0 {
		o.SLOIngestBound = 1
	}
	if o.FollowInterval <= 0 {
		o.FollowInterval = 250 * time.Millisecond
	}
	if o.ReplLagBound <= 0 {
		o.ReplLagBound = 2
	}
	if o.ReplTimeout <= 0 {
		o.ReplTimeout = 5 * time.Second
	}
	return o
}

// state is the federation's mutable lifecycle state. Mutations replace or
// append — existing values are never edited in place — so a consistent
// snapshot is just a copy of this struct taken under a read lock.
type state struct {
	enc      *dataset.Encoder
	encRaw   []byte // encoder JSON exactly as accepted, for snapshots
	model    *nn.Model
	modelRaw []byte // model bytes exactly as accepted
	rs       *rules.Set
	bin      *nn.Binarized // compiled inference snapshot behind /v1/predict
	uploads  []core.TrainingUpload
	frames   [][]byte // accepted protocol frames, byte-for-byte as uploaded
	parts    int      // highest participant id seen + 1
	rounds   *rounds.Engine
	evalRaw  []byte // streaming eval set CSV exactly as registered
	// version counts accepted mutations; trace cache keys include it so any
	// state change invalidates prior results.
	version uint64
}

// Server is the federation scoring service. The zero value is not usable;
// call New or NewWithOptions.
type Server struct {
	opts   Options
	mu     sync.RWMutex
	st     state
	store  *store.Store // nil when ephemeral
	engine *jobs.Engine

	// roundsMu serializes round-update ingest end to end (compute →
	// persist → apply): exactly one round is in flight at a time, which is
	// what makes the streaming score sequence deterministic under
	// concurrent pushers. Never taken while holding mu.
	roundsMu sync.Mutex

	// Degraded-mode state, guarded by mu (write lock): walFails counts
	// consecutive WAL append failures; once it reaches DegradedThreshold the
	// server stops touching the WAL for writes and instead probes it at most
	// once per ProbeInterval, recovering when a probe append succeeds.
	walFails  int
	degraded  bool
	lastProbe time.Time
	// degradedBySLO marks a degradation tripped by wal_availability SLO
	// burn (as opposed to the consecutive-failure threshold): only those
	// episodes clear on burn decay; threshold trips demand a probe append
	// as positive proof. Guarded by mu (write).
	degradedBySLO bool
	// lastSLOTick rate-limits the synchronous evaluator ticks successful
	// WAL appends trigger (see sloSyncFloor). Guarded by mu (write).
	lastSLOTick time.Time

	mux      *http.ServeMux
	requests *expvar.Map // per-route request counters (legacy /v1/stats shape)
	started  time.Time

	// Observability substrate: one registry for every metric family the
	// process owns, a ring of recent request trace trees, the unified
	// structured logger, and the tracer/store instrument handles threaded
	// into the subsystems.
	reg      *telemetry.Registry
	spans    *telemetry.SpanLog
	log      *slog.Logger
	inFlight *telemetry.Gauge
	coreObs  *core.Obs
	storeObs *store.Obs

	degradedGauge   *telemetry.Gauge
	degradedEntered *telemetry.Counter

	// Flight recorder + SLO engine + process runtime stats (the PR-8
	// observability tier). flightRec is always on; slo couples
	// wal_availability burn into the degraded-mode controller above.
	flightRec        *flight.Recorder
	slo              *telemetry.SLOEvaluator
	runtime          *telemetry.RuntimeStats
	httpResponses    *telemetry.Counter // all responses, SLO availability total
	httpServerErrors *telemetry.Counter // 5xx responses, SLO availability bad
	walAttempts      *telemetry.Counter // WAL append attempts (incl. probes)
	walFailures      *telemetry.Counter // failed WAL appends
	degradedSLOTrips *telemetry.Counter // degradations tripped by SLO burn
	sloStop          chan struct{}
	sloDone          chan struct{}

	// Predict serving-path instruments (the route middleware already times
	// every request; these isolate the inference endpoint specifically).
	predictSeconds  *telemetry.Histogram
	predictRows     *telemetry.Counter
	predictInFlight *telemetry.Gauge

	// roundsObs instruments the streaming valuation engine; registered at
	// construction so the families are visible to scrapes before any
	// engine exists.
	roundsObs *rounds.Obs

	// Cluster state (see cluster.go): the shard ring, the leader's push
	// client, and the follower's cursor + promotion flag. following and
	// the replication cursor are guarded by mu (write).
	ring              *cluster.Ring
	clusterClient     *http.Client // replication pushes + leader probes
	following         bool         // true while fenced behind a leader
	replApplied       uint64       // follower cursor: records applied this incarnation
	lastLeaderContact time.Time
	replLag           *telemetry.Gauge
	replSegments      *telemetry.Counter
	replFailures      *telemetry.Counter
	replResyncs       *telemetry.Counter
	promotions        *telemetry.Counter
	followStop        chan struct{}
	followDone        chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// New constructs an ephemeral (in-memory) service with default options,
// the configuration unit tests and examples use.
func New() *Server {
	s, err := NewWithOptions(Options{})
	if err != nil {
		// Without a DataDir no construction step can fail.
		panic(err)
	}
	return s
}

// NewWithOptions constructs the service, replaying durable state from
// opts.DataDir when set.
func NewWithOptions(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		requests: new(expvar.Map).Init(),
		started:  time.Now(),
		reg:      telemetry.NewRegistry(),
		spans:    telemetry.NewSpanLog(opts.SpanLogSize),
		log:      opts.Logger,
	}
	s.inFlight = s.reg.Gauge("ctfl_http_in_flight", "HTTP requests currently being served")
	s.coreObs = core.NewObs(s.reg)
	s.storeObs = store.NewObs(s.reg)
	s.degradedGauge = s.reg.Gauge("ctfl_server_degraded", "1 while WAL writes are rejected (degraded mode)")
	s.degradedEntered = s.reg.Counter("ctfl_server_degraded_entered_total", "times the server entered degraded mode")
	s.predictSeconds = s.reg.Histogram("ctfl_predict_request_seconds", "POST /v1/predict latency", nil)
	s.predictRows = s.reg.Counter("ctfl_predict_rows_total", "feature rows scored by POST /v1/predict")
	s.predictInFlight = s.reg.Gauge("ctfl_predict_in_flight", "predict requests currently being served")
	s.roundsObs = rounds.NewObs(s.reg)
	// The server never trains, but registering the family keeps the full
	// metric catalog visible to scrapes from process start.
	_ = nn.TrainTelemetry(s.reg)

	// Observability tier: always-on flight recorder, process runtime
	// stats, and the SLO burn-rate engine. Registered before the routes so
	// the middleware can attach per-route latency objectives.
	s.flightRec = flight.New(flight.Config{
		Size:     opts.FlightSize,
		TailSize: opts.FlightTailSize,
		Obs:      flight.NewObs(s.reg),
	})
	s.runtime = telemetry.NewRuntimeStats(s.reg, s.started)
	s.httpResponses = s.reg.Counter("ctfl_http_responses_total", "HTTP responses served, any status")
	s.httpServerErrors = s.reg.Counter("ctfl_http_response_errors_total", "HTTP 5xx responses served")
	s.walAttempts = s.reg.Counter("ctfl_wal_attempts_total", "WAL append attempts, including recovery probes")
	s.walFailures = s.reg.Counter("ctfl_wal_failures_total", "failed WAL appends")
	s.degradedSLOTrips = s.reg.Counter("ctfl_server_degraded_slo_trips_total",
		"degradations tripped by wal_availability SLO burn (vs the consecutive-failure threshold)")
	s.spans.SetEvictionCounter(s.reg.Counter("ctfl_spans_children_evicted_total",
		"span children dropped by the per-span cap"))
	if err := s.initCluster(); err != nil {
		return nil, err
	}
	s.slo = telemetry.NewSLOEvaluator(s.reg)
	s.registerSLOs()

	s.engine = jobs.New(jobs.Config{
		Workers:    opts.Workers,
		QueueDepth: opts.QueueDepth,
		JobTimeout: opts.JobTimeout,
		Retry:      opts.JobRetry,
		Faults:     opts.Faults,
		Obs:        jobs.NewObs(s.reg),
		OnFinish: func(v jobs.View) {
			ev := flight.Event{
				Kind:      flight.KindJob,
				Route:     "job.trace",
				RequestID: v.ID,
				CacheHit:  v.CacheHit,
				Degraded:  s.degradedGauge.Value() != 0,
			}
			if v.Attempts > 1 {
				ev.Retries = int32(v.Attempts - 1)
			}
			if !v.Started.IsZero() && !v.Finished.IsZero() {
				ev.DurationNs = v.Finished.Sub(v.Started).Nanoseconds()
			}
			if v.Quarantined {
				ev.Aux = 1
			}
			if v.Err != nil {
				ev.Outcome = flight.OutcomeError
				ev.Err = v.Err.Error()
			}
			s.flightRec.Record(ev)
		},
	})

	if opts.DataDir != "" {
		st, events, err := store.Open(opts.DataDir, store.Options{
			Sync: !opts.NoSync, Logf: opts.Logf, Obs: s.storeObs, Faults: opts.Faults,
			// Leaders retain the logical event log so cursor resyncs can
			// re-feed a lagging follower (see cluster.go).
			Retain: opts.ReplicaURL != "",
		})
		if err != nil {
			return nil, err
		}
		s.store = st
		for i, ev := range events {
			if err := s.applyEvent(ev); err != nil {
				// Every event was validated before it was logged, so a bad
				// one is survivable noise (e.g. an upload for a superseded
				// model): log and keep replaying.
				opts.Logf("server: replay: skipping event %d (type %d): %v", i, ev.Type, err)
			}
		}
		opts.Logf("server: replayed %d events from %s (%d participants, %d records)",
			len(events), opts.DataDir, s.st.parts, len(s.st.uploads))
	}

	s.route("/healthz", s.handleHealth)
	s.route("/v1/encoder", s.handleEncoder)
	s.route("/v1/model", s.handleModel)
	s.route("/v1/uploads", s.handleUploads)
	s.route("/v1/predict", s.handlePredict)
	s.route("/v1/rounds", s.handleRounds)
	s.route("/v1/scores", s.handleScores)
	s.route("/v1/trace", s.handleTrace)
	s.route("/v1/trace/{id}", s.handleTraceJob)
	s.route("/v1/rules", s.handleRules)
	s.route("/v1/stats", s.handleStats)
	s.route("/v1/traces/recent", s.handleTracesRecent)
	s.route("/v1/events", s.handleEvents)
	s.route("/v1/debug/bundle", s.handleDebugBundle)
	s.route("/v1/version", s.handleVersion)
	s.route("/v1/replicate", s.handleReplicate)
	s.route("/metrics", s.handleMetrics)

	s.sloStop = make(chan struct{})
	s.sloDone = make(chan struct{})
	if opts.SLOInterval > 0 {
		go s.sloLoop(opts.SLOInterval)
	} else {
		close(s.sloDone)
	}
	s.followStop = make(chan struct{})
	s.followDone = make(chan struct{})
	if s.following {
		go s.followLoop()
	} else {
		close(s.followDone)
	}
	return s, nil
}

// Registry exposes the server's metric registry, so embedding callers
// (CLI harnesses, tests) can register or read instruments alongside the
// built-in families.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains the trace worker pool (bounded by ctx), writes a final
// snapshot, and releases the store. Safe to call more than once.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		close(s.followStop)
		<-s.followDone
		close(s.sloStop)
		<-s.sloDone
		drainErr := s.engine.Close(ctx)
		var storeErr error
		if s.store != nil {
			s.mu.Lock()
			storeErr = s.store.Compact(s.snapshotEventsLocked())
			if cerr := s.store.Close(); storeErr == nil {
				storeErr = cerr
			}
			s.mu.Unlock()
		}
		s.closeErr = errors.Join(drainErr, storeErr)
	})
	return s.closeErr
}

// applyEvent decodes and applies one durable event during replay. It runs
// the same validation the original handler ran.
func (s *Server) applyEvent(ev store.Event) error {
	switch ev.Type {
	case store.EventEncoder:
		var enc dataset.Encoder
		if err := json.Unmarshal(ev.Payload, &enc); err != nil {
			return err
		}
		s.applyEncoder(&enc, ev.Payload)
		return nil
	case store.EventModel:
		m, err := nn.ReadModel(bytes.NewReader(ev.Payload))
		if err != nil {
			return err
		}
		if s.st.enc == nil {
			return errors.New("model event before encoder")
		}
		if m.InDim() != s.st.enc.Width() {
			return fmt.Errorf("model width %d, encoder %d", m.InDim(), s.st.enc.Width())
		}
		s.applyModel(m, ev.Payload)
		return nil
	case store.EventUpload:
		info, err := protocol.ValidateUploadFrame(ev.Payload)
		if err != nil {
			return err
		}
		if info.FrameLen != len(ev.Payload) {
			return fmt.Errorf("%d trailing bytes after upload frame", len(ev.Payload)-info.FrameLen)
		}
		if s.st.rs == nil {
			return errors.New("upload event before model")
		}
		if info.RuleWidth != s.st.rs.Width() {
			return fmt.Errorf("upload width %d, rules %d", info.RuleWidth, s.st.rs.Width())
		}
		return s.applyUploadFrame(ev.Payload)
	case store.EventRoundEval:
		if s.st.enc == nil || s.st.model == nil {
			return errors.New("round-eval event before encoder/model")
		}
		test, err := parseRoundEval(s.st.enc, ev.Payload)
		if err != nil {
			return err
		}
		s.applyRoundEval(test, ev.Payload)
		return nil
	case store.EventRound:
		if s.st.rounds == nil {
			return errors.New("round event before evaluation set")
		}
		// Pure score arithmetic: replay never re-evaluates a coalition.
		return s.st.rounds.ApplyPayload(ev.Payload)
	case store.EventNop:
		// Degraded-mode health probes carry no state.
		return nil
	default:
		return fmt.Errorf("unknown event type %d", ev.Type)
	}
}

// The apply* mutators assume the write lock is held (or exclusive access
// during replay). They are the single place state transitions happen, so
// handler and replay behaviour cannot drift apart.

func (s *Server) applyEncoder(enc *dataset.Encoder, raw []byte) {
	s.st.enc, s.st.encRaw = enc, raw
	// A new encoding invalidates any model and uploads tied to the old one.
	s.st.model, s.st.modelRaw, s.st.rs, s.st.bin = nil, nil, nil, nil
	s.st.uploads, s.st.frames, s.st.parts = nil, nil, 0
	s.st.rounds, s.st.evalRaw = nil, nil
	s.st.version++
}

func (s *Server) applyModel(m *nn.Model, raw []byte) {
	s.st.model, s.st.modelRaw = m, raw
	s.st.rs = rules.Extract(m, s.st.enc)
	s.st.bin = m.Binarize()
	// Uploads reference the previous model's rule space; the round stream
	// reconstructs coalitions of the previous model's parameters.
	s.st.uploads, s.st.frames, s.st.parts = nil, nil, 0
	s.st.rounds, s.st.evalRaw = nil, nil
	s.st.version++
}

// applyUploadFrame decodes a validated upload frame into state: records are
// slab-decoded straight off the frame bytes, and the raw frame itself is
// retained for snapshots — the server never re-encodes what a client sent.
func (s *Server) applyUploadFrame(frame []byte) error {
	uploads, info, err := protocol.AppendTrainingRecords(s.st.uploads, frame)
	if err != nil {
		return err
	}
	s.st.uploads = uploads
	s.st.frames = append(s.st.frames, frame)
	if info.Participant+1 > s.st.parts {
		s.st.parts = info.Participant + 1
	}
	s.st.version++
	return nil
}

// snapshotEventsLocked re-creates current state as a minimal event list:
// the compaction input. Caller holds at least the read lock.
func (s *Server) snapshotEventsLocked() []store.Event {
	var events []store.Event
	if s.st.encRaw != nil {
		events = append(events, store.Event{Type: store.EventEncoder, Payload: s.st.encRaw})
	}
	if s.st.modelRaw != nil {
		events = append(events, store.Event{Type: store.EventModel, Payload: s.st.modelRaw})
	}
	for _, f := range s.st.frames {
		events = append(events, store.Event{Type: store.EventUpload, Payload: f})
	}
	if s.st.evalRaw != nil {
		events = append(events, store.Event{Type: store.EventRoundEval, Payload: s.st.evalRaw})
		if s.st.rounds != nil {
			for _, p := range s.st.rounds.Payloads() {
				events = append(events, store.Event{Type: store.EventRound, Payload: p})
			}
		}
	}
	return events
}

// persistLocked write-ahead-logs a mutation's events atomically (one batch,
// one write) and tracks WAL health for degraded mode. Caller holds the write
// lock; on error the caller must not apply the mutation — every persist
// failure happens before any state change, so the client may simply retry.
func (s *Server) persistLocked(evs ...store.Event) error {
	if s.store == nil {
		return nil
	}
	if s.degraded {
		if !s.probeLocked() {
			return errDegraded
		}
	}
	// Leaders replicate before appending locally: a failure here rejects
	// the write with no local effect (the contract above), and the
	// follower's cursor check absorbs the re-push when the client retries.
	if err := s.replicateLocked(evs); err != nil {
		return err
	}
	s.walAttempts.Inc()
	if err := s.store.AppendBatch(evs); err != nil {
		s.walFails++
		s.walFailures.Inc()
		s.recordWALEvent(flight.OutcomeError, "store.append", err.Error(), int64(s.walFails))
		if !s.degraded && s.walFails >= s.opts.DegradedThreshold {
			s.degraded = true
			s.lastProbe = time.Now()
			s.degradedEntered.Inc()
			s.degradedGauge.Set(1)
			s.recordWALEvent(flight.OutcomeDegraded, "server.degraded",
				"entered: consecutive WAL append failures", int64(s.walFails))
			s.log.Warn("entering degraded mode: WAL appends failing persistently",
				"consecutive_failures", s.walFails, "err", err)
		}
		// Failures re-evaluate the SLOs immediately (never rate-limited):
		// wal_availability burn must trip degraded mode during the
		// incident, not a tick later.
		s.sloTickLocked(time.Now())
		return err
	}
	s.walFails = 0
	if now := time.Now(); now.Sub(s.lastSLOTick) >= sloSyncFloor {
		s.sloTickLocked(now)
	}
	return nil
}

// probeLocked attempts degraded-mode recovery at most once per
// ProbeInterval: a no-op append proving the WAL is writable again. Reports
// whether the server is healthy after the call.
func (s *Server) probeLocked() bool {
	if time.Since(s.lastProbe) < s.opts.ProbeInterval {
		return false
	}
	s.lastProbe = time.Now()
	s.walAttempts.Inc()
	if err := s.store.Append(store.Event{Type: store.EventNop}); err != nil {
		s.walFailures.Inc()
		s.recordWALEvent(flight.OutcomeError, "store.probe", err.Error(), int64(s.walFails))
		s.sloTickLocked(time.Now())
		return false
	}
	s.degraded = false
	s.degradedBySLO = false
	s.walFails = 0
	s.degradedGauge.Set(0)
	// The probe positively proved the WAL healthy; the objective's retained
	// bad samples predate that proof, so keeping them would re-trip a
	// breach the probe just disproved.
	s.slo.Reset(sloWAL)
	s.recordWALEvent(flight.OutcomeDegraded, "server.degraded",
		"cleared: WAL append probe succeeded", 0)
	s.log.Info("degraded mode cleared: WAL append probe succeeded")
	return true
}

// maybeCompactLocked folds the WAL into a snapshot once it outgrows the
// configured bound. Runs after the mutation is applied, so the snapshot
// input is simply the current state. Compaction failure is survivable — the
// WAL keeps growing and the next mutation retries.
func (s *Server) maybeCompactLocked() {
	if s.store == nil || s.store.WALSize() <= s.opts.CompactBytes {
		return
	}
	if err := s.store.Compact(s.snapshotEventsLocked()); err != nil {
		s.opts.Logf("server: wal compaction failed (continuing on wal): %v", err)
	}
}

// unavailable answers 503 with the configured Retry-After hint: the
// degraded-mode and injected-fault rejection shape retrying clients honour.
func (s *Server) unavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
	httpError(w, http.StatusServiceUnavailable, err)
}

// injectFault fires the server.handler site; when it injects, the request
// is rejected with 503 + Retry-After before it has any effect, and the
// fault is annotated onto the request's flight event.
func (s *Server) injectFault(w http.ResponseWriter, r *http.Request) bool {
	if err := s.opts.Faults.Err(FaultHandler); err != nil {
		if ex := extrasFrom(r.Context()); ex != nil {
			ex.faults++
		}
		s.unavailable(w, err)
		return true
	}
	return false
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// readBody drains a POST body under the configured cap, converting an
// overrun into 413 at the call site via maxBytesCode.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	// Read declared-length bodies into one exact-size buffer: io.ReadAll's
	// grow-by-doubling re-zeroes and re-copies an 8KB upload four times
	// over, which under sustained ingest is a double-digit share of
	// handler CPU. net/http caps the body at Content-Length, so a full
	// read here is the whole body.
	if n := r.ContentLength; n > 0 && n <= s.opts.MaxBodyBytes {
		buf := make([]byte, n)
		if _, err := io.ReadFull(rd, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return io.ReadAll(rd)
}

// requireContentType validates the request's Content-Type against the
// allowed media types, returning the matched type. An absent header is
// accepted (returning "") for compatibility with minimal clients; anything
// present but unlisted is the caller's 415.
func requireContentType(r *http.Request, allowed ...string) (string, error) {
	raw := r.Header.Get("Content-Type")
	if raw == "" {
		return "", nil
	}
	mt, _, err := mime.ParseMediaType(raw)
	if err != nil {
		return "", fmt.Errorf("unparseable Content-Type %q", raw)
	}
	for _, a := range allowed {
		if mt == a {
			return mt, nil
		}
	}
	return "", fmt.Errorf("unsupported Content-Type %q (expected %s)", mt, strings.Join(allowed, " or "))
}

// maxBytesCode maps body-too-large errors to 413 and everything else to
// the given default.
func maxBytesCode(err error, def int) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return def
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	state := map[string]any{
		"ok":           true,
		"encoder":      s.st.enc != nil,
		"model":        s.st.model != nil,
		"uploads":      len(s.st.uploads),
		"participants": s.st.parts,
		"durable":      s.store != nil,
		"degraded":     s.degraded,
	}
	if s.ring != nil || s.opts.ReplicaURL != "" || s.opts.LeaderURL != "" {
		role := "leader"
		if s.following {
			role = "follower"
		}
		cl := map[string]any{
			"role":     role,
			"promoted": s.opts.LeaderURL != "" && !s.following,
			"applied":  s.replApplied,
		}
		if s.ring != nil {
			cl["shard"] = s.opts.ClusterSelf
			cl["peers"] = s.ring.Size()
		}
		if s.opts.ReplicaURL != "" {
			cl["replica"] = s.opts.ReplicaURL
		}
		state["cluster"] = cl
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, state)
}

func (s *Server) handleEncoder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.injectFault(w, r) {
		return
	}
	raw, err := s.readBody(w, r)
	if err != nil {
		httpError(w, maxBytesCode(err, http.StatusBadRequest), err)
		return
	}
	var enc dataset.Encoder
	if err := json.Unmarshal(raw, &enc); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.persistLocked(store.Event{Type: store.EventEncoder, Payload: raw}); err != nil {
		s.unavailable(w, err)
		return
	}
	s.applyEncoder(&enc, raw)
	s.maybeCompactLocked()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.injectFault(w, r) {
		return
	}
	if _, err := requireContentType(r, "application/octet-stream"); err != nil {
		httpError(w, http.StatusUnsupportedMediaType, err)
		return
	}
	raw, err := s.readBody(w, r)
	if err != nil {
		httpError(w, maxBytesCode(err, http.StatusBadRequest), err)
		return
	}
	m, err := nn.ReadModel(bytes.NewReader(raw))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.enc == nil {
		httpError(w, http.StatusConflict, errors.New("publish the encoder first"))
		return
	}
	if m.InDim() != s.st.enc.Width() {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("model input width %d, encoder produces %d", m.InDim(), s.st.enc.Width()))
		return
	}
	if err := s.persistLocked(store.Event{Type: store.EventModel, Payload: raw}); err != nil {
		s.unavailable(w, err)
		return
	}
	s.applyModel(m, raw)
	s.maybeCompactLocked()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUploads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.injectFault(w, r) {
		return
	}
	if _, err := requireContentType(r, "application/octet-stream", protocol.ContentTypeFrame); err != nil {
		httpError(w, http.StatusUnsupportedMediaType, err)
		return
	}
	// Snapshot the rule space, then validate the whole batch without
	// holding any lock.
	s.mu.RLock()
	rs := s.st.rs
	s.mu.RUnlock()
	if rs == nil {
		httpError(w, http.StatusConflict, errors.New("publish encoder and model first"))
		return
	}

	// Zero-copy ingest: read the batch once, CRC + structurally validate
	// each frame in place (no bitsets, no Upload structs), and persist the
	// client's own bytes. The frame slices below alias this body buffer —
	// one allocation backs the whole batch's retained frames.
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, maxBytesCode(err, http.StatusBadRequest), err)
		return
	}
	var frames [][]byte
	for rest := body; len(rest) > 0; {
		info, err := protocol.ValidateUploadFrame(rest)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if info.RuleWidth != rs.Width() {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("upload rule width %d, model has %d", info.RuleWidth, rs.Width()))
			return
		}
		frames = append(frames, rest[:info.FrameLen:info.FrameLen])
		rest = rest[info.FrameLen:]
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.rs != rs {
		// Encoder/model were republished while we decoded; these frames
		// belong to a superseded rule space. The guard is the rule-space
		// object itself (apply* replaces it wholesale, never mutates), so
		// concurrent uploads — which advance the version but keep the rule
		// space — commit without spurious conflicts.
		httpError(w, http.StatusConflict, errors.New("federation state changed during upload; resubmit"))
		return
	}
	// Persist the whole batch atomically, then apply: a failed persist leaves
	// no partial prefix in the WAL or in memory, so a client retry of the
	// same batch cannot double-apply frames. The WAL payloads are the exact
	// bytes the client sent — replay revalidates and decodes them the same
	// way this request just did.
	evs := make([]store.Event, len(frames))
	for i, f := range frames {
		evs[i] = store.Event{Type: store.EventUpload, Payload: f}
	}
	if err := s.persistLocked(evs...); err != nil {
		s.unavailable(w, err)
		return
	}
	for _, f := range frames {
		// Validation above makes a decode failure impossible; treat one as
		// the internal error it would be.
		if err := s.applyUploadFrame(f); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.maybeCompactLocked()
	writeJSON(w, http.StatusOK, map[string]int{"frames": len(frames), "records": len(s.st.uploads)})
}

// TraceResponse is the result of a completed trace job. It is the
// protocol's canonical TraceResult: GET /v1/trace/{id} serves it as JSON by
// default, or as a binary v2 trace-result frame when the request Accepts
// application/x-ctfl.
type TraceResponse = protocol.TraceResult

// TraceJobResponse is the envelope POST /v1/trace and GET /v1/trace/{id}
// return: the job's lifecycle status plus, once done, the trace result.
type TraceJobResponse struct {
	ID       string         `json:"id"`
	Status   string         `json:"status"`
	CacheHit bool           `json:"cache_hit"`
	Error    string         `json:"error,omitempty"`
	Result   *TraceResponse `json:"result,omitempty"`
}

func jobResponse(v jobs.View) TraceJobResponse {
	resp := TraceJobResponse{ID: v.ID, Status: string(v.Status), CacheHit: v.CacheHit}
	if v.Err != nil {
		resp.Error = v.Err.Error()
	}
	if tr, ok := v.Result.(*TraceResponse); ok {
		resp.Result = tr
	}
	return resp
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.injectFault(w, r) {
		return
	}
	tau, err := queryFloat(r, "tau", 0.9)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	delta, err := queryInt(r, "delta", 2)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if tau <= 0 || tau > 1 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("tau %v outside (0,1]", tau))
		return
	}
	var wait time.Duration
	if wv := r.URL.Query().Get("wait"); wv != "" {
		if wait, err = time.ParseDuration(wv); err != nil || wait < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("query wait: %q is not a duration", wv))
			return
		}
	}
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, maxBytesCode(err, http.StatusBadRequest), err)
		return
	}

	// Snapshot-read the federation state: the job computes on this immutable
	// view, never under the lock.
	s.mu.RLock()
	snap := s.st
	s.mu.RUnlock()
	if snap.rs == nil {
		httpError(w, http.StatusConflict, errors.New("publish encoder and model first"))
		return
	}
	if len(snap.uploads) == 0 {
		httpError(w, http.StatusConflict, errors.New("no participant uploads registered"))
		return
	}
	// Parse the CSV up front so malformed input is a 400 now, not a failed
	// job later; the tracer itself is the only async stage.
	test, err := dataset.ReadCSV(bytes.NewReader(body), snap.enc.Schema(), dataset.CSVOptions{
		HasHeader:       true,
		PositiveLabel:   snap.enc.Schema().Labels[1],
		TrimSpace:       true,
		ClampContinuous: true,
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if test.Len() == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty test set"))
		return
	}

	key := traceKey(body, tau, delta, snap.version)
	// Capture the request context for span parentage only: context values
	// survive request cancellation, so the async job's spans attach under
	// the request's root even after the handler has answered 202. The
	// job's own cancellation comes from the engine-provided ctx.
	sctx := r.Context()
	job, err := s.engine.Submit(key, func(ctx context.Context) (any, error) {
		jctx, jspan := telemetry.StartSpan(sctx, "job.trace")
		defer jspan.End()
		jspan.SetAttr("rows", test.Len())
		jspan.SetAttr("participants", snap.parts)
		tracer := core.NewTracerFromUploads(snap.rs, snap.parts, cloneUploads(snap.uploads),
			core.Config{TauW: tau, Delta: delta, Obs: s.coreObs})
		_, tspan := telemetry.StartSpan(jctx, "tracer.trace")
		res := tracer.Trace(test)
		tspan.End()
		sus := res.Suspicion(0.5)
		return &TraceResponse{
			Accuracy:     res.Accuracy(),
			CoverageGap:  res.CoverageGap(),
			Micro:        res.MicroScores(),
			Macro:        res.MacroScores(),
			LossRatio:    sus.Ratio,
			UselessRatio: res.UselessRatio(),
			Suspects:     sus.Suspects,
		}, nil
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, jobs.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}

	if wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		if v, err := s.engine.Wait(ctx, job); err == nil {
			s.writeJob(w, r, v)
			return
		}
		// Timed out waiting: fall through to the async 202 answer.
	}
	jv := job.Snapshot()
	if ex := extrasFrom(r.Context()); ex != nil && jv.CacheHit {
		ex.cacheHit = true
	}
	w.Header().Set("Location", "/v1/trace/"+job.ID())
	writeJSON(w, http.StatusAccepted, jobResponse(jv))
}

// acceptsFrame reports whether the request negotiated the binary v2
// encoding for its response.
func acceptsFrame(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), protocol.ContentTypeFrame)
}

// writeJob renders a job view with a status code matching its lifecycle:
// 200 done, 500 failed, 202 still in flight. A done job whose request
// Accepts application/x-ctfl is answered as a binary trace-result frame
// instead of the JSON envelope; every other lifecycle state stays JSON, so
// pollers always see the envelope until there is a result to stream.
func (s *Server) writeJob(w http.ResponseWriter, r *http.Request, v jobs.View) {
	if ex := extrasFrom(r.Context()); ex != nil && v.CacheHit {
		ex.cacheHit = true
	}
	code := http.StatusAccepted
	switch v.Status {
	case jobs.StatusDone:
		if tr, ok := v.Result.(*TraceResponse); ok && acceptsFrame(r) {
			frame := protocol.AppendTraceResult(nil, tr)
			w.Header().Set("Content-Type", protocol.ContentTypeFrame)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(frame)
			return
		}
		code = http.StatusOK
	case jobs.StatusFailed:
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, jobResponse(v))
}

func (s *Server) handleTraceJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.injectFault(w, r) {
		return
	}
	job, ok := s.engine.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown trace job %q", r.PathValue("id")))
		return
	}
	s.writeJob(w, r, job.Snapshot())
}

// traceKey derives the result-cache key: test-set content, tracing
// parameters, and the federation state version — any state change yields a
// fresh key, so stale results are never served.
func traceKey(body []byte, tau float64, delta int, version uint64) string {
	h := sha256.New()
	var meta [24]byte
	binary.LittleEndian.PutUint64(meta[0:8], uint64(int64(tau*1e12)))
	binary.LittleEndian.PutUint64(meta[8:16], uint64(int64(delta)))
	binary.LittleEndian.PutUint64(meta[16:24], version)
	h.Write(meta[:])
	h.Write(body)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// cloneUploads protects the registered uploads from the tracer's in-place
// class-side masking, so traces stay repeatable.
func cloneUploads(ups []core.TrainingUpload) []core.TrainingUpload {
	out := make([]core.TrainingUpload, len(ups))
	for i, u := range ups {
		out[i] = core.TrainingUpload{Owner: u.Owner, Label: u.Label, Activations: u.Activations.Clone()}
	}
	return out
}

// RuleJSON is one rule in GET /v1/rules responses.
type RuleJSON struct {
	Index    int     `json:"index"`
	Positive bool    `json:"positive"`
	Weight   float64 `json:"weight"`
	Expr     string  `json:"expr"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.mu.RLock()
	rs := s.st.rs
	s.mu.RUnlock()
	if rs == nil {
		httpError(w, http.StatusConflict, errors.New("publish encoder and model first"))
		return
	}
	out := make([]RuleJSON, 0, len(rs.Rules))
	for _, ru := range rs.Rules {
		out = append(out, RuleJSON{Index: ru.Index, Positive: ru.Positive, Weight: ru.Weight, Expr: ru.Expr})
	}
	writeJSON(w, http.StatusOK, out)
}

// StatsResponse is the shape of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      json.RawMessage  `json:"requests"`
	Jobs          map[string]int64 `json:"jobs"`
	Store         *store.Metrics   `json:"store,omitempty"`
	State         map[string]any   `json:"state"`
	// Telemetry is the full metric-registry snapshot — the JSON twin of
	// GET /metrics. Counters/gauges are scalars; histograms carry
	// count/sum/p50/p95/p99.
	Telemetry map[string]any `json:"telemetry,omitempty"`
	// Traces counts root spans recorded so far (see /v1/traces/recent).
	Traces int64 `json:"traces"`
	// SLO is every declared objective's live burn-rate status.
	SLO []telemetry.SLOStatus `json:"slo,omitempty"`
	// Flight is the flight recorder's retention accounting.
	Flight flight.Stats `json:"flight"`
	// Quality is the streaming score-quality snapshot, when a round-stream
	// engine is live.
	Quality *rounds.QualitySnapshot `json:"quality,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.mu.RLock()
	st := map[string]any{
		"version":      s.st.version,
		"encoder":      s.st.enc != nil,
		"model":        s.st.model != nil,
		"records":      len(s.st.uploads),
		"participants": s.st.parts,
		"degraded":     s.degraded,
	}
	eng := s.st.rounds
	if eng != nil {
		st["rounds"] = eng.Rounds()
	}
	s.mu.RUnlock()
	s.runtime.Collect()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      json.RawMessage(s.requests.String()),
		Jobs:          s.engine.MetricsView(),
		State:         st,
		Telemetry:     s.reg.Snapshot(),
		Traces:        s.spans.Total(),
		SLO:           s.slo.Snapshot(),
		Flight:        s.flightRec.Stats(),
	}
	if eng != nil {
		q := eng.Quality()
		resp.Quality = &q
	}
	if s.store != nil {
		m := s.store.Metrics()
		resp.Store = &m
	}
	writeJSON(w, http.StatusOK, resp)
}

func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("query %s: %w", key, err)
	}
	return f, nil
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query %s: %w", key, err)
	}
	return n, nil
}
