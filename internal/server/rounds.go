package server

// The streaming-valuation endpoints: POST /v1/rounds ingests either the
// held-out evaluation set (text/csv — registers/resets the round-stream
// engine) or one round-update frame (application/x-ctfl — scores the round
// incrementally), and GET /v1/scores serves the live contribution scores
// (JSON, or a binary v2 scores-snapshot frame for Accept: application/x-ctfl;
// ?round=N&wait=D long-polls until N rounds have been ingested).
//
// Durability follows the WAL-before-apply rule every other mutation obeys:
// the evaluation set persists as store.EventRoundEval (the raw CSV), each
// ingested round as store.EventRound (the engine's Outcome payload). Replay
// rebuilds the engine from the CSV and re-applies outcome payloads — pure
// score arithmetic, zero coalition re-evaluation — so a restarted server
// resumes the stream bit-identically.
//
// Locking: s.roundsMu serializes round ingest end to end (compute → persist
// → apply), keeping exactly one round in flight; the expensive Compute runs
// outside s.mu, which is only taken for the persist+apply tail. Lock order
// is always roundsMu → s.mu → engine.mu, and reads take s.mu → engine.mu —
// no cycle with compaction (which walks the engine under s.mu).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dataset"
	"repro/internal/flight"
	"repro/internal/protocol"
	"repro/internal/rounds"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// RoundResponse answers POST /v1/rounds for one ingested round-update.
type RoundResponse struct {
	Round int `json:"round"`
	// Skipped marks a round cut by between-round truncation.
	Skipped bool `json:"skipped"`
	// GlobalUtility is the reconstructed grand-coalition accuracy.
	GlobalUtility float64 `json:"global_utility"`
	Participants  int     `json:"participants"`
	// Evals is the coalition reconstructions this round cost (1 when
	// skipped).
	Evals int `json:"evals"`
}

// ScoresResponse is the JSON shape of GET /v1/scores: the wire snapshot
// plus engine counters.
type ScoresResponse struct {
	protocol.ScoresSnapshot
	Participants int `json:"participants"`
	// Evals counts coalition reconstructions since this process started
	// (0 right after a WAL restore — resume recomputes nothing).
	Evals          int `json:"evals"`
	TruncatedWalks int `json:"truncated_walks"`
	// Gated flags participants currently excluded from aggregation by the
	// contribution gate, aligned with Scores. Omitted when gating is off.
	Gated []bool `json:"gated,omitempty"`
}

// applyRoundEval installs a fresh round-stream engine over the parsed
// evaluation set. Caller holds the write lock (or exclusive replay access).
func (s *Server) applyRoundEval(test *dataset.Table, raw []byte) {
	evalX, evalY := s.st.enc.EncodeTable(test)
	eng, err := rounds.New(rounds.Config{
		Model:        s.st.model,
		EvalX:        evalX,
		EvalY:        evalY,
		Epsilon:      s.opts.RoundEpsilon,
		InnerEpsilon: s.opts.RoundInnerEpsilon,
		Permutations: s.opts.RoundPermutations,
		Seed:         s.opts.RoundSeed,
		Workers:      s.opts.RoundWorkers,
		Obs:          s.roundsObs,
		Gate:         s.opts.RoundGate,
	})
	if err != nil {
		// Construction only fails on an empty eval set or a missing model,
		// both checked by every caller before persisting.
		panic(fmt.Sprintf("server: round engine construction: %v", err))
	}
	s.st.rounds = eng
	s.st.evalRaw = raw
	s.st.version++
}

// parseRoundEval validates the evaluation-set CSV against the published
// encoder's schema, mirroring the trace handler's parse.
func parseRoundEval(enc *dataset.Encoder, body []byte) (*dataset.Table, error) {
	test, err := dataset.ReadCSV(bytes.NewReader(body), enc.Schema(), dataset.CSVOptions{
		HasHeader:       true,
		PositiveLabel:   enc.Schema().Labels[1],
		TrimSpace:       true,
		ClampContinuous: true,
	})
	if err != nil {
		return nil, err
	}
	if test.Len() == 0 {
		return nil, errors.New("empty evaluation set")
	}
	return test, nil
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.injectFault(w, r) {
		return
	}
	ct, err := requireContentType(r, "text/csv", protocol.ContentTypeFrame, "application/octet-stream")
	if err != nil {
		httpError(w, http.StatusUnsupportedMediaType, err)
		return
	}
	if ct == "text/csv" {
		s.handleRoundEval(w, r)
		return
	}
	s.handleRoundUpdate(w, r)
}

// handleRoundEval registers (or replaces) the streaming evaluation set,
// resetting the score stream.
func (s *Server) handleRoundEval(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	enc, model := s.st.enc, s.st.model
	s.mu.RUnlock()
	if enc == nil || model == nil {
		httpError(w, http.StatusConflict, errors.New("publish encoder and model first"))
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, maxBytesCode(err, http.StatusBadRequest), err)
		return
	}
	test, err := parseRoundEval(enc, body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.enc != enc || s.st.model != model {
		// Identity of the encoder and model the eval set was parsed
		// against is what matters; uploads landing meanwhile are fine.
		httpError(w, http.StatusConflict, errors.New("federation state changed during registration; resubmit"))
		return
	}
	if err := s.persistLocked(store.Event{Type: store.EventRoundEval, Payload: body}); err != nil {
		s.unavailable(w, err)
		return
	}
	s.applyRoundEval(test, body)
	s.maybeCompactLocked()
	writeJSON(w, http.StatusOK, map[string]int{
		"rows":         test.Len(),
		"param_count":  s.st.rounds.ParamCount(),
		"rounds_reset": 1,
	})
}

// handleRoundUpdate scores one round-update frame and commits its outcome.
func (s *Server) handleRoundUpdate(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, maxBytesCode(err, http.StatusBadRequest), err)
		return
	}
	info, err := protocol.ValidateRoundUpdateFrame(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if info.FrameLen != len(body) {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%d trailing bytes after round-update frame", len(body)-info.FrameLen))
		return
	}
	f, _, err := protocol.ParseFrame(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	u, err := protocol.ParseRoundUpdate(f)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.RLock()
	eng := s.st.rounds
	s.mu.RUnlock()
	if eng == nil {
		httpError(w, http.StatusConflict, errors.New("register an evaluation set first (POST /v1/rounds, text/csv)"))
		return
	}
	if u.ParamCount != eng.ParamCount() {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("round update carries %d params, model has %d", u.ParamCount, eng.ParamCount()))
		return
	}

	// Each ingest attempt is one KindRound flight event: which round, how
	// long the scoring took, and — when it failed — which stage broke.
	t0 := time.Now()
	roundEvent := func(outcome flight.Outcome, round int, errMsg string) {
		s.flightRec.Record(flight.Event{
			Kind:       flight.KindRound,
			Outcome:    outcome,
			Route:      "rounds.ingest",
			RequestID:  telemetry.RequestIDFrom(r.Context()),
			DurationNs: time.Since(t0).Nanoseconds(),
			BytesIn:    int64(len(body)),
			Aux:        int64(round),
			Degraded:   s.degradedGauge.Value() != 0,
			Err:        errMsg,
		})
	}

	// Serialize the whole ingest: exactly one round moves from compute to
	// commit at a time, so Compute's basis always matches at Apply.
	s.roundsMu.Lock()
	defer s.roundsMu.Unlock()
	out, err := eng.Compute(u)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, rounds.ErrStaleRound) {
			code = http.StatusConflict
		}
		roundEvent(flight.OutcomeError, u.Round, "compute: "+err.Error())
		httpError(w, code, err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.rounds != eng {
		// The engine object is replaced on every re-registration and
		// republish, so identity alone detects a superseded stream;
		// concurrent uploads advance the version but keep the engine.
		roundEvent(flight.OutcomeRejected, out.Round, "federation state changed during round ingest")
		httpError(w, http.StatusConflict, errors.New("federation state changed during round ingest; resubmit"))
		return
	}
	if err := s.persistLocked(store.Event{Type: store.EventRound, Payload: out.Payload()}); err != nil {
		roundEvent(flight.OutcomeError, out.Round, "persist: "+err.Error())
		s.unavailable(w, err)
		return
	}
	if err := eng.Apply(out); err != nil {
		roundEvent(flight.OutcomeError, out.Round, "apply: "+err.Error())
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.maybeCompactLocked()
	// Gate transitions this outcome triggered become KindGate flight
	// events: exclusions as rejections, readmissions as OKs; both carry
	// the rendered transition so they pin in the tail ring.
	for _, ev := range eng.GateEvents() {
		if ev.Round != out.Round {
			continue
		}
		outcome := flight.OutcomeOK
		if ev.Gated {
			outcome = flight.OutcomeRejected
		}
		s.flightRec.Record(flight.Event{
			Kind:      flight.KindGate,
			Outcome:   outcome,
			Route:     "rounds.gate",
			RequestID: telemetry.RequestIDFrom(r.Context()),
			Aux:       int64(ev.Round),
			Degraded:  s.degradedGauge.Value() != 0,
			Err:       ev.String(),
		})
	}
	roundEvent(flight.OutcomeOK, out.Round, "")
	writeJSON(w, http.StatusOK, RoundResponse{
		Round:         out.Round,
		Skipped:       out.Skipped,
		GlobalUtility: out.VFull,
		Participants:  u.Count,
		Evals:         out.Evals,
	})
}

func (s *Server) handleScores(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	minRound, err := queryInt(r, "round", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var wait time.Duration
	if wv := r.URL.Query().Get("wait"); wv != "" {
		if wait, err = time.ParseDuration(wv); err != nil || wait < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("query wait: %q is not a duration", wv))
			return
		}
	}
	s.mu.RLock()
	eng := s.st.rounds
	s.mu.RUnlock()
	if eng == nil {
		httpError(w, http.StatusConflict, errors.New("register an evaluation set first (POST /v1/rounds, text/csv)"))
		return
	}
	if wait > 0 && minRound > 0 {
		// Long-poll until the stream reaches the requested round; a timeout
		// still answers with the current snapshot (the poller's decision).
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		_ = eng.Wait(ctx, minRound)
		cancel()
	}
	s.roundsObs.Staleness.Set(eng.Staleness().Seconds())
	snap := eng.Snapshot()
	if acceptsFrame(r) {
		frame := protocol.AppendScoresSnapshot(nil, &snap)
		w.Header().Set("Content-Type", protocol.ContentTypeFrame)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(frame)
		return
	}
	resp := ScoresResponse{
		ScoresSnapshot: snap,
		Participants:   len(snap.Scores),
		Evals:          eng.Evals(),
		TruncatedWalks: eng.TruncatedWalks(),
	}
	if s.opts.RoundGate != nil {
		resp.Gated = eng.Gated()
	}
	writeJSON(w, http.StatusOK, resp)
}
