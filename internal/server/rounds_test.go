package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fedsim"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/rounds"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// streamFixture is the streaming-valuation federation: size skew aligned
// with graded label poisoning, so contribution ranking is unambiguous, plus
// the fedsim round stream a live federation would push.
type streamFixture struct {
	enc     *dataset.Encoder
	trainer *fl.Trainer
	parts   []*fl.Participant
	test    *dataset.Table
	sim     *fedsim.Result
}

func buildStreamFederation(t testing.TB) *streamFixture {
	t.Helper()
	tab := dataset.TicTacToe()
	r := stats.NewRNG(23)
	train, test := tab.Split(r, 0.25)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(train.Len())
	fracs := []float64{0.30, 0.25, 0.20, 0.15, 0.10}
	parts := make([]*fl.Participant, len(fracs))
	at := 0
	for i, f := range fracs {
		n := int(f * float64(train.Len()))
		if i == len(fracs)-1 {
			n = train.Len() - at
		}
		parts[i] = &fl.Participant{ID: i, Name: string(rune('A' + i)), Data: train.Subset(perm[at : at+n])}
		at += n
	}
	parts[1] = fl.FlipLabels(parts[1], 0.12, r)
	parts[2] = fl.FlipLabels(parts[2], 0.30, r)
	parts[3] = fl.FlipLabels(parts[3], 0.60, r)
	parts[4] = fl.FlipLabels(parts[4], 1.0, r)

	model := nn.Config{Hidden: []int{16}, Seed: 7, BatchSize: 128}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 2, LocalEpochs: 3, Parallel: true, Model: model, Seed: 23,
	})
	sim, err := fedsim.Run(enc, parts, test, fedsim.Config{
		Rounds: 8, LocalEpochs: 3, Model: model, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &streamFixture{enc: enc, trainer: trainer, parts: parts, test: test, sim: sim}
}

// wireRounds converts the fedsim stream into wire participants per round.
func (fx *streamFixture) wireRounds() [][]protocol.RoundParticipant {
	var out [][]protocol.RoundParticipant
	for _, ups := range fx.sim.Updates {
		parts := make([]protocol.RoundParticipant, len(ups))
		for i, u := range ups {
			parts[i] = protocol.RoundParticipant{ID: u.Participant, Weight: u.Weight, Params: u.Params}
		}
		out = append(out, parts)
	}
	return out
}

func jsonGet(ts *httptest.Server, path string, out any) error {
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func requireBitEqualScores(t *testing.T, stage string, got, want *protocol.ScoresSnapshot) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Skipped != want.Skipped || len(got.Scores) != len(want.Scores) {
		t.Fatalf("%s: snapshot %+v, want %+v", stage, got, want)
	}
	for i := range want.Scores {
		if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("%s: score %d = %x, want %x", stage, i,
				math.Float64bits(got.Scores[i]), math.Float64bits(want.Scores[i]))
		}
	}
}

// TestStreamingScoresEndToEnd is the subsystem's acceptance test: a
// fedsim-driven client streams rounds through a real durable server, the
// server crashes mid-stream and resumes bit-identically from the WAL with
// zero recomputation, the finished stream's ranking matches batch Shapley,
// and the truncation counters surface in /metrics.
func TestStreamingScoresEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildStreamFederation(t)
	stream := fx.wireRounds()
	dir := t.TempDir()
	ctx := context.Background()

	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	c := &Client{BaseURL: ts1.URL}
	if err := c.PublishEncoder(ctx, fx.enc); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishModel(ctx, fx.sim.Model); err != nil {
		t.Fatal(err)
	}

	// Scores before an evaluation set is registered: 409.
	if _, err := c.Scores(ctx, 0, 0); err == nil {
		t.Fatal("scores served before evaluation set registration")
	}
	if err := c.PublishRoundEval(ctx, fx.test); err != nil {
		t.Fatal(err)
	}

	cut := len(stream) / 2
	for round := 0; round < cut; round++ {
		resp, err := c.PushRound(ctx, round, stream[round])
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if resp.Round != round {
			t.Fatalf("round %d acknowledged as %d", round, resp.Round)
		}
	}
	// A duplicate round number must be rejected, not double-counted.
	if _, err := c.PushRound(ctx, 0, stream[0]); err == nil {
		t.Fatal("duplicate round accepted")
	}
	beforeCrash, err := c.Scores(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close() // crash: no graceful Close, no final snapshot — WAL only

	// Restart from the same data dir: scores must come back bit-identically
	// without a single coalition reconstruction.
	s2 := newDurable(t, dir)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer closeServer(t, s2)
	c = &Client{BaseURL: ts2.URL}
	afterCrash, err := c.Scores(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqualScores(t, "after WAL recovery", afterCrash, beforeCrash)
	var sr ScoresResponse
	if err := jsonGet(ts2, "/v1/scores", &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Evals != 0 {
		t.Fatalf("restored engine reports %d coalition evals, want 0 (pure WAL arithmetic)", sr.Evals)
	}

	// Resume the stream on the restarted server, long-polling the last
	// round's snapshot through the ?wait= path.
	for round := cut; round < len(stream); round++ {
		if _, err := c.PushRound(ctx, round, stream[round]); err != nil {
			t.Fatalf("round %d after restart: %v", round, err)
		}
	}
	// Re-push the final updates as one extra round: the global model did not
	// move, so between-round truncation must skip it.
	skipResp, err := c.PushRound(ctx, len(stream), stream[len(stream)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !skipResp.Skipped {
		t.Fatalf("identical round not skipped: %+v", skipResp)
	}
	final, err := c.Scores(ctx, len(stream)+1, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Rounds != len(stream)+1 || final.Skipped < 1 {
		t.Fatalf("final snapshot %+v, want %d rounds with skips", final, len(stream)+1)
	}

	// The interrupted, restarted stream must equal an uninterrupted local
	// engine over the same rounds — the whole-system determinism check.
	evalX, evalY := fx.enc.EncodeTable(fx.test)
	ref, err := rounds.New(rounds.Config{Model: fx.sim.Model, EvalX: evalX, EvalY: evalY})
	if err != nil {
		t.Fatal(err)
	}
	pushLocal := func(round int, parts []protocol.RoundParticipant) {
		frame, err := protocol.AppendRoundUpdate(nil, round, parts)
		if err != nil {
			t.Fatal(err)
		}
		f, _, _ := protocol.ParseFrame(frame)
		u, err := protocol.ParseRoundUpdate(f)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ref.Compute(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Apply(out); err != nil {
			t.Fatal(err)
		}
	}
	for round, parts := range stream {
		pushLocal(round, parts)
	}
	pushLocal(len(stream), stream[len(stream)-1])
	refSnap := ref.Snapshot()
	requireBitEqualScores(t, "vs uninterrupted engine", final, &refSnap)

	// Ranking must agree with retraining-based batch Shapley ground truth.
	oracle, err := valuation.NewOracle(fx.trainer, fx.parts, fx.test)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := valuation.ExactShapley(len(fx.parts), oracle.Utility)
	if err != nil {
		t.Fatal(err)
	}
	rho := stats.Spearman(final.Scores, truth)
	t.Logf("streamed %v vs batch %v (rho %.3f)", final.Scores, truth, rho)
	if rho < 0.9 {
		t.Fatalf("Spearman rho %.3f < 0.9 against batch Shapley", rho)
	}

	// The truncation telemetry must surface on /metrics.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ctfl_rounds_ingested_total",
		"ctfl_rounds_skipped_total",
		"ctfl_rounds_score_staleness_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics lacks %s", want)
		}
	}
	if strings.Contains(metrics, "ctfl_rounds_skipped_total 0\n") {
		t.Fatal("skip counter still zero after a truncated round")
	}
}

// TestRoundRouteValidation pins the ingest guards: bad frames, trailing
// bytes, missing prerequisites, and content-type negotiation on /v1/scores.
func TestRoundRouteValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildStreamFederation(t)
	stream := fx.wireRounds()
	ts := httptest.NewServer(New())
	defer ts.Close()
	ctx := context.Background()
	c := &Client{BaseURL: ts.URL}

	// Round updates before any engine exists: 409.
	if _, err := c.PushRound(ctx, 0, stream[0]); err == nil {
		t.Fatal("round accepted before evaluation set registration")
	}
	if err := c.PublishEncoder(ctx, fx.enc); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishModel(ctx, fx.sim.Model); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishRoundEval(ctx, fx.test); err != nil {
		t.Fatal(err)
	}

	// A structurally broken frame is a 400.
	frame, err := protocol.AppendRoundUpdate(nil, 0, stream[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)/2] ^= 0x40
	if resp := post(t, ts, "/v1/rounds", protocol.ContentTypeFrame, corrupt); resp.StatusCode != 400 {
		t.Fatalf("corrupt frame status %d", resp.StatusCode)
	}
	// Trailing bytes after the frame are a 400, same as uploads.
	if resp := post(t, ts, "/v1/rounds", protocol.ContentTypeFrame, append(append([]byte(nil), frame...), 0)); resp.StatusCode != 400 {
		t.Fatalf("trailing bytes status %d", resp.StatusCode)
	}
	// A parameter-count mismatch against the published model is rejected.
	bad := []protocol.RoundParticipant{{ID: 0, Weight: 1, Params: []float64{1, 2, 3}}}
	if _, err := c.PushRound(ctx, 0, bad); err == nil {
		t.Fatal("mismatched parameter count accepted")
	}

	if _, err := c.PushRound(ctx, 0, stream[0]); err != nil {
		t.Fatal(err)
	}
	// JSON negotiation: no Accept header yields the JSON envelope.
	var sr ScoresResponse
	if err := jsonGet(ts, "/v1/scores", &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Participants != len(fx.parts) || sr.Rounds != 1 || sr.Evals == 0 {
		t.Fatalf("JSON scores = %+v", sr)
	}
	// Re-registering the evaluation set resets the stream.
	if err := c.PublishRoundEval(ctx, fx.test); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Scores(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Rounds != 0 || len(snap.Scores) != 0 {
		t.Fatalf("stream not reset by re-registration: %+v", snap)
	}
}

// TestScoresWaitRequestCancellation is the rounds-path twin of the trace
// ?wait= regression test (TestWaitTraceRequestCancellationFreesSlot): a
// GET /v1/scores long-poll whose client disconnects mid-wait must unblock
// the handler promptly — request-context cancellation propagates into
// rounds.Engine.Wait — instead of holding the goroutine for the full wait
// duration.
func TestScoresWaitRequestCancellation(t *testing.T) {
	fx := buildFederation(t)
	s, err := NewWithOptions(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()
	publishAll(t, ts, fx)
	if resp := post(t, ts, "/v1/rounds", "text/csv", fx.testCSV); resp.StatusCode != http.StatusOK {
		t.Fatalf("round eval registration: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// round=999 can never be satisfied (nothing is pushed), so the handler
	// genuinely parks in Engine.Wait until the context dies.
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/scores?round=999&wait=30s", nil)
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		s.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(30 * time.Millisecond) // let the handler reach Engine.Wait
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler still blocked 5s after request cancellation; wait=30s would hold the goroutine")
	}
	// Disconnect and timeout share the fallback: the current snapshot is
	// still written (the poller may have raced a real answer).
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 snapshot fallback", rec.Code)
	}
	var sr ScoresResponse
	if err := json.NewDecoder(rec.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Rounds != 0 {
		t.Fatalf("snapshot rounds = %d, want 0 (nothing ingested)", sr.Rounds)
	}
}

// TestContributionGateOnServer wires the ContAvg defense through the full
// service: a gated server flags the worst participant on GET /v1/scores,
// surfaces the transition as a KindGate flight event and the
// ctfl_rounds_gated_total counter, and a WAL restore rebuilds the gate
// flags bit-identically (gate state is derived, never separately logged).
func TestContributionGateOnServer(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildStreamFederation(t)
	stream := fx.wireRounds()
	evalX, evalY := fx.enc.EncodeTable(fx.test)
	ctx := context.Background()

	pushLocal := func(e *rounds.Engine, round int, parts []protocol.RoundParticipant) {
		t.Helper()
		frame, err := protocol.AppendRoundUpdate(nil, round, parts)
		if err != nil {
			t.Fatal(err)
		}
		f, _, _ := protocol.ParseFrame(frame)
		u, err := protocol.ParseRoundUpdate(f)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Compute(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Apply(out); err != nil {
			t.Fatal(err)
		}
	}

	// Ungated reference run picks a threshold the worst participant is sure
	// to cross: halfway between the two lowest final scores.
	ref, err := rounds.New(rounds.Config{Model: fx.sim.Model, EvalX: evalX, EvalY: evalY})
	if err != nil {
		t.Fatal(err)
	}
	for round, parts := range stream {
		pushLocal(ref, round, parts)
	}
	final := append([]float64(nil), ref.Snapshot().Scores...)
	order := stats.ArgsortDesc(final)
	lowest, second := final[order[len(order)-1]], final[order[len(order)-2]]
	gate := &rounds.GateConfig{Threshold: (lowest + second) / 2, Warmup: 2, Hysteresis: 0.01}

	// Expected gate state: a local engine with the same gate and (default)
	// seed over the same stream.
	exp, err := rounds.New(rounds.Config{Model: fx.sim.Model, EvalX: evalX, EvalY: evalY, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	for round, parts := range stream {
		pushLocal(exp, round, parts)
	}
	expGated := exp.Gated()
	expEvents := exp.GateEvents()
	if len(expEvents) == 0 {
		t.Fatalf("threshold %.4f produced no gate transitions", gate.Threshold)
	}

	dir := t.TempDir()
	s1, err := NewWithOptions(Options{DataDir: dir, Logf: t.Logf, RoundGate: gate})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	c := &Client{BaseURL: ts1.URL}
	if err := c.PublishEncoder(ctx, fx.enc); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishModel(ctx, fx.sim.Model); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishRoundEval(ctx, fx.test); err != nil {
		t.Fatal(err)
	}
	for round, parts := range stream {
		if _, err := c.PushRound(ctx, round, parts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	var sr ScoresResponse
	if err := jsonGet(ts1, "/v1/scores", &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Gated) != len(expGated) {
		t.Fatalf("gated flags = %v, want %v", sr.Gated, expGated)
	}
	for i := range expGated {
		if sr.Gated[i] != expGated[i] {
			t.Fatalf("gated[%d] = %v, want %v (flags %v)", i, sr.Gated[i], expGated[i], sr.Gated)
		}
	}

	// The transition surfaced as a KindGate flight event and on /metrics.
	var ev EventsResponse
	if err := jsonGet(ts1, "/v1/events", &ev); err != nil {
		t.Fatal(err)
	}
	sawGateEvent := false
	for _, e := range ev.Events {
		if e.Kind == "gate" && e.Route == "rounds.gate" && strings.Contains(e.Err, "gated") {
			sawGateEvent = true
		}
	}
	if !sawGateEvent {
		t.Fatalf("no gate flight event in %d events", len(ev.Events))
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "ctfl_rounds_gated_total") {
		t.Fatal("/metrics lacks ctfl_rounds_gated_total")
	}
	if strings.Contains(metrics, "ctfl_rounds_gated_total 0\n") {
		t.Fatal("gate counter still zero after a gating transition")
	}
	ts1.Close() // crash without graceful close: WAL only

	// Restore: gate flags must rebuild from replayed outcomes alone.
	s2, err := NewWithOptions(Options{DataDir: dir, Logf: t.Logf, RoundGate: gate})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer closeServer(t, s2)
	var restored ScoresResponse
	if err := jsonGet(ts2, "/v1/scores", &restored); err != nil {
		t.Fatal(err)
	}
	requireBitEqualScores(t, "after WAL recovery", &restored.ScoresSnapshot, &sr.ScoresSnapshot)
	if len(restored.Gated) != len(expGated) {
		t.Fatalf("restored gated flags = %v, want %v", restored.Gated, expGated)
	}
	for i := range expGated {
		if restored.Gated[i] != expGated[i] {
			t.Fatalf("restored gated[%d] = %v, want %v", i, restored.Gated[i], expGated[i])
		}
	}
}
