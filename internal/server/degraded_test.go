package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/store"
)

func healthState(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDegradedModeRejectsWritesThenRecovers drives the full degraded-mode
// lifecycle with injected WAL failures: consecutive append failures trip
// degraded mode, writes are rejected with 503 + Retry-After while reads keep
// working, and a successful probe append clears it.
func TestDegradedModeRejectsWritesThenRecovers(t *testing.T) {
	fx := buildFederation(t)
	in := faults.New(43, map[string]faults.Site{
		// Threshold 2 + budget 3: two failures enter degraded mode, the first
		// probe burns the last fault, the second probe succeeds and recovers.
		store.FaultAppend: {ErrProb: 1, MaxFaults: 3},
	})
	s, err := NewWithOptions(Options{
		DataDir:           t.TempDir(),
		Logf:              t.Logf,
		Faults:            in,
		DegradedThreshold: 2,
		ProbeInterval:     time.Nanosecond, // every write attempt may probe
		RetryAfter:        2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	encBody := fx.encoderJSON
	post503 := func(wantRetryAfter bool) *http.Response {
		t.Helper()
		resp := post(t, ts, "/v1/encoder", "application/json", encBody)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
		if wantRetryAfter && resp.Header.Get("Retry-After") != "2" {
			t.Fatalf("Retry-After = %q, want %q", resp.Header.Get("Retry-After"), "2")
		}
		return resp
	}

	// Failures 1 and 2: WAL append fails, threshold reached on the second.
	post503(true)
	if deg, _ := healthState(t, ts)["degraded"].(bool); deg {
		t.Fatal("degraded after a single failure (threshold is 2)")
	}
	post503(true)
	if deg, _ := healthState(t, ts)["degraded"].(bool); !deg {
		t.Fatal("not degraded after hitting the threshold")
	}

	// Degraded: reads still served.
	if st := healthState(t, ts); st["ok"] != true {
		t.Fatalf("healthz failed while degraded: %v", st)
	}

	// Write 3: the recovery probe burns the last injected fault and fails,
	// so the write is still rejected.
	post503(true)
	// Write 4: probe succeeds (fault budget exhausted), mode clears, and the
	// write itself goes through.
	resp := post(t, ts, "/v1/encoder", "application/json", encBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-recovery status = %d, want 204", resp.StatusCode)
	}
	if deg, _ := healthState(t, ts)["degraded"].(bool); deg {
		t.Fatal("still degraded after successful probe + write")
	}

	// The lifecycle is observable: entered exactly once, gauge back to 0.
	snap := s.reg.Snapshot()
	if v, _ := snap["ctfl_server_degraded_entered_total"].(int64); v != 1 {
		t.Fatalf("degraded_entered_total = %v, want 1", snap["ctfl_server_degraded_entered_total"])
	}
	if v, _ := snap["ctfl_server_degraded"].(float64); v != 0 {
		t.Fatalf("degraded gauge = %v, want 0", snap["ctfl_server_degraded"])
	}
}

// TestWaitTraceRequestCancellationFreesSlot is the ?wait= audit regression
// test: a client that disconnects mid-wait must unblock the handler promptly
// (request-context cancellation propagates into jobs.Wait) instead of
// holding the goroutine for the full wait duration.
func TestWaitTraceRequestCancellationFreesSlot(t *testing.T) {
	fx := buildFederation(t)
	s, err := NewWithOptions(Options{Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()
	publishAll(t, ts, fx)

	// Park the only worker so the traced job cannot start, forcing the
	// ?wait= path to actually block on jobs.Wait.
	release := make(chan struct{})
	blocker, err := s.engine.Submit("", func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/trace?wait=30s&tau=0.9", bytes.NewReader(fx.testCSV))
	req.Header.Set("Content-Type", "text/csv")
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		s.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(30 * time.Millisecond) // let the handler reach jobs.Wait
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler still blocked 5s after request cancellation; wait=30s would hold the slot")
	}
	// The job was only waited on, not abandoned: the handler falls back to
	// the async 202 answer so the client could re-poll after reconnecting.
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 fallback", rec.Code)
	}
	close(release)
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if _, err := s.engine.Wait(waitCtx, blocker); err != nil {
		t.Fatal(err)
	}
}
