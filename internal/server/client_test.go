package server

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/rules"
	"repro/internal/stats"
)

func TestClientLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	ctx := context.Background()
	tab := dataset.TicTacToe()
	r := stats.NewRNG(9)
	train, test := tab.Split(r, 0.25)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	parts := fl.PartitionSkewLabel(train, 3, 0.8, r)
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 1, LocalEpochs: 6, Parallel: true,
		Model: nn.Config{Hidden: []int{32}, Grafting: true, Seed: 4},
	})
	model, err := trainer.Train(parts)
	if err != nil {
		t.Fatal(err)
	}
	rs := rules.Extract(model, enc)

	ts := httptest.NewServer(New())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}

	// Errors surface as typed messages before setup.
	if _, err := cl.Rules(ctx); err == nil {
		t.Fatal("rules before setup should error")
	}

	if err := cl.PublishEncoder(ctx, enc); err != nil {
		t.Fatal(err)
	}
	if err := cl.PublishModel(ctx, model); err != nil {
		t.Fatal(err)
	}
	for pi, p := range parts {
		acts, _ := rs.ActivationsTable(p.Data)
		up := &protocol.Upload{Participant: pi, RuleWidth: rs.Width()}
		for i, a := range acts {
			up.Records = append(up.Records, protocol.Record{
				Label: p.Data.Instances[i].Label, Activations: a,
			})
		}
		if err := cl.UploadActivations(ctx, up); err != nil {
			t.Fatal(err)
		}
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h["participants"].(float64) != 3 {
		t.Fatalf("health = %v", h)
	}

	tr, err := cl.Trace(ctx, test, 0.9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Micro) != 3 || tr.Accuracy <= 0 {
		t.Fatalf("trace = %+v", tr)
	}

	// HTTP scores must match an equivalent in-process trace exactly.
	local := core2Scores(t, rs, parts, test)
	for i := range local {
		if diff := tr.Micro[i] - local[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("HTTP micro %v vs local %v", tr.Micro, local)
		}
	}

	rls, err := cl.Rules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rls) == 0 {
		t.Fatal("no rules returned")
	}
}

func TestClientErrorPaths(t *testing.T) {
	ctx := context.Background()
	// Unreachable server: transport errors surface.
	dead := &Client{BaseURL: "http://127.0.0.1:1"}
	if err := dead.PublishEncoder(ctx, &dataset.Encoder{}); err == nil {
		t.Fatal("unreachable PublishEncoder should error")
	}
	if _, err := dead.Health(ctx); err == nil {
		t.Fatal("unreachable Health should error")
	}
	if _, err := dead.Rules(ctx); err == nil {
		t.Fatal("unreachable Rules should error")
	}
	if _, err := dead.Trace(ctx, &dataset.Table{Schema: tinySchema()}, 0.9, 2); err == nil {
		t.Fatal("unreachable Trace should error")
	}
	m, err := nn.New(3, nn.Config{Hidden: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dead.PublishModel(ctx, m); err == nil {
		t.Fatal("unreachable PublishModel should error")
	}
	if err := dead.UploadActivations(ctx, &protocol.Upload{RuleWidth: 4}); err == nil {
		t.Fatal("unreachable UploadActivations should error")
	}

	// HTTP error statuses become typed errors (conflict before setup).
	ts := httptest.NewServer(New())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	if err := cl.UploadActivations(ctx, &protocol.Upload{RuleWidth: 4}); err == nil {
		t.Fatal("uploads before setup should error through client")
	}
	if _, err := cl.Trace(ctx, &dataset.Table{Schema: tinySchema()}, 0.9, 2); err == nil {
		t.Fatal("trace before setup should error through client")
	}
}

func tinySchema() *dataset.Schema {
	return &dataset.Schema{
		Name:   "tiny",
		Labels: [2]string{"n", "y"},
		Features: []dataset.Feature{
			{Name: "f", Kind: dataset.Discrete, Categories: []string{"a", "b"}},
		},
	}
}

func core2Scores(t *testing.T, rs *rules.Set, parts []*fl.Participant, test *dataset.Table) []float64 {
	t.Helper()
	tr := core.NewTracer(rs, parts, core.Config{TauW: 0.9, Delta: 2})
	return tr.Trace(test).MicroScores()
}
