package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/protocol"
	"repro/internal/rounds"
	"repro/internal/stats"
	"repro/internal/store"
)

// clusterNode couples a server with a pre-allocated listener, so ring
// member URLs are known before any server is constructed (Options fix
// the topology at construction time).
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
	url string
}

// newListeners pre-allocates n loopback listeners and returns their
// base URLs.
func newListeners(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	ls := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	return ls, urls
}

// startNode builds a server with the given options and serves it on the
// pre-allocated listener.
func startNode(t *testing.T, l net.Listener, url string, opts Options) *clusterNode {
	t.Helper()
	opts.Logf = t.Logf
	s, err := NewWithOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s)
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	return &clusterNode{srv: s, ts: ts, url: url}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// clusterHealth returns the "cluster" block of a node's /healthz.
func clusterHealth(t *testing.T, url string) map[string]any {
	t.Helper()
	var st map[string]any
	getJSON(t, url+"/healthz", &st)
	cl, _ := st["cluster"].(map[string]any)
	if cl == nil {
		t.Fatalf("healthz has no cluster block: %v", st)
	}
	return cl
}

// cheapEncoderJSON builds an encoder payload without any training.
func cheapEncoderJSON(t *testing.T) []byte {
	t.Helper()
	enc, err := dataset.NewEncoder(dataset.TicTacToe().Schema, 4, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestShardRoutingAndClientRedirect pins the ring contract end to end: a
// node answers 421 + X-CTFL-Shard for a federation it does not own, the
// client ring-routes straight to the owner, and a ring-less client still
// converges by learning the redirect.
func TestShardRoutingAndClientRedirect(t *testing.T) {
	ls, urls := newListeners(t, 3)
	nodes := make([]*clusterNode, len(ls))
	for i, l := range ls {
		nodes[i] = startNode(t, l, urls[i], Options{
			ClusterSelf:  urls[i],
			ClusterPeers: urls,
			SLOInterval:  -1,
		})
		defer nodes[i].ts.Close()
		defer closeServer(t, nodes[i].srv)
	}

	// Pick a federation id owned by node 0, using the same ring the
	// servers built.
	ring, err := cluster.New(urls, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fed := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("fed-%d", i)
		if ring.Lookup(cand) == urls[0] {
			fed = cand
			break
		}
	}
	if fed == "" {
		t.Fatal("no federation id hashed to node 0 in 1000 tries")
	}
	encJSON := cheapEncoderJSON(t)

	// A misdirected request is refused before any effect, with the owner
	// named in X-CTFL-Shard.
	req, err := http.NewRequest(http.MethodPost, urls[1]+"/v1/encoder", bytes.NewReader(encJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderFed, fed)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("wrong-shard write status = %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderShard); got != urls[0] {
		t.Fatalf("X-CTFL-Shard = %q, want owner %q", got, urls[0])
	}
	var st map[string]any
	getJSON(t, urls[1]+"/healthz", &st)
	if st["encoder"] != false {
		t.Fatal("misdirected write had an effect on the wrong shard")
	}

	// Fed-addressed reads are fenced the same way.
	req, _ = http.NewRequest(http.MethodGet, urls[2]+"/v1/rules", nil)
	req.Header.Set(HeaderFed, fed)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("wrong-shard read status = %d, want 421", resp.StatusCode)
	}

	// A ring-aware client routes straight to the owner: no redirect needed
	// even with a wrong BaseURL.
	ctx := context.Background()
	c := &Client{BaseURL: urls[1], Shards: urls, Fed: fed}
	var enc dataset.Encoder
	if err := json.Unmarshal(encJSON, &enc); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishEncoder(ctx, &enc); err != nil {
		t.Fatal(err)
	}
	getJSON(t, urls[0]+"/healthz", &st)
	if st["encoder"] != true {
		t.Fatal("ring-routed write did not land on the owner")
	}

	// A ring-less client pointed at the wrong node converges by learning
	// the 421 redirect and retrying.
	c2 := &Client{BaseURL: urls[1], Fed: fed, Retry: &ClientRetryPolicy{MaxAttempts: 3}}
	if err := c2.PublishEncoder(ctx, &enc); err != nil {
		t.Fatalf("redirect-following client failed: %v", err)
	}

	// Requests without a federation id are served locally (single-node
	// compatibility).
	resp = post(t, nodes[1].ts, "/v1/encoder", "application/json", encJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unaddressed write status = %d, want 204", resp.StatusCode)
	}
}

// replicateFrame POSTs one replicated-WAL-segment frame and returns the
// response.
func replicateFrame(t *testing.T, url string, start uint64, reset bool, recs []protocol.WALRecord) *http.Response {
	t.Helper()
	frame, err := protocol.AppendWALSegment(nil, start, reset, recs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/replicate", protocol.ContentTypeFrame, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestReplicateCursorProtocol pins the follower's ingress contract with
// hand-built segments: cursor mismatches answer 409 {have}, matching
// segments apply through the replay path, resets rebuild from scratch,
// writes are fenced with the leader's URL, and non-followers refuse
// pushes outright.
func TestReplicateCursorProtocol(t *testing.T) {
	ls, urls := newListeners(t, 1)
	leaderURL := "http://127.0.0.1:1" // never dialed: FollowInterval is huge
	n := startNode(t, ls[0], urls[0], Options{
		LeaderURL:      leaderURL,
		FollowInterval: time.Hour,
		SLOInterval:    -1,
	})
	defer n.ts.Close()
	defer closeServer(t, n.srv)

	encJSON := cheapEncoderJSON(t)
	rec := []protocol.WALRecord{{Type: store.EventEncoder, Payload: encJSON}}

	// Ahead-of-cursor segment: refused with the follower's cursor.
	resp := replicateFrame(t, urls[0], 5, false, rec)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cursor-mismatch status = %d, want 409", resp.StatusCode)
	}
	var cur struct {
		Have uint64 `json:"have"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cur.Have != 0 {
		t.Fatalf("409 cursor = %d, want 0", cur.Have)
	}

	// Matching segment: applied through the replay path.
	resp = replicateFrame(t, urls[0], 0, false, rec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("apply status = %d, want 204", resp.StatusCode)
	}
	cl := clusterHealth(t, urls[0])
	if cl["role"] != "follower" || cl["applied"] != float64(1) || cl["promoted"] != false {
		t.Fatalf("follower cluster health = %v", cl)
	}
	var st map[string]any
	getJSON(t, urls[0]+"/healthz", &st)
	if st["encoder"] != true {
		t.Fatal("replicated encoder not applied")
	}

	// Direct writes are fenced to the leader.
	resp = post(t, n.ts, "/v1/encoder", "application/json", encJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced write status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderShard); got != leaderURL {
		t.Fatalf("fence X-CTFL-Shard = %q, want leader %q", got, leaderURL)
	}

	// A garbage body is a 400, not a crash.
	resp, err := http.Post(urls[0]+"/v1/replicate", protocol.ContentTypeFrame, bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage segment status = %d, want 400", resp.StatusCode)
	}

	// A reset restatement discards the incarnation and rebuilds.
	resp = replicateFrame(t, urls[0], 0, true, rec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("reset status = %d, want 204", resp.StatusCode)
	}
	if cl := clusterHealth(t, urls[0]); cl["applied"] != float64(1) {
		t.Fatalf("post-reset cursor = %v, want 1", cl["applied"])
	}

	// A node that is not a follower refuses pushes (fencing).
	solo := New()
	defer closeServer(t, solo)
	tsSolo := httptest.NewServer(solo)
	defer tsSolo.Close()
	resp = replicateFrame(t, tsSolo.URL, 0, false, rec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("non-follower push status = %d, want 403", resp.StatusCode)
	}
}

// TestLeaderReplicatesAndResyncs drives the leader's synchronous push
// through a real follower: every acknowledged mutation lands on both
// nodes, a follower restart resyncs through the 409 cursor protocol, and
// a dead follower fails leader writes before any local effect (the
// acknowledged-write-loss invariant's write-path half).
func TestLeaderReplicatesAndResyncs(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ls, urls := newListeners(t, 2)
	leaderURL, followerURL := urls[0], urls[1]
	dirA, dirB := t.TempDir(), t.TempDir()

	follower := startNode(t, ls[1], followerURL, Options{
		DataDir:        dirB,
		LeaderURL:      leaderURL,
		FollowInterval: time.Hour, // promotion is the chaos test's concern
		SLOInterval:    -1,
	})
	leader := startNode(t, ls[0], leaderURL, Options{
		DataDir:     dirA,
		ReplicaURL:  followerURL,
		ReplTimeout: 2 * time.Second,
		SLOInterval: -1,
	})
	defer closeServer(t, leader.srv)

	publishAll(t, leader.ts, fx)
	wantApplied := leader.srv.store.Sequence()
	if wantApplied == 0 {
		t.Fatal("leader retained log empty after publishes")
	}
	if cl := clusterHealth(t, followerURL); cl["applied"] != float64(wantApplied) {
		t.Fatalf("follower applied = %v, want %d", cl["applied"], wantApplied)
	}

	// The follower serves the replicated state on its read paths.
	var leaderRules, followerRules []RuleJSON
	getJSON(t, leaderURL+"/v1/rules", &leaderRules)
	getJSON(t, followerURL+"/v1/rules", &followerRules)
	if len(followerRules) == 0 || len(followerRules) != len(leaderRules) {
		t.Fatalf("follower rules %d, leader %d", len(followerRules), len(leaderRules))
	}
	for i := range leaderRules {
		if followerRules[i] != leaderRules[i] {
			t.Fatalf("rule %d diverged: %+v vs %+v", i, followerRules[i], leaderRules[i])
		}
	}

	// Restart the follower: its in-memory cursor resets to 0, so the next
	// leader write must resync through the 409 protocol and still land.
	follower.ts.Close()
	closeServer(t, follower.srv)
	l2, err := net.Listen("tcp", follower.ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	follower = startNode(t, l2, followerURL, Options{
		DataDir:        dirB,
		LeaderURL:      leaderURL,
		FollowInterval: time.Hour,
		SLOInterval:    -1,
	})
	if cl := clusterHealth(t, followerURL); cl["applied"] != float64(0) {
		t.Fatalf("restarted follower cursor = %v, want 0", cl["applied"])
	}
	resp := post(t, leader.ts, "/v1/encoder", "application/json", fx.encoderJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-restart write status = %d, want 204", resp.StatusCode)
	}
	if cl := clusterHealth(t, followerURL); cl["applied"] != float64(leader.srv.store.Sequence()) {
		t.Fatalf("resynced follower applied = %v, want %d", cl["applied"], leader.srv.store.Sequence())
	}
	resyncs, _ := leader.srv.reg.Snapshot()["ctfl_repl_resyncs_total"].(int64)
	if resyncs == 0 {
		t.Fatal("resync counter still zero after a cursor mismatch")
	}

	// Kill the follower outright: leader writes must now fail with no
	// local effect — a write is acknowledged on both nodes or on neither.
	follower.ts.Close()
	closeServer(t, follower.srv)
	verBefore := leader.srv.st.version
	resp = post(t, leader.ts, "/v1/model", "application/octet-stream", fx.modelBytes)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write with dead follower status = %d, want 503", resp.StatusCode)
	}
	leader.ts.Close()
	if leader.srv.st.version != verBefore {
		t.Fatalf("failed replication still mutated leader state (version %d -> %d)",
			verBefore, leader.srv.st.version)
	}
}

// TestChaosLeaderFailover is the cluster acceptance test: a leader is
// killed mid-round-ingest, the follower promotes itself on replication
// lag burn, the stream finishes against the promoted follower, and the
// scores are bit-identical to an uninterrupted single engine — with no
// acknowledged round lost, and the whole history replayable from the
// follower's own WAL.
func TestChaosLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildStreamFederation(t)
	stream := fx.wireRounds()
	ls, urls := newListeners(t, 2)
	leaderURL, followerURL := urls[0], urls[1]
	dirA, dirB := t.TempDir(), t.TempDir()
	ctx := context.Background()

	follower := startNode(t, ls[1], followerURL, Options{
		DataDir:        dirB,
		LeaderURL:      leaderURL,
		FollowInterval: 20 * time.Millisecond,
		ReplLagBound:   0.05,
		ReplTimeout:    500 * time.Millisecond,
		SLOInterval:    -1, // the follow loop ticks the evaluator itself
	})
	defer follower.ts.Close()
	defer closeServer(t, follower.srv)
	leader := startNode(t, ls[0], leaderURL, Options{
		DataDir:     dirA,
		ReplicaURL:  followerURL,
		ReplTimeout: 2 * time.Second,
		SLOInterval: -1,
	})

	c := &Client{BaseURL: leaderURL}
	if err := c.PublishEncoder(ctx, fx.enc); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishModel(ctx, fx.sim.Model); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishRoundEval(ctx, fx.test); err != nil {
		t.Fatal(err)
	}

	// Ingest the first half of the stream, tracking what was acknowledged.
	cut := len(stream) / 2
	acked := 0
	for round := 0; round < cut; round++ {
		if _, err := c.PushRound(ctx, round, stream[round]); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		acked++
	}

	// Kill the leader mid-ingest: no graceful Close, no final snapshot.
	leader.ts.CloseClientConnections()
	leader.ts.Close()

	// The follower must promote itself on replication-lag burn.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if cl := clusterHealth(t, followerURL); cl["promoted"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower not promoted 15s after leader death")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Zero acknowledged-write loss: every acknowledged round is already on
	// the promoted follower.
	fc := &Client{BaseURL: followerURL}
	atPromotion, err := fc.Scores(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if atPromotion.Rounds != acked {
		t.Fatalf("promoted follower has %d rounds, %d were acknowledged", atPromotion.Rounds, acked)
	}

	// Finish the stream against the promoted follower.
	for round := cut; round < len(stream); round++ {
		if _, err := fc.PushRound(ctx, round, stream[round]); err != nil {
			t.Fatalf("round %d on promoted follower: %v", round, err)
		}
	}
	final, err := fc.Scores(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The failed-over stream must equal an uninterrupted local engine —
	// bit-identical, not approximately.
	evalX, evalY := fx.enc.EncodeTable(fx.test)
	ref, err := rounds.New(rounds.Config{Model: fx.sim.Model, EvalX: evalX, EvalY: evalY})
	if err != nil {
		t.Fatal(err)
	}
	for round, parts := range stream {
		frame, err := protocol.AppendRoundUpdate(nil, round, parts)
		if err != nil {
			t.Fatal(err)
		}
		f, _, _ := protocol.ParseFrame(frame)
		u, err := protocol.ParseRoundUpdate(f)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ref.Compute(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Apply(out); err != nil {
			t.Fatal(err)
		}
	}
	refSnap := ref.Snapshot()
	requireBitEqualScores(t, "failed-over stream vs uninterrupted engine", final, &refSnap)

	// The promotion is a pinned flight event on the follower.
	var evs EventsResponse
	getJSON(t, followerURL+"/v1/events?kind=cluster", &evs)
	foundPromotion := false
	for _, ev := range evs.Events {
		if ev.Route == "cluster.failover" {
			foundPromotion = true
		}
	}
	if !foundPromotion {
		t.Fatal("no cluster.failover flight event on the promoted follower")
	}

	// The follower's own WAL replays the whole failed-over history
	// bit-identically — durability survived the failover.
	follower.ts.Close()
	closeServer(t, follower.srv)
	s2 := newDurable(t, dirB)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer closeServer(t, s2)
	replayed, err := (&Client{BaseURL: ts2.URL}).Scores(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqualScores(t, "replay from follower WAL", replayed, final)
}
