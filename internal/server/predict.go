package server

// POST /v1/predict — the compiled-inference serving path. The published
// model's nn.Binarized snapshot (compiled once per model publish) scores
// batches of encoded {0,1} feature rows. The endpoint's native format is
// the binary v2 predict frame; JSON is negotiable on both sides:
//
//	request   Content-Type application/x-ctfl (or absent) → binary frame
//	          Content-Type application/json → {"rows": [[0,1,...], ...]}
//	response  Accept containing application/x-ctfl → binary frame
//	          otherwise → {"rows": n, "scores": [...]}
//
// The handler is allocation-lean: request body, decoded rows, scores, and
// the response frame all come from a pooled scratch set, and scoring runs
// through the evaluator's own pooled buffers — steady state, the only
// per-request allocations are net/http's.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/protocol"
)

// predictScratch is one request's reusable buffer set.
type predictScratch struct {
	body   []byte
	rows   []float32
	scores []float64
	out    []byte
}

var predictPool = sync.Pool{New: func() any { return new(predictScratch) }}

// appendAll reads r to EOF into dst, reusing dst's capacity and pre-growing
// to sizeHint (when positive) so a known Content-Length reads in one pass.
func appendAll(dst []byte, r io.Reader, sizeHint int64) ([]byte, error) {
	if sizeHint > int64(cap(dst)) {
		grown := make([]byte, len(dst), sizeHint)
		copy(grown, dst)
		dst = grown
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.injectFault(w, r) {
		return
	}
	ct, err := requireContentType(r, protocol.ContentTypeFrame, "application/json")
	if err != nil {
		httpError(w, http.StatusUnsupportedMediaType, err)
		return
	}

	s.mu.RLock()
	bin := s.st.bin
	s.mu.RUnlock()
	if bin == nil {
		httpError(w, http.StatusConflict, errors.New("publish encoder and model first"))
		return
	}
	width := bin.InDim()

	t0 := time.Now()
	s.predictInFlight.Add(1)
	defer s.predictInFlight.Add(-1)
	defer s.predictSeconds.ObserveSince(t0)

	sc := predictPool.Get().(*predictScratch)
	defer predictPool.Put(sc)

	hint := min(r.ContentLength, s.opts.MaxBodyBytes)
	body, err := appendAll(sc.body[:0], http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes), hint)
	sc.body = body
	if err != nil {
		httpError(w, maxBytesCode(err, http.StatusBadRequest), err)
		return
	}

	rows := sc.rows[:0]
	if ct == "application/json" {
		var in struct {
			Rows [][]float64 `json:"rows"`
		}
		if err := json.Unmarshal(body, &in); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		for i, row := range in.Rows {
			if len(row) != width {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("row %d has %d features, model takes %d", i, len(row), width))
				return
			}
			for _, v := range row {
				rows = append(rows, float32(v))
			}
		}
	} else {
		f, rest, err := protocol.ParseFrame(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if len(rest) != 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("%d trailing bytes after predict frame", len(rest)))
			return
		}
		req, err := protocol.ParsePredictRequest(f)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if req.Width != width {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("predict width %d, model takes %d", req.Width, width))
			return
		}
		rows = req.AppendRows(rows)
	}
	sc.rows = rows
	for i, v := range rows {
		if v != 0 && v != 1 {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("feature value %g at offset %d: inputs must be the encoder's {0,1} predicates", v, i))
			return
		}
	}

	n := len(rows) / width
	scores := sc.scores
	if cap(scores) < n {
		scores = make([]float64, n)
	}
	scores = scores[:n]
	sc.scores = scores
	bin.ScoreBatchFloat32(rows, scores)
	s.predictRows.Add(int64(n))

	if acceptsFrame(r) {
		out := protocol.AppendPredictResponse(sc.out[:0], scores)
		sc.out = out
		w.Header().Set("Content-Type", protocol.ContentTypeFrame)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(out)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": n, "scores": scores})
}
