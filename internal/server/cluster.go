package server

// Cluster layer: consistent-hash shard routing, synchronous leader →
// follower WAL replication, and burn-rate-driven failover.
//
// Sharding. Every node in a cluster is configured with the full ring
// membership (Options.ClusterPeers) and its own public URL
// (Options.ClusterSelf). Clients stamp requests with the federation id
// they address (X-CTFL-Fed); a node that does not own that id on the
// ring answers 421 Misdirected Request with the owner's URL in
// X-CTFL-Shard, and the client re-routes. Ownership is decided by the
// shared deterministic ring (internal/cluster), so clients that build
// the same ring locally almost never pay the redirect.
//
// Replication. A leader (Options.ReplicaURL set) ships every persist
// batch to its follower as a replicated-WAL-segment frame (protocol
// type 8) BEFORE appending locally, and fails the client's write if the
// follower did not acknowledge. That ordering preserves persistLocked's
// contract — a reported failure happens before any local effect — and
// gives the acknowledged-write-loss invariant: a write the client saw
// succeed is durable on both nodes. The cost of the ordering is that a
// crash between follower-ack and local append can leave the follower
// *ahead*; the cursor protocol below absorbs that, because a client
// retry regenerates byte-identical events (round computation is
// deterministic, upload frames are persisted verbatim) and the
// follower's cursor check turns the re-push into a resync.
//
// Cursor protocol. The follower counts records applied this incarnation
// (replApplied, in memory only). A segment whose start does not equal
// that count is refused with 409 {have}; the leader then re-feeds from
// `have` out of its retained log (store.EventsFrom), or — when that
// cursor is not addressable in the current log incarnation, e.g. after
// the leader compacted and restarted — ships a reset segment restating
// the entire retained log, which the follower applies to a wiped state.
//
// Failover. The follower probes the leader's /healthz every
// FollowInterval and feeds "seconds since last successful contact" into
// the replication_lag gauge. A burn-rate breach of that objective (the
// same SLO machinery that drives degraded mode) promotes the follower:
// it stops refusing writes, and refuses replication pushes from the
// deposed leader (fencing) — so a partitioned old leader can no longer
// acknowledge writes, which is what makes the invariant hold through
// failover.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/protocol"
	"repro/internal/store"
)

// HeaderFed carries the federation id a request addresses; the shard
// gate checks it against the ring.
const HeaderFed = "X-CTFL-Fed"

// HeaderShard carries the URL of the node that should have received the
// request: the ring owner on a 421, the shard leader on a follower's 503.
const HeaderShard = "X-CTFL-Shard"

// FaultReplicate is the fault-injection site on the leader's replication
// push: an injected error fails the client's write before any local
// effect, exactly like an unreachable follower.
const FaultReplicate = "cluster.replicate"

// FaultPartition is the fault-injection site on the follower's leader
// health probe: an injected error simulates a network partition without
// touching the wire, driving the replication_lag objective toward
// promotion.
const FaultPartition = "cluster.partition"

// errFollower is the rejection mutating requests receive on a follower;
// the response carries the leader's URL in X-CTFL-Shard.
var errFollower = errors.New("server: follower: writes go to the shard leader")

// initCluster validates the cluster options, builds the shard ring, and
// registers the replication instruments. Called before registerSLOs so
// the replication_lag gauge exists when the objective is declared.
func (s *Server) initCluster() error {
	opts := s.opts
	s.replLag = s.reg.Gauge("ctfl_repl_lag_seconds",
		"seconds since the follower last heard from its leader")
	s.replSegments = s.reg.Counter("ctfl_repl_segments_total",
		"replicated WAL segments acknowledged by the follower")
	s.replFailures = s.reg.Counter("ctfl_repl_failures_total",
		"replication pushes that failed (follower unreachable or refusing)")
	s.replResyncs = s.reg.Counter("ctfl_repl_resyncs_total",
		"replication cursor resyncs (catch-up suffixes or reset restatements)")
	s.promotions = s.reg.Counter("ctfl_cluster_promotions_total",
		"follower promotions to leader on replication_lag SLO burn")

	if len(opts.ClusterPeers) > 0 {
		if opts.ClusterSelf == "" {
			return errors.New("server: ClusterPeers set without ClusterSelf")
		}
		r, err := cluster.New(opts.ClusterPeers, cluster.Config{})
		if err != nil {
			return fmt.Errorf("server: cluster ring: %w", err)
		}
		if !r.Contains(opts.ClusterSelf) {
			return fmt.Errorf("server: ClusterSelf %q is not in ClusterPeers", opts.ClusterSelf)
		}
		s.ring = r
	}
	if opts.ReplicaURL != "" && opts.LeaderURL != "" {
		return errors.New("server: a node cannot set both ReplicaURL (leader) and LeaderURL (follower)")
	}
	if opts.ReplicaURL != "" && opts.DataDir == "" {
		return errors.New("server: replication requires DataDir (the retained log feeds resyncs)")
	}
	if opts.ReplicaURL != "" || opts.LeaderURL != "" {
		s.clusterClient = &http.Client{Timeout: opts.ReplTimeout}
	}
	if opts.LeaderURL != "" {
		s.following = true
		s.lastLeaderContact = time.Now()
	}
	return nil
}

// clusterExempt lists the routes the shard gate never fences: node-local
// observability, the replication ingress itself, and liveness — an
// operator's curl or a monitor's scrape must reach any node directly.
func clusterExempt(pattern string) bool {
	switch pattern {
	case "/healthz", "/metrics", "/v1/replicate", "/v1/stats", "/v1/events",
		"/v1/version", "/v1/debug/bundle", "/v1/traces/recent":
		return true
	}
	return false
}

// clusterGate enforces shard ownership and the follower write fence in
// the route middleware, before the handler runs (so a misdirected
// request has no effect and is always safe to re-route). Reports whether
// it answered the request.
func (s *Server) clusterGate(w http.ResponseWriter, r *http.Request, pattern string) bool {
	if s.ring == nil && s.opts.LeaderURL == "" {
		return false
	}
	if clusterExempt(pattern) {
		return false
	}
	if s.ring != nil {
		if fed := r.Header.Get(HeaderFed); fed != "" {
			if owner := s.ring.Lookup(fed); owner != s.opts.ClusterSelf {
				w.Header().Set(HeaderShard, owner)
				httpError(w, http.StatusMisdirectedRequest,
					fmt.Errorf("federation %q is owned by shard %s", fed, owner))
				return true
			}
		}
	}
	if r.Method != http.MethodGet && s.opts.LeaderURL != "" {
		s.mu.RLock()
		following := s.following
		s.mu.RUnlock()
		if following {
			w.Header().Set(HeaderShard, s.opts.LeaderURL)
			s.unavailable(w, errFollower)
			return true
		}
	}
	return false
}

// walRecords converts a persist batch to wire records. Nop probes carry
// no state and are never replicated, matching the retained log's
// numbering (store.Sequence excludes them too).
func walRecords(evs []store.Event) []protocol.WALRecord {
	recs := make([]protocol.WALRecord, 0, len(evs))
	for _, ev := range evs {
		if ev.Type == store.EventNop {
			continue
		}
		recs = append(recs, protocol.WALRecord{Type: ev.Type, Payload: ev.Payload})
	}
	return recs
}

// replCursorError is the follower's 409 answer decoded: its cursor does
// not match the pushed segment's start sequence.
type replCursorError struct{ Have uint64 }

func (e *replCursorError) Error() string {
	return fmt.Sprintf("replica cursor at %d", e.Have)
}

// pushSegment ships one replicated-WAL-segment frame to the follower and
// decodes its verdict: nil on ack, *replCursorError on a cursor
// mismatch, opaque error otherwise.
func (s *Server) pushSegment(start uint64, reset bool, recs []protocol.WALRecord) error {
	frame, err := protocol.AppendWALSegment(nil, start, reset, recs)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, s.opts.ReplicaURL+"/v1/replicate", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", protocol.ContentTypeFrame)
	resp, err := s.clusterClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusConflict:
		var c struct {
			Have uint64 `json:"have"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
			return fmt.Errorf("replica answered 409 with unreadable cursor: %w", err)
		}
		return &replCursorError{Have: c.Have}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyCap))
		return fmt.Errorf("replica answered status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// resyncFrom re-feeds the follower from its reported cursor, falling
// back to a full reset restatement when that cursor is not addressable
// in this log incarnation (the leader compacted and restarted, so the
// retained log is a minimal restatement, not the original history).
func (s *Server) resyncFrom(have uint64) error {
	evs, _, ok := s.store.EventsFrom(have)
	if !ok {
		all, _, _ := s.store.EventsFrom(0)
		return s.pushSegment(0, true, walRecords(all))
	}
	if len(evs) == 0 {
		return nil
	}
	return s.pushSegment(have, false, walRecords(evs))
}

// replicateLocked synchronously ships a mutation's events to the
// follower before they touch the local WAL: an acknowledged write lands
// on both nodes or on neither. Caller holds the write lock; an error
// here fails the client's request before any local effect, so a retry
// converges (the follower's cursor check absorbs the re-push).
func (s *Server) replicateLocked(evs []store.Event) error {
	if s.opts.ReplicaURL == "" {
		return nil
	}
	if err := s.opts.Faults.Err(FaultReplicate); err != nil {
		s.replFailures.Inc()
		s.recordClusterEvent(flight.OutcomeError, FaultReplicate, err.Error(), 0)
		return fmt.Errorf("server: replication: %w", err)
	}
	recs := walRecords(evs)
	if len(recs) == 0 {
		return nil
	}
	start := s.store.Sequence()
	err := s.pushSegment(start, false, recs)
	var cur *replCursorError
	if errors.As(err, &cur) {
		s.replResyncs.Inc()
		s.recordClusterEvent(flight.OutcomeDegraded, "cluster.resync",
			fmt.Sprintf("follower at %d, leader log at %d", cur.Have, start), int64(cur.Have))
		if err = s.resyncFrom(cur.Have); err == nil {
			err = s.pushSegment(start, false, recs)
		}
	}
	if err != nil {
		s.replFailures.Inc()
		s.recordClusterEvent(flight.OutcomeError, FaultReplicate, err.Error(), int64(start))
		return fmt.Errorf("server: replication: %w", err)
	}
	s.replSegments.Inc()
	return nil
}

// handleReplicate is the follower's replication ingress: it validates
// the segment, checks the cursor, WAL-logs the records locally, and
// applies them through the same applyEvent path replay uses — so leader
// and follower state cannot drift apart structurally.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if _, err := requireContentType(r, protocol.ContentTypeFrame, "application/octet-stream"); err != nil {
		httpError(w, http.StatusUnsupportedMediaType, err)
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, maxBytesCode(err, http.StatusBadRequest), err)
		return
	}
	f, rest, err := protocol.ParseFrame(body)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("%d trailing bytes after WAL segment frame", len(rest))
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	seg, err := protocol.ParseWALSegment(f)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	recs := seg.AppendRecords(nil)

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.following {
		// Fencing: a promoted follower (or a node never configured as one)
		// refuses pushes outright, so a deposed leader that comes back from
		// a partition can no longer acknowledge writes.
		httpError(w, http.StatusForbidden, errors.New("not a follower"))
		return
	}
	if seg.Reset {
		// Full restatement: discard this incarnation's state and rebuild.
		// The version counter survives so trace-cache keys stay unique.
		v := s.st.version
		s.st = state{version: v}
		s.replApplied = 0
		s.recordClusterEvent(flight.OutcomeDegraded, "cluster.reset",
			fmt.Sprintf("rebuilding from %d-record restatement", seg.Count), int64(seg.Count))
	} else if seg.StartSeq != s.replApplied {
		writeJSON(w, http.StatusConflict, map[string]uint64{"have": s.replApplied})
		return
	}
	evs := make([]store.Event, len(recs))
	for i, rec := range recs {
		evs[i] = store.Event{Type: rec.Type, Payload: rec.Payload}
	}
	if err := s.persistLocked(evs...); err != nil {
		s.unavailable(w, err)
		return
	}
	for _, ev := range evs {
		if err := s.applyEvent(ev); err != nil {
			// Leader-validated events cannot fail here unless the streams
			// diverged. The cursor stays at the applied count, so the
			// leader's next push resyncs the unapplied suffix.
			s.recordClusterEvent(flight.OutcomeError, "cluster.apply", err.Error(), int64(s.replApplied))
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		s.replApplied++
	}
	// A push is positive proof of leader liveness, same as a health probe.
	s.lastLeaderContact = time.Now()
	s.replLag.Set(0)
	if seg.Reset && s.store != nil {
		// Fold the rebuilt state into a snapshot so a follower restart
		// replays to exactly this point, not through the pre-reset history.
		if err := s.store.Compact(s.snapshotEventsLocked()); err != nil {
			s.opts.Logf("server: replica reset compaction failed (continuing on wal): %v", err)
		}
	}
	s.maybeCompactLocked()
	w.WriteHeader(http.StatusNoContent)
}

// followLoop is the follower's leader health probe: every FollowInterval
// it checks the leader's /healthz, refreshes the replication_lag gauge,
// and ticks the SLO evaluator so lag burn can trip promotion without
// waiting for the background SLO ticker. Exits once promoted.
func (s *Server) followLoop() {
	defer close(s.followDone)
	t := time.NewTicker(s.opts.FollowInterval)
	defer t.Stop()
	for {
		select {
		case <-s.followStop:
			return
		case <-t.C:
			s.mu.RLock()
			following := s.following
			s.mu.RUnlock()
			if !following {
				return
			}
			ok := s.probeLeader()
			now := time.Now()
			s.mu.Lock()
			if ok {
				s.lastLeaderContact = now
			}
			s.replLag.Set(now.Sub(s.lastLeaderContact).Seconds())
			s.sloTickLocked(now)
			s.mu.Unlock()
		}
	}
}

// probeLeader checks the leader's liveness over /healthz, off-lock. The
// cluster.partition fault site simulates a partition: an injected error
// fails the probe without touching the wire.
func (s *Server) probeLeader() bool {
	if err := s.opts.Faults.Err(FaultPartition); err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.ReplTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.opts.LeaderURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := s.clusterClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// promoteLocked turns the follower into the shard's leader: writes are
// accepted, replication pushes from the deposed leader are refused. The
// transition is recorded as a pinned flight event. Caller holds s.mu
// (write).
func (s *Server) promoteLocked() {
	s.following = false
	s.promotions.Inc()
	s.recordClusterEvent(flight.OutcomeDegraded, "cluster.failover",
		"promoted: leader unreachable, replication_lag slo burn", int64(s.replApplied))
	s.log.Warn("promoted to leader: replication_lag SLO burn",
		"applied", s.replApplied, "leader", s.opts.LeaderURL)
}

// recordClusterEvent files one replication/failover flight event. The
// recorder has its own lock, kept disjoint from s.mu.
func (s *Server) recordClusterEvent(outcome flight.Outcome, site, errMsg string, aux int64) {
	s.flightRec.Record(flight.Event{
		Kind:     flight.KindCluster,
		Outcome:  outcome,
		Route:    site,
		Aux:      aux,
		Degraded: s.degraded,
		Err:      errMsg,
	})
}
