package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/protocol"
)

// predictFixture publishes the federation's encoder and model and returns
// the local references the tests compare against.
func predictFixture(t *testing.T, ts *httptest.Server, fx *federationFixture) (*dataset.Encoder, *nn.Binarized) {
	t.Helper()
	if resp := post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("encoder status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/v1/model", "application/octet-stream", fx.modelBytes); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("model status %d", resp.StatusCode)
	}
	var enc dataset.Encoder
	if err := json.Unmarshal(fx.encoderJSON, &enc); err != nil {
		t.Fatal(err)
	}
	m, err := nn.ReadModel(bytes.NewReader(fx.modelBytes))
	if err != nil {
		t.Fatal(err)
	}
	return &enc, m.Binarize()
}

// encodeRows encodes the first n test instances into row-major float32 wire
// values plus the local float64 reference rows.
func encodeRows(t *testing.T, enc *dataset.Encoder, n int) (rows []float32, ref [][]float64) {
	t.Helper()
	tab := dataset.TicTacToe()
	if n > len(tab.Instances) {
		n = len(tab.Instances)
	}
	for i := 0; i < n; i++ {
		x := enc.Encode(tab.Instances[i], nil)
		ref = append(ref, x)
		for _, v := range x {
			rows = append(rows, float32(v))
		}
	}
	return rows, ref
}

func TestPredictBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	enc, bin := predictFixture(t, ts, fx)
	rows, ref := encodeRows(t, enc, 7)

	frame, err := protocol.AppendPredictRequest(nil, enc.Width(), rows)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", protocol.ContentTypeFrame)
	req.Header.Set("Accept", protocol.ContentTypeFrame)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != protocol.ContentTypeFrame {
		t.Fatalf("response Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	f, rest, err := protocol.ParseFrame(body)
	if err != nil || len(rest) != 0 {
		t.Fatalf("response frame: %v, %d trailing", err, len(rest))
	}
	scores, err := protocol.ParsePredictResponse(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(ref) {
		t.Fatalf("%d scores for %d rows", len(scores), len(ref))
	}
	for i, x := range ref {
		if want := bin.Score(x); scores[i] != want {
			t.Fatalf("row %d: served %v, local %v", i, scores[i], want)
		}
	}
}

func TestPredictJSONAndNegotiation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	enc, bin := predictFixture(t, ts, fx)
	_, ref := encodeRows(t, enc, 3)

	payload, err := json.Marshal(map[string]any{"rows": ref})
	if err != nil {
		t.Fatal(err)
	}
	// JSON in, JSON out (no Accept header).
	resp := post(t, ts, "/v1/predict", "application/json", payload)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var out struct {
		Rows   int       `json:"rows"`
		Scores []float64 `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != len(ref) || len(out.Scores) != len(ref) {
		t.Fatalf("response %+v", out)
	}
	for i, x := range ref {
		if want := bin.Score(x); out.Scores[i] != want {
			t.Fatalf("row %d: served %v, local %v", i, out.Scores[i], want)
		}
	}

	// JSON in, binary out: Accept negotiates the response independently of
	// the request encoding.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", protocol.ContentTypeFrame)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != protocol.ContentTypeFrame {
		t.Fatalf("negotiated Content-Type %q", ct)
	}
	body, _ := io.ReadAll(resp2.Body)
	f, _, err := protocol.ParseFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := protocol.ParsePredictResponse(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if scores[i] != out.Scores[i] {
			t.Fatal("binary and JSON responses disagree")
		}
	}
}

func TestPredictErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()

	// Before the model is published: 409.
	frame, err := protocol.AppendPredictRequest(nil, 4, []float32{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(t, ts, "/v1/predict", protocol.ContentTypeFrame, frame); resp.StatusCode != http.StatusConflict {
		t.Fatalf("predict before model: status %d", resp.StatusCode)
	}

	enc, _ := predictFixture(t, ts, fx)

	// Unsupported request media type: 415.
	if resp := post(t, ts, "/v1/predict", "text/plain", frame); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("bad content type: status %d", resp.StatusCode)
	}
	// Wrong width: 400.
	if resp := post(t, ts, "/v1/predict", protocol.ContentTypeFrame, frame); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong width: status %d", resp.StatusCode)
	}
	// Non-binary feature values: 400.
	bad := make([]float32, enc.Width())
	bad[0] = 0.5
	badFrame, err := protocol.AppendPredictRequest(nil, enc.Width(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(t, ts, "/v1/predict", protocol.ContentTypeFrame, badFrame); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-binary values: status %d", resp.StatusCode)
	}
	// Garbage frame: 400.
	if resp := post(t, ts, "/v1/predict", protocol.ContentTypeFrame, []byte("CTFLxxxx")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frame: status %d", resp.StatusCode)
	}
	// GET: 405.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: status %d", resp.StatusCode)
	}
}

func TestUploadAndModelContentTypeEnforced(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	if resp := post(t, ts, "/v1/uploads", "text/plain", []byte("x")); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("uploads bad content type: status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/v1/model", "application/json", []byte("{}")); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("model bad content type: status %d", resp.StatusCode)
	}
}

func TestClientPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	enc, bin := predictFixture(t, ts, fx)
	rows, ref := encodeRows(t, enc, 5)

	cl := &Client{BaseURL: ts.URL}
	scores, err := cl.Predict(context.Background(), enc.Width(), rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(ref) {
		t.Fatalf("%d scores for %d rows", len(scores), len(ref))
	}
	for i, x := range ref {
		if want := bin.Score(x); scores[i] != want {
			t.Fatalf("row %d: client %v, local %v", i, scores[i], want)
		}
	}
}

// TestTraceBinaryResultMatchesJSON drives the full lifecycle and asserts the
// binary trace-result frame carries exactly the JSON result.
func TestTraceBinaryResultMatchesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	predictFixture(t, ts, fx)
	if resp := post(t, ts, "/v1/uploads", protocol.ContentTypeFrame, fx.frames); resp.StatusCode != http.StatusOK {
		t.Fatalf("uploads status %d", resp.StatusCode)
	}

	resp := post(t, ts, "/v1/trace?tau=0.9&delta=2&wait=60s", "text/csv", fx.testCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var env TraceJobResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Result == nil {
		t.Fatalf("trace job %+v", env)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/trace/"+env.ID, nil)
	req.Header.Set("Accept", protocol.ContentTypeFrame)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("binary poll status %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != protocol.ContentTypeFrame {
		t.Fatalf("binary poll Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	f, rest, err := protocol.ParseFrame(body)
	if err != nil || len(rest) != 0 {
		t.Fatalf("trace frame: %v, %d trailing", err, len(rest))
	}
	tr, err := protocol.ParseTraceResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if !traceResultsEqual(tr, env.Result) {
		t.Fatalf("binary result %+v != JSON result %+v", tr, env.Result)
	}

	// The typed client negotiates the same binary frames end to end.
	cl := &Client{BaseURL: ts.URL}
	got, err := cl.TraceJob(context.Background(), env.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result == nil || !traceResultsEqual(got.Result, env.Result) {
		t.Fatalf("client binary poll %+v", got)
	}
}

func traceResultsEqual(a, b *protocol.TraceResult) bool {
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if a.Accuracy != b.Accuracy || a.CoverageGap != b.CoverageGap ||
		!eq(a.Micro, b.Micro) || !eq(a.Macro, b.Macro) ||
		!eq(a.LossRatio, b.LossRatio) || !eq(a.UselessRatio, b.UselessRatio) ||
		len(a.Suspects) != len(b.Suspects) {
		return false
	}
	for i := range a.Suspects {
		if a.Suspects[i] != b.Suspects[i] {
			return false
		}
	}
	return true
}
