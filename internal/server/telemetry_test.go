package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// postFixture publishes the encoder, model, and upload frames of fx,
// failing the test on any non-2xx answer.
func postFixture(t *testing.T, ts *httptest.Server, fx *federationFixture) {
	t.Helper()
	for _, step := range []struct {
		path, ct string
		body     []byte
	}{
		{"/v1/encoder", "application/json", fx.encoderJSON},
		{"/v1/model", "application/octet-stream", fx.modelBytes},
		{"/v1/uploads", "application/octet-stream", fx.frames},
	} {
		resp := post(t, ts, step.path, step.ct, step.body)
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: status %d", step.path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// findSpan walks a span forest for a span with the given name.
func findSpan(views []telemetry.SpanView, name string) *telemetry.SpanView {
	for i := range views {
		if views[i].Name == name {
			return &views[i]
		}
		if c := findSpan(views[i].Children, name); c != nil {
			return c
		}
	}
	return nil
}

func TestMetricsAndTraceEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	postFixture(t, ts, fx)

	// One synchronous trace so the job and tracer instrument families have
	// observed real work.
	resp := post(t, ts, "/v1/trace?wait=60s", "text/csv", fx.testCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/trace: status %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("trace response missing X-Request-Id header")
	}
	resp.Body.Close()

	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	// Prometheus exposition covers every subsystem's metric family.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		`ctfl_http_requests_total{route="/v1/trace"}`,
		"ctfl_http_request_seconds_bucket",
		"ctfl_http_in_flight",
		"ctfl_jobs_submitted_total 1",
		"ctfl_jobs_wait_seconds_count 1",
		`ctfl_tracer_queries_total{strategy="index"}`,
		"ctfl_tracer_trace_seconds_count 1",
		"ctfl_store_append_seconds_count",
		"ctfl_train_epochs_total",
		"# TYPE ctfl_http_request_seconds histogram",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %q", name)
		}
	}

	// JSON twin inside /v1/stats.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs["submitted"] != 1 || st.Jobs["done"] != 1 {
		t.Errorf("stats jobs = %v, want 1 submitted / 1 done", st.Jobs)
	}
	if _, ok := st.Telemetry["ctfl_jobs_submitted_total"]; !ok {
		t.Error("stats telemetry snapshot missing ctfl_jobs_submitted_total")
	}
	if st.Traces == 0 {
		t.Error("stats reports zero recorded traces")
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime %v, want > 0", st.UptimeSeconds)
	}

	// The trace request produced the full span chain: HTTP root → async
	// job → tracer pass.
	tr, err := c.TracesRecent(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total == 0 || len(tr.Traces) == 0 {
		t.Fatalf("no recorded traces: %+v", tr)
	}
	root := findSpan(tr.Traces, "http /v1/trace")
	if root == nil {
		t.Fatalf("no 'http /v1/trace' root span among %d traces", len(tr.Traces))
	}
	if root.Attrs["request_id"] == nil || root.Attrs["status"] == nil {
		t.Errorf("root span attrs missing request_id/status: %v", root.Attrs)
	}
	job := findSpan(root.Children, "job.trace")
	if job == nil {
		t.Fatalf("root span has no job.trace child: %+v", root)
	}
	if findSpan(job.Children, "tracer.trace") == nil {
		t.Fatalf("job.trace span has no tracer.trace child: %+v", job)
	}
}

func TestAccessLogCarriesRequestID(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s, err := NewWithOptions(Options{Logf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "reqid-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "reqid-test-42" {
		t.Errorf("X-Request-Id echoed as %q, want caller's id", got)
	}

	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range lines {
		if strings.Contains(l, "request") && strings.Contains(l, "request_id=reqid-test-42") {
			found = true
			if !strings.Contains(l, "route=/healthz") || !strings.Contains(l, "status=200") {
				t.Errorf("access log line missing route/status: %q", l)
			}
		}
	}
	if !found {
		t.Fatalf("no access-log line carries the request id; got %q", lines)
	}
}

// TestConcurrentScrapeWhileUploading exercises the metric registry, span
// log, and stats endpoint while lifecycle mutations and traces are in
// flight — the race detector is the assertion.
func TestConcurrentScrapeWhileUploading(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	postFixture(t, ts, fx)

	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	var wg sync.WaitGroup
	const iters = 8

	wg.Add(1)
	go func() { // uploads keep mutating federation state
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Post(ts.URL+"/v1/uploads", "application/octet-stream", bytes.NewReader(fx.frames))
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Add(1)
	go func() { // traces keep the job engine and tracer busy
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Post(ts.URL+"/v1/trace?wait=60s", "text/csv", bytes.NewReader(fx.testCSV))
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	for _, scrape := range []func() error{
		func() error { _, err := c.Metrics(ctx); return err },
		func() error { _, err := c.Stats(ctx); return err },
		func() error { _, err := c.TracesRecent(ctx, 10); return err },
	} {
		wg.Add(1)
		go func(f func() error) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := f(); err != nil {
					t.Error(err)
					return
				}
			}
		}(scrape)
	}
	wg.Wait()
}
