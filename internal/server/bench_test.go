package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/protocol"
)

// benchServer publishes the fixture's encoder and model into a fresh Server
// (no persistence, no network — requests go straight through ServeHTTP).
func benchServer(b *testing.B, fx *federationFixture) *Server {
	b.Helper()
	s, err := NewWithOptions(Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		b.Fatal(err)
	}
	for _, req := range []struct {
		path, ct string
		body     []byte
	}{
		{"/v1/encoder", "application/json", fx.encoderJSON},
		{"/v1/model", "application/octet-stream", fx.modelBytes},
	} {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, req.path, bytes.NewReader(req.body)))
		if w.Code != http.StatusNoContent {
			b.Fatalf("%s: status %d: %s", req.path, w.Code, w.Body)
		}
	}
	return s
}

// BenchmarkServerPredict measures /v1/predict end to end through ServeHTTP,
// binary wire format against the JSON fallback, one 32-row batch per op.
func BenchmarkServerPredict(b *testing.B) {
	fx := buildFederation(b)
	s := benchServer(b, fx)

	var enc dataset.Encoder
	if err := json.Unmarshal(fx.encoderJSON, &enc); err != nil {
		b.Fatal(err)
	}
	tab := dataset.TicTacToe()
	const batch = 32
	var rows32 []float32
	var rows64 [][]float64
	for i := 0; i < batch; i++ {
		x := enc.Encode(tab.Instances[i], nil)
		rows64 = append(rows64, x)
		for _, v := range x {
			rows32 = append(rows32, float32(v))
		}
	}
	frame, err := protocol.AppendPredictRequest(nil, enc.Width(), rows32)
	if err != nil {
		b.Fatal(err)
	}
	jsonBody, err := json.Marshal(map[string]any{"rows": rows64})
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, ct, accept string, body []byte) {
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		rd := bytes.NewReader(body)
		for i := 0; i < b.N; i++ {
			rd.Reset(body)
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", rd)
			req.Header.Set("Content-Type", ct)
			if accept != "" {
				req.Header.Set("Accept", accept)
			}
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body)
			}
		}
	}
	b.Run("codec=binary", func(b *testing.B) {
		run(b, protocol.ContentTypeFrame, protocol.ContentTypeFrame, frame)
	})
	b.Run("codec=json", func(b *testing.B) {
		run(b, "application/json", "", jsonBody)
	})
}

// BenchmarkServerUploadIngest measures /v1/uploads end to end: one op posts
// the full federation's activation frames. Reposting the model every 64 ops
// resets accumulated upload state without counting against the measurement.
func BenchmarkServerUploadIngest(b *testing.B) {
	fx := buildFederation(b)
	s := benchServer(b, fx)

	b.SetBytes(int64(len(fx.frames)))
	b.ReportAllocs()
	rd := bytes.NewReader(fx.frames)
	for i := 0; i < b.N; i++ {
		if i%64 == 0 && i > 0 {
			b.StopTimer()
			w := httptest.NewRecorder()
			s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/model", bytes.NewReader(fx.modelBytes)))
			if w.Code != http.StatusNoContent {
				b.Fatalf("model reset: status %d", w.Code)
			}
			b.StartTimer()
		}
		rd.Reset(fx.frames)
		req := httptest.NewRequest(http.MethodPost, "/v1/uploads", rd)
		req.Header.Set("Content-Type", protocol.ContentTypeFrame)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
	}
}
