package server

// Observability wiring beyond the metrics/span layer (telemetry.go): the
// flight recorder's emission points, the SLO burn-rate objectives and
// their coupling to the degraded-mode controller, and the diagnostic
// routes GET /v1/events, GET /v1/debug/bundle, and GET /v1/version.
//
// SLO → degraded coupling: the wal_availability objective samples the
// cumulative WAL attempt/failure counters and is re-evaluated
// synchronously on every failed append (and, rate-limited, on successful
// ones), so a burn-rate breach trips degraded mode deterministically —
// the blunt consecutive-failure threshold (PR 5) remains as a floor. A
// breach tripped by SLO burn also clears by SLO burn: once neither window
// shows budget burn, the controller lifts the write rejection. A probe
// append that positively proves the WAL healthy clears degraded mode
// immediately and Resets the objective (the retained bad samples predate
// the probe's evidence). Every transition is recorded as a pinned
// flight-recorder event.

import (
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/flight"
	"repro/internal/protocol"
	"repro/internal/rounds"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// SLO objective names. The per-route latency objectives are named
// "latency:<route pattern>" and registered by the route middleware.
const (
	sloAvailability = "availability"
	sloWAL          = "wal_availability"
	sloStaleness    = "score_staleness"
	sloIngestLag    = "rounds_ingest_lag"
	sloReplication  = "replication_lag"
)

// sloSyncFloor rate-limits the evaluator ticks successful WAL appends
// trigger, so write-heavy workloads do not grow the sample rings per
// append. Failed appends always tick — breach detection must not lag the
// incident.
const sloSyncFloor = 100 * time.Millisecond

// registerSLOs declares the server's standing objectives. Called before
// route registration so the middleware can add its per-route latency
// objectives to the same evaluator.
func (s *Server) registerSLOs() {
	s.slo.Add(telemetry.SLOConfig{
		Name:   sloAvailability,
		Source: telemetry.CounterSLOSource{Total: s.httpResponses, Bad: s.httpServerErrors},
	})
	s.slo.Add(telemetry.SLOConfig{
		Name:   sloWAL,
		Source: telemetry.CounterSLOSource{Total: s.walAttempts, Bad: s.walFailures},
	})
	s.slo.Add(telemetry.SLOConfig{
		Name:   sloStaleness,
		Source: &telemetry.GaugeSLOSource{G: s.roundsObs.Staleness, Bound: s.opts.SLOStalenessBound},
	})
	s.slo.Add(telemetry.SLOConfig{
		Name:   sloIngestLag,
		Source: telemetry.HistogramSLOSource{H: s.roundsObs.UpdateSeconds, Bound: s.opts.SLOIngestBound},
	})
	// Followers watch their leader through the replication-lag gauge; a
	// burn-rate breach of this objective is the promotion trigger.
	if s.opts.LeaderURL != "" {
		s.slo.Add(telemetry.SLOConfig{
			Name:   sloReplication,
			Source: &telemetry.GaugeSLOSource{G: s.replLag, Bound: s.opts.ReplLagBound},
		})
	}
}

// sloTickLocked re-evaluates every objective at now and applies breach
// transitions to the degraded-mode controller. Caller holds s.mu (write).
func (s *Server) sloTickLocked(now time.Time) {
	// Staleness is a passive gauge; refresh it so the objective samples a
	// live value.
	if eng := s.st.rounds; eng != nil {
		s.roundsObs.Staleness.Set(eng.Staleness().Seconds())
	}
	s.lastSLOTick = now
	for _, tr := range s.slo.Tick(now) {
		s.applySLOTransitionLocked(tr)
	}
}

// applySLOTransitionLocked reacts to one objective changing breach state.
// Only wal_availability is coupled to the write-rejection controller;
// every other objective alerts through its metric families and the log.
// Caller holds s.mu (write).
func (s *Server) applySLOTransitionLocked(tr telemetry.SLOTransition) {
	if tr.Name == sloReplication {
		// Sustained loss of leader contact on a follower is the failover
		// trigger: promote exactly once; the breach clearing later (the
		// gauge freezes after promotion) changes nothing.
		if tr.Breached && s.following {
			s.promoteLocked()
		}
		return
	}
	if tr.Name != sloWAL {
		if tr.Breached {
			s.log.Warn("slo breach", "slo", tr.Name)
		} else {
			s.log.Info("slo breach cleared", "slo", tr.Name)
		}
		return
	}
	switch {
	case tr.Breached && !s.degraded:
		s.degraded = true
		s.degradedBySLO = true
		s.lastProbe = time.Now()
		s.degradedEntered.Inc()
		s.degradedSLOTrips.Inc()
		s.degradedGauge.Set(1)
		s.recordWALEvent(flight.OutcomeDegraded, "server.degraded",
			"entered: wal_availability slo burn", int64(s.walFails))
		s.log.Warn("entering degraded mode: wal_availability SLO burn", "consecutive_failures", s.walFails)
	case !tr.Breached && s.degraded && s.degradedBySLO:
		// Only SLO-tripped degradation clears on burn decay; the
		// threshold path still demands a probe append as positive proof.
		s.degraded = false
		s.degradedBySLO = false
		s.walFails = 0
		s.degradedGauge.Set(0)
		s.recordWALEvent(flight.OutcomeDegraded, "server.degraded",
			"cleared: wal_availability slo burn decayed", 0)
		s.log.Info("degraded mode cleared: wal_availability SLO burn decayed")
	}
}

// sloLoop is the background evaluation ticker: it keeps burn rates moving
// during read-only (no-WAL-traffic) periods. Stopped by Close.
func (s *Server) sloLoop(interval time.Duration) {
	defer close(s.sloDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.sloStop:
			return
		case now := <-t.C:
			s.mu.Lock()
			s.sloTickLocked(now)
			s.mu.Unlock()
		}
	}
}

// recordWALEvent files one WAL/degraded-controller flight event. Caller
// holds s.mu (write); the recorder has its own lock, kept disjoint.
func (s *Server) recordWALEvent(outcome flight.Outcome, site, errMsg string, aux int64) {
	s.flightRec.Record(flight.Event{
		Kind:     flight.KindWAL,
		Outcome:  outcome,
		Route:    site,
		Aux:      aux,
		Degraded: s.degraded,
		Err:      errMsg,
	})
}

// parseKind maps the wire string back to a flight event kind.
func parseKind(v string) (flight.Kind, bool) {
	switch v {
	case "request":
		return flight.KindRequest, true
	case "job":
		return flight.KindJob, true
	case "round":
		return flight.KindRound, true
	case "wal":
		return flight.KindWAL, true
	case "cluster":
		return flight.KindCluster, true
	default:
		return 0, false
	}
}

// EventJSON is the JSON rendering of one flight-recorder event; it
// preserves every field, so a captured bundle re-encodes through the
// type-7 codec bit-identically.
type EventJSON struct {
	Seq        uint64 `json:"seq"`
	Unix       int64  `json:"unix"`
	Kind       string `json:"kind"`
	Outcome    string `json:"outcome"`
	Status     int32  `json:"status,omitempty"`
	Route      string `json:"route"`
	Method     string `json:"method,omitempty"`
	RequestID  string `json:"request_id,omitempty"`
	DurationNs int64  `json:"duration_ns"`
	BytesIn    int64  `json:"bytes_in,omitempty"`
	BytesOut   int64  `json:"bytes_out,omitempty"`
	Retries    int32  `json:"retries,omitempty"`
	Faults     int32  `json:"faults,omitempty"`
	Aux        int64  `json:"aux,omitempty"`
	CacheHit   bool   `json:"cache_hit,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	Err        string `json:"err,omitempty"`
}

func eventJSON(ev flight.Event) EventJSON {
	return EventJSON{
		Seq: ev.Seq, Unix: ev.Unix,
		Kind: ev.Kind.String(), Outcome: ev.Outcome.String(),
		Status: ev.Status, Route: ev.Route, Method: ev.Method, RequestID: ev.RequestID,
		DurationNs: ev.DurationNs, BytesIn: ev.BytesIn, BytesOut: ev.BytesOut,
		Retries: ev.Retries, Faults: ev.Faults, Aux: ev.Aux,
		CacheHit: ev.CacheHit, Degraded: ev.Degraded, Err: ev.Err,
	}
}

// event converts the JSON rendering back to the recorder's event value.
func (e EventJSON) event() (flight.Event, error) {
	k, ok := parseKind(e.Kind)
	if !ok {
		return flight.Event{}, fmt.Errorf("unknown event kind %q", e.Kind)
	}
	o, ok := flight.ParseOutcome(e.Outcome)
	if !ok {
		return flight.Event{}, fmt.Errorf("unknown event outcome %q", e.Outcome)
	}
	return flight.Event{
		Seq: e.Seq, Unix: e.Unix, Kind: k, Outcome: o,
		Status: e.Status, Route: e.Route, Method: e.Method, RequestID: e.RequestID,
		DurationNs: e.DurationNs, BytesIn: e.BytesIn, BytesOut: e.BytesOut,
		Retries: e.Retries, Faults: e.Faults, Aux: e.Aux,
		CacheHit: e.CacheHit, Degraded: e.Degraded, Err: e.Err,
	}, nil
}

// EventsResponse is the JSON shape of GET /v1/events.
type EventsResponse struct {
	Stats  flight.Stats `json:"stats"`
	Events []EventJSON  `json:"events"`
}

// handleEvents serves the flight recorder's retained events, filtered by
// ?since= (sequence), ?min_latency= (duration), ?outcome=, ?kind=, and
// ?n= (newest N). JSON by default; a binary type-7 frame for
// Accept: application/x-ctfl.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	q := r.URL.Query()
	var f flight.Filter
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("query since: %w", err))
			return
		}
		f.Since = n
	}
	if v := q.Get("min_latency"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("query min_latency: %q is not a duration", v))
			return
		}
		f.MinDuration = d
	}
	if v := q.Get("outcome"); v != "" {
		o, ok := flight.ParseOutcome(v)
		if !ok {
			httpError(w, http.StatusBadRequest, fmt.Errorf("query outcome: unknown outcome %q", v))
			return
		}
		f.Outcome = &o
	}
	if v := q.Get("kind"); v != "" {
		k, ok := parseKind(v)
		if !ok {
			httpError(w, http.StatusBadRequest, fmt.Errorf("query kind: unknown kind %q", v))
			return
		}
		f.Kind = k
	}
	n, err := queryInt(r, "n", 0)
	if err != nil || n < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("query n: not a non-negative integer"))
		return
	}
	f.Limit = n

	evs := s.flightRec.Snapshot(f)
	if acceptsFrame(r) {
		frame, err := protocol.AppendFlightEvents(nil, evs)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", protocol.ContentTypeFrame)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(frame)
		return
	}
	out := make([]EventJSON, len(evs))
	for i, ev := range evs {
		out[i] = eventJSON(ev)
	}
	writeJSON(w, http.StatusOK, EventsResponse{Stats: s.flightRec.Stats(), Events: out})
}

// VersionInfo is the shape of GET /v1/version, from runtime/debug build
// metadata.
type VersionInfo struct {
	Module      string `json:"module"`
	Version     string `json:"version"`
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

func versionInfo() VersionInfo {
	var v VersionInfo
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	v.Version = bi.Main.Version
	v.GoVersion = bi.GoVersion
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			v.VCSRevision = st.Value
		case "vcs.time":
			v.VCSTime = st.Value
		case "vcs.modified":
			v.VCSModified = st.Value == "true"
		}
	}
	return v
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, versionInfo())
}

// DebugBundle is the one-shot incident capture GET /v1/debug/bundle
// returns: build identity, state summary, SLO status, the full retained
// flight-event set, recent span trees, and the complete telemetry
// snapshot — everything an operator attaches to an incident report with
// one curl.
type DebugBundle struct {
	CapturedAtUnix int64                   `json:"captured_at_unix"`
	Version        VersionInfo             `json:"version"`
	UptimeSeconds  float64                 `json:"uptime_seconds"`
	State          map[string]any          `json:"state"`
	SLO            []telemetry.SLOStatus   `json:"slo"`
	FlightStats    flight.Stats            `json:"flight_stats"`
	Events         []EventJSON             `json:"events"`
	Traces         []telemetry.SpanView    `json:"traces"`
	Telemetry      map[string]any          `json:"telemetry"`
	Jobs           map[string]int64        `json:"jobs"`
	Store          *store.Metrics          `json:"store,omitempty"`
	Quality        *rounds.QualitySnapshot `json:"quality,omitempty"`
}

func (s *Server) handleDebugBundle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.runtime.Collect()
	s.mu.RLock()
	eng := s.st.rounds
	st := map[string]any{
		"version":      s.st.version,
		"encoder":      s.st.enc != nil,
		"model":        s.st.model != nil,
		"records":      len(s.st.uploads),
		"participants": s.st.parts,
		"degraded":     s.degraded,
	}
	if eng != nil {
		st["rounds"] = eng.Rounds()
	}
	s.mu.RUnlock()

	evs := s.flightRec.Snapshot(flight.Filter{})
	events := make([]EventJSON, len(evs))
	for i, ev := range evs {
		events[i] = eventJSON(ev)
	}
	b := DebugBundle{
		CapturedAtUnix: time.Now().Unix(),
		Version:        versionInfo(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		State:          st,
		SLO:            s.slo.Snapshot(),
		FlightStats:    s.flightRec.Stats(),
		Events:         events,
		Traces:         s.spans.Recent(0),
		Telemetry:      s.reg.Snapshot(),
		Jobs:           s.engine.MetricsView(),
	}
	if s.store != nil {
		m := s.store.Metrics()
		b.Store = &m
	}
	if eng != nil {
		q := eng.Quality()
		b.Quality = &q
	}
	writeJSON(w, http.StatusOK, b)
}
