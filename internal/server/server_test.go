package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/rules"
	"repro/internal/stats"
)

// federationFixture trains a small tic-tac-toe federation and prepares the
// three payloads a real deployment would post: encoder JSON, model bytes,
// and per-participant protocol frames, plus the reserved test CSV.
type federationFixture struct {
	encoderJSON []byte
	modelBytes  []byte
	frames      []byte
	testCSV     []byte
	parts       int
}

func buildFederation(t testing.TB) *federationFixture {
	t.Helper()
	tab := dataset.TicTacToe()
	r := stats.NewRNG(3)
	train, test := tab.Split(r, 0.25)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	parts := fl.PartitionSkewLabel(train, 3, 0.8, r)
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 1, LocalEpochs: 6, Parallel: true,
		Model: nn.Config{Hidden: []int{32}, Grafting: true, Seed: 2},
	})
	model, err := trainer.Train(parts)
	if err != nil {
		t.Fatal(err)
	}
	rs := rules.Extract(model, enc)

	fx := &federationFixture{parts: len(parts)}
	if fx.encoderJSON, err = json.Marshal(enc); err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	if _, err := model.WriteTo(&mb); err != nil {
		t.Fatal(err)
	}
	fx.modelBytes = mb.Bytes()

	var frames bytes.Buffer
	for pi, p := range parts {
		acts, _ := rs.ActivationsTable(p.Data)
		up := &protocol.Upload{Participant: pi, RuleWidth: rs.Width()}
		for i, a := range acts {
			up.Records = append(up.Records, protocol.Record{
				Label:       p.Data.Instances[i].Label,
				Activations: a,
			})
		}
		if err := up.Write(&frames); err != nil {
			t.Fatal(err)
		}
	}
	fx.frames = frames.Bytes()

	var csv bytes.Buffer
	if err := dataset.WriteCSV(&csv, test); err != nil {
		t.Fatal(err)
	}
	fx.testCSV = csv.Bytes()
	return fx
}

func post(t *testing.T, ts *httptest.Server, path, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()

	// Health before setup.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["encoder"] != false {
		t.Fatalf("fresh server health = %v", health)
	}

	// Lifecycle: encoder → model → uploads → trace.
	if resp := post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("encoder status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/v1/model", "application/octet-stream", fx.modelBytes); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("model status %d", resp.StatusCode)
	}
	resp = post(t, ts, "/v1/uploads", "application/octet-stream", fx.frames)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uploads status %d", resp.StatusCode)
	}
	var upInfo map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&upInfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if upInfo["frames"] != fx.parts || upInfo["records"] == 0 {
		t.Fatalf("upload info = %v", upInfo)
	}

	resp = post(t, ts, "/v1/trace?tau=0.9&delta=2&wait=60s", "text/csv", fx.testCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var env TraceJobResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Status != "done" || env.Result == nil {
		t.Fatalf("trace job = %+v", env)
	}
	tr := *env.Result
	if len(tr.Micro) != fx.parts || len(tr.Macro) != fx.parts {
		t.Fatalf("score widths: %d/%d", len(tr.Micro), len(tr.Macro))
	}
	if tr.Accuracy < 0.5 {
		t.Fatalf("accuracy %v implausible", tr.Accuracy)
	}
	sum := 0.0
	for _, s := range tr.Micro {
		sum += s
	}
	if diff := sum - (tr.Accuracy - tr.CoverageGap); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("group rationality over HTTP: sum %v vs %v-%v", sum, tr.Accuracy, tr.CoverageGap)
	}

	// Tracing must be repeatable — and an identical submission against
	// unchanged state is served from the content-hash cache.
	resp = post(t, ts, "/v1/trace?tau=0.9&wait=60s", "text/csv", fx.testCSV)
	var env2 TraceJobResponse
	if err := json.NewDecoder(resp.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env2.Result == nil {
		t.Fatalf("repeat trace job = %+v", env2)
	}
	if !env2.CacheHit {
		t.Fatal("identical trace not served from cache")
	}
	tr2 := *env2.Result
	for i := range tr.Micro {
		if tr.Micro[i] != tr2.Micro[i] {
			t.Fatal("trace is not repeatable")
		}
	}

	// Rules endpoint.
	resp, err = http.Get(ts.URL + "/v1/rules")
	if err != nil {
		t.Fatal(err)
	}
	var rls []RuleJSON
	if err := json.NewDecoder(resp.Body).Decode(&rls); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rls) == 0 || rls[0].Expr == "" {
		t.Fatalf("rules = %v", rls)
	}
}

func TestLifecycleOrderEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()

	// Model before encoder → conflict.
	if resp := post(t, ts, "/v1/model", "application/octet-stream", fx.modelBytes); resp.StatusCode != http.StatusConflict {
		t.Fatalf("model-first status %d", resp.StatusCode)
	}
	// Uploads before model → conflict.
	if resp := post(t, ts, "/v1/uploads", "application/octet-stream", fx.frames); resp.StatusCode != http.StatusConflict {
		t.Fatalf("uploads-first status %d", resp.StatusCode)
	}
	// Trace before anything → conflict.
	if resp := post(t, ts, "/v1/trace", "text/csv", fx.testCSV); resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace-first status %d", resp.StatusCode)
	}
	// Rules before model → conflict.
	resp, err := http.Get(ts.URL + "/v1/rules")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rules-first status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Proper order, then trace without uploads → conflict.
	post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON)
	post(t, ts, "/v1/model", "application/octet-stream", fx.modelBytes)
	if resp := post(t, ts, "/v1/trace", "text/csv", fx.testCSV); resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace-without-uploads status %d", resp.StatusCode)
	}
}

func TestBadInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON)
	post(t, ts, "/v1/model", "application/octet-stream", fx.modelBytes)

	// Corrupt model bytes.
	bad := append([]byte(nil), fx.modelBytes...)
	bad[10] ^= 0xFF
	if resp := post(t, ts, "/v1/model", "application/octet-stream", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt model status %d", resp.StatusCode)
	}
	// Corrupt frames.
	badFrames := append([]byte(nil), fx.frames...)
	badFrames[12] ^= 0xFF
	if resp := post(t, ts, "/v1/uploads", "application/octet-stream", badFrames); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt frames status %d", resp.StatusCode)
	}
	// Bad JSON encoder.
	if resp := post(t, ts, "/v1/encoder", "application/json", []byte("{")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad encoder status %d", resp.StatusCode)
	}
	// Re-publish valid state and check bad tau.
	post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON)
	post(t, ts, "/v1/model", "application/octet-stream", fx.modelBytes)
	post(t, ts, "/v1/uploads", "application/octet-stream", fx.frames)
	if resp := post(t, ts, "/v1/trace?tau=1.5", "text/csv", fx.testCSV); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tau status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/v1/trace?tau=abc", "text/csv", fx.testCSV); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric tau status %d", resp.StatusCode)
	}
	// Malformed CSV.
	if resp := post(t, ts, "/v1/trace", "text/csv", []byte("nonsense,csv\n1,2\n")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad csv status %d", resp.StatusCode)
	}
	// Wrong methods.
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET trace status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestErrorBodyIsJSON(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	resp := post(t, ts, "/v1/model", "application/octet-stream", []byte("junk"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(body["error"], "nn:") {
		t.Fatalf("error body = %v", body)
	}
}
