package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/flight"
	"repro/internal/jobs"
	"repro/internal/protocol"
	"repro/internal/store"
)

// chaosParams are the trace queries both soak runs execute.
var chaosParams = []struct {
	tau   float64
	delta int
}{
	{0.9, 1},
	{0.8, 2},
	{0.95, 1},
}

// runSoak drives one full federation lifecycle — encoder, model, uploads,
// then every chaosParams trace — through cl against ts, returning the trace
// results in query order. Traces reuse the client's submit+poll+resubmit
// loop via traceOnce so failed (quarantined) jobs are resubmitted.
func runSoak(t *testing.T, cl *Client, fx *federationFixture) []*TraceResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	steps := []struct {
		path, ct   string
		body       []byte
		idempotent bool
	}{
		{"/v1/encoder", "application/json", fx.encoderJSON, true},
		{"/v1/model", "application/octet-stream", fx.modelBytes, true},
		// Uploads are non-idempotent only against ambiguous transport
		// failures; in-process 503s and pre-send injections still retry.
		{"/v1/uploads", "application/octet-stream", fx.frames, false},
	}
	for _, st := range steps {
		if err := cl.do(ctx, http.MethodPost, st.path, st.ct, "", st.body, nil, st.idempotent); err != nil {
			t.Fatalf("POST %s under soak: %v", st.path, err)
		}
	}

	maxAttempts := 1
	if cl.Retry != nil {
		maxAttempts = cl.Retry.withDefaults().MaxAttempts
	}
	out := make([]*TraceResponse, len(chaosParams))
	for qi, q := range chaosParams {
		var env *TraceJobResponse
		for n := 1; ; n++ {
			var err error
			env, err = cl.traceOnce(ctx, fx.testCSV, q.tau, q.delta)
			if err != nil {
				t.Fatalf("trace tau=%g delta=%d: %v", q.tau, q.delta, err)
			}
			if env.Result != nil {
				break
			}
			if n >= maxAttempts {
				t.Fatalf("trace tau=%g delta=%d: job %s %s after %d submissions: %s",
					q.tau, q.delta, env.ID, env.Status, n, env.Error)
			}
		}
		out[qi] = env.Result
	}
	return out
}

// TestChaosSoak is the capstone resilience test: the full stack runs with
// deterministic faults injected at every site — WAL appends, compaction,
// snapshot rename, job execution (errors AND panics), HTTP handlers, and
// the client's own requests — while a retrying client pushes a complete
// federation lifecycle through it. The traced contribution factors must be
// bit-identical to a fault-free run: every injected failure happened before
// a side effect, so every retry was safe.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)

	// Fault-free baseline.
	baseSrv, err := NewWithOptions(Options{DataDir: t.TempDir(), NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, baseSrv)
	baseTS := httptest.NewServer(baseSrv)
	defer baseTS.Close()
	want := runSoak(t, &Client{BaseURL: baseTS.URL, PollInterval: time.Millisecond}, fx)

	// Chaos run: same lifecycle, faults everywhere. Budgets (MaxFaults)
	// guarantee termination; the fixed seed makes reruns reproducible.
	in := faults.New(1009, map[string]faults.Site{
		store.FaultAppend:  {ErrProb: 0.9, MaxFaults: 5},
		store.FaultCompact: {ErrProb: 1, MaxFaults: 1},
		store.FaultRename:  {ErrProb: 1, MaxFaults: 1},
		jobs.FaultRun:      {ErrProb: 0.5, PanicProb: 0.5, MaxFaults: 4},
		FaultHandler:       {ErrProb: 0.6, MaxFaults: 6},
		FaultRequest:       {ErrProb: 0.4, LatencyProb: 0.4, Latency: time.Millisecond, MaxFaults: 8},
	})
	chaosDir := t.TempDir()
	chaosSrv, err := NewWithOptions(Options{
		DataDir:           chaosDir,
		NoSync:            true,
		CompactBytes:      1, // compact after every mutation: exercises the snapshot fault sites
		Logf:              t.Logf,
		Faults:            in,
		JobRetry:          jobs.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		DegradedThreshold: 1, // any WAL failure trips degraded mode
		ProbeInterval:     time.Nanosecond,
		RetryAfter:        time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, chaosSrv)
	chaosTS := httptest.NewServer(chaosSrv)
	defer chaosTS.Close()
	cl := &Client{
		BaseURL:      chaosTS.URL,
		PollInterval: time.Millisecond,
		Retry: &ClientRetryPolicy{
			MaxAttempts: 16,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
			JitterSeed:  1009,
		},
		Faults: in,
	}
	got := runSoak(t, cl, fx)

	// The headline assertion: despite every injected failure, the traced
	// factors converge bit-identically.
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("trace %d (tau=%g delta=%d) diverged under chaos:\n got  %+v\n want %+v",
				i, chaosParams[i].tau, chaosParams[i].delta, got[i], want[i])
		}
	}

	// The soak only counts if the faults actually fired.
	for _, site := range []string{
		store.FaultAppend, store.FaultCompact, store.FaultRename,
		jobs.FaultRun, FaultHandler, FaultRequest,
	} {
		if st := in.SiteStats(site); st.Fired() == 0 {
			t.Errorf("site %s never fired (%+v) — the soak exercised nothing there", site, st)
		}
	}
	if ft := in.Total(); ft < 10 {
		t.Errorf("only %d faults fired across all sites; the soak was too gentle", ft)
	}

	// Degraded mode was entered (threshold 1 + a WAL failure) and cleared.
	snap := chaosSrv.reg.Snapshot()
	if v, _ := snap["ctfl_server_degraded_entered_total"].(int64); v < 1 {
		t.Errorf("degraded mode never entered under chaos (entered_total = %v)", v)
	}
	if v, _ := snap["ctfl_server_degraded"].(float64); v != 0 {
		t.Errorf("server still degraded at soak end (gauge = %v)", v)
	}

	// Fault sites with both error and panic budgets mean some jobs were
	// retried or quarantined; either way the engine must account for every
	// failure it absorbed.
	if js := in.SiteStats(jobs.FaultRun); js.Panics > 0 {
		if v, _ := snap["ctfl_jobs_quarantined_total"].(int64); v < 1 {
			t.Errorf("injector panicked %d jobs but quarantined_total = %v", js.Panics, v)
		}
	}

	// The flight recorder kept evidence of every server-side incident class
	// the injector produced (FaultRequest is client-side — excluded).
	tail := chaosSrv.flightRec.Snapshot(flight.Filter{})
	var walErrs int
	var reqFaults int32
	var jobEvidence bool
	for _, ev := range tail {
		switch ev.Kind {
		case flight.KindWAL:
			if ev.Outcome == flight.OutcomeError {
				walErrs++
			}
		case flight.KindRequest:
			reqFaults += ev.Faults
		case flight.KindJob:
			if ev.Retries > 0 || ev.Err != "" || ev.Aux == 1 {
				jobEvidence = true
			}
		}
	}
	appendErrs := int(in.SiteStats(store.FaultAppend).Errors)
	if walErrs < appendErrs {
		t.Errorf("flight tail retained %d WAL error events, injector fired %d append faults", walErrs, appendErrs)
	}
	handlerErrs := int32(in.SiteStats(FaultHandler).Errors)
	if reqFaults < handlerErrs {
		t.Errorf("request events carry %d fault annotations, injector fired %d handler faults", reqFaults, handlerErrs)
	}
	if in.SiteStats(jobs.FaultRun).Fired() > 0 && !jobEvidence {
		t.Error("job faults fired but no KindJob event shows retries, an error, or quarantine")
	}

	// With DegradedThreshold 1 every WAL failure ticked the SLO engine;
	// repeated failures must have burned the wal_availability budget at
	// least once, and the final probe-verified recovery reset the breach.
	if v, _ := snap[`ctfl_slo_breaches_total{slo="wal_availability"}`].(int64); v < 1 {
		t.Errorf("wal_availability never breached under chaos (breaches = %v)", v)
	}
	if v, _ := snap[`ctfl_slo_breach{slo="wal_availability"}`].(float64); v != 0 {
		t.Errorf("wal_availability still in breach at soak end (gauge = %v)", v)
	}

	// The incident survives export: the binary /v1/events snapshot decodes
	// and re-encodes bit-identically, as does the debug bundle's capture.
	req, _ := http.NewRequest(http.MethodGet, chaosTS.URL+"/v1/events?kind=wal", nil)
	req.Header.Set("Accept", protocol.ContentTypeFrame)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events?kind=wal: status %d err %v", resp.StatusCode, err)
	}
	f, _, err := protocol.ParseFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := protocol.ParseFlightEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < appendErrs {
		t.Errorf("binary WAL snapshot has %d events, want >= %d", len(evs), appendErrs)
	}
	again, err := protocol.AppendFlightEvents(nil, evs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again) {
		t.Error("chaos events frame decode → re-encode is not bit-identical")
	}

	bresp, err := http.Get(chaosTS.URL + "/v1/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	var bundle DebugBundle
	err = json.NewDecoder(bresp.Body).Decode(&bundle)
	bresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Events) == 0 {
		t.Fatal("chaos debug bundle captured no events")
	}
	bevs := make([]flight.Event, len(bundle.Events))
	for i, ej := range bundle.Events {
		if bevs[i], err = ej.event(); err != nil {
			t.Fatal(err)
		}
	}
	bframe, err := protocol.AppendFlightEvents(nil, bevs)
	if err != nil {
		t.Fatal(err)
	}
	bf, _, err := protocol.ParseFrame(bframe)
	if err != nil {
		t.Fatal(err)
	}
	bdec, err := protocol.ParseFlightEvents(bf)
	if err != nil {
		t.Fatal(err)
	}
	bagain, err := protocol.AppendFlightEvents(nil, bdec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bframe, bagain) {
		t.Error("chaos bundle events do not round-trip bit-identically through the type-7 codec")
	}
}
