package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// rawJobEnv decodes a trace-job envelope keeping the result as raw bytes,
// so tests can compare scores byte-for-byte.
type rawJobEnv struct {
	ID       string          `json:"id"`
	Status   string          `json:"status"`
	CacheHit bool            `json:"cache_hit"`
	Error    string          `json:"error"`
	Result   json.RawMessage `json:"result"`
}

func newDurable(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := NewWithOptions(Options{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func closeServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func publishAll(t *testing.T, ts *httptest.Server, fx *federationFixture) {
	t.Helper()
	if resp := post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("encoder status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/v1/model", "application/octet-stream", fx.modelBytes); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("model status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/v1/uploads", "application/octet-stream", fx.frames); resp.StatusCode != http.StatusOK {
		t.Fatalf("uploads status %d", resp.StatusCode)
	}
}

func traceRaw(t *testing.T, ts *httptest.Server, path string, csv []byte) rawJobEnv {
	t.Helper()
	resp := post(t, ts, path, "text/csv", csv)
	var env rawJobEnv
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || env.Status != "done" {
		t.Fatalf("trace %s: status %d, job %+v", path, resp.StatusCode, env)
	}
	return env
}

// TestRestartReproducesTraceByteForByte is the acceptance test of the
// durable store: a server recreated from the same data dir must reproduce
// pre-restart /v1/trace output exactly, whether it recovers from a final
// snapshot (graceful shutdown) or from the raw WAL (crash).
func TestRestartReproducesTraceByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	dir := t.TempDir()

	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	publishAll(t, ts1, fx)
	before := traceRaw(t, ts1, "/v1/trace?tau=0.9&delta=2&wait=60s", fx.testCSV)
	ts1.Close()

	t.Run("crash-recovery-from-wal", func(t *testing.T) {
		// s1 was not closed: no final snapshot exists, so this boot replays
		// the write-ahead log alone.
		if _, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil {
			t.Fatal(err)
		}
		s2, err := NewWithOptions(Options{DataDir: dir, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(s2)
		after := traceRaw(t, ts2, "/v1/trace?tau=0.9&delta=2&wait=60s", fx.testCSV)
		ts2.Close()
		closeServer(t, s2) // graceful: writes the snapshot the next subtest uses
		if !bytes.Equal(before.Result, after.Result) {
			t.Fatalf("trace diverged across WAL recovery:\n%s\nvs\n%s", before.Result, after.Result)
		}
	})

	t.Run("recovery-from-final-snapshot", func(t *testing.T) {
		// The previous subtest closed gracefully: state now lives in a
		// snapshot and the WAL is empty.
		s3 := newDurable(t, dir)
		ts3 := httptest.NewServer(s3)
		defer ts3.Close()
		defer closeServer(t, s3)
		after := traceRaw(t, ts3, "/v1/trace?tau=0.9&delta=2&wait=60s", fx.testCSV)
		if !bytes.Equal(before.Result, after.Result) {
			t.Fatalf("trace diverged across snapshot recovery:\n%s\nvs\n%s", before.Result, after.Result)
		}
		// Health must agree the full federation came back.
		h, err := (&Client{BaseURL: ts3.URL}).Health(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if h["participants"].(float64) != float64(fx.parts) || h["durable"] != true {
			t.Fatalf("health after recovery = %v", h)
		}
	})
}

func TestAsyncTraceFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	publishAll(t, ts, fx)

	// Submit without wait: 202 + job id + Location.
	resp := post(t, ts, "/v1/trace?tau=0.9&delta=2", "text/csv", fx.testCSV)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var env TraceJobResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.ID == "" || resp.Header.Get("Location") != "/v1/trace/"+env.ID {
		t.Fatalf("submit envelope = %+v, location %q", env, resp.Header.Get("Location"))
	}

	// Poll until terminal.
	cl := &Client{BaseURL: ts.URL}
	deadline := time.Now().Add(60 * time.Second)
	var job *TraceJobResponse
	for {
		var err error
		if job, err = cl.TraceJob(context.Background(), env.ID); err != nil {
			t.Fatal(err)
		}
		if job.Status == "done" || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.Status != "done" || job.Result == nil || len(job.Result.Micro) != fx.parts {
		t.Fatalf("polled job = %+v", job)
	}

	// Unknown job ids are 404.
	r404, err := http.Get(ts.URL + "/v1/trace/job-99999999")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", r404.StatusCode)
	}
}

// TestConcurrentTraceAndUploads drives simultaneous trace submissions and
// upload registrations; run under -race (scripts/check.sh) this is the
// lock-contention acceptance test: scoring never blocks uploads.
func TestConcurrentTraceAndUploads(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	ts := httptest.NewServer(New())
	defer ts.Close()
	publishAll(t, ts, fx)

	const tracers, uploaders = 6, 3
	var wg sync.WaitGroup
	errs := make(chan error, tracers+uploaders)
	for g := 0; g < tracers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct tau per goroutine defeats the result cache, so every
			// request exercises the full submit→compute path.
			path := fmt.Sprintf("/v1/trace?tau=0.9%d&wait=60s", g)
			resp, err := http.Post(ts.URL+path, "text/csv", bytes.NewReader(fx.testCSV))
			if err != nil {
				errs <- err
				return
			}
			var env TraceJobResponse
			err = json.NewDecoder(resp.Body).Decode(&env)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if env.Status != "done" || env.Result == nil {
				errs <- fmt.Errorf("trace %d: %+v", g, env)
			}
		}(g)
	}
	for g := 0; g < uploaders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(ts.URL+"/v1/uploads", "application/octet-stream", bytes.NewReader(fx.frames))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("upload status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBodySizeCap(t *testing.T) {
	s, err := NewWithOptions(Options{MaxBodyBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	big := bytes.Repeat([]byte("x"), 1024)
	for _, path := range []string{"/v1/encoder", "/v1/model", "/v1/trace"} {
		resp := post(t, ts, path, "application/octet-stream", big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status %d", path, resp.StatusCode)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: 413 body not JSON: %v", path, err)
		}
		resp.Body.Close()
		if body["error"] == "" {
			t.Fatalf("%s: empty 413 error", path)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	dir := t.TempDir()
	s := newDurable(t, dir)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer closeServer(t, s)
	publishAll(t, ts, fx)
	traceRaw(t, ts, "/v1/trace?wait=60s", fx.testCSV)
	traceRaw(t, ts, "/v1/trace?wait=60s", fx.testCSV) // cache hit

	st, err := (&Client{BaseURL: ts.URL}).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var reqs map[string]int64
	if err := json.Unmarshal(st.Requests, &reqs); err != nil {
		t.Fatal(err)
	}
	if reqs["/v1/trace"] != 2 || reqs["/v1/uploads"] != 1 {
		t.Fatalf("request counters = %v", reqs)
	}
	if st.Jobs["done"] != 1 || st.Jobs["cache_hits"] != 1 || st.Jobs["submitted"] != 1 {
		t.Fatalf("job counters = %v", st.Jobs)
	}
	if st.Store == nil || st.Store.WALEvents == 0 {
		t.Fatalf("store metrics = %+v", st.Store)
	}
	if st.State["records"].(float64) == 0 || st.State["version"].(float64) == 0 {
		t.Fatalf("state = %v", st.State)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", st.UptimeSeconds)
	}
}

// TestWALCompactionUnderUploadPressure forces compaction mid-lifecycle with
// a tiny CompactBytes and verifies recovery still reproduces exact scores.
func TestWALCompactionUnderUploadPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	fx := buildFederation(t)
	dir := t.TempDir()
	s1, err := NewWithOptions(Options{DataDir: dir, CompactBytes: 512, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	publishAll(t, ts1, fx)
	before := traceRaw(t, ts1, "/v1/trace?wait=60s", fx.testCSV)
	ts1.Close()
	closeServer(t, s1)

	s2 := newDurable(t, dir)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer closeServer(t, s2)
	after := traceRaw(t, ts2, "/v1/trace?wait=60s", fx.testCSV)
	if !bytes.Equal(before.Result, after.Result) {
		t.Fatalf("trace diverged after compaction:\n%s\nvs\n%s", before.Result, after.Result)
	}
}
