package server

// Observability surface: every route runs through a middleware that stamps
// a request id, emits a structured access-log line, counts and times the
// request, and opens the root span of the request's trace tree. The
// aggregate state is exported three ways — Prometheus text on GET /metrics,
// a JSON snapshot merged into GET /v1/stats, and recent span trees on
// GET /v1/traces/recent.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/flight"
	"repro/internal/telemetry"
)

// statusWriter captures the status code, body size, and (for failures) a
// prefix of the body a handler produced, for the access log, the root
// span, and the request's flight event.
type statusWriter struct {
	http.ResponseWriter
	code    int
	bytes   int64
	errBody []byte // first bytes of a 4xx/5xx body, for flight Err detail
}

// errBodyCap bounds the error-body prefix retained per request.
const errBodyCap = 256

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	if w.code >= 400 && len(w.errBody) < errBodyCap {
		w.errBody = append(w.errBody, p[:min(len(p), errBodyCap-len(w.errBody))]...)
	}
	return n, err
}

// errDetail renders the retained failure-body prefix as a single log-safe
// line for the flight event.
func (w *statusWriter) errDetail() string {
	if w.code < 400 || len(w.errBody) == 0 {
		return ""
	}
	return strings.TrimSpace(string(w.errBody))
}

// reqExtras carries handler-level annotations back to the middleware's
// flight event: fault injections fired and result-cache hits observed
// while serving this request.
type reqExtras struct {
	faults   int32
	cacheHit bool
}

type reqExtrasKey struct{}

func withReqExtras(ctx context.Context, ex *reqExtras) context.Context {
	return context.WithValue(ctx, reqExtrasKey{}, ex)
}

// extrasFrom returns the request's annotation slot, or nil outside the
// middleware (e.g. direct handler tests).
func extrasFrom(ctx context.Context) *reqExtras {
	ex, _ := ctx.Value(reqExtrasKey{}).(*reqExtras)
	return ex
}

// route registers a handler behind the telemetry middleware: request-id
// propagation, per-route counter + latency histogram, in-flight gauge,
// root span, and one access-log line per request.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	reqs := s.reg.Counter(fmt.Sprintf("ctfl_http_requests_total{route=%q}", pattern),
		"HTTP requests served, by route")
	errs := s.reg.Counter(fmt.Sprintf("ctfl_http_errors_total{route=%q}", pattern),
		"HTTP 5xx responses, by route")
	lat := s.reg.Histogram(fmt.Sprintf("ctfl_http_request_seconds{route=%q}", pattern),
		"HTTP request latency, by route", nil)
	// Each route is its own latency objective: the histogram already
	// bucketizes, so the objective just counts observations over the bound.
	s.slo.Add(telemetry.SLOConfig{
		Name:   "latency:" + pattern,
		Source: telemetry.HistogramSLOSource{H: lat, Bound: s.opts.SLOLatencyBound},
	})
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = telemetry.NewRequestID()
		}
		reqLog := s.log.With("request_id", id)
		ctx := telemetry.WithRequestID(r.Context(), id)
		ctx = telemetry.WithLogger(ctx, reqLog)
		ctx = telemetry.WithSpanLog(ctx, s.spans)
		ex := &reqExtras{}
		ctx = withReqExtras(ctx, ex)
		ctx, span := telemetry.StartSpan(ctx, "http "+pattern)
		span.SetAttr("method", r.Method)
		span.SetAttr("request_id", id)

		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.requests.Add(pattern, 1)
		reqs.Inc()
		s.inFlight.Add(1)
		r = r.WithContext(ctx)
		// The cluster gate answers misdirected requests (wrong shard) and
		// fenced writes (follower) before the handler runs, so they have no
		// effect and still get full request accounting.
		if !s.clusterGate(sw, r, pattern) {
			h(sw, r)
		}
		s.inFlight.Add(-1)

		d := time.Since(t0)
		lat.Observe(d.Seconds())
		s.httpResponses.Inc()
		if sw.code >= 500 {
			errs.Inc()
			s.httpServerErrors.Inc()
		}

		// Every request becomes one wide flight event; the recorder decides
		// retention (tail-pins failures, rejections, faults, slow outliers).
		outcome := flight.OutcomeOK
		switch {
		case sw.code >= 500:
			outcome = flight.OutcomeError
		case sw.code >= 400:
			outcome = flight.OutcomeRejected
		}
		s.flightRec.Record(flight.Event{
			Kind:       flight.KindRequest,
			Outcome:    outcome,
			Status:     int32(sw.code),
			Route:      pattern,
			Method:     r.Method,
			RequestID:  id,
			DurationNs: d.Nanoseconds(),
			BytesIn:    max(r.ContentLength, 0),
			BytesOut:   sw.bytes,
			Faults:     ex.faults,
			CacheHit:   ex.cacheHit,
			Degraded:   s.degradedGauge.Value() != 0,
			Err:        sw.errDetail(),
		})

		span.SetAttr("status", sw.code)
		span.End()
		reqLog.Info("request",
			"method", r.Method,
			"route", pattern,
			"status", sw.code,
			"bytes", sw.bytes,
			"duration_ms", float64(d)/float64(time.Millisecond),
		)
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	// Staleness is a passive gauge: refresh it from the engine clock at
	// scrape time so Prometheus sees how long the scores have sat still.
	s.mu.RLock()
	eng := s.st.rounds
	s.mu.RUnlock()
	if eng != nil {
		s.roundsObs.Staleness.Set(eng.Staleness().Seconds())
	}
	// Process runtime gauges are likewise pull-refreshed at scrape time.
	s.runtime.Collect()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// TracesResponse is the shape of GET /v1/traces/recent.
type TracesResponse struct {
	// Total counts every root span ever recorded; Traces holds the most
	// recent ones (ring-buffer bounded), newest first.
	Total  int64                `json:"total"`
	Traces []telemetry.SpanView `json:"traces"`
}

// handleTracesRecent serves recent request trace trees, newest first.
// ?n= bounds the count (default 20).
func (s *Server) handleTracesRecent(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	n, err := queryInt(r, "n", 20)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, TracesResponse{Total: s.spans.Total(), Traces: s.spans.Recent(n)})
}
