package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// flakyHandler answers 503 (+Retry-After) for the first fail requests to
// each path, then delegates to ok.
type flakyHandler struct {
	fails int64
	seen  atomic.Int64
	ok    http.Handler
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.seen.Add(1) <= h.fails {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"synthetic outage"}`))
		return
	}
	h.ok.ServeHTTP(w, r)
}

func fastRetry(attempts int) *ClientRetryPolicy {
	return &ClientRetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		JitterSeed:  1,
	}
}

// TestClientRetries503WithRetryAfter: 503 rejections are retried even on the
// non-idempotent uploads path, because the server rejects before any state
// change.
func TestClientRetries503WithRetryAfter(t *testing.T) {
	h := &flakyHandler{fails: 2, ok: New()}
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL, Retry: fastRetry(5)}
	// /healthz after two 503s: the retry loop must push through.
	if _, err := cl.Health(context.Background()); err != nil {
		t.Fatalf("health did not survive transient 503s: %v", err)
	}
	if got := h.seen.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
	}
}

// TestClientRetryExhaustion: a persistent 503 eventually surfaces after
// MaxAttempts tries.
func TestClientRetryExhaustion(t *testing.T) {
	h := &flakyHandler{fails: 1 << 30, ok: New()}
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL, Retry: fastRetry(3)}
	_, err := cl.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Fatalf("err = %v, want surfaced 503", err)
	}
	if got := h.seen.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=3", got)
	}
}

// TestClientTransportErrorRetryGating: a severed connection is an ambiguous
// transport failure. The idempotent health call must consume its retry
// budget; the non-idempotent uploads call must fail on the first attempt.
func TestClientTransportErrorRetryGating(t *testing.T) {
	var dials atomic.Int64
	// A server that accepts and immediately severs connections produces
	// transport errors after the request was (possibly) sent.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dials.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("no hijacker")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Fatal(err)
		}
		conn.Close() // slam the door: client sees EOF with no status
	}))
	defer ts.Close()

	cl := &Client{BaseURL: ts.URL, Retry: fastRetry(4)}
	if _, err := cl.Health(context.Background()); err == nil {
		t.Fatal("severed health should error")
	}
	if got := dials.Load(); got != 4 {
		t.Fatalf("idempotent call attempted %d times, want 4 (retried)", got)
	}

	dials.Store(0)
	err := cl.do(context.Background(), http.MethodPost, "/v1/uploads", "application/octet-stream", "", []byte{1}, nil, false)
	if err == nil {
		t.Fatal("severed upload should error")
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("non-idempotent call attempted %d times, want 1 (not retried)", got)
	}
}

// TestClientInjectedFaultsRetried: pre-send injected failures never reach
// the wire and are always retried, even for uploads.
func TestClientInjectedFaultsRetried(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	in := faults.New(3, map[string]faults.Site{
		FaultRequest: {ErrProb: 1, MaxFaults: 2},
	})
	cl := &Client{BaseURL: ts.URL, Retry: fastRetry(5), Faults: in}
	if err := cl.do(context.Background(), http.MethodPost, "/x", "", "", []byte{1}, nil, false); err != nil {
		t.Fatalf("injected faults not retried: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (injections fired pre-send)", hits.Load())
	}
	if in.SiteStats(FaultRequest).Errors != 2 {
		t.Fatalf("injector stats = %+v", in.SiteStats(FaultRequest))
	}
}

// TestClientNoRetryByDefault: a nil Retry preserves single-attempt
// behaviour.
func TestClientNoRetryByDefault(t *testing.T) {
	h := &flakyHandler{fails: 1, ok: New()}
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}
	if _, err := cl.Health(context.Background()); err == nil {
		t.Fatal("single 503 should surface without retries")
	}
	if h.seen.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", h.seen.Load())
	}
}

// TestClientBackoffDeterministicAndBounded: the jittered schedule replays
// identically for a fixed seed and stays inside [Base/2, Max).
func TestClientBackoffDeterministicAndBounded(t *testing.T) {
	p := ClientRetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, JitterSeed: 7}
	seq := func() []time.Duration {
		c := &Client{Retry: &p}
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = c.backoffDelay(p.withDefaults(), i+1)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d diverged across identical seeds: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 5*time.Millisecond || a[i] >= 80*time.Millisecond {
			t.Fatalf("delay %d = %v outside [Base/2, Max)", i, a[i])
		}
	}
	// The window must actually grow with the attempt number.
	if a[3] <= 10*time.Millisecond && a[4] <= 10*time.Millisecond && a[5] <= 10*time.Millisecond {
		t.Fatalf("late delays never exceeded the base window: %v", a)
	}
}
