package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/flight"
	"repro/internal/protocol"
	"repro/internal/store"
)

// TestSLOBurnTripsAndClearsDegraded drives the SLO path into and out of
// degraded mode without ever reaching the consecutive-failure threshold:
// wal_availability burn trips the controller, burn decay clears it.
func TestSLOBurnTripsAndClearsDegraded(t *testing.T) {
	fx := buildFederation(t)
	in := faults.New(77, map[string]faults.Site{
		store.FaultAppend: {ErrProb: 1, MaxFaults: 2},
	})
	s, err := NewWithOptions(Options{
		DataDir: t.TempDir(),
		Logf:    t.Logf,
		Faults:  in,
		// The blunt threshold is far away and probes are effectively off:
		// only the SLO engine can change the controller's mind here.
		DegradedThreshold: 1000,
		ProbeInterval:     time.Hour,
		SLOInterval:       -1, // no background ticker; ticks are synchronous
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Failure 1 seeds the objective's differencing baseline: a single
	// cumulative sample can't show a burn, so the server must NOT degrade.
	resp := post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failure 1 status = %d, want 503", resp.StatusCode)
	}
	if deg, _ := healthState(t, ts)["degraded"].(bool); deg {
		t.Fatal("degraded after one WAL failure; burn needs two samples")
	}

	// Failure 2: the delta is 100% bad → burn far beyond both thresholds →
	// the SLO trips degraded mode (threshold 1000 never fired).
	resp = post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failure 2 status = %d, want 503", resp.StatusCode)
	}
	if deg, _ := healthState(t, ts)["degraded"].(bool); !deg {
		t.Fatal("not degraded after wal_availability burn")
	}
	snap := s.reg.Snapshot()
	if v, _ := snap["ctfl_server_degraded_slo_trips_total"].(int64); v != 1 {
		t.Fatalf("degraded_slo_trips_total = %v, want 1", snap["ctfl_server_degraded_slo_trips_total"])
	}
	if v, _ := snap["ctfl_server_degraded_entered_total"].(int64); v != 1 {
		t.Fatalf("degraded_entered_total = %v, want 1", snap["ctfl_server_degraded_entered_total"])
	}
	if v, _ := snap[`ctfl_slo_breaches_total{slo="wal_availability"}`].(int64); v != 1 {
		t.Fatalf("slo breaches = %v, want 1", snap[`ctfl_slo_breaches_total{slo="wal_availability"}`])
	}

	// The incident is on the flight recorder's pinned tail: WAL append
	// failures and the degraded transition itself.
	var sawAppend, sawEntered bool
	for _, ev := range s.flightRec.Snapshot(flight.Filter{Kind: flight.KindWAL}) {
		switch {
		case ev.Outcome == flight.OutcomeError && ev.Route == "store.append":
			sawAppend = true
		case ev.Outcome == flight.OutcomeDegraded && ev.Route == "server.degraded":
			sawEntered = true
		}
	}
	if !sawAppend || !sawEntered {
		t.Fatalf("flight tail missing WAL incident evidence: append=%v entered=%v", sawAppend, sawEntered)
	}

	// An hour later with no further WAL traffic the burn is zero in both
	// windows; the SLO clear transition lifts degradation — no probe ran.
	s.mu.Lock()
	s.sloTickLocked(time.Now().Add(time.Hour))
	s.mu.Unlock()
	if deg, _ := healthState(t, ts)["degraded"].(bool); deg {
		t.Fatal("still degraded after the burn decayed")
	}
	if v, _ := s.reg.Snapshot()["ctfl_server_degraded"].(float64); v != 0 {
		t.Fatalf("degraded gauge = %v, want 0", v)
	}

	// Fault budget exhausted: the write path works again.
	resp = post(t, ts, "/v1/encoder", "application/json", fx.encoderJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-recovery status = %d, want 204", resp.StatusCode)
	}
}

func getEvents(t *testing.T, ts *httptest.Server, query string) EventsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/events" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events%s status = %d", query, resp.StatusCode)
	}
	var er EventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	return er
}

// TestEventsEndpoint exercises the JSON surface: every request becomes an
// event, failures are pinned, and the query filters narrow the snapshot.
func TestEventsEndpoint(t *testing.T) {
	s := New()
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One OK request and one rejected (409: no model yet).
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/rules"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	er := getEvents(t, ts, "")
	if er.Stats.Recorded < 2 || len(er.Events) < 2 {
		t.Fatalf("recorded %d retained %d events, want >= 2", er.Stats.Recorded, len(er.Events))
	}
	var ok, rejected *EventJSON
	for i := range er.Events {
		ev := &er.Events[i]
		switch {
		case ev.Route == "/healthz" && ev.Outcome == "ok":
			ok = ev
		case ev.Route == "/v1/rules" && ev.Outcome == "rejected":
			rejected = ev
		}
	}
	if ok == nil || rejected == nil {
		t.Fatalf("missing events: healthz=%v rules=%v in %+v", ok != nil, rejected != nil, er.Events)
	}
	if rejected.Status != http.StatusConflict || rejected.Err == "" {
		t.Fatalf("rejected event lacks status/err detail: %+v", rejected)
	}
	if ok.RequestID == "" || ok.Method != http.MethodGet || ok.DurationNs <= 0 {
		t.Fatalf("ok event underfilled: %+v", ok)
	}

	// Outcome filter: only the rejection.
	er = getEvents(t, ts, "?outcome=rejected")
	for _, ev := range er.Events {
		if ev.Outcome != "rejected" {
			t.Fatalf("outcome filter leaked %+v", ev)
		}
	}
	if len(er.Events) == 0 {
		t.Fatal("outcome=rejected returned nothing")
	}
	// Since filter: strictly after the rejection's sequence → nothing older.
	er = getEvents(t, ts, "?since="+jsonNum(rejected.Seq))
	for _, ev := range er.Events {
		if ev.Seq <= rejected.Seq {
			t.Fatalf("since filter returned seq %d <= %d", ev.Seq, rejected.Seq)
		}
	}

	// Malformed filters are 400s, not silent full snapshots.
	for _, q := range []string{"?since=x", "?min_latency=fast", "?outcome=meh", "?kind=meh", "?n=-1"} {
		resp, err := http.Get(ts.URL + "/v1/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/events%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func jsonNum(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestEventsBinaryRoundTrip pins the wire contract: the binary response is
// one type-7 frame whose decode → re-encode is bit-identical.
func TestEventsBinaryRoundTrip(t *testing.T) {
	s := New()
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()
	for range 3 {
		resp, err := http.Get(ts.URL + "/v1/rules") // 409s → pinned events
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/events", nil)
	req.Header.Set("Accept", protocol.ContentTypeFrame)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != protocol.ContentTypeFrame {
		t.Fatalf("Content-Type = %q, want %q", ct, protocol.ContentTypeFrame)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	f, rest, err := protocol.ParseFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after events frame", len(rest))
	}
	evs, err := protocol.ParseFlightEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("binary snapshot is empty")
	}
	again, err := protocol.AppendFlightEvents(nil, evs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again) {
		t.Fatal("events frame decode → re-encode is not bit-identical")
	}
}

// TestDebugBundle captures the one-shot bundle and proves the embedded
// events survive a JSON → codec → JSON round trip bit-identically.
func TestDebugBundle(t *testing.T) {
	s := New()
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()
	if resp, err := http.Get(ts.URL + "/v1/rules"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle status = %d", resp.StatusCode)
	}
	var b DebugBundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.CapturedAtUnix == 0 || b.Version.GoVersion == "" || b.UptimeSeconds < 0 {
		t.Fatalf("bundle identity underfilled: %+v", b.Version)
	}
	if len(b.SLO) == 0 {
		t.Fatal("bundle has no SLO status")
	}
	if len(b.Events) == 0 || b.FlightStats.Recorded == 0 {
		t.Fatal("bundle has no flight events")
	}
	if _, ok := b.Telemetry["ctfl_process_goroutines"]; !ok {
		t.Fatal("bundle telemetry missing process runtime gauges")
	}

	// Bit-identical codec round trip of the captured events.
	evs := make([]flight.Event, len(b.Events))
	for i, ej := range b.Events {
		ev, err := ej.event()
		if err != nil {
			t.Fatal(err)
		}
		evs[i] = ev
	}
	frame, err := protocol.AppendFlightEvents(nil, evs)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := protocol.ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := protocol.ParseFlightEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	again, err := protocol.AppendFlightEvents(nil, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("bundle events do not round-trip bit-identically through the type-7 codec")
	}
}

// TestVersionEndpoint sanity-checks the build-identity surface.
func TestVersionEndpoint(t *testing.T) {
	s := New()
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" {
		t.Fatalf("version info missing go_version: %+v", v)
	}
}

// TestStatsCarriesObservability pins the /v1/stats additions: SLO status,
// flight accounting, and refreshed process gauges.
func TestStatsCarriesObservability(t *testing.T) {
	s := New()
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.SLO) == 0 {
		t.Fatal("stats has no SLO objectives")
	}
	names := map[string]bool{}
	for _, o := range sr.SLO {
		names[o.Name] = true
	}
	for _, want := range []string{"availability", "wal_availability", "score_staleness", "rounds_ingest_lag"} {
		if !names[want] {
			t.Fatalf("stats SLO missing objective %q (have %v)", want, names)
		}
	}
	if sr.Flight.Recorded == 0 {
		t.Fatal("stats flight accounting empty after a served request")
	}
	g, ok := sr.Telemetry["ctfl_process_goroutines"].(float64)
	if !ok || g <= 0 {
		t.Fatalf("process goroutine gauge not refreshed: %v", sr.Telemetry["ctfl_process_goroutines"])
	}
}

// TestTraceCacheHitAnnotatesFlight submits the same trace twice: the
// second, cache-served request's flight event carries the cache_hit mark,
// and the finished job itself appears as a KindJob event.
func TestTraceCacheHitAnnotatesFlight(t *testing.T) {
	fx := buildFederation(t)
	s, err := NewWithOptions(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()
	publishAll(t, ts, fx)

	for i := range 2 {
		resp := post(t, ts, "/v1/trace?tau=0.9&wait=60s", "text/csv", fx.testCSV)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace %d status = %d: %s", i, resp.StatusCode, body)
		}
	}

	var sawCacheHit, sawJob bool
	for _, ev := range s.flightRec.Snapshot(flight.Filter{}) {
		if ev.Kind == flight.KindRequest && ev.Route == "/v1/trace" && ev.CacheHit {
			sawCacheHit = true
		}
		if ev.Kind == flight.KindJob && ev.Route == "job.trace" && ev.Outcome == flight.OutcomeOK {
			sawJob = true
		}
	}
	if !sawCacheHit {
		t.Fatal("no cache-hit-annotated /v1/trace request event")
	}
	if !sawJob {
		t.Fatal("no KindJob event for the completed trace job")
	}
}
