package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/jobs"
	"repro/internal/nn"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// FaultRequest is the client's fault-injection site, fired before a request
// is sent. Pre-send failures are always safe to retry — nothing reached the
// server. Client.Faults of nil leaves it inert.
const FaultRequest = "client.request"

// defaultHTTPClient bounds every request: a hung server fails the call
// instead of hanging the participant forever.
var defaultHTTPClient = &http.Client{Timeout: 60 * time.Second}

// ClientRetryPolicy tunes the client's exponential-backoff retry loop.
type ClientRetryPolicy struct {
	// MaxAttempts caps total tries per call (first included). Values below
	// 1 mean 1.
	MaxAttempts int
	// BaseDelay is the pre-jitter backoff before the first retry; each
	// further retry doubles it. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the doubling and any server Retry-After hint.
	// Default 2s.
	MaxDelay time.Duration
	// JitterSeed seeds the deterministic jitter stream (full-jitter over the
	// upper half of the backoff window).
	JitterSeed int64
}

func (p ClientRetryPolicy) withDefaults() ClientRetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Client is a typed wrapper over the service's HTTP API, for participants
// and federation tooling. All methods take a context that bounds the whole
// call including retries.
//
// With Retry set, calls that fail retryably are retried with exponential
// backoff + seeded jitter: 503/429 answers (honouring Retry-After, which our
// server sends before any state change, so even uploads may retry them) and
// pre-send injected faults always; transport errors only on idempotent
// calls, because a lost response does not prove the request had no effect.
type Client struct {
	// BaseURL of the service, e.g. "http://localhost:8080". With Shards
	// set, BaseURL is only the fallback for requests that cannot be ring-
	// routed (an empty Fed).
	BaseURL string
	// HTTPClient defaults to a shared client with a 60s timeout.
	HTTPClient *http.Client
	// Retry enables the retry loop; nil disables it (single attempt).
	Retry *ClientRetryPolicy
	// PollInterval paces Trace's job polling (default 50ms).
	PollInterval time.Duration
	// Faults injects pre-send failures at FaultRequest, for resilience
	// testing. Nil disables injection.
	Faults *faults.Injector

	// Shards lists the cluster's ring membership (node base URLs). When
	// set, requests route to Fed's ring owner through the same
	// deterministic consistent-hash ring the servers build, and every
	// request carries Fed in X-CTFL-Fed. A 421 (wrong shard) or a
	// follower's 503 carries the right node in X-CTFL-Shard; the client
	// learns it as an override and retries there — so topology changes
	// (membership edits, failover) converge without reconfiguration.
	Shards []string
	// Fed is the federation id this client addresses; required for ring
	// routing when Shards is set.
	Fed string

	jitterOnce sync.Once
	jitterMu   sync.Mutex
	jitter     *rand.Rand

	ringOnce sync.Once
	ring     *cluster.Ring
	ringErr  error

	// override is the redirect-learned target (X-CTFL-Shard); it beats
	// the ring until a transport failure clears it.
	overrideMu sync.Mutex
	override   string
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 50 * time.Millisecond
}

// backoffDelay computes the pause before retry n (n starts at 1): an
// exponentially growing window with deterministic jitter over its upper
// half, so synchronized clients spread out but a fixed seed replays the
// same schedule.
func (c *Client) backoffDelay(p ClientRetryPolicy, n int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	d = min(d, p.MaxDelay)
	c.jitterOnce.Do(func() { c.jitter = stats.NewRNG(p.JitterSeed) })
	c.jitterMu.Lock()
	f := c.jitter.Float64()
	c.jitterMu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// failKind classifies one failed exchange, which decides retryability.
type failKind int

const (
	failNone       failKind = iota
	failPreSend             // injected before the wire: server never saw it
	failTransport           // sent, no response: effect on the server unknown
	failRejected            // 503/429: the server rejected before any effect
	failMisrouted           // 421: wrong shard, rejected before any effect
	failPermanent           // any other status or a decode error
)

// attempt is one request/response cycle's outcome.
type attempt struct {
	err        error
	kind       failKind
	retryAfter time.Duration // server hint; zero when absent
}

// rawBody captures a response verbatim instead of JSON-decoding it, for
// binary wire-format exchanges.
type rawBody struct {
	contentType string
	data        []byte
}

// baseFor resolves the node one attempt targets: a redirect-learned
// override first, then Fed's ring owner, then BaseURL.
func (c *Client) baseFor() (string, error) {
	c.overrideMu.Lock()
	ov := c.override
	c.overrideMu.Unlock()
	if ov != "" {
		return ov, nil
	}
	if len(c.Shards) == 0 || c.Fed == "" {
		return c.BaseURL, nil
	}
	c.ringOnce.Do(func() { c.ring, c.ringErr = cluster.New(c.Shards, cluster.Config{}) })
	if c.ringErr != nil {
		return "", fmt.Errorf("client: shard ring: %w", c.ringErr)
	}
	return c.ring.Lookup(c.Fed), nil
}

func (c *Client) setOverride(url string) {
	c.overrideMu.Lock()
	c.override = url
	c.overrideMu.Unlock()
}

// doOnce performs a single exchange. body is a byte slice (not a Reader) so
// the retry loop can replay it. accept, when non-empty, is sent as the Accept
// header to negotiate the response encoding.
func (c *Client) doOnce(ctx context.Context, method, path, contentType, accept string, body []byte, out any) attempt {
	if err := c.Faults.Err(FaultRequest); err != nil {
		return attempt{err: fmt.Errorf("client: %s %s: %w", method, path, err), kind: failPreSend}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	base, err := c.baseFor()
	if err != nil {
		return attempt{err: err, kind: failPermanent}
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return attempt{err: err, kind: failPermanent}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if c.Fed != "" {
		req.Header.Set(HeaderFed, c.Fed)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		// The node may be gone (failover, membership change): drop any
		// learned override so the next attempt re-derives from the ring.
		c.setOverride("")
		return attempt{err: err, kind: failTransport}
	}
	// Drain whatever the decode below leaves unread (a 204's empty body,
	// an ignored success payload, a json.Decoder's trailing newline) so
	// the keep-alive connection goes back to the pool instead of being
	// torn down — redialing per request is ruinous under sustained load.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
	}()
	// Any response may carry a better target (the ring owner on 421, the
	// shard leader on a follower's 503); learn it before classifying.
	if sh := resp.Header.Get(HeaderShard); sh != "" {
		c.setOverride(sh)
	}
	if resp.StatusCode >= 400 {
		// A failed trace job polls as 500 *with* the job envelope: that is a
		// successful poll of an unsuccessful job, and the caller (Trace's
		// resubmission loop) wants the envelope, not an opaque error.
		if env, ok := out.(*TraceJobResponse); ok && resp.StatusCode == http.StatusInternalServerError {
			if json.NewDecoder(resp.Body).Decode(env) == nil && jobs.Status(env.Status) == jobs.StatusFailed {
				return attempt{}
			}
			return attempt{
				err:  fmt.Errorf("server: %s %s: status %d", method, path, resp.StatusCode),
				kind: failPermanent,
			}
		}
		a := attempt{kind: failPermanent}
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			a.kind = failRejected
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			// The shard gate rejected before the handler ran: no effect,
			// and the override above points the retry at the owner.
			a.kind = failMisrouted
		}
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs >= 0 {
			a.retryAfter = time.Duration(secs) * time.Second
		}
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			a.err = fmt.Errorf("server: %s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
		} else {
			a.err = fmt.Errorf("server: %s %s: status %d", method, path, resp.StatusCode)
		}
		return a
	}
	if out != nil {
		if raw, ok := out.(*rawBody); ok {
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				return attempt{err: err, kind: failTransport}
			}
			raw.contentType = resp.Header.Get("Content-Type")
			raw.data = data
			return attempt{}
		}
		// A trace poll that negotiated the binary wire format gets the raw
		// result frame instead of the JSON job envelope — only terminal
		// successful jobs are served that way, so decode it as one.
		if env, ok := out.(*TraceJobResponse); ok && strings.HasPrefix(resp.Header.Get("Content-Type"), protocol.ContentTypeFrame) {
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				return attempt{err: err, kind: failTransport}
			}
			f, rest, err := protocol.ParseFrame(data)
			if err == nil && len(rest) != 0 {
				err = fmt.Errorf("%d trailing bytes after trace-result frame", len(rest))
			}
			var tr *protocol.TraceResult
			if err == nil {
				tr, err = protocol.ParseTraceResult(f)
			}
			if err != nil {
				return attempt{err: fmt.Errorf("client: %s %s: %w", method, path, err), kind: failPermanent}
			}
			env.Status = string(jobs.StatusDone)
			env.Result = tr
			return attempt{}
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return attempt{err: err, kind: failPermanent}
		}
	}
	return attempt{}
}

// do runs the retry loop around doOnce. idempotent marks calls whose effect
// is safe to repeat, unlocking retries of ambiguous transport failures;
// pre-send injections and pre-effect 503/429 rejections retry regardless.
func (c *Client) do(ctx context.Context, method, path, contentType, accept string, body []byte, out any, idempotent bool) error {
	p := ClientRetryPolicy{MaxAttempts: 1}.withDefaults()
	if c.Retry != nil {
		p = c.Retry.withDefaults()
	}
	for n := 1; ; n++ {
		a := c.doOnce(ctx, method, path, contentType, accept, body, out)
		if a.err == nil {
			return nil
		}
		retryable := a.kind == failPreSend || a.kind == failRejected ||
			a.kind == failMisrouted || (a.kind == failTransport && idempotent)
		if !retryable || n >= p.MaxAttempts {
			return a.err
		}
		delay := c.backoffDelay(p, n)
		if a.retryAfter > 0 {
			delay = min(max(delay, a.retryAfter), p.MaxDelay)
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// PublishEncoder posts the federation's predicate encoding. Idempotent:
// republishing the same encoder converges to the same state.
func (c *Client) PublishEncoder(ctx context.Context, enc *dataset.Encoder) error {
	data, err := json.Marshal(enc)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/encoder", "application/json", "", data, nil, true)
}

// PublishModel posts the trained global model. Idempotent like the encoder.
func (c *Client) PublishModel(ctx context.Context, m *nn.Model) error {
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/model", "application/octet-stream", "", buf.Bytes(), nil, true)
}

// UploadActivations sends one participant's activation frames. NOT
// idempotent — a duplicated frame double-counts the participant's records —
// so ambiguous transport failures are not retried; 503/429 rejections (which
// the server issues before any state change) still are.
func (c *Client) UploadActivations(ctx context.Context, up *protocol.Upload) error {
	var buf bytes.Buffer
	if err := up.Write(&buf); err != nil {
		return err
	}
	return c.UploadFrames(ctx, buf.Bytes())
}

// UploadFrames sends pre-encoded upload frames (one or more, concatenated)
// exactly as produced by protocol.Upload.Write. The server ingests the
// client's bytes zero-copy, so a caller that already holds wire frames —
// a relay, a replayer, a load generator — skips the re-encode entirely.
// Same idempotency caveats as UploadActivations.
func (c *Client) UploadFrames(ctx context.Context, frames []byte) error {
	return c.do(ctx, http.MethodPost, "/v1/uploads", protocol.ContentTypeFrame, "", frames, nil, false)
}

// PublishRoundEval registers the held-out evaluation set that anchors the
// streaming-valuation engine, resetting any existing score stream.
// Idempotent: re-registering the same set converges to the same state.
func (c *Client) PublishRoundEval(ctx context.Context, test *dataset.Table) error {
	var csv bytes.Buffer
	if err := dataset.WriteCSV(&csv, test); err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/rounds", "text/csv", "", csv.Bytes(), nil, true)
}

// PushRound streams one training round's client updates to the valuation
// engine. NOT idempotent — replaying an ambiguous transport failure could
// double-ingest the round (the server would reject the duplicate round
// number, but the first attempt's effect is unknown) — so only pre-effect
// 503/429 rejections retry.
func (c *Client) PushRound(ctx context.Context, round int, parts []protocol.RoundParticipant) (*RoundResponse, error) {
	frame, err := protocol.AppendRoundUpdate(nil, round, parts)
	if err != nil {
		return nil, err
	}
	var out RoundResponse
	if err := c.do(ctx, http.MethodPost, "/v1/rounds", protocol.ContentTypeFrame, "", frame, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Scores fetches the live contribution scores over the binary wire format.
// minRound > 0 with wait > 0 long-polls until the stream has ingested that
// many rounds (or the wait elapses — the snapshot returned is whatever the
// stream holds then). Read-only, hence idempotent.
func (c *Client) Scores(ctx context.Context, minRound int, wait time.Duration) (*protocol.ScoresSnapshot, error) {
	path := "/v1/scores"
	if minRound > 0 {
		path = fmt.Sprintf("%s?round=%d&wait=%s", path, minRound, wait)
	}
	var raw rawBody
	if err := c.do(ctx, http.MethodGet, path, "", protocol.ContentTypeFrame, nil, &raw, true); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(raw.contentType, protocol.ContentTypeFrame) {
		return nil, fmt.Errorf("client: scores response has Content-Type %q, want %s", raw.contentType, protocol.ContentTypeFrame)
	}
	f, rest, err := protocol.ParseFrame(raw.data)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("%d trailing bytes after scores-snapshot frame", len(rest))
	}
	if err != nil {
		return nil, fmt.Errorf("client: scores response: %w", err)
	}
	return protocol.ParseScoresSnapshot(f)
}

// Trace scores a reserved test table at the given tracing parameters,
// waiting synchronously for the asynchronous trace job to finish: submit,
// then poll at PollInterval. A job that *failed* server-side is resubmitted
// (failed jobs are never cached, so the resubmission reruns the trace) up to
// the retry policy's attempt budget.
func (c *Client) Trace(ctx context.Context, test *dataset.Table, tau float64, delta int) (*TraceResponse, error) {
	var csv bytes.Buffer
	if err := dataset.WriteCSV(&csv, test); err != nil {
		return nil, err
	}
	maxAttempts := 1
	if c.Retry != nil {
		maxAttempts = c.Retry.withDefaults().MaxAttempts
	}
	var env *TraceJobResponse
	for n := 1; ; n++ {
		var err error
		env, err = c.traceOnce(ctx, csv.Bytes(), tau, delta)
		if err != nil {
			return nil, err
		}
		if env.Result != nil {
			return env.Result, nil
		}
		if n >= maxAttempts {
			return nil, fmt.Errorf("server: trace job %s %s: %s", env.ID, env.Status, env.Error)
		}
	}
}

// traceOnce submits the trace and polls it to a terminal status.
func (c *Client) traceOnce(ctx context.Context, csv []byte, tau float64, delta int) (*TraceJobResponse, error) {
	path := fmt.Sprintf("/v1/trace?tau=%g&delta=%d", tau, delta)
	var env TraceJobResponse
	// Trace submission is content-addressed (test set + params + state
	// version), so duplicates dedup server-side: idempotent.
	if err := c.do(ctx, http.MethodPost, path, "text/csv", protocol.ContentTypeFrame, csv, &env, true); err != nil {
		return nil, err
	}
	for {
		switch jobs.Status(env.Status) {
		case jobs.StatusDone, jobs.StatusFailed:
			return &env, nil
		}
		t := time.NewTimer(c.pollInterval())
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
		next, err := c.TraceJob(ctx, env.ID)
		if err != nil {
			return nil, err
		}
		env = *next
	}
}

// TraceAsync submits a trace job without waiting; poll with TraceJob.
func (c *Client) TraceAsync(ctx context.Context, test *dataset.Table, tau float64, delta int) (*TraceJobResponse, error) {
	var csv bytes.Buffer
	if err := dataset.WriteCSV(&csv, test); err != nil {
		return nil, err
	}
	path := fmt.Sprintf("/v1/trace?tau=%g&delta=%d", tau, delta)
	var out TraceJobResponse
	if err := c.do(ctx, http.MethodPost, path, "text/csv", "", csv.Bytes(), &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// TraceJob polls one trace job's status and (when done) result.
func (c *Client) TraceJob(ctx context.Context, id string) (*TraceJobResponse, error) {
	var out TraceJobResponse
	if err := c.do(ctx, http.MethodGet, "/v1/trace/"+id, "", protocol.ContentTypeFrame, nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Predict scores a batch of encoded feature rows against the published
// model over the binary wire format. rows is row-major with width values
// per row (the encoder's {0,1} predicate outputs); the returned slice holds
// one pre-threshold score per row. Scoring is read-only, hence idempotent.
func (c *Client) Predict(ctx context.Context, width int, rows []float32) ([]float64, error) {
	frame, err := protocol.AppendPredictRequest(nil, width, rows)
	if err != nil {
		return nil, err
	}
	var raw rawBody
	if err := c.do(ctx, http.MethodPost, "/v1/predict", protocol.ContentTypeFrame, protocol.ContentTypeFrame, frame, &raw, true); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(raw.contentType, protocol.ContentTypeFrame) {
		return nil, fmt.Errorf("client: predict response has Content-Type %q, want %s", raw.contentType, protocol.ContentTypeFrame)
	}
	f, rest, err := protocol.ParseFrame(raw.data)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("%d trailing bytes after predict-response frame", len(rest))
	}
	if err != nil {
		return nil, fmt.Errorf("client: predict response: %w", err)
	}
	return protocol.ParsePredictResponse(f, nil)
}

// Stats fetches the service's observability counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", "", "", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus text exposition of the server's metric
// registry, verbatim.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", fmt.Errorf("server: GET /metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// TracesRecent fetches up to n recent request trace trees, newest first
// (n <= 0 uses the server default).
func (c *Client) TracesRecent(ctx context.Context, n int) (*TracesResponse, error) {
	path := "/v1/traces/recent"
	if n > 0 {
		path = fmt.Sprintf("%s?n=%d", path, n)
	}
	var out TracesResponse
	if err := c.do(ctx, http.MethodGet, path, "", "", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rules fetches the extracted rule set.
func (c *Client) Rules(ctx context.Context) ([]RuleJSON, error) {
	var out []RuleJSON
	if err := c.do(ctx, http.MethodGet, "/v1/rules", "", "", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Health fetches the liveness/state summary.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/healthz", "", "", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}
