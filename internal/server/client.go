package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/protocol"
)

// Client is a typed wrapper over the service's HTTP API, for participants
// and federation tooling.
type Client struct {
	// BaseURL of the service, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// PublishEncoder posts the federation's predicate encoding.
func (c *Client) PublishEncoder(enc *dataset.Encoder) error {
	data, err := json.Marshal(enc)
	if err != nil {
		return err
	}
	return c.do(http.MethodPost, "/v1/encoder", "application/json", bytes.NewReader(data), nil)
}

// PublishModel posts the trained global model.
func (c *Client) PublishModel(m *nn.Model) error {
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		return err
	}
	return c.do(http.MethodPost, "/v1/model", "application/octet-stream", &buf, nil)
}

// UploadActivations sends one participant's activation frames.
func (c *Client) UploadActivations(up *protocol.Upload) error {
	var buf bytes.Buffer
	if err := up.Write(&buf); err != nil {
		return err
	}
	return c.do(http.MethodPost, "/v1/uploads", "application/octet-stream", &buf, nil)
}

// Trace scores a reserved test table at the given tracing parameters,
// waiting synchronously for the asynchronous trace job to finish.
func (c *Client) Trace(test *dataset.Table, tau float64, delta int) (*TraceResponse, error) {
	job, err := c.trace(test, tau, delta, "&wait=120s")
	if err != nil {
		return nil, err
	}
	if job.Result == nil {
		return nil, fmt.Errorf("server: trace job %s %s: %s", job.ID, job.Status, job.Error)
	}
	return job.Result, nil
}

// TraceAsync submits a trace job without waiting; poll with TraceJob.
func (c *Client) TraceAsync(test *dataset.Table, tau float64, delta int) (*TraceJobResponse, error) {
	return c.trace(test, tau, delta, "")
}

func (c *Client) trace(test *dataset.Table, tau float64, delta int, wait string) (*TraceJobResponse, error) {
	var csv bytes.Buffer
	if err := dataset.WriteCSV(&csv, test); err != nil {
		return nil, err
	}
	path := fmt.Sprintf("/v1/trace?tau=%g&delta=%d%s", tau, delta, wait)
	var out TraceJobResponse
	if err := c.do(http.MethodPost, path, "text/csv", &csv, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TraceJob polls one trace job's status and (when done) result.
func (c *Client) TraceJob(id string) (*TraceJobResponse, error) {
	var out TraceJobResponse
	if err := c.do(http.MethodGet, "/v1/trace/"+id, "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the service's observability counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(http.MethodGet, "/v1/stats", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus text exposition of the server's metric
// registry, verbatim.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http().Get(c.BaseURL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", fmt.Errorf("server: GET /metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// TracesRecent fetches up to n recent request trace trees, newest first
// (n <= 0 uses the server default).
func (c *Client) TracesRecent(n int) (*TracesResponse, error) {
	path := "/v1/traces/recent"
	if n > 0 {
		path = fmt.Sprintf("%s?n=%d", path, n)
	}
	var out TracesResponse
	if err := c.do(http.MethodGet, path, "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rules fetches the extracted rule set.
func (c *Client) Rules() ([]RuleJSON, error) {
	var out []RuleJSON
	if err := c.do(http.MethodGet, "/v1/rules", "", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health fetches the liveness/state summary.
func (c *Client) Health() (map[string]any, error) {
	var out map[string]any
	if err := c.do(http.MethodGet, "/healthz", "", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
