// Package fpm implements Max-Miner (Bayardo, SIGMOD 1998), a search for
// maximal frequent itemsets, i.e. frequent itemsets none of whose supersets
// are frequent.
//
// CTFL uses Max-Miner as a performance optimization for contribution tracing
// (Section III-C "Efficient Computation of CTFL"): test instances are grouped
// by the maximal frequent subsets of their rule-activation vectors, the
// related training data is computed once per group against the group's
// shared rule subset, and only the survivors are checked per instance.
//
// Transactions are represented vertically: for every item we keep a bitset
// over transactions, which makes support counting a popcount intersection.
package fpm

import (
	"sort"

	"repro/internal/bitset"
)

// Itemset is a sorted list of item ids with its support count.
type Itemset struct {
	Items   []int
	Support int
}

// candidateGroup is Max-Miner's node: a head itemset plus the ordered tail of
// items that may still extend it.
type candidateGroup struct {
	head    []int
	tail    []int
	headSet *bitset.Set // transactions containing every head item
}

// Miner holds the vertical representation of a transaction database.
type Miner struct {
	numTx   int
	item2tx []*bitset.Set // item id -> transactions containing it
}

// NewMiner builds a Miner from transactions given as item-id lists.
// numItems is the size of the item universe; ids must be in [0, numItems).
func NewMiner(transactions [][]int, numItems int) *Miner {
	m := &Miner{numTx: len(transactions), item2tx: make([]*bitset.Set, numItems)}
	for i := range m.item2tx {
		m.item2tx[i] = bitset.New(len(transactions))
	}
	for tx, items := range transactions {
		for _, it := range items {
			m.item2tx[it].Set(tx)
		}
	}
	return m
}

// NewMinerFromSets builds a Miner from transactions that are already bitsets
// over the item universe (e.g. rule-activation vectors).
func NewMinerFromSets(transactions []*bitset.Set, numItems int) *Miner {
	m := &Miner{numTx: len(transactions), item2tx: make([]*bitset.Set, numItems)}
	for i := range m.item2tx {
		m.item2tx[i] = bitset.New(len(transactions))
	}
	for tx, s := range transactions {
		for _, it := range s.Indices() {
			m.item2tx[it].Set(tx)
		}
	}
	return m
}

// NumTransactions reports the number of transactions the miner indexes.
func (m *Miner) NumTransactions() int { return m.numTx }

// support returns the number of transactions containing all items of base∩extra.
func (m *Miner) supportWith(base *bitset.Set, items []int) int {
	if len(items) == 0 {
		if base == nil {
			return m.numTx
		}
		return base.Count()
	}
	acc := m.item2tx[items[0]].Clone()
	if base != nil {
		acc.And(base)
	}
	for _, it := range items[1:] {
		acc.And(m.item2tx[it])
		if !acc.Any() {
			return 0
		}
	}
	return acc.Count()
}

// Support returns the support count of the given itemset.
func (m *Miner) Support(items []int) int {
	return m.supportWith(nil, items)
}

// MaximalFrequent returns all maximal frequent itemsets at the given absolute
// minimum support (count, not fraction). Single frequent items with no
// frequent superset count as maximal. Results are sorted by decreasing
// support, then lexicographically, for deterministic output.
func (m *Miner) MaximalFrequent(minSupport int) []Itemset {
	if minSupport < 1 {
		minSupport = 1
	}
	// Frequent 1-items, ordered by increasing support (Max-Miner heuristic:
	// most likely maximal itemsets are found early when rare items lead).
	type itemCount struct{ item, count int }
	var freq []itemCount
	for it, txs := range m.item2tx {
		if c := txs.Count(); c >= minSupport {
			freq = append(freq, itemCount{it, c})
		}
	}
	if len(freq) == 0 {
		return nil
	}
	sort.Slice(freq, func(a, b int) bool {
		if freq[a].count != freq[b].count {
			return freq[a].count < freq[b].count
		}
		return freq[a].item < freq[b].item
	})
	order := make([]int, len(freq))
	for i, f := range freq {
		order[i] = f.item
	}

	var results []Itemset
	addMaximal := func(items []int, support int) {
		sorted := append([]int(nil), items...)
		sort.Ints(sorted)
		results = append(results, Itemset{Items: sorted, Support: support})
	}

	// Depth-first expansion of candidate groups.
	var stack []candidateGroup
	for i := range order {
		g := candidateGroup{
			head:    []int{order[i]},
			tail:    append([]int(nil), order[i+1:]...),
			headSet: m.item2tx[order[i]].Clone(),
		}
		stack = append(stack, g)
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// Trim infrequent tail items relative to the head.
		var liveTail []int
		for _, it := range g.tail {
			if m.supportWith(g.headSet, []int{it}) >= minSupport {
				liveTail = append(liveTail, it)
			}
		}
		if len(liveTail) == 0 {
			addMaximal(g.head, g.headSet.Count())
			continue
		}
		// Superset pruning: if head ∪ liveTail is frequent, it is the unique
		// maximal set in this subtree — emit it and stop expanding.
		if sup := m.supportWith(g.headSet, liveTail); sup >= minSupport {
			addMaximal(append(append([]int(nil), g.head...), liveTail...), sup)
			continue
		}
		// Expand: one subnode per tail item.
		for i, it := range liveTail {
			sub := candidateGroup{
				head:    append(append([]int(nil), g.head...), it),
				tail:    append([]int(nil), liveTail[i+1:]...),
				headSet: g.headSet.Clone().And(m.item2tx[it]),
			}
			stack = append(stack, sub)
		}
	}

	return dedupeMaximal(results)
}

// dedupeMaximal removes duplicates and itemsets subsumed by a superset.
func dedupeMaximal(sets []Itemset) []Itemset {
	// Longest first so subsumption checks only look at already-kept sets.
	sort.Slice(sets, func(a, b int) bool {
		if len(sets[a].Items) != len(sets[b].Items) {
			return len(sets[a].Items) > len(sets[b].Items)
		}
		return lexLess(sets[a].Items, sets[b].Items)
	})
	var kept []Itemset
	for _, s := range sets {
		subsumed := false
		for _, k := range kept {
			if containsAllSorted(k.Items, s.Items) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			kept = append(kept, s)
		}
	}
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].Support != kept[b].Support {
			return kept[a].Support > kept[b].Support
		}
		return lexLess(kept[a].Items, kept[b].Items)
	})
	return kept
}

// containsAllSorted reports whether sorted slice sup contains every element
// of sorted slice sub.
func containsAllSorted(sup, sub []int) bool {
	i := 0
	for _, want := range sub {
		for i < len(sup) && sup[i] < want {
			i++
		}
		if i >= len(sup) || sup[i] != want {
			return false
		}
		i++
	}
	return true
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// GroupByMaximal assigns each transaction to the first (highest-support)
// maximal frequent itemset it fully contains. Transactions matching no
// itemset get group -1. The return value maps transaction index -> group
// index into the itemsets slice.
func GroupByMaximal(transactions []*bitset.Set, itemsets []Itemset) []int {
	groups := make([]int, len(transactions))
	for tx, s := range transactions {
		groups[tx] = -1
		for gi, is := range itemsets {
			ok := true
			for _, it := range is.Items {
				if it >= s.Width() || !s.Test(it) {
					ok = false
					break
				}
			}
			if ok {
				groups[tx] = gi
				break
			}
		}
	}
	return groups
}
