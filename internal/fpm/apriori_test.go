package fpm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// bruteFrequent enumerates all frequent itemsets exhaustively.
func bruteFrequent(db [][]int, numItems, minSup int) []Itemset {
	m := NewMiner(db, numItems)
	var out []Itemset
	for mask := 1; mask < 1<<numItems; mask++ {
		var items []int
		for i := 0; i < numItems; i++ {
			if mask&(1<<i) != 0 {
				items = append(items, i)
			}
		}
		if sup := m.Support(items); sup >= minSup {
			out = append(out, Itemset{Items: items, Support: sup})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Items) != len(out[b].Items) {
			return len(out[a].Items) < len(out[b].Items)
		}
		return lexLess(out[a].Items, out[b].Items)
	})
	return out
}

func TestAprioriMatchesBruteForceClassic(t *testing.T) {
	for _, minSup := range []int{1, 2, 3, 4, 6} {
		got := NewMiner(classicDB, 5).Frequent(minSup)
		want := bruteFrequent(classicDB, 5, minSup)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("minSup=%d:\n got  %v\n want %v", minSup, got, want)
		}
	}
}

func TestPropertyAprioriMatchesBruteForceRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numItems := 3 + r.Intn(4)
		numTx := 3 + r.Intn(12)
		db := make([][]int, numTx)
		for i := range db {
			for it := 0; it < numItems; it++ {
				if r.Intn(3) == 0 {
					db[i] = append(db[i], it)
				}
			}
		}
		minSup := 1 + r.Intn(3)
		got := NewMiner(db, numItems).Frequent(minSup)
		want := bruteFrequent(db, numItems, minSup)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEveryFrequentSubsetOfSomeMaximal(t *testing.T) {
	// Cross-check Apriori against Max-Miner: every frequent itemset must be
	// contained in a maximal frequent itemset with >= the same support floor.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numItems := 3 + r.Intn(5)
		numTx := 4 + r.Intn(15)
		db := make([][]int, numTx)
		for i := range db {
			for it := 0; it < numItems; it++ {
				if r.Intn(3) == 0 {
					db[i] = append(db[i], it)
				}
			}
		}
		minSup := 1 + r.Intn(3)
		m := NewMiner(db, numItems)
		freq := m.Frequent(minSup)
		maximal := m.MaximalFrequent(minSup)
		for _, fs := range freq {
			ok := false
			for _, ms := range maximal {
				if containsAllSorted(ms.Items, fs.Items) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		// And every maximal itemset must itself appear in the full list.
		for _, ms := range maximal {
			found := false
			for _, fs := range freq {
				if reflect.DeepEqual(fs.Items, ms.Items) && fs.Support == ms.Support {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAprioriEmptyAndClamp(t *testing.T) {
	m := NewMiner([][]int{{0}, {1}}, 2)
	if got := m.Frequent(3); len(got) != 0 {
		t.Fatalf("nothing should be frequent: %v", got)
	}
	if got := m.Frequent(0); len(got) != 2 {
		t.Fatalf("minSup 0 clamps to 1: %v", got)
	}
}
