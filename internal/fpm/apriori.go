package fpm

// Apriori (Agrawal & Srikant 1994): the classical level-wise enumeration of
// ALL frequent itemsets. Max-Miner returns only the maximal ones — exactly
// what grouped tracing needs — but the full lattice is useful for
// cross-checking (every frequent itemset must be a subset of some maximal
// one) and for interpretability queries like "which rule PAIRS co-fire
// often". The implementation reuses the Miner's vertical bitset layout.

import "sort"

// Frequent returns every frequent itemset at the given absolute minimum
// support, ordered by size then lexicographically.
func (m *Miner) Frequent(minSupport int) []Itemset {
	if minSupport < 1 {
		minSupport = 1
	}
	// Level 1.
	var level []Itemset
	for it, txs := range m.item2tx {
		if c := txs.Count(); c >= minSupport {
			level = append(level, Itemset{Items: []int{it}, Support: c})
		}
	}
	sort.Slice(level, func(a, b int) bool { return level[a].Items[0] < level[b].Items[0] })

	var all []Itemset
	for len(level) > 0 {
		all = append(all, level...)
		level = m.nextLevel(level, minSupport)
	}
	sort.Slice(all, func(a, b int) bool {
		if len(all[a].Items) != len(all[b].Items) {
			return len(all[a].Items) < len(all[b].Items)
		}
		return lexLess(all[a].Items, all[b].Items)
	})
	return all
}

// nextLevel generates size-(k+1) candidates from size-k frequent itemsets by
// the standard prefix join, prunes by the Apriori property, and counts
// support.
func (m *Miner) nextLevel(level []Itemset, minSupport int) []Itemset {
	frequent := make(map[string]bool, len(level))
	for _, is := range level {
		frequent[itemsKey(is.Items)] = true
	}
	var next []Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i].Items, level[j].Items
			if !samePrefix(a, b) {
				continue
			}
			cand := append(append([]int(nil), a...), b[len(b)-1])
			if !m.allSubsetsFrequent(cand, frequent) {
				continue
			}
			if sup := m.Support(cand); sup >= minSupport {
				next = append(next, Itemset{Items: cand, Support: sup})
			}
		}
	}
	return next
}

// samePrefix reports whether two sorted k-itemsets share the first k-1 items
// and differ in the last (the join condition); both inputs are sorted.
func samePrefix(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] < b[len(b)-1]
}

// allSubsetsFrequent applies the Apriori pruning: every (k-1)-subset of cand
// must be frequent.
func (m *Miner) allSubsetsFrequent(cand []int, frequent map[string]bool) bool {
	if len(cand) <= 2 {
		return true // both 1-subsets are frequent by construction of the join
	}
	buf := make([]int, 0, len(cand)-1)
	for skip := range cand {
		buf = buf[:0]
		for i, it := range cand {
			if i != skip {
				buf = append(buf, it)
			}
		}
		if !frequent[itemsKey(buf)] {
			return false
		}
	}
	return true
}

func itemsKey(items []int) string {
	// Compact key: items are small ints; delimit with commas.
	b := make([]byte, 0, len(items)*3)
	for i, it := range items {
		if i > 0 {
			b = append(b, ',')
		}
		for _, d := range digits(it) {
			b = append(b, d)
		}
	}
	return string(b)
}

func digits(v int) []byte {
	if v == 0 {
		return []byte{'0'}
	}
	var out []byte
	for v > 0 {
		out = append([]byte{byte('0' + v%10)}, out...)
		v /= 10
	}
	return out
}
