package fpm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

// classicDB is the textbook transaction database used in many FPM papers.
var classicDB = [][]int{
	{0, 1, 4},
	{1, 3},
	{1, 2},
	{0, 1, 3},
	{0, 2},
	{1, 2},
	{0, 2},
	{0, 1, 2, 4},
	{0, 1, 2},
}

func TestSupportCounts(t *testing.T) {
	m := NewMiner(classicDB, 5)
	cases := []struct {
		items []int
		want  int
	}{
		{[]int{0}, 6},
		{[]int{1}, 7},
		{[]int{2}, 6},
		{[]int{3}, 2},
		{[]int{4}, 2},
		{[]int{0, 1}, 4},
		{[]int{0, 2}, 4},
		{[]int{1, 2}, 4},
		{[]int{0, 1, 2}, 2},
		{[]int{0, 1, 4}, 2},
		{[]int{}, 9},
	}
	for _, c := range cases {
		if got := m.Support(c.items); got != c.want {
			t.Errorf("Support(%v) = %d, want %d", c.items, got, c.want)
		}
	}
}

// bruteMaximal computes maximal frequent itemsets by exhaustive enumeration.
func bruteMaximal(db [][]int, numItems, minSup int) []Itemset {
	m := NewMiner(db, numItems)
	var frequent []Itemset
	for mask := 1; mask < 1<<numItems; mask++ {
		var items []int
		for i := 0; i < numItems; i++ {
			if mask&(1<<i) != 0 {
				items = append(items, i)
			}
		}
		if sup := m.Support(items); sup >= minSup {
			frequent = append(frequent, Itemset{Items: items, Support: sup})
		}
	}
	var maximal []Itemset
	for i, f := range frequent {
		isMax := true
		for j, g := range frequent {
			if i != j && len(g.Items) > len(f.Items) && containsAllSorted(g.Items, f.Items) {
				isMax = false
				break
			}
		}
		if isMax {
			maximal = append(maximal, f)
		}
	}
	return canonical(maximal)
}

func canonical(sets []Itemset) []Itemset {
	out := append([]Itemset(nil), sets...)
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Items) != len(out[b].Items) {
			return len(out[a].Items) < len(out[b].Items)
		}
		return lexLess(out[a].Items, out[b].Items)
	})
	return out
}

func TestMaximalFrequentMatchesBruteForce(t *testing.T) {
	for _, minSup := range []int{1, 2, 3, 4, 6} {
		got := canonical(NewMiner(classicDB, 5).MaximalFrequent(minSup))
		want := bruteMaximal(classicDB, 5, minSup)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("minSup=%d:\n got  %v\n want %v", minSup, got, want)
		}
	}
}

func TestMaximalFrequentEmptyWhenNothingFrequent(t *testing.T) {
	m := NewMiner([][]int{{0}, {1}}, 2)
	if got := m.MaximalFrequent(2); len(got) != 0 {
		t.Fatalf("expected no frequent itemsets, got %v", got)
	}
}

func TestMinSupportClampedToOne(t *testing.T) {
	m := NewMiner([][]int{{0}}, 1)
	got := m.MaximalFrequent(0)
	if len(got) != 1 || got[0].Support != 1 {
		t.Fatalf("minSupport 0 should behave as 1, got %v", got)
	}
}

func TestNewMinerFromSetsEquivalent(t *testing.T) {
	sets := make([]*bitset.Set, len(classicDB))
	for i, items := range classicDB {
		sets[i] = bitset.FromIndices(5, items...)
	}
	a := canonical(NewMiner(classicDB, 5).MaximalFrequent(2))
	b := canonical(NewMinerFromSets(sets, 5).MaximalFrequent(2))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("list and bitset constructions disagree:\n%v\n%v", a, b)
	}
}

func TestPropertyMaximalMatchesBruteForceRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numItems := 3 + r.Intn(5) // up to 7 items keeps brute force cheap
		numTx := 3 + r.Intn(15)
		db := make([][]int, numTx)
		for i := range db {
			for it := 0; it < numItems; it++ {
				if r.Intn(3) == 0 {
					db[i] = append(db[i], it)
				}
			}
		}
		minSup := 1 + r.Intn(3)
		got := canonical(NewMiner(db, numItems).MaximalFrequent(minSup))
		want := bruteMaximal(db, numItems, minSup)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByMaximal(t *testing.T) {
	sets := []*bitset.Set{
		bitset.FromIndices(4, 0, 1, 2),
		bitset.FromIndices(4, 0, 1),
		bitset.FromIndices(4, 3),
		bitset.New(4),
	}
	itemsets := []Itemset{
		{Items: []int{0, 1}, Support: 2},
		{Items: []int{3}, Support: 1},
	}
	got := GroupByMaximal(sets, itemsets)
	want := []int{0, 0, 1, -1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupByMaximal = %v, want %v", got, want)
	}
}

func TestGroupByMaximalPrefersEarlierItemset(t *testing.T) {
	s := bitset.FromIndices(3, 0, 1, 2)
	itemsets := []Itemset{
		{Items: []int{2}},
		{Items: []int{0, 1}},
	}
	got := GroupByMaximal([]*bitset.Set{s}, itemsets)
	if got[0] != 0 {
		t.Fatalf("expected first matching itemset, got group %d", got[0])
	}
}

func BenchmarkMaxMiner200x50(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	const numItems, numTx = 50, 200
	db := make([][]int, numTx)
	for i := range db {
		for it := 0; it < numItems; it++ {
			if r.Intn(5) == 0 {
				db[i] = append(db[i], it)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMiner(db, numItems)
		_ = m.MaximalFrequent(numTx / 10)
	}
}
