package dataset

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestSchemaValidate(t *testing.T) {
	good := &Schema{
		Name: "g",
		Features: []Feature{
			{Name: "d", Kind: Discrete, Categories: []string{"a", "b"}},
			{Name: "c", Kind: Continuous, Min: 0, Max: 1},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []*Schema{
		{Name: "empty"},
		{Name: "nocat", Features: []Feature{{Name: "d", Kind: Discrete}}},
		{Name: "dom", Features: []Feature{{Name: "c", Kind: Continuous, Min: 1, Max: 1}}},
		{Name: "kind", Features: []Feature{{Name: "k", Kind: FeatureKind(7)}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %q should be invalid", s.Name)
		}
	}
}

func TestTableValidate(t *testing.T) {
	s := &Schema{
		Name: "s",
		Features: []Feature{
			{Name: "d", Kind: Discrete, Categories: []string{"a", "b"}},
		},
	}
	ok := &Table{Schema: s, Instances: []Instance{
		{Values: []float64{0}, Label: 0},
		{Values: []float64{-1}, Label: 1}, // -1 = unknown is allowed
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	for _, bad := range []*Table{
		{Schema: s, Instances: []Instance{{Values: []float64{0, 1}, Label: 0}}},
		{Schema: s, Instances: []Instance{{Values: []float64{0}, Label: 2}}},
		{Schema: s, Instances: []Instance{{Values: []float64{5}, Label: 0}}},
		{Schema: s, Instances: []Instance{{Values: []float64{0.5}, Label: 0}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("table %+v should be invalid", bad.Instances)
		}
	}
}

func TestSubsetCloneConcat(t *testing.T) {
	tab := TicTacToe()
	sub := tab.Subset([]int{0, 5, 10})
	if sub.Len() != 3 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	if &sub.Instances[0].Values[0] != &tab.Instances[0].Values[0] {
		t.Fatal("Subset should share instance storage")
	}
	cl := tab.Clone()
	cl.Instances[0].Values[0] = 99
	if tab.Instances[0].Values[0] == 99 {
		t.Fatal("Clone should deep-copy values")
	}
	cc := Concat(sub, sub)
	if cc.Len() != 6 {
		t.Fatalf("Concat len = %d", cc.Len())
	}
	if Concat() != nil {
		t.Fatal("Concat of nothing should be nil")
	}
}

func TestSplit(t *testing.T) {
	tab := TicTacToe()
	r := stats.NewRNG(1)
	train, test := tab.Split(r, 0.2)
	if train.Len()+test.Len() != tab.Len() {
		t.Fatalf("split loses rows: %d + %d != %d", train.Len(), test.Len(), tab.Len())
	}
	wantTest := int(0.2 * float64(tab.Len()))
	if test.Len() != wantTest {
		t.Fatalf("test size = %d, want %d", test.Len(), wantTest)
	}
}

func TestStratifiedSplitPreservesRatio(t *testing.T) {
	tab := Bank(stats.NewRNG(7), 3000) // imbalanced (~14% positive)
	r := stats.NewRNG(2)
	train, test := tab.StratifiedSplit(r, 0.25)
	if train.Len()+test.Len() != tab.Len() {
		t.Fatalf("rows lost: %d + %d != %d", train.Len(), test.Len(), tab.Len())
	}
	base := tab.PositiveFraction()
	if math.Abs(test.PositiveFraction()-base) > 0.01 {
		t.Fatalf("test ratio %v drifted from %v", test.PositiveFraction(), base)
	}
	if math.Abs(train.PositiveFraction()-base) > 0.01 {
		t.Fatalf("train ratio %v drifted from %v", train.PositiveFraction(), base)
	}
}

func TestTicTacToeMatchesUCI(t *testing.T) {
	tab := TicTacToe()
	if got := tab.Len(); got != 958 {
		t.Fatalf("tic-tac-toe has %d boards, UCI has 958", got)
	}
	// UCI positive rate: 626/958 ≈ 65.34%.
	pos := int(tab.PositiveFraction()*float64(tab.Len()) + 0.5)
	if pos != 626 {
		t.Fatalf("positives = %d, want 626", pos)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	// Determinism.
	again := TicTacToe()
	for i := range tab.Instances {
		for j := range tab.Instances[i].Values {
			if tab.Instances[i].Values[j] != again.Instances[i].Values[j] {
				t.Fatal("TicTacToe is not deterministic")
			}
		}
	}
}

func TestTicTacToeLabelsConsistent(t *testing.T) {
	tab := TicTacToe()
	// Re-derive the winner from the raw cells and compare with the label.
	for i, in := range tab.Instances {
		var b [9]int8
		for j, v := range in.Values {
			switch int(v) {
			case 0:
				b[j] = 1 // x
			case 1:
				b[j] = 2 // o
			default:
				b[j] = 0
			}
		}
		xw := wins(b, 1)
		ow := wins(b, 2)
		if xw && ow {
			t.Fatalf("board %d has two winners", i)
		}
		if xw != (in.Label == 1) {
			t.Fatalf("board %d label %d disagrees with x-wins=%v", i, in.Label, xw)
		}
		if !xw && !ow && !boardFull(b) {
			t.Fatalf("board %d is not terminal", i)
		}
	}
}

func TestAdultGenerator(t *testing.T) {
	r := stats.NewRNG(42)
	tab := Adult(r, 4000)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 4000 {
		t.Fatalf("len = %d", tab.Len())
	}
	frac := tab.PositiveFraction()
	if frac < 0.15 || frac > 0.40 {
		t.Fatalf("adult positive fraction = %v, want ~0.25", frac)
	}
	// The planted capital-gain rule must be visible: P(y=1 | gain>21k) should
	// far exceed the base rate.
	var hi, hiPos, lo, loPos float64
	for _, in := range tab.Instances {
		if in.Values[10] > 21000 {
			hi++
			hiPos += float64(in.Label)
		} else {
			lo++
			loPos += float64(in.Label)
		}
	}
	if hi < 30 {
		t.Fatalf("too few high-capital-gain rows: %v", hi)
	}
	if hiPos/hi < loPos/lo+0.3 {
		t.Fatalf("capital-gain rule not planted: P(+|gain>21k)=%v vs base %v", hiPos/hi, loPos/lo)
	}
}

func TestBankGenerator(t *testing.T) {
	r := stats.NewRNG(43)
	tab := Bank(r, 4000)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	frac := tab.PositiveFraction()
	if frac < 0.05 || frac > 0.30 {
		t.Fatalf("bank positive fraction = %v, want ~0.14", frac)
	}
	// Duration rule: long calls convert far above base rate.
	var hi, hiPos, all, allPos float64
	for _, in := range tab.Instances {
		all++
		allPos += float64(in.Label)
		if in.Values[11] > 500 {
			hi++
			hiPos += float64(in.Label)
		}
	}
	if hi < 30 {
		t.Fatalf("too few long-duration rows: %v", hi)
	}
	if hiPos/hi < allPos/all+0.2 {
		t.Fatalf("duration rule not planted: %v vs %v", hiPos/hi, allPos/all)
	}
}

func TestDota2Generator(t *testing.T) {
	r := stats.NewRNG(44)
	tab := Dota2(r, 3000)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	frac := tab.PositiveFraction()
	if math.Abs(frac-0.5) > 0.07 {
		t.Fatalf("dota2 positive fraction = %v, want ~0.5", frac)
	}
	// Every row must have exactly 5 heroes per team.
	for i, in := range tab.Instances {
		var t1, t2 int
		for j := 3; j < len(in.Values); j++ {
			switch int(in.Values[j]) {
			case 0:
				t1++
			case 1:
				t2++
			}
		}
		if t1 != 5 || t2 != 5 {
			t.Fatalf("row %d has team sizes %d/%d", i, t1, t2)
		}
	}
}

func TestEncoderWidthAndNames(t *testing.T) {
	s := &Schema{
		Name: "mix",
		Features: []Feature{
			{Name: "col", Kind: Discrete, Categories: []string{"red", "blue"}},
			{Name: "temp", Kind: Continuous, Min: 0, Max: 100},
		},
	}
	e, err := NewEncoder(s, 3, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// 2 categories + unknown + 2*3 thresholds = 9
	if e.Width() != 9 {
		t.Fatalf("Width = %d, want 9", e.Width())
	}
	if got := e.PredicateName(0); got != "col = red" {
		t.Fatalf("PredicateName(0) = %q", got)
	}
	if got := e.PredicateName(2); got != "col = <unknown>" {
		t.Fatalf("PredicateName(2) = %q", got)
	}
	off, cnt := e.FeatureOffset(1)
	if off != 3 || cnt != 6 {
		t.Fatalf("FeatureOffset(1) = (%d,%d), want (3,6)", off, cnt)
	}
}

func TestEncoderEncode(t *testing.T) {
	s := &Schema{
		Name: "mix",
		Features: []Feature{
			{Name: "col", Kind: Discrete, Categories: []string{"red", "blue"}},
			{Name: "temp", Kind: Continuous, Min: 0, Max: 100},
		},
	}
	e, err := NewEncoder(s, 4, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	v := e.Encode(Instance{Values: []float64{1, 50}}, nil)
	if v[0] != 0 || v[1] != 1 || v[2] != 0 {
		t.Fatalf("one-hot wrong: %v", v[:3])
	}
	// Unknown category routes to the unknown slot.
	u := e.Encode(Instance{Values: []float64{-1, 50}}, nil)
	if u[2] != 1 || u[0] != 0 || u[1] != 0 {
		t.Fatalf("unknown slot wrong: %v", u[:3])
	}
	// Threshold semantics: an extreme value must activate all lower bounds
	// and no upper bounds.
	hi := e.Encode(Instance{Values: []float64{0, 100}}, nil)
	for k := 0; k < 4; k++ {
		if hi[3+k] != 1 {
			t.Fatalf("100 should exceed every lower bound, got %v", hi[3:])
		}
		if hi[3+4+k] != 0 {
			t.Fatalf("100 should be below no upper bound, got %v", hi[3:])
		}
	}
	// Reuse of dst.
	dst := make([]float64, e.Width())
	out := e.Encode(Instance{Values: []float64{0, 0}}, dst)
	if &out[0] != &dst[0] {
		t.Fatal("Encode should reuse dst")
	}
}

func TestEncoderErrors(t *testing.T) {
	s := &Schema{Name: "s", Features: []Feature{{Name: "c", Kind: Continuous, Min: 0, Max: 1}}}
	if _, err := NewEncoder(s, 0, stats.NewRNG(1)); err == nil {
		t.Fatal("tauD=0 should error")
	}
	bad := &Schema{Name: "bad"}
	if _, err := NewEncoder(bad, 3, stats.NewRNG(1)); err == nil {
		t.Fatal("invalid schema should error")
	}
}

func TestEncodeTable(t *testing.T) {
	tab := TicTacToe()
	e, err := NewEncoder(tab.Schema, 10, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	x, y := e.EncodeTable(tab)
	if len(x) != tab.Len() || len(y) != tab.Len() {
		t.Fatalf("EncodeTable sizes wrong")
	}
	// tic-tac-toe: 9 features × (3 cats + unknown) = 36 predicates; each row
	// has exactly 9 active predicates (one per cell).
	if e.Width() != 36 {
		t.Fatalf("tic-tac-toe width = %d, want 36", e.Width())
	}
	for i, row := range x {
		n := 0
		for _, v := range row {
			if v == 1 {
				n++
			} else if v != 0 {
				t.Fatalf("non-binary encoding %v", v)
			}
		}
		if n != 9 {
			t.Fatalf("row %d has %d active predicates, want 9", i, n)
		}
	}
}

func TestRegistry(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 4 {
		t.Fatalf("want 4 benchmarks, got %d", len(bs))
	}
	for _, b := range bs {
		tab := b.Generate(stats.NewRNG(1), 100)
		if tab.Len() == 0 {
			t.Fatalf("%s generated empty table", b.Name)
		}
		if err := tab.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
	if _, err := ByName("adult"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestFeatureKindString(t *testing.T) {
	if Discrete.String() != "discrete" || Continuous.String() != "continuous" {
		t.Fatal("FeatureKind.String broken")
	}
	if FeatureKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}
