// Package dataset models tabular classification data with mixed discrete and
// continuous features, provides the privacy-preserving predicate encoding of
// CTFL Section V ("Encode Input Features"), and regenerates the paper's four
// evaluation benchmarks: tic-tac-toe (exactly, by game-tree enumeration) and
// synthetic stand-ins for adult, bank and dota2 with planted rule structure
// (see DESIGN.md §1 for the substitution rationale).
package dataset

import (
	"fmt"
	"math/rand"
)

// FeatureKind distinguishes discrete (categorical) from continuous features.
type FeatureKind int

// Supported feature kinds.
const (
	Discrete FeatureKind = iota
	Continuous
)

func (k FeatureKind) String() string {
	switch k {
	case Discrete:
		return "discrete"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("FeatureKind(%d)", int(k))
	}
}

// Feature describes one column of a table.
type Feature struct {
	Name string
	Kind FeatureKind
	// Categories enumerates the value choices of a discrete feature. The
	// federation fixes this list up front (paper Section V), appending an
	// implicit "unknown" slot for unseen values at encoding time.
	Categories []string
	// Min and Max bound the domain of a continuous feature. Only the domain
	// (not the data) is shared with the federation, matching the paper's
	// privacy constraint.
	Min, Max float64
}

// Schema is the shared feature space of a horizontal-FL task.
type Schema struct {
	Name     string
	Features []Feature
	// Labels names the two classes; index 0 is the negative class and index 1
	// the positive class.
	Labels [2]string
}

// NumFeatures returns the number of columns.
func (s *Schema) NumFeatures() int { return len(s.Features) }

// Validate checks internal consistency of the schema.
func (s *Schema) Validate() error {
	if len(s.Features) == 0 {
		return fmt.Errorf("dataset: schema %q has no features", s.Name)
	}
	for i, f := range s.Features {
		switch f.Kind {
		case Discrete:
			if len(f.Categories) == 0 {
				return fmt.Errorf("dataset: discrete feature %q (#%d) has no categories", f.Name, i)
			}
		case Continuous:
			if !(f.Min < f.Max) {
				return fmt.Errorf("dataset: continuous feature %q (#%d) has empty domain [%v,%v]", f.Name, i, f.Min, f.Max)
			}
		default:
			return fmt.Errorf("dataset: feature %q (#%d) has invalid kind %v", f.Name, i, f.Kind)
		}
	}
	return nil
}

// Instance is one labeled row. Values holds one entry per schema feature:
// the raw value for continuous features, the category index (or -1 for
// unknown) for discrete ones.
type Instance struct {
	Values []float64
	Label  int // 0 or 1
}

// Table is a labeled dataset bound to a schema.
type Table struct {
	Schema    *Schema
	Instances []Instance
}

// Len returns the number of instances.
func (t *Table) Len() int { return len(t.Instances) }

// PositiveFraction returns the share of label-1 instances.
func (t *Table) PositiveFraction() float64 {
	if t.Len() == 0 {
		return 0
	}
	pos := 0
	for _, in := range t.Instances {
		if in.Label == 1 {
			pos++
		}
	}
	return float64(pos) / float64(t.Len())
}

// Validate checks every instance against the schema.
func (t *Table) Validate() error {
	if err := t.Schema.Validate(); err != nil {
		return err
	}
	for i, in := range t.Instances {
		if len(in.Values) != t.Schema.NumFeatures() {
			return fmt.Errorf("dataset: instance %d has %d values, want %d", i, len(in.Values), t.Schema.NumFeatures())
		}
		if in.Label != 0 && in.Label != 1 {
			return fmt.Errorf("dataset: instance %d has label %d, want 0 or 1", i, in.Label)
		}
		for j, f := range t.Schema.Features {
			if f.Kind == Discrete {
				v := int(in.Values[j])
				if float64(v) != in.Values[j] || v < -1 || v >= len(f.Categories) {
					return fmt.Errorf("dataset: instance %d feature %q has invalid category %v", i, f.Name, in.Values[j])
				}
			}
		}
	}
	return nil
}

// Subset returns a new Table sharing the schema and referencing the selected
// instances (values are not deep-copied; treat instances as immutable).
func (t *Table) Subset(indices []int) *Table {
	out := &Table{Schema: t.Schema, Instances: make([]Instance, len(indices))}
	for i, idx := range indices {
		out.Instances[i] = t.Instances[idx]
	}
	return out
}

// Clone deep-copies the table's instances (the schema is shared).
func (t *Table) Clone() *Table {
	out := &Table{Schema: t.Schema, Instances: make([]Instance, len(t.Instances))}
	for i, in := range t.Instances {
		vals := make([]float64, len(in.Values))
		copy(vals, in.Values)
		out.Instances[i] = Instance{Values: vals, Label: in.Label}
	}
	return out
}

// Concat returns a new table with the instances of all inputs, which must
// share a schema. Concat of zero tables returns nil.
func Concat(tables ...*Table) *Table {
	if len(tables) == 0 {
		return nil
	}
	out := &Table{Schema: tables[0].Schema}
	for _, t := range tables {
		if t.Schema != out.Schema {
			panic("dataset: Concat across different schemas")
		}
		out.Instances = append(out.Instances, t.Instances...)
	}
	return out
}

// Split shuffles the table with r and splits it into train and test parts,
// with testFrac of instances (rounded down, at least 1 if possible) in test.
func (t *Table) Split(r *rand.Rand, testFrac float64) (train, test *Table) {
	n := t.Len()
	idx := r.Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest < 1 && n > 1 {
		nTest = 1
	}
	test = t.Subset(idx[:nTest])
	train = t.Subset(idx[nTest:])
	return train, test
}

// StratifiedSplit splits like Split but preserves the label ratio in both
// parts (per-class proportional sampling) — the right choice for the
// federation's reserved test set on imbalanced tasks like bank.
func (t *Table) StratifiedSplit(r *rand.Rand, testFrac float64) (train, test *Table) {
	var byLabel [2][]int
	for i, in := range t.Instances {
		byLabel[in.Label] = append(byLabel[in.Label], i)
	}
	var trainIdx, testIdx []int
	for label := 0; label < 2; label++ {
		pool := byLabel[label]
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		nTest := int(float64(len(pool)) * testFrac)
		if nTest < 1 && len(pool) > 1 {
			nTest = 1
		}
		testIdx = append(testIdx, pool[:nTest]...)
		trainIdx = append(trainIdx, pool[nTest:]...)
	}
	return t.Subset(trainIdx), t.Subset(testIdx)
}
