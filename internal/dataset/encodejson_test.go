package dataset

import (
	"encoding/json"
	"testing"

	"repro/internal/stats"
)

func TestEncoderJSONRoundTrip(t *testing.T) {
	schema := BankSchema()
	orig, err := NewEncoder(schema, 6, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Encoder
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Width() != orig.Width() {
		t.Fatalf("width %d vs %d", back.Width(), orig.Width())
	}
	for i := 0; i < orig.Width(); i++ {
		if back.PredicateName(i) != orig.PredicateName(i) {
			t.Fatalf("predicate %d renamed: %q vs %q", i, back.PredicateName(i), orig.PredicateName(i))
		}
	}
	// Encoding equivalence on real rows.
	tab := Bank(stats.NewRNG(4), 100)
	for _, in := range tab.Instances {
		a := orig.Encode(in, nil)
		b := back.Encode(in, nil)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("encodings diverge after JSON round trip")
			}
		}
	}
}

func TestEncoderJSONValidation(t *testing.T) {
	var e Encoder
	for _, bad := range []string{
		`{}`,
		`{"schema":{"Name":"x"},"tau_d":3}`,
		`{"schema":{"Name":"x","Features":[{"Name":"c","Kind":1,"Min":0,"Max":1}],"Labels":["a","b"]},"tau_d":0}`,
		// Wrong bound count for the continuous feature.
		`{"schema":{"Name":"x","Features":[{"Name":"c","Kind":1,"Min":0,"Max":1}],"Labels":["a","b"]},"tau_d":3,"lower":[[0.5]],"upper":[[0.5]]}`,
		// Bounds attached to a discrete feature.
		`{"schema":{"Name":"x","Features":[{"Name":"d","Kind":0,"Categories":["a"]}],"Labels":["a","b"]},"tau_d":1,"lower":[[0.5]],"upper":[[0.5]]}`,
		`not json`,
	} {
		if err := json.Unmarshal([]byte(bad), &e); err == nil {
			t.Fatalf("input %q should fail", bad)
		}
	}
}
