package dataset

import (
	"fmt"
	"math/rand"
)

// Dota2Size is the row count of the original UCI dota2 games benchmark.
const Dota2Size = 102944

// dota2Heroes is the size of the hero pool in the UCI dataset encoding.
const dota2Heroes = 113

// Dota2Schema returns the 116-feature all-discrete schema: cluster region,
// game mode, game type, then one three-valued pick indicator per hero
// (team-1, team-2, unpicked), mirroring the UCI +1/-1/0 encoding.
func Dota2Schema() *Schema {
	s := &Schema{
		Name:   "dota2",
		Labels: [2]string{"team2-wins", "team1-wins"},
		Features: []Feature{
			{Name: "cluster", Kind: Discrete, Categories: []string{
				"us-west", "us-east", "europe", "singapore", "dubai",
				"australia", "stockholm", "austria", "brazil", "south-africa"}},
			{Name: "mode", Kind: Discrete, Categories: []string{
				"all-pick", "captains-mode", "random-draft", "single-draft",
				"all-random", "least-played", "captains-draft", "ability-draft", "all-random-deathmatch"}},
			{Name: "type", Kind: Discrete, Categories: []string{"ranked", "tournament", "practice"}},
		},
	}
	for h := 0; h < dota2Heroes; h++ {
		s.Features = append(s.Features, Feature{
			Name:       fmt.Sprintf("hero-%03d", h),
			Kind:       Discrete,
			Categories: []string{"team1", "team2", "unpicked"},
		})
	}
	return s
}

// Dota2 generates n rows of the synthetic dota2 benchmark. Each team drafts
// five distinct heroes; the winner is decided by hero base strengths plus a
// few pairwise synergies, swamped with noise so that only ~58-60% accuracy
// is achievable. This reproduces the paper's "low task performance" regime
// in which CTFL-micro clearly beats CTFL-macro (Fig. 4 discussion, point 3).
func Dota2(r *rand.Rand, n int) *Table {
	schema := Dota2Schema()

	// Planted hero strengths and synergy pairs, fixed per call from r so the
	// whole table is self-consistent.
	strength := make([]float64, dota2Heroes)
	for h := range strength {
		strength[h] = r.NormFloat64() * 0.35
	}
	type pair struct{ a, b int }
	synergy := make(map[pair]float64)
	for k := 0; k < 60; k++ {
		a, b := r.Intn(dota2Heroes), r.Intn(dota2Heroes)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		synergy[pair{a, b}] = r.NormFloat64() * 0.8
	}

	t := &Table{Schema: schema, Instances: make([]Instance, 0, n)}
	for i := 0; i < n; i++ {
		v := make([]float64, len(schema.Features))
		v[0] = float64(r.Intn(10))
		v[1] = float64(weightedChoice(r, []float64{0.55, 0.12, 0.08, 0.08, 0.06, 0.04, 0.04, 0.02, 0.01}))
		v[2] = float64(weightedChoice(r, []float64{0.80, 0.05, 0.15}))

		// Draft 10 distinct heroes, first 5 to team 1.
		picks := r.Perm(dota2Heroes)[:10]
		for j := 3; j < len(v); j++ {
			v[j] = 2 // unpicked
		}
		teamScore := [2]float64{}
		for side := 0; side < 2; side++ {
			team := picks[side*5 : side*5+5]
			for _, h := range team {
				v[3+h] = float64(side)
				teamScore[side] += strength[h]
			}
			for x := 0; x < 5; x++ {
				for y := x + 1; y < 5; y++ {
					a, b := team[x], team[y]
					if a > b {
						a, b = b, a
					}
					teamScore[side] += synergy[pair{a, b}]
				}
			}
		}
		label := 0
		// Heavy noise keeps achievable accuracy near the real task's ~58%.
		if teamScore[0]-teamScore[1]+r.NormFloat64()*2.2 > 0 {
			label = 1
		}
		t.Instances = append(t.Instances, Instance{Values: v, Label: label})
	}
	return t
}
