package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func csvSchema() *Schema {
	return &Schema{
		Name:   "csv",
		Labels: [2]string{"no", "yes"},
		Features: []Feature{
			{Name: "color", Kind: Discrete, Categories: []string{"red", "blue"}},
			{Name: "temp", Kind: Continuous, Min: 0, Max: 100},
		},
	}
}

func TestReadCSVBasic(t *testing.T) {
	in := "color,temp,label\nred,20.5,yes\nBLUE, 77 ,no\ngreen,50,yes\n"
	tab, err := ReadCSV(strings.NewReader(in), csvSchema(), CSVOptions{
		HasHeader: true, PositiveLabel: "yes", TrimSpace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("rows = %d", tab.Len())
	}
	if tab.Instances[0].Values[0] != 0 || tab.Instances[0].Values[1] != 20.5 || tab.Instances[0].Label != 1 {
		t.Fatalf("row 0 = %+v", tab.Instances[0])
	}
	// Case-insensitive category match.
	if tab.Instances[1].Values[0] != 1 || tab.Instances[1].Label != 0 {
		t.Fatalf("row 1 = %+v", tab.Instances[1])
	}
	// Unknown category maps to -1 (the unknown slot).
	if tab.Instances[2].Values[0] != -1 {
		t.Fatalf("row 2 unknown category = %v", tab.Instances[2].Values[0])
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := csvSchema()
	// Wrong column count.
	if _, err := ReadCSV(strings.NewReader("red,yes\n"), s, CSVOptions{PositiveLabel: "yes"}); err == nil {
		t.Fatal("short row should error")
	}
	// Bad float.
	if _, err := ReadCSV(strings.NewReader("red,abc,yes\n"), s, CSVOptions{PositiveLabel: "yes"}); err == nil {
		t.Fatal("non-numeric continuous should error")
	}
	// Out-of-domain continuous without clamping.
	if _, err := ReadCSV(strings.NewReader("red,1000,yes\n"), s, CSVOptions{PositiveLabel: "yes"}); err == nil {
		t.Fatal("out-of-domain should error without ClampContinuous")
	}
	// With clamping it succeeds and clips.
	tab, err := ReadCSV(strings.NewReader("red,1000,yes\nred,-5,no\n"), s, CSVOptions{
		PositiveLabel: "yes", ClampContinuous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Instances[0].Values[1] != 100 || tab.Instances[1].Values[1] != 0 {
		t.Fatalf("clamping wrong: %v, %v", tab.Instances[0].Values[1], tab.Instances[1].Values[1])
	}
	// Invalid schema propagates.
	if _, err := ReadCSV(strings.NewReader(""), &Schema{Name: "bad"}, CSVOptions{}); err == nil {
		t.Fatal("invalid schema should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Bank(stats.NewRNG(3), 200)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), orig.Schema, CSVOptions{
		HasHeader:     true,
		PositiveLabel: orig.Schema.Labels[1],
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Len(), orig.Len())
	}
	for i := range orig.Instances {
		if back.Instances[i].Label != orig.Instances[i].Label {
			t.Fatalf("row %d label changed", i)
		}
		for j := range orig.Instances[i].Values {
			a, b := orig.Instances[i].Values[j], back.Instances[i].Values[j]
			if a != b {
				t.Fatalf("row %d feature %d: %v != %v", i, j, a, b)
			}
		}
	}
}

func TestWriteCSVUnknownCategory(t *testing.T) {
	s := csvSchema()
	tab := &Table{Schema: s, Instances: []Instance{
		{Values: []float64{-1, 10}, Label: 0},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "?") {
		t.Fatalf("unknown category not rendered as ?: %s", buf.String())
	}
}
