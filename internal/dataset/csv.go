package dataset

// CSV import/export. The synthetic generators make the repository
// self-contained, but a downstream deployment will have the real UCI/Kaggle
// files; ReadCSV loads them against a declared schema (values outside a
// discrete feature's category list map to the unknown slot, exactly as the
// paper's federation-fixed encoding prescribes), and WriteCSV round-trips
// generated tables for external tooling.

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions controls parsing.
type CSVOptions struct {
	// HasHeader skips (and validates, when non-strict) the first row.
	HasHeader bool
	// PositiveLabel is the string of class 1; any other value is class 0.
	PositiveLabel string
	// TrimSpace trims cells before interpretation.
	TrimSpace bool
	// ClampContinuous clips out-of-domain continuous values into the
	// schema's [Min, Max] instead of failing.
	ClampContinuous bool
}

// ReadCSV parses rows of the form feature1,...,featureN,label against the
// schema. Discrete cells are matched case-insensitively to the category
// list; unmatched values become the unknown category (-1).
func ReadCSV(r io.Reader, schema *Schema, opts CSVOptions) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.NumFeatures() + 1
	t := &Table{Schema: schema}

	// Pre-index categories for O(1) lookup.
	catIdx := make([]map[string]int, schema.NumFeatures())
	for j, f := range schema.Features {
		if f.Kind != Discrete {
			continue
		}
		m := make(map[string]int, len(f.Categories))
		for ci, c := range f.Categories {
			m[strings.ToLower(c)] = ci
		}
		catIdx[j] = m
	}

	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line+1, err)
		}
		line++
		if line == 1 && opts.HasHeader {
			continue
		}
		vals := make([]float64, schema.NumFeatures())
		for j, f := range schema.Features {
			cell := rec[j]
			if opts.TrimSpace {
				cell = strings.TrimSpace(cell)
			}
			switch f.Kind {
			case Discrete:
				if ci, ok := catIdx[j][strings.ToLower(cell)]; ok {
					vals[j] = float64(ci)
				} else {
					vals[j] = -1 // unknown slot
				}
			case Continuous:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: csv line %d, feature %q: %w", line, f.Name, err)
				}
				if v < f.Min || v > f.Max {
					if !opts.ClampContinuous {
						return nil, fmt.Errorf("dataset: csv line %d, feature %q: value %v outside [%v,%v]",
							line, f.Name, v, f.Min, f.Max)
					}
					if v < f.Min {
						v = f.Min
					} else {
						v = f.Max
					}
				}
				vals[j] = v
			}
		}
		labelCell := rec[schema.NumFeatures()]
		if opts.TrimSpace {
			labelCell = strings.TrimSpace(labelCell)
		}
		label := 0
		if strings.EqualFold(labelCell, opts.PositiveLabel) {
			label = 1
		}
		t.Instances = append(t.Instances, Instance{Values: vals, Label: label})
	}
	return t, nil
}

// WriteCSV writes the table with a header row; discrete values are written
// as their category names (unknown as "?"), labels as schema.Labels strings.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, t.Schema.NumFeatures()+1)
	for _, f := range t.Schema.Features {
		header = append(header, f.Name)
	}
	header = append(header, "label")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, in := range t.Instances {
		for j, f := range t.Schema.Features {
			switch f.Kind {
			case Discrete:
				ci := int(in.Values[j])
				if ci >= 0 && ci < len(f.Categories) {
					rec[j] = f.Categories[ci]
				} else {
					rec[j] = "?"
				}
			case Continuous:
				rec[j] = strconv.FormatFloat(in.Values[j], 'g', -1, 64)
			}
		}
		rec[len(rec)-1] = t.Schema.Labels[in.Label]
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
