package dataset

import "sort"

// TicTacToe regenerates the UCI tic-tac-toe endgame benchmark exactly: the
// complete set of legal board configurations at the end of tic-tac-toe games
// where player x moves first. Each of the nine cells is a discrete feature
// with values {x, o, b}; the positive class is "x wins". The enumeration
// yields the canonical 958 instances (65.3% positive), so no download is
// needed — the dataset is a mathematical object.
func TicTacToe() *Table {
	schema := &Schema{
		Name:   "tic-tac-toe",
		Labels: [2]string{"o-side", "x-wins"},
	}
	cellNames := []string{
		"top-left", "top-middle", "top-right",
		"middle-left", "middle-middle", "middle-right",
		"bottom-left", "bottom-middle", "bottom-right",
	}
	for _, n := range cellNames {
		schema.Features = append(schema.Features, Feature{
			Name:       n,
			Kind:       Discrete,
			Categories: []string{"x", "o", "b"},
		})
	}

	seen := make(map[[9]int8]bool)
	var boards [][9]int8

	// Cells: 0 empty(b), 1 x, 2 o. x moves first. A game ends immediately
	// when a player completes a line, or when the board is full.
	var play func(board [9]int8, turn int8)
	play = func(board [9]int8, turn int8) {
		full := true
		for pos := 0; pos < 9; pos++ {
			if board[pos] != 0 {
				continue
			}
			full = false
			board[pos] = turn
			if wins(board, turn) || boardFull(board) {
				if !seen[board] {
					seen[board] = true
					boards = append(boards, board)
				}
			} else {
				play(board, 3-turn)
			}
			board[pos] = 0
		}
		_ = full
	}
	play([9]int8{}, 1)

	// Deterministic order: sort boards lexicographically so repeated calls
	// produce identical tables.
	sort.Slice(boards, func(a, b int) bool {
		for i := 0; i < 9; i++ {
			if boards[a][i] != boards[b][i] {
				return boards[a][i] < boards[b][i]
			}
		}
		return false
	})

	t := &Table{Schema: schema}
	for _, b := range boards {
		vals := make([]float64, 9)
		for i, c := range b {
			// category order matches schema: x=0, o=1, b=2
			switch c {
			case 1:
				vals[i] = 0
			case 2:
				vals[i] = 1
			default:
				vals[i] = 2
			}
		}
		label := 0
		if wins(b, 1) {
			label = 1
		}
		t.Instances = append(t.Instances, Instance{Values: vals, Label: label})
	}
	return t
}

var lines = [8][3]int{
	{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, // rows
	{0, 3, 6}, {1, 4, 7}, {2, 5, 8}, // columns
	{0, 4, 8}, {2, 4, 6}, // diagonals
}

func wins(b [9]int8, player int8) bool {
	for _, l := range lines {
		if b[l[0]] == player && b[l[1]] == player && b[l[2]] == player {
			return true
		}
	}
	return false
}

func boardFull(b [9]int8) bool {
	for _, c := range b {
		if c == 0 {
			return false
		}
	}
	return true
}
