package dataset

// JSON serialization for Schema and Encoder. The federation fixes the
// predicate encoding once (category lists, threshold bounds) and every
// party — and any scoring service — must use the identical encoding, so the
// encoder needs a portable form. JSON keeps it auditable: the bounds ARE
// the privacy story (they are sampled from public domains, not data).

import (
	"encoding/json"
	"fmt"
)

// encoderJSON is the wire form of an Encoder.
type encoderJSON struct {
	Schema *Schema     `json:"schema"`
	TauD   int         `json:"tau_d"`
	Lower  [][]float64 `json:"lower"`
	Upper  [][]float64 `json:"upper"`
}

// MarshalJSON implements json.Marshaler.
func (e *Encoder) MarshalJSON() ([]byte, error) {
	return json.Marshal(encoderJSON{
		Schema: e.schema,
		TauD:   e.tauD,
		Lower:  e.lower,
		Upper:  e.upper,
	})
}

// UnmarshalJSON implements json.Unmarshaler, rebuilding the derived
// predicate names and offsets.
func (e *Encoder) UnmarshalJSON(data []byte) error {
	var w encoderJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dataset: decoding encoder: %w", err)
	}
	if w.Schema == nil {
		return fmt.Errorf("dataset: encoder JSON missing schema")
	}
	if err := w.Schema.Validate(); err != nil {
		return err
	}
	if w.TauD < 1 {
		return fmt.Errorf("dataset: encoder JSON has tau_d %d", w.TauD)
	}
	rebuilt, err := rebuildEncoder(w.Schema, w.TauD, w.Lower, w.Upper)
	if err != nil {
		return err
	}
	*e = *rebuilt
	return nil
}

// rebuildEncoder reconstructs an Encoder from explicit bounds, validating
// shapes against the schema.
func rebuildEncoder(schema *Schema, tauD int, lower, upper [][]float64) (*Encoder, error) {
	if len(lower) != schema.NumFeatures() || len(upper) != schema.NumFeatures() {
		return nil, fmt.Errorf("dataset: bounds cover %d/%d features, schema has %d",
			len(lower), len(upper), schema.NumFeatures())
	}
	e := &Encoder{
		schema:  schema,
		tauD:    tauD,
		offsets: make([]int, schema.NumFeatures()+1),
		lower:   make([][]float64, schema.NumFeatures()),
		upper:   make([][]float64, schema.NumFeatures()),
	}
	w := 0
	for j, f := range schema.Features {
		e.offsets[j] = w
		switch f.Kind {
		case Discrete:
			if len(lower[j]) != 0 || len(upper[j]) != 0 {
				return nil, fmt.Errorf("dataset: discrete feature %q has threshold bounds", f.Name)
			}
			for _, c := range f.Categories {
				e.names = append(e.names, fmt.Sprintf("%s = %s", f.Name, c))
			}
			e.names = append(e.names, fmt.Sprintf("%s = <unknown>", f.Name))
			w += len(f.Categories) + 1
		case Continuous:
			if len(lower[j]) != tauD || len(upper[j]) != tauD {
				return nil, fmt.Errorf("dataset: feature %q has %d/%d bounds, want %d",
					f.Name, len(lower[j]), len(upper[j]), tauD)
			}
			e.lower[j] = append([]float64(nil), lower[j]...)
			e.upper[j] = append([]float64(nil), upper[j]...)
			for k := 0; k < tauD; k++ {
				e.names = append(e.names, fmt.Sprintf("%s > %s", f.Name, formatBound(lower[j][k])))
			}
			for k := 0; k < tauD; k++ {
				e.names = append(e.names, fmt.Sprintf("%s < %s", f.Name, formatBound(upper[j][k])))
			}
			w += 2 * tauD
		}
	}
	e.offsets[len(schema.Features)] = w
	e.width = w
	return e, nil
}
