package dataset

import "math/rand"

// BankSize is the row count of the original bank-marketing benchmark.
const BankSize = 45211

// BankSchema returns the 16-feature mixed schema of the bank term-deposit task.
func BankSchema() *Schema {
	return &Schema{
		Name:   "bank",
		Labels: [2]string{"no", "yes"},
		Features: []Feature{
			{Name: "age", Kind: Continuous, Min: 18, Max: 95},
			{Name: "job", Kind: Discrete, Categories: []string{
				"admin", "unknown", "unemployed", "management", "housemaid",
				"entrepreneur", "student", "blue-collar", "self-employed",
				"retired", "technician", "services"}},
			{Name: "marital", Kind: Discrete, Categories: []string{"married", "divorced", "single"}},
			{Name: "education", Kind: Discrete, Categories: []string{"unknown", "secondary", "primary", "tertiary"}},
			{Name: "default", Kind: Discrete, Categories: []string{"no", "yes"}},
			{Name: "balance", Kind: Continuous, Min: -8000, Max: 102000},
			{Name: "housing", Kind: Discrete, Categories: []string{"no", "yes"}},
			{Name: "loan", Kind: Discrete, Categories: []string{"no", "yes"}},
			{Name: "contact", Kind: Discrete, Categories: []string{"unknown", "telephone", "cellular"}},
			{Name: "day", Kind: Continuous, Min: 1, Max: 31},
			{Name: "month", Kind: Discrete, Categories: []string{
				"jan", "feb", "mar", "apr", "may", "jun",
				"jul", "aug", "sep", "oct", "nov", "dec"}},
			{Name: "duration", Kind: Continuous, Min: 0, Max: 4918},
			{Name: "campaign", Kind: Continuous, Min: 1, Max: 63},
			{Name: "pdays", Kind: Continuous, Min: -1, Max: 871},
			{Name: "previous", Kind: Continuous, Min: 0, Max: 275},
			{Name: "poutcome", Kind: Discrete, Categories: []string{"unknown", "other", "failure", "success"}},
		},
	}
}

// Bank generates n rows of the synthetic bank-marketing benchmark with
// planted rules known from the real data (long call duration, prior campaign
// success, healthy balance → subscription; many contacts, housing loan →
// refusal). About 14% of rows are positive and ~89-91% accuracy is
// achievable, matching the "high task performance" regime of the paper.
func Bank(r *rand.Rand, n int) *Table {
	schema := BankSchema()
	t := &Table{Schema: schema, Instances: make([]Instance, 0, n)}
	for i := 0; i < n; i++ {
		v := make([]float64, len(schema.Features))
		v[0] = 18 + r.ExpFloat64()*13
		if v[0] > 95 {
			v[0] = 95
		}
		v[1] = float64(r.Intn(12))
		v[2] = float64(weightedChoice(r, []float64{0.60, 0.12, 0.28}))
		v[3] = float64(weightedChoice(r, []float64{0.04, 0.51, 0.15, 0.30}))
		v[4] = float64(weightedChoice(r, []float64{0.98, 0.02}))

		balance := -500 + r.ExpFloat64()*1800
		if balance > 102000 {
			balance = 102000
		}
		v[5] = balance

		v[6] = float64(weightedChoice(r, []float64{0.44, 0.56}))
		v[7] = float64(weightedChoice(r, []float64{0.84, 0.16}))
		v[8] = float64(weightedChoice(r, []float64{0.29, 0.06, 0.65}))
		v[9] = float64(1 + r.Intn(31))
		v[10] = float64(r.Intn(12))

		duration := r.ExpFloat64() * 260
		if duration > 4918 {
			duration = 4918
		}
		v[11] = duration

		campaign := 1 + r.ExpFloat64()*2
		if campaign > 63 {
			campaign = 63
		}
		v[12] = campaign

		pdays := -1.0
		contacted := r.Float64() < 0.18
		if contacted {
			pdays = r.Float64() * 400
		}
		v[13] = pdays
		if contacted {
			v[14] = float64(1 + r.Intn(5))
		}
		pout := 0 // unknown
		if contacted {
			pout = weightedChoice(r, []float64{0.1, 0.25, 0.5, 0.15})
		}
		v[15] = float64(pout)

		score := 0.0
		if duration > 500 {
			score += 2.6
		} else if duration > 250 {
			score += 1.0
		} else if duration < 90 {
			score -= 1.6
		}
		if pout == 3 { // success
			score += 2.4
		}
		if balance > 1500 {
			score += 0.7
		}
		if balance < 0 {
			score -= 0.7
		}
		if int(v[6]) == 1 { // housing loan
			score -= 0.8
		}
		if campaign > 3 {
			score -= 0.8
		}
		if int(v[8]) == 2 { // cellular contact
			score += 0.4
		}
		m := int(v[10])
		if m == 2 || m == 8 || m == 9 { // mar, sep, oct conversion spikes
			score += 0.9
		}
		if v[0] > 60 || v[0] < 25 { // retirees and students subscribe more
			score += 0.6
		}

		label := 0
		if score+r.NormFloat64()*0.8 > 2.1 {
			label = 1
		}
		t.Instances = append(t.Instances, Instance{Values: v, Label: label})
	}
	return t
}
