package dataset

import (
	"fmt"
	"math/rand"
)

// Encoder implements the privacy-preserving input encoding of CTFL Section V:
// discrete features become one-hot predicates plus an "unknown" slot, and
// each continuous feature c in [lo, hi] becomes 2*TauD threshold predicates
// 1(c > l_k) and 1(c < u_k) with bounds sampled uniformly from the public
// feature domain (never from the private data). The logical layers then learn
// which predicates participate in each rule.
type Encoder struct {
	schema *Schema
	tauD   int
	// offsets[j] is the first predicate index belonging to feature j.
	offsets []int
	width   int
	// lower[j], upper[j] hold the sampled bounds for continuous feature j
	// (nil for discrete features).
	lower, upper [][]float64
	names        []string
}

// NewEncoder samples threshold bounds with r and returns an Encoder. tauD is
// the number of lower (and of upper) bounds per continuous feature — the
// paper's "dimension of binarization layer" default is 10.
func NewEncoder(schema *Schema, tauD int, r *rand.Rand) (*Encoder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if tauD < 1 {
		return nil, fmt.Errorf("dataset: tauD must be >= 1, got %d", tauD)
	}
	e := &Encoder{
		schema:  schema,
		tauD:    tauD,
		offsets: make([]int, schema.NumFeatures()+1),
		lower:   make([][]float64, schema.NumFeatures()),
		upper:   make([][]float64, schema.NumFeatures()),
	}
	w := 0
	for j, f := range schema.Features {
		e.offsets[j] = w
		switch f.Kind {
		case Discrete:
			// one predicate per category plus the unknown slot
			for _, c := range f.Categories {
				e.names = append(e.names, fmt.Sprintf("%s = %s", f.Name, c))
			}
			e.names = append(e.names, fmt.Sprintf("%s = <unknown>", f.Name))
			w += len(f.Categories) + 1
		case Continuous:
			lo := make([]float64, tauD)
			hi := make([]float64, tauD)
			span := f.Max - f.Min
			for k := 0; k < tauD; k++ {
				lo[k] = f.Min + r.Float64()*span
				hi[k] = f.Min + r.Float64()*span
			}
			e.lower[j], e.upper[j] = lo, hi
			for k := 0; k < tauD; k++ {
				e.names = append(e.names, fmt.Sprintf("%s > %s", f.Name, formatBound(lo[k])))
			}
			for k := 0; k < tauD; k++ {
				e.names = append(e.names, fmt.Sprintf("%s < %s", f.Name, formatBound(hi[k])))
			}
			w += 2 * tauD
		}
	}
	e.offsets[len(schema.Features)] = w
	e.width = w
	return e, nil
}

func formatBound(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Width returns the number of predicates the encoder produces.
func (e *Encoder) Width() int { return e.width }

// Schema returns the schema the encoder was built for.
func (e *Encoder) Schema() *Schema { return e.schema }

// PredicateName returns the human-readable form of predicate i, used by the
// rule pretty-printer.
func (e *Encoder) PredicateName(i int) string {
	if i < 0 || i >= e.width {
		panic(fmt.Sprintf("dataset: predicate index %d out of range [0,%d)", i, e.width))
	}
	return e.names[i]
}

// FeatureOffset returns the first predicate index of feature j and the
// predicate count of that feature.
func (e *Encoder) FeatureOffset(j int) (offset, count int) {
	return e.offsets[j], e.offsets[j+1] - e.offsets[j]
}

// Encode fills dst (length Width) with the {0,1} predicate vector of in.
// If dst is nil a new slice is allocated. The filled slice is returned.
func (e *Encoder) Encode(in Instance, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, e.width)
	} else {
		if len(dst) != e.width {
			panic(fmt.Sprintf("dataset: Encode dst length %d, want %d", len(dst), e.width))
		}
		for i := range dst {
			dst[i] = 0
		}
	}
	for j, f := range e.schema.Features {
		off := e.offsets[j]
		v := in.Values[j]
		switch f.Kind {
		case Discrete:
			c := int(v)
			if c >= 0 && c < len(f.Categories) {
				dst[off+c] = 1
			} else {
				dst[off+len(f.Categories)] = 1 // unknown slot
			}
		case Continuous:
			lo, hi := e.lower[j], e.upper[j]
			for k := 0; k < e.tauD; k++ {
				if v > lo[k] {
					dst[off+k] = 1
				}
				if v < hi[k] {
					dst[off+e.tauD+k] = 1
				}
			}
		}
	}
	return dst
}

// EncodeTable encodes every instance of t into a dense row-major matrix of
// shape [t.Len()][Width] plus the label vector.
func (e *Encoder) EncodeTable(t *Table) (x [][]float64, y []int) {
	x = make([][]float64, t.Len())
	y = make([]int, t.Len())
	for i, in := range t.Instances {
		x[i] = e.Encode(in, nil)
		y[i] = in.Label
	}
	return x, y
}
