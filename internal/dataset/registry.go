package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// Info summarizes a named benchmark generator for the CLI and experiments.
type Info struct {
	Name        string
	FullSize    int    // row count of the original dataset
	FeatureNote string // matches Table IV of the paper
	// Generate produces n rows; n <= 0 means the dataset's natural size
	// (relevant for tic-tac-toe, whose size is fixed at 958).
	Generate func(r *rand.Rand, n int) *Table
}

// Benchmarks lists the paper's four evaluation datasets (Table IV).
func Benchmarks() []Info {
	return []Info{
		{
			Name:        "tic-tac-toe",
			FullSize:    958,
			FeatureNote: "9 discrete",
			Generate: func(_ *rand.Rand, _ int) *Table {
				return TicTacToe()
			},
		},
		{
			Name:        "adult",
			FullSize:    AdultSize,
			FeatureNote: "14 mixed",
			Generate: func(r *rand.Rand, n int) *Table {
				if n <= 0 {
					n = AdultSize
				}
				return Adult(r, n)
			},
		},
		{
			Name:        "bank",
			FullSize:    BankSize,
			FeatureNote: "16 mixed",
			Generate: func(r *rand.Rand, n int) *Table {
				if n <= 0 {
					n = BankSize
				}
				return Bank(r, n)
			},
		},
		{
			Name:        "dota2",
			FullSize:    Dota2Size,
			FeatureNote: "116 discrete",
			Generate: func(r *rand.Rand, n int) *Table {
				if n <= 0 {
					n = Dota2Size
				}
				return Dota2(r, n)
			},
		},
	}
}

// ByName returns the named benchmark generator.
func ByName(name string) (Info, error) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	var names []string
	for _, b := range Benchmarks() {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return Info{}, fmt.Errorf("dataset: unknown benchmark %q (have %v)", name, names)
}
