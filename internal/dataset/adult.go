package dataset

import "math/rand"

// AdultSize is the row count of the original UCI/Kaggle adult benchmark.
const AdultSize = 32561

// AdultSchema returns the 14-feature mixed schema of the adult income task.
func AdultSchema() *Schema {
	return &Schema{
		Name:   "adult",
		Labels: [2]string{"<=50K", ">50K"},
		Features: []Feature{
			{Name: "age", Kind: Continuous, Min: 17, Max: 90},
			{Name: "work-class", Kind: Discrete, Categories: []string{
				"private", "self-emp-not-inc", "self-emp-inc", "federal-gov",
				"local-gov", "state-gov", "without-pay", "never-worked"}},
			{Name: "fnlwgt", Kind: Continuous, Min: 10000, Max: 1500000},
			{Name: "education", Kind: Discrete, Categories: []string{
				"bachelors", "some-college", "11th", "hs-grad", "prof-school",
				"assoc-acdm", "assoc-voc", "9th", "7th-8th", "12th", "masters",
				"1st-4th", "10th", "doctorate", "5th-6th", "preschool"}},
			{Name: "education-num", Kind: Continuous, Min: 1, Max: 16},
			{Name: "marital-status", Kind: Discrete, Categories: []string{
				"married-civ-spouse", "divorced", "never", "separated",
				"widowed", "married-spouse-absent", "married-af-spouse"}},
			{Name: "occupation", Kind: Discrete, Categories: []string{
				"tech-support", "craft-repair", "other-service", "sales",
				"exec-managerial", "prof-specialty", "handlers-cleaners",
				"machine-op-inspct", "adm-clerical", "farming-fishing",
				"transport-moving", "priv-house-serv", "protective-serv",
				"armed-forces"}},
			{Name: "relationship", Kind: Discrete, Categories: []string{
				"wife", "own-child", "husband", "not-in-family",
				"other-relative", "unmarried"}},
			{Name: "race", Kind: Discrete, Categories: []string{
				"white", "asian-pac-islander", "amer-indian-eskimo", "other", "black"}},
			{Name: "sex", Kind: Discrete, Categories: []string{"female", "male"}},
			{Name: "capital-gain", Kind: Continuous, Min: 0, Max: 99999},
			{Name: "capital-loss", Kind: Continuous, Min: 0, Max: 4356},
			{Name: "hours-per-week", Kind: Continuous, Min: 1, Max: 99},
			{Name: "native-country", Kind: Discrete, Categories: []string{
				"united-states", "mexico", "philippines", "germany", "other"}},
		},
	}
}

// Adult generates n rows of the synthetic adult benchmark. The label is
// produced by a noisy vote of planted logical rules chosen to match the
// rules the paper itself reports discovering on the real data (Table V:
// capital-gain thresholds, education-num > 15, hours-per-week, marital
// status, work-class, age > 55), so a rule-based model can recover them and
// CTFL can trace contributions through them. Roughly 25% of rows are
// positive and ~84-86% accuracy is achievable, mirroring the real task.
func Adult(r *rand.Rand, n int) *Table {
	schema := AdultSchema()
	t := &Table{Schema: schema, Instances: make([]Instance, 0, n)}
	for i := 0; i < n; i++ {
		v := make([]float64, len(schema.Features))

		age := 17 + r.ExpFloat64()*14
		if age > 90 {
			age = 90
		}
		if r.Float64() < 0.55 {
			age = 22 + r.Float64()*45 // bulk of working-age population
		}
		v[0] = age

		v[1] = float64(weightedChoice(r, []float64{0.70, 0.08, 0.03, 0.03, 0.06, 0.04, 0.005, 0.055}))
		v[2] = 10000 + r.Float64()*600000 // fnlwgt: census weight, label-irrelevant

		eduNum := 1 + r.Intn(16)
		// Skew toward HS-grad / some-college levels like the real data.
		if r.Float64() < 0.6 {
			eduNum = 8 + r.Intn(6)
		}
		v[4] = float64(eduNum)
		v[3] = float64(eduIdxFromNum(eduNum))

		v[5] = float64(weightedChoice(r, []float64{0.46, 0.14, 0.33, 0.03, 0.03, 0.005, 0.005}))
		v[6] = float64(r.Intn(14))
		v[7] = float64(weightedChoice(r, []float64{0.05, 0.16, 0.40, 0.26, 0.03, 0.10}))
		v[8] = float64(weightedChoice(r, []float64{0.85, 0.03, 0.01, 0.01, 0.10}))
		v[9] = float64(weightedChoice(r, []float64{0.33, 0.67}))

		// capital-gain: mostly 0, occasionally large (the paper's strongest rule).
		capGain := 0.0
		if r.Float64() < 0.085 {
			capGain = r.Float64() * 99999
		}
		v[10] = capGain

		capLoss := 0.0
		if r.Float64() < 0.047 {
			capLoss = 100 + r.Float64()*4000
		}
		v[11] = capLoss

		hours := 20 + r.Float64()*60
		if r.Float64() < 0.45 {
			hours = 38 + r.Float64()*6 // standard full-time cluster
		}
		v[12] = hours

		v[13] = float64(weightedChoice(r, []float64{0.90, 0.02, 0.01, 0.005, 0.065}))

		// Planted rule vote (mirrors Table V / Fig. 2 rules).
		score := 0.0
		if capGain > 21000 {
			score += 3.0
		} else if capGain > 5000 {
			score += 1.2
		}
		if v[4] > 15 {
			score += 2.0
		} else if v[4] > 12 {
			score += 1.0
		}
		if int(v[5]) == 0 { // married-civ-spouse
			score += 1.3
		}
		if int(v[5]) == 2 { // never married
			score -= 1.2
		}
		if hours > 45 {
			score += 0.7
		}
		if hours < 25 {
			score -= 0.9
		}
		if age > 55 && (int(v[1]) == 0 || int(v[1]) == 5) { // private or state-gov
			score += 0.6
		}
		if age < 25 {
			score -= 1.0
		}
		occ := int(v[6])
		if occ == 4 || occ == 5 { // exec-managerial, prof-specialty
			score += 0.6
		}
		if capLoss > 1800 {
			score += 0.8
		}

		label := 0
		if score+r.NormFloat64()*0.9 > 1.9 {
			label = 1
		}
		t.Instances = append(t.Instances, Instance{Values: v, Label: label})
	}
	return t
}

// eduIdxFromNum maps an education-num level onto a plausible education
// category index in AdultSchema's education feature.
func eduIdxFromNum(num int) int {
	switch {
	case num <= 1:
		return 15 // preschool
	case num <= 2:
		return 11 // 1st-4th
	case num <= 3:
		return 14 // 5th-6th
	case num <= 4:
		return 8 // 7th-8th
	case num <= 5:
		return 7 // 9th
	case num <= 6:
		return 12 // 10th
	case num <= 7:
		return 2 // 11th
	case num <= 8:
		return 9 // 12th
	case num <= 9:
		return 3 // hs-grad
	case num <= 10:
		return 1 // some-college
	case num <= 11:
		return 6 // assoc-voc
	case num <= 12:
		return 5 // assoc-acdm
	case num <= 13:
		return 0 // bachelors
	case num <= 14:
		return 10 // masters
	case num <= 15:
		return 4 // prof-school
	default:
		return 13 // doctorate
	}
}

// weightedChoice samples an index proportional to weights.
func weightedChoice(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
