// Package rules turns a trained, binarized logical neural network into the
// explicit rule-based model of CTFL Definition III.2: a set of positive and
// negative classification rules with importance weights, plus fast
// rule-activation vectors (bitsets) for the tracer and human-readable rule
// expressions for the interpreter.
package rules

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/nn"
)

// Rule is one extracted classification rule.
type Rule struct {
	// Index is the rule's position in the model's rule-activation vector.
	Index int
	// Conj reports whether the top-level operation is a conjunction.
	Conj bool
	// Positive reports whether the rule supports the positive class (its
	// head weight is positive, paper r+ vs r-).
	Positive bool
	// Weight is the rule's importance |head weight| (paper w+ / w-).
	Weight float64
	// Expr is the human-readable logical expression.
	Expr string
	// Arity counts the rule's direct operands after binarization.
	Arity int
	// Layer and Node locate the rule's logical node; Selected lists its
	// direct operand indices within that layer's input vector (predicate
	// indices for layer 0; skip-connection operands reference earlier-layer
	// nodes at index >= encoder width).
	Layer    int
	Node     int
	Selected []int
}

// Set is the extracted rule-based model: every live rule of the network,
// class masks and weight vectors, and the machinery to compute activation
// vectors for data instances.
type Set struct {
	model *nn.Model
	// bin is the compiled binarized evaluator — the model's discrete
	// structure snapshot taken at extraction time. All activation
	// computation goes through it (bit-identical to the model's discrete
	// forward pass, far cheaper).
	bin *nn.Binarized
	enc *dataset.Encoder
	// Rules lists the live (non-degenerate, non-zero-weight) rules.
	Rules []Rule
	// width is the model's full rule vector size; activation sets use it.
	width int
	// posMask/negMask mark rule-vector indices that are live positive /
	// negative rules.
	posMask, negMask *bitset.Set
	// weights[i] = |head weight| of rule-vector index i (0 for dead rules).
	weights []float64
}

// minWeight is the importance below which a rule is considered dead: it
// cannot meaningfully influence the vote and would only add noise to tracing.
const minWeight = 1e-6

// Extract builds the rule set of a trained model. The encoder must be the
// one whose predicates the model was trained on.
func Extract(m *nn.Model, enc *dataset.Encoder) *Set {
	if m.InDim() != enc.Width() {
		panic(fmt.Sprintf("rules: model input %d != encoder width %d", m.InDim(), enc.Width()))
	}
	specs := m.RuleSpecs()
	head := m.HeadWeights()
	s := &Set{
		model:   m,
		bin:     m.Binarize(),
		enc:     enc,
		width:   m.RuleDim(),
		posMask: bitset.New(m.RuleDim()),
		negMask: bitset.New(m.RuleDim()),
		weights: make([]float64, m.RuleDim()),
	}

	// exprCache[{layer,node}] holds the expression of each node so deeper
	// layers can expand skip-connection operands; specs are emitted layer by
	// layer, so shallower entries are always present when referenced.
	exprCache := map[[2]int]string{}
	for i, sp := range specs {
		key := [2]int{sp.Layer, sp.Node}
		op := " ∧ "
		if !sp.Conj {
			op = " ∨ "
		}
		var parts []string
		for _, sel := range sp.Selected {
			if sel < enc.Width() {
				parts = append(parts, enc.PredicateName(sel))
				continue
			}
			// Skip-connection operand: node (sel - inDim) of the previous layer.
			prev := [2]int{sp.Layer - 1, sel - enc.Width()}
			sub, ok := exprCache[prev]
			if !ok {
				sub = "?"
			}
			parts = append(parts, "("+sub+")")
		}
		var expr string
		switch {
		case len(parts) == 0 && sp.Conj:
			expr = "TRUE"
		case len(parts) == 0:
			expr = "FALSE"
		default:
			expr = strings.Join(parts, op)
		}
		exprCache[key] = expr

		w := head[i]
		if len(sp.Selected) == 0 || math.Abs(w) < minWeight {
			continue // degenerate or dead rule
		}
		r := Rule{
			Index:    i,
			Conj:     sp.Conj,
			Positive: w > 0,
			Weight:   math.Abs(w),
			Expr:     expr,
			Arity:    len(sp.Selected),
			Layer:    sp.Layer,
			Node:     sp.Node,
			Selected: append([]int(nil), sp.Selected...),
		}
		s.Rules = append(s.Rules, r)
		s.weights[i] = r.Weight
		if r.Positive {
			s.posMask.Set(i)
		} else {
			s.negMask.Set(i)
		}
	}
	return s
}

// Width returns the size of the full rule-activation vector.
func (s *Set) Width() int { return s.width }

// Weights returns |head weight| per rule-vector index (0 for dead rules).
// Callers must not modify the returned slice.
func (s *Set) Weights() []float64 { return s.weights }

// ClassMask returns the mask of live rules supporting the given label
// (1 → positive rules r+, 0 → negative rules r-). Callers must not modify
// the returned set.
func (s *Set) ClassMask(label int) *bitset.Set {
	if label == 1 {
		return s.posMask
	}
	return s.negMask
}

// Encode converts a raw instance into the encoder's predicate vector,
// ready for Activations.
func (s *Set) Encode(in dataset.Instance) []float64 {
	return s.enc.Encode(in, nil)
}

// Encoder returns the predicate encoder the rules are expressed over.
func (s *Set) Encoder() *dataset.Encoder { return s.enc }

// Activations returns the binarized rule-activation bitset for the encoded
// input x (full vector; use ClassMask to restrict to one class side).
func (s *Set) Activations(x []float64) *bitset.Set {
	act := s.bin.RuleActivations(x, nil)
	b := bitset.New(s.width)
	for i, v := range act {
		if v >= 0.5 {
			b.Set(i)
		}
	}
	return b
}

// ActivationsTable encodes and computes activation bitsets for every
// instance of t in one parallel pass, returning also the deployed model's
// predicted labels (used by the tracer to classify TP/TN/FP/FN cases).
func (s *Set) ActivationsTable(t *dataset.Table) (acts []*bitset.Set, pred []int) {
	xs, _ := s.enc.EncodeTable(t)
	scores, rows := s.bin.ScoreAndActivationsBatch(xs)
	acts = make([]*bitset.Set, len(xs))
	pred = make([]int, len(xs))
	for i := range xs {
		if scores[i] >= 0 {
			pred[i] = 1
		}
		b := bitset.New(s.width)
		for ri, v := range rows[i] {
			if v >= 0.5 {
				b.Set(ri)
			}
		}
		acts[i] = b
	}
	return acts, pred
}

// ByClass splits the live rules by the class they support.
func (s *Set) ByClass() (pos, neg []Rule) {
	for _, r := range s.Rules {
		if r.Positive {
			pos = append(pos, r)
		} else {
			neg = append(neg, r)
		}
	}
	return pos, neg
}

// RuleByIndex returns the live rule at rule-vector index i, if any.
func (s *Set) RuleByIndex(i int) (Rule, bool) {
	for _, r := range s.Rules {
		if r.Index == i {
			return r, true
		}
	}
	return Rule{}, false
}

// String renders a compact summary of the rule set.
func (s *Set) String() string {
	pos, neg := s.ByClass()
	var b strings.Builder
	fmt.Fprintf(&b, "rule set: %d live rules (%d positive, %d negative) of %d nodes\n",
		len(s.Rules), len(pos), len(neg), s.width)
	for _, r := range s.Rules {
		side := "+"
		if !r.Positive {
			side = "-"
		}
		fmt.Fprintf(&b, "  [%s w=%.3f] %s\n", side, r.Weight, r.Expr)
	}
	return b.String()
}
