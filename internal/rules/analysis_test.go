package rules

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
)

// analysisFixture wires four layer-0 rules with controlled structure:
//
//	node0 conj {p0}        (positive, w 1.0)  — general
//	node1 conj {p0, p3}    (positive, w 0.8)  — subsumed by node0
//	node2 disj {p0}        (negative, w 0.5)  — more specific than node3
//	node3 disj {p0, p3}    (negative, w 0.5)  — general disjunction
func analysisFixture(t *testing.T) (*dataset.Encoder, *Set) {
	t.Helper()
	s := &dataset.Schema{
		Name: "an",
		Features: []dataset.Feature{
			{Name: "a", Kind: dataset.Discrete, Categories: []string{"t", "f"}},
			{Name: "b", Kind: dataset.Discrete, Categories: []string{"t", "f"}},
		},
	}
	enc, err := dataset.NewEncoder(s, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// predicates: a=t(0), a=f(1), a=?(2), b=t(3), b=f(4), b=?(5)
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	in := enc.Width()
	p[0*in+0] = 1
	p[1*in+0] = 1
	p[1*in+3] = 1
	p[2*in+0] = 1
	p[3*in+0] = 1
	p[3*in+3] = 1
	head := 4 * in
	p[head+0] = 1
	p[head+1] = 0.8
	p[head+2] = -0.5
	p[head+3] = -0.5
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	return enc, Extract(m, enc)
}

func TestRuleSelectedExposed(t *testing.T) {
	_, rs := analysisFixture(t)
	r1, ok := rs.RuleByIndex(1)
	if !ok || len(r1.Selected) != 2 || r1.Selected[0] != 0 || r1.Selected[1] != 3 {
		t.Fatalf("rule 1 selected = %+v", r1)
	}
	if r1.Layer != 0 {
		t.Fatalf("layer = %d", r1.Layer)
	}
}

func TestStats(t *testing.T) {
	enc, rs := analysisFixture(t)
	_ = enc
	tab := &dataset.Table{Schema: rs.enc.Schema(), Instances: []dataset.Instance{
		{Values: []float64{0, 0}, Label: 1}, // a=t, b=t: all rules fire
		{Values: []float64{0, 1}, Label: 1}, // a=t, b=f: node0, node2, node3 fire
		{Values: []float64{1, 0}, Label: 0}, // a=f, b=t: node3 fires (disj via p3)
		{Values: []float64{1, 1}, Label: 0}, // nothing fires
	}}
	sts := rs.Stats(tab)
	if len(sts) != 4 {
		t.Fatalf("stats count = %d", len(sts))
	}
	byIdx := map[int]RuleStat{}
	for _, st := range sts {
		byIdx[st.Rule.Index] = st
	}
	// node0 (conj a=t): fires on rows 0,1; both positive → precision 1.
	if st := byIdx[0]; st.Fired != 2 || math.Abs(st.Precision-1) > 1e-12 {
		t.Fatalf("node0 stat = %+v", st)
	}
	// node3 (disj a=t ∨ b=t, negative side): fires rows 0,1,2; labels 1,1,0
	// → precision 1/3.
	if st := byIdx[3]; st.Fired != 3 || math.Abs(st.Precision-1.0/3) > 1e-9 {
		t.Fatalf("node3 stat = %+v", st)
	}
	// Sorted by support descending: node3 first.
	if sts[0].Rule.Index != 3 {
		t.Fatalf("sort order wrong: first = %d", sts[0].Rule.Index)
	}
	out := FormatStats(sts, 2)
	if !strings.Contains(out, "sup=") || strings.Count(out, "\n") != 3 {
		t.Fatalf("FormatStats output:\n%s", out)
	}
}

func TestFindRedundancy(t *testing.T) {
	_, rs := analysisFixture(t)
	reds := rs.FindRedundancy()
	// Expect: conj node0 subsumes node1; disj node3 subsumes node2.
	var conjOK, disjOK bool
	for _, r := range reds {
		if r.Kind == "subsumes" && r.A == 0 && r.B == 1 {
			conjOK = true
		}
		if r.Kind == "subsumes" && r.A == 3 && r.B == 2 {
			disjOK = true
		}
		if r.Kind == "duplicate" {
			t.Fatalf("unexpected duplicate: %+v", r)
		}
	}
	if !conjOK || !disjOK {
		t.Fatalf("redundancy relations missing: %+v", reds)
	}
}

func TestFindRedundancyDuplicates(t *testing.T) {
	enc, _ := analysisFixture(t)
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{4}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	in := enc.Width()
	p[0*in+0] = 1 // node0 conj {p0}
	p[1*in+0] = 1 // node1 conj {p0} — duplicate
	head := 4 * in
	p[head+0] = 1
	p[head+1] = 1
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	rs := Extract(m, enc)
	reds := rs.FindRedundancy()
	found := false
	for _, r := range reds {
		if r.Kind == "duplicate" && r.A == 0 && r.B == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate not detected: %+v", reds)
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{}, []int{1, 2}, true},
		{[]int{1}, []int{1, 2}, true},
		{[]int{2}, []int{1, 2}, true},
		{[]int{3}, []int{1, 2}, false},
		{[]int{1, 2}, []int{1}, false},
		{[]int{1, 2}, []int{1, 2}, true},
	}
	for _, c := range cases {
		if got := isSubset(c.a, c.b); got != c.want {
			t.Fatalf("isSubset(%v,%v) = %v", c.a, c.b, got)
		}
	}
}
