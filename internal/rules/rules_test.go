package rules

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
)

// fixture builds a tiny schema/encoder/model with hand-set weights:
// predicates: color=red(0), color=blue(1), color=<unknown>(2), plus a
// 2-threshold continuous feature (indices 3..6).
func fixture(t *testing.T) (*dataset.Encoder, *nn.Model) {
	t.Helper()
	s := &dataset.Schema{
		Name: "toy",
		Features: []dataset.Feature{
			{Name: "color", Kind: dataset.Discrete, Categories: []string{"red", "blue"}},
			{Name: "temp", Kind: dataset.Continuous, Min: 0, Max: 100},
		},
	}
	enc, err := dataset.NewEncoder(s, 2, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Zero everything, then wire:
	//   node 0 (conj): color=red ∧ color=blue  (never fires together but fine)
	//   node 1 (conj): color=red                (head +2.0 → positive rule)
	//   node 2 (disj): color=blue               (head -1.5 → negative rule)
	//   node 3 (disj): nothing selected         (degenerate, excluded)
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	in := enc.Width()
	p[0*in+0] = 1 // node0: red
	p[0*in+1] = 1 // node0: blue
	p[1*in+0] = 1 // node1: red
	p[2*in+1] = 1 // node2: blue
	head := 4 * in
	p[head+0] = 0.5  // node0 positive, small
	p[head+1] = 2.0  // node1 positive
	p[head+2] = -1.5 // node2 negative
	p[head+3] = 3.0  // degenerate node gets weight but no operands
	p[head+4] = 0    // bias
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	return enc, m
}

func TestExtractLiveRules(t *testing.T) {
	enc, m := fixture(t)
	rs := Extract(m, enc)
	if len(rs.Rules) != 3 {
		t.Fatalf("live rules = %d, want 3 (degenerate excluded): %v", len(rs.Rules), rs.Rules)
	}
	pos, neg := rs.ByClass()
	if len(pos) != 2 || len(neg) != 1 {
		t.Fatalf("pos=%d neg=%d, want 2/1", len(pos), len(neg))
	}
	r1, ok := rs.RuleByIndex(1)
	if !ok || !r1.Positive || r1.Weight != 2.0 || r1.Expr != "color = red" {
		t.Fatalf("rule 1 wrong: %+v ok=%v", r1, ok)
	}
	r2, ok := rs.RuleByIndex(2)
	if !ok || r2.Positive || r2.Expr != "color = blue" {
		t.Fatalf("rule 2 wrong: %+v", r2)
	}
	if _, ok := rs.RuleByIndex(3); ok {
		t.Fatal("degenerate rule should not be live")
	}
	if r0, _ := rs.RuleByIndex(0); r0.Expr != "color = red ∧ color = blue" {
		t.Fatalf("conj expr = %q", r0.Expr)
	}
}

func TestMasksAndWeights(t *testing.T) {
	enc, m := fixture(t)
	rs := Extract(m, enc)
	if !rs.ClassMask(1).Test(0) || !rs.ClassMask(1).Test(1) {
		t.Fatal("positive mask should include rules 0 and 1")
	}
	if !rs.ClassMask(0).Test(2) {
		t.Fatal("negative mask should include rule 2")
	}
	if rs.ClassMask(1).Test(3) || rs.ClassMask(0).Test(3) {
		t.Fatal("degenerate rule leaked into a mask")
	}
	w := rs.Weights()
	if w[1] != 2.0 || w[2] != 1.5 || w[3] != 0 {
		t.Fatalf("weights = %v", w)
	}
}

func TestActivations(t *testing.T) {
	enc, m := fixture(t)
	rs := Extract(m, enc)
	// red instance: rule1 (red) fires; rule2 (blue) does not; rule0 needs both.
	x := enc.Encode(dataset.Instance{Values: []float64{0, 50}}, nil)
	act := rs.Activations(x)
	if act.Test(0) {
		t.Fatal("conj red∧blue cannot fire")
	}
	if !act.Test(1) {
		t.Fatal("rule red should fire for red instance")
	}
	if act.Test(2) {
		t.Fatal("rule blue should not fire for red instance")
	}
}

func TestActivationsTable(t *testing.T) {
	enc, m := fixture(t)
	rs := Extract(m, enc)
	tab := &dataset.Table{Schema: enc.Schema(), Instances: []dataset.Instance{
		{Values: []float64{0, 10}, Label: 1}, // red
		{Values: []float64{1, 10}, Label: 0}, // blue
	}}
	acts, pred := rs.ActivationsTable(tab)
	if len(acts) != 2 || len(pred) != 2 {
		t.Fatalf("sizes: %d %d", len(acts), len(pred))
	}
	// red: score = 2.0 (rule1) → predict 1. blue: score = -1.5 → predict 0.
	if pred[0] != 1 || pred[1] != 0 {
		t.Fatalf("pred = %v, want [1 0]", pred)
	}
	if !acts[0].Test(1) || !acts[1].Test(2) {
		t.Fatal("activation sets wrong")
	}
}

func TestStringRendering(t *testing.T) {
	enc, m := fixture(t)
	rs := Extract(m, enc)
	out := rs.String()
	if !strings.Contains(out, "color = red") || !strings.Contains(out, "3 live rules") {
		t.Fatalf("String output unexpected:\n%s", out)
	}
}

func TestExtractPanicsOnMismatch(t *testing.T) {
	enc, _ := fixture(t)
	other, err := nn.New(enc.Width()+1, nn.Config{Hidden: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on encoder/model width mismatch")
		}
	}()
	Extract(other, enc)
}

func TestTwoLayerSkipExpressions(t *testing.T) {
	s := &dataset.Schema{
		Name: "toy2",
		Features: []dataset.Feature{
			{Name: "a", Kind: dataset.Discrete, Categories: []string{"t"}},
			{Name: "b", Kind: dataset.Discrete, Categories: []string{"t"}},
		},
	}
	enc, err := dataset.NewEncoder(s, 1, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// predicates: a=t(0), a=<unknown>(1), b=t(2), b=<unknown>(3); width 4.
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{2, 2}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	in := enc.Width()
	// layer0 node0 (conj): a=t ∧ b=t
	p[0*in+0] = 1
	p[0*in+2] = 1
	// layer1 inputs: 4 predicates + 2 layer0 nodes = 6 wide. Layer1 starts at 2*in.
	l1 := 2 * in
	// layer1 node1 (disj, since numConj=1): operand = layer0 node0 (input idx 4)
	p[l1+1*6+4] = 1
	head := l1 + 2*6
	p[head+0] = 1 // layer0 node0 live
	p[head+3] = 1 // layer1 node1 live
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	rs := Extract(m, enc)
	var found bool
	for _, r := range rs.Rules {
		if strings.Contains(r.Expr, "(a = t ∧ b = t)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("compound rule expression not expanded: %v", rs.Rules)
	}
}
