package rules

// Rule-set quality analysis: per-rule support and precision on labeled data,
// plus structural redundancy detection (duplicate and subsumed rules). These
// reports back the interpretability story — a federation publishing rules as
// contribution evidence needs to know which ones are trustworthy — and guide
// the L1 pruning strength (see nn.Config.L1Logic).

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// RuleStat is one rule's empirical behaviour on a labeled table.
type RuleStat struct {
	Rule Rule
	// Fired counts instances activating the rule; Support is Fired divided
	// by the table size.
	Fired   int
	Support float64
	// Precision is, among firing instances, the fraction whose label matches
	// the rule's class side. 0 when the rule never fires.
	Precision float64
}

// Stats evaluates every live rule against a labeled table, sorted by
// descending support.
func (s *Set) Stats(t *dataset.Table) []RuleStat {
	acts, _ := s.ActivationsTable(t)
	out := make([]RuleStat, 0, len(s.Rules))
	for _, r := range s.Rules {
		st := RuleStat{Rule: r}
		match := 0
		wantLabel := 0
		if r.Positive {
			wantLabel = 1
		}
		for i, a := range acts {
			if !a.Test(r.Index) {
				continue
			}
			st.Fired++
			if t.Instances[i].Label == wantLabel {
				match++
			}
		}
		if t.Len() > 0 {
			st.Support = float64(st.Fired) / float64(t.Len())
		}
		if st.Fired > 0 {
			st.Precision = float64(match) / float64(st.Fired)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Support != out[b].Support {
			return out[a].Support > out[b].Support
		}
		return out[a].Rule.Index < out[b].Rule.Index
	})
	return out
}

// Redundancy describes a structural relation between two live rules.
type Redundancy struct {
	// Kind is "duplicate" (identical structure) or "subsumes" (every
	// activation of B is an activation of A).
	Kind string
	// A and B are rule-vector indices; for "subsumes", A is the more general
	// rule (A fires whenever B fires).
	A, B int
}

// FindRedundancy reports duplicate and subsumption relations among live
// rules of the same layer and kind. For conjunctions, a rule with operand
// set S_A fires whenever a rule with S_A ⊆ S_B fires (fewer conditions is
// more general); for disjunctions the containment direction flips.
func (s *Set) FindRedundancy() []Redundancy {
	var out []Redundancy
	for i := 0; i < len(s.Rules); i++ {
		for j := i + 1; j < len(s.Rules); j++ {
			a, b := s.Rules[i], s.Rules[j]
			if a.Layer != b.Layer || a.Conj != b.Conj {
				continue
			}
			subAB := isSubset(a.Selected, b.Selected)
			subBA := isSubset(b.Selected, a.Selected)
			switch {
			case subAB && subBA:
				out = append(out, Redundancy{Kind: "duplicate", A: a.Index, B: b.Index})
			case subAB: // a's operands ⊆ b's operands
				if a.Conj {
					// fewer conjuncts = more general
					out = append(out, Redundancy{Kind: "subsumes", A: a.Index, B: b.Index})
				} else {
					// fewer disjuncts = more specific
					out = append(out, Redundancy{Kind: "subsumes", A: b.Index, B: a.Index})
				}
			case subBA:
				if a.Conj {
					out = append(out, Redundancy{Kind: "subsumes", A: b.Index, B: a.Index})
				} else {
					out = append(out, Redundancy{Kind: "subsumes", A: a.Index, B: b.Index})
				}
			}
		}
	}
	return out
}

// isSubset reports whether every element of a (sorted ascending) appears in
// b (sorted ascending). RuleSpecs emit Selected sorted, so this holds.
func isSubset(a, b []int) bool {
	i := 0
	for _, want := range a {
		for i < len(b) && b[i] < want {
			i++
		}
		if i >= len(b) || b[i] != want {
			return false
		}
		i++
	}
	return true
}

// FormatStats renders the top-k rule statistics as a report block.
func FormatStats(stats []RuleStat, k int) string {
	if k > 0 && len(stats) > k {
		stats = stats[:k]
	}
	var b strings.Builder
	b.WriteString("rule statistics (support / precision):\n")
	for _, st := range stats {
		side := "+"
		if !st.Rule.Positive {
			side = "-"
		}
		fmt.Fprintf(&b, "  [%s w=%.3f sup=%.3f prec=%.3f] %s\n",
			side, st.Rule.Weight, st.Support, st.Precision, st.Rule.Expr)
	}
	return b.String()
}
