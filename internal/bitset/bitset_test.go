package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(0)
	if s.Width() != 0 || s.Count() != 0 || s.Any() {
		t.Fatalf("empty set misbehaves: width=%d count=%d any=%v", s.Width(), s.Count(), s.Any())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative width")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after clear = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Set(10) },
		func() { s.Set(-1) },
		func() { s.Test(10) },
		func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected out-of-range panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromIndicesAndIndicesRoundTrip(t *testing.T) {
	want := []int{2, 5, 63, 64, 99}
	s := FromIndices(100, want...)
	if got := s.Indices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
}

func TestFromBools(t *testing.T) {
	b := []bool{true, false, true, true, false}
	s := FromBools(b)
	if s.Width() != 5 {
		t.Fatalf("width = %d, want 5", s.Width())
	}
	for i, v := range b {
		if s.Test(i) != v {
			t.Fatalf("bit %d = %v, want %v", i, s.Test(i), v)
		}
	}
}

func TestIntersectCount(t *testing.T) {
	a := FromIndices(70, 1, 2, 3, 64, 65)
	b := FromIndices(70, 2, 3, 4, 65, 69)
	if got := a.IntersectCount(b); got != 3 {
		t.Fatalf("IntersectCount = %d, want 3", got)
	}
	if got := b.IntersectCount(a); got != 3 {
		t.Fatalf("IntersectCount not symmetric: %d", got)
	}
}

func TestContainsAll(t *testing.T) {
	sup := FromIndices(70, 1, 2, 3, 64)
	sub := FromIndices(70, 2, 64)
	if !sup.ContainsAll(sub) {
		t.Fatal("sup should contain sub")
	}
	if sub.ContainsAll(sup) {
		t.Fatal("sub should not contain sup")
	}
	if !sup.ContainsAll(New(70)) {
		t.Fatal("any set contains the empty set")
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := FromIndices(70, 1, 2, 64)
	b := FromIndices(70, 2, 3, 64, 69)
	and := a.Clone().And(b)
	if got := and.Indices(); !reflect.DeepEqual(got, []int{2, 64}) {
		t.Fatalf("And = %v", got)
	}
	or := a.Clone().Or(b)
	if got := or.Indices(); !reflect.DeepEqual(got, []int{1, 2, 3, 64, 69}) {
		t.Fatalf("Or = %v", got)
	}
	diff := a.Clone().AndNot(b)
	if got := diff.Indices(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("AndNot = %v", got)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := FromIndices(70, 1, 64)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(2)
	if a.Equal(c) {
		t.Fatal("mutation of clone affected equality")
	}
	if a.Equal(FromIndices(71, 1, 64)) {
		t.Fatal("different widths must not be equal")
	}
}

func TestWeightedCount(t *testing.T) {
	s := FromIndices(5, 0, 2, 4)
	w := []float64{1, 10, 100, 1000, 10000}
	if got := s.WeightedCount(w); got != 10101 {
		t.Fatalf("WeightedCount = %v, want 10101", got)
	}
}

func TestWeightedIntersect(t *testing.T) {
	a := FromIndices(5, 0, 1, 2)
	b := FromIndices(5, 1, 2, 3)
	w := []float64{1, 10, 100, 1000, 10000}
	if got := a.WeightedIntersect(b, w); got != 110 {
		t.Fatalf("WeightedIntersect = %v, want 110", got)
	}
}

func TestWeightedPanicsOnShortWeights(t *testing.T) {
	s := New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short weights")
		}
	}()
	s.WeightedCount([]float64{1})
}

func TestKeyDistinguishesPatterns(t *testing.T) {
	a := FromIndices(128, 0)
	b := FromIndices(128, 64)
	if a.Key() == b.Key() {
		t.Fatal("distinct patterns share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("equal patterns have different keys")
	}
}

func TestString(t *testing.T) {
	s := FromIndices(5, 0, 2)
	if got := s.String(); got != "10100" {
		t.Fatalf("String = %q, want 10100", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	a, b := New(5), New(6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected width-mismatch panic")
		}
	}()
	a.IntersectCount(b)
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, width int) *Set {
	s := New(width)
	for i := 0; i < width; i++ {
		if r.Intn(2) == 1 {
			s.Set(i)
		}
	}
	return s
}

func TestPropertyIntersectionMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(200)
		a, b := randomSet(r, width), randomSet(r, width)
		naive := 0
		for i := 0; i < width; i++ {
			if a.Test(i) && b.Test(i) {
				naive++
			}
		}
		return a.IntersectCount(b) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWeightedIntersectMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(150)
		a, b := randomSet(r, width), randomSet(r, width)
		w := make([]float64, width)
		for i := range w {
			w[i] = r.Float64()
		}
		naive := 0.0
		for i := 0; i < width; i++ {
			if a.Test(i) && b.Test(i) {
				naive += w[i]
			}
		}
		got := a.WeightedIntersect(b, w)
		diff := got - naive
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeMorganViaAndNot(t *testing.T) {
	// |a| = |a∩b| + |a\b|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(300)
		a, b := randomSet(r, width), randomSet(r, width)
		return a.Count() == a.IntersectCount(b)+a.Clone().AndNot(b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContainsAllIffIntersectEqualsCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(120)
		a, b := randomSet(r, width), randomSet(r, width)
		return a.ContainsAll(b) == (a.IntersectCount(b) == b.Count())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectCount512(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomSet(r, 512), randomSet(r, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectCount(y)
	}
}

func BenchmarkWeightedIntersect512(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomSet(r, 512), randomSet(r, 512)
	w := make([]float64, 512)
	for i := range w {
		w[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.WeightedIntersect(y, w)
	}
}

func TestPropertyAndIntoMatchesCloneAnd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(200)
		a, b := randomSet(r, width), randomSet(r, width)
		want := a.Clone().And(b)
		// nil destination allocates; reused destination must be overwritten.
		got := a.AndInto(b, nil)
		if !got.Equal(want) {
			return false
		}
		reused := randomSet(r, width) // stale bits must not leak through
		if !a.AndInto(b, reused).Equal(want) {
			return false
		}
		// Wrong-width destination is replaced, not written through.
		if !a.AndInto(b, randomSet(r, width+1)).Equal(want) {
			return false
		}
		// Operands stay untouched.
		return a.Equal(a.Clone()) && b.Equal(b.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyForEachMatchesIndices(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 1+r.Intn(200))
		var got []int
		s.ForEach(func(i int) { got = append(got, i) })
		want := s.Indices()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAppendKeyMatchesEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(200)
		a, b := randomSet(r, width), randomSet(r, width)
		ka := string(a.AppendKey(nil))
		kb := string(b.AppendKey(nil))
		if (ka == kb) != a.Equal(b) {
			return false
		}
		// Appending to a prefix keeps the prefix.
		pre := []byte{0xAB}
		full := a.AppendKey(pre)
		return full[0] == 0xAB && string(full[1:]) == ka
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
