package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeSlabIndependence(t *testing.T) {
	sets := MakeSlab(3, 70)
	sets[1].Set(0)
	sets[1].Set(69)
	for _, i := range []int{0, 2} {
		if sets[i].Any() {
			t.Fatalf("set %d dirtied by neighbour writes", i)
		}
	}
	if sets[1].Count() != 2 || !sets[1].Test(0) || !sets[1].Test(69) {
		t.Fatalf("set 1 = %v", sets[1].String())
	}
	if got := MakeSlab(0, 70); len(got) != 0 {
		t.Fatalf("empty slab has %d sets", len(got))
	}
	// Width-0 sets are legal, mirroring New(0).
	for _, s := range MakeSlab(2, 0) {
		if s.Width() != 0 || s.Any() {
			t.Fatalf("width-0 slab set = %+v", s)
		}
	}
}

// TestPropertySetPackedBytesMatchesPerBit pins the word-at-a-time loader to
// the obvious per-bit reference, including stray padding bits in the final
// byte, which must be masked off.
func TestPropertySetPackedBytesMatchesPerBit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + r.Intn(300)
		packed := make([]byte, (width+7)/8)
		r.Read(packed)

		want := New(width)
		for i := 0; i < width; i++ {
			if packed[i/8]&(1<<(i%8)) != 0 {
				want.Set(i)
			}
		}
		got := New(width)
		// Pre-dirty so the overwrite semantics are exercised too.
		for i := 0; i < width; i += 3 {
			got.Set(i)
		}
		got.SetPackedBytes(packed)
		if !got.Equal(want) {
			return false
		}
		// Canonical form: indices must all be in range even when the final
		// byte carries garbage past the width.
		for _, i := range got.Indices() {
			if i < 0 || i >= width {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetPackedBytesShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short packed input did not panic")
		}
	}()
	s := New(17)
	s.SetPackedBytes(make([]byte, 2))
}
