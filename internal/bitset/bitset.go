// Package bitset provides fixed-width packed bitsets used throughout the
// repository as rule-activation vectors. A Set of width m records, for one
// data instance, which of the m rules of a rule-based model fire on it.
//
// The hot operations in CTFL's tracing phase are intersection cardinality
// (how many activated rules two instances share) and weighted intersection;
// both are implemented with 64-bit words and math/bits popcounts so that a
// single training-vs-test comparison costs O(m/64).
package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-width bitset. The zero value is an empty set of width 0;
// use New to create a set with capacity for a given number of bits.
type Set struct {
	words []uint64
	width int
}

// New returns a Set able to hold width bits, all initially clear.
func New(width int) *Set {
	if width < 0 {
		panic("bitset: negative width")
	}
	return &Set{
		words: make([]uint64, (width+wordBits-1)/wordBits),
		width: width,
	}
}

// FromIndices returns a Set of the given width with exactly the listed bits set.
// It panics if an index is out of range.
func FromIndices(width int, indices ...int) *Set {
	s := New(width)
	for _, i := range indices {
		s.Set(i)
	}
	return s
}

// MakeSlab returns n width-bit Sets backed by one shared words allocation —
// the bulk form of calling New n times. Decoding a batch of activation
// records into a slab costs two allocations total instead of two per record.
// Each Set is fully independent bit-wise (the word ranges do not overlap);
// callers keep pointers into the returned slice.
func MakeSlab(n, width int) []Set {
	if n < 0 || width < 0 {
		panic("bitset: negative slab size")
	}
	wpb := (width + wordBits - 1) / wordBits
	words := make([]uint64, n*wpb)
	sets := make([]Set, n)
	for i := range sets {
		sets[i] = Set{words: words[i*wpb : (i+1)*wpb : (i+1)*wpb], width: width}
	}
	return sets
}

// SetPackedBytes overwrites the set from packed little-endian bytes: bit i
// of the set is bit i%8 of packed[i/8] — the layout protocol upload frames
// carry. Bits in the final byte past the width are ignored, keeping the set
// canonical even for non-canonical input. It panics if packed holds fewer
// than ceil(width/8) bytes. Whole words load eight bytes at a time, so the
// cost is a memcpy-sized pass rather than a per-bit loop.
func (s *Set) SetPackedBytes(packed []byte) {
	need := (s.width + 7) / 8
	if len(packed) < need {
		panic("bitset: packed bytes shorter than width")
	}
	for wi := range s.words {
		base := wi * 8
		if base+8 <= need {
			s.words[wi] = binary.LittleEndian.Uint64(packed[base:])
			continue
		}
		var w uint64
		for b := 0; base+b < need; b++ {
			w |= uint64(packed[base+b]) << (8 * b)
		}
		s.words[wi] = w
	}
	if r := s.width % wordBits; r != 0 {
		s.words[len(s.words)-1] &= 1<<r - 1
	}
}

// FromBools returns a Set whose i-th bit mirrors b[i].
func FromBools(b []bool) *Set {
	s := New(len(b))
	for i, v := range b {
		if v {
			s.Set(i)
		}
	}
	return s
}

// Width reports the number of addressable bits.
func (s *Set) Width() int { return s.width }

// Set turns bit i on. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (i % wordBits)
}

// Clear turns bit i off. It panics if i is out of range.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (i % wordBits)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.width {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.width))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// IntersectCount returns |s ∩ o|. Both sets must have the same width.
func (s *Set) IntersectCount(o *Set) int {
	s.sameWidth(o)
	n := 0
	for i, w := range s.words {
		n += bits.OnesCount64(w & o.words[i])
	}
	return n
}

// ContainsAll reports whether every bit set in o is also set in s (o ⊆ s).
func (s *Set) ContainsAll(o *Set) bool {
	s.sameWidth(o)
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o have identical width and bits.
func (s *Set) Equal(o *Set) bool {
	if s.width != o.width {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), width: s.width}
	copy(c.words, s.words)
	return c
}

// And sets s = s ∩ o and returns s.
func (s *Set) And(o *Set) *Set {
	s.sameWidth(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return s
}

// AndInto writes s ∩ o into dst and returns it, leaving s and o untouched.
// A nil (or wrong-width) dst is replaced by a fresh set, so callers can hold
// one reusable destination: it is the allocation-free form of Clone().And().
func (s *Set) AndInto(o, dst *Set) *Set {
	s.sameWidth(o)
	if dst == nil || dst.width != s.width {
		dst = New(s.width)
	}
	for i, w := range s.words {
		dst.words[i] = w & o.words[i]
	}
	return dst
}

// Or sets s = s ∪ o and returns s.
func (s *Set) Or(o *Set) *Set {
	s.sameWidth(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return s
}

// AndNot sets s = s \ o and returns s.
func (s *Set) AndNot(o *Set) *Set {
	s.sameWidth(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
	return s
}

// ForEach calls fn with the position of every set bit in ascending order.
// It is the allocation-free form of ranging over Indices.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}

// Indices returns the positions of all set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// WeightedCount returns the sum of weights[i] over all set bits i.
// len(weights) must be at least the set width.
func (s *Set) WeightedCount(weights []float64) float64 {
	if len(weights) < s.width {
		panic("bitset: weights shorter than width")
	}
	sum := 0.0
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sum += weights[base+b]
			w &= w - 1
		}
	}
	return sum
}

// WeightedIntersect returns the sum of weights[i] over bits set in both s and o.
// This is the numerator of CTFL's Eq. (4): w* ⊙ r*(x_tr) · r*(x_te).
func (s *Set) WeightedIntersect(o *Set, weights []float64) float64 {
	s.sameWidth(o)
	if len(weights) < s.width {
		panic("bitset: weights shorter than width")
	}
	sum := 0.0
	for wi, w := range s.words {
		w &= o.words[wi]
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sum += weights[base+b]
			w &= w - 1
		}
	}
	return sum
}

// Key returns a string usable as a map key identifying the exact bit pattern.
// Two sets of equal width share a key iff they are Equal.
func (s *Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 16)
	for _, w := range s.words {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// AppendKey appends the raw little-endian words of the set to dst and
// returns it: an 8-bytes-per-word dedupe key. Two sets of equal width append
// identical bytes iff they are Equal; unlike Key it does no hex formatting,
// so building (and looking up) the key costs a single memcpy-sized pass.
func (s *Set) AppendKey(dst []byte) []byte {
	for _, w := range s.words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// String renders the set as a bit string, lowest index first, e.g. "10110".
func (s *Set) String() string {
	var b strings.Builder
	b.Grow(s.width)
	for i := 0; i < s.width; i++ {
		if s.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func (s *Set) sameWidth(o *Set) {
	if s.width != o.width {
		panic(fmt.Sprintf("bitset: width mismatch %d vs %d", s.width, o.width))
	}
}
