package protocol

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// benchTraceResult sizes the payload like a mid-sized federation: 100
// participants, a handful of suspects.
func benchTraceResult() *TraceResult {
	r := stats.NewRNG(7)
	tr := &TraceResult{Accuracy: 0.9, CoverageGap: 0.05}
	for i := 0; i < 100; i++ {
		tr.Micro = append(tr.Micro, r.Float64())
		tr.Macro = append(tr.Macro, r.Float64())
		tr.LossRatio = append(tr.LossRatio, r.Float64())
		tr.UselessRatio = append(tr.UselessRatio, r.Float64())
	}
	tr.Suspects = []int{3, 41, 77}
	return tr
}

func BenchmarkTraceResultEncode(b *testing.B) {
	tr := benchTraceResult()
	b.Run("codec=json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("codec=binary", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = AppendTraceResult(buf[:0], tr)
		}
	})
}

func BenchmarkTraceResultDecode(b *testing.B) {
	tr := benchTraceResult()
	jsonBytes, err := json.Marshal(tr)
	if err != nil {
		b.Fatal(err)
	}
	frame := AppendTraceResult(nil, tr)
	b.Run("codec=json", func(b *testing.B) {
		b.ReportAllocs()
		var dst TraceResult
		for i := 0; i < b.N; i++ {
			if err := json.Unmarshal(jsonBytes, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("codec=binary", func(b *testing.B) {
		b.ReportAllocs()
		var dst TraceResult
		for i := 0; i < b.N; i++ {
			f, _, err := ParseFrame(frame)
			if err != nil {
				b.Fatal(err)
			}
			if err := ParseTraceResultInto(f, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchUploadFrame builds one 512-record, 256-rule upload frame — the shape
// of a real participant's activation batch.
func benchUploadFrame(b *testing.B) []byte {
	b.Helper()
	frame, err := randomUpload(stats.NewRNG(8), 0, 256, 512).Encode()
	if err != nil {
		b.Fatal(err)
	}
	return frame
}

// BenchmarkUploadIngest compares the ingest pipelines: the legacy path
// materializes an Upload (one bitset per record), re-encodes it for the WAL
// and converts to training records; the zero-copy path validates in place,
// persists the raw bytes (free) and slab-decodes straight into training
// records.
func BenchmarkUploadIngest(b *testing.B) {
	frame := benchUploadFrame(b)
	b.Run("path=v1_decode_reencode", func(b *testing.B) {
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			up, err := DecodeUpload(frame)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := up.Encode(); err != nil {
				b.Fatal(err)
			}
			if _, err := ToTrainingUploads([]*Upload{up}, 256, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("path=v2_zerocopy", func(b *testing.B) {
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		var dst []core.TrainingUpload
		for i := 0; i < b.N; i++ {
			if _, err := ValidateUploadFrame(frame); err != nil {
				b.Fatal(err)
			}
			var err error
			if dst, _, err = AppendTrainingRecords(dst[:0], frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}
