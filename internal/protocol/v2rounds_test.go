package protocol

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// sampleRoundParts builds n participants with k params each, deterministic.
func sampleRoundParts(n, k int) []RoundParticipant {
	r := stats.NewRNG(17)
	parts := make([]RoundParticipant, n)
	for i := range parts {
		parts[i] = RoundParticipant{ID: i * 2, Weight: float64(1 + r.Intn(50))}
		for j := 0; j < k; j++ {
			parts[i].Params = append(parts[i].Params, r.NormFloat64())
		}
	}
	return parts
}

func mustRoundUpdate(t *testing.T, round int, parts []RoundParticipant) []byte {
	t.Helper()
	b, err := AppendRoundUpdate(nil, round, parts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRoundUpdateRoundTrip(t *testing.T) {
	parts := sampleRoundParts(5, 7)
	buf := mustRoundUpdate(t, 3, parts)

	info, err := ValidateRoundUpdateFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 3 || info.Count != 5 || info.ParamCount != 7 || info.FrameLen != len(buf) {
		t.Fatalf("info = %+v", info)
	}

	f, rest, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	u, err := ParseRoundUpdate(f)
	if err != nil {
		t.Fatal(err)
	}
	if u.Round != 3 || u.Count != 5 || u.ParamCount != 7 {
		t.Fatalf("view = %+v", u)
	}
	for i, p := range parts {
		if u.ID(i) != p.ID || u.Weight(i) != p.Weight {
			t.Fatalf("participant %d: id %d weight %g, want %d %g", i, u.ID(i), u.Weight(i), p.ID, p.Weight)
		}
		for j, v := range p.Params {
			if u.Param(i, j) != v {
				t.Fatalf("param [%d][%d]: %g != %g", i, j, u.Param(i, j), v)
			}
		}
		got := u.Participant(i)
		if got.ID != p.ID || got.Weight != p.Weight || len(got.Params) != len(p.Params) {
			t.Fatalf("materialized participant %d: %+v", i, got)
		}
	}
}

func TestAppendRoundUpdateRejects(t *testing.T) {
	ok := sampleRoundParts(3, 2)
	cases := map[string]func() ([]byte, error){
		"negative round": func() ([]byte, error) { return AppendRoundUpdate(nil, -1, ok) },
		"no participants": func() ([]byte, error) {
			return AppendRoundUpdate(nil, 0, nil)
		},
		"duplicate ids": func() ([]byte, error) {
			dup := append([]RoundParticipant(nil), ok...)
			dup[1].ID = dup[0].ID
			return AppendRoundUpdate(nil, 0, dup)
		},
		"id out of range": func() ([]byte, error) {
			big := append([]RoundParticipant(nil), ok...)
			big[2].ID = MaxRoundParticipants
			return AppendRoundUpdate(nil, 0, big)
		},
		"ragged params": func() ([]byte, error) {
			rag := append([]RoundParticipant(nil), ok...)
			rag[1].Params = rag[1].Params[:1]
			return AppendRoundUpdate(nil, 0, rag)
		},
		"zero weight": func() ([]byte, error) {
			zw := append([]RoundParticipant(nil), ok...)
			zw[0].Weight = 0
			return AppendRoundUpdate(nil, 0, zw)
		},
		"nan weight": func() ([]byte, error) {
			nw := append([]RoundParticipant(nil), ok...)
			nw[0].Weight = math.NaN()
			return AppendRoundUpdate(nil, 0, nw)
		},
		"empty params": func() ([]byte, error) {
			return AppendRoundUpdate(nil, 0, []RoundParticipant{{ID: 0, Weight: 1}})
		},
	}
	for name, fn := range cases {
		if _, err := fn(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// NaN parameters are legal payload and must round-trip bit-exactly.
func TestRoundUpdateNaNParams(t *testing.T) {
	parts := []RoundParticipant{
		{ID: 0, Weight: 2, Params: []float64{math.NaN(), math.Inf(1), -0.0}},
		{ID: 5, Weight: 1, Params: []float64{1, math.Inf(-1), math.Float64frombits(0x7ff80000deadbeef)}},
	}
	buf := mustRoundUpdate(t, 0, parts)
	f, _, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ParseRoundUpdate(f)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		for j, v := range p.Params {
			if math.Float64bits(u.Param(i, j)) != math.Float64bits(v) {
				t.Fatalf("param [%d][%d] bits changed: %x != %x",
					i, j, math.Float64bits(u.Param(i, j)), math.Float64bits(v))
			}
		}
	}
}

func TestScoresSnapshotRoundTrip(t *testing.T) {
	snap := ScoresSnapshot{
		Rounds:  12,
		Skipped: 4,
		Scores:  []float64{0.25, -0.125, 0, math.NaN(), math.Inf(-1)},
	}
	buf := AppendScoresSnapshot(nil, &snap)
	f, rest, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	got, err := ParseScoresSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != snap.Rounds || got.Skipped != snap.Skipped || len(got.Scores) != len(snap.Scores) {
		t.Fatalf("snapshot = %+v", got)
	}
	for i := range snap.Scores {
		if math.Float64bits(got.Scores[i]) != math.Float64bits(snap.Scores[i]) {
			t.Fatalf("score %d bits changed", i)
		}
	}

	// Empty score vectors (a stream before any round) survive too.
	f2, _, err := ParseFrame(AppendScoresSnapshot(nil, &ScoresSnapshot{}))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ParseScoresSnapshot(f2)
	if err != nil || got2.Rounds != 0 || len(got2.Scores) != 0 {
		t.Fatalf("empty round trip: %v %+v", err, got2)
	}

	// Warm decode into a reused struct must not allocate.
	var dst ScoresSnapshot
	if err := ParseScoresSnapshotInto(f, &dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := ParseScoresSnapshotInto(f, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state snapshot decode allocates %v times per run", allocs)
	}
}

// TestValidateRoundUpdateFrameZeroAlloc pins the ingest hot path: validating
// a round-update frame in place must not touch the heap at all.
func TestValidateRoundUpdateFrameZeroAlloc(t *testing.T) {
	frame := mustRoundUpdate(t, 7, sampleRoundParts(8, 64))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ValidateRoundUpdateFrame(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ValidateRoundUpdateFrame allocates %v times per frame", allocs)
	}
}
