package protocol

import (
	"math"
	"testing"
)

// seedFrame adds the canonical mutation set for one valid frame: the frame
// itself, a truncation, and an inflated length field (byte 8 is the second
// byte of bodyLen, so ^0xFF turns any sane length into a huge one).
func seedFrame(f *testing.F, valid []byte) {
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	huge := append([]byte(nil), valid...)
	huge[8] ^= 0xFF
	f.Add(huge)
}

// FuzzParseFrame: the envelope parser must never panic and must only accept
// CRC-clean input whose re-framed bytes parse identically.
func FuzzParseFrame(f *testing.F) {
	seedFrame(f, AppendFrame(nil, Version2, TypePredictResponse, []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}))
	f.Add([]byte{})
	f.Add([]byte("CTFL"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, rest, err := ParseFrame(data)
		if err != nil {
			return
		}
		if len(fr.Body)+len(rest) > len(data) {
			t.Fatalf("frame views exceed input: body %d rest %d input %d", len(fr.Body), len(rest), len(data))
		}
		again, _, err := ParseFrame(AppendFrame(nil, fr.Version, fr.Type, fr.Body))
		if err != nil {
			t.Fatalf("re-framed frame rejected: %v", err)
		}
		if again.Version != fr.Version || again.Type != fr.Type || string(again.Body) != string(fr.Body) {
			t.Fatal("round trip changed frame")
		}
	})
}

// FuzzPredictRequest: any accepted predict request must be structurally
// consistent and re-encode to an equal frame.
func FuzzPredictRequest(f *testing.F) {
	valid, err := AppendPredictRequest(nil, 3, []float32{1, 0, 1, 0, 1, 0})
	if err != nil {
		f.Fatal(err)
	}
	seedFrame(f, valid)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := ParseFrame(data)
		if err != nil {
			return
		}
		req, err := ParsePredictRequest(fr)
		if err != nil {
			return
		}
		rows := req.AppendRows(nil)
		if len(rows) != req.Width*req.Count {
			t.Fatalf("%d values for %d×%d request", len(rows), req.Count, req.Width)
		}
		enc, err := AppendPredictRequest(nil, req.Width, rows)
		if err != nil {
			t.Fatalf("re-encode rejected: %v", err)
		}
		fr2, _, err := ParseFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		req2, err := ParsePredictRequest(fr2)
		if err != nil || req2.Width != req.Width || req2.Count != req.Count {
			t.Fatalf("round trip changed request: %v %+v", err, req2)
		}
	})
}

// FuzzTraceResult: any accepted trace result must survive an encode/decode
// round trip bit-for-bit.
func FuzzTraceResult(f *testing.F) {
	seedFrame(f, AppendTraceResult(nil, &TraceResult{
		Accuracy:     0.75,
		CoverageGap:  0.25,
		Micro:        []float64{0.5, 0.25},
		Macro:        []float64{0.4, 0.35},
		LossRatio:    []float64{0, 1},
		UselessRatio: []float64{1, 0},
		Suspects:     []int{1},
	}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := ParseFrame(data)
		if err != nil {
			return
		}
		tr, err := ParseTraceResult(fr)
		if err != nil {
			return
		}
		fr2, _, err := ParseFrame(AppendTraceResult(nil, tr))
		if err != nil {
			t.Fatalf("re-encode rejected: %v", err)
		}
		tr2, err := ParseTraceResult(fr2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Bit-level equality: hostile inputs can carry NaN payloads, which
		// != would reject even on a perfect round trip.
		if !traceResultsBitEqual(tr, tr2) {
			t.Fatal("round trip changed trace result")
		}
	})
}

// FuzzRoundUpdate: the zero-alloc validator and the zero-copy view must
// agree on every input, and any accepted round update must re-encode to a
// frame that parses back bit-identically (NaN params included).
func FuzzRoundUpdate(f *testing.F) {
	valid, err := AppendRoundUpdate(nil, 2, []RoundParticipant{
		{ID: 0, Weight: 3, Params: []float64{0.5, math.NaN()}},
		{ID: 4, Weight: 1, Params: []float64{-1, math.Inf(1)}},
	})
	if err != nil {
		f.Fatal(err)
	}
	seedFrame(f, valid)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		info, verr := ValidateRoundUpdateFrame(data)
		fr, _, perr := ParseFrame(data)
		var u RoundUpdate
		uerr := perr
		if perr == nil {
			u, uerr = ParseRoundUpdate(fr)
		}
		if (verr == nil) != (uerr == nil) {
			t.Fatalf("validator err %v, view err %v on %d-byte input", verr, uerr, len(data))
		}
		if verr != nil {
			return
		}
		if info.Round != u.Round || info.Count != u.Count || info.ParamCount != u.ParamCount {
			t.Fatalf("validator %+v vs view %+v", info, u)
		}
		parts := make([]RoundParticipant, u.Count)
		for i := range parts {
			parts[i] = u.Participant(i)
		}
		enc, err := AppendRoundUpdate(nil, u.Round, parts)
		if err != nil {
			t.Fatalf("re-encode of accepted update rejected: %v", err)
		}
		fr2, _, err := ParseFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		u2, err := ParseRoundUpdate(fr2)
		if err != nil || u2.Round != u.Round || u2.Count != u.Count || u2.ParamCount != u.ParamCount {
			t.Fatalf("round trip changed update: %v %+v", err, u2)
		}
		for i := 0; i < u.Count; i++ {
			if u2.ID(i) != u.ID(i) || math.Float64bits(u2.Weight(i)) != math.Float64bits(u.Weight(i)) {
				t.Fatalf("participant %d changed", i)
			}
			for j := 0; j < u.ParamCount; j++ {
				if math.Float64bits(u2.Param(i, j)) != math.Float64bits(u.Param(i, j)) {
					t.Fatalf("param [%d][%d] bits changed", i, j)
				}
			}
		}
	})
}

// FuzzScoresSnapshot: any accepted snapshot must survive an encode/decode
// round trip bit-for-bit (hostile inputs can carry NaN scores).
func FuzzScoresSnapshot(f *testing.F) {
	seedFrame(f, AppendScoresSnapshot(nil, &ScoresSnapshot{
		Rounds:  5,
		Skipped: 2,
		Scores:  []float64{0.25, math.NaN(), -1},
	}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := ParseFrame(data)
		if err != nil {
			return
		}
		s, err := ParseScoresSnapshot(fr)
		if err != nil {
			return
		}
		fr2, _, err := ParseFrame(AppendScoresSnapshot(nil, s))
		if err != nil {
			t.Fatalf("re-encode rejected: %v", err)
		}
		s2, err := ParseScoresSnapshot(fr2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.Rounds != s.Rounds || s2.Skipped != s.Skipped || len(s2.Scores) != len(s.Scores) {
			t.Fatalf("round trip changed snapshot: %+v vs %+v", s, s2)
		}
		for i := range s.Scores {
			if math.Float64bits(s2.Scores[i]) != math.Float64bits(s.Scores[i]) {
				t.Fatalf("score %d bits changed", i)
			}
		}
	})
}

func traceResultsBitEqual(a, b *TraceResult) bool {
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	if math.Float64bits(a.Accuracy) != math.Float64bits(b.Accuracy) ||
		math.Float64bits(a.CoverageGap) != math.Float64bits(b.CoverageGap) ||
		!eq(a.Micro, b.Micro) || !eq(a.Macro, b.Macro) ||
		!eq(a.LossRatio, b.LossRatio) || !eq(a.UselessRatio, b.UselessRatio) ||
		len(a.Suspects) != len(b.Suspects) {
		return false
	}
	for i := range a.Suspects {
		if a.Suspects[i] != b.Suspects[i] {
			return false
		}
	}
	return true
}
