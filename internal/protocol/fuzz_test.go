package protocol

import (
	"bytes"
	"testing"

	"repro/internal/bitset"
)

// FuzzReadUpload feeds arbitrary byte streams to the frame decoder: it must
// either return a structurally valid upload or an error — never panic, and
// never allocate unboundedly from hostile length fields.
func FuzzReadUpload(f *testing.F) {
	// Seed with a valid frame and a few mutations.
	var valid bytes.Buffer
	u := &Upload{
		Participant: 1,
		RuleWidth:   16,
		Records: []Record{
			{Label: 1, Activations: bitset.FromIndices(16, 0, 3, 15)},
			{Label: 0, Activations: bitset.New(16)},
		},
	}
	if err := u.Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CTFL"))
	truncated := valid.Bytes()[:len(valid.Bytes())/2]
	f.Add(truncated)
	huge := append([]byte(nil), valid.Bytes()...)
	huge[8] = 0xFF // inflate body length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadUpload(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Any successfully decoded upload must be internally consistent.
		if got.RuleWidth < 0 || got.Participant < 0 {
			t.Fatalf("decoded invalid upload: %+v", got)
		}
		for i, rec := range got.Records {
			if rec.Label != 0 && rec.Label != 1 {
				t.Fatalf("record %d invalid label %d", i, rec.Label)
			}
			if rec.Activations.Width() != got.RuleWidth {
				t.Fatalf("record %d width mismatch", i)
			}
		}
		// Round-trip: re-encoding must produce a decodable frame with the
		// same content.
		var buf bytes.Buffer
		if err := got.Write(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadUpload(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Participant != got.Participant || len(again.Records) != len(got.Records) {
			t.Fatal("round trip changed content")
		}
	})
}
