// Package protocol defines the wire format participants use to upload rule
// activation vectors to the federation server, making CTFL's privacy
// boundary concrete: the only training-data-derived bytes that ever leave a
// client are (label, activation bitset) pairs, optionally perturbed with
// local differential privacy before encoding.
//
// Frame layout (all integers little-endian):
//
//	magic   [4]byte  "CTFL"
//	version uint8    (currently 1)
//	msgType uint8    (1 = activation upload)
//	payload length-prefixed body (uint32)
//	crc32   uint32   (IEEE, over magic..payload)
//
// Activation-upload body:
//
//	participant uint32
//	ruleWidth   uint32
//	count       uint32
//	per record: label uint8, packed activation bits (ceil(width/8) bytes)
package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/bitset"
	"repro/internal/core"
)

var magic = [4]byte{'C', 'T', 'F', 'L'}

// Version of the wire format produced by this package.
const Version = 1

// Message types.
const (
	msgActivationUpload = 1
)

// maxRecords bounds a single upload frame (a defensive limit against
// corrupted or hostile length fields).
const maxRecords = 1 << 24

// Record is one training instance's upload payload.
type Record struct {
	Label       int
	Activations *bitset.Set
}

// Upload is one participant's activation-vector batch.
type Upload struct {
	Participant int
	RuleWidth   int
	Records     []Record
}

// Write encodes the upload as one framed message.
func (u *Upload) Write(w io.Writer) error {
	if u.Participant < 0 {
		return fmt.Errorf("protocol: negative participant id %d", u.Participant)
	}
	var body bytes.Buffer
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		body.Write(b[:])
	}
	put32(uint32(u.Participant))
	put32(uint32(u.RuleWidth))
	put32(uint32(len(u.Records)))
	packed := make([]byte, (u.RuleWidth+7)/8)
	for i, rec := range u.Records {
		if rec.Label != 0 && rec.Label != 1 {
			return fmt.Errorf("protocol: record %d has invalid label %d", i, rec.Label)
		}
		if rec.Activations.Width() != u.RuleWidth {
			return fmt.Errorf("protocol: record %d width %d, upload width %d",
				i, rec.Activations.Width(), u.RuleWidth)
		}
		body.WriteByte(byte(rec.Label))
		for b := range packed {
			packed[b] = 0
		}
		for _, bit := range rec.Activations.Indices() {
			packed[bit/8] |= 1 << (bit % 8)
		}
		body.Write(packed)
	}

	var frame bytes.Buffer
	frame.Write(magic[:])
	frame.WriteByte(Version)
	frame.WriteByte(msgActivationUpload)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(body.Len()))
	frame.Write(lenb[:])
	frame.Write(body.Bytes())
	sum := crc32.ChecksumIEEE(frame.Bytes())
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], sum)
	frame.Write(crcb[:])

	_, err := w.Write(frame.Bytes())
	return err
}

// Encode returns the upload as one framed message, the same bytes Write
// would emit. The server ingests and persists client frames verbatim (see
// ValidateUploadFrame); Encode is the producer-side counterpart for clients
// and tests that build frames from decoded records.
func (u *Upload) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := u.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeUpload decodes a single framed activation upload from b, rejecting
// trailing garbage. It is the []byte counterpart of ReadUpload, used when
// frames are stored at rest (e.g. in a WAL) rather than streamed.
func DecodeUpload(b []byte) (*Upload, error) {
	r := bytes.NewReader(b)
	u, err := ReadUpload(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("protocol: %d trailing bytes after frame", r.Len())
	}
	return u, nil
}

// ReadUpload decodes one framed activation upload from r.
func ReadUpload(r io.Reader) (*Upload, error) {
	header := make([]byte, 10) // magic + version + type + body length
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("protocol: reading header: %w", err)
	}
	if !bytes.Equal(header[:4], magic[:]) {
		return nil, fmt.Errorf("protocol: bad magic %q", header[:4])
	}
	if header[4] != Version {
		return nil, fmt.Errorf("protocol: unsupported version %d", header[4])
	}
	if header[5] != msgActivationUpload {
		return nil, fmt.Errorf("protocol: unexpected message type %d", header[5])
	}
	bodyLen := binary.LittleEndian.Uint32(header[6:10])
	if bodyLen < 12 {
		return nil, fmt.Errorf("protocol: body too short (%d bytes)", bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("protocol: reading body: %w", err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return nil, fmt.Errorf("protocol: reading checksum: %w", err)
	}
	sum := crc32.NewIEEE()
	sum.Write(header)
	sum.Write(body)
	if got := binary.LittleEndian.Uint32(crcb[:]); got != sum.Sum32() {
		return nil, fmt.Errorf("protocol: checksum mismatch")
	}

	u := &Upload{
		Participant: int(binary.LittleEndian.Uint32(body[0:4])),
		RuleWidth:   int(binary.LittleEndian.Uint32(body[4:8])),
	}
	count := binary.LittleEndian.Uint32(body[8:12])
	if count > maxRecords {
		return nil, fmt.Errorf("protocol: record count %d exceeds limit", count)
	}
	if u.RuleWidth < 0 {
		return nil, fmt.Errorf("protocol: negative rule width")
	}
	recBytes := 1 + (u.RuleWidth+7)/8
	want := 12 + int(count)*recBytes
	if int(bodyLen) != want {
		return nil, fmt.Errorf("protocol: body length %d, want %d for %d records", bodyLen, want, count)
	}
	at := 12
	for rec := uint32(0); rec < count; rec++ {
		label := int(body[at])
		if label != 0 && label != 1 {
			return nil, fmt.Errorf("protocol: record %d has invalid label %d", rec, label)
		}
		at++
		s := bitset.New(u.RuleWidth)
		for bit := 0; bit < u.RuleWidth; bit++ {
			if body[at+bit/8]&(1<<(bit%8)) != 0 {
				s.Set(bit)
			}
		}
		at += (u.RuleWidth + 7) / 8
		u.Records = append(u.Records, Record{Label: label, Activations: s})
	}
	return u, nil
}

// ToTrainingUploads converts decoded protocol uploads into the tracer's
// input form. Every upload must agree on ruleWidth; participant ids must be
// dense in [0, numParts).
func ToTrainingUploads(uploads []*Upload, ruleWidth, numParts int) ([]core.TrainingUpload, error) {
	var out []core.TrainingUpload
	for _, u := range uploads {
		if u.RuleWidth != ruleWidth {
			return nil, fmt.Errorf("protocol: upload width %d, server expects %d", u.RuleWidth, ruleWidth)
		}
		if u.Participant >= numParts {
			return nil, fmt.Errorf("protocol: participant %d out of range [0,%d)", u.Participant, numParts)
		}
		for _, rec := range u.Records {
			out = append(out, core.TrainingUpload{
				Owner:       u.Participant,
				Label:       rec.Label,
				Activations: rec.Activations,
			})
		}
	}
	return out, nil
}
