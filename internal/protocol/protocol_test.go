package protocol

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

func sampleUpload() *Upload {
	return &Upload{
		Participant: 3,
		RuleWidth:   70,
		Records: []Record{
			{Label: 1, Activations: bitset.FromIndices(70, 0, 5, 63, 64, 69)},
			{Label: 0, Activations: bitset.New(70)},
			{Label: 1, Activations: bitset.FromIndices(70, 7)},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	u := sampleUpload()
	var buf bytes.Buffer
	if err := u.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Participant != u.Participant || got.RuleWidth != u.RuleWidth || len(got.Records) != len(u.Records) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range u.Records {
		if got.Records[i].Label != u.Records[i].Label {
			t.Fatalf("record %d label mismatch", i)
		}
		if !got.Records[i].Activations.Equal(u.Records[i].Activations) {
			t.Fatalf("record %d activations mismatch: %s vs %s",
				i, got.Records[i].Activations, u.Records[i].Activations)
		}
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	u1, u2 := sampleUpload(), sampleUpload()
	u2.Participant = 5
	if err := u1.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := u2.Write(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := ReadUpload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadUpload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Participant != 3 || b.Participant != 5 {
		t.Fatalf("frames out of order: %d, %d", a.Participant, b.Participant)
	}
}

func TestWriteValidation(t *testing.T) {
	bad := sampleUpload()
	bad.Records[0].Label = 2
	if err := bad.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("invalid label should fail encode")
	}
	bad2 := sampleUpload()
	bad2.Records[0].Activations = bitset.New(5) // width mismatch
	if err := bad2.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("width mismatch should fail encode")
	}
	bad3 := sampleUpload()
	bad3.Participant = -1
	if err := bad3.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("negative participant should fail encode")
	}
}

func TestCorruptionDetected(t *testing.T) {
	u := sampleUpload()
	var buf bytes.Buffer
	if err := u.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	tampered := append([]byte(nil), raw...)
	tampered[15] ^= 0xFF
	if _, err := ReadUpload(bytes.NewReader(tampered)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered frame err = %v, want checksum error", err)
	}

	// Bad magic.
	badMagic := append([]byte(nil), raw...)
	badMagic[0] = 'X'
	if _, err := ReadUpload(bytes.NewReader(badMagic)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic err = %v", err)
	}

	// Bad version.
	badVer := append([]byte(nil), raw...)
	badVer[4] = 9
	if _, err := ReadUpload(bytes.NewReader(badVer)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version err = %v", err)
	}

	// Truncated stream.
	if _, err := ReadUpload(bytes.NewReader(raw[:8])); err == nil {
		t.Fatal("truncated header should error")
	}
	if _, err := ReadUpload(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated checksum should error")
	}
}

func TestToTrainingUploads(t *testing.T) {
	u := sampleUpload()
	out, err := ToTrainingUploads([]*Upload{u}, 70, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("records = %d", len(out))
	}
	if out[0].Owner != 3 || out[0].Label != 1 {
		t.Fatalf("record 0 = %+v", out[0])
	}
	if _, err := ToTrainingUploads([]*Upload{u}, 71, 4); err == nil {
		t.Fatal("width mismatch should error")
	}
	if _, err := ToTrainingUploads([]*Upload{u}, 70, 3); err == nil {
		t.Fatal("participant out of range should error")
	}
}

// TestEndToEndServerFromWire exercises the full privacy pipeline: clients
// compute activation vectors locally, serialize them, the server decodes
// the frames and builds a tracer — and the scores match the in-process path
// bit for bit.
func TestEndToEndServerFromWire(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tab := dataset.TicTacToe()
	r := stats.NewRNG(4)
	train, test := tab.Split(r, 0.25)
	parts := fl.PartitionSkewLabel(train, 3, 0.8, r)
	enc, err := dataset.NewEncoder(tab.Schema, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 1, LocalEpochs: 6, Parallel: true,
		Model: nn.Config{Hidden: []int{32}, Grafting: true, Seed: 2},
	})
	model, err := trainer.Train(parts)
	if err != nil {
		t.Fatal(err)
	}
	rs := rules.Extract(model, enc)

	// Client side: every participant serializes its activation vectors.
	var wire bytes.Buffer
	for pi, p := range parts {
		acts, _ := rs.ActivationsTable(p.Data)
		up := &Upload{Participant: pi, RuleWidth: rs.Width()}
		for i, a := range acts {
			up.Records = append(up.Records, Record{
				Label:       p.Data.Instances[i].Label,
				Activations: a,
			})
		}
		if err := up.Write(&wire); err != nil {
			t.Fatal(err)
		}
	}

	// Server side: decode frames, build the tracer from uploads only.
	var uploads []*Upload
	for i := 0; i < len(parts); i++ {
		u, err := ReadUpload(&wire)
		if err != nil {
			t.Fatal(err)
		}
		uploads = append(uploads, u)
	}
	recs, err := ToTrainingUploads(uploads, rs.Width(), len(parts))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{TauW: 0.9}
	fromWire := core.NewTracerFromUploads(rs, len(parts), recs, cfg).Trace(test)
	direct := core.NewTracer(rs, parts, cfg).Trace(test)

	a, b := fromWire.MicroScores(), direct.MicroScores()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wire scores diverge: %v vs %v", a, b)
		}
	}
}
