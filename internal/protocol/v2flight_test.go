package protocol

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/flight"
)

func sampleFlightEvents() []flight.Event {
	return []flight.Event{
		{
			Seq: 1, Unix: 1700000000, Kind: flight.KindRequest,
			Outcome: flight.OutcomeOK, Status: 200,
			Route: "/v1/predict", Method: "POST", RequestID: "req-0001",
			DurationNs: int64(3 * time.Millisecond),
			BytesIn:    2048, BytesOut: 512, CacheHit: true,
		},
		{
			Seq: 2, Unix: 1700000001, Kind: flight.KindJob,
			Outcome: flight.OutcomeError, Status: 0,
			Route: "job.trace", RequestID: "req-0002",
			DurationNs: int64(90 * time.Millisecond),
			Retries:    2, Faults: 1, Err: "injected fault: jobs.run",
		},
		{
			Seq: 3, Unix: -5, Kind: flight.KindRound,
			Outcome: flight.OutcomeDegraded, Status: 503,
			Route: "/v1/rounds", Method: "POST",
			Aux: 41, Degraded: true, BytesIn: 1 << 20,
		},
		{
			Seq: 1 << 40, Unix: 1700000002, Kind: flight.KindWAL,
			Outcome: flight.OutcomeSlow, Route: "store.append",
			DurationNs: -1, Aux: -7,
		},
	}
}

func TestFlightEventsRoundTrip(t *testing.T) {
	evs := sampleFlightEvents()
	enc, err := AppendFlightEvents(nil, evs)
	if err != nil {
		t.Fatal(err)
	}
	fr, rest, err := ParseFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after frame", len(rest))
	}
	if fr.Type != TypeFlightEvents || fr.Version != Version2 {
		t.Fatalf("frame header = version %d type %d", fr.Version, fr.Type)
	}
	got, err := ParseFlightEvents(fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d changed:\n in: %+v\nout: %+v", i, evs[i], got[i])
		}
	}
	// Canonical encoding: decode → encode is bit-identical.
	again, err := AppendFlightEvents(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, enc) {
		t.Fatal("re-encoded frame differs from original bytes")
	}
}

func TestFlightEventsEmpty(t *testing.T) {
	enc, err := AppendFlightEvents(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := ParseFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseFlightEvents(fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty frame decoded %d events", len(got))
	}
}

func TestFlightEventsAppendInto(t *testing.T) {
	enc, err := AppendFlightEvents(nil, sampleFlightEvents()[:2])
	if err != nil {
		t.Fatal(err)
	}
	fr, _, _ := ParseFrame(enc)
	pre := []flight.Event{{Seq: 99}}
	got, err := ParseFlightEventsInto(fr, pre)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Seq != 99 || got[1].Seq != 1 {
		t.Fatalf("append-into result: %+v", got)
	}
}

func TestFlightEventsRejectsOversizedString(t *testing.T) {
	ev := flight.Event{Route: strings.Repeat("x", maxFlightString+1)}
	if _, err := AppendFlightEvents(nil, []flight.Event{ev}); err == nil {
		t.Fatal("oversized route string accepted")
	}
}

func TestFlightEventsRejectsMutations(t *testing.T) {
	enc, err := AppendFlightEvents(nil, sampleFlightEvents())
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := ParseFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated body.
	short := Frame{Version: fr.Version, Type: fr.Type, Body: fr.Body[:len(fr.Body)-3]}
	if _, err := ParseFlightEvents(short); err == nil {
		t.Fatal("truncated body accepted")
	}
	// Trailing garbage.
	long := Frame{Version: fr.Version, Type: fr.Type, Body: append(append([]byte(nil), fr.Body...), 0)}
	if _, err := ParseFlightEvents(long); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Unknown flag bit.
	mut := append([]byte(nil), fr.Body...)
	mut[4+16+2] |= 0x80 // first event's flags byte
	bad := Frame{Version: fr.Version, Type: fr.Type, Body: mut}
	if _, err := ParseFlightEvents(bad); err == nil {
		t.Fatal("unknown flag bit accepted")
	}
	// Wrong type.
	other := Frame{Version: fr.Version, Type: TypeScoresSnapshot, Body: fr.Body}
	if _, err := ParseFlightEvents(other); err == nil {
		t.Fatal("wrong frame type accepted")
	}
}

// FuzzFlightEvents: any accepted flight-events frame must survive a
// decode → encode round trip bit-for-bit (the canonical-encoding contract
// the debug bundle relies on).
func FuzzFlightEvents(f *testing.F) {
	valid, err := AppendFlightEvents(nil, sampleFlightEvents())
	if err != nil {
		f.Fatal(err)
	}
	seedFrame(f, valid)
	empty, _ := AppendFlightEvents(nil, nil)
	f.Add(empty)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := ParseFrame(data)
		if err != nil {
			return
		}
		evs, err := ParseFlightEvents(fr)
		if err != nil {
			return
		}
		enc, err := AppendFlightEvents(nil, evs)
		if err != nil {
			t.Fatalf("re-encode of accepted events rejected: %v", err)
		}
		want, _, err := ParseFrame(AppendFrame(nil, fr.Version, fr.Type, fr.Body))
		if err != nil {
			t.Fatalf("re-framed original rejected: %v", err)
		}
		fr2, _, err := ParseFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !bytes.Equal(fr2.Body, want.Body) {
			t.Fatal("round trip changed frame body")
		}
		evs2, err := ParseFlightEvents(fr2)
		if err != nil || len(evs2) != len(evs) {
			t.Fatalf("re-decode failed: %v (%d vs %d events)", err, len(evs2), len(evs))
		}
		for i := range evs {
			if evs[i] != evs2[i] {
				t.Fatalf("event %d changed in round trip", i)
			}
		}
	})
}
