package protocol

// Flight-event frames: the v2 message behind the flight recorder
// (internal/flight) and GET /v1/events.
//
//	type 7  flight events   count uint32, then per event:
//	                        seq uint64, unix int64 (two's complement),
//	                        kind uint8, outcome uint8, flags uint8
//	                        (bit 0 cache-hit, bit 1 degraded),
//	                        status uint32, durationNs uint64,
//	                        bytesIn uint64, bytesOut uint64,
//	                        retries uint32, faults uint32, aux uint64,
//	                        route, method, requestID, err as
//	                        length-prefixed strings (uint16 length)
//
// The encoder is canonical — one byte sequence per event list — so
// encode(decode(frame)) reproduces the frame bit-identically; the chaos
// soak and FuzzFlightEvents both pin that round trip. Decoding reuses the
// caller's event slice, mirroring ParseTraceResultInto.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/flight"
)

// TypeFlightEvents is the v2 flight-events message type.
const TypeFlightEvents = 7

// maxFlightString bounds any string field in a flight event (uint16
// length prefix).
const maxFlightString = 1<<16 - 1

// flightEventFixedLen is one encoded event's fixed-width prefix: seq,
// unix, kind, outcome, flags, status, duration, bytesIn, bytesOut,
// retries, faults, aux.
const flightEventFixedLen = 8 + 8 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 4 + 4 + 8

const (
	flightFlagCacheHit = 1 << 0
	flightFlagDegraded = 1 << 1
)

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendFlightString(dst []byte, s string) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	dst = append(dst, b[:]...)
	return append(dst, s...)
}

// AppendFlightEvents frames evs as one v2 flight-events message appended
// to dst. Encoding is canonical: the same events always produce the same
// bytes.
func AppendFlightEvents(dst []byte, evs []flight.Event) ([]byte, error) {
	if len(evs) > maxVecLen {
		return nil, fmt.Errorf("protocol: %d flight events exceed limit", len(evs))
	}
	for i := range evs {
		ev := &evs[i]
		for _, s := range [...]string{ev.Route, ev.Method, ev.RequestID, ev.Err} {
			if len(s) > maxFlightString {
				return nil, fmt.Errorf("protocol: flight event %d string %d bytes exceeds %d",
					i, len(s), maxFlightString)
			}
		}
	}
	out := appendFramed(dst, Version2, TypeFlightEvents, func(d []byte) []byte {
		d = appendU32(d, uint32(len(evs)))
		for i := range evs {
			ev := &evs[i]
			d = appendU64(d, ev.Seq)
			d = appendU64(d, uint64(ev.Unix))
			flags := byte(0)
			if ev.CacheHit {
				flags |= flightFlagCacheHit
			}
			if ev.Degraded {
				flags |= flightFlagDegraded
			}
			d = append(d, byte(ev.Kind), byte(ev.Outcome), flags)
			d = appendU32(d, uint32(ev.Status))
			d = appendU64(d, uint64(ev.DurationNs))
			d = appendU64(d, uint64(ev.BytesIn))
			d = appendU64(d, uint64(ev.BytesOut))
			d = appendU32(d, uint32(ev.Retries))
			d = appendU32(d, uint32(ev.Faults))
			d = appendU64(d, uint64(ev.Aux))
			for _, s := range [...]string{ev.Route, ev.Method, ev.RequestID, ev.Err} {
				d = appendFlightString(d, s)
			}
		}
		return d
	})
	return out, nil
}

// ParseFlightEventsInto decodes a flight-events frame, appending the
// events to dst (pass nil for a fresh slice). String fields are copied
// out of the frame, so the result outlives the input buffer.
func ParseFlightEventsInto(f Frame, dst []flight.Event) ([]flight.Event, error) {
	if f.Version != Version2 || f.Type != TypeFlightEvents {
		return nil, fmt.Errorf("protocol: not a flight-events frame (version %d type %d)", f.Version, f.Type)
	}
	body := f.Body
	if len(body) < 4 {
		return nil, fmt.Errorf("protocol: flight-events body too short (%d bytes)", len(body))
	}
	count := int64(binary.LittleEndian.Uint32(body[0:4]))
	if count > maxVecLen {
		return nil, fmt.Errorf("protocol: flight-event count %d exceeds limit", count)
	}
	at := int64(4)
	str := func() (string, error) {
		if at+2 > int64(len(body)) {
			return "", fmt.Errorf("protocol: truncated flight string length")
		}
		n := int64(binary.LittleEndian.Uint16(body[at:]))
		at += 2
		if at+n > int64(len(body)) {
			return "", fmt.Errorf("protocol: flight string %d bytes exceeds body", n)
		}
		s := string(body[at : at+n])
		at += n
		return s, nil
	}
	for i := int64(0); i < count; i++ {
		if at+flightEventFixedLen > int64(len(body)) {
			return nil, fmt.Errorf("protocol: truncated flight event %d", i)
		}
		var ev flight.Event
		ev.Seq = binary.LittleEndian.Uint64(body[at:])
		ev.Unix = int64(binary.LittleEndian.Uint64(body[at+8:]))
		ev.Kind = flight.Kind(body[at+16])
		ev.Outcome = flight.Outcome(body[at+17])
		flags := body[at+18]
		ev.CacheHit = flags&flightFlagCacheHit != 0
		ev.Degraded = flags&flightFlagDegraded != 0
		if flags&^(byte(flightFlagCacheHit|flightFlagDegraded)) != 0 {
			return nil, fmt.Errorf("protocol: flight event %d has unknown flags %#x", i, flags)
		}
		ev.Status = int32(binary.LittleEndian.Uint32(body[at+19:]))
		ev.DurationNs = int64(binary.LittleEndian.Uint64(body[at+23:]))
		ev.BytesIn = int64(binary.LittleEndian.Uint64(body[at+31:]))
		ev.BytesOut = int64(binary.LittleEndian.Uint64(body[at+39:]))
		ev.Retries = int32(binary.LittleEndian.Uint32(body[at+47:]))
		ev.Faults = int32(binary.LittleEndian.Uint32(body[at+51:]))
		ev.Aux = int64(binary.LittleEndian.Uint64(body[at+55:]))
		at += flightEventFixedLen
		var err error
		if ev.Route, err = str(); err != nil {
			return nil, err
		}
		if ev.Method, err = str(); err != nil {
			return nil, err
		}
		if ev.RequestID, err = str(); err != nil {
			return nil, err
		}
		if ev.Err, err = str(); err != nil {
			return nil, err
		}
		dst = append(dst, ev)
	}
	if at != int64(len(body)) {
		return nil, fmt.Errorf("protocol: %d trailing bytes in flight-events body", int64(len(body))-at)
	}
	return dst, nil
}

// ParseFlightEvents decodes a flight-events frame into a fresh slice.
func ParseFlightEvents(f Frame) ([]flight.Event, error) {
	return ParseFlightEventsInto(f, nil)
}
