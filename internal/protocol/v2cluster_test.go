package protocol

import (
	"bytes"
	"testing"
)

func sampleWALRecords() []WALRecord {
	return []WALRecord{
		{Type: 1, Payload: []byte(`{"predicates":3}`)},
		{Type: 3, Payload: bytes.Repeat([]byte{0xAB}, 64)},
		{Type: 6, Payload: []byte{}},
		{Type: 5, Payload: []byte("round eval")},
	}
}

func TestWALSegmentRoundTrip(t *testing.T) {
	recs := sampleWALRecords()
	buf, err := AppendWALSegment(nil, 42, false, recs)
	if err != nil {
		t.Fatalf("AppendWALSegment: %v", err)
	}
	fr, rest, err := ParseFrame(buf)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if len(rest) != 0 || fr.Version != Version2 || fr.Type != TypeWALSegment {
		t.Fatalf("frame envelope wrong: rest=%d version=%d type=%d", len(rest), fr.Version, fr.Type)
	}
	seg, err := ParseWALSegment(fr)
	if err != nil {
		t.Fatalf("ParseWALSegment: %v", err)
	}
	if seg.StartSeq != 42 || seg.Reset || seg.Count != len(recs) {
		t.Fatalf("segment header = %+v", seg)
	}
	got := seg.AppendRecords(nil)
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Type != recs[i].Type || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestWALSegmentResetFlag(t *testing.T) {
	buf, err := AppendWALSegment(nil, 0, true, sampleWALRecords())
	if err != nil {
		t.Fatalf("AppendWALSegment(reset): %v", err)
	}
	fr, _, err := ParseFrame(buf)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	seg, err := ParseWALSegment(fr)
	if err != nil {
		t.Fatalf("ParseWALSegment: %v", err)
	}
	if !seg.Reset || seg.StartSeq != 0 {
		t.Fatalf("reset segment = %+v", seg)
	}
	if _, err := AppendWALSegment(nil, 7, true, nil); err == nil {
		t.Fatal("reset segment with nonzero startSeq encoded")
	}
}

func TestWALSegmentRejects(t *testing.T) {
	if _, err := AppendWALSegment(nil, 0, false, []WALRecord{{Type: 0}}); err == nil {
		t.Fatal("zero record type encoded")
	}

	// Unknown flag bits.
	good, err := AppendWALSegment(nil, 3, false, sampleWALRecords())
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := ParseFrame(good)
	if err != nil {
		t.Fatal(err)
	}
	badFlags := append([]byte(nil), fr.Body...)
	badFlags[0] |= 0x80
	if _, err := ParseWALSegment(Frame{Version: Version2, Type: TypeWALSegment, Body: badFlags}); err == nil {
		t.Fatal("unknown flag bits accepted")
	}

	// Wrong frame type.
	if _, err := ParseWALSegment(Frame{Version: Version2, Type: TypeFlightEvents, Body: fr.Body}); err == nil {
		t.Fatal("wrong message type accepted")
	}

	// Truncated record region.
	trunc := append([]byte(nil), fr.Body...)
	trunc = trunc[:len(trunc)-1]
	if _, err := ParseWALSegment(Frame{Version: Version2, Type: TypeWALSegment, Body: trunc}); err == nil {
		t.Fatal("truncated body accepted")
	}

	// Trailing bytes.
	trail := append(append([]byte(nil), fr.Body...), 0xFF)
	if _, err := ParseWALSegment(Frame{Version: Version2, Type: TypeWALSegment, Body: trail}); err == nil {
		t.Fatal("trailing bytes accepted")
	}

	// Hostile payload length pointing past the body.
	hostile := append([]byte(nil), fr.Body...)
	hostile[walSegmentHeaderLen+1] = 0xFF
	hostile[walSegmentHeaderLen+2] = 0xFF
	if _, err := ParseWALSegment(Frame{Version: Version2, Type: TypeWALSegment, Body: hostile}); err == nil {
		t.Fatal("hostile payload length accepted")
	}
}

func TestWALSegmentEmpty(t *testing.T) {
	buf, err := AppendWALSegment(nil, 9, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ParseWALSegment(fr)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Count != 0 || seg.StartSeq != 9 || len(seg.AppendRecords(nil)) != 0 {
		t.Fatalf("empty segment = %+v", seg)
	}
}

// FuzzWALSegment pins the codec round trip: any frame the parser accepts
// re-encodes to bit-identical body bytes (canonical encoding), and the
// re-decoded records match.
func FuzzWALSegment(f *testing.F) {
	seed, err := AppendWALSegment(nil, 17, false, sampleWALRecords())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	reset, err := AppendWALSegment(nil, 0, true, sampleWALRecords()[:1])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(reset)
	empty, err := AppendWALSegment(nil, 0, false, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := ParseFrame(data)
		if err != nil || fr.Version != Version2 || fr.Type != TypeWALSegment {
			return
		}
		seg, err := ParseWALSegment(fr)
		if err != nil {
			return
		}
		recs := seg.AppendRecords(nil)
		re, err := AppendWALSegment(nil, seg.StartSeq, seg.Reset, recs)
		if err != nil {
			t.Fatalf("re-encode of accepted segment failed: %v", err)
		}
		fr2, rest, err := ParseFrame(re)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-encoded frame invalid: %v (rest %d)", err, len(rest))
		}
		if !bytes.Equal(fr2.Body, fr.Body) {
			t.Fatalf("non-canonical encoding: %x vs %x", fr2.Body, fr.Body)
		}
		seg2, err := ParseWALSegment(fr2)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		recs2 := seg2.AppendRecords(nil)
		if len(recs2) != len(recs) || seg2.StartSeq != seg.StartSeq || seg2.Reset != seg.Reset {
			t.Fatalf("round-trip header mismatch: %+v vs %+v", seg2, seg)
		}
		for i := range recs {
			if recs2[i].Type != recs[i].Type || !bytes.Equal(recs2[i].Payload, recs[i].Payload) {
				t.Fatalf("round-trip record %d mismatch", i)
			}
		}
	})
}
