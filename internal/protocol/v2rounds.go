package protocol

// Round-stream frames: the v2 messages behind the streaming per-round
// valuation subsystem (internal/rounds).
//
//	type 5  round update     round uint32, count uint32, paramCount uint32,
//	                         count × (id uint32, weight float64,
//	                                  paramCount × float64 params);
//	                         ids strictly increasing, weights finite and > 0
//	type 6  scores snapshot  rounds uint32, skipped uint32, count uint32,
//	                         count × float64 cumulative scores
//
// A round-update frame carries one aggregation round's participant model
// updates (flat parameter vectors plus FedAvg weights). Like activation
// uploads, the server validates these frames in place and persists outcome
// records derived from them — ValidateRoundUpdateFrame is the zero-alloc
// gate, RoundUpdate the zero-copy view. Parameter values are passed through
// bit-exactly (NaN and ±Inf included): the engine's determinism contract is
// over float64 bit patterns, not semantic values.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Round-stream v2 message types.
const (
	TypeRoundUpdate    = 5
	TypeScoresSnapshot = 6
)

// MaxRoundParticipants bounds participant ids in a round-update frame. It
// matches valuation.MaxParticipants: the engine addresses coalitions with a
// uint64 mask, so an id of 64+ could not join any coalition.
const MaxRoundParticipants = 64

// roundHeaderLen is the fixed prefix of a round-update body.
const roundHeaderLen = 12

// RoundParticipant is one client's contribution to a round-update frame:
// its id, FedAvg weight (typically the client's data size), and flat model
// parameters after local training.
type RoundParticipant struct {
	ID     int
	Weight float64
	Params []float64
}

// AppendRoundUpdate frames one round's participant updates as a v2
// round-update message appended to dst. Participants must arrive in
// strictly increasing id order with equal-length parameter vectors and
// positive finite weights — the same constraints ValidateRoundUpdateFrame
// enforces, so an encoded frame always validates.
func AppendRoundUpdate(dst []byte, round int, parts []RoundParticipant) ([]byte, error) {
	if round < 0 || int64(round) > math.MaxUint32 {
		return nil, fmt.Errorf("protocol: round %d out of range", round)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("protocol: round update with no participants")
	}
	paramCount := len(parts[0].Params)
	if paramCount == 0 || paramCount > maxVecLen {
		return nil, fmt.Errorf("protocol: parameter count %d out of range", paramCount)
	}
	prev := -1
	for _, p := range parts {
		if p.ID <= prev || p.ID >= MaxRoundParticipants {
			return nil, fmt.Errorf("protocol: participant id %d not strictly increasing in [0,%d)",
				p.ID, MaxRoundParticipants)
		}
		prev = p.ID
		if len(p.Params) != paramCount {
			return nil, fmt.Errorf("protocol: participant %d has %d params, first has %d",
				p.ID, len(p.Params), paramCount)
		}
		if !(p.Weight > 0) || math.IsInf(p.Weight, 0) {
			return nil, fmt.Errorf("protocol: participant %d weight %v not finite and positive", p.ID, p.Weight)
		}
	}
	return appendFramed(dst, Version2, TypeRoundUpdate, func(d []byte) []byte {
		d = appendU32(d, uint32(round))
		d = appendU32(d, uint32(len(parts)))
		d = appendU32(d, uint32(paramCount))
		for _, p := range parts {
			d = appendU32(d, uint32(p.ID))
			d = appendF64(d, p.Weight)
			for _, v := range p.Params {
				d = appendF64(d, v)
			}
		}
		return d
	}), nil
}

// RoundUpdateInfo describes one round-update frame validated in place.
type RoundUpdateInfo struct {
	Round      int
	Count      int
	ParamCount int
	// FrameLen is the frame's total byte length (header, body, CRC).
	FrameLen int
}

// ValidateRoundUpdateFrame CRC-checks and structurally validates the first
// round-update frame in b without materializing anything: ids strictly
// increasing and < MaxRoundParticipants, weights finite and positive, body
// length exactly consistent with the counts. Zero heap allocations (pinned
// by TestValidateRoundUpdateFrameZeroAlloc). Parameter values are not
// inspected — NaN is legal payload.
func ValidateRoundUpdateFrame(b []byte) (RoundUpdateInfo, error) {
	f, rest, err := ParseFrame(b)
	if err != nil {
		return RoundUpdateInfo{}, err
	}
	if f.Version != Version2 {
		return RoundUpdateInfo{}, fmt.Errorf("protocol: unsupported version %d", f.Version)
	}
	if f.Type != TypeRoundUpdate {
		return RoundUpdateInfo{}, fmt.Errorf("protocol: unexpected message type %d", f.Type)
	}
	info, err := validateRoundBody(f.Body)
	if err != nil {
		return RoundUpdateInfo{}, err
	}
	info.FrameLen = len(b) - len(rest)
	return info, nil
}

// validateRoundBody is the structural walk shared by the frame validator
// and the zero-copy view parser.
func validateRoundBody(body []byte) (RoundUpdateInfo, error) {
	if len(body) < roundHeaderLen {
		return RoundUpdateInfo{}, fmt.Errorf("protocol: round update body too short (%d bytes)", len(body))
	}
	info := RoundUpdateInfo{
		Round:      int(binary.LittleEndian.Uint32(body[0:4])),
		Count:      int(binary.LittleEndian.Uint32(body[4:8])),
		ParamCount: int(binary.LittleEndian.Uint32(body[8:12])),
	}
	if info.Count < 1 || info.Count > MaxRoundParticipants {
		return RoundUpdateInfo{}, fmt.Errorf("protocol: participant count %d outside [1,%d]",
			info.Count, MaxRoundParticipants)
	}
	if info.ParamCount < 1 || info.ParamCount > maxVecLen {
		return RoundUpdateInfo{}, fmt.Errorf("protocol: parameter count %d outside [1,%d]",
			info.ParamCount, maxVecLen)
	}
	stride := int64(4 + 8 + 8*info.ParamCount)
	if want := roundHeaderLen + int64(info.Count)*stride; int64(len(body)) != want {
		return RoundUpdateInfo{}, fmt.Errorf("protocol: body length %d, want %d for %d participants × %d params",
			len(body), want, info.Count, info.ParamCount)
	}
	prev := int64(-1)
	at := int64(roundHeaderLen)
	for i := 0; i < info.Count; i++ {
		id := int64(binary.LittleEndian.Uint32(body[at:]))
		if id <= prev || id >= MaxRoundParticipants {
			return RoundUpdateInfo{}, fmt.Errorf("protocol: participant id %d at index %d not strictly increasing in [0,%d)",
				id, i, MaxRoundParticipants)
		}
		prev = id
		w := math.Float64frombits(binary.LittleEndian.Uint64(body[at+4:]))
		if !(w > 0) || math.IsInf(w, 0) {
			return RoundUpdateInfo{}, fmt.Errorf("protocol: participant %d weight %v not finite and positive", id, w)
		}
		at += stride
	}
	return info, nil
}

// RoundUpdate is a zero-copy view of a validated round-update body: the
// participant records alias the parsed frame.
type RoundUpdate struct {
	Round      int
	Count      int
	ParamCount int
	raw        []byte // Count × (4 + 8 + 8·ParamCount) bytes
}

// ParseRoundUpdate validates a round-update frame and returns its view.
// No parameter data is copied.
func ParseRoundUpdate(f Frame) (RoundUpdate, error) {
	if f.Version != Version2 || f.Type != TypeRoundUpdate {
		return RoundUpdate{}, fmt.Errorf("protocol: not a round update (version %d type %d)", f.Version, f.Type)
	}
	info, err := validateRoundBody(f.Body)
	if err != nil {
		return RoundUpdate{}, err
	}
	return RoundUpdate{
		Round:      info.Round,
		Count:      info.Count,
		ParamCount: info.ParamCount,
		raw:        f.Body[roundHeaderLen:],
	}, nil
}

// stride is one participant record's byte length.
func (u RoundUpdate) stride() int { return 4 + 8 + 8*u.ParamCount }

// ID returns participant i's id (frame order, strictly increasing).
func (u RoundUpdate) ID(i int) int {
	return int(binary.LittleEndian.Uint32(u.raw[i*u.stride():]))
}

// Weight returns participant i's FedAvg weight.
func (u RoundUpdate) Weight(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(u.raw[i*u.stride()+4:]))
}

// Param returns participant i's j-th parameter, bit-exactly as sent.
func (u RoundUpdate) Param(i, j int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(u.raw[i*u.stride()+12+8*j:]))
}

// Participant materializes record i (copying its parameters).
func (u RoundUpdate) Participant(i int) RoundParticipant {
	p := RoundParticipant{
		ID:     u.ID(i),
		Weight: u.Weight(i),
		Params: make([]float64, u.ParamCount),
	}
	base := i*u.stride() + 12
	for j := range p.Params {
		p.Params[j] = math.Float64frombits(binary.LittleEndian.Uint64(u.raw[base+8*j:]))
	}
	return p
}

// ScoresSnapshot is the streaming valuation state at one instant: rounds
// ingested (high-water round + 1), rounds skipped by between-round
// truncation, and the cumulative per-participant contribution scores
// (indexed by participant id).
type ScoresSnapshot struct {
	Rounds  int       `json:"rounds"`
	Skipped int       `json:"skipped_rounds"`
	Scores  []float64 `json:"scores"`
}

// AppendScoresSnapshot frames s as a v2 scores-snapshot message appended
// to dst.
func AppendScoresSnapshot(dst []byte, s *ScoresSnapshot) []byte {
	return appendFramed(dst, Version2, TypeScoresSnapshot, func(d []byte) []byte {
		d = appendU32(d, uint32(s.Rounds))
		d = appendU32(d, uint32(s.Skipped))
		d = appendU32(d, uint32(len(s.Scores)))
		for _, v := range s.Scores {
			d = appendF64(d, v)
		}
		return d
	})
}

// ParseScoresSnapshotInto decodes a scores-snapshot frame into s, reusing
// its Scores capacity. Score values round-trip bit-exactly (NaN included).
func ParseScoresSnapshotInto(f Frame, s *ScoresSnapshot) error {
	if f.Version != Version2 || f.Type != TypeScoresSnapshot {
		return fmt.Errorf("protocol: not a scores snapshot (version %d type %d)", f.Version, f.Type)
	}
	body := f.Body
	if len(body) < 12 {
		return fmt.Errorf("protocol: scores snapshot body too short (%d bytes)", len(body))
	}
	count := int64(binary.LittleEndian.Uint32(body[8:12]))
	if count > maxVecLen {
		return fmt.Errorf("protocol: scores count %d exceeds limit", count)
	}
	if want := 12 + 8*count; int64(len(body)) != want {
		return fmt.Errorf("protocol: scores snapshot body %d bytes, want %d for %d scores",
			len(body), want, count)
	}
	s.Rounds = int(binary.LittleEndian.Uint32(body[0:4]))
	s.Skipped = int(binary.LittleEndian.Uint32(body[4:8]))
	s.Scores = s.Scores[:0]
	for off := int64(12); off < int64(len(body)); off += 8 {
		s.Scores = append(s.Scores, math.Float64frombits(binary.LittleEndian.Uint64(body[off:])))
	}
	return nil
}

// ParseScoresSnapshot decodes a scores-snapshot frame into a fresh value.
func ParseScoresSnapshot(f Frame) (*ScoresSnapshot, error) {
	s := new(ScoresSnapshot)
	if err := ParseScoresSnapshotInto(f, s); err != nil {
		return nil, err
	}
	return s, nil
}
