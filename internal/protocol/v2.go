package protocol

// Wire protocol v2: the low-latency frame family the serving path speaks.
//
// Every message — v1 and v2 — shares the canonical CTFL envelope (magic,
// version, type, length-prefixed body, trailing CRC32). Version 1 carries
// only activation uploads and stays accepted forever: the server's WAL
// stores accepted v1 frames byte-for-byte, so decode compatibility is a
// durability requirement, not a courtesy. Version 2 adds the serving-path
// messages:
//
//	type 2  predict request   width uint32, count uint32,
//	                          count×width float32 feature values (row-major)
//	type 3  predict response  count uint32, count float64 scores
//	type 4  trace result      accuracy float64, coverageGap float64,
//	                          4 × (count uint32 + count float64) vectors
//	                          (micro, macro, lossRatio, uselessRatio),
//	                          count uint32 + count uint32 suspects
//	type 5  round update      per-round participant model updates for the
//	                          streaming valuation engine (see v2rounds.go)
//	type 6  scores snapshot   streaming contribution scores (see v2rounds.go)
//	type 7  flight events     wide-event flight-recorder snapshots for
//	                          GET /v1/events (see v2flight.go)
//
// Negotiation is carried by HTTP, not by the frames: a request's
// Content-Type selects the decoder (application/x-ctfl = binary frame,
// application/json = the legacy JSON shape) and its Accept header selects
// the response encoding. Unknown versions or message types are decode
// errors, which the server answers with 400.
//
// The v2 parsers are zero-copy: ParseFrame verifies the CRC and returns a
// Frame whose Body aliases the input buffer, and the typed views read
// straight out of that alias. Encoders are append-style so callers can
// reuse one buffer across messages.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/bitset"
	"repro/internal/core"
)

// Version2 tags the serving-path frame family (predict, trace result).
const Version2 = 2

// ContentTypeFrame is the HTTP media type of CTFL binary frames.
const ContentTypeFrame = "application/x-ctfl"

// Exported v2 message types (the v1 activation upload keeps its private
// constant; it is only ever produced by Upload.Write).
const (
	TypeActivationUpload = msgActivationUpload
	TypePredictRequest   = 2
	TypePredictResponse  = 3
	TypeTraceResult      = 4
)

const (
	frameHeaderLen = 10 // magic + version + type + body length
	frameCRCLen    = 4
	// maxVecLen bounds any length-prefixed vector in a v2 body (defensive
	// against hostile length fields; parsers also verify the remaining
	// bytes before allocating).
	maxVecLen = 1 << 24
)

// Frame is one parsed CTFL frame. Body aliases the buffer handed to
// ParseFrame — it is valid only as long as that buffer is.
type Frame struct {
	Version uint8
	Type    uint8
	Body    []byte
}

// ParseFrame verifies the first frame in b — magic, length bounds, CRC —
// without copying, returning the frame and the bytes that follow it.
func ParseFrame(b []byte) (Frame, []byte, error) {
	if len(b) < frameHeaderLen+frameCRCLen {
		return Frame{}, nil, fmt.Errorf("protocol: truncated frame (%d bytes)", len(b))
	}
	if !bytes.Equal(b[:4], magic[:]) {
		return Frame{}, nil, fmt.Errorf("protocol: bad magic %q", b[:4])
	}
	bodyLen := int64(binary.LittleEndian.Uint32(b[6:frameHeaderLen]))
	total := frameHeaderLen + bodyLen + frameCRCLen
	if total > int64(len(b)) {
		return Frame{}, nil, fmt.Errorf("protocol: frame needs %d bytes, have %d", total, len(b))
	}
	sum := crc32.ChecksumIEEE(b[:frameHeaderLen+bodyLen])
	if binary.LittleEndian.Uint32(b[frameHeaderLen+bodyLen:total]) != sum {
		return Frame{}, nil, fmt.Errorf("protocol: checksum mismatch")
	}
	return Frame{
		Version: b[4],
		Type:    b[5],
		Body:    b[frameHeaderLen : frameHeaderLen+bodyLen : frameHeaderLen+bodyLen],
	}, b[total:], nil
}

// appendFramed builds a frame in place: header with a length placeholder,
// the body via fill, then the patched length and trailing CRC. It never
// materializes the body separately, so encoding into a reused buffer is
// allocation-free once the buffer has grown.
func appendFramed(dst []byte, version, msgType uint8, fill func([]byte) []byte) []byte {
	start := len(dst)
	dst = append(dst, magic[:]...)
	dst = append(dst, version, msgType, 0, 0, 0, 0)
	bodyStart := len(dst)
	dst = fill(dst)
	binary.LittleEndian.PutUint32(dst[start+6:], uint32(len(dst)-bodyStart))
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(dst[start:]))
	return append(dst, crcb[:]...)
}

// AppendFrame appends body framed as one CTFL message to dst.
func AppendFrame(dst []byte, version, msgType uint8, body []byte) []byte {
	return appendFramed(dst, version, msgType, func(d []byte) []byte {
		return append(d, body...)
	})
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendF64(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

// AppendPredictRequest frames len(rows)/width feature rows (row-major
// float32 values) as a v2 predict request appended to dst.
func AppendPredictRequest(dst []byte, width int, rows []float32) ([]byte, error) {
	if width <= 0 {
		return nil, fmt.Errorf("protocol: predict width %d", width)
	}
	if len(rows)%width != 0 {
		return nil, fmt.Errorf("protocol: %d feature values do not divide into width-%d rows", len(rows), width)
	}
	return appendFramed(dst, Version2, TypePredictRequest, func(d []byte) []byte {
		d = appendU32(d, uint32(width))
		d = appendU32(d, uint32(len(rows)/width))
		for _, v := range rows {
			d = appendU32(d, math.Float32bits(v))
		}
		return d
	}), nil
}

// PredictRequest is a zero-copy view of a predict-request body: the feature
// bytes alias the parsed frame.
type PredictRequest struct {
	Width int
	Count int
	raw   []byte // Count*Width float32 values, little-endian
}

// ParsePredictRequest validates a predict-request frame and returns its
// view. No feature data is copied.
func ParsePredictRequest(f Frame) (PredictRequest, error) {
	if f.Version != Version2 || f.Type != TypePredictRequest {
		return PredictRequest{}, fmt.Errorf("protocol: not a predict request (version %d type %d)", f.Version, f.Type)
	}
	if len(f.Body) < 8 {
		return PredictRequest{}, fmt.Errorf("protocol: predict request body too short (%d bytes)", len(f.Body))
	}
	width := int64(binary.LittleEndian.Uint32(f.Body[0:4]))
	count := int64(binary.LittleEndian.Uint32(f.Body[4:8]))
	if width <= 0 || width > maxVecLen {
		return PredictRequest{}, fmt.Errorf("protocol: predict width %d out of range", width)
	}
	if count > maxRecords {
		return PredictRequest{}, fmt.Errorf("protocol: predict row count %d exceeds limit", count)
	}
	if want := 8 + 4*width*count; int64(len(f.Body)) != want {
		return PredictRequest{}, fmt.Errorf("protocol: predict body %d bytes, want %d for %d×%d rows",
			len(f.Body), want, count, width)
	}
	return PredictRequest{Width: int(width), Count: int(count), raw: f.Body[8:]}, nil
}

// AppendRows appends all Count×Width feature values to dst in row-major
// order and returns it.
func (p PredictRequest) AppendRows(dst []float32) []float32 {
	for off := 0; off+4 <= len(p.raw); off += 4 {
		dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(p.raw[off:])))
	}
	return dst
}

// AppendPredictResponse frames the scores as a v2 predict response
// appended to dst.
func AppendPredictResponse(dst []byte, scores []float64) []byte {
	return appendFramed(dst, Version2, TypePredictResponse, func(d []byte) []byte {
		d = appendU32(d, uint32(len(scores)))
		for _, s := range scores {
			d = appendF64(d, s)
		}
		return d
	})
}

// ParsePredictResponse decodes a predict-response frame's scores, appending
// them to dst (pass nil for a fresh slice).
func ParsePredictResponse(f Frame, dst []float64) ([]float64, error) {
	if f.Version != Version2 || f.Type != TypePredictResponse {
		return nil, fmt.Errorf("protocol: not a predict response (version %d type %d)", f.Version, f.Type)
	}
	if len(f.Body) < 4 {
		return nil, fmt.Errorf("protocol: predict response body too short (%d bytes)", len(f.Body))
	}
	count := int64(binary.LittleEndian.Uint32(f.Body[0:4]))
	if count > maxVecLen {
		return nil, fmt.Errorf("protocol: predict response count %d exceeds limit", count)
	}
	if want := 4 + 8*count; int64(len(f.Body)) != want {
		return nil, fmt.Errorf("protocol: predict response body %d bytes, want %d", len(f.Body), want)
	}
	for off := int64(4); off < int64(len(f.Body)); off += 8 {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(f.Body[off:])))
	}
	return dst, nil
}

// TraceResult is a completed trace's scores: the canonical result shape
// shared by the JSON API (these field tags are the v1 wire form) and the
// binary v2 trace-result frame.
type TraceResult struct {
	Accuracy     float64   `json:"accuracy"`
	CoverageGap  float64   `json:"coverage_gap"`
	Micro        []float64 `json:"micro"`
	Macro        []float64 `json:"macro"`
	LossRatio    []float64 `json:"loss_ratio"`
	UselessRatio []float64 `json:"useless_ratio"`
	Suspects     []int     `json:"suspects"`
}

// AppendTraceResult frames tr as a v2 trace-result message appended to dst.
func AppendTraceResult(dst []byte, tr *TraceResult) []byte {
	vec := func(d []byte, v []float64) []byte {
		d = appendU32(d, uint32(len(v)))
		for _, x := range v {
			d = appendF64(d, x)
		}
		return d
	}
	return appendFramed(dst, Version2, TypeTraceResult, func(d []byte) []byte {
		d = appendF64(d, tr.Accuracy)
		d = appendF64(d, tr.CoverageGap)
		d = vec(d, tr.Micro)
		d = vec(d, tr.Macro)
		d = vec(d, tr.LossRatio)
		d = vec(d, tr.UselessRatio)
		d = appendU32(d, uint32(len(tr.Suspects)))
		for _, s := range tr.Suspects {
			d = appendU32(d, uint32(s))
		}
		return d
	})
}

// ParseTraceResult decodes a trace-result frame into a fresh TraceResult.
func ParseTraceResult(f Frame) (*TraceResult, error) {
	tr := new(TraceResult)
	if err := ParseTraceResultInto(f, tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// ParseTraceResultInto decodes a trace-result frame into tr, reusing its
// slice capacity: the steady-state decode path allocates nothing once tr's
// vectors have grown to the federation's participant count.
func ParseTraceResultInto(f Frame, tr *TraceResult) error {
	if f.Version != Version2 || f.Type != TypeTraceResult {
		return fmt.Errorf("protocol: not a trace result (version %d type %d)", f.Version, f.Type)
	}
	body := f.Body
	if len(body) < 16 {
		return fmt.Errorf("protocol: trace result body too short (%d bytes)", len(body))
	}
	at := int64(16)
	vec := func(dst []float64) ([]float64, error) {
		if at+4 > int64(len(body)) {
			return nil, fmt.Errorf("protocol: truncated trace result vector")
		}
		n := int64(binary.LittleEndian.Uint32(body[at:]))
		at += 4
		if n > maxVecLen || at+8*n > int64(len(body)) {
			return nil, fmt.Errorf("protocol: trace result vector length %d exceeds body", n)
		}
		dst = dst[:0]
		for i := int64(0); i < n; i++ {
			dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(body[at:])))
			at += 8
		}
		return dst, nil
	}
	var err error
	acc := math.Float64frombits(binary.LittleEndian.Uint64(body[0:8]))
	gap := math.Float64frombits(binary.LittleEndian.Uint64(body[8:16]))
	if tr.Micro, err = vec(tr.Micro); err != nil {
		return err
	}
	if tr.Macro, err = vec(tr.Macro); err != nil {
		return err
	}
	if tr.LossRatio, err = vec(tr.LossRatio); err != nil {
		return err
	}
	if tr.UselessRatio, err = vec(tr.UselessRatio); err != nil {
		return err
	}
	if at+4 > int64(len(body)) {
		return fmt.Errorf("protocol: truncated trace result suspects")
	}
	n := int64(binary.LittleEndian.Uint32(body[at:]))
	at += 4
	if n > maxVecLen || at+4*n > int64(len(body)) {
		return fmt.Errorf("protocol: trace result suspect count %d exceeds body", n)
	}
	tr.Suspects = tr.Suspects[:0]
	for i := int64(0); i < n; i++ {
		tr.Suspects = append(tr.Suspects, int(binary.LittleEndian.Uint32(body[at:])))
		at += 4
	}
	if at != int64(len(body)) {
		return fmt.Errorf("protocol: %d trailing bytes in trace result body", int64(len(body))-at)
	}
	tr.Accuracy, tr.CoverageGap = acc, gap
	return nil
}

// UploadFrameInfo describes one activation-upload frame validated in place.
type UploadFrameInfo struct {
	Participant int
	RuleWidth   int
	Records     int
	// FrameLen is the frame's total byte length (header, body, CRC) —
	// callers slice a batch body into frames with it.
	FrameLen int
}

// ValidateUploadFrame CRC-checks and structurally validates the first
// activation-upload frame in b without materializing any record: no bitsets,
// no Upload, zero heap allocations (pinned by TestValidateUploadFrameZeroAlloc).
// A frame it accepts is exactly a frame DecodeUpload accepts, so raw frame
// bytes can be persisted and replayed without a decode→re-encode round trip.
func ValidateUploadFrame(b []byte) (UploadFrameInfo, error) {
	f, rest, err := ParseFrame(b)
	if err != nil {
		return UploadFrameInfo{}, err
	}
	if f.Version != Version {
		return UploadFrameInfo{}, fmt.Errorf("protocol: unsupported version %d", f.Version)
	}
	if f.Type != msgActivationUpload {
		return UploadFrameInfo{}, fmt.Errorf("protocol: unexpected message type %d", f.Type)
	}
	body := f.Body
	if len(body) < 12 {
		return UploadFrameInfo{}, fmt.Errorf("protocol: body too short (%d bytes)", len(body))
	}
	info := UploadFrameInfo{
		Participant: int(binary.LittleEndian.Uint32(body[0:4])),
		RuleWidth:   int(binary.LittleEndian.Uint32(body[4:8])),
		Records:     int(binary.LittleEndian.Uint32(body[8:12])),
		FrameLen:    len(b) - len(rest),
	}
	if info.Records > maxRecords {
		return UploadFrameInfo{}, fmt.Errorf("protocol: record count %d exceeds limit", info.Records)
	}
	recBytes := int64(1 + (info.RuleWidth+7)/8)
	if want := 12 + int64(info.Records)*recBytes; int64(len(body)) != want {
		return UploadFrameInfo{}, fmt.Errorf("protocol: body length %d, want %d for %d records",
			len(body), want, info.Records)
	}
	at := int64(12)
	for rec := 0; rec < info.Records; rec++ {
		if l := body[at]; l > 1 {
			return UploadFrameInfo{}, fmt.Errorf("protocol: record %d has invalid label %d", rec, l)
		}
		at += recBytes
	}
	return info, nil
}

// AppendTrainingRecords decodes one validated upload frame's records
// directly into core.TrainingUpload values appended to dst. All of a
// frame's activation bitsets share a single backing slab, so the decode
// costs a constant number of allocations per frame regardless of record
// count — the in-memory half of the zero-copy ingest path. The frame is
// re-validated (it usually arrives from the WAL), and trailing bytes after
// it are rejected like DecodeUpload.
func AppendTrainingRecords(dst []core.TrainingUpload, frame []byte) ([]core.TrainingUpload, UploadFrameInfo, error) {
	info, err := ValidateUploadFrame(frame)
	if err != nil {
		return dst, UploadFrameInfo{}, err
	}
	if info.FrameLen != len(frame) {
		return dst, UploadFrameInfo{}, fmt.Errorf("protocol: %d trailing bytes after frame", len(frame)-info.FrameLen)
	}
	body := frame[frameHeaderLen : frameHeaderLen+int64(binary.LittleEndian.Uint32(frame[6:frameHeaderLen]))]
	slab := bitset.MakeSlab(info.Records, info.RuleWidth)
	recBytes := 1 + (info.RuleWidth+7)/8
	at := 12
	for i := 0; i < info.Records; i++ {
		s := &slab[i]
		s.SetPackedBytes(body[at+1 : at+recBytes])
		dst = append(dst, core.TrainingUpload{
			Owner:       info.Participant,
			Label:       int(body[at]),
			Activations: s,
		})
		at += recBytes
	}
	return dst, info, nil
}
