package protocol

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/stats"
)

func mustPredictRequest(t *testing.T, width int, rows []float32) []byte {
	t.Helper()
	b, err := AppendPredictRequest(nil, width, rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPredictRequestRoundTrip(t *testing.T) {
	rows := []float32{1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 1}
	buf := mustPredictRequest(t, 4, rows)

	f, rest, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if f.Version != Version2 || f.Type != TypePredictRequest {
		t.Fatalf("frame version %d type %d", f.Version, f.Type)
	}
	req, err := ParsePredictRequest(f)
	if err != nil {
		t.Fatal(err)
	}
	if req.Width != 4 || req.Count != 3 {
		t.Fatalf("parsed %d×%d", req.Count, req.Width)
	}
	got := req.AppendRows(nil)
	if len(got) != len(rows) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("value %d: %g != %g", i, got[i], rows[i])
		}
	}

	if _, err := AppendPredictRequest(nil, 5, rows); err == nil {
		t.Fatal("non-multiple row length accepted")
	}
	if _, err := AppendPredictRequest(nil, 0, nil); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestPredictResponseRoundTrip(t *testing.T) {
	scores := []float64{-1.5, 0, 2.25, math.Inf(1), math.SmallestNonzeroFloat64}
	buf := AppendPredictResponse(nil, scores)
	f, _, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePredictResponse(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scores) {
		t.Fatalf("got %d scores", len(got))
	}
	for i := range scores {
		if got[i] != scores[i] {
			t.Fatalf("score %d: %v != %v", i, got[i], scores[i])
		}
	}
	// Appending into a reused slice keeps prior content.
	again, err := ParsePredictResponse(f, got[:0])
	if err != nil || len(again) != len(scores) {
		t.Fatalf("reuse decode: %v, %d scores", err, len(again))
	}
}

func sampleTraceResult() *TraceResult {
	return &TraceResult{
		Accuracy:     0.875,
		CoverageGap:  0.0625,
		Micro:        []float64{0.5, 0.25, 0.0625},
		Macro:        []float64{0.4, 0.35, 0.125},
		LossRatio:    []float64{0, 0.5, 1},
		UselessRatio: []float64{0.125, 0, 0.875},
		Suspects:     []int{2},
	}
}

func traceResultsEqual(a, b *TraceResult) bool {
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if a.Accuracy != b.Accuracy || a.CoverageGap != b.CoverageGap ||
		!eq(a.Micro, b.Micro) || !eq(a.Macro, b.Macro) ||
		!eq(a.LossRatio, b.LossRatio) || !eq(a.UselessRatio, b.UselessRatio) ||
		len(a.Suspects) != len(b.Suspects) {
		return false
	}
	for i := range a.Suspects {
		if a.Suspects[i] != b.Suspects[i] {
			return false
		}
	}
	return true
}

func TestTraceResultRoundTrip(t *testing.T) {
	tr := sampleTraceResult()
	buf := AppendTraceResult(nil, tr)
	f, rest, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	got, err := ParseTraceResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if !traceResultsEqual(tr, got) {
		t.Fatalf("round trip changed content: %+v vs %+v", tr, got)
	}

	// Empty vectors (a federation with zero suspects, say) survive too.
	empty := &TraceResult{Micro: []float64{}, Macro: []float64{}}
	f2, _, err := ParseFrame(AppendTraceResult(nil, empty))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ParseTraceResult(f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Micro) != 0 || len(got2.Suspects) != 0 {
		t.Fatalf("empty round trip: %+v", got2)
	}
}

func TestParseTraceResultIntoReusesCapacity(t *testing.T) {
	tr := sampleTraceResult()
	buf := AppendTraceResult(nil, tr)
	f, _, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	var dst TraceResult
	if err := ParseTraceResultInto(f, &dst); err != nil {
		t.Fatal(err)
	}
	// Warm: a second decode into the same struct must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		if err := ParseTraceResultInto(f, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state trace-result decode allocates %v times per run", allocs)
	}
	if !traceResultsEqual(tr, &dst) {
		t.Fatal("reused decode changed content")
	}
}

func TestParseFrameErrors(t *testing.T) {
	valid := AppendPredictResponse(nil, []float64{1, 2})
	cases := map[string][]byte{
		"empty":          {},
		"short":          valid[:8],
		"bad magic":      append([]byte("XXXX"), valid[4:]...),
		"truncated body": valid[:len(valid)-6],
	}
	for name, b := range cases {
		if _, _, err := ParseFrame(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Flip one payload byte: CRC must catch it.
	corrupt := append([]byte(nil), valid...)
	corrupt[frameHeaderLen] ^= 0x40
	if _, _, err := ParseFrame(corrupt); err == nil {
		t.Error("corrupted payload accepted")
	}

	// Inflated length field must error, not panic or over-read.
	huge := append([]byte(nil), valid...)
	huge[8] = 0xFF
	if _, _, err := ParseFrame(huge); err == nil {
		t.Error("inflated length accepted")
	}

	// Wrong-type frames are rejected by each typed parser.
	f, _, err := ParseFrame(valid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePredictRequest(f); err == nil {
		t.Error("predict response parsed as request")
	}
	if _, err := ParseTraceResult(f); err == nil {
		t.Error("predict response parsed as trace result")
	}
}

// randomUpload builds a width-w upload with n random records.
func randomUpload(r interface{ Intn(int) int }, part, w, n int) *Upload {
	u := &Upload{Participant: part, RuleWidth: w}
	for i := 0; i < n; i++ {
		s := bitset.New(w)
		for b := 0; b < w; b++ {
			if r.Intn(2) == 1 {
				s.Set(b)
			}
		}
		u.Records = append(u.Records, Record{Label: r.Intn(2), Activations: s})
	}
	return u
}

// TestValidateUploadFrameMatchesDecode pins the zero-copy validator to the
// materializing decoder: on any byte string, both accept or both reject, and
// on acceptance the structural summary matches.
func TestValidateUploadFrameMatchesDecode(t *testing.T) {
	r := stats.NewRNG(11)
	var inputs [][]byte
	for _, w := range []int{0, 1, 7, 8, 63, 64, 65, 130} {
		enc, err := randomUpload(r, r.Intn(5), w, r.Intn(6)).Encode()
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, enc)
	}
	base, err := randomUpload(r, 1, 33, 4).Encode()
	if err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, base)
	// Single-byte mutations of a valid frame exercise every rejection path.
	for i := 0; i < len(base); i++ {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x81
		inputs = append(inputs, mut)
	}
	for i := range inputs {
		inputs = append(inputs, inputs[i][:len(inputs[i])/2])
	}

	for _, in := range inputs {
		up, derr := DecodeUpload(in)
		info, verr := ValidateUploadFrame(in)
		if verr == nil && len(in) != info.FrameLen {
			verr = errTrailing
		}
		if (derr == nil) != (verr == nil) {
			t.Fatalf("decode err %v, validate err %v on %d-byte input", derr, verr, len(in))
		}
		if derr != nil {
			continue
		}
		if info.Participant != up.Participant || info.RuleWidth != up.RuleWidth || info.Records != len(up.Records) {
			t.Fatalf("validate %+v vs decode %d/%d/%d", info, up.Participant, up.RuleWidth, len(up.Records))
		}
	}
}

var errTrailing = bytes.ErrTooLarge // any non-nil sentinel for the differential check

// TestAppendTrainingRecordsMatchesToTrainingUploads pins the slab decode to
// the legacy decode→convert path record by record.
func TestAppendTrainingRecordsMatchesToTrainingUploads(t *testing.T) {
	r := stats.NewRNG(12)
	u := randomUpload(r, 2, 97, 9)
	frame, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}

	want, err := ToTrainingUploads([]*Upload{u}, 97, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, info, err := AppendTrainingRecords(nil, frame)
	if err != nil {
		t.Fatal(err)
	}
	if info.Participant != 2 || info.Records != 9 || info.FrameLen != len(frame) {
		t.Fatalf("info = %+v", info)
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Owner != want[i].Owner || got[i].Label != want[i].Label {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
		if !got[i].Activations.Equal(want[i].Activations) {
			t.Fatalf("record %d activations differ", i)
		}
	}

	// Trailing bytes after the frame are rejected, like DecodeUpload.
	if _, _, err := AppendTrainingRecords(nil, append(append([]byte(nil), frame...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestValidateUploadFrameZeroAlloc pins the ingest hot path: validating a
// frame in place must not touch the heap at all.
func TestValidateUploadFrameZeroAlloc(t *testing.T) {
	frame, err := randomUpload(stats.NewRNG(13), 0, 256, 64).Encode()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ValidateUploadFrame(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ValidateUploadFrame allocates %v times per frame", allocs)
	}
}
