package protocol

// Wire type 8: replicated-WAL-segment. The replication layer streams a
// shard leader's logical event log to its follower as segments of
// (event type, payload) records on the canonical CTFL envelope — the
// same frozen framing every other message rides, so the follower's
// ingest path gets CRC verification and length bounds for free.
//
// Body layout (little-endian):
//
//	flags     uint8   bit 0 = reset: the segment restates the leader's
//	                  entire logical log from sequence 0 and the follower
//	                  must discard its state and rebuild from it; other
//	                  bits are reserved and rejected
//	startSeq  uint64  log index of the first record in the segment
//	count     uint32  record count
//	count × ( type uint8, payloadLen uint32, payload bytes )
//
// Record types are the store's WAL event types; the codec only requires
// them nonzero so the protocol layer stays decoupled from the store's
// enum. Encoding is canonical: the same records produce the same bytes,
// which the round-trip fuzz target (FuzzWALSegment) pins.

import (
	"encoding/binary"
	"fmt"
)

// TypeWALSegment is the v2 replicated-WAL-segment message type.
const TypeWALSegment = 8

// walSegmentFlagReset marks a full-log restatement.
const walSegmentFlagReset = 1

// walSegmentHeaderLen is the fixed body prefix: flags + startSeq + count.
const walSegmentHeaderLen = 1 + 8 + 4

// WALRecord is one replicated log record: a store event type tag and its
// payload. Parsed records alias the frame body.
type WALRecord struct {
	Type    uint8
	Payload []byte
}

// AppendWALSegment frames the records as a v2 replicated-WAL-segment
// appended to dst. startSeq is the leader-log index of recs[0]; reset
// marks a full restatement from sequence 0.
func AppendWALSegment(dst []byte, startSeq uint64, reset bool, recs []WALRecord) ([]byte, error) {
	if reset && startSeq != 0 {
		return nil, fmt.Errorf("protocol: reset WAL segment must start at sequence 0, not %d", startSeq)
	}
	for i, rec := range recs {
		if rec.Type == 0 {
			return nil, fmt.Errorf("protocol: WAL segment record %d has zero type", i)
		}
		if len(rec.Payload) > maxVecLen {
			return nil, fmt.Errorf("protocol: WAL segment record %d payload %d bytes exceeds limit", i, len(rec.Payload))
		}
	}
	if len(recs) > maxRecords {
		return nil, fmt.Errorf("protocol: WAL segment record count %d exceeds limit", len(recs))
	}
	var flags uint8
	if reset {
		flags |= walSegmentFlagReset
	}
	return appendFramed(dst, Version2, TypeWALSegment, func(d []byte) []byte {
		d = append(d, flags)
		d = appendU64(d, startSeq)
		d = appendU32(d, uint32(len(recs)))
		for _, rec := range recs {
			d = append(d, rec.Type)
			d = appendU32(d, uint32(len(rec.Payload)))
			d = append(d, rec.Payload...)
		}
		return d
	}), nil
}

// WALSegment is a validated view of a replicated-WAL-segment body; record
// payloads alias the parsed frame.
type WALSegment struct {
	StartSeq uint64
	Reset    bool
	Count    int
	raw      []byte // the record region, fully validated
}

// ParseWALSegment validates a replicated-WAL-segment frame — flags,
// counts, per-record bounds, no trailing bytes — and returns its view
// without copying any payload.
func ParseWALSegment(f Frame) (WALSegment, error) {
	if f.Version != Version2 || f.Type != TypeWALSegment {
		return WALSegment{}, fmt.Errorf("protocol: not a WAL segment (version %d type %d)", f.Version, f.Type)
	}
	body := f.Body
	if len(body) < walSegmentHeaderLen {
		return WALSegment{}, fmt.Errorf("protocol: WAL segment body too short (%d bytes)", len(body))
	}
	flags := body[0]
	if flags&^uint8(walSegmentFlagReset) != 0 {
		return WALSegment{}, fmt.Errorf("protocol: WAL segment has unknown flag bits %#x", flags)
	}
	seg := WALSegment{
		StartSeq: binary.LittleEndian.Uint64(body[1:9]),
		Reset:    flags&walSegmentFlagReset != 0,
	}
	if seg.Reset && seg.StartSeq != 0 {
		return WALSegment{}, fmt.Errorf("protocol: reset WAL segment starts at %d, want 0", seg.StartSeq)
	}
	count := int64(binary.LittleEndian.Uint32(body[9:13]))
	if count > maxRecords {
		return WALSegment{}, fmt.Errorf("protocol: WAL segment record count %d exceeds limit", count)
	}
	at := int64(walSegmentHeaderLen)
	for i := int64(0); i < count; i++ {
		if at+5 > int64(len(body)) {
			return WALSegment{}, fmt.Errorf("protocol: truncated WAL segment record %d", i)
		}
		if body[at] == 0 {
			return WALSegment{}, fmt.Errorf("protocol: WAL segment record %d has zero type", i)
		}
		plen := int64(binary.LittleEndian.Uint32(body[at+1 : at+5]))
		if plen > maxVecLen || at+5+plen > int64(len(body)) {
			return WALSegment{}, fmt.Errorf("protocol: WAL segment record %d payload length %d exceeds body", i, plen)
		}
		at += 5 + plen
	}
	if at != int64(len(body)) {
		return WALSegment{}, fmt.Errorf("protocol: %d trailing bytes in WAL segment body", int64(len(body))-at)
	}
	seg.Count = int(count)
	seg.raw = body[walSegmentHeaderLen:]
	return seg, nil
}

// AppendRecords appends the segment's records to dst. Payloads alias the
// parsed frame; callers that outlive the frame buffer must copy them.
func (s WALSegment) AppendRecords(dst []WALRecord) []WALRecord {
	at := 0
	for i := 0; i < s.Count; i++ {
		typ := s.raw[at]
		plen := int(binary.LittleEndian.Uint32(s.raw[at+1 : at+5]))
		dst = append(dst, WALRecord{
			Type:    typ,
			Payload: s.raw[at+5 : at+5+plen : at+5+plen],
		})
		at += 5 + plen
	}
	return dst
}
