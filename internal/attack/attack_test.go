package attack

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rounds"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// fixture is a five-participant tic-tac-toe federation with equal-sized,
// clean local datasets — every distortion the matrix measures is then
// attributable to the attack under test, not to baseline quality skew.
type fixture struct {
	cfg     Config
	trainer *fl.Trainer
}

var (
	fixOnce sync.Once
	fixVal  *fixture
	fixErr  error
)

func buildFixture() (*fixture, error) {
	tab := dataset.TicTacToe()
	r := stats.NewRNG(23)
	train, test := tab.Split(r, 0.25)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		return nil, err
	}
	perm := r.Perm(train.Len())
	const n = 5
	parts := make([]*fl.Participant, n)
	per := train.Len() / n
	for i := 0; i < n; i++ {
		lo, hi := i*per, (i+1)*per
		if i == n-1 {
			hi = train.Len()
		}
		parts[i] = &fl.Participant{ID: i, Name: string(rune('A' + i)), Data: train.Subset(perm[lo:hi])}
	}
	model := nn.Config{Hidden: []int{16}, Seed: 7, BatchSize: 128}
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 2, LocalEpochs: 3, Parallel: true, Model: model, Seed: 23,
	})
	return &fixture{
		cfg: Config{
			Enc:         enc,
			Parts:       parts,
			Test:        test,
			Model:       model,
			Rounds:      8,
			LocalEpochs: 3,
			Seed:        23,
			Attackers:   []int{4},
		},
		trainer: trainer,
	}, nil
}

func fix(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() { fixVal, fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixVal
}

// matricesEqual compares two matrices bit-for-bit.
func matricesEqual(t *testing.T, a, b *Matrix) {
	t.Helper()
	if math.Float64bits(a.CleanAcc) != math.Float64bits(b.CleanAcc) {
		t.Fatalf("clean accuracy differs: %v vs %v", a.CleanAcc, b.CleanAcc)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Attack != cb.Attack || ca.Scheme != cb.Scheme || ca.Intensity != cb.Intensity {
			t.Fatalf("cell %d identity differs: %+v vs %+v", i, ca, cb)
		}
		if ca.DetectionRound != cb.DetectionRound || ca.MaxRankDisplacement != cb.MaxRankDisplacement {
			t.Fatalf("cell %d (%s/%s) discrete metrics differ", i, ca.Attack, ca.Scheme)
		}
		pairs := [][2]float64{
			{ca.AttackerDelta, cb.AttackerDelta},
			{ca.AttackerChange, cb.AttackerChange},
			{ca.HonestSpearman, cb.HonestSpearman},
			{ca.HonestKendall, cb.HonestKendall},
			{ca.FinalAcc, cb.FinalAcc},
		}
		for _, p := range pairs {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("cell %d (%s/%s) metric differs: %v vs %v", i, ca.Attack, ca.Scheme, p[0], p[1])
			}
		}
		for j := range ca.Attacked {
			if math.Float64bits(ca.Attacked[j]) != math.Float64bits(cb.Attacked[j]) {
				t.Fatalf("cell %d (%s/%s) score %d differs", i, ca.Attack, ca.Scheme, j)
			}
		}
	}
}

// TestMatrixAcrossWorkers runs one matrix at two worker counts and pins
// (a) bit-identical results — the determinism contract — and (b) the
// structural findings: the batch path is blind to update-space attacks
// while the streaming path detects them, and data poisoning distorts both.
func TestMatrixAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	f := fix(t)
	cfg := f.cfg
	cfg.Attackers = []int{3, 4}
	cfg.Specs = []Spec{LabelFlip(), FreeRide(fl.FreeRideZero), Collusion()}
	cfg.Intensities = []float64{0.6}
	cfg.Schemes = []valuation.Scheme{&valuation.Individual{Trainer: f.trainer}}

	cfg.Workers = 1
	m1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	m3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, m1, m3)

	cells := make(map[string]Cell, len(m1.Cells))
	for _, c := range m1.Cells {
		cells[c.Attack+"/"+c.Scheme] = c
	}

	// Batch blindness: a pure update-space attack leaves the batch
	// estimator's scores bit-identical to the clean run.
	for _, key := range []string{"free-ride-zero/Individual", "collusion/Individual"} {
		c, ok := cells[key]
		if !ok {
			t.Fatalf("missing cell %s", key)
		}
		for i := range c.Clean {
			if math.Float64bits(c.Clean[i]) != math.Float64bits(c.Attacked[i]) {
				t.Fatalf("%s: batch path saw an update-space attack (score %d moved)", key, i)
			}
		}
		if c.AttackerChange != 0 || c.DetectionRound != -1 {
			t.Fatalf("%s: change=%v detection=%d, want 0 and -1", key, c.AttackerChange, c.DetectionRound)
		}
	}

	// The streaming path scores the submitted updates, so the same
	// attacks demote the attackers there.
	for _, key := range []string{"free-ride-zero/" + StreamScheme, "collusion/" + StreamScheme} {
		c := cells[key]
		if c.AttackerDelta >= 0 {
			t.Fatalf("%s: attacker mean score delta %v, want negative", key, c.AttackerDelta)
		}
	}

	// Label flipping at 0.6 is visible on both paths.
	if c := cells["label-flip/Individual"]; c.AttackerDelta >= 0 {
		t.Fatalf("label-flip invisible to batch path: delta %v", c.AttackerDelta)
	}
	if c := cells["label-flip/"+StreamScheme]; c.AttackerDelta >= 0 {
		t.Fatalf("label-flip invisible to streaming path: delta %v", c.AttackerDelta)
	}

	var sb strings.Builder
	m1.Render(&sb)
	if !strings.Contains(sb.String(), "label-flip") || !strings.Contains(sb.String(), StreamScheme) {
		t.Fatalf("render missing cells:\n%s", sb.String())
	}
	if s := m1.Sorted(); len(s) == len(m1.Cells) {
		for i := 1; i < len(s); i++ {
			if s[i-1].AttackerDelta > s[i].AttackerDelta {
				t.Fatal("Sorted not ordered by attacker delta")
			}
		}
	}
}

// TestDefenseEndToEnd is the acceptance scenario: under a seeded
// label-flip + scaling attack, ungated FedAvg degrades measurably; the
// contribution gate recovers at least 90% of clean accuracy, demotes the
// attacker below every honest participant, and the whole run is
// bit-identically reproducible from the seed at any worker count.
func TestDefenseEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	f := fix(t)
	cfg := f.cfg
	const attacker = 4

	clean, err := RunFederation(cfg, cfg.Parts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts, tampers := Apply(cfg, LabelFlipAndScaling(), 8, 99)
	ungated, err := RunFederation(cfg, parts, tampers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ungated.FinalAcc > clean.FinalAcc-0.05 {
		t.Fatalf("attack did not degrade ungated FedAvg: clean %.3f, attacked %.3f", clean.FinalAcc, ungated.FinalAcc)
	}
	// Even without the gate, the streaming scores detect the attacker.
	if det := detectionRound(ungated.Trajectory, []int{attacker}, len(cfg.Parts)); det < 0 {
		t.Fatal("ungated streaming scores never separated the attacker")
	}

	gate := &rounds.GateConfig{Threshold: -0.03, Warmup: 1, Hysteresis: 0.02}
	gated, err := RunFederation(cfg, parts, tampers, gate)
	if err != nil {
		t.Fatal(err)
	}
	if gated.FinalAcc < 0.9*clean.FinalAcc {
		t.Fatalf("gate recovered %.3f of clean %.3f, want >= 90%%", gated.FinalAcc, clean.FinalAcc)
	}
	if gated.FinalAcc <= ungated.FinalAcc {
		t.Fatalf("gate did not improve on ungated: %.3f vs %.3f", gated.FinalAcc, ungated.FinalAcc)
	}
	for i, s := range gated.Scores {
		if i != attacker && s <= gated.Scores[attacker] {
			t.Fatalf("honest participant %d (%.4f) not above attacker (%.4f)", i, s, gated.Scores[attacker])
		}
	}
	sawGate := false
	for _, ev := range gated.GateEvents {
		if ev.Participant == attacker && ev.Gated {
			sawGate = true
		}
	}
	if !sawGate {
		t.Fatalf("no gate event for the attacker: %v", gated.GateEvents)
	}
	// The gate actually excluded the attacker from aggregation.
	sawExcluded := false
	for _, rs := range gated.Result.Rounds {
		for _, id := range rs.Gated {
			if id == attacker {
				sawExcluded = true
			}
		}
	}
	if !sawExcluded {
		t.Fatal("attacker never excluded from aggregation")
	}

	// Bit-identical reproducibility at a different worker count.
	cfg2 := cfg
	cfg2.Workers = 3
	gated2, err := RunFederation(cfg2, parts, tampers, gate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(gated.FinalAcc) != math.Float64bits(gated2.FinalAcc) {
		t.Fatalf("final accuracy differs across worker counts: %v vs %v", gated.FinalAcc, gated2.FinalAcc)
	}
	for i := range gated.Scores {
		if math.Float64bits(gated.Scores[i]) != math.Float64bits(gated2.Scores[i]) {
			t.Fatalf("score %d differs across worker counts", i)
		}
	}
	if len(gated.GateEvents) != len(gated2.GateEvents) {
		t.Fatalf("gate logs differ across worker counts: %v vs %v", gated.GateEvents, gated2.GateEvents)
	}
	for i := range gated.GateEvents {
		if gated.GateEvents[i] != gated2.GateEvents[i] {
			t.Fatalf("gate event %d differs across worker counts", i)
		}
	}
	if len(gated.Trajectory) != len(gated2.Trajectory) {
		t.Fatal("trajectory lengths differ across worker counts")
	}
	for r := range gated.Trajectory {
		for i := range gated.Trajectory[r] {
			if math.Float64bits(gated.Trajectory[r][i]) != math.Float64bits(gated2.Trajectory[r][i]) {
				t.Fatalf("trajectory round %d score %d differs across worker counts", r, i)
			}
		}
	}
}

func TestDetectionRound(t *testing.T) {
	att := []int{2}
	cases := []struct {
		traj [][]float64
		want int
	}{
		// Separated from round 1 through the end.
		{[][]float64{{0.1, 0.2, 0.3}, {0.2, 0.3, 0.1}, {0.3, 0.4, 0}}, 1},
		// Separation at round 0 that does not persist, re-established at 2.
		{[][]float64{{0.1, 0.2, -0.1}, {0.2, 0.3, 0.4}, {0.3, 0.4, 0.1}}, 2},
		// Never separated (tie is not strict separation).
		{[][]float64{{0.1, 0.2, 0.1}}, -1},
		{nil, -1},
	}
	for i, c := range cases {
		if got := detectionRound(c.traj, att, 3); got != c.want {
			t.Fatalf("case %d: detectionRound = %d, want %d", i, got, c.want)
		}
	}
}

func TestRelChange(t *testing.T) {
	if got := relChange(0.2, 0.1); got != -0.5 {
		t.Fatalf("relChange(0.2, 0.1) = %v", got)
	}
	if got := relChange(0, 0.3); got != 0.3 {
		t.Fatalf("near-zero baseline: %v", got)
	}
	if got := relChange(0.01, 10); got != 5 {
		t.Fatalf("clip: %v", got)
	}
	if got := relChange(-0.1, -0.2); got != -1 {
		t.Fatalf("negative baseline: %v", got)
	}
}
