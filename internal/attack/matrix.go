package attack

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/fedsim"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rounds"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// Config parameterizes one attack matrix. Enc, Parts and Test are
// required; Specs × Intensities × (Schemes + the streaming path) defines
// the cell grid.
type Config struct {
	Enc   *dataset.Encoder
	Parts []*fl.Participant
	Test  *dataset.Table
	// Model configures the federation's shared network.
	Model nn.Config
	// Rounds / LocalEpochs configure the simulated federation (fedsim
	// defaults apply when zero).
	Rounds      int
	LocalEpochs int
	// Seed drives everything: data poisoning, tamper noise, FedAvg
	// ordering, permutation sampling.
	Seed int64
	// Attackers lists the participant IDs under adversarial control.
	Attackers []int
	// Specs and Intensities span the attack grid.
	Specs       []Spec
	Intensities []float64
	// Schemes are the batch valuation estimators to push each cell
	// through (e.g. valuation.Individual, core.Scheme). May be empty to
	// run the streaming path alone.
	Schemes []valuation.Scheme
	// Workers bounds the streaming engine's concurrent coalition
	// evaluations; the matrix is bit-identical at any value.
	Workers int
	// Permutations per streamed round; 0 uses the engine default.
	Permutations int
}

// StreamScheme is the scheme label of the streaming-path cells.
const StreamScheme = "streaming"

// Cell is one (attack, intensity, scheme) measurement.
type Cell struct {
	Attack    string
	Intensity float64
	Scheme    string
	// Clean and Attacked are the per-participant scores of the unattacked
	// and attacked runs, indexed by participant id.
	Clean    []float64
	Attacked []float64
	// AttackerDelta is the mean absolute score change over the attackers;
	// AttackerChange the mean relative change ((after−before)/|before|,
	// clipped to ±5, change magnitude itself for a near-zero baseline).
	AttackerDelta  float64
	AttackerChange float64
	// HonestSpearman / HonestKendall correlate the honest participants'
	// clean and attacked scores; 1 means the attack left honest ranking
	// untouched.
	HonestSpearman float64
	HonestKendall  float64
	// MaxRankDisplacement is the largest rank shift (over the full
	// leaderboard) suffered by any honest participant.
	MaxRankDisplacement int
	// DetectionRound is the first streamed round from which every
	// attacker scores strictly below every honest participant through the
	// end of the run; -1 means never detected. Always -1 for batch
	// schemes — they never see uploaded parameters, so update-space
	// attacks are structurally invisible to them.
	DetectionRound int
	// FinalAcc is the attacked federation's final test accuracy
	// (streaming cells only; batch schemes train no federation).
	FinalAcc float64
}

// Matrix is a completed attack-matrix run.
type Matrix struct {
	Cells []Cell
	// CleanAcc is the unattacked federation's test accuracy — the
	// baseline the streaming cells' FinalAcc degrades from.
	CleanAcc float64
}

// FederationRun bundles one simulated federation with its streaming
// valuation: the fedsim result, the engine's final scores (indexed by
// participant id), the cumulative score trajectory after each applied
// outcome, the gate transition log, and the final model's test accuracy.
type FederationRun struct {
	Result     *fedsim.Result
	Scores     []float64
	Trajectory [][]float64
	GateEvents []rounds.GateEvent
	FinalAcc   float64
}

// Run executes the full matrix. Clean baselines (one federation, one
// batch-score vector per scheme) are computed once and shared across
// cells.
func Run(cfg Config) (*Matrix, error) {
	if len(cfg.Attackers) == 0 {
		return nil, fmt.Errorf("attack: no attackers configured")
	}
	clean, err := RunFederation(cfg, cfg.Parts, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("attack: clean federation: %w", err)
	}
	cleanBatch := make(map[string][]float64, len(cfg.Schemes))
	for _, s := range cfg.Schemes {
		sc, err := s.Scores(cfg.Parts, cfg.Test)
		if err != nil {
			return nil, fmt.Errorf("attack: clean %s: %w", s.Name(), err)
		}
		cleanBatch[s.Name()] = sc
	}

	m := &Matrix{CleanAcc: clean.FinalAcc}
	for si, spec := range cfg.Specs {
		for ii, intensity := range cfg.Intensities {
			seed := cellSeed(cfg.Seed, si, ii)
			parts, tampers := Apply(cfg, spec, intensity, seed)

			for _, s := range cfg.Schemes {
				attacked, err := s.Scores(parts, cfg.Test)
				if err != nil {
					return nil, fmt.Errorf("attack: %s/%.2f/%s: %w", spec.Name, intensity, s.Name(), err)
				}
				cell := newCell(spec.Name, intensity, s.Name(), cfg.Attackers, cleanBatch[s.Name()], attacked)
				cell.DetectionRound = -1
				m.Cells = append(m.Cells, cell)
			}

			run, err := RunFederation(cfg, parts, tampers, nil)
			if err != nil {
				return nil, fmt.Errorf("attack: %s/%.2f/stream: %w", spec.Name, intensity, err)
			}
			cell := newCell(spec.Name, intensity, StreamScheme, cfg.Attackers, clean.Scores, run.Scores)
			cell.DetectionRound = detectionRound(run.Trajectory, cfg.Attackers, len(cfg.Parts))
			cell.FinalAcc = run.FinalAcc
			m.Cells = append(m.Cells, cell)
		}
	}
	return m, nil
}

// Apply materializes one cell's attack: the (possibly poisoned)
// participant list and the tamper map for fedsim. Honest participants are
// shared with cfg.Parts; attacked ones are fresh copies.
func Apply(cfg Config, spec Spec, intensity float64, seed int64) ([]*fl.Participant, map[int]fl.UpdateTamper) {
	parts := cfg.Parts
	if spec.Data != nil {
		parts = spec.Data(parts, cfg.Attackers, intensity, rand.New(rand.NewSource(seed)))
	}
	var tampers map[int]fl.UpdateTamper
	if spec.Update != nil {
		tampers = spec.Update(cfg.Attackers, intensity, seed+1)
	}
	return parts, tampers
}

// RunFederation simulates one federation over parts with the given
// update tampers, streaming every round through a fresh rounds.Engine via
// the ContAvg selector. A nil gate scores the stream without ever
// excluding anyone (the ungated baseline); a non-nil gate closes the
// ContAvg defense loop.
func RunFederation(cfg Config, parts []*fl.Participant, tampers map[int]fl.UpdateTamper, gate *rounds.GateConfig) (*FederationRun, error) {
	model, err := nn.New(cfg.Enc.Width(), cfg.Model)
	if err != nil {
		return nil, err
	}
	evalX, evalY := cfg.Enc.EncodeTable(cfg.Test)
	eng, err := rounds.New(rounds.Config{
		Model: model,
		EvalX: evalX,
		EvalY: evalY,
		// Between-round truncation off: every round is scored, so the
		// detection-latency trajectory has one entry per round.
		Epsilon:      -1,
		Permutations: cfg.Permutations,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		Gate:         gate,
	})
	if err != nil {
		return nil, err
	}
	res, err := fedsim.Run(cfg.Enc, parts, cfg.Test, fedsim.Config{
		Rounds:      cfg.Rounds,
		LocalEpochs: cfg.LocalEpochs,
		Model:       cfg.Model,
		Seed:        cfg.Seed,
		Tampers:     tampers,
		Selector:    &rounds.ContAvg{Engine: eng},
	})
	if err != nil {
		return nil, err
	}
	traj, err := trajectory(eng, len(cfg.Parts))
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(cfg.Parts))
	copy(scores, eng.Snapshot().Scores)
	ok := res.Model.CountCorrect(evalX, evalY)
	return &FederationRun{
		Result:     res,
		Scores:     scores,
		Trajectory: traj,
		GateEvents: eng.GateEvents(),
		FinalAcc:   float64(ok) / float64(len(evalX)),
	}, nil
}

// newCell computes the distortion metrics between a clean and an attacked
// score vector.
func newCell(attack string, intensity float64, scheme string, attackers []int, clean, attacked []float64) Cell {
	n := len(clean)
	if len(attacked) > n {
		n = len(attacked)
	}
	cl, at := padTo(clean, n), padTo(attacked, n)
	isAtt := make([]bool, n)
	for _, id := range attackers {
		if id >= 0 && id < n {
			isAtt[id] = true
		}
	}

	cell := Cell{Attack: attack, Intensity: intensity, Scheme: scheme, Clean: cl, Attacked: at}
	for _, id := range attackers {
		cell.AttackerDelta += at[id] - cl[id]
		cell.AttackerChange += relChange(cl[id], at[id])
	}
	cell.AttackerDelta /= float64(len(attackers))
	cell.AttackerChange /= float64(len(attackers))

	var honestClean, honestAttacked []float64
	rankClean, rankAttacked := rankPositions(cl), rankPositions(at)
	for i := 0; i < n; i++ {
		if isAtt[i] {
			continue
		}
		honestClean = append(honestClean, cl[i])
		honestAttacked = append(honestAttacked, at[i])
		if d := rankClean[i] - rankAttacked[i]; d > cell.MaxRankDisplacement {
			cell.MaxRankDisplacement = d
		} else if -d > cell.MaxRankDisplacement {
			cell.MaxRankDisplacement = -d
		}
	}
	cell.HonestSpearman = stats.Spearman(honestClean, honestAttacked)
	cell.HonestKendall = stats.Kendall(honestClean, honestAttacked)
	return cell
}

// rankPositions maps participant index → leaderboard position (0 = top
// score), deterministic under ties.
func rankPositions(scores []float64) []int {
	pos := make([]int, len(scores))
	for rank, idx := range stats.ArgsortDesc(scores) {
		pos[idx] = rank
	}
	return pos
}

// trajectory replays the engine's applied outcome payloads into the
// cumulative per-round score trajectory (one row per applied outcome,
// each row a full n-wide score vector).
func trajectory(eng *rounds.Engine, n int) ([][]float64, error) {
	cur := make([]float64, n)
	var traj [][]float64
	for _, p := range eng.Payloads() {
		out, err := rounds.DecodeOutcome(p)
		if err != nil {
			return nil, err
		}
		if !out.Skipped {
			for i, id := range out.IDs {
				if id >= 0 && id < n {
					cur[id] += out.Deltas[i]
				}
			}
		}
		row := make([]float64, n)
		copy(row, cur)
		traj = append(traj, row)
	}
	return traj, nil
}

// detectionRound returns the first trajectory row from which every
// attacker scores strictly below every honest participant through the end
// of the run, or -1 if that never stabilizes.
func detectionRound(traj [][]float64, attackers []int, n int) int {
	isAtt := make([]bool, n)
	for _, id := range attackers {
		if id >= 0 && id < n {
			isAtt[id] = true
		}
	}
	det := -1
	for t := len(traj) - 1; t >= 0; t-- {
		if !separated(traj[t], isAtt) {
			break
		}
		det = t
	}
	return det
}

// separated reports whether every attacker score is strictly below every
// honest score.
func separated(scores []float64, isAtt []bool) bool {
	maxAtt, minHon := 0.0, 0.0
	haveAtt, haveHon := false, false
	for i, s := range scores {
		if isAtt[i] {
			if !haveAtt || s > maxAtt {
				maxAtt, haveAtt = s, true
			}
		} else if !haveHon || s < minHon {
			minHon, haveHon = s, true
		}
	}
	return haveAtt && haveHon && maxAtt < minHon
}

// relChange is (after−before)/|before| clipped to ±5, falling back to the
// clipped change itself when the baseline is near zero (scores start at 0,
// so an unclipped ratio against an epsilon baseline would be meaningless).
func relChange(before, after float64) float64 {
	const eps = 1e-9
	den := before
	if den < 0 {
		den = -den
	}
	if den < eps {
		return stats.Clip(after-before, -5, 5)
	}
	return stats.Clip((after-before)/den, -5, 5)
}

// padTo returns xs zero-extended to length n.
func padTo(xs []float64, n int) []float64 {
	out := make([]float64, n)
	copy(out, xs)
	return out
}

// cellSeed derives one cell's seed from the matrix seed and grid position
// (SplitMix64-style), so inserting a spec or intensity does not reshuffle
// the other cells' randomness.
func cellSeed(seed int64, spec, intensity int) int64 {
	z := uint64(seed) + uint64(spec+1)*0x9E3779B97F4A7C15 + uint64(intensity+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Render prints the matrix as one row per cell, most-distorted first
// within each attack (cells keep grid order across attacks).
func (m *Matrix) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "attack\tintensity\tscheme\tattacker Δ\trel change\thonest ρ\thonest τ\tmax rank shift\tdetected@\tfinal acc\n")
	for _, c := range m.Cells {
		det := "-"
		if c.Scheme == StreamScheme {
			if c.DetectionRound >= 0 {
				det = fmt.Sprintf("r%d", c.DetectionRound)
			} else {
				det = "never"
			}
		}
		acc := "-"
		if c.Scheme == StreamScheme {
			acc = fmt.Sprintf("%.3f", c.FinalAcc)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%s\t%+.4f\t%+.2f\t%.3f\t%.3f\t%d\t%s\t%s\n",
			c.Attack, c.Intensity, c.Scheme, c.AttackerDelta, c.AttackerChange,
			c.HonestSpearman, c.HonestKendall, c.MaxRankDisplacement, det, acc)
	}
	fmt.Fprintf(tw, "clean federation accuracy\t%.3f\n", m.CleanAcc)
	tw.Flush()
}

// Sorted returns the cells ordered by attacker score suppression
// (most-negative AttackerDelta first) — the "which attacks does the
// estimator punish hardest" view.
func (m *Matrix) Sorted() []Cell {
	out := make([]Cell, len(m.Cells))
	copy(out, m.Cells)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AttackerDelta < out[j].AttackerDelta })
	return out
}
