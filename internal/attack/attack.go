// Package attack is the adversarial-robustness harness: it runs an attack
// matrix — attack kind × intensity × valuation scheme — against a seeded
// federation and measures how far each contribution estimator's scores are
// distorted, both on the batch valuation path (internal/valuation, which
// retrains coalitions from participant data) and the streaming per-round
// path (internal/rounds, which scores the updates clients actually
// submitted).
//
// The two paths see different attack surfaces, and the harness reports
// that honestly: data-space attacks (label flipping, low-quality labels,
// replication) distort both paths, but update-space attacks (free-riders,
// scaling, sign-flips, collusion) are invisible to the batch path — it
// never looks at uploaded parameters, so its clean and attacked scores are
// identical by construction. Only the streaming path, scoring the real
// upload stream, observes them; detection latency is therefore a
// streaming-only metric.
//
// Determinism contract: a Matrix is a pure function of its Config. Every
// random choice — data poisoning, dropout churn, tamper noise, permutation
// sampling — derives from Config.Seed, and the streaming engine's scores
// are bit-identical at any Workers count, so the whole matrix reproduces
// bit-for-bit from the seed on any machine.
package attack

import (
	"math/rand"

	"repro/internal/fl"
)

// Spec is one attack kind. Either hook (or both — they compose) may be
// set: Data poisons participants' local datasets before training,
// Update rewrites what attackers upload after training.
type Spec struct {
	Name string
	// Data returns a participant list with the attackers' data poisoned at
	// the given intensity (the honest entries are shared, the attacked
	// entries are fresh copies). Nil for pure update-space attacks.
	Data func(parts []*fl.Participant, attackers []int, intensity float64, r *rand.Rand) []*fl.Participant
	// Update returns the tamper map for fedsim.Config.Tampers. Nil for
	// pure data-space attacks.
	Update func(attackers []int, intensity float64, seed int64) map[int]fl.UpdateTamper
}

// dataAttack lifts one of fl's per-participant transforms to a Spec.Data
// hook over the attacker set. Each attacker's poisoning draws from the
// shared *rand.Rand in attacker order, so the cell seed fixes every draw.
func dataAttack(f func(p *fl.Participant, ratio float64, r *rand.Rand) *fl.Participant) func([]*fl.Participant, []int, float64, *rand.Rand) []*fl.Participant {
	return func(parts []*fl.Participant, attackers []int, intensity float64, r *rand.Rand) []*fl.Participant {
		out := parts
		for _, id := range attackers {
			for _, p := range parts {
				if p.ID == id {
					out = fl.ReplaceParticipant(out, f(p, intensity, r))
					break
				}
			}
		}
		return out
	}
}

// LabelFlip is the label-flipping poisoning attack; intensity is the
// flipped fraction of each attacker's rows.
func LabelFlip() Spec {
	return Spec{Name: "label-flip", Data: dataAttack(fl.FlipLabels)}
}

// LowQuality re-draws labels from the attacker's own label distribution;
// intensity is the affected fraction.
func LowQuality() Spec {
	return Spec{Name: "low-quality", Data: dataAttack(fl.InjectLowQuality)}
}

// Replication duplicates a sample of the attacker's rows; intensity is the
// duplicated fraction.
func Replication() Spec {
	return Spec{Name: "replication", Data: dataAttack(fl.Replicate)}
}

// updateAttack builds a Spec.Update hook giving each attacker its own
// tamper from mk, seeded per-attacker so independent attackers draw
// independent noise.
func updateAttack(mk func(seed int64) fl.UpdateTamper) func([]int, float64, int64) map[int]fl.UpdateTamper {
	return func(attackers []int, _ float64, seed int64) map[int]fl.UpdateTamper {
		out := make(map[int]fl.UpdateTamper, len(attackers))
		for i, id := range attackers {
			out[id] = mk(seed + int64(i)*7919)
		}
		return out
	}
}

// FreeRide is a free-rider attack in the given mode. For FreeRideNoise the
// cell intensity is the noise standard deviation; the other modes ignore
// intensity.
func FreeRide(mode fl.FreeRiderMode) Spec {
	name := map[fl.FreeRiderMode]string{
		fl.FreeRideZero:  "free-ride-zero",
		fl.FreeRideStale: "free-ride-stale",
		fl.FreeRideNoise: "free-ride-noise",
	}[mode]
	return Spec{Name: name, Update: func(attackers []int, intensity float64, seed int64) map[int]fl.UpdateTamper {
		return updateAttack(func(s int64) fl.UpdateTamper {
			return &fl.FreeRider{Mode: mode, Std: intensity, Seed: s}
		})(attackers, intensity, seed)
	}}
}

// ScalingAttack amplifies each attacker's update delta; intensity is the
// scale factor.
func ScalingAttack() Spec {
	return Spec{Name: "scaling", Update: func(attackers []int, intensity float64, seed int64) map[int]fl.UpdateTamper {
		return updateAttack(func(int64) fl.UpdateTamper {
			return &fl.Scaling{Factor: intensity}
		})(attackers, intensity, seed)
	}}
}

// SignFlipAttack inverts (and scales by intensity; 0 means 1) each
// attacker's update delta.
func SignFlipAttack() Spec {
	return Spec{Name: "sign-flip", Update: func(attackers []int, intensity float64, seed int64) map[int]fl.UpdateTamper {
		return updateAttack(func(int64) fl.UpdateTamper {
			return &fl.SignFlip{Factor: intensity}
		})(attackers, intensity, seed)
	}}
}

// Collusion is a coordinated noise free-rider group: every attacker shares
// one seed, so their per-round noise is identical and adds coherently
// instead of averaging out. Intensity is the shared noise std.
func Collusion() Spec {
	return Spec{Name: "collusion", Update: func(attackers []int, intensity float64, seed int64) map[int]fl.UpdateTamper {
		tampers := fl.Colluders(len(attackers), seed, func(s int64) fl.UpdateTamper {
			return &fl.FreeRider{Mode: fl.FreeRideNoise, Std: intensity, Seed: s}
		})
		out := make(map[int]fl.UpdateTamper, len(attackers))
		for i, id := range attackers {
			out[id] = tampers[i]
		}
		return out
	}}
}

// LabelFlipAndScaling composes a data-space and an update-space attack:
// the attacker trains on fully flipped labels and amplifies the resulting
// (actively harmful) delta by the cell intensity.
func LabelFlipAndScaling() Spec {
	return Spec{
		Name: "flip+scale",
		Data: func(parts []*fl.Participant, attackers []int, _ float64, r *rand.Rand) []*fl.Participant {
			return dataAttack(fl.FlipLabels)(parts, attackers, 1, r)
		},
		Update: ScalingAttack().Update,
	}
}
