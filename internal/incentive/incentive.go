// Package incentive builds a revenue-allocation mechanism on top of CTFL's
// contribution scores — the "systematic incentive mechanism leveraging the
// capabilities of CTFL" that the paper names as future work. It provides:
//
//   - payout rules that turn a score vector and a revenue pool into
//     budget-balanced payments (proportional, floor-guaranteed, and
//     softmax-tempered variants);
//   - a Ledger that settles multiple epochs, tracks per-participant
//     cumulative payouts, and maintains an exponentially decayed
//     reputation from score history;
//   - free-rider and cheater detection hooks combining the micro/macro
//     divergence (replication signal) with the loss ratio (flip signal).
package incentive

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// PayoutRule converts non-negative contribution scores into shares of a
// revenue pool. Implementations must return shares that are non-negative
// and sum to 1 (budget balance) whenever at least one score is positive.
type PayoutRule interface {
	Name() string
	Shares(scores []float64) []float64
}

// Proportional pays each participant score_i / sum(scores) — the natural
// reading of group rationality: credit mass maps linearly to money.
type Proportional struct{}

// Name implements PayoutRule.
func (Proportional) Name() string { return "proportional" }

// Shares implements PayoutRule.
func (Proportional) Shares(scores []float64) []float64 {
	out := clampNonNegative(scores)
	if stats.Sum(out) == 0 {
		return uniform(len(scores))
	}
	stats.Normalize(out)
	return out
}

// Floored guarantees every participant a minimum share (participation
// reward) and distributes the remainder proportionally — the standard fix
// for cold-start clients whose data has not matched test instances yet.
type Floored struct {
	// MinShare per participant; n*MinShare must be <= 1.
	MinShare float64
}

// Name implements PayoutRule.
func (f Floored) Name() string { return fmt.Sprintf("floored(%.3f)", f.MinShare) }

// Shares implements PayoutRule.
func (f Floored) Shares(scores []float64) []float64 {
	n := len(scores)
	if f.MinShare < 0 || float64(n)*f.MinShare > 1 {
		panic(fmt.Sprintf("incentive: invalid MinShare %v for %d participants", f.MinShare, n))
	}
	base := Proportional{}.Shares(scores)
	rest := 1 - float64(n)*f.MinShare
	for i := range base {
		base[i] = f.MinShare + rest*base[i]
	}
	return base
}

// Tempered applies a softmax with temperature T to the scores: large T
// flattens payouts toward uniform (solidarity), small T sharpens toward
// winner-take-most (competition).
type Tempered struct {
	T float64
}

// Name implements PayoutRule.
func (t Tempered) Name() string { return fmt.Sprintf("tempered(%.2f)", t.T) }

// Shares implements PayoutRule.
func (t Tempered) Shares(scores []float64) []float64 {
	if t.T <= 0 {
		panic("incentive: temperature must be positive")
	}
	out := make([]float64, len(scores))
	lo, hi := stats.MinMax(scores)
	if hi == lo {
		return uniform(len(scores))
	}
	for i, s := range scores {
		out[i] = math.Exp((s - hi) / (t.T * (hi - lo)))
	}
	stats.Normalize(out)
	return out
}

func clampNonNegative(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = x
		}
	}
	return out
}

func uniform(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(n)
	}
	return out
}

// Epoch is one settlement period's inputs.
type Epoch struct {
	// Micro and Macro are CTFL's score vectors for the period.
	Micro, Macro []float64
	// LossRatio is the per-participant loss share (Suspicion report).
	LossRatio []float64
	// Revenue is the pool to distribute.
	Revenue float64
}

// Settlement is one epoch's outcome.
type Settlement struct {
	Payouts []float64
	Flags   []Flag
}

// Flag marks a participant for review.
type Flag struct {
	Participant int
	Reason      string
}

// Ledger settles epochs and accumulates reputation.
type Ledger struct {
	// Rule is the payout rule applied to micro scores. Defaults to
	// Proportional.
	Rule PayoutRule
	// ReputationDecay in (0,1]: reputation_t = decay*reputation_{t-1} +
	// (1-decay)*share_t. Defaults to 0.8.
	ReputationDecay float64
	// ReplicationTolerance is the micro-minus-macro share divergence above
	// which a replication flag is raised. Defaults to 0.15.
	ReplicationTolerance float64
	// FlipTolerance is the loss-ratio threshold for a label-flip flag.
	// Defaults to 0.5.
	FlipTolerance float64

	n          int
	reputation []float64
	cumulative []float64
	epochs     int
}

// NewLedger creates a ledger for n participants.
func NewLedger(n int) *Ledger {
	return &Ledger{
		Rule:                 Proportional{},
		ReputationDecay:      0.8,
		ReplicationTolerance: 0.15,
		FlipTolerance:        0.5,
		n:                    n,
		reputation:           make([]float64, n),
		cumulative:           make([]float64, n),
	}
}

// Settle distributes the epoch's revenue and updates reputations. Flags are
// advisory: payouts are not withheld automatically (that policy belongs to
// the federation operator), but flagged shares are listed for review.
func (l *Ledger) Settle(e Epoch) (*Settlement, error) {
	if len(e.Micro) != l.n || len(e.Macro) != l.n {
		return nil, fmt.Errorf("incentive: epoch has %d/%d scores, ledger has %d participants",
			len(e.Micro), len(e.Macro), l.n)
	}
	if e.Revenue < 0 {
		return nil, fmt.Errorf("incentive: negative revenue %v", e.Revenue)
	}
	shares := l.Rule.Shares(e.Micro)
	s := &Settlement{Payouts: make([]float64, l.n)}
	for i := range shares {
		s.Payouts[i] = shares[i] * e.Revenue
		l.cumulative[i] += s.Payouts[i]
		l.reputation[i] = l.ReputationDecay*l.reputation[i] + (1-l.ReputationDecay)*shares[i]
	}

	microShare := Proportional{}.Shares(e.Micro)
	macroShare := Proportional{}.Shares(e.Macro)
	for i := 0; i < l.n; i++ {
		if microShare[i]-macroShare[i] > l.ReplicationTolerance {
			s.Flags = append(s.Flags, Flag{
				Participant: i,
				Reason: fmt.Sprintf("micro share %.3f exceeds macro share %.3f: possible data replication",
					microShare[i], macroShare[i]),
			})
		}
		if len(e.LossRatio) == l.n && e.LossRatio[i] > l.FlipTolerance {
			s.Flags = append(s.Flags, Flag{
				Participant: i,
				Reason:      fmt.Sprintf("loss ratio %.2f above %.2f: possible label flipping", e.LossRatio[i], l.FlipTolerance),
			})
		}
	}
	l.epochs++
	return s, nil
}

// Reputation returns the decayed reputation vector (copy).
func (l *Ledger) Reputation() []float64 {
	return append([]float64(nil), l.reputation...)
}

// Cumulative returns total payouts so far (copy).
func (l *Ledger) Cumulative() []float64 {
	return append([]float64(nil), l.cumulative...)
}

// Epochs returns the number of settled epochs.
func (l *Ledger) Epochs() int { return l.epochs }

// FreeRiders returns participants whose reputation sits below frac of the
// uniform share after at least minEpochs settlements — clients that keep
// participating without contributing matched data.
func (l *Ledger) FreeRiders(frac float64, minEpochs int) []int {
	if l.epochs < minEpochs {
		return nil
	}
	threshold := frac / float64(l.n)
	var out []int
	for i, r := range l.reputation {
		if r < threshold {
			out = append(out, i)
		}
	}
	return out
}
