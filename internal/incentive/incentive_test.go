package incentive

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func assertBudgetBalanced(t *testing.T, shares []float64, name string) {
	t.Helper()
	sum := 0.0
	for _, s := range shares {
		if s < -1e-12 {
			t.Fatalf("%s produced negative share %v", name, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("%s shares sum to %v", name, sum)
	}
}

func TestProportionalShares(t *testing.T) {
	got := Proportional{}.Shares([]float64{0.1, 0.3})
	if math.Abs(got[0]-0.25) > 1e-12 || math.Abs(got[1]-0.75) > 1e-12 {
		t.Fatalf("shares = %v", got)
	}
	// Negative scores are clamped before normalizing.
	got = Proportional{}.Shares([]float64{-0.5, 0.5})
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("negative clamp: %v", got)
	}
	// All-zero falls back to uniform.
	got = Proportional{}.Shares([]float64{0, 0, 0})
	for _, s := range got {
		if math.Abs(s-1.0/3) > 1e-12 {
			t.Fatalf("zero fallback: %v", got)
		}
	}
}

func TestFlooredShares(t *testing.T) {
	f := Floored{MinShare: 0.1}
	got := f.Shares([]float64{0, 1, 1})
	if got[0] != 0.1 {
		t.Fatalf("floor not applied: %v", got)
	}
	assertBudgetBalanced(t, got, f.Name())
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible floor should panic")
		}
	}()
	Floored{MinShare: 0.6}.Shares([]float64{1, 1})
}

func TestTemperedShares(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.7}
	hot := Tempered{T: 10}.Shares(scores)
	cold := Tempered{T: 0.05}.Shares(scores)
	assertBudgetBalanced(t, hot, "tempered hot")
	assertBudgetBalanced(t, cold, "tempered cold")
	// High temperature flattens; low temperature sharpens.
	if hot[2]-hot[0] > cold[2]-cold[0] {
		t.Fatalf("temperature direction wrong: hot %v cold %v", hot, cold)
	}
	// Constant scores → uniform.
	u := Tempered{T: 1}.Shares([]float64{0.4, 0.4})
	if u[0] != 0.5 {
		t.Fatalf("constant scores: %v", u)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive temperature should panic")
		}
	}()
	Tempered{}.Shares(scores)
}

func TestPropertyAllRulesBudgetBalanced(t *testing.T) {
	rules := []PayoutRule{Proportional{}, Floored{MinShare: 0.05}, Tempered{T: 1}}
	f := func(seed int64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(8)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = r.Float64()
		}
		for _, rule := range rules {
			shares := rule.Shares(scores)
			sum := 0.0
			for _, s := range shares {
				if s < -1e-12 {
					return false
				}
				sum += s
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerSettlement(t *testing.T) {
	l := NewLedger(3)
	s, err := l.Settle(Epoch{
		Micro:   []float64{0.2, 0.2, 0.6},
		Macro:   []float64{0.3, 0.3, 0.4},
		Revenue: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Sum(s.Payouts)-1000) > 1e-6 {
		t.Fatalf("payouts sum to %v", stats.Sum(s.Payouts))
	}
	if math.Abs(s.Payouts[2]-600) > 1e-6 {
		t.Fatalf("participant 2 payout = %v, want 600", s.Payouts[2])
	}
	if l.Epochs() != 1 {
		t.Fatalf("epochs = %d", l.Epochs())
	}
	cum := l.Cumulative()
	if math.Abs(cum[2]-600) > 1e-6 {
		t.Fatalf("cumulative = %v", cum)
	}
}

func TestLedgerFlagsReplicationAndFlip(t *testing.T) {
	l := NewLedger(3)
	s, err := l.Settle(Epoch{
		// Participant 0's micro share (0.6) far exceeds its macro share
		// (0.2): replication signature.
		Micro:     []float64{0.6, 0.2, 0.2},
		Macro:     []float64{0.2, 0.4, 0.4},
		LossRatio: []float64{0.1, 0.8, 0.1}, // participant 1: flip signature
		Revenue:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var repl, flip bool
	for _, f := range s.Flags {
		if f.Participant == 0 && strings.Contains(f.Reason, "replication") {
			repl = true
		}
		if f.Participant == 1 && strings.Contains(f.Reason, "flipping") {
			flip = true
		}
	}
	if !repl || !flip {
		t.Fatalf("flags missing: %+v", s.Flags)
	}
}

func TestLedgerValidation(t *testing.T) {
	l := NewLedger(2)
	if _, err := l.Settle(Epoch{Micro: []float64{1}, Macro: []float64{1, 1}, Revenue: 1}); err == nil {
		t.Fatal("score length mismatch should error")
	}
	if _, err := l.Settle(Epoch{Micro: []float64{1, 1}, Macro: []float64{1, 1}, Revenue: -5}); err == nil {
		t.Fatal("negative revenue should error")
	}
}

func TestReputationDecayAndFreeRiders(t *testing.T) {
	l := NewLedger(3)
	l.ReputationDecay = 0.5
	for e := 0; e < 5; e++ {
		if _, err := l.Settle(Epoch{
			Micro:   []float64{0.5, 0.5, 0.0}, // participant 2 never contributes
			Macro:   []float64{0.5, 0.5, 0.0},
			Revenue: 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep := l.Reputation()
	if rep[2] >= rep[0] {
		t.Fatalf("free rider reputation not lower: %v", rep)
	}
	riders := l.FreeRiders(0.5, 3)
	if len(riders) != 1 || riders[0] != 2 {
		t.Fatalf("free riders = %v, want [2]", riders)
	}
	// Before minEpochs nothing is reported.
	fresh := NewLedger(3)
	if got := fresh.FreeRiders(0.5, 1); got != nil {
		t.Fatalf("fresh ledger reported riders: %v", got)
	}
}

func TestRuleNames(t *testing.T) {
	if (Proportional{}).Name() != "proportional" {
		t.Fatal("proportional name")
	}
	if !strings.Contains((Floored{MinShare: 0.1}).Name(), "floored") {
		t.Fatal("floored name")
	}
	if !strings.Contains((Tempered{T: 2}).Name(), "tempered") {
		t.Fatal("tempered name")
	}
}
