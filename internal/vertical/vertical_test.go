package vertical

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

// fixture: 4 binary features; party X owns f0,f1, party Y owns f2,f3.
// Rules (layer 0): node0 conj {f0=t} (+1), node1 conj {f0=t, f2=t} (+1),
// node2 conj {f2=t} (-1), node3 dead.
func buildFixture(t *testing.T) (*rules.Set, *Partition, *dataset.Schema) {
	t.Helper()
	schema := &dataset.Schema{Name: "v"}
	for _, n := range []string{"f0", "f1", "f2", "f3"} {
		schema.Features = append(schema.Features, dataset.Feature{
			Name: n, Kind: dataset.Discrete, Categories: []string{"t", "f"},
		})
	}
	enc, err := dataset.NewEncoder(schema, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	in := enc.Width() // 4 features × 3 predicates = 12; f0=t at 0, f2=t at 6
	p[0*in+0] = 1
	p[1*in+0] = 1
	p[1*in+6] = 1
	p[2*in+6] = 1
	head := 4 * in
	p[head+0] = 1
	p[head+1] = 1
	p[head+2] = -1
	p[head+4] = -0.01 // bias: empty vote → negative
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	rs := rules.Extract(m, enc)

	part, err := NewPartition(schema, []*Party{
		{ID: 0, Name: "X", Features: []int{0, 1}},
		{ID: 1, Name: "Y", Features: []int{2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs, part, schema
}

func TestNewPartitionValidation(t *testing.T) {
	_, _, schema := buildFixture(t)
	if _, err := NewPartition(schema, []*Party{{Name: "X", Features: []int{0, 1, 2}}}); err == nil {
		t.Fatal("uncovered feature should error")
	}
	if _, err := NewPartition(schema, []*Party{
		{Name: "X", Features: []int{0, 1, 2, 3}},
		{Name: "Y", Features: []int{3}},
	}); err == nil {
		t.Fatal("doubly-owned feature should error")
	}
	if _, err := NewPartition(schema, []*Party{{Name: "X", Features: []int{0, 1, 2, 9}}}); err == nil {
		t.Fatal("out-of-range feature should error")
	}
}

func TestRuleShares(t *testing.T) {
	rs, part, _ := buildFixture(t)
	e, err := NewEstimator(rs, part)
	if err != nil {
		t.Fatal(err)
	}
	// node0 {f0}: all X. node1 {f0, f2}: split 50/50. node2 {f2}: all Y.
	if s := e.ruleShare[0]; s[0] != 1 || s[1] != 0 {
		t.Fatalf("rule0 shares = %v", s)
	}
	if s := e.ruleShare[1]; math.Abs(s[0]-0.5) > 1e-12 || math.Abs(s[1]-0.5) > 1e-12 {
		t.Fatalf("rule1 shares = %v", s)
	}
	if s := e.ruleShare[2]; s[0] != 0 || s[1] != 1 {
		t.Fatalf("rule2 shares = %v", s)
	}
}

func tRow(f0, f1, f2, f3 float64, label int) dataset.Instance {
	return dataset.Instance{Values: []float64{f0, f1, f2, f3}, Label: label}
}

func TestTraceCreditSplit(t *testing.T) {
	rs, part, schema := buildFixture(t)
	e, err := NewEstimator(rs, part)
	if err != nil {
		t.Fatal(err)
	}
	const yes, no = 0, 1
	test := &dataset.Table{Schema: schema, Instances: []dataset.Instance{
		// te0: f0=t only → rules 0,1? rule1 needs f2=t too → only rule0.
		// score = +1 → pred 1, label 1: TP credited 100% to X.
		tRow(yes, no, no, no, 1),
		// te1: f0=t, f2=t → rules 0,1 (+2) and rule2 (-1): score +1 → pred 1,
		// label 1: credit = (w0·X + w1·(X/2+Y/2))/(w0+w1) → X 0.75, Y 0.25.
		tRow(yes, no, yes, no, 1),
		// te2: f2=t only → rule2 (-1): pred 0, label 0: TN credit all Y.
		tRow(no, no, yes, no, 0),
		// te3: nothing → bias pred 0, label 0: correct but uncovered.
		tRow(no, no, no, no, 0),
	}}
	res := e.Trace(test)
	if res.Accuracy() != 1 {
		t.Fatalf("accuracy = %v", res.Accuracy())
	}
	if res.Uncovered != 1 {
		t.Fatalf("uncovered = %d", res.Uncovered)
	}
	// Per-instance credit 1/4 each. X: te0 (1/4) + te1 (1/4·0.75) = 0.4375.
	// Y: te1 (1/4·0.25) + te2 (1/4) = 0.3125.
	want := []float64{0.4375, 0.3125}
	got := res.Scores()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("scores = %v, want %v", got, want)
		}
	}
	// Group rationality: credit sums to accuracy minus uncovered share.
	sum := stats.Sum(got)
	wantSum := res.Accuracy() - float64(res.Uncovered)/float64(res.TestSize)
	if math.Abs(sum-wantSum) > 1e-12 {
		t.Fatalf("credit sum %v, want %v", sum, wantSum)
	}
}

func TestTraceBlameSide(t *testing.T) {
	rs, part, schema := buildFixture(t)
	e, err := NewEstimator(rs, part)
	if err != nil {
		t.Fatal(err)
	}
	const yes, no = 0, 1
	test := &dataset.Table{Schema: schema, Instances: []dataset.Instance{
		// f2=t, label 1 → rule2 fires, pred 0: FN blamed on Y.
		tRow(no, no, yes, no, 1),
	}}
	res := e.Trace(test)
	if res.Accuracy() != 0 {
		t.Fatalf("accuracy = %v", res.Accuracy())
	}
	if res.Blame[1] <= 0 || res.Blame[0] != 0 {
		t.Fatalf("blame = %v, want all on Y", res.Blame)
	}
	if stats.Sum(res.Credit) != 0 {
		t.Fatalf("credit should be zero: %v", res.Credit)
	}
}

func TestZeroElementParty(t *testing.T) {
	rs, _, schema := buildFixture(t)
	// Three-way split where party Z owns only f1,f3 — features absent from
	// every live rule.
	part, err := NewPartition(schema, []*Party{
		{ID: 0, Name: "X", Features: []int{0}},
		{ID: 1, Name: "Y", Features: []int{2}},
		{ID: 2, Name: "Z", Features: []int{1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(rs, part)
	if err != nil {
		t.Fatal(err)
	}
	const yes, no = 0, 1
	test := &dataset.Table{Schema: schema, Instances: []dataset.Instance{
		tRow(yes, yes, no, no, 1),
		tRow(no, no, yes, yes, 0),
	}}
	res := e.Trace(test)
	if res.Credit[2] != 0 || res.Blame[2] != 0 {
		t.Fatalf("party Z should score zero: credit %v blame %v", res.Credit, res.Blame)
	}
}

func TestSymmetryMirroredParties(t *testing.T) {
	// Two parties owning structurally mirrored features of a symmetric rule
	// set must earn equal credit on a symmetric test set.
	rs, part, schema := buildFixture(t)
	e, err := NewEstimator(rs, part)
	if err != nil {
		t.Fatal(err)
	}
	const yes, no = 0, 1
	test := &dataset.Table{Schema: schema, Instances: []dataset.Instance{
		tRow(yes, no, no, no, 1), // all-X credit
		tRow(no, no, yes, no, 0), // all-Y credit
	}}
	res := e.Trace(test)
	if math.Abs(res.Credit[0]-res.Credit[1]) > 1e-12 {
		t.Fatalf("mirrored parties differ: %v", res.Credit)
	}
}

func TestSkipConnectionShares(t *testing.T) {
	// Two-layer model: a layer-1 node referencing a layer-0 node through the
	// skip connection must inherit the referenced node's ownership shares.
	schema := &dataset.Schema{Name: "v2"}
	for _, n := range []string{"f0", "f1"} {
		schema.Features = append(schema.Features, dataset.Feature{
			Name: n, Kind: dataset.Discrete, Categories: []string{"t", "f"},
		})
	}
	enc, err := dataset.NewEncoder(schema, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{2, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	in := enc.Width() // 6 predicates; f0=t at 0, f1=t at 3
	// layer0 node0 (conj): f0=t ∧ f1=t → shares split X/Y 50/50.
	p[0*in+0] = 1
	p[0*in+3] = 1
	// layer1 (input width 6+2) node0 (conj): operands = predicate f0=t and
	// layer0 node0 (index 6).
	l1 := 2 * in
	p[l1+0*8+0] = 1
	p[l1+0*8+6] = 1
	head := l1 + 2*8
	p[head+0] = 1 // layer0 node0 live
	p[head+2] = 1 // layer1 node0 live
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	rs := rules.Extract(m, enc)
	part, err := NewPartition(schema, []*Party{
		{ID: 0, Name: "X", Features: []int{0}},
		{ID: 1, Name: "Y", Features: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(rs, part)
	if err != nil {
		t.Fatal(err)
	}
	// Layer-1 rule (index 2): operands f0=t (X) and node0 (X/Y 50/50) →
	// shares X 0.75, Y 0.25.
	var found bool
	for _, r := range rs.Rules {
		if r.Layer == 1 {
			s := e.ruleShare[r.Index]
			if math.Abs(s[0]-0.75) > 1e-12 || math.Abs(s[1]-0.25) > 1e-12 {
				t.Fatalf("layer-1 shares = %v, want [0.75 0.25]", s)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no live layer-1 rule extracted")
	}
}

func TestEmptyTestTable(t *testing.T) {
	rs, part, schema := buildFixture(t)
	e, err := NewEstimator(rs, part)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Trace(&dataset.Table{Schema: schema})
	if res.Accuracy() != 0 || res.TestSize != 0 {
		t.Fatalf("empty trace = %+v", res)
	}
}

func TestEndToEndTrainedVertical(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	// Train on tic-tac-toe and split the board columns across three
	// parties (left / middle / right column owners).
	tab := dataset.TicTacToe()
	r := stats.NewRNG(6)
	train, test := tab.Split(r, 0.2)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := enc.EncodeTable(train)
	m, err := nn.New(enc.Width(), nn.Config{
		Hidden: []int{64}, Epochs: 40, Grafting: true, Seed: 3,
		L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xs, ys)
	rs := rules.Extract(m, enc)

	part, err := NewPartition(tab.Schema, []*Party{
		{ID: 0, Name: "left", Features: []int{0, 3, 6}},
		{ID: 1, Name: "middle", Features: []int{1, 4, 7}},
		{ID: 2, Name: "right", Features: []int{2, 5, 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(rs, part)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Trace(test)
	if res.Accuracy() < 0.85 {
		t.Fatalf("accuracy %v too low", res.Accuracy())
	}
	scores := res.Scores()
	t.Logf("vertical scores (left/middle/right columns): %v", scores)
	for i, s := range scores {
		if s <= 0 {
			t.Fatalf("party %d earned nothing: %v", i, scores)
		}
	}
	// The middle column participates in 4 of the 8 winning lines (vs 3 for
	// the side columns), so its feature owner should not be the weakest.
	if scores[1] < scores[0] && scores[1] < scores[2] {
		t.Fatalf("middle column should not rank last: %v", scores)
	}
	sum := stats.Sum(scores)
	wantSum := res.Accuracy() - float64(res.Uncovered)/float64(res.TestSize)
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("group rationality: %v vs %v", sum, wantSum)
	}
}
