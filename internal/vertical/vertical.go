// Package vertical extends CTFL to vertical federated learning — the
// paper's first-named future-work direction. In vertical FL the parties
// hold the SAME instances but DIFFERENT feature columns, so "whose data
// earned the credit" becomes "whose features power the rules that classify
// correctly". Contribution tracing transfers naturally:
//
//   - the federation trains one rule-based model over the joint feature
//     space (simulated centrally, as secure VFL training substrates are
//     orthogonal to valuation);
//   - every activated class-side rule of a correctly classified test
//     instance carries its importance weight as credit, split across the
//     parties proportionally to how many of the rule's predicates each
//     party owns;
//   - misclassified instances route the same split to the blame side,
//     giving the FP/FN analysis of Section IV-A.
//
// The binary-FL properties carry over and are tested: group rationality
// (credit sums to accuracy minus the share of predictions carried by no
// owned predicate), symmetry (two parties owning mirrored features score
// identically), and zero element (a party whose features never appear in an
// activated rule scores zero).
package vertical

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/rules"
)

// Party is one vertical-FL participant: a named owner of a set of feature
// columns.
type Party struct {
	ID   int
	Name string
	// Features lists schema feature indices the party owns.
	Features []int
}

// Partition maps every schema feature to exactly one party.
type Partition struct {
	Parties []*Party
	// owner[featureIdx] = party index
	owner []int
}

// NewPartition validates that the parties cover every feature exactly once.
func NewPartition(schema *dataset.Schema, parties []*Party) (*Partition, error) {
	owner := make([]int, schema.NumFeatures())
	for i := range owner {
		owner[i] = -1
	}
	for pi, p := range parties {
		for _, f := range p.Features {
			if f < 0 || f >= schema.NumFeatures() {
				return nil, fmt.Errorf("vertical: party %s claims feature %d outside schema", p.Name, f)
			}
			if owner[f] != -1 {
				return nil, fmt.Errorf("vertical: feature %d claimed by both %s and %s",
					f, parties[owner[f]].Name, p.Name)
			}
			owner[f] = pi
		}
	}
	for f, o := range owner {
		if o == -1 {
			return nil, fmt.Errorf("vertical: feature %d (%s) unowned", f, schema.Features[f].Name)
		}
	}
	return &Partition{Parties: parties, owner: owner}, nil
}

// OwnerOfFeature returns the party index owning schema feature f.
func (p *Partition) OwnerOfFeature(f int) int { return p.owner[f] }

// Estimator traces per-party contributions through rule ownership.
type Estimator struct {
	rs   *rules.Set
	part *Partition
	// ruleShare[ruleIdx][partyIdx] is the fraction of the rule's predicates
	// owned by each party (layer-0 predicates resolve to features; deeper
	// operands recurse into the referenced node's shares).
	ruleShare map[int][]float64
}

// NewEstimator precomputes each live rule's per-party ownership shares.
func NewEstimator(rs *rules.Set, part *Partition) (*Estimator, error) {
	e := &Estimator{rs: rs, part: part, ruleShare: map[int][]float64{}}
	enc := encoderOf(rs)
	n := len(part.Parties)

	// predOwner[predicateIdx] = party owning the predicate's feature.
	predOwner := make([]int, enc.Width())
	for f := 0; f < encSchema(rs).NumFeatures(); f++ {
		off, cnt := enc.FeatureOffset(f)
		for j := off; j < off+cnt; j++ {
			predOwner[j] = part.OwnerOfFeature(f)
		}
	}

	// Resolve shares layer by layer. Selected entries >= enc.Width() point
	// at previous-layer nodes (skip connections); their shares fold in as
	// one operand each. Rules are emitted in layer order, so referenced
	// nodes are already resolved when encountered.
	nodeShare := map[[2]int][]float64{} // {layer, node} -> shares
	for _, r := range rs.Rules {
		shares := make([]float64, n)
		total := 0.0
		for _, sel := range r.Selected {
			if sel < enc.Width() {
				shares[predOwner[sel]]++
				total++
				continue
			}
			sub, ok := nodeShare[[2]int{r.Layer - 1, sel - enc.Width()}]
			if !ok {
				// Referenced node is degenerate/dead; skip the operand.
				continue
			}
			for i, v := range sub {
				shares[i] += v
			}
			total++
		}
		if total > 0 {
			for i := range shares {
				shares[i] /= total
			}
		}
		nodeShare[[2]int{r.Layer, r.Node}] = shares
		e.ruleShare[r.Index] = shares
	}
	return e, nil
}

// Result is one vertical tracing pass.
type Result struct {
	NumParties int
	TestSize   int
	Correct    []bool
	// Credit[i] accumulates party i's share of correctly classified
	// instances; Blame[i] of misclassified ones. Both normalized by test
	// size so Credit sums to accuracy minus the uncovered share.
	Credit, Blame []float64
	// Uncovered counts predictions carried by no activated rule (pure
	// bias votes) — their credit is unassignable.
	Uncovered int
}

// Trace classifies the test table with the rule-based model and splits each
// instance's unit credit across parties through the activated class-side
// rules' ownership shares, weighted by rule importance.
func (e *Estimator) Trace(test *dataset.Table) *Result {
	n := len(e.part.Parties)
	res := &Result{
		NumParties: n,
		TestSize:   test.Len(),
		Correct:    make([]bool, test.Len()),
		Credit:     make([]float64, n),
		Blame:      make([]float64, n),
	}
	acts, pred := e.rs.ActivationsTable(test)
	weights := e.rs.Weights()
	inv := 1 / float64(max(1, test.Len()))
	var side *bitset.Set
	for te, in := range test.Instances {
		correct := pred[te] == in.Label
		res.Correct[te] = correct
		side = acts[te].AndInto(e.rs.ClassMask(pred[te]), side)
		totalW := side.WeightedCount(weights)
		if totalW == 0 {
			res.Uncovered++
			continue
		}
		side.ForEach(func(ri int) {
			shares, ok := e.ruleShare[ri]
			if !ok {
				return
			}
			ruleCredit := inv * weights[ri] / totalW
			for i, s := range shares {
				if correct {
					res.Credit[i] += ruleCredit * s
				} else {
					res.Blame[i] += ruleCredit * s
				}
			}
		})
	}
	return res
}

// Accuracy returns the traced model accuracy.
func (r *Result) Accuracy() float64 {
	if r.TestSize == 0 {
		return 0
	}
	ok := 0
	for _, c := range r.Correct {
		if c {
			ok++
		}
	}
	return float64(ok) / float64(r.TestSize)
}

// Scores returns the per-party credit vector (the vertical analogue of the
// micro scores).
func (r *Result) Scores() []float64 {
	return append([]float64(nil), r.Credit...)
}

// encoderOf and encSchema expose the rule set's encoder internals needed
// for predicate-to-feature resolution.
func encoderOf(rs *rules.Set) *dataset.Encoder { return rs.Encoder() }
func encSchema(rs *rules.Set) *dataset.Schema  { return rs.Encoder().Schema() }
