package quality

import (
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

// buildScenario trains on tic-tac-toe with three participants: an honest
// one, one that replicates half its data, and one with 60% flipped labels.
func buildScenario(t *testing.T) (*core.Result, []core.TrainingUpload, *rules.Set, []string) {
	t.Helper()
	tab := dataset.TicTacToe()
	r := stats.NewRNG(4)
	train, test := tab.Split(r, 0.25)
	parts := fl.PartitionSkewSample(train, 3, 3.0, r)
	parts = fl.ReplaceParticipant(parts, fl.Replicate(parts[1], 1.0, r))
	parts = fl.ReplaceParticipant(parts, fl.FlipLabels(parts[2], 0.6, r))

	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := enc.EncodeTable(fl.Union(parts))
	m, err := nn.New(enc.Width(), nn.Config{
		Hidden: []int{48}, Epochs: 30, Grafting: true, Seed: 3,
		L1Logic: 2e-4, L2Head: 1e-3, KeepBest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xs, ys)
	rs := rules.Extract(m, enc)

	var uploads []core.TrainingUpload
	for pi, p := range parts {
		acts, _ := rs.ActivationsTable(p.Data)
		for i, a := range acts {
			uploads = append(uploads, core.TrainingUpload{
				Owner: pi, Label: p.Data.Instances[i].Label, Activations: a,
			})
		}
	}
	clone := make([]core.TrainingUpload, len(uploads))
	for i, u := range uploads {
		clone[i] = core.TrainingUpload{Owner: u.Owner, Label: u.Label, Activations: u.Activations.Clone()}
	}
	tracer := core.NewTracerFromUploads(rs, len(parts), clone, core.Config{TauW: 0.8})
	res := tracer.Trace(test)
	return res, uploads, rs, []string{"honest", "replicator", "flipper"}
}

func TestAssessSeparatesBehaviours(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	res, uploads, rs, names := buildScenario(t)
	reports := Assess(res, uploads, rs.Weights(), rs.ClassMask(1), rs.ClassMask(0))
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	honest, repl, flip := reports[0], reports[1], reports[2]

	// The replicator's duplicate ratio must dwarf the honest one's.
	if repl.DuplicateRatio < honest.DuplicateRatio+0.3 {
		t.Fatalf("duplicate signal missing: honest %.2f vs replicator %.2f",
			honest.DuplicateRatio, repl.DuplicateRatio)
	}
	// The flipper's contradiction ratio must dwarf the honest one's.
	if flip.ContradictionRatio < honest.ContradictionRatio+0.15 {
		t.Fatalf("contradiction signal missing: honest %.2f vs flipper %.2f",
			honest.ContradictionRatio, flip.ContradictionRatio)
	}
	// Grades: honest should not be worse than the flipper.
	order := map[string]int{"poor": 0, "review": 1, "good": 2}
	if order[honest.Grade] < order[flip.Grade] {
		t.Fatalf("honest graded %s, flipper %s", honest.Grade, flip.Grade)
	}

	out := Render(reports, names)
	for _, want := range []string{"honest", "replicator", "flipper", "grade"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGradeThresholds(t *testing.T) {
	cases := []struct {
		r    Report
		want string
	}{
		{Report{}, "good"},
		{Report{UselessRatio: 0.7}, "poor"},
		{Report{ContradictionRatio: 0.5}, "poor"},
		{Report{UselessRatio: 0.4}, "review"},
		{Report{DuplicateRatio: 0.5}, "review"},
		{Report{ContradictionRatio: 0.25}, "review"},
		{Report{LossShare: 0.5, GainShare: 0.1}, "review"},
		{Report{LossShare: 0.15, GainShare: 0.05}, "good"}, // loss below floor
	}
	for i, c := range cases {
		if got := grade(&c.r); got != c.want {
			t.Fatalf("case %d: grade = %s, want %s (%+v)", i, got, c.want, c.r)
		}
	}
}

func TestAssessEmptyParticipant(t *testing.T) {
	// A participant with zero uploads must produce a zeroed report, not NaN.
	res := &core.Result{NumParticipants: 2, TestSize: 0}
	// Fabricate a minimal result via a tracer over one upload for owner 0.
	// Easier: call Assess with a synthetic Result-like setup is impossible
	// without a tracer, so build the smallest real one.
	schema := &dataset.Schema{Name: "t", Features: []dataset.Feature{
		{Name: "f", Kind: dataset.Discrete, Categories: []string{"a"}},
	}}
	enc, err := dataset.NewEncoder(schema, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs := rules.Extract(m, enc)
	up := []core.TrainingUpload{{Owner: 0, Label: 1, Activations: bitset.New(rs.Width())}}
	clone := []core.TrainingUpload{{Owner: 0, Label: 1, Activations: bitset.New(rs.Width())}}
	tracer := core.NewTracerFromUploads(rs, 2, clone, core.Config{TauW: 0.8})
	res = tracer.Trace(&dataset.Table{Schema: schema})
	reports := Assess(res, up, rs.Weights(), rs.ClassMask(1), rs.ClassMask(0))
	if reports[1].Instances != 0 || reports[1].Grade == "" {
		t.Fatalf("empty participant report = %+v", reports[1])
	}
}
