// Package quality builds per-participant data-quality reports from CTFL's
// tracing artifacts. Section IV-B of the paper sketches the ingredients —
// useless-data ratios, rule-activation frequencies, loss tracing — and this
// package combines them with two further signals computable from uploads
// alone (no raw data): exact-duplicate detection via activation-pattern
// collisions, and a label-noise estimate from contradictions between an
// instance's label and the class side its activations support. The result
// is the actionable report a federation operator would hand back to a
// low-scoring participant.
package quality

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/stats"
)

// Report is one participant's data-quality assessment.
type Report struct {
	Participant int
	Instances   int
	// UselessRatio is the fraction of instances never matched by any test
	// instance (from core.Result).
	UselessRatio float64
	// DuplicateRatio is the fraction of instances whose (label, activation
	// pattern) pair occurs more than once within the participant's uploads.
	// High values suggest replication (or trivially redundant data).
	DuplicateRatio float64
	// ContradictionRatio estimates label noise: the fraction of instances
	// whose activation pattern carries more weighted evidence for the
	// OPPOSITE class than for their own label.
	ContradictionRatio float64
	// GainShare and LossShare are the participant's normalized micro credit
	// and blame.
	GainShare, LossShare float64
	// Grade summarizes the report: "good", "review" or "poor".
	Grade string
}

// Assess builds reports for every participant from the tracing result and
// the original uploads (the same vectors the tracer indexed; pass clones if
// the tracer was built from them, since it masks uploads in place).
func Assess(res *core.Result, uploads []core.TrainingUpload, weights []float64, posMask, negMask *bitset.Set) []Report {
	n := res.NumParticipants
	reports := make([]Report, n)
	for i := range reports {
		reports[i].Participant = i
	}

	// Duplicate detection: count (owner, label, pattern) collisions.
	type key struct {
		owner int
		label int
		pat   string
	}
	seen := map[key]int{}
	for _, u := range uploads {
		seen[key{u.Owner, u.Label, u.Activations.Key()}]++
	}
	dup := make([]int, n)
	for _, u := range uploads {
		reports[u.Owner].Instances++
		if seen[key{u.Owner, u.Label, u.Activations.Key()}] > 1 {
			dup[u.Owner]++
		}
	}

	// Contradiction estimate: weighted vote of the instance's activations
	// against its own label.
	contra := make([]int, n)
	var scratch *bitset.Set
	for _, u := range uploads {
		own := posMask
		other := negMask
		if u.Label == 0 {
			own, other = negMask, posMask
		}
		scratch = u.Activations.AndInto(own, scratch)
		ownW := scratch.WeightedCount(weights)
		scratch = u.Activations.AndInto(other, scratch)
		otherW := scratch.WeightedCount(weights)
		if otherW > ownW {
			contra[u.Owner]++
		}
	}

	useless := res.UselessRatio()
	gain := res.MicroScores()
	loss := res.MicroLossScores()
	stats.Normalize(gain)
	stats.Normalize(loss)

	for i := range reports {
		r := &reports[i]
		if r.Instances > 0 {
			r.DuplicateRatio = float64(dup[i]) / float64(r.Instances)
			r.ContradictionRatio = float64(contra[i]) / float64(r.Instances)
		}
		r.UselessRatio = useless[i]
		r.GainShare = gain[i]
		r.LossShare = loss[i]
		r.Grade = grade(r)
	}
	return reports
}

// grade applies the operator heuristics: poor when most data is inert or
// contradictory, review when any single signal is elevated.
func grade(r *Report) string {
	switch {
	case r.UselessRatio > 0.6 || r.ContradictionRatio > 0.4:
		return "poor"
	case r.UselessRatio > 0.3 || r.ContradictionRatio > 0.2 ||
		r.DuplicateRatio > 0.3 || r.LossShare > 2*r.GainShare && r.LossShare > 0.2:
		return "review"
	default:
		return "good"
	}
}

// Render prints the reports as a table, sorted by grade severity.
func Render(reports []Report, names []string) string {
	order := map[string]int{"poor": 0, "review": 1, "good": 2}
	sorted := append([]Report{}, reports...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return order[sorted[a].Grade] < order[sorted[b].Grade]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s %8s %8s %7s %7s  %s\n",
		"participant", "rows", "useless", "dup", "contra", "gain", "loss", "grade")
	for _, r := range sorted {
		name := fmt.Sprintf("#%d", r.Participant)
		if r.Participant < len(names) {
			name = names[r.Participant]
		}
		fmt.Fprintf(&b, "%-12s %6d %8.2f %8.2f %8.2f %7.3f %7.3f  %s\n",
			name, r.Instances, r.UselessRatio, r.DuplicateRatio,
			r.ContradictionRatio, r.GainShare, r.LossShare, strings.ToUpper(r.Grade))
	}
	return b.String()
}
