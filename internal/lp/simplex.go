// Package lp implements a dense two-phase primal simplex solver for linear
// programs in general inequality form. It exists to support the LeastCore
// baseline valuation scheme (Yan & Procaccia 2021), which solves
//
//	minimize e
//	s.t.     sum_{i in S} phi(i) + e >= v(D_S)   for sampled coalitions S
//	         sum_{i in N} phi(i)       = v(D_N)
//
// The solver accepts problems of the form
//
//	minimize  c . x
//	s.t.      A x (<=|=|>=) b,   x free or bounded below
//
// Free variables are handled by the standard x = x+ - x- split, so callers
// can express contribution scores that may legitimately be negative.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ConstraintOp is the relational operator of one constraint row.
type ConstraintOp int

// Supported constraint operators.
const (
	LE ConstraintOp = iota // <=
	GE                     // >=
	EQ                     // ==
)

func (op ConstraintOp) String() string {
	switch op {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("ConstraintOp(%d)", int(op))
	}
}

// Constraint is one row a.x (op) b.
type Constraint struct {
	Coeffs []float64
	Op     ConstraintOp
	RHS    float64
}

// Problem is a minimization LP over n variables.
type Problem struct {
	// Objective has length n: minimize Objective . x.
	Objective []float64
	// Constraints rows; every Coeffs slice must have length n.
	Constraints []Constraint
	// FreeVars marks variables allowed to take negative values.
	// Unmarked variables are constrained to x >= 0.
	FreeVars []bool
}

// Solution is the optimum of a Problem.
type Solution struct {
	X         []float64 // optimal variable assignment, length n
	Objective float64   // optimal objective value c.x
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
)

const (
	eps           = 1e-9
	maxIterFactor = 200
)

// Solve optimizes the problem with the two-phase simplex method.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.Objective)
	if n == 0 {
		return nil, errors.New("lp: empty objective")
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coeffs, want %d", i, len(c.Coeffs), n)
		}
	}
	if p.FreeVars != nil && len(p.FreeVars) != n {
		return nil, fmt.Errorf("lp: FreeVars length %d, want %d", len(p.FreeVars), n)
	}

	// Expand free variables: x_j = x_j+ - x_j-.
	// cols maps each original variable to its (plus, minus) column; minus is
	// -1 for non-free variables.
	type split struct{ plus, minus int }
	cols := make([]split, n)
	ncols := 0
	for j := 0; j < n; j++ {
		cols[j].plus = ncols
		ncols++
		if p.FreeVars != nil && p.FreeVars[j] {
			cols[j].minus = ncols
			ncols++
		} else {
			cols[j].minus = -1
		}
	}

	m := len(p.Constraints)
	// Standard form: A'x' = b with b >= 0, x' >= 0, after adding slack and
	// surplus columns. Artificial variables complete the identity basis.
	// Count extra columns.
	slackCols := 0
	for _, c := range p.Constraints {
		if c.Op != EQ {
			slackCols++
		}
	}
	total := ncols + slackCols + m // + m artificials (some may be unused but harmless)

	a := make([][]float64, m)
	b := make([]float64, m)
	basis := make([]int, m)
	artStart := ncols + slackCols
	slackAt := ncols
	for i, c := range p.Constraints {
		row := make([]float64, total)
		rhs := c.RHS
		sign := 1.0
		if rhs < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			v := sign * c.Coeffs[j]
			row[cols[j].plus] = v
			if cols[j].minus >= 0 {
				row[cols[j].minus] = -v
			}
		}
		rhs *= sign
		op := c.Op
		if sign < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artStart+i] = 1
			basis[i] = artStart + i
		case EQ:
			row[artStart+i] = 1
			basis[i] = artStart + i
		}
		a[i] = row
		b[i] = rhs
	}

	// Phase 1: minimize sum of artificials.
	phase1 := make([]float64, total)
	needPhase1 := false
	for i := range basis {
		if basis[i] >= artStart {
			phase1[basis[i]] = 1
			needPhase1 = true
		}
	}
	if needPhase1 {
		obj, err := simplex(a, b, basis, phase1, artStart)
		if err != nil {
			return nil, err
		}
		if obj > eps {
			return nil, ErrInfeasible
		}
		// Drive any artificial still in the basis out (degenerate case).
		for i, bj := range basis {
			if bj < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(a[i][j]) > eps {
					pivot(a, b, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros over real columns: redundant constraint,
				// leave the zero-valued artificial in place; it cannot re-enter
				// because phase 2 never selects artificial columns.
				continue
			}
		}
	}

	// Phase 2: minimize real objective over split columns.
	phase2 := make([]float64, total)
	for j := 0; j < n; j++ {
		phase2[cols[j].plus] = p.Objective[j]
		if cols[j].minus >= 0 {
			phase2[cols[j].minus] = -p.Objective[j]
		}
	}
	obj, err := simplex(a, b, basis, phase2, artStart)
	if err != nil {
		return nil, err
	}

	xext := make([]float64, total)
	for i, bj := range basis {
		xext[bj] = b[i]
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = xext[cols[j].plus]
		if cols[j].minus >= 0 {
			x[j] -= xext[cols[j].minus]
		}
	}
	return &Solution{X: x, Objective: obj}, nil
}

// simplex runs the primal simplex on the tableau (a, b) with the given basis,
// minimizing c . x. Columns at index >= forbidFrom are never chosen as
// entering columns (used to lock out artificials in phase 2). It returns the
// optimal objective value and mutates a, b, basis in place.
func simplex(a [][]float64, b []float64, basis []int, c []float64, forbidFrom int) (float64, error) {
	m := len(a)
	if m == 0 {
		return 0, nil
	}
	total := len(a[0])
	maxIter := maxIterFactor * (m + total)

	// Reduced costs are computed directly each iteration: for the small/medium
	// problems LeastCore produces (hundreds of rows) this dense O(m*n) scan per
	// pivot is fast and numerically simple.
	y := make([]float64, m) // multipliers c_B applied to rows

	for iter := 0; iter < maxIter; iter++ {
		for i := range y {
			y[i] = c[basis[i]]
		}
		// entering column: most negative reduced cost (Dantzig rule with a
		// Bland fallback on near-ties to guarantee termination).
		enter := -1
		best := -eps
		for j := 0; j < total; j++ {
			if j >= forbidFrom && c[j] == 0 && !isBasic(basis, j) {
				// Artificial column outside phase 1: never re-enter.
				continue
			}
			red := c[j]
			for i := 0; i < m; i++ {
				red -= y[i] * a[i][j]
			}
			if red < best {
				best = red
				enter = j
			}
		}
		if enter == -1 {
			// optimal
			obj := 0.0
			for i := range basis {
				obj += c[basis[i]] * b[i]
			}
			return obj, nil
		}
		// leaving row: min ratio test with Bland tie-break.
		leave := -1
		minRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if a[i][enter] > eps {
				ratio := b[i] / a[i][enter]
				if ratio < minRatio-eps || (ratio < minRatio+eps && (leave == -1 || basis[i] < basis[leave])) {
					minRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		pivot(a, b, basis, leave, enter)
	}
	return 0, errors.New("lp: iteration limit exceeded (cycling?)")
}

func isBasic(basis []int, j int) bool {
	for _, b := range basis {
		if b == j {
			return true
		}
	}
	return false
}

// pivot performs a Gauss-Jordan pivot on element (row, col).
func pivot(a [][]float64, b []float64, basis []int, row, col int) {
	pr := a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	b[row] *= inv
	for i := range a {
		if i == row {
			continue
		}
		f := a[i][col]
		if f == 0 {
			continue
		}
		ri := a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		b[i] -= f * b[row]
		if math.Abs(b[i]) < 1e-12 {
			b[i] = 0
		}
	}
	basis[row] = col
}
