package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestSimple2D(t *testing.T) {
	// minimize -x - 2y s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.
	// Optimum at (1,3): objective -7.
	p := &Problem{
		Objective: []float64{-1, -2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 4},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 2},
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 3},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, -7, 1e-8, "objective")
	approx(t, sol.X[0], 1, 1e-8, "x")
	approx(t, sol.X[1], 3, 1e-8, "y")
}

func TestGEConstraintsNeedPhase1(t *testing.T) {
	// minimize x + y s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
	// Optimum at intersection (1.6, 1.2): objective 2.8.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Op: GE, RHS: 4},
			{Coeffs: []float64{3, 1}, Op: GE, RHS: 6},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 2.8, 1e-8, "objective")
	approx(t, sol.X[0], 1.6, 1e-8, "x")
	approx(t, sol.X[1], 1.2, 1e-8, "y")
}

func TestEqualityConstraint(t *testing.T) {
	// minimize 2x + 3y s.t. x + y = 10, x <= 6. Optimum x=6,y=4: 24.
	p := &Problem{
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 10},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 6},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 24, 1e-8, "objective")
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 5},
			{Coeffs: []float64{1}, Op: LE, RHS: 3},
		},
	}
	if _, err := Solve(p); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 1},
		},
	}
	if _, err := Solve(p); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestFreeVariables(t *testing.T) {
	// minimize e s.t. x1 + e >= 0.8, x2 + e >= 0.5, x1 + x2 = 0.9,
	// x1, x2, e free. This is a tiny least-core shape. The binding structure:
	// minimize e with x1 >= 0.8 - e, x2 >= 0.5 - e, x1+x2 = 0.9
	// => (0.8-e)+(0.5-e) <= 0.9 => e >= 0.2. So optimum e = 0.2.
	p := &Problem{
		Objective: []float64{0, 0, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0, 1}, Op: GE, RHS: 0.8},
			{Coeffs: []float64{0, 1, 1}, Op: GE, RHS: 0.5},
			{Coeffs: []float64{1, 1, 0}, Op: EQ, RHS: 0.9},
		},
		FreeVars: []bool{true, true, true},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 0.2, 1e-8, "min deficit e")
	approx(t, sol.X[0]+sol.X[1], 0.9, 1e-8, "group rationality")
}

func TestNegativeRHS(t *testing.T) {
	// minimize x s.t. -x <= -3  (i.e. x >= 3).
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Op: LE, RHS: -3},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.X[0], 3, 1e-8, "x")
}

func TestDegenerateRedundantConstraints(t *testing.T) {
	// Duplicate equality rows exercise the redundant-row handling in phase 1.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 2},
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 2},
			{Coeffs: []float64{2, 2}, Op: EQ, RHS: 4},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 2, 1e-8, "objective")
}

func TestValidationErrors(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Fatal("expected error for empty objective")
	}
	p := &Problem{
		Objective:   []float64{1, 2},
		Constraints: []Constraint{{Coeffs: []float64{1}, Op: LE, RHS: 1}},
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("expected error for ragged constraint")
	}
	p2 := &Problem{Objective: []float64{1}, FreeVars: []bool{true, false}}
	if _, err := Solve(p2); err == nil {
		t.Fatal("expected error for FreeVars length mismatch")
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("ConstraintOp String wrong")
	}
	if ConstraintOp(9).String() == "" {
		t.Fatal("unknown op should still render")
	}
}

// TestPropertySolutionFeasible checks that on random feasible problems the
// returned point satisfies every constraint and has no worse objective than
// a sampled feasible point.
func TestPropertySolutionFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		m := 1 + r.Intn(5)
		// Build constraints guaranteed feasible at a random positive point x0.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = r.Float64() * 5
		}
		p := &Problem{Objective: make([]float64, n)}
		for i := range p.Objective {
			p.Objective[i] = r.Float64()*2 - 0.5 // mostly positive => bounded below with x>=0
		}
		for i := 0; i < n; i++ {
			if p.Objective[i] < 0 {
				p.Objective[i] = 0.1 // keep bounded
			}
		}
		for k := 0; k < m; k++ {
			c := Constraint{Coeffs: make([]float64, n), Op: LE}
			dot := 0.0
			for j := range c.Coeffs {
				c.Coeffs[j] = r.Float64()*4 - 2
				dot += c.Coeffs[j] * x0[j]
			}
			slackAmt := r.Float64()
			if r.Intn(2) == 0 {
				c.Op = LE
				c.RHS = dot + slackAmt
			} else {
				c.Op = GE
				c.RHS = dot - slackAmt
			}
			p.Constraints = append(p.Constraints, c)
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		// Feasibility check.
		for _, c := range p.Constraints {
			dot := 0.0
			for j := range c.Coeffs {
				dot += c.Coeffs[j] * sol.X[j]
			}
			switch c.Op {
			case LE:
				if dot > c.RHS+1e-6 {
					return false
				}
			case GE:
				if dot < c.RHS-1e-6 {
					return false
				}
			}
		}
		for _, x := range sol.X {
			if x < -1e-6 {
				return false
			}
		}
		// Optimality sanity: objective at sol <= objective at x0.
		objAt := func(x []float64) float64 {
			s := 0.0
			for j := range x {
				s += p.Objective[j] * x[j]
			}
			return s
		}
		return sol.Objective <= objAt(x0)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveLeastCoreShape(b *testing.B) {
	// 8 players, ~180 sampled coalition constraints — the shape LeastCore
	// produces at the paper's default n=8 with n^2 log n sampling.
	r := rand.New(rand.NewSource(42))
	n := 9 // 8 scores + deficit e
	var cons []Constraint
	for k := 0; k < 180; k++ {
		c := Constraint{Coeffs: make([]float64, n), Op: GE, RHS: r.Float64()}
		for j := 0; j < 8; j++ {
			if r.Intn(2) == 0 {
				c.Coeffs[j] = 1
			}
		}
		c.Coeffs[8] = 1
		cons = append(cons, c)
	}
	eqRow := Constraint{Coeffs: make([]float64, n), Op: EQ, RHS: 0.9}
	for j := 0; j < 8; j++ {
		eqRow.Coeffs[j] = 1
	}
	cons = append(cons, eqRow)
	obj := make([]float64, n)
	obj[8] = 1
	free := make([]bool, n)
	for i := range free {
		free[i] = true
	}
	p := &Problem{Objective: obj, Constraints: cons, FreeVars: free}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
