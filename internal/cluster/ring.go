// Package cluster shards federations across ctflsrv instances with a
// consistent-hash ring. The ring is a pure, deterministic function of
// (member list, virtual-node count, seed): every client and every server
// that agrees on those three inputs computes the same federation→node
// placement with no coordination service. Virtual nodes smooth the
// key distribution so a 3-node ring stays within a few percent of even;
// consistent hashing keeps a membership change from remapping more than
// ~1/N of the key space, which is what makes the X-CTFL-Shard redirect
// protocol cheap — only the moved federations bounce once.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the points-per-member default. 128 keeps the
// worst member within ~10% of its fair share on small rings while the
// whole ring stays a few KB.
const DefaultVirtualNodes = 128

// DefaultSeed is the ring hash seed every component uses unless
// configured otherwise. It is part of the cluster contract: clients and
// servers must share it or placement diverges.
const DefaultSeed uint64 = 0xC7F1C7F1C7F1C7F1

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int32
}

// Ring is an immutable consistent-hash ring. Build with New; all methods
// are safe for concurrent use (the ring never mutates).
type Ring struct {
	nodes  []string
	points []point
	vnodes int
	seed   uint64
}

// Config tunes ring construction. The zero value takes the defaults.
type Config struct {
	// VirtualNodes is the number of ring points per member (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// Seed keys the placement hash (default DefaultSeed). All ring
	// participants must agree on it.
	Seed uint64
}

// New builds a ring over the member list. Members are deduplicated and
// sorted, so placement is independent of argument order. An empty member
// list is an error: a ring with no nodes cannot place anything.
func New(members []string, cfg Config) (*Ring, error) {
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	seen := make(map[string]struct{}, len(members))
	nodes := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		nodes = append(nodes, m)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(nodes)

	r := &Ring{
		nodes:  nodes,
		points: make([]point, 0, len(nodes)*cfg.VirtualNodes),
		vnodes: cfg.VirtualNodes,
		seed:   cfg.Seed,
	}
	for i, n := range nodes {
		h := hashString(cfg.Seed, n)
		for v := 0; v < cfg.VirtualNodes; v++ {
			// Derive each virtual point from the member hash with a
			// splitmix step; adjacent replicas land far apart.
			h = mix64(h + 0x9E3779B97F4A7C15)
			r.points = append(r.points, point{hash: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (astronomically rare) break by node index so placement
		// stays deterministic.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the ring members, sorted. The slice is a copy.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.nodes) }

// Contains reports whether the member is on the ring.
func (r *Ring) Contains(member string) bool {
	i := sort.SearchStrings(r.nodes, member)
	return i < len(r.nodes) && r.nodes[i] == member
}

// Lookup places a key (a federation id) on its owning member.
func (r *Ring) Lookup(key string) string {
	return r.nodes[r.owner(hashString(r.seed, key))]
}

// LookupN returns the key's preference list: the owner followed by the
// next n-1 distinct members walking clockwise. It is the replica set for
// the key (leader first). n is clamped to the member count.
func (r *Ring) LookupN(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]struct{}, n)
	i := r.search(hashString(r.seed, key))
	for len(out) < n {
		p := r.points[i%len(r.points)]
		if _, dup := seen[p.node]; !dup {
			seen[p.node] = struct{}{}
			out = append(out, r.nodes[p.node])
		}
		i++
	}
	return out
}

// search finds the index of the first ring point at or after h, wrapping
// to 0 past the last point.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// owner resolves a key hash to a member index.
func (r *Ring) owner(h uint64) int32 {
	return r.points[r.search(h)].node
}

// hashString is FNV-1a 64 over the key, seeded, then finalized with a
// splitmix step. Stated explicitly (not hash/maphash) because the value
// must be identical across processes and restarts — it is a wire-visible
// placement contract, not an in-memory hash table.
func hashString(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
