package cluster

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, members []string, cfg Config) *Ring {
	t.Helper()
	r, err := New(members, cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", members, err)
	}
	return r
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := New([]string{"a", ""}, Config{}); err == nil {
		t.Fatal("empty member accepted")
	}
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := mustRing(t, []string{"node-a", "node-b", "node-c"}, Config{})
	b := mustRing(t, []string{"node-c", "node-a", "node-b", "node-a"}, Config{})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fed-%03d", i)
		if ga, gb := a.Lookup(key), b.Lookup(key); ga != gb {
			t.Fatalf("placement differs for %q: %q vs %q", key, ga, gb)
		}
	}
}

func TestRingSeedChangesPlacement(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c"}
	a := mustRing(t, members, Config{Seed: 1})
	b := mustRing(t, members, Config{Seed: 2})
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fed-%03d", i)
		if a.Lookup(key) != b.Lookup(key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("different seeds produced identical placement for all keys")
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c"}
	r := mustRing(t, members, Config{})
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("fed-%05d", i))]++
	}
	fair := keys / len(members)
	for _, m := range members {
		c := counts[m]
		if c < fair/2 || c > fair*2 {
			t.Fatalf("member %s holds %d of %d keys (fair share %d): ring badly unbalanced", m, c, keys, fair)
		}
	}
}

func TestRingMembershipChangeRemapsMinority(t *testing.T) {
	before := mustRing(t, []string{"node-a", "node-b", "node-c"}, Config{})
	after := mustRing(t, []string{"node-a", "node-b", "node-c", "node-d"}, Config{})
	const keys = 2000
	moved, toNew := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("fed-%05d", i)
		ga, gb := before.Lookup(key), after.Lookup(key)
		if ga != gb {
			moved++
			if gb == "node-d" {
				toNew++
			}
		}
	}
	// Consistent hashing: roughly 1/4 of keys move, and every move lands
	// on the added member (a key never migrates between surviving members).
	if moved > keys/2 {
		t.Fatalf("%d of %d keys remapped on member add; expected ~1/4", moved, keys)
	}
	if moved != toNew {
		t.Fatalf("%d keys moved but only %d to the new member: keys migrated between survivors", moved, toNew)
	}
}

func TestRingLookupN(t *testing.T) {
	r := mustRing(t, []string{"node-a", "node-b", "node-c"}, Config{})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("fed-%03d", i)
		pref := r.LookupN(key, 2)
		if len(pref) != 2 {
			t.Fatalf("LookupN(%q, 2) = %v", key, pref)
		}
		if pref[0] != r.Lookup(key) {
			t.Fatalf("preference list head %q != Lookup %q", pref[0], r.Lookup(key))
		}
		if pref[0] == pref[1] {
			t.Fatalf("duplicate member in preference list %v", pref)
		}
	}
	if got := r.LookupN("fed-0", 10); len(got) != 3 {
		t.Fatalf("LookupN beyond ring size = %v, want all 3 members", got)
	}
	if got := r.LookupN("fed-0", 0); got != nil {
		t.Fatalf("LookupN(0) = %v, want nil", got)
	}
}

func TestRingContains(t *testing.T) {
	r := mustRing(t, []string{"node-a", "node-b"}, Config{})
	if !r.Contains("node-a") || r.Contains("node-z") {
		t.Fatal("Contains wrong")
	}
	if r.Size() != 2 {
		t.Fatalf("Size = %d", r.Size())
	}
}
