package store

// The replication cursor: with Options.Retain set, the store keeps its
// logical event log — every state-bearing event replayed at Open or
// appended since, in order, Nop probes excluded — in memory, addressed
// by a dense sequence number (the log index of the next event, starting
// at 0 for an empty store). A shard leader ships suffixes of this log to
// its follower as replicated-WAL-segment frames; the follower's applied
// count is its cursor into the leader's log.
//
// The log is rebuilt from the snapshot+WAL replay on restart, so its
// numbering is only meaningful within one leader incarnation: after a
// leader compacts and restarts, the replayed log is the minimal
// restatement of state, not the original append history. The replication
// protocol handles this with reset segments (see internal/protocol,
// type 8): a follower whose cursor does not match simply asks for the
// full log again.

// retain appends state-bearing events to the logical log. Payloads are
// deep-copied: callers commonly reuse request buffers after Append
// returns. Callers hold s.mu (AppendBatch) or own the store exclusively
// (Open).
func (s *Store) retain(evs []Event) {
	for _, ev := range evs {
		if ev.Type == EventNop {
			continue
		}
		p := make([]byte, len(ev.Payload))
		copy(p, ev.Payload)
		s.retained = append(s.retained, Event{Type: ev.Type, Payload: p})
	}
}

// Sequence reports the logical log length: the sequence number the next
// retained event will get. Zero when retention is disabled.
func (s *Store) Sequence() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.retained))
}

// EventsFrom returns the retained events at sequence numbers [from, end)
// plus the log end. The slice headers are copies; payloads alias the
// retained log, which is append-only, so callers may read them without
// holding any lock. A from beyond the log end reports ok=false — the
// caller's cursor does not exist in this log incarnation and it must
// resynchronize with a reset segment.
func (s *Store) EventsFrom(from uint64) (evs []Event, end uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end = uint64(len(s.retained))
	if from > end {
		return nil, end, false
	}
	evs = make([]Event, end-from)
	copy(evs, s.retained[from:])
	return evs, end, true
}
