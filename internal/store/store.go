// Package store persists the federation server's lifecycle state so a
// restarted ctflsrv reproduces its pre-restart scoring behaviour exactly.
//
// The design is a classic snapshot + write-ahead-log pair:
//
//   - wal.log            append-only log of lifecycle events. Each record is
//     length-prefixed, typed, and CRC32-checked:
//
//     length  uint32 LE   (type byte + payload)
//     type    uint8
//     payload length-1 bytes
//     crc32   uint32 LE   (IEEE, over length+type+payload)
//
//   - snapshot-NNNNNN.snap  versioned full-state snapshots: a magic header
//     followed by the same record format, written to a temp file and
//     published with an atomic rename. Compaction writes a snapshot of the
//     current state and resets the WAL; old snapshots are kept one version
//     deep so a torn write of the newest never loses state.
//
// Replay on boot loads the newest readable snapshot and then the WAL.
// Corruption is tolerated, not fatal: a snapshot that fails its checks is
// skipped in favour of the previous version, and a WAL that ends in a torn
// or corrupt record is truncated at the last good boundary (the standard
// crash-recovery contract — everything before the tear is preserved).
//
// The store is event-agnostic: payloads are opaque bytes. The server layers
// meaning on top (encoder JSON, model bytes, protocol upload frames).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

// Event types. The store does not interpret payloads; these constants are
// defined here so every consumer agrees on the numbering.
const (
	// EventEncoder carries the federation encoder as JSON.
	EventEncoder byte = 1
	// EventModel carries the global model in nn binary form.
	EventModel byte = 2
	// EventUpload carries one canonical protocol upload frame.
	EventUpload byte = 3
	// EventRoundEval carries the streaming-valuation evaluation set as CSV,
	// exactly as registered (see internal/rounds).
	EventRoundEval byte = 5
	// EventRound carries one round-stream outcome record (rounds.Outcome
	// payload): the durable unit that lets a restarted server resume
	// streaming contribution scores bit-identically with zero recomputation.
	EventRound byte = 6
	// EventNop carries nothing: it is the degraded-mode health probe — a
	// minimal append whose only purpose is to prove the WAL is writable
	// again. Replay treats it as a no-op.
	EventNop byte = 4
)

// Fault-injection site names (see internal/faults). Each names the exact
// operation the injector may break; an Options.Faults of nil leaves every
// site inert at zero cost.
const (
	// FaultAppend fails a WAL append before any byte is written, so a
	// reported failure never leaves a partial record behind.
	FaultAppend = "store.append"
	// FaultAppendCorrupt flips a byte in the encoded record(s) before the
	// write — simulated silent disk corruption; the append still reports
	// success and recovery happens at replay time (truncation).
	FaultAppendCorrupt = "store.append.corrupt"
	// FaultCompact fails Compact before the snapshot temp file is created.
	FaultCompact = "store.compact"
	// FaultSnapshotCorrupt flips a byte in the encoded snapshot before it
	// is written — replay must fall back to the previous version.
	FaultSnapshotCorrupt = "store.snapshot.corrupt"
	// FaultRename fails the atomic snapshot publish (the rename).
	FaultRename = "store.rename"
)

// Event is one durable lifecycle record.
type Event struct {
	Type    byte
	Payload []byte
}

var snapMagic = []byte("CTFLSNAP\x01")

const (
	walName = "wal.log"
	// maxRecord bounds a single record (defensive against corrupt lengths).
	maxRecord = 1 << 30
	// keepSnapshots is how many snapshot versions survive compaction.
	keepSnapshots = 2
)

// Options tunes a Store.
type Options struct {
	// Sync fsyncs the WAL after every append. Durable but slower; on by
	// default in Open.
	Sync bool
	// Logf receives recovery diagnostics (corruption truncation, snapshot
	// fallback). Defaults to log.Printf.
	Logf func(format string, args ...any)
	// Obs receives store telemetry. Nil disables it (zero overhead beyond
	// one pointer check per instrument).
	Obs *Obs
	// Faults injects failures at the Fault* sites above for resilience
	// testing. Nil (the production default) disables injection entirely.
	Faults *faults.Injector
	// Retain keeps every state-bearing event (replayed and appended, Nops
	// excluded) in memory as the store's logical event log, exposed through
	// Sequence and EventsFrom. Replication leaders enable it to ship WAL
	// segments from any cursor position; it is unbounded, sized by the
	// compaction policy of the layer above.
	Retain bool
}

// Store is a durable event log rooted at one data directory. All methods
// are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu           sync.Mutex
	wal          *os.File
	walSize      int64
	walEvents    int64
	snapSeq      uint64
	lastSnapshot time.Time
	closed       bool
	// retained is the logical event log (Options.Retain); see EventsFrom.
	retained []Event
}

// Metrics is a point-in-time summary for observability endpoints.
type Metrics struct {
	WALBytes     int64     `json:"wal_bytes"`
	WALEvents    int64     `json:"wal_events"`
	SnapshotSeq  uint64    `json:"snapshot_seq"`
	LastSnapshot time.Time `json:"last_snapshot"`
}

// Open opens (creating if needed) the store at dir and replays its durable
// state: the newest readable snapshot's events followed by the WAL's. The
// returned events are in original append order; applying them to a fresh
// state machine reproduces the pre-restart state.
func Open(dir string, opts Options) (*Store, []Event, error) {
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.Obs == nil {
		opts.Obs = &Obs{} // inert: every instrument is a nil-safe no-op
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts}

	events, err := s.loadSnapshot()
	if err != nil {
		return nil, nil, err
	}

	walPath := filepath.Join(dir, walName)
	walEvents, goodLen, err := replayFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	if fi, statErr := os.Stat(walPath); statErr == nil && fi.Size() > goodLen {
		s.opts.Logf("store: wal corrupt after %d bytes (%d events recovered); truncating %d trailing bytes",
			goodLen, len(walEvents), fi.Size()-goodLen)
		s.opts.Obs.ReplayTruncatedBytes.Add(fi.Size() - goodLen)
		if err := os.Truncate(walPath, goodLen); err != nil {
			return nil, nil, fmt.Errorf("store: truncating corrupt wal: %w", err)
		}
	}
	events = append(events, walEvents...)
	s.opts.Obs.ReplayEvents.Add(int64(len(events)))
	if opts.Retain {
		s.retain(events)
	}

	s.wal, err = os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s.walSize = goodLen
	s.walEvents = int64(len(walEvents))
	s.opts.Obs.WALBytes.Set(float64(s.walSize))
	s.opts.Obs.WALEvents.Set(float64(s.walEvents))
	return s, events, nil
}

// loadSnapshot reads the newest readable snapshot, falling back to older
// versions when the newest fails its header or record checks.
func (s *Store) loadSnapshot() ([]Event, error) {
	seqs, err := s.snapshotSeqs()
	if err != nil {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		path := s.snapshotPath(seqs[i])
		events, err := readSnapshot(path)
		if err != nil {
			s.opts.Logf("store: snapshot %s unreadable (%v); trying previous", filepath.Base(path), err)
			s.opts.Obs.SnapshotFallbacks.Inc()
			continue
		}
		s.snapSeq = seqs[i]
		if fi, statErr := os.Stat(path); statErr == nil {
			s.lastSnapshot = fi.ModTime()
		}
		return events, nil
	}
	return nil, nil
}

func (s *Store) snapshotPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snapshot-%06d.snap", seq))
}

// snapshotSeqs lists snapshot versions present on disk, ascending.
func (s *Store) snapshotSeqs() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "snapshot-%06d.snap", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// readSnapshot reads a full snapshot file strictly: unlike the WAL, a
// snapshot was published atomically, so any corruption means the whole file
// is suspect and the caller falls back to the previous version.
func readSnapshot(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	header := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if string(header) != string(snapMagic) {
		return nil, fmt.Errorf("bad magic %q", header)
	}
	var events []Event
	for {
		ev, err := readRecord(f)
		if errors.Is(err, io.EOF) {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
}

// replayFile reads records from path until EOF or the first bad record,
// returning the recovered events and the byte offset of the last good
// record boundary.
func replayFile(path string) ([]Event, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var off int64
	var events []Event
	for {
		ev, err := readRecord(f)
		if err != nil {
			// EOF at a record boundary is a clean end; anything else (torn
			// write, flipped bits) ends replay at the last good offset.
			return events, off, nil
		}
		events = append(events, ev)
		off += recordLen(ev)
	}
}

func recordLen(ev Event) int64 { return 4 + 1 + int64(len(ev.Payload)) + 4 }

// appendRecord encodes one record into buf (reused across calls).
func appendRecord(buf []byte, ev Event) []byte {
	n := 1 + len(ev.Payload)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(n))
	start := len(buf)
	buf = append(buf, lenb[:]...)
	buf = append(buf, ev.Type)
	buf = append(buf, ev.Payload...)
	sum := crc32.ChecksumIEEE(buf[start:])
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], sum)
	return append(buf, crcb[:]...)
}

func readRecord(r io.Reader) (Event, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return Event{}, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < 1 || n > maxRecord {
		return Event{}, fmt.Errorf("store: record length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Event{}, err
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return Event{}, err
	}
	sum := crc32.NewIEEE()
	sum.Write(lenb[:])
	sum.Write(body)
	if binary.LittleEndian.Uint32(crcb[:]) != sum.Sum32() {
		return Event{}, errors.New("store: record checksum mismatch")
	}
	return Event{Type: body[0], Payload: body[1:]}, nil
}

// Append durably logs one event. The write hits the WAL (and, with
// Options.Sync, the disk) before Append returns, so callers may expose the
// event's effects only after a successful return — write-ahead semantics.
func (s *Store) Append(ev Event) error {
	return s.AppendBatch([]Event{ev})
}

// AppendBatch durably logs a group of events with all-or-nothing reporting:
// the records are encoded into one buffer and written with a single write
// call, and any reported failure happens before a byte reaches the WAL.
// Callers can therefore retry a failed batch without risking duplicate
// application of a prefix — the property the server's upload handler (and
// every retrying client above it) depends on.
func (s *Store) AppendBatch(evs []Event) error {
	if len(evs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if err := s.opts.Faults.Err(FaultAppend); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	var t0 time.Time
	if s.opts.Obs.AppendSeconds != nil {
		t0 = time.Now()
	}
	var rec []byte
	for _, ev := range evs {
		rec = appendRecord(rec, ev)
	}
	rec = s.opts.Faults.Corrupt(FaultAppendCorrupt, rec)
	if _, err := s.wal.Write(rec); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if s.opts.Sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	s.walSize += int64(len(rec))
	s.walEvents += int64(len(evs))
	if s.opts.Retain {
		s.retain(evs)
	}
	if s.opts.Obs.AppendSeconds != nil {
		s.opts.Obs.AppendSeconds.ObserveSince(t0)
		s.opts.Obs.AppendBytes.Observe(float64(len(rec)))
		s.opts.Obs.WALBytes.Set(float64(s.walSize))
		s.opts.Obs.WALEvents.Set(float64(s.walEvents))
	}
	return nil
}

// WALSize reports the current WAL length in bytes, for compaction policy.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSize
}

// Compact atomically publishes a new snapshot holding events — the caller's
// minimal re-creation of current state — and resets the WAL. Old snapshots
// beyond keepSnapshots versions are removed only after the new one is
// durably in place.
func (s *Store) Compact(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if err := s.opts.Faults.Err(FaultCompact); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	var t0 time.Time
	if s.opts.Obs.CompactSeconds != nil {
		t0 = time.Now()
	}
	seq := s.snapSeq + 1
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename

	buf := append([]byte(nil), snapMagic...)
	for _, ev := range events {
		buf = appendRecord(buf, ev)
	}
	buf = s.opts.Faults.Corrupt(FaultSnapshotCorrupt, buf)
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.opts.Faults.Err(FaultRename); err != nil {
		return fmt.Errorf("store: snapshot publish: %w", err)
	}
	if err := os.Rename(tmpName, s.snapshotPath(seq)); err != nil {
		return fmt.Errorf("store: snapshot publish: %w", err)
	}

	// The snapshot now covers everything; restart the WAL from empty.
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: wal reset: %w", err)
	}
	s.wal, s.walSize, s.walEvents = wal, 0, 0
	s.snapSeq = seq
	s.lastSnapshot = time.Now()

	if seqs, err := s.snapshotSeqs(); err == nil && len(seqs) > keepSnapshots {
		for _, old := range seqs[:len(seqs)-keepSnapshots] {
			os.Remove(s.snapshotPath(old))
		}
	}
	if s.opts.Obs.CompactSeconds != nil {
		s.opts.Obs.CompactSeconds.ObserveSince(t0)
		s.opts.Obs.Compactions.Inc()
		s.opts.Obs.WALBytes.Set(0)
		s.opts.Obs.WALEvents.Set(0)
	}
	return nil
}

// Metrics reports store-level observability counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		WALBytes:     s.walSize,
		WALEvents:    s.walEvents,
		SnapshotSeq:  s.snapSeq,
		LastSnapshot: s.lastSnapshot,
	}
}

// Close releases the WAL file handle. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}
