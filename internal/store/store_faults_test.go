package store

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// openFaulty opens a store at dir with the given injector wired in and a
// live telemetry registry so tests can assert recovery counters.
func openFaulty(t *testing.T, dir string, in *faults.Injector) (*Store, []Event, *Obs) {
	t.Helper()
	obs := NewObs(telemetry.NewRegistry())
	s, evs, err := Open(dir, Options{Logf: t.Logf, Obs: obs, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	return s, evs, obs
}

// TestInjectedAppendFailureLeavesWALConsistent pins the all-or-nothing
// contract: an injected append failure writes no bytes, so the caller can
// retry the same batch and replay sees each event exactly once.
func TestInjectedAppendFailureLeavesWALConsistent(t *testing.T) {
	dir := t.TempDir()
	in := faults.New(21, map[string]faults.Site{
		FaultAppend: {ErrProb: 1, MaxFaults: 2},
	})
	s, _, _ := openFaulty(t, dir, in)

	batch := []Event{ev(EventEncoder, "enc"), ev(EventUpload, "frame-a"), ev(EventUpload, "frame-b")}
	var failures int
	for {
		err := s.AppendBatch(batch)
		if err == nil {
			break
		}
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("unexpected error kind: %v", err)
		}
		failures++
		if failures > 10 {
			t.Fatal("append never succeeded despite bounded fault budget")
		}
	}
	if failures != 2 {
		t.Fatalf("observed %d injected failures, want MaxFaults=2", failures)
	}
	if m := s.Metrics(); m.WALEvents != int64(len(batch)) {
		t.Fatalf("WAL holds %d events after retries, want %d (no duplicate prefix)", m.WALEvents, len(batch))
	}
	s.Close()

	_, evs := openT(t, dir)
	wantEvents(t, evs, batch)
}

// TestInjectedAppendCorruptionTruncatedOnReplay drives the silent-corruption
// site: the append reports success, but replay must detect the flipped byte,
// truncate at the last good boundary, and count the dropped bytes.
func TestInjectedAppendCorruptionTruncatedOnReplay(t *testing.T) {
	dir := t.TempDir()
	in := faults.New(5, map[string]faults.Site{
		FaultAppendCorrupt: {CorruptProb: 1, MaxFaults: 1},
	})
	s, _, _ := openFaulty(t, dir, in)

	good := []Event{ev(EventEncoder, "enc"), ev(EventUpload, "frame-clean")}
	for _, e := range good {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	// Exhaust the non-corrupting writes first? No — the budget is 1, and the
	// first append already spent it. Verify the injector actually fired.
	if in.SiteStats(FaultAppendCorrupt).Corruptions != 1 {
		t.Fatalf("corruption did not fire: %+v", in.SiteStats(FaultAppendCorrupt))
	}
	s.Close()

	obs := NewObs(telemetry.NewRegistry())
	s2, evs, err := Open(dir, Options{Logf: t.Logf, Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// The first record was corrupted in flight, so replay truncates at offset
	// zero and the clean second record (written after the corrupt one) is
	// unreachable — exactly the crash-recovery contract.
	if len(evs) != 0 {
		t.Fatalf("replayed %d events past a corrupt first record", len(evs))
	}
	if obs.ReplayTruncatedBytes.Value() == 0 {
		t.Fatal("ReplayTruncatedBytes counter did not record the dropped tail")
	}
	// The store is writable again after truncation.
	if err := s2.Append(ev(EventUpload, "post-recovery")); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedSnapshotCorruptionFallsBack: a snapshot corrupted at write
// time is skipped on boot in favour of the previous version, bumping the
// fallback counter.
func TestInjectedSnapshotCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	v1 := []Event{ev(EventEncoder, "enc-v1")}
	if err := s.Compact(v1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	in := faults.New(13, map[string]faults.Site{
		FaultSnapshotCorrupt: {CorruptProb: 1, MaxFaults: 1},
	})
	s2, _, _ := openFaulty(t, dir, in)
	v2 := []Event{ev(EventEncoder, "enc-v2"), ev(EventUpload, "u")}
	// Compact succeeds from the store's point of view — the corruption is
	// silent, discovered only at replay.
	if err := s2.Compact(v2); err != nil {
		t.Fatal(err)
	}
	if in.SiteStats(FaultSnapshotCorrupt).Corruptions != 1 {
		t.Fatal("snapshot corruption did not fire")
	}
	s2.Close()

	obs := NewObs(telemetry.NewRegistry())
	s3, evs, err := Open(dir, Options{Logf: t.Logf, Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	wantEvents(t, evs, v1)
	if obs.SnapshotFallbacks.Value() == 0 {
		t.Fatal("SnapshotFallbacks counter did not record the skip")
	}
}

// TestInjectedRenameFailureKeepsWAL: when the atomic snapshot publish fails,
// Compact errors out, the WAL still holds every event, and a retry succeeds.
func TestInjectedRenameFailureKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	in := faults.New(17, map[string]faults.Site{
		FaultRename: {ErrProb: 1, MaxFaults: 1},
	})
	s, _, _ := openFaulty(t, dir, in)

	live := []Event{ev(EventEncoder, "enc"), ev(EventUpload, "frame")}
	for _, e := range live {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	state := []Event{ev(EventEncoder, "enc"), ev(EventUpload, "merged")}
	err := s.Compact(state)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Compact err = %v, want injected rename failure", err)
	}
	// The failed compaction must not have reset the WAL.
	if m := s.Metrics(); m.WALEvents != int64(len(live)) || m.SnapshotSeq != 0 {
		t.Fatalf("metrics after failed compact = %+v", m)
	}
	// Budget spent: the retry publishes cleanly.
	if err := s.Compact(state); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.SnapshotSeq != 1 || m.WALEvents != 0 {
		t.Fatalf("metrics after retried compact = %+v", m)
	}
	s.Close()

	_, evs := openT(t, dir)
	wantEvents(t, evs, state)
}

// TestInjectedCompactFailureLeavesStoreUsable: a failure at the compaction
// entry site leaves both WAL and snapshot chain untouched.
func TestInjectedCompactFailureLeavesStoreUsable(t *testing.T) {
	dir := t.TempDir()
	in := faults.New(29, map[string]faults.Site{
		FaultCompact: {ErrProb: 1, MaxFaults: 1},
	})
	s, _, _ := openFaulty(t, dir, in)
	if err := s.Append(ev(EventUpload, "frame")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact([]Event{ev(EventUpload, "frame")}); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Compact err = %v, want injected", err)
	}
	if err := s.Compact([]Event{ev(EventUpload, "frame")}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, evs := openT(t, dir)
	wantEvents(t, evs, []Event{ev(EventUpload, "frame")})
}
