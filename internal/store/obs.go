package store

import (
	"repro/internal/telemetry"
)

// Obs collects the store's durability instrumentation: WAL append latency
// and sizes, compaction timings, and replay outcomes. A nil Obs in Options
// disables all of it — the zero value is inert because every telemetry
// instrument is a nil-safe no-op.
type Obs struct {
	// AppendSeconds times one durable Append (including the fsync when
	// Options.Sync is on); AppendBytes sizes the encoded records.
	AppendSeconds *telemetry.Histogram
	AppendBytes   *telemetry.Histogram
	// CompactSeconds times snapshot publication + WAL reset; Compactions
	// counts them.
	CompactSeconds *telemetry.Histogram
	Compactions    *telemetry.Counter
	// ReplayEvents counts events recovered on Open (snapshot + WAL);
	// ReplayTruncatedBytes counts corrupt WAL tail bytes dropped;
	// SnapshotFallbacks counts unreadable snapshots skipped for an older
	// version.
	ReplayEvents         *telemetry.Counter
	ReplayTruncatedBytes *telemetry.Counter
	SnapshotFallbacks    *telemetry.Counter
	// WALBytes / WALEvents gauge the live WAL (reset to zero on compaction).
	WALBytes  *telemetry.Gauge
	WALEvents *telemetry.Gauge
}

// NewObs registers the store metric family on r and returns the handle to
// pass in Options.Obs.
func NewObs(r *telemetry.Registry) *Obs {
	return &Obs{
		AppendSeconds:  r.Histogram("ctfl_store_append_seconds", "WAL append latency (including fsync when enabled)", nil),
		AppendBytes:    r.Histogram("ctfl_store_append_bytes", "encoded WAL record size", telemetry.SizeBuckets),
		CompactSeconds: r.Histogram("ctfl_store_compact_seconds", "snapshot publication + WAL reset time", nil),
		Compactions:    r.Counter("ctfl_store_compactions_total", "snapshots published by Compact"),
		ReplayEvents:   r.Counter("ctfl_store_replay_events_total", "events recovered on Open (snapshot + WAL)"),
		ReplayTruncatedBytes: r.Counter("ctfl_store_replay_truncated_bytes_total",
			"corrupt WAL tail bytes dropped during recovery"),
		SnapshotFallbacks: r.Counter("ctfl_store_snapshot_fallbacks_total",
			"unreadable snapshots skipped in favour of an older version"),
		WALBytes:  r.Gauge("ctfl_store_wal_bytes", "current WAL length in bytes"),
		WALEvents: r.Gauge("ctfl_store_wal_events", "events in the current WAL"),
	}
}
