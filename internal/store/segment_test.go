package store

import (
	"bytes"
	"fmt"
	"testing"
)

func TestRetainCursor(t *testing.T) {
	dir := t.TempDir()
	s, evs, err := Open(dir, Options{Retain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 || s.Sequence() != 0 {
		t.Fatalf("fresh store: %d events, seq %d", len(evs), s.Sequence())
	}

	payload := []byte("mutable")
	if err := s.Append(Event{Type: EventUpload, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // caller reuses its buffer; the log must hold a copy
	if err := s.AppendBatch([]Event{
		{Type: EventRound, Payload: []byte("r1")},
		{Type: EventNop}, // probes are not state: excluded from the log
		{Type: EventRound, Payload: []byte("r2")},
	}); err != nil {
		t.Fatal(err)
	}

	if got := s.Sequence(); got != 3 {
		t.Fatalf("Sequence = %d, want 3 (Nop excluded)", got)
	}
	all, end, ok := s.EventsFrom(0)
	if !ok || end != 3 || len(all) != 3 {
		t.Fatalf("EventsFrom(0) = %d events, end %d, ok %v", len(all), end, ok)
	}
	if !bytes.Equal(all[0].Payload, []byte("mutable")) {
		t.Fatalf("retained payload aliased the caller buffer: %q", all[0].Payload)
	}
	if all[1].Type != EventRound || !bytes.Equal(all[2].Payload, []byte("r2")) {
		t.Fatalf("retained order wrong: %+v", all)
	}

	tail, end, ok := s.EventsFrom(2)
	if !ok || end != 3 || len(tail) != 1 || !bytes.Equal(tail[0].Payload, []byte("r2")) {
		t.Fatalf("EventsFrom(2) = %+v end %d ok %v", tail, end, ok)
	}
	if _, _, ok := s.EventsFrom(4); ok {
		t.Fatal("cursor beyond the log end reported ok")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRetainSeedsFromReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(Event{Type: EventUpload, Payload: []byte(fmt.Sprintf("u%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(Event{Type: EventNop}); err != nil {
		t.Fatal(err)
	}
	if got := s.Sequence(); got != 0 {
		t.Fatalf("retention disabled but Sequence = %d", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, evs, err := Open(dir, Options{Retain: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(evs) != 5 { // replay reports everything, including the Nop
		t.Fatalf("replayed %d events, want 5", len(evs))
	}
	if got := s2.Sequence(); got != 4 {
		t.Fatalf("Sequence after replay = %d, want 4 (Nop excluded)", got)
	}
	all, _, ok := s2.EventsFrom(0)
	if !ok || len(all) != 4 || !bytes.Equal(all[3].Payload, []byte("u3")) {
		t.Fatalf("EventsFrom(0) after replay = %+v ok %v", all, ok)
	}
}
