package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string) (*Store, []Event) {
	t.Helper()
	s, evs, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s, evs
}

func ev(typ byte, payload string) Event { return Event{Type: typ, Payload: []byte(payload)} }

func wantEvents(t *testing.T, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("event %d = {%d %q}, want {%d %q}",
				i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, evs := openT(t, dir)
	if len(evs) != 0 {
		t.Fatalf("fresh store replayed %d events", len(evs))
	}
	want := []Event{
		ev(EventEncoder, `{"w":4}`),
		ev(EventModel, "model-bytes\x00\x01"),
		ev(EventUpload, "frame-1"),
		ev(EventUpload, ""), // empty payloads are legal
	}
	for _, e := range want {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.WALEvents != int64(len(want)) || m.WALBytes == 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, evs2 := openT(t, dir)
	defer s2.Close()
	wantEvents(t, evs2, want)
}

func TestWALCorruptionTruncatesAtLastGoodRecord(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	good := []Event{ev(EventEncoder, "enc"), ev(EventUpload, "frame-a"), ev(EventUpload, "frame-b")}
	for _, e := range good {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one bit inside the last record's payload: replay must keep the
	// first two records and truncate the file at the last good boundary.
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, evs := openT(t, dir)
	wantEvents(t, evs, good[:2])
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(raw)) {
		t.Fatalf("corrupt tail not truncated: %d bytes", fi.Size())
	}

	// Appends after recovery land at the truncated boundary and replay.
	if err := s2.Append(ev(EventUpload, "frame-c")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, evs3 := openT(t, dir)
	wantEvents(t, evs3, append(append([]Event(nil), good[:2]...), ev(EventUpload, "frame-c")))
}

func TestTornTailRecordIsDropped(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	s.Append(ev(EventEncoder, "enc"))
	s.Append(ev(EventUpload, "a-longer-frame-payload"))
	s.Close()

	// Simulate a crash mid-write: chop the last record in half.
	walPath := filepath.Join(dir, walName)
	raw, _ := os.ReadFile(walPath)
	os.WriteFile(walPath, raw[:len(raw)-10], 0o644)

	_, evs := openT(t, dir)
	wantEvents(t, evs, []Event{ev(EventEncoder, "enc")})
}

func TestCompactSnapshotAndReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	for i := 0; i < 5; i++ {
		s.Append(ev(EventUpload, fmt.Sprintf("frame-%d", i)))
	}
	state := []Event{ev(EventEncoder, "enc"), ev(EventUpload, "merged")}
	if err := s.Compact(state); err != nil {
		t.Fatal(err)
	}
	if got := s.WALSize(); got != 0 {
		t.Fatalf("WAL size after compact = %d", got)
	}
	m := s.Metrics()
	if m.SnapshotSeq != 1 || m.LastSnapshot.IsZero() {
		t.Fatalf("metrics after compact = %+v", m)
	}
	// Post-compaction events go to the fresh WAL.
	s.Append(ev(EventUpload, "after"))
	s.Close()

	_, evs := openT(t, dir)
	wantEvents(t, evs, append(append([]Event(nil), state...), ev(EventUpload, "after")))
}

func TestCorruptNewestSnapshotFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	v1 := []Event{ev(EventEncoder, "enc-v1")}
	if err := s.Compact(v1); err != nil {
		t.Fatal(err)
	}
	v2 := []Event{ev(EventEncoder, "enc-v2"), ev(EventUpload, "u")}
	if err := s.Compact(v2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the newest snapshot; boot must fall back to version 1.
	newest := filepath.Join(dir, "snapshot-000002.snap")
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(newest, raw, 0o644)

	s2, evs := openT(t, dir)
	wantEvents(t, evs, v1)
	// The next compaction atomically replaces the corrupt version, and a
	// subsequent boot reads the repaired newest snapshot.
	v3 := []Event{ev(EventEncoder, "enc-v3")}
	if err := s2.Compact(v3); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, evs3 := openT(t, dir)
	defer s3.Close()
	wantEvents(t, evs3, v3)
}

func TestOldSnapshotsPruned(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Compact([]Event{ev(EventEncoder, fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := s.snapshotSeqs()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != keepSnapshots {
		t.Fatalf("kept %d snapshots, want %d", len(seqs), keepSnapshots)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Append(ev(EventUpload, fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()
	_, evs := openT(t, dir)
	if len(evs) != writers*per {
		t.Fatalf("replayed %d events, want %d", len(evs), writers*per)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	s.Close()
	if err := s.Append(ev(EventUpload, "x")); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := s.Compact(nil); err == nil {
		t.Fatal("compact after close should fail")
	}
}
