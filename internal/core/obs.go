package core

import (
	"repro/internal/telemetry"
)

// Obs collects the tracer's hot-path instrumentation: how often each
// Eq. 4 evaluation strategy wins, per-query and per-pass latency, and how
// much work the pattern dedup avoids. A nil Obs in Config disables all of
// it; the zero value is inert (every instrument is a nil-safe no-op), so
// the tracing kernel never branches on more than one pointer.
type Obs struct {
	// BuildSeconds times index construction (NewTracerFromUploads).
	BuildSeconds *telemetry.Histogram
	// TraceSeconds times one full Trace pass over a test table.
	TraceSeconds *telemetry.Histogram
	// QuerySeconds times one Eq. 4 query (one unique test pattern).
	QuerySeconds *telemetry.Histogram
	// IndexQueries / ScanQueries count which evaluation strategy the
	// cost model picked; EarlyRejects counts queries answered without
	// touching either (zero denominator or maxTotal bound).
	IndexQueries *telemetry.Counter
	ScanQueries  *telemetry.Counter
	EarlyRejects *telemetry.Counter
	// PatternDedupHits counts test instances served by another instance's
	// identical activation pattern — queries the dedup cache absorbed.
	PatternDedupHits *telemetry.Counter
	// UniqueGroups gauges the deduplicated training-pattern count of the
	// most recently built index.
	UniqueGroups *telemetry.Gauge
}

// NewObs registers the tracer metric family on r and returns the handle
// to pass in Config.Obs.
func NewObs(r *telemetry.Registry) *Obs {
	return &Obs{
		BuildSeconds: r.Histogram("ctfl_tracer_build_seconds", "tracing index construction time", nil),
		TraceSeconds: r.Histogram("ctfl_tracer_trace_seconds", "full tracing pass time over one test table", nil),
		QuerySeconds: r.Histogram("ctfl_tracer_query_seconds", "single Eq.4 query time", nil),
		IndexQueries: r.Counter(`ctfl_tracer_queries_total{strategy="index"}`, "Eq.4 queries answered by the inverted index"),
		ScanQueries:  r.Counter(`ctfl_tracer_queries_total{strategy="scan"}`, "Eq.4 queries answered by the bit-parallel scan"),
		EarlyRejects: r.Counter(`ctfl_tracer_queries_total{strategy="reject"}`, "Eq.4 queries rejected by the maxTotal bound"),
		PatternDedupHits: r.Counter("ctfl_tracer_pattern_dedup_hits_total",
			"test instances served by an identical already-traced pattern"),
		UniqueGroups: r.Gauge("ctfl_tracer_unique_groups", "deduplicated training pattern groups in the index"),
	}
}
