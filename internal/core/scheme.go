package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
)

// Variant selects CTFL's allocation scheme.
type Variant int

// Allocation variants.
const (
	Micro Variant = iota // Eq. 5, size-proportional
	Macro                // Eq. 6, replication-robust
)

func (v Variant) String() string {
	switch v {
	case Micro:
		return "micro"
	case Macro:
		return "macro"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Scheme is the end-to-end CTFL contribution estimator: one FedAvg training
// pass over all participants, one rule extraction, one tracing pass, one
// allocation. It satisfies the valuation.Scheme interface.
type Scheme struct {
	Variant Variant
	Trainer *fl.Trainer
	Cfg     Config
}

// Name implements the valuation scheme naming convention of the paper's
// figures (CTFL_micro / CTFL_macro).
func (s *Scheme) Name() string {
	return "CTFL-" + s.Variant.String()
}

// Run executes the full pipeline and returns every intermediate artifact:
// the trained global model, the extracted rule set, and the tracing result
// (from which scores, profiles and robustness reports all derive).
func (s *Scheme) Run(parts []*fl.Participant, test *dataset.Table) (*nn.Model, *rules.Set, *Result, error) {
	if s.Trainer == nil {
		return nil, nil, nil, fmt.Errorf("core: Scheme needs a Trainer")
	}
	model, err := s.Trainer.Train(parts)
	if err != nil {
		return nil, nil, nil, err
	}
	rs := rules.Extract(model, s.Trainer.Encoder())
	tracer := NewTracer(rs, parts, s.Cfg)
	res := tracer.Trace(test)
	return model, rs, res, nil
}

// Scores trains, traces and allocates in one call.
func (s *Scheme) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	_, _, res, err := s.Run(parts, test)
	if err != nil {
		return nil, err
	}
	if s.Variant == Macro {
		return res.MacroScores(), nil
	}
	return res.MicroScores(), nil
}
