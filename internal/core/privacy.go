package core

// This file implements the privacy hardening the paper sketches in its Data
// Privacy Analysis (Section V): participants upload only the rule-activation
// vectors of their training data, and those vectors "can be further
// perturbed to guarantee differential privacy". The mechanism here is
// bitwise randomized response, the standard local-DP primitive for binary
// vectors: each activation bit is reported truthfully with probability
// e^eps/(1+e^eps) and flipped otherwise, giving eps-local differential
// privacy per bit.

import (
	"math"
	"math/rand"

	"repro/internal/bitset"
)

// flipProbability returns the randomized-response flip probability for a
// per-bit privacy budget eps: p = 1 / (1 + e^eps). eps <= 0 is rejected by
// the caller; larger eps means less noise.
func flipProbability(eps float64) float64 {
	return 1 / (1 + math.Exp(eps))
}

// PerturbActivations applies eps-local-DP randomized response to an
// activation bitset, returning a new set. It panics if eps <= 0.
func PerturbActivations(s *bitset.Set, eps float64, r *rand.Rand) *bitset.Set {
	if eps <= 0 {
		panic("core: DP epsilon must be positive")
	}
	p := flipProbability(eps)
	out := s.Clone()
	for i := 0; i < s.Width(); i++ {
		if r.Float64() < p {
			if out.Test(i) {
				out.Clear(i)
			} else {
				out.Set(i)
			}
		}
	}
	return out
}

// WithLocalDP returns a tracer whose indexed training activation vectors
// have been perturbed with eps-local-DP randomized response, simulating
// participants uploading privatized vectors. The test-side activations are
// computed by the federation itself and stay exact. Tracing quality degrades
// gracefully as eps shrinks; BenchmarkAblationDP quantifies the trade-off.
func (t *Tracer) WithLocalDP(eps float64, seed int64) *Tracer {
	r := rand.New(rand.NewSource(seed))
	dp := &Tracer{
		cfg:        t.cfg,
		obs:        t.obs,
		rs:         t.rs,
		numParts:   t.numParts,
		trainOwner: t.trainOwner,
		trainLabel: t.trainLabel,
		trainActs:  make([]*bitset.Set, len(t.trainActs)),
	}
	dp.trainByLabel = t.trainByLabel
	for j, s := range t.trainActs {
		// Perturb the full pattern, then re-restrict to the instance's
		// class side as NewTracer does (the class mask is public model
		// structure, not private data).
		noisy := PerturbActivations(s, eps, r)
		dp.trainActs[j] = noisy.And(t.rs.ClassMask(t.trainLabel[j]))
	}
	dp.buildIndex()
	return dp
}
