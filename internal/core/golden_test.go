package core

// Golden bit-identity tests for the tracing kernel. The hashes below were
// produced by the pre-overhaul linear-scan tracer (WeightedIntersect over
// every same-label training upload); the inverted-index kernel must
// reproduce Counts, TrainMatched, matched sets, and micro/macro scores
// bit-for-bit. The model is trained with Workers=1 so the fixture is
// machine-independent.

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

// goldenFixture trains a small deterministic federation on synthetic adult
// rows and returns the extracted rules, participants, and a test split.
func goldenFixture(t testing.TB) (*rules.Set, []*fl.Participant, *dataset.Table) {
	t.Helper()
	r := stats.NewRNG(21)
	tab := dataset.Adult(r, 600)
	idx := r.Perm(tab.Len())
	train, test := tab.Subset(idx[:480]), tab.Subset(idx[480:])
	enc, err := dataset.NewEncoder(tab.Schema, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := enc.EncodeTable(train)
	m, err := nn.New(enc.Width(), nn.Config{
		Hidden: []int{32}, Epochs: 6, Grafting: true, Seed: 4, Workers: 1,
		L1Logic: 2e-4, L2Head: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(xs, ys)
	rs := rules.Extract(m, enc)
	parts := fl.PartitionSkewLabel(train, 4, 0.8, r)
	return rs, parts, test
}

func hashInts(h uint32, vs ...int) uint32 {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
		h = crc32.Update(h, crc32.IEEETable, b[:])
	}
	return h
}

func hashF64s(h uint32, vs ...float64) uint32 {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h = crc32.Update(h, crc32.IEEETable, b[:])
	}
	return h
}

func traceHash(res *Result) uint32 {
	h := hashInts(0, res.NumParticipants, res.TestSize)
	h = hashInts(h, res.Pred...)
	h = hashInts(h, res.Truth...)
	for _, row := range res.Counts {
		h = hashInts(h, row...)
	}
	h = hashInts(h, res.TrainMatched...)
	h = hashF64s(h, res.MicroScores()...)
	h = hashF64s(h, res.MacroScores()...)
	return h
}

func TestGoldenTrace(t *testing.T) {
	rs, parts, test := goldenFixture(t)
	for _, tc := range []struct {
		name string
		cfg  Config
		want uint32
	}{
		{"tau-0.9", Config{TauW: 0.9}, 0x95fa6fba},
		{"tau-1.0-delta-3", Config{TauW: 1.0, Delta: 3}, 0x294eb4ea},
		{"grouped", Config{TauW: 0.85, Grouping: true}, 0x544cfcae},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tracer := NewTracer(rs, parts, tc.cfg)
			res := tracer.Trace(test)
			if h := traceHash(res); h != tc.want {
				t.Errorf("golden trace hash %#08x, want %#08x", h, tc.want)
			}
		})
	}
}

// TestGoldenTraceActivations locks the multiclass entry point: per-pattern
// counts for every test activation pattern on both class sides.
func TestGoldenTraceActivations(t *testing.T) {
	rs, parts, test := goldenFixture(t)
	tracer := NewTracer(rs, parts, Config{TauW: 0.9})
	acts, pred := rs.ActivationsTable(test)
	h := uint32(0)
	for i, a := range acts {
		side := a.Clone().And(rs.ClassMask(pred[i]))
		h = hashInts(h, tracer.TraceActivations(side, pred[i])...)
	}
	const want = 0xd78c58a2
	if h != want {
		t.Errorf("golden TraceActivations hash %#08x, want %#08x", h, want)
	}
}
