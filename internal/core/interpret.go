package core

// This file implements CTFL's interpretability layer (Section IV-B):
// per-participant beneficial and harmful characteristics expressed as their
// most frequently activated rules, and data-collection guidance from
// misclassified test cases that lack training coverage.

import (
	"fmt"
	"sort"
	"strings"
)

// RuleFrequency pairs a rule with its accumulated (weight-regularized)
// activation credit.
type RuleFrequency struct {
	RuleIndex int
	Expr      string
	Positive  bool // rule supports the positive class
	Weight    float64
	Credit    float64
}

// ParticipantProfile summarizes one participant's role in the federation.
type ParticipantProfile struct {
	Participant int
	// Beneficial lists the rules through which the participant most often
	// earned credit on correctly classified test data.
	Beneficial []RuleFrequency
	// Harmful lists the rules through which the participant most often
	// contributed to misclassifications.
	Harmful []RuleFrequency
	// UselessRatio is the fraction of the participant's training data never
	// matched by any test instance.
	UselessRatio float64
}

// topRules converts a frequency map into a sorted, truncated list. Credits
// are normalized by the test-set size so they are comparable across runs.
func (r *Result) topRules(freq map[int]float64, k int) []RuleFrequency {
	norm := 1.0
	if r.TestSize > 0 {
		norm = 1 / float64(r.TestSize)
	}
	out := make([]RuleFrequency, 0, len(freq))
	for ri, credit := range freq {
		rf := RuleFrequency{RuleIndex: ri, Credit: credit * norm}
		if rule, ok := r.tracer.rs.RuleByIndex(ri); ok {
			rf.Expr = rule.Expr
			rf.Positive = rule.Positive
			rf.Weight = rule.Weight
		}
		out = append(out, rf)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Credit != out[b].Credit {
			return out[a].Credit > out[b].Credit
		}
		return out[a].RuleIndex < out[b].RuleIndex
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Profile returns participant i's interpretability profile with at most k
// rules per list (k <= 0 means all).
func (r *Result) Profile(i, k int) ParticipantProfile {
	return ParticipantProfile{
		Participant:  i,
		Beneficial:   r.topRules(r.beneficialFreq[i], k),
		Harmful:      r.topRules(r.harmfulFreq[i], k),
		UselessRatio: r.UselessRatio()[i],
	}
}

// Profiles returns every participant's profile with at most k rules each.
func (r *Result) Profiles(k int) []ParticipantProfile {
	useless := r.UselessRatio()
	out := make([]ParticipantProfile, r.NumParticipants)
	for i := range out {
		out[i] = ParticipantProfile{
			Participant:  i,
			Beneficial:   r.topRules(r.beneficialFreq[i], k),
			Harmful:      r.topRules(r.harmfulFreq[i], k),
			UselessRatio: useless[i],
		}
	}
	return out
}

// CollectionGuidance returns the rules most frequently activated by
// misclassified, under-covered test instances: the patterns for which the
// federation should solicit new training data (Section IV-B, "Guide Data
// Collection"). At most k entries are returned (k <= 0 means all).
func (r *Result) CollectionGuidance(k int) []RuleFrequency {
	return r.topRules(r.uncoveredRuleFreq, k)
}

// FormatProfile renders a profile with participant names for reports.
func FormatProfile(p ParticipantProfile, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "participant %s (useless-data ratio %.2f)\n", name, p.UselessRatio)
	if len(p.Beneficial) > 0 {
		b.WriteString("  beneficial characteristics:\n")
		for _, rf := range p.Beneficial {
			fmt.Fprintf(&b, "    [%s credit=%.3f] %s\n", sideMark(rf.Positive), rf.Credit, rf.Expr)
		}
	}
	if len(p.Harmful) > 0 {
		b.WriteString("  harmful characteristics:\n")
		for _, rf := range p.Harmful {
			fmt.Fprintf(&b, "    [%s blame=%.3f] %s\n", sideMark(rf.Positive), rf.Credit, rf.Expr)
		}
	}
	return b.String()
}

func sideMark(positive bool) string {
	if positive {
		return "+"
	}
	return "-"
}
