package core

// Hot-path benchmarks for the tracing kernel, isolated from the experiment
// harness: a trained bench-scale model, an 8-participant federation, and a
// few thousand indexed training uploads. BENCH_*.json (repo root) records
// the before/after trajectory of these numbers across PRs; regenerate with
// `go run ./cmd/ctfl bench` (see README "Performance").

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// benchFixture trains one bench-scale model on the synthetic adult data and
// indexes the federation's training uploads.
func benchFixture(b *testing.B, trainRows, testRows int) (*Tracer, *dataset.Table) {
	return benchFixtureCfg(b, trainRows, testRows, Config{TauW: 0.9})
}

// benchFixtureCfg is benchFixture with a caller-chosen tracer config (used
// by the telemetry-overhead benchmarks).
func benchFixtureCfg(b *testing.B, trainRows, testRows int, cfg Config) (*Tracer, *dataset.Table) {
	b.Helper()
	r := stats.NewRNG(7)
	tab := dataset.Adult(r, trainRows+testRows)
	idx := r.Perm(tab.Len())
	train, test := tab.Subset(idx[:trainRows]), tab.Subset(idx[trainRows:])
	enc, err := dataset.NewEncoder(tab.Schema, 10, r)
	if err != nil {
		b.Fatal(err)
	}
	xs, ys := enc.EncodeTable(train)
	m, err := nn.New(enc.Width(), nn.Config{
		Hidden: []int{64}, Epochs: 8, Grafting: true, Seed: 2,
		L1Logic: 2e-4, L2Head: 1e-3,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Train(xs, ys)
	rs := rules.Extract(m, enc)
	parts := fl.PartitionSkewSample(train, 8, 2.0, r)
	return NewTracer(rs, parts, cfg), test
}

// BenchmarkTraceIndexed measures a full tracing pass (Eq. 4 for every test
// instance plus allocation bookkeeping) against 4000 indexed uploads.
func BenchmarkTraceIndexed(b *testing.B) {
	tracer, test := benchFixture(b, 4000, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tracer.Trace(test)
	}
}

// BenchmarkTraceIndexedObserved is BenchmarkTraceIndexed with the full
// tracer telemetry (strategy counters, latency histograms) enabled, so
// BENCH_*.json pins the instrumentation overhead against the plain run.
func BenchmarkTraceIndexedObserved(b *testing.B) {
	reg := telemetry.NewRegistry()
	tracer, test := benchFixtureCfg(b, 4000, 400, Config{TauW: 0.9, Obs: NewObs(reg)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tracer.Trace(test)
	}
}

// BenchmarkTraceActivations measures the single-pattern Eq. 4 primitive
// (the multiclass extension's entry point) on rotating test patterns.
func BenchmarkTraceActivations(b *testing.B) {
	tracer, test := benchFixture(b, 4000, 64)
	acts, pred := tracer.Rules().ActivationsTable(test)
	sides := make([]*bitset.Set, len(acts))
	for i, a := range acts {
		sides[i] = a.Clone().And(tracer.Rules().ClassMask(pred[i]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % len(sides)
		_ = tracer.TraceActivations(sides[s], pred[s])
	}
}

// BenchmarkNewTracer measures index construction, which the overhaul trades
// a little of (building posting lists) for much faster per-pattern tracing.
func BenchmarkNewTracer(b *testing.B) {
	tracer, _ := benchFixture(b, 4000, 64)
	rs := tracer.Rules()
	uploads := make([]TrainingUpload, tracer.NumTraining())
	for j := range uploads {
		uploads[j] = TrainingUpload{
			Owner:       tracer.TrainOwner(j),
			Label:       tracer.trainLabel[j],
			Activations: tracer.trainActs[j].Clone(),
		}
	}
	cfg := tracer.Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ups := make([]TrainingUpload, len(uploads))
		for j := range uploads {
			ups[j] = uploads[j]
			ups[j].Activations = uploads[j].Activations.Clone()
		}
		_ = NewTracerFromUploads(rs, tracer.NumParticipants(), ups, cfg)
	}
}
