// Package core implements CTFL — Contribution Tracing for Federated
// Learning — the paper's primary contribution. Given a single rule-based
// global model trained on all participants' data, the tracer matches every
// test instance to the training data that learned its activated rules
// (Eq. 4), the allocators convert those matches into micro (Eq. 5) and macro
// (Eq. 6) contribution scores, the loss tracer flags label-flipping attacks,
// and the interpreter summarizes each participant's beneficial and harmful
// characteristics through frequently activated rules.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/rules"
)

// Config controls tracing.
type Config struct {
	// TauW is the activation-overlap threshold of Eq. 4 in (0, 1]. The paper
	// recommends values near 1.0 for rule-rich datasets and defaults the
	// range to [0.8, 1]. Default 0.9.
	TauW float64
	// Delta is the macro scheme's minimum related-instance count (Eq. 6).
	// Default 2.
	Delta int
	// Grouping historically enabled the Max-Miner grouped fast path for
	// large datasets (Section III-C, "Efficient Computation of CTFL"). The
	// tracer now always runs on an inverted rule index that strictly
	// dominates that candidate pruning — every pattern only visits training
	// instances sharing at least one activated rule — so this flag is kept
	// for API compatibility and no longer changes behaviour or results.
	Grouping bool
	// GroupMinSupport was the minimum support fraction for Max-Miner groups.
	// Retained for API compatibility; unused by the indexed tracer.
	GroupMinSupport float64
	// Workers bounds tracing parallelism; 0 means a small default.
	Workers int
	// Obs receives tracer telemetry (strategy counters, query latency).
	// Nil disables instrumentation at the cost of one pointer check.
	Obs *Obs
}

func (c Config) withDefaults() Config {
	if c.TauW == 0 {
		c.TauW = 0.9
	}
	if c.Delta == 0 {
		c.Delta = 2
	}
	if c.GroupMinSupport == 0 {
		c.GroupMinSupport = 0.05
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	return c
}

// Tracer matches test instances against the training data of a federation
// through the activated rules of a trained rule-based model.
type Tracer struct {
	cfg Config
	// obs is cfg.Obs or an inert zero value, so instrumentation sites
	// never need a nil check on the struct itself.
	obs *Obs
	rs  *rules.Set

	numParts int
	// Per training instance: owner participant index, label, and class-side
	// activation bitset (restricted to the rules supporting its own label).
	trainOwner []int
	trainLabel []int
	trainActs  []*bitset.Set
	// trainByLabel[l] lists training indices with label l.
	trainByLabel [2][]int

	// Tracing index, built once by buildIndex. Eq. 4 is a pure function of
	// a training instance's class-side activation pattern, and real
	// federations repeat patterns heavily, so the index deduplicates
	// training instances into unique (label, pattern) groups and answers
	// every query over those:
	//
	//	upat[u], uLabel[u], uTotal[u]  unique pattern, its label and its
	//	                               precomputed weighted activation total
	//	                               (the largest overlap it can reach)
	//	uHist[u*numParts:...]          per-owner instance counts of group u
	//	uMembers[u]                    training instance ids of group u
	//	uByLabel[l]                    unique ids with label l, ascending
	//	postings[r]                    unique ids whose pattern includes rule
	//	                               r, ascending (the inverted index)
	//	maxTotal[l]                    max of uTotal over label l — patterns
	//	                               whose Eq. 4 threshold exceeds it are
	//	                               rejected without touching anything
	upat     []*bitset.Set
	uLabel   []int32
	uTotal   []float64
	uHist    []int32
	uMembers [][]int32
	uByLabel [2][]int32
	postings [][]int32
	maxTotal [2]float64

	// scratch pools per-goroutine accumulator state for traceInto.
	scratch sync.Pool
}

// TrainingUpload is one training instance's contribution to the tracing
// index, as a participant would upload it to the federation: the owner's
// participant index, the instance label, and the full rule-activation
// bitset. No raw feature values appear — this is the paper's privacy
// protocol made explicit (see also internal/protocol for the wire format).
type TrainingUpload struct {
	Owner       int
	Label       int
	Activations *bitset.Set
}

// NewTracer indexes the participants' training data under the extracted rule
// set. Participants are identified by their slice position, matching the
// score vectors returned by the allocators. Only the participants' rule
// activation vectors are consumed — never raw feature values.
func NewTracer(rs *rules.Set, parts []*fl.Participant, cfg Config) *Tracer {
	var uploads []TrainingUpload
	for pi, p := range parts {
		acts, _ := rs.ActivationsTable(p.Data)
		for i, a := range acts {
			uploads = append(uploads, TrainingUpload{
				Owner:       pi,
				Label:       p.Data.Instances[i].Label,
				Activations: a,
			})
		}
	}
	return NewTracerFromUploads(rs, len(parts), uploads, cfg)
}

// NewTracerFromUploads builds a tracer directly from uploaded activation
// vectors — the entry point a real federation server would use after
// decoding participants' protocol messages. Upload activation sets are
// owned by the tracer afterwards (they are masked in place).
func NewTracerFromUploads(rs *rules.Set, numParts int, uploads []TrainingUpload, cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	if cfg.TauW <= 0 || cfg.TauW > 1 {
		panic(fmt.Sprintf("core: TauW must be in (0,1], got %v", cfg.TauW))
	}
	t := &Tracer{cfg: cfg, obs: cfg.Obs, rs: rs, numParts: numParts}
	if t.obs == nil {
		t.obs = &Obs{}
	}
	buildStart := time.Now()
	for _, u := range uploads {
		if u.Owner < 0 || u.Owner >= numParts {
			panic(fmt.Sprintf("core: upload owner %d out of range [0,%d)", u.Owner, numParts))
		}
		if u.Label != 0 && u.Label != 1 {
			panic(fmt.Sprintf("core: upload label %d invalid", u.Label))
		}
		side := u.Activations.And(rs.ClassMask(u.Label))
		idx := len(t.trainActs)
		t.trainOwner = append(t.trainOwner, u.Owner)
		t.trainLabel = append(t.trainLabel, u.Label)
		t.trainActs = append(t.trainActs, side)
		t.trainByLabel[u.Label] = append(t.trainByLabel[u.Label], idx)
	}
	t.buildIndex()
	t.obs.BuildSeconds.ObserveSince(buildStart)
	t.obs.UniqueGroups.Set(float64(len(t.upat)))
	return t
}

// buildIndex deduplicates the training instances into unique (label,
// class-side pattern) groups and constructs the rule → group posting lists,
// per-group owner histograms and member lists, and per-group weighted
// totals. All slabs are carved from contiguous backing arrays.
func (t *Tracer) buildIndex() {
	width := t.rs.Width()
	weights := t.rs.Weights()

	// 1. Dedupe training patterns by raw (label, words) key.
	idByKey := map[string]int32{}
	var keyBuf []byte
	uid := make([]int32, len(t.trainActs))
	for j, a := range t.trainActs {
		keyBuf = append(keyBuf[:0], byte(t.trainLabel[j]))
		keyBuf = a.AppendKey(keyBuf)
		id, ok := idByKey[string(keyBuf)]
		if !ok {
			id = int32(len(t.upat))
			idByKey[string(keyBuf)] = id
			l := t.trainLabel[j]
			t.upat = append(t.upat, a)
			t.uLabel = append(t.uLabel, int32(l))
			t.uByLabel[l] = append(t.uByLabel[l], id)
		}
		uid[j] = id
	}
	nu := len(t.upat)

	// 2. Owner histograms and member lists per unique group.
	t.uHist = make([]int32, nu*t.numParts)
	sizes := make([]int32, nu)
	for j := range t.trainActs {
		t.uHist[int(uid[j])*t.numParts+t.trainOwner[j]]++
		sizes[uid[j]]++
	}
	memberSlab := make([]int32, len(t.trainActs))
	t.uMembers = make([][]int32, nu)
	off := 0
	for u, c := range sizes {
		t.uMembers[u] = memberSlab[off : off : off+int(c)]
		off += int(c)
	}
	for j := range t.trainActs {
		t.uMembers[uid[j]] = append(t.uMembers[uid[j]], int32(j))
	}

	// 3. Inverted index over unique patterns, plus weighted totals.
	ruleCount := make([]int32, width)
	incidences := 0
	for _, a := range t.upat {
		a.ForEach(func(r int) {
			ruleCount[r]++
			incidences++
		})
	}
	postSlab := make([]int32, incidences)
	t.postings = make([][]int32, width)
	off = 0
	for r, c := range ruleCount {
		t.postings[r] = postSlab[off : off : off+int(c)]
		off += int(c)
	}
	t.uTotal = make([]float64, nu)
	t.maxTotal = [2]float64{}
	for u, a := range t.upat {
		tot := 0.0
		a.ForEach(func(r int) {
			t.postings[r] = append(t.postings[r], int32(u))
			tot += weights[r]
		})
		t.uTotal[u] = tot
		if l := t.uLabel[u]; tot > t.maxTotal[l] {
			t.maxTotal[l] = tot
		}
	}
	t.scratch = sync.Pool{New: func() any {
		return &traceScratch{acc: make([]float64, nu), stamp: make([]uint32, nu)}
	}}
}

// traceScratch is per-goroutine accumulator state for traceInto: acc holds
// weighted-overlap partial sums per unique pattern, stamp generation-tags
// entries so the arrays never need zeroing between queries, and
// touched/matched are reusable id buffers.
type traceScratch struct {
	acc     []float64
	stamp   []uint32
	gen     uint32
	touched []int32
	matched []int32
}

func (t *Tracer) getScratch() *traceScratch  { return t.scratch.Get().(*traceScratch) }
func (t *Tracer) putScratch(sc *traceScratch) { t.scratch.Put(sc) }

// NumParticipants returns the number of indexed participants.
func (t *Tracer) NumParticipants() int { return t.numParts }

// NumTraining returns the number of indexed training instances.
func (t *Tracer) NumTraining() int { return len(t.trainActs) }

// Config returns the tracer's effective configuration.
func (t *Tracer) Config() Config { return t.cfg }

// Rules returns the rule set the tracer operates on.
func (t *Tracer) Rules() *rules.Set { return t.rs }

// TrainOwner returns the participant index owning training instance j.
func (t *Tracer) TrainOwner(j int) int { return t.trainOwner[j] }

// Result holds one tracing pass over a test set. All per-test slices are
// indexed by test-instance position.
type Result struct {
	NumParticipants int
	TestSize        int
	// Pred and Truth are the model's predictions and the true labels.
	Pred, Truth []int
	// Counts[te][i] = |D_i ∩ ct(x_te)| — participant i's related training
	// instances for test instance te (Eq. 4, traced on the predicted side,
	// which covers all four TP/TN/FP/FN cases of Section III-C).
	// Every row is an independent copy: mutating one row cannot corrupt
	// another test instance's counts.
	Counts [][]int
	// TrainMatched[j] counts how many test instances training instance j was
	// related to (drives the useless-data ratio).
	TrainMatched []int

	tracer *Tracer
	// beneficialFreq[i][r] accumulates weighted rule-activation credit of
	// rule r for participant i over correctly classified matches;
	// harmfulFreq likewise over misclassifications.
	beneficialFreq []map[int]float64
	harmfulFreq    []map[int]float64
	// uncoveredRuleFreq[r] accumulates weighted activations over
	// misclassified test instances with insufficient related data — the
	// data-collection guidance signal of Section IV-B.
	uncoveredRuleFreq map[int]float64
}

// Correct reports whether test instance te was classified correctly.
func (r *Result) Correct(te int) bool { return r.Pred[te] == r.Truth[te] }

// patternGroup clusters test instances sharing one predicted-side
// activation pattern; tracing is a pure function of the pattern, so each is
// traced once.
type patternGroup struct {
	rep     int // representative test index
	members []int
}

// traceOut is the per-pattern tracing result.
type traceOut struct {
	counts  []int
	matched []int32 // unique training-pattern ids that passed Eq. 4
}

// Trace runs the full tracing pass of Section III-C over the test table:
// for each test instance it determines the related training instances on
// the predicted-class side (TP/TN for correct predictions earn credit,
// FP/FN feed the loss analysis) and accumulates interpretability counters.
func (t *Tracer) Trace(test *dataset.Table) *Result {
	traceStart := time.Now()
	acts, pred := t.rs.ActivationsTable(test)
	res := &Result{
		NumParticipants:   t.numParts,
		TestSize:          test.Len(),
		Pred:              pred,
		Truth:             make([]int, test.Len()),
		Counts:            make([][]int, test.Len()),
		TrainMatched:      make([]int, len(t.trainActs)),
		tracer:            t,
		beneficialFreq:    newFreqMaps(t.numParts),
		harmfulFreq:       newFreqMaps(t.numParts),
		uncoveredRuleFreq: make(map[int]float64),
	}
	for i, in := range test.Instances {
		res.Truth[i] = in.Label
	}

	weights := t.rs.Weights()
	sideActs := make([]*bitset.Set, test.Len())
	sideWeight := make([]float64, test.Len())
	for i, a := range acts {
		side := a.AndInto(t.rs.ClassMask(pred[i]), nil)
		sideActs[i] = side
		sideWeight[i] = side.WeightedCount(weights)
	}

	// Dedupe identical (predicted label, side pattern) groups. The key is
	// the raw word encoding of the pattern prefixed by the predicted label —
	// no formatting, and the map lookup on string(keyBuf) does not allocate.
	byKey := map[string]*patternGroup{}
	var order []*patternGroup
	var keyBuf []byte
	for i := range sideActs {
		keyBuf = keyBuf[:0]
		keyBuf = append(keyBuf, byte(pred[i]))
		keyBuf = sideActs[i].AppendKey(keyBuf)
		g, ok := byKey[string(keyBuf)]
		if !ok {
			g = &patternGroup{rep: i}
			byKey[string(keyBuf)] = g
			order = append(order, g)
		}
		g.members = append(g.members, i)
	}

	// Every member beyond each group's representative is a query the
	// pattern dedup absorbed.
	t.obs.PatternDedupHits.Add(int64(test.Len() - len(order)))

	outs := make([]traceOut, len(order))
	var wg sync.WaitGroup
	sem := make(chan struct{}, t.cfg.Workers)
	for gi, g := range order {
		wg.Add(1)
		sem <- struct{}{}
		go func(gi int, g *patternGroup) {
			defer wg.Done()
			defer func() { <-sem }()
			outs[gi] = t.traceOne(sideActs[g.rep], sideWeight[g.rep], pred[g.rep])
		}(gi, g)
	}
	wg.Wait()

	// One contiguous slab for all Counts rows; each test instance gets its
	// own copy of its group's counts (no shared backing between rows).
	slab := make([]int, test.Len()*t.numParts)
	var trueSide *bitset.Set
	for gi, g := range order {
		out := outs[gi]
		for _, te := range g.members {
			row := slab[te*t.numParts : (te+1)*t.numParts : (te+1)*t.numParts]
			copy(row, out.counts)
			res.Counts[te] = row
			for _, u := range out.matched {
				for _, j := range t.uMembers[u] {
					res.TrainMatched[j]++
				}
			}
			trueSide = acts[te].AndInto(t.rs.ClassMask(res.Truth[te]), trueSide)
			t.accumulate(res, te, sideActs[te], trueSide, out)
		}
	}
	t.obs.TraceSeconds.ObserveSince(traceStart)
	return res
}

// TraceActivations runs Eq. 4 for one explicit class-side activation set:
// it returns the per-participant related-instance counts among training
// uploads of the given label. This is the low-level primitive used by the
// one-vs-rest multi-class extension (internal/multiclass), which supplies
// its own prediction logic and therefore cannot use Trace directly.
func (t *Tracer) TraceActivations(side *bitset.Set, label int) []int {
	denom := side.WeightedCount(t.rs.Weights())
	return t.traceOne(side, denom, label).counts
}

// traceOne computes Eq. 4 for one activation pattern: related training
// instances are those in the predicted class whose class-side activations
// cover at least TauW of the pattern's weighted activations.
func (t *Tracer) traceOne(side *bitset.Set, denom float64, label int) traceOut {
	var queryStart time.Time
	if t.obs.QuerySeconds != nil {
		queryStart = time.Now()
	}
	counts := make([]int, t.numParts)
	sc := t.getScratch()
	m := t.traceInto(side, denom, label, counts, sc)
	if t.obs.QuerySeconds != nil {
		t.obs.QuerySeconds.ObserveSince(queryStart)
	}
	var matched []int32
	if len(m) > 0 {
		matched = append(matched, m...)
	}
	t.putScratch(sc)
	return traceOut{counts: counts, matched: matched}
}

// traceInto is the zero-allocation tracing kernel. It evaluates Eq. 4 over
// the unique training-pattern groups, accumulates the matched groups' owner
// histograms into counts (which must be zeroed, length numParts), and
// returns the matched unique ids. The returned slice aliases sc and is only
// valid until the next traceInto call with the same scratch.
//
// Two evaluation strategies produce bit-identical results, and each query
// picks the cheaper one by predicted cost:
//
//   - inverted index: walk the posting list of every rule activated in
//     side, accumulating each touched group's weighted overlap. Rules are
//     visited in ascending order, so each group's overlap is summed in
//     exactly the order WeightedIntersect uses — the sums, and therefore
//     the threshold decisions, match the scan bit-for-bit (TestGoldenTrace
//     and TestPropertyIndexMatchesLinearScanRandom pin this down).
//     Cost ≈ total posting entries touched.
//   - bit-parallel scan: WeightedIntersect against every same-label unique
//     pattern. Cost ≈ number of same-label groups (each a few word ops).
//
// The index wins when side activates few, selective rules; the scan wins on
// dense patterns whose rules occur in most groups.
func (t *Tracer) traceInto(side *bitset.Set, denom float64, label int, counts []int, sc *traceScratch) []int32 {
	if denom <= 0 {
		t.obs.EarlyRejects.Inc()
		return nil
	}
	need := t.cfg.TauW*denom - 1e-12
	// No indexed group of this label can reach the threshold: the
	// precomputed per-group totals bound every possible overlap.
	if t.maxTotal[label] < need {
		t.obs.EarlyRejects.Inc()
		return nil
	}
	weights := t.rs.Weights()
	cand := t.uByLabel[label]
	postingWork := 0
	side.ForEach(func(r int) { postingWork += len(t.postings[r]) })

	matched := sc.matched[:0]
	// A posting entry (branch + float add) costs a few times more than one
	// word of a bit-parallel intersect; 2x scan size is the measured
	// break-even on word-sized rule sets.
	if postingWork <= 2*len(cand) {
		t.obs.IndexQueries.Inc()
		sc.gen++
		if sc.gen == 0 { // generation counter wrapped: clear stamps once
			for i := range sc.stamp {
				sc.stamp[i] = 0
			}
			sc.gen = 1
		}
		gen := sc.gen
		touched := sc.touched[:0]
		side.ForEach(func(r int) {
			w := weights[r]
			for _, u := range t.postings[r] {
				if sc.stamp[u] != gen {
					sc.stamp[u] = gen
					sc.acc[u] = w
					touched = append(touched, u)
				} else {
					sc.acc[u] += w
				}
			}
		})
		for _, u := range touched {
			if int(t.uLabel[u]) == label {
				if sc.acc[u] >= need {
					matched = append(matched, u)
				}
			}
		}
		sc.touched = touched
	} else {
		t.obs.ScanQueries.Inc()
		for _, u := range cand {
			if side.WeightedIntersect(t.upat[u], weights) >= need {
				matched = append(matched, u)
			}
		}
	}
	for _, u := range matched {
		hist := t.uHist[int(u)*t.numParts : (int(u)+1)*t.numParts]
		for i, h := range hist {
			counts[i] += int(h)
		}
	}
	sc.matched = matched
	return matched
}

// accumulate updates the interpretability counters for one test instance.
func (t *Tracer) accumulate(res *Result, te int, side, trueSide *bitset.Set, out traceOut) {
	weights := t.rs.Weights()
	correct := res.Pred[te] == res.Truth[te]
	totalRelated := 0
	for _, c := range out.counts {
		totalRelated += c
	}
	// Weighted rule activation counts per participant (Section IV-B):
	// rules with higher weights are prioritized.
	side.ForEach(func(ri int) {
		w := weights[ri]
		for pi, c := range out.counts {
			if c == 0 {
				continue
			}
			credit := w * float64(c)
			if correct {
				res.beneficialFreq[pi][ri] += credit
			} else {
				res.harmfulFreq[pi][ri] += credit
			}
		}
	})
	// Misclassified with insufficient coverage → record the true-class rules
	// that fired without training support, to guide data collection.
	if !correct && totalRelated < t.cfg.Delta {
		trueSide.ForEach(func(ri int) {
			res.uncoveredRuleFreq[ri] += weights[ri]
		})
	}
}

func newFreqMaps(n int) []map[int]float64 {
	out := make([]map[int]float64, n)
	for i := range out {
		out[i] = make(map[int]float64)
	}
	return out
}
