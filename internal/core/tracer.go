// Package core implements CTFL — Contribution Tracing for Federated
// Learning — the paper's primary contribution. Given a single rule-based
// global model trained on all participants' data, the tracer matches every
// test instance to the training data that learned its activated rules
// (Eq. 4), the allocators convert those matches into micro (Eq. 5) and macro
// (Eq. 6) contribution scores, the loss tracer flags label-flipping attacks,
// and the interpreter summarizes each participant's beneficial and harmful
// characteristics through frequently activated rules.
package core

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/fpm"
	"repro/internal/rules"
)

// Config controls tracing.
type Config struct {
	// TauW is the activation-overlap threshold of Eq. 4 in (0, 1]. The paper
	// recommends values near 1.0 for rule-rich datasets and defaults the
	// range to [0.8, 1]. Default 0.9.
	TauW float64
	// Delta is the macro scheme's minimum related-instance count (Eq. 6).
	// Default 2.
	Delta int
	// Grouping enables the Max-Miner grouped fast path for large datasets
	// (Section III-C, "Efficient Computation of CTFL").
	Grouping bool
	// GroupMinSupport is the minimum support fraction for Max-Miner groups.
	// Default 0.05.
	GroupMinSupport float64
	// Workers bounds tracing parallelism; 0 means a small default.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.TauW == 0 {
		c.TauW = 0.9
	}
	if c.Delta == 0 {
		c.Delta = 2
	}
	if c.GroupMinSupport == 0 {
		c.GroupMinSupport = 0.05
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	return c
}

// Tracer matches test instances against the training data of a federation
// through the activated rules of a trained rule-based model.
type Tracer struct {
	cfg Config
	rs  *rules.Set

	numParts int
	// Per training instance: owner participant index, label, and class-side
	// activation bitset (restricted to the rules supporting its own label).
	trainOwner []int
	trainLabel []int
	trainActs  []*bitset.Set
	// trainByLabel[l] lists training indices with label l.
	trainByLabel [2][]int
}

// TrainingUpload is one training instance's contribution to the tracing
// index, as a participant would upload it to the federation: the owner's
// participant index, the instance label, and the full rule-activation
// bitset. No raw feature values appear — this is the paper's privacy
// protocol made explicit (see also internal/protocol for the wire format).
type TrainingUpload struct {
	Owner       int
	Label       int
	Activations *bitset.Set
}

// NewTracer indexes the participants' training data under the extracted rule
// set. Participants are identified by their slice position, matching the
// score vectors returned by the allocators. Only the participants' rule
// activation vectors are consumed — never raw feature values.
func NewTracer(rs *rules.Set, parts []*fl.Participant, cfg Config) *Tracer {
	var uploads []TrainingUpload
	for pi, p := range parts {
		acts, _ := rs.ActivationsTable(p.Data)
		for i, a := range acts {
			uploads = append(uploads, TrainingUpload{
				Owner:       pi,
				Label:       p.Data.Instances[i].Label,
				Activations: a,
			})
		}
	}
	return NewTracerFromUploads(rs, len(parts), uploads, cfg)
}

// NewTracerFromUploads builds a tracer directly from uploaded activation
// vectors — the entry point a real federation server would use after
// decoding participants' protocol messages. Upload activation sets are
// owned by the tracer afterwards (they are masked in place).
func NewTracerFromUploads(rs *rules.Set, numParts int, uploads []TrainingUpload, cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	if cfg.TauW <= 0 || cfg.TauW > 1 {
		panic(fmt.Sprintf("core: TauW must be in (0,1], got %v", cfg.TauW))
	}
	t := &Tracer{cfg: cfg, rs: rs, numParts: numParts}
	for _, u := range uploads {
		if u.Owner < 0 || u.Owner >= numParts {
			panic(fmt.Sprintf("core: upload owner %d out of range [0,%d)", u.Owner, numParts))
		}
		if u.Label != 0 && u.Label != 1 {
			panic(fmt.Sprintf("core: upload label %d invalid", u.Label))
		}
		side := u.Activations.And(rs.ClassMask(u.Label))
		idx := len(t.trainActs)
		t.trainOwner = append(t.trainOwner, u.Owner)
		t.trainLabel = append(t.trainLabel, u.Label)
		t.trainActs = append(t.trainActs, side)
		t.trainByLabel[u.Label] = append(t.trainByLabel[u.Label], idx)
	}
	return t
}

// NumParticipants returns the number of indexed participants.
func (t *Tracer) NumParticipants() int { return t.numParts }

// NumTraining returns the number of indexed training instances.
func (t *Tracer) NumTraining() int { return len(t.trainActs) }

// Config returns the tracer's effective configuration.
func (t *Tracer) Config() Config { return t.cfg }

// Rules returns the rule set the tracer operates on.
func (t *Tracer) Rules() *rules.Set { return t.rs }

// TrainOwner returns the participant index owning training instance j.
func (t *Tracer) TrainOwner(j int) int { return t.trainOwner[j] }

// Result holds one tracing pass over a test set. All per-test slices are
// indexed by test-instance position.
type Result struct {
	NumParticipants int
	TestSize        int
	// Pred and Truth are the model's predictions and the true labels.
	Pred, Truth []int
	// Counts[te][i] = |D_i ∩ ct(x_te)| — participant i's related training
	// instances for test instance te (Eq. 4, traced on the predicted side,
	// which covers all four TP/TN/FP/FN cases of Section III-C).
	// Rows of test instances with identical activation patterns share the
	// same backing slice; treat Counts as read-only.
	Counts [][]int
	// TrainMatched[j] counts how many test instances training instance j was
	// related to (drives the useless-data ratio).
	TrainMatched []int

	tracer *Tracer
	// beneficialFreq[i][r] accumulates weighted rule-activation credit of
	// rule r for participant i over correctly classified matches;
	// harmfulFreq likewise over misclassifications.
	beneficialFreq []map[int]float64
	harmfulFreq    []map[int]float64
	// uncoveredRuleFreq[r] accumulates weighted activations over
	// misclassified test instances with insufficient related data — the
	// data-collection guidance signal of Section IV-B.
	uncoveredRuleFreq map[int]float64
}

// Correct reports whether test instance te was classified correctly.
func (r *Result) Correct(te int) bool { return r.Pred[te] == r.Truth[te] }

// patternGroup clusters test instances sharing one predicted-side
// activation pattern; tracing is a pure function of the pattern, so each is
// traced once.
type patternGroup struct {
	rep     int // representative test index
	members []int
}

// traceOut is the per-pattern tracing result.
type traceOut struct {
	counts  []int
	matched []int // training indices that passed Eq. 4
}

// Trace runs the full tracing pass of Section III-C over the test table:
// for each test instance it determines the related training instances on
// the predicted-class side (TP/TN for correct predictions earn credit,
// FP/FN feed the loss analysis) and accumulates interpretability counters.
func (t *Tracer) Trace(test *dataset.Table) *Result {
	acts, pred := t.rs.ActivationsTable(test)
	res := &Result{
		NumParticipants:   t.numParts,
		TestSize:          test.Len(),
		Pred:              pred,
		Truth:             make([]int, test.Len()),
		Counts:            make([][]int, test.Len()),
		TrainMatched:      make([]int, len(t.trainActs)),
		tracer:            t,
		beneficialFreq:    newFreqMaps(t.numParts),
		harmfulFreq:       newFreqMaps(t.numParts),
		uncoveredRuleFreq: make(map[int]float64),
	}
	for i, in := range test.Instances {
		res.Truth[i] = in.Label
	}

	weights := t.rs.Weights()
	sideActs := make([]*bitset.Set, test.Len())
	sideWeight := make([]float64, test.Len())
	for i, a := range acts {
		side := a.Clone().And(t.rs.ClassMask(pred[i]))
		sideActs[i] = side
		sideWeight[i] = side.WeightedCount(weights)
	}

	// Dedupe identical (predicted label, side pattern) groups.
	byKey := map[string]*patternGroup{}
	var order []*patternGroup
	for i := range sideActs {
		key := fmt.Sprintf("%d|%s", pred[i], sideActs[i].Key())
		g, ok := byKey[key]
		if !ok {
			g = &patternGroup{rep: i}
			byKey[key] = g
			order = append(order, g)
		}
		g.members = append(g.members, i)
	}

	candidates := t.candidateSets(order, sideActs, pred)

	outs := make([]traceOut, len(order))
	var wg sync.WaitGroup
	sem := make(chan struct{}, t.cfg.Workers)
	for gi, g := range order {
		wg.Add(1)
		sem <- struct{}{}
		go func(gi int, g *patternGroup) {
			defer wg.Done()
			defer func() { <-sem }()
			outs[gi] = t.traceOne(sideActs[g.rep], sideWeight[g.rep], pred[g.rep], candidatePool(candidates, gi))
		}(gi, g)
	}
	wg.Wait()

	for gi, g := range order {
		out := outs[gi]
		for _, te := range g.members {
			res.Counts[te] = out.counts
			for _, j := range out.matched {
				res.TrainMatched[j]++
			}
			trueSide := acts[te].Clone().And(t.rs.ClassMask(res.Truth[te]))
			t.accumulate(res, te, sideActs[te], trueSide, out)
		}
	}
	return res
}

// TraceActivations runs Eq. 4 for one explicit class-side activation set:
// it returns the per-participant related-instance counts among training
// uploads of the given label. This is the low-level primitive used by the
// one-vs-rest multi-class extension (internal/multiclass), which supplies
// its own prediction logic and therefore cannot use Trace directly.
func (t *Tracer) TraceActivations(side *bitset.Set, label int) []int {
	denom := side.WeightedCount(t.rs.Weights())
	return t.traceOne(side, denom, label, nil).counts
}

// traceOne computes Eq. 4 for one activation pattern: related training
// instances are those in the predicted class whose class-side activations
// cover at least TauW of the pattern's weighted activations.
func (t *Tracer) traceOne(side *bitset.Set, denom float64, label int, pool []int) traceOut {
	counts := make([]int, t.numParts)
	var matched []int
	if denom <= 0 {
		return traceOut{counts: counts}
	}
	if pool == nil {
		pool = t.trainByLabel[label]
	}
	weights := t.rs.Weights()
	need := t.cfg.TauW*denom - 1e-12
	for _, j := range pool {
		if t.trainLabel[j] != label {
			continue
		}
		if t.trainActs[j].WeightedIntersect(side, weights) >= need {
			counts[t.trainOwner[j]]++
			matched = append(matched, j)
		}
	}
	return traceOut{counts: counts, matched: matched}
}

func candidatePool(candidates [][]int, gi int) []int {
	if candidates == nil {
		return nil
	}
	return candidates[gi]
}

// accumulate updates the interpretability counters for one test instance.
func (t *Tracer) accumulate(res *Result, te int, side, trueSide *bitset.Set, out traceOut) {
	weights := t.rs.Weights()
	correct := res.Pred[te] == res.Truth[te]
	totalRelated := 0
	for _, c := range out.counts {
		totalRelated += c
	}
	// Weighted rule activation counts per participant (Section IV-B):
	// rules with higher weights are prioritized.
	for _, ri := range side.Indices() {
		w := weights[ri]
		for pi, c := range out.counts {
			if c == 0 {
				continue
			}
			credit := w * float64(c)
			if correct {
				res.beneficialFreq[pi][ri] += credit
			} else {
				res.harmfulFreq[pi][ri] += credit
			}
		}
	}
	// Misclassified with insufficient coverage → record the true-class rules
	// that fired without training support, to guide data collection.
	if !correct && totalRelated < t.cfg.Delta {
		for _, ri := range trueSide.Indices() {
			res.uncoveredRuleFreq[ri] += weights[ri]
		}
	}
}

// candidateSets computes, per pattern group, a pruned candidate list of
// training indices using Max-Miner frequent rule subsets: patterns are
// clustered by shared frequent rule subsets, and for each cluster only
// training instances overlapping the cluster's activation union enough to
// possibly pass Eq. 4 are kept. The filter is sound (a superset of the true
// related set); the exact per-instance check still runs afterwards. Returns
// nil when grouping is disabled.
func (t *Tracer) candidateSets(order []*patternGroup, sideActs []*bitset.Set, pred []int) [][]int {
	if !t.cfg.Grouping {
		return nil
	}
	reps := make([]*bitset.Set, len(order))
	for gi, g := range order {
		reps[gi] = sideActs[g.rep]
	}
	minSup := int(t.cfg.GroupMinSupport * float64(len(reps)))
	if minSup < 2 {
		minSup = 2
	}
	miner := fpm.NewMinerFromSets(reps, t.rs.Width())
	maximal := miner.MaximalFrequent(minSup)
	cluster := fpm.GroupByMaximal(reps, maximal)

	weights := t.rs.Weights()
	type cl struct {
		union *bitset.Set
		minW  float64
		gids  []int
	}
	clusters := map[int]*cl{}
	for gi := range order {
		ci := cluster[gi]
		c, ok := clusters[ci]
		if !ok {
			c = &cl{union: bitset.New(t.rs.Width()), minW: -1}
			clusters[ci] = c
		}
		c.union.Or(reps[gi])
		w := reps[gi].WeightedCount(weights)
		if c.minW < 0 || w < c.minW {
			c.minW = w
		}
		c.gids = append(c.gids, gi)
	}

	out := make([][]int, len(order))
	for _, c := range clusters {
		// A training instance related to member te must overlap act(te) by
		// >= tauW*weight(te) >= tauW*minW, and act(te) ⊆ union, so its
		// overlap with the union is at least that much too.
		need := t.cfg.TauW*c.minW - 1e-12
		var keep [2][]int
		for label := 0; label < 2; label++ {
			for _, j := range t.trainByLabel[label] {
				if t.trainActs[j].WeightedIntersect(c.union, weights) >= need {
					keep[label] = append(keep[label], j)
				}
			}
		}
		for _, gi := range c.gids {
			out[gi] = keep[pred[order[gi].rep]]
		}
	}
	return out
}

func newFreqMaps(n int) []map[int]float64 {
	out := make([]map[int]float64, n)
	for i := range out {
		out[i] = make(map[int]float64)
	}
	return out
}
