package core
