package core

// This file implements CTFL's contribution allocation schemes over a tracing
// Result: the micro scheme of Eq. 5 (credit proportional to related training
// instances, matching FedAvg's size-weighted aggregation), the macro scheme
// of Eq. 6 (equal credit above a threshold — replication-robust), and their
// loss-side duals used for label-flip detection (Section IV-A).

// MicroScores computes Eq. 5: each correctly classified test instance
// distributes 1/|Dte| of credit across participants proportionally to their
// related training instance counts. Correct test instances with no related
// training data assign no credit (they surface in CoverageGap instead).
func (r *Result) MicroScores() []float64 {
	return r.microScores(true)
}

// MicroLossScores is Eq. 5 with the indicator flipped to misclassified test
// instances: participants whose data supported wrong classifications absorb
// proportional blame. Used by the label-flip detector.
func (r *Result) MicroLossScores() []float64 {
	return r.microScores(false)
}

func (r *Result) microScores(correct bool) []float64 {
	scores := make([]float64, r.NumParticipants)
	if r.TestSize == 0 {
		return scores
	}
	inv := 1 / float64(r.TestSize)
	for te := 0; te < r.TestSize; te++ {
		if r.Correct(te) != correct {
			continue
		}
		total := 0
		for _, c := range r.Counts[te] {
			total += c
		}
		if total == 0 {
			continue
		}
		share := inv / float64(total)
		for i, c := range r.Counts[te] {
			if c > 0 {
				scores[i] += share * float64(c)
			}
		}
	}
	return scores
}

// MacroScores computes Eq. 6 with the tracer's configured delta: each
// correctly classified test instance splits 1/|Dte| equally among the
// participants holding at least delta related training instances.
func (r *Result) MacroScores() []float64 {
	return r.macroScores(r.tracer.cfg.Delta, true)
}

// MacroScoresAt computes Eq. 6 at an explicit delta; scores for several
// delta values can be generated progressively from the same trace, as the
// paper notes, because tracing and allocation are independent.
func (r *Result) MacroScoresAt(delta int) []float64 {
	return r.macroScores(delta, true)
}

// MacroLossScores is Eq. 6 restricted to misclassified test instances.
func (r *Result) MacroLossScores() []float64 {
	return r.macroScores(r.tracer.cfg.Delta, false)
}

func (r *Result) macroScores(delta int, correct bool) []float64 {
	if delta < 1 {
		delta = 1
	}
	scores := make([]float64, r.NumParticipants)
	if r.TestSize == 0 {
		return scores
	}
	inv := 1 / float64(r.TestSize)
	for te := 0; te < r.TestSize; te++ {
		if r.Correct(te) != correct {
			continue
		}
		qualifying := 0
		for _, c := range r.Counts[te] {
			if c >= delta {
				qualifying++
			}
		}
		if qualifying == 0 {
			continue
		}
		share := inv / float64(qualifying)
		for i, c := range r.Counts[te] {
			if c >= delta {
				scores[i] += share
			}
		}
	}
	return scores
}

// Accuracy returns the model test accuracy observed during tracing — the
// data utility v(D_N) of Eq. 1.
func (r *Result) Accuracy() float64 {
	if r.TestSize == 0 {
		return 0
	}
	ok := 0
	for te := 0; te < r.TestSize; te++ {
		if r.Correct(te) {
			ok++
		}
	}
	return float64(ok) / float64(r.TestSize)
}

// CoverageGap returns the fraction of correctly classified test instances
// whose credit could not be allocated because no training data passed the
// Eq. 4 threshold. Group rationality holds up to this gap:
// sum(MicroScores) = Accuracy() - CoverageGap().
func (r *Result) CoverageGap() float64 {
	if r.TestSize == 0 {
		return 0
	}
	gap := 0
	for te := 0; te < r.TestSize; te++ {
		if !r.Correct(te) {
			continue
		}
		total := 0
		for _, c := range r.Counts[te] {
			total += c
		}
		if total == 0 {
			gap++
		}
	}
	return float64(gap) / float64(r.TestSize)
}

// UselessRatio returns, per participant, the fraction of its training
// instances never matched by any test instance — the paper's low-quality
// data indicator (Section IV-B).
func (r *Result) UselessRatio() []float64 {
	t := r.tracer
	total := make([]float64, t.numParts)
	unused := make([]float64, t.numParts)
	for j, owner := range t.trainOwner {
		total[owner]++
		if r.TrainMatched[j] == 0 {
			unused[owner]++
		}
	}
	out := make([]float64, t.numParts)
	for i := range out {
		if total[i] > 0 {
			out[i] = unused[i] / total[i]
		}
	}
	return out
}

// SuspicionReport flags potential label-flip attackers: participants whose
// loss-side credit is large relative to their gain-side credit. The paper's
// detector observes that honest misclassifications rarely coincide with many
// same-rule, contradictory-label training matches, while flipped data does
// exactly that (Section IV-A).
type SuspicionReport struct {
	// Gain and Loss are the micro scores on correct and incorrect test
	// instances respectively.
	Gain, Loss []float64
	// Ratio[i] = Loss[i] / (Gain[i] + Loss[i]); 0 when both are zero.
	Ratio []float64
	// Suspects lists participant indices with Ratio above the threshold.
	Suspects []int
	// Threshold applied to Ratio.
	Threshold float64
}

// Suspicion computes a SuspicionReport with the given ratio threshold
// (e.g. 0.5: more blame than credit).
func (r *Result) Suspicion(threshold float64) *SuspicionReport {
	rep := &SuspicionReport{
		Gain:      r.MicroScores(),
		Loss:      r.MicroLossScores(),
		Ratio:     make([]float64, r.NumParticipants),
		Threshold: threshold,
	}
	for i := 0; i < r.NumParticipants; i++ {
		sum := rep.Gain[i] + rep.Loss[i]
		if sum > 0 {
			rep.Ratio[i] = rep.Loss[i] / sum
		}
		if rep.Ratio[i] > threshold {
			rep.Suspects = append(rep.Suspects, i)
		}
	}
	return rep
}
