package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

// randomFixture builds a random single-layer rule model over binary
// features, a random federation of uploads, and a random test table — the
// raw material for invariant checks that must hold for EVERY model and
// data configuration, not just the hand-built Figure-2 scenario.
type randomFixture struct {
	rs    *rules.Set
	enc   *dataset.Encoder
	tab   *dataset.Table // test table
	parts int
	ups   []TrainingUpload
}

func newRandomFixture(r *rand.Rand) *randomFixture {
	nf := 2 + r.Intn(3) // features
	schema := &dataset.Schema{Name: "rand"}
	for f := 0; f < nf; f++ {
		schema.Features = append(schema.Features, dataset.Feature{
			Name: string(rune('a' + f)), Kind: dataset.Discrete, Categories: []string{"0", "1"},
		})
	}
	enc, err := dataset.NewEncoder(schema, 1, r)
	if err != nil {
		panic(err)
	}
	hidden := 4 + 2*r.Intn(3)
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{hidden}, Seed: r.Int63()})
	if err != nil {
		panic(err)
	}
	// Random binarized structure: each node selects 1-3 predicates; random
	// head weights.
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	in := enc.Width()
	for n := 0; n < hidden; n++ {
		k := 1 + r.Intn(3)
		for j := 0; j < k; j++ {
			p[n*in+r.Intn(in)] = 1
		}
	}
	head := hidden * in
	for n := 0; n < hidden; n++ {
		p[head+n] = r.NormFloat64()
	}
	p[head+hidden] = r.NormFloat64() * 0.1
	if err := m.SetParams(p); err != nil {
		panic(err)
	}
	rs := rules.Extract(m, enc)

	fx := &randomFixture{rs: rs, enc: enc, parts: 2 + r.Intn(4)}
	// Random test table.
	nTest := 5 + r.Intn(20)
	fx.tab = &dataset.Table{Schema: schema}
	randInstance := func() dataset.Instance {
		vals := make([]float64, nf)
		for f := range vals {
			vals[f] = float64(r.Intn(2))
		}
		return dataset.Instance{Values: vals, Label: r.Intn(2)}
	}
	for i := 0; i < nTest; i++ {
		fx.tab.Instances = append(fx.tab.Instances, randInstance())
	}
	// Random training uploads.
	nTrain := 10 + r.Intn(40)
	for i := 0; i < nTrain; i++ {
		inst := randInstance()
		x := enc.Encode(inst, nil)
		fx.ups = append(fx.ups, TrainingUpload{
			Owner:       r.Intn(fx.parts),
			Label:       inst.Label,
			Activations: rs.Activations(x),
		})
	}
	return fx
}

func TestPropertyGroupRationalityRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newRandomFixture(r)
		tau := 0.5 + 0.5*r.Float64()
		tr := NewTracerFromUploads(fx.rs, fx.parts, fx.ups, Config{TauW: tau})
		res := tr.Trace(fx.tab)
		sum := stats.Sum(res.MicroScores())
		return math.Abs(sum-(res.Accuracy()-res.CoverageGap())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMacroBoundedAndNonNegativeRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newRandomFixture(r)
		tr := NewTracerFromUploads(fx.rs, fx.parts, fx.ups, Config{TauW: 0.8, Delta: 1 + r.Intn(3)})
		res := tr.Trace(fx.tab)
		for _, variant := range [][]float64{
			res.MicroScores(), res.MacroScores(), res.MicroLossScores(), res.MacroLossScores(),
		} {
			for _, s := range variant {
				if s < 0 || s > 1+1e-9 {
					return false
				}
			}
		}
		// Gains plus losses never exceed 1 (each test instance contributes
		// to exactly one side).
		total := stats.Sum(res.MicroScores()) + stats.Sum(res.MicroLossScores())
		return total <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySymmetryRandom(t *testing.T) {
	// Duplicate every upload of participant 0 into a fresh participant: the
	// two must receive identical scores.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newRandomFixture(r)
		twin := fx.parts
		ups := append([]TrainingUpload{}, fx.ups...)
		for _, u := range fx.ups {
			if u.Owner == 0 {
				ups = append(ups, TrainingUpload{Owner: twin, Label: u.Label, Activations: u.Activations.Clone()})
			}
		}
		tr := NewTracerFromUploads(fx.rs, fx.parts+1, ups, Config{TauW: 0.8})
		res := tr.Trace(fx.tab)
		micro := res.MicroScores()
		return math.Abs(micro[0]-micro[twin]) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyZeroElementRandom(t *testing.T) {
	// A participant whose uploads have empty activation vectors can never
	// be related to anything (tau > 0), so it scores exactly zero.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newRandomFixture(r)
		ghost := fx.parts
		ups := append([]TrainingUpload{}, fx.ups...)
		for i := 0; i < 3; i++ {
			ups = append(ups, TrainingUpload{
				Owner:       ghost,
				Label:       r.Intn(2),
				Activations: bitset.New(fx.rs.Width()),
			})
		}
		tr := NewTracerFromUploads(fx.rs, fx.parts+1, ups, Config{TauW: 0.6})
		res := tr.Trace(fx.tab)
		return res.MicroScores()[ghost] == 0 && res.MacroScores()[ghost] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGroupingEquivalenceRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newRandomFixture(r)
		plain := NewTracerFromUploads(fx.rs, fx.parts, cloneUploads(fx.ups), Config{TauW: 0.8}).Trace(fx.tab)
		grouped := NewTracerFromUploads(fx.rs, fx.parts, cloneUploads(fx.ups), Config{TauW: 0.8, Grouping: true}).Trace(fx.tab)
		for te := 0; te < plain.TestSize; te++ {
			for i := 0; i < fx.parts; i++ {
				if plain.Counts[te][i] != grouped.Counts[te][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func cloneUploads(ups []TrainingUpload) []TrainingUpload {
	out := make([]TrainingUpload, len(ups))
	for i, u := range ups {
		out[i] = TrainingUpload{Owner: u.Owner, Label: u.Label, Activations: u.Activations.Clone()}
	}
	return out
}

func TestPropertyTauMonotonicityRandom(t *testing.T) {
	// Raising tau can only shrink the related sets (Eq. 4 is a threshold
	// test), so per-instance counts are pointwise non-increasing in tau.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newRandomFixture(r)
		lo := NewTracerFromUploads(fx.rs, fx.parts, cloneUploads(fx.ups), Config{TauW: 0.6}).Trace(fx.tab)
		hi := NewTracerFromUploads(fx.rs, fx.parts, cloneUploads(fx.ups), Config{TauW: 0.95}).Trace(fx.tab)
		for te := 0; te < lo.TestSize; te++ {
			for i := 0; i < fx.parts; i++ {
				if hi.Counts[te][i] > lo.Counts[te][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
