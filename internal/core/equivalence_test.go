package core

// Equivalence tests for the inverted-index tracing kernel: a straight port
// of the pre-index implementation — a linear scan over all same-label
// training instances with bitset.WeightedIntersect — serves as the
// reference, and the indexed tracer must reproduce its Counts and
// TrainMatched bit-for-bit on random models, federations and activation
// patterns. Float summation order is part of the contract (both sides add
// rule weights in ascending rule order), so exact equality is required,
// not approximate.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

// referenceTraceOne is the seed implementation of Eq. 4: scan every
// training instance of the predicted label and threshold its weighted
// activation overlap.
func referenceTraceOne(t *Tracer, side *bitset.Set, denom float64, label int) (counts []int, matched []int) {
	counts = make([]int, t.numParts)
	if denom <= 0 {
		return counts, nil
	}
	need := t.cfg.TauW*denom - 1e-12
	weights := t.rs.Weights()
	for _, j := range t.trainByLabel[label] {
		if side.WeightedIntersect(t.trainActs[j], weights) >= need {
			counts[t.trainOwner[j]]++
			matched = append(matched, j)
		}
	}
	return counts, matched
}

func TestPropertyIndexMatchesLinearScanRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newRandomFixture(r)
		tau := 0.5 + 0.5*r.Float64()
		tr := NewTracerFromUploads(fx.rs, fx.parts, cloneUploads(fx.ups), Config{TauW: tau})
		res := tr.Trace(fx.tab)

		// Rebuild the expected result with the reference linear scan.
		acts, pred := fx.rs.ActivationsTable(fx.tab)
		weights := fx.rs.Weights()
		wantMatched := make([]int, tr.NumTraining())
		for te, a := range acts {
			side := a.Clone().And(fx.rs.ClassMask(pred[te]))
			denom := side.WeightedCount(weights)
			counts, matched := referenceTraceOne(tr, side, denom, pred[te])
			for i := range counts {
				if res.Counts[te][i] != counts[i] {
					return false
				}
			}
			for _, j := range matched {
				wantMatched[j]++
			}
		}
		for j, w := range wantMatched {
			if res.TrainMatched[j] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTraceActivationsMatchesLinearScanRandom(t *testing.T) {
	// Feed traceOne arbitrary activation patterns — including ones NOT
	// restricted to a class side, which exercise the index's own-label
	// filter — and require exact agreement with the reference scan.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newRandomFixture(r)
		tr := NewTracerFromUploads(fx.rs, fx.parts, cloneUploads(fx.ups), Config{TauW: 0.4 + 0.6*r.Float64()})
		weights := fx.rs.Weights()
		for trial := 0; trial < 10; trial++ {
			side := bitset.New(fx.rs.Width())
			for b := 0; b < fx.rs.Width(); b++ {
				if r.Float64() < 0.3 {
					side.Set(b)
				}
			}
			label := r.Intn(2)
			got := tr.TraceActivations(side, label)
			want, _ := referenceTraceOne(tr, side, side.WeightedCount(weights), label)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsRowsIndependent(t *testing.T) {
	// Regression: deduped pattern groups used to hand every member test
	// instance the SAME counts slice, so mutating one row silently corrupted
	// the others. Rows must now be independent copies.
	r := rand.New(rand.NewSource(7))
	fx := newRandomFixture(r)
	// Force at least one shared pattern group: duplicate the first test row.
	fx.tab.Instances = append(fx.tab.Instances, fx.tab.Instances[0])
	dup := len(fx.tab.Instances) - 1

	tr := NewTracerFromUploads(fx.rs, fx.parts, fx.ups, Config{TauW: 0.8})
	res := tr.Trace(fx.tab)

	want := append([]int(nil), res.Counts[dup]...)
	for i := range res.Counts[0] {
		res.Counts[0][i] += 1000
	}
	for i, w := range want {
		if res.Counts[dup][i] != w {
			t.Fatalf("mutating Counts[0] corrupted Counts[%d][%d]: got %d, want %d",
				dup, i, res.Counts[dup][i], w)
		}
	}
}

func TestTraceKernelAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	fx := newRandomFixture(r)
	tr := NewTracerFromUploads(fx.rs, fx.parts, fx.ups, Config{TauW: 0.7})
	// A dense pattern so the kernel actually walks posting lists.
	side := fx.rs.ClassMask(1).Clone()
	denom := side.WeightedCount(fx.rs.Weights())
	counts := make([]int, tr.numParts)
	sc := tr.getScratch()
	defer tr.putScratch(sc)
	tr.traceInto(side, denom, 1, counts, sc) // warm scratch growth
	if n := testing.AllocsPerRun(100, func() {
		for i := range counts {
			counts[i] = 0
		}
		tr.traceInto(side, denom, 1, counts, sc)
	}); n != 0 {
		t.Errorf("traceInto allocates %v per run, want 0", n)
	}
	// traceOne allocates only its result: the counts row plus (when anything
	// matched) one copy of the matched list — at most 2, plus an occasional
	// pool refill.
	if n := testing.AllocsPerRun(100, func() {
		tr.traceOne(side, denom, 1)
	}); n > 3 {
		t.Errorf("traceOne allocates %v per run, want <= 3", n)
	}
}
