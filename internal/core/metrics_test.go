package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestWeightedScoresReducesToMicro(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	uniform := make([]float64, res.TestSize)
	for i := range uniform {
		uniform[i] = 1 / float64(res.TestSize)
	}
	approxSlice(t, res.WeightedScores(uniform), res.MicroScores(), 1e-12, "uniform weights vs micro")
}

func TestWeightedScoresPanicsOnLengthMismatch(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.WeightedScores([]float64{1})
}

func TestWeightedScoresGroupRationality(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	// Arbitrary weights: scores must sum to the metric over covered correct
	// instances.
	w := []float64{0.4, 0.1, 0.3, 0.2}
	want := 0.0
	for te := 0; te < res.TestSize; te++ {
		if !res.Correct(te) {
			continue
		}
		total := 0
		for _, c := range res.Counts[te] {
			total += c
		}
		if total > 0 {
			want += w[te]
		}
	}
	got := stats.Sum(res.WeightedScores(w))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted group rationality: sum %v, want %v", got, want)
	}
}

func TestBalancedAccuracyScores(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	bal := res.BalancedAccuracyScores()
	// Test set: te0 (pos, correct, covered), te1 (pos, wrong), te2 (neg,
	// correct, covered), te3 (pos, wrong). Classes: 3 positive, 1 negative.
	// Balanced weights: pos instances 1/6 each, neg instance 1/2.
	// te0 credit = 1/6 split A 4/6, C 2/6; te2 credit = 1/2 split B 6/8, C 2/8.
	want := []float64{
		(1.0 / 6) * (4.0 / 6),
		(1.0 / 2) * (6.0 / 8),
		(1.0/6)*(2.0/6) + (1.0/2)*(2.0/8),
	}
	approxSlice(t, bal, want, 1e-12, "balanced accuracy scores")
	// B's share rises vs plain micro: it carries the scarce negative class.
	micro := res.MicroScores()
	if bal[1] <= micro[1] {
		t.Fatalf("balanced weighting should boost the minority-class holder: %v vs %v", bal[1], micro[1])
	}
}

func TestRecallScores(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	posRecall := res.RecallScores(1)
	negRecall := res.RecallScores(0)
	// Positive recall: only te0 of the 3 positive instances is correct and
	// covered → credit 1/3 split A 4/6, C 2/6.
	approxSlice(t, posRecall, []float64{(1.0 / 3) * (4.0 / 6), 0, (1.0 / 3) * (2.0 / 6)}, 1e-12, "pos recall")
	// Negative recall: te2 is the only negative instance → full credit.
	approxSlice(t, negRecall, []float64{0, 6.0 / 8, 2.0 / 8}, 1e-12, "neg recall")
	// Additivity across metrics: balanced accuracy = (recall+ + recall-)/2.
	for i := range posRecall {
		sum := (posRecall[i] + negRecall[i]) / 2
		if math.Abs(sum-res.BalancedAccuracyScores()[i]) > 1e-12 {
			t.Fatalf("additivity over metrics violated at %d", i)
		}
	}
}

func TestMergeResultsEquivalentToUnionTrace(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6})
	half1 := &dataset.Table{Schema: f.test.Schema, Instances: f.test.Instances[:2]}
	half2 := &dataset.Table{Schema: f.test.Schema, Instances: f.test.Instances[2:]}
	merged, err := MergeResults(tr.Trace(half1), tr.Trace(half2))
	if err != nil {
		t.Fatal(err)
	}
	full := tr.Trace(f.test)

	approxSlice(t, merged.MicroScores(), full.MicroScores(), 1e-12, "merged micro")
	approxSlice(t, merged.MacroScores(), full.MacroScores(), 1e-12, "merged macro")
	approxSlice(t, merged.MicroLossScores(), full.MicroLossScores(), 1e-12, "merged loss")
	approxSlice(t, merged.UselessRatio(), full.UselessRatio(), 1e-12, "merged useless ratio")
	if merged.Accuracy() != full.Accuracy() {
		t.Fatalf("merged accuracy %v vs %v", merged.Accuracy(), full.Accuracy())
	}
	// Interpretability counters must merge too.
	mp := merged.Profile(0, 0)
	fp := full.Profile(0, 0)
	if len(mp.Beneficial) != len(fp.Beneficial) {
		t.Fatalf("merged profile rules %d vs %d", len(mp.Beneficial), len(fp.Beneficial))
	}
	for i := range mp.Beneficial {
		if math.Abs(mp.Beneficial[i].Credit-fp.Beneficial[i].Credit) > 1e-12 {
			t.Fatalf("merged profile credit mismatch at %d", i)
		}
	}
}

func TestMergeResultsRejectsDifferentTracers(t *testing.T) {
	f := buildFig2(t)
	a := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	b := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	if _, err := MergeResults(a, b); err == nil {
		t.Fatal("different tracers should be rejected")
	}
}
