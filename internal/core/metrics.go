package core

// Metric-generalized allocation. The paper notes (Definition II.1 and the
// group-rationality discussion) that CTFL extends beyond plain accuracy to
// any per-instance-decomposable utility metric by "modifying the allocation
// formula according to the performance metric", and that contributions are
// additive across metrics. This file implements:
//
//   - WeightedScores: Eq. 5 with an arbitrary per-test-instance weight,
//     the primitive every decomposable metric reduces to;
//   - BalancedAccuracyScores: class-frequency-inverse weights, so both
//     classes carry equal credit mass (useful on imbalanced tasks like
//     bank where plain accuracy over-rewards majority-class rules);
//   - RecallScores: credit restricted to one class's test instances (the
//     per-class building block of macro-F1-style metrics);
//   - MergeResults: additivity over test sets / metrics — combine tracing
//     results without retracing.

import "fmt"

// WeightedScores generalizes MicroScores (Eq. 5) to an arbitrary utility
// metric decomposed as sum over test instances of weight[te] ·
// 1[correct(te)]: each correctly classified instance distributes
// weight[te] of credit proportionally to related-instance counts. With
// weight[te] = 1/TestSize it reduces to MicroScores exactly. The returned
// scores sum to the metric value over covered correct instances (group
// rationality for the generalized metric).
func (r *Result) WeightedScores(weights []float64) []float64 {
	if len(weights) != r.TestSize {
		panic(fmt.Sprintf("core: WeightedScores got %d weights for %d test instances", len(weights), r.TestSize))
	}
	scores := make([]float64, r.NumParticipants)
	for te := 0; te < r.TestSize; te++ {
		if !r.Correct(te) || weights[te] == 0 {
			continue
		}
		total := 0
		for _, c := range r.Counts[te] {
			total += c
		}
		if total == 0 {
			continue
		}
		share := weights[te] / float64(total)
		for i, c := range r.Counts[te] {
			if c > 0 {
				scores[i] += share * float64(c)
			}
		}
	}
	return scores
}

// BalancedAccuracyScores allocates under the balanced-accuracy metric: each
// class contributes half the credit mass regardless of its frequency, i.e.
// weight[te] = 1 / (2 · #instances of class Truth[te]). On imbalanced tasks
// this stops majority-class rules from dominating the contribution ranking.
func (r *Result) BalancedAccuracyScores() []float64 {
	var classCount [2]int
	for te := 0; te < r.TestSize; te++ {
		classCount[r.Truth[te]]++
	}
	weights := make([]float64, r.TestSize)
	for te := 0; te < r.TestSize; te++ {
		if n := classCount[r.Truth[te]]; n > 0 {
			weights[te] = 1 / (2 * float64(n))
		}
	}
	return r.WeightedScores(weights)
}

// RecallScores allocates credit only over test instances whose true label
// is class, each weighted 1/#class-instances — the recall-of-class metric.
// Per-class recalls are the building blocks of macro-F1-style utilities,
// and by additivity their allocations can be combined linearly.
func (r *Result) RecallScores(class int) []float64 {
	n := 0
	for te := 0; te < r.TestSize; te++ {
		if r.Truth[te] == class {
			n++
		}
	}
	weights := make([]float64, r.TestSize)
	for te := 0; te < r.TestSize; te++ {
		if r.Truth[te] == class && n > 0 {
			weights[te] = 1 / float64(n)
		}
	}
	return r.WeightedScores(weights)
}

// MergeResults combines tracing results produced by the SAME tracer over
// disjoint test sets into one result equivalent to tracing their union —
// the additivity property of Section III-D made operational: new test data
// (or a new metric's test set) is traced incrementally and merged, never
// retraced from scratch.
func MergeResults(a, b *Result) (*Result, error) {
	if a.tracer != b.tracer {
		return nil, fmt.Errorf("core: MergeResults requires results from the same tracer")
	}
	out := &Result{
		NumParticipants:   a.NumParticipants,
		TestSize:          a.TestSize + b.TestSize,
		Pred:              append(append([]int{}, a.Pred...), b.Pred...),
		Truth:             append(append([]int{}, a.Truth...), b.Truth...),
		Counts:            append(append([][]int{}, a.Counts...), b.Counts...),
		TrainMatched:      make([]int, len(a.TrainMatched)),
		tracer:            a.tracer,
		beneficialFreq:    newFreqMaps(a.NumParticipants),
		harmfulFreq:       newFreqMaps(a.NumParticipants),
		uncoveredRuleFreq: make(map[int]float64),
	}
	for j := range a.TrainMatched {
		out.TrainMatched[j] = a.TrainMatched[j] + b.TrainMatched[j]
	}
	for i := 0; i < a.NumParticipants; i++ {
		for ri, v := range a.beneficialFreq[i] {
			out.beneficialFreq[i][ri] += v
		}
		for ri, v := range b.beneficialFreq[i] {
			out.beneficialFreq[i][ri] += v
		}
		for ri, v := range a.harmfulFreq[i] {
			out.harmfulFreq[i][ri] += v
		}
		for ri, v := range b.harmfulFreq[i] {
			out.harmfulFreq[i][ri] += v
		}
	}
	for ri, v := range a.uncoveredRuleFreq {
		out.uncoveredRuleFreq[ri] += v
	}
	for ri, v := range b.uncoveredRuleFreq {
		out.uncoveredRuleFreq[ri] += v
	}
	return out, nil
}
