package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/stats"
)

// fig2Fixture reconstructs the tracing scenario of the paper's Figure 2 /
// Examples III.3 and III.4 with four single-predicate rules:
//
//	r0+ "f0 = yes" (w 1.0)   r1+ "f1 = yes" (w 1.0)
//	r2- "f2 = yes" (w 1.0)   r3- "f3 = yes" (w 0.5)
//
// Participants: A holds 4 positive rows activating r0,r1; B holds 6 negative
// rows activating r2,r3; C holds 2 negative rows activating only r2 plus 2
// positive rows activating only r1.
type fig2 struct {
	enc   *dataset.Encoder
	model *nn.Model
	rs    *rules.Set
	parts []*fl.Participant
	test  *dataset.Table
}

func yes() float64 { return 0 }
func no() float64  { return 1 }

func buildFig2(t *testing.T) *fig2 {
	t.Helper()
	schema := &dataset.Schema{Name: "fig2", Labels: [2]string{"neg", "pos"}}
	for _, n := range []string{"f0", "f1", "f2", "f3"} {
		schema.Features = append(schema.Features, dataset.Feature{
			Name: n, Kind: dataset.Discrete, Categories: []string{"yes", "no"},
		})
	}
	enc, err := dataset.NewEncoder(schema, 2, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{8}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	for i := range p {
		p[i] = 0
	}
	in := enc.Width() // 12: three predicates per feature
	p[0*in+0] = 1     // node0 conj: f0=yes
	p[1*in+3] = 1     // node1 conj: f1=yes
	p[2*in+6] = 1     // node2 conj: f2=yes
	p[3*in+9] = 1     // node3 conj: f3=yes
	head := 8 * in
	p[head+0] = 1
	p[head+1] = 1
	p[head+2] = -1
	p[head+3] = -0.5
	p[head+8] = -0.01 // bias: empty vote predicts negative
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	rs := rules.Extract(m, enc)

	row := func(f0, f1, f2, f3 float64, label int) dataset.Instance {
		return dataset.Instance{Values: []float64{f0, f1, f2, f3}, Label: label}
	}
	tab := func(rows ...dataset.Instance) *dataset.Table {
		return &dataset.Table{Schema: schema, Instances: rows}
	}
	partA := &fl.Participant{ID: 0, Name: "A", Data: tab(
		row(yes(), yes(), no(), no(), 1),
		row(yes(), yes(), no(), no(), 1),
		row(yes(), yes(), no(), no(), 1),
		row(yes(), yes(), no(), no(), 1),
	)}
	partB := &fl.Participant{ID: 1, Name: "B", Data: tab(
		row(no(), no(), yes(), yes(), 0),
		row(no(), no(), yes(), yes(), 0),
		row(no(), no(), yes(), yes(), 0),
		row(no(), no(), yes(), yes(), 0),
		row(no(), no(), yes(), yes(), 0),
		row(no(), no(), yes(), yes(), 0),
	)}
	partC := &fl.Participant{ID: 2, Name: "C", Data: tab(
		row(no(), no(), yes(), no(), 0),
		row(no(), no(), yes(), no(), 0),
		row(no(), yes(), no(), no(), 1),
		row(no(), yes(), no(), no(), 1),
	)}
	test := tab(
		row(no(), yes(), no(), no(), 1),  // te0: TP via r1
		row(no(), no(), no(), no(), 1),   // te1: FN, nothing activated
		row(no(), no(), yes(), yes(), 0), // te2: TN via r2,r3 (Example III.3)
		row(no(), no(), no(), yes(), 1),  // te3: FN via r3 (loss traced to B)
	)
	return &fig2{enc: enc, model: m, rs: rs, parts: []*fl.Participant{partA, partB, partC}, test: test}
}

func approxSlice(t *testing.T, got, want []float64, tol float64, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", msg, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: got %v, want %v", msg, got, want)
		}
	}
}

func TestFig2TraceCounts(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6})
	if tr.NumParticipants() != 3 || tr.NumTraining() != 14 {
		t.Fatalf("tracer indexed %d parts, %d rows", tr.NumParticipants(), tr.NumTraining())
	}
	res := tr.Trace(f.test)

	// te0 (TP): A's 4 rows and C's 2 positive rows activate r1.
	if got := res.Counts[0]; got[0] != 4 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("te0 counts = %v, want [4 0 2]", got)
	}
	// te1 (FN, no activations): nothing related.
	if got := res.Counts[1]; got[0]+got[1]+got[2] != 0 {
		t.Fatalf("te1 counts = %v, want zeros", got)
	}
	// te2 (TN, Example III.3): tauW=0.6 admits B's 6 (full match) and C's 2
	// (r2 only: 1.0/1.5 = 2/3 >= 0.6).
	if got := res.Counts[2]; got[0] != 0 || got[1] != 6 || got[2] != 2 {
		t.Fatalf("te2 counts = %v, want [0 6 2]", got)
	}
	// te3 (FN via r3): loss traced to B (its rows activate r3).
	if got := res.Counts[3]; got[0] != 0 || got[1] != 6 || got[2] != 0 {
		t.Fatalf("te3 counts = %v, want [0 6 0]", got)
	}

	// Predictions: te0 pos, te1 neg, te2 neg, te3 neg.
	wantPred := []int{1, 0, 0, 0}
	for i, p := range res.Pred {
		if p != wantPred[i] {
			t.Fatalf("pred = %v, want %v", res.Pred, wantPred)
		}
	}
}

func TestFig2StrictTauExcludesPartialMatch(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 1.0})
	res := tr.Trace(f.test)
	// Example III.3 with tauW=1: only B's rows (activating both r2 and r3)
	// relate to te2.
	if got := res.Counts[2]; got[0] != 0 || got[1] != 6 || got[2] != 0 {
		t.Fatalf("te2 counts at tauW=1 = %v, want [0 6 0]", got)
	}
}

func TestFig2MicroScores(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6})
	res := tr.Trace(f.test)
	// Example III.4: te0 → A 1/4·4/6, C 1/4·2/6; te2 → B 1/4·6/8 = 3/16,
	// C 1/4·2/8 = 1/16.
	want := []float64{1.0 / 6, 3.0 / 16, 1.0/12 + 1.0/16}
	approxSlice(t, res.MicroScores(), want, 1e-12, "micro scores")

	// Group rationality: scores sum to accuracy minus the coverage gap.
	sum := stats.Sum(res.MicroScores())
	if math.Abs(sum-(res.Accuracy()-res.CoverageGap())) > 1e-12 {
		t.Fatalf("group rationality violated: sum=%v acc=%v gap=%v", sum, res.Accuracy(), res.CoverageGap())
	}
	if res.Accuracy() != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", res.Accuracy())
	}
	if res.CoverageGap() != 0 {
		t.Fatalf("coverage gap = %v, want 0", res.CoverageGap())
	}
}

func TestFig2MacroScores(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6, Delta: 2})
	res := tr.Trace(f.test)
	// Example III.4 macro with delta=2: te0 splits between A and C, te2
	// splits between B and C (1/4 · 1/2 = 1/8 each).
	want := []float64{0.125, 0.125, 0.25}
	approxSlice(t, res.MacroScores(), want, 1e-12, "macro scores")

	// Higher delta excludes C everywhere (its related counts are 2).
	at3 := res.MacroScoresAt(3)
	want3 := []float64{0.25, 0.25, 0}
	approxSlice(t, at3, want3, 1e-12, "macro at delta=3")
}

func TestFig2LossScores(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6})
	res := tr.Trace(f.test)
	// te3 is the only traceable miss; B absorbs all of it: 1/4.
	wantLoss := []float64{0, 0.25, 0}
	approxSlice(t, res.MicroLossScores(), wantLoss, 1e-12, "micro loss")
	macroLoss := res.MacroLossScores()
	approxSlice(t, macroLoss, []float64{0, 0.25, 0}, 1e-12, "macro loss")
}

func TestFig2UselessRatio(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6})
	res := tr.Trace(f.test)
	u := res.UselessRatio()
	// A: all 4 rows matched te0 → 0. B: all matched (te2, te3) → 0.
	// C: 2 negative rows matched te2, 2 positive matched te0 → 0.
	approxSlice(t, u, []float64{0, 0, 0}, 1e-12, "useless ratio")
}

func TestReplicationRobustnessOfMacro(t *testing.T) {
	f := buildFig2(t)
	// B replicates its entire dataset; micro inflates, macro must not.
	r := stats.NewRNG(3)
	repl := fl.Replicate(f.parts[1], 1.0, r)
	partsR := fl.ReplaceParticipant(f.parts, repl)

	base := NewTracer(f.rs, f.parts, Config{TauW: 0.6, Delta: 2}).Trace(f.test)
	after := NewTracer(f.rs, partsR, Config{TauW: 0.6, Delta: 2}).Trace(f.test)

	baseMicro, afterMicro := base.MicroScores(), after.MicroScores()
	if afterMicro[1] <= baseMicro[1] {
		t.Fatalf("micro should inflate under replication: %v -> %v", baseMicro[1], afterMicro[1])
	}
	baseMacro, afterMacro := base.MacroScores(), after.MacroScores()
	if math.Abs(afterMacro[1]-baseMacro[1]) > 1e-12 {
		t.Fatalf("macro must be replication-invariant: %v -> %v", baseMacro[1], afterMacro[1])
	}
}

func TestZeroElementProperty(t *testing.T) {
	f := buildFig2(t)
	// Participant D holds data that activates no rules at all.
	rowsD := []dataset.Instance{
		{Values: []float64{no(), no(), no(), no()}, Label: 1},
		{Values: []float64{no(), no(), no(), no()}, Label: 0},
	}
	partD := &fl.Participant{ID: 3, Name: "D", Data: &dataset.Table{Schema: f.test.Schema, Instances: rowsD}}
	parts := append(append([]*fl.Participant{}, f.parts...), partD)
	res := NewTracer(f.rs, parts, Config{TauW: 0.6}).Trace(f.test)
	if got := res.MicroScores()[3]; got != 0 {
		t.Fatalf("zero element violated: D scored %v", got)
	}
	if got := res.MacroScores()[3]; got != 0 {
		t.Fatalf("zero element violated (macro): D scored %v", got)
	}
	if got := res.UselessRatio()[3]; got != 1 {
		t.Fatalf("D's useless ratio = %v, want 1", got)
	}
}

func TestSymmetryProperty(t *testing.T) {
	f := buildFig2(t)
	// Two participants with identical data must receive identical scores.
	twinData := f.parts[2].Data.Clone()
	twin := &fl.Participant{ID: 3, Name: "C2", Data: twinData}
	parts := append(append([]*fl.Participant{}, f.parts...), twin)
	res := NewTracer(f.rs, parts, Config{TauW: 0.6}).Trace(f.test)
	micro := res.MicroScores()
	if math.Abs(micro[2]-micro[3]) > 1e-12 {
		t.Fatalf("symmetry violated: %v vs %v", micro[2], micro[3])
	}
	macro := res.MacroScores()
	if math.Abs(macro[2]-macro[3]) > 1e-12 {
		t.Fatalf("macro symmetry violated: %v vs %v", macro[2], macro[3])
	}
}

func TestAdditivityAcrossTestSets(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6})
	resAll := tr.Trace(f.test)
	half1 := &dataset.Table{Schema: f.test.Schema, Instances: f.test.Instances[:2]}
	half2 := &dataset.Table{Schema: f.test.Schema, Instances: f.test.Instances[2:]}
	res1 := tr.Trace(half1)
	res2 := tr.Trace(half2)
	// Additivity over utility metrics: the combined score is the size-
	// weighted sum of the per-set scores.
	all := resAll.MicroScores()
	s1, s2 := res1.MicroScores(), res2.MicroScores()
	for i := range all {
		combined := (2.0*s1[i] + 2.0*s2[i]) / 4.0
		if math.Abs(all[i]-combined) > 1e-12 {
			t.Fatalf("additivity violated at %d: %v vs %v", i, all[i], combined)
		}
	}
}

func TestSuspicionFlagsLabelFlipper(t *testing.T) {
	f := buildFig2(t)
	// Participant E holds label-flipped copies of B's pattern: rows that
	// activate r2,r3 (negative rules) but claim the positive label. Test
	// instances matching those rules are predicted negative; when their true
	// label is negative, E earns nothing; when a test row has flipped label
	// too, E would gain. Here E mainly absorbs blame on te3-style misses.
	rowsE := []dataset.Instance{
		{Values: []float64{no(), no(), no(), yes()}, Label: 0},
		{Values: []float64{no(), no(), no(), yes()}, Label: 0},
		{Values: []float64{no(), no(), no(), yes()}, Label: 0},
	}
	partE := &fl.Participant{ID: 3, Name: "E", Data: &dataset.Table{Schema: f.test.Schema, Instances: rowsE}}
	parts := append(append([]*fl.Participant{}, f.parts...), partE)
	res := NewTracer(f.rs, parts, Config{TauW: 0.6}).Trace(f.test)
	rep := res.Suspicion(0.5)
	// E's rows match te3 (an FN) and earn loss credit but no gain: ratio 1.
	found := false
	for _, s := range rep.Suspects {
		if s == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("participant E should be suspected; report %+v", rep)
	}
	// Honest A must not be suspected.
	for _, s := range rep.Suspects {
		if s == 0 {
			t.Fatalf("honest participant A suspected: %+v", rep)
		}
	}
}

func TestProfilesAndGuidance(t *testing.T) {
	f := buildFig2(t)
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6, Delta: 2})
	res := tr.Trace(f.test)
	profs := res.Profiles(3)
	if len(profs) != 3 {
		t.Fatalf("profiles = %d", len(profs))
	}
	// A's top beneficial rule is r1 ("f1 = yes"), the rule it earned te0 by.
	if len(profs[0].Beneficial) == 0 || profs[0].Beneficial[0].Expr != "f1 = yes" {
		t.Fatalf("A's beneficial profile wrong: %+v", profs[0].Beneficial)
	}
	// B earns via the negative rules and absorbs blame for te3 via r3.
	if len(profs[1].Harmful) == 0 {
		t.Fatal("B should have a harmful entry from te3")
	}
	// te1 is misclassified and uncovered: its true class is positive and no
	// positive rule fired, so guidance is empty for it; te3 has B related
	// (count 6 >= delta), so not under-covered. Guidance may be empty here.
	_ = res.CollectionGuidance(5)

	out := FormatProfile(res.Profile(0, 2), "A")
	if out == "" {
		t.Fatal("FormatProfile returned nothing")
	}
}

func TestCollectionGuidanceSurfacesUncovered(t *testing.T) {
	f := buildFig2(t)
	// Craft a miss with true-side activations and no related training:
	// te activates r0 (positive side) but model predicts negative because
	// r2,r3 outweigh it; true label positive; no positive-label training
	// holds r0+r2-ish patterns. Values: f0=yes, f2=yes, f3=yes → score
	// = 1 - 1 - 0.5 - 0.01 < 0 → pred 0, truth 1 → FN. Related on negative
	// side: B's rows match (6 ≥ delta)… so use delta high to force
	// under-coverage accounting.
	test := &dataset.Table{Schema: f.test.Schema, Instances: []dataset.Instance{
		{Values: []float64{yes(), no(), yes(), yes()}, Label: 1},
	}}
	tr := NewTracer(f.rs, f.parts, Config{TauW: 0.6, Delta: 100})
	res := tr.Trace(test)
	g := res.CollectionGuidance(0)
	if len(g) == 0 {
		t.Fatal("expected data-collection guidance for uncovered miss")
	}
	// The guidance should point at the true-class rule that fired: r0.
	if g[0].Expr != "f0 = yes" {
		t.Fatalf("guidance = %+v, want f0 = yes first", g)
	}
}

func TestGroupingMatchesBruteForce(t *testing.T) {
	// Grouped tracing must produce identical counts to the brute-force path.
	tab := dataset.TicTacToe()
	r := stats.NewRNG(5)
	train, test := tab.Split(r, 0.3)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.New(enc.Width(), nn.Config{Hidden: []int{32}, Epochs: 25, Grafting: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x, y := enc.EncodeTable(train)
	m.Train(x, y)
	rs := rules.Extract(m, enc)
	parts := fl.PartitionSkewLabel(train, 4, 0.8, r)

	brute := NewTracer(rs, parts, Config{TauW: 0.8}).Trace(test)
	grouped := NewTracer(rs, parts, Config{TauW: 0.8, Grouping: true}).Trace(test)
	for te := 0; te < test.Len(); te++ {
		for i := 0; i < 4; i++ {
			if brute.Counts[te][i] != grouped.Counts[te][i] {
				t.Fatalf("te %d participant %d: brute %d vs grouped %d",
					te, i, brute.Counts[te][i], grouped.Counts[te][i])
			}
		}
	}
}

func TestTracerPanicsOnBadTau(t *testing.T) {
	f := buildFig2(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for TauW > 1")
		}
	}()
	NewTracer(f.rs, f.parts, Config{TauW: 1.5})
}

func TestVariantString(t *testing.T) {
	if Micro.String() != "micro" || Macro.String() != "macro" {
		t.Fatal("Variant.String broken")
	}
	if Variant(9).String() == "" {
		t.Fatal("unknown variant should render")
	}
}

func TestSchemeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tab := dataset.TicTacToe()
	r := stats.NewRNG(9)
	train, test := tab.Split(r, 0.2)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	parts := fl.PartitionSkewLabel(train, 3, 0.8, r)
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 2, LocalEpochs: 10, Parallel: true,
		Model: nn.Config{Hidden: []int{64}, Grafting: true, Seed: 3},
	})
	s := &Scheme{Variant: Micro, Trainer: trainer, Cfg: Config{TauW: 0.9}}
	if s.Name() != "CTFL-micro" {
		t.Fatalf("Name = %q", s.Name())
	}
	scores, err := s.Scores(parts, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %v", scores)
	}
	if stats.Sum(scores) <= 0 {
		t.Fatalf("no credit allocated: %v", scores)
	}
	sm := &Scheme{Variant: Macro, Trainer: trainer, Cfg: Config{TauW: 0.9}}
	if sm.Name() != "CTFL-macro" {
		t.Fatalf("macro name = %q", sm.Name())
	}
	bad := &Scheme{Variant: Micro}
	if _, err := bad.Scores(parts, test); err == nil {
		t.Fatal("scheme without trainer should error")
	}
}
