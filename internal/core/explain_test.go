package core

import (
	"math"
	"strings"
	"testing"
)

func TestExplainCoveredTP(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	e, err := res.Explain(f.test, 0) // te0: TP via rule r1 ("f1 = yes")
	if err != nil {
		t.Fatal(err)
	}
	if e.Case != "TP" || !e.Correct {
		t.Fatalf("case = %s correct = %v", e.Case, e.Correct)
	}
	if len(e.ActivatedRules) != 1 || e.ActivatedRules[0].Expr != "f1 = yes" {
		t.Fatalf("activated rules = %+v", e.ActivatedRules)
	}
	if e.SideWeight != 1 || math.Abs(e.Threshold-0.6) > 1e-12 {
		t.Fatalf("side weight %v threshold %v", e.SideWeight, e.Threshold)
	}
	if e.Related[0] != 4 || e.Related[2] != 2 {
		t.Fatalf("related = %v", e.Related)
	}
	if math.Abs(e.CreditShare[0]-4.0/6) > 1e-12 || math.Abs(e.CreditShare[2]-2.0/6) > 1e-12 {
		t.Fatalf("shares = %v", e.CreditShare)
	}
	out := e.String()
	for _, want := range []string{"TP", "f1 = yes", "66.7%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestExplainUncoveredFN(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	e, err := res.Explain(f.test, 1) // te1: FN, nothing activated
	if err != nil {
		t.Fatal(err)
	}
	if e.Case != "FN" || e.Correct {
		t.Fatalf("case = %s", e.Case)
	}
	if len(e.ActivatedRules) != 0 || e.SideWeight != 0 {
		t.Fatalf("expected empty activation: %+v", e)
	}
	if !strings.Contains(e.String(), "uncovered") {
		t.Fatalf("String should note uncovered instance:\n%s", e.String())
	}
}

func TestExplainBlameCase(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	e, err := res.Explain(f.test, 3) // te3: FN via r3, blame on B
	if err != nil {
		t.Fatal(err)
	}
	if e.Case != "FN" {
		t.Fatalf("case = %s", e.Case)
	}
	if e.Related[1] != 6 || e.CreditShare[1] != 1 {
		t.Fatalf("blame should land on B: %v %v", e.Related, e.CreditShare)
	}
	if !strings.Contains(e.String(), "blame") {
		t.Fatalf("String should say blame:\n%s", e.String())
	}
}

func TestExplainValidation(t *testing.T) {
	f := buildFig2(t)
	res := NewTracer(f.rs, f.parts, Config{TauW: 0.6}).Trace(f.test)
	if _, err := res.Explain(f.test, 99); err == nil {
		t.Fatal("out-of-range index should error")
	}
	short := f.test.Subset([]int{0})
	if _, err := res.Explain(short, 0); err == nil {
		t.Fatal("table size mismatch should error")
	}
}

func TestTracingCaseNames(t *testing.T) {
	cases := map[[2]int]string{
		{1, 1}: "TP", {0, 0}: "TN", {1, 0}: "FP", {0, 1}: "FN",
	}
	for k, want := range cases {
		if got := tracingCase(k[0], k[1]); got != want {
			t.Fatalf("tracingCase(%d,%d) = %s, want %s", k[0], k[1], got, want)
		}
	}
}
