package core

// Per-test-instance attribution: the audit-trail view of one tracing
// decision. Where Profiles aggregates rule activations per participant,
// Explain answers the question a disputed payout raises — "why did test
// instance te credit these participants?" — by listing the activated rules,
// the Eq. 4 threshold arithmetic, and each participant's related counts.

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Explanation is the audit record of one test instance's tracing outcome.
type Explanation struct {
	TestIndex int
	Predicted int
	Truth     int
	Correct   bool
	// Case is the paper's tracing case: TP, TN, FP or FN.
	Case string
	// ActivatedRules lists the rules of the predicted class side that fired,
	// with their weights; these are the rules related training data had to
	// cover (Eq. 4).
	ActivatedRules []RuleFrequency
	// SideWeight is the Eq. 4 denominator w*·r*(x_te); Threshold is
	// tauW · SideWeight, the weighted overlap a training instance needs.
	SideWeight, Threshold float64
	// Related[i] is participant i's related training instance count.
	Related []int
	// CreditShare[i] is the fraction of this instance's credit (or blame,
	// for misclassified instances) flowing to participant i.
	CreditShare []float64
}

// Explain recomputes the tracing decision for test instance te of the given
// table (which must be the table the Result was traced on) and returns the
// audit record.
func (r *Result) Explain(test *dataset.Table, te int) (*Explanation, error) {
	if te < 0 || te >= r.TestSize {
		return nil, fmt.Errorf("core: test index %d out of range [0,%d)", te, r.TestSize)
	}
	if test.Len() != r.TestSize {
		return nil, fmt.Errorf("core: table has %d rows, result traced %d", test.Len(), r.TestSize)
	}
	t := r.tracer
	x := t.rs.Encode(test.Instances[te])
	side := t.rs.Activations(x).And(t.rs.ClassMask(r.Pred[te]))
	weights := t.rs.Weights()

	e := &Explanation{
		TestIndex:  te,
		Predicted:  r.Pred[te],
		Truth:      r.Truth[te],
		Correct:    r.Correct(te),
		Case:       tracingCase(r.Pred[te], r.Truth[te]),
		SideWeight: side.WeightedCount(weights),
		Related:    append([]int{}, r.Counts[te]...),
	}
	e.Threshold = t.cfg.TauW * e.SideWeight
	for _, ri := range side.Indices() {
		rf := RuleFrequency{RuleIndex: ri, Weight: weights[ri]}
		if rule, ok := t.rs.RuleByIndex(ri); ok {
			rf.Expr = rule.Expr
			rf.Positive = rule.Positive
		}
		e.ActivatedRules = append(e.ActivatedRules, rf)
	}
	total := 0
	for _, c := range e.Related {
		total += c
	}
	e.CreditShare = make([]float64, len(e.Related))
	if total > 0 {
		for i, c := range e.Related {
			e.CreditShare[i] = float64(c) / float64(total)
		}
	}
	return e, nil
}

func tracingCase(pred, truth int) string {
	switch {
	case pred == 1 && truth == 1:
		return "TP"
	case pred == 0 && truth == 0:
		return "TN"
	case pred == 1 && truth == 0:
		return "FP"
	default:
		return "FN"
	}
}

// String renders the explanation for reports.
func (e *Explanation) String() string {
	var b strings.Builder
	outcome := "credit"
	if !e.Correct {
		outcome = "blame"
	}
	fmt.Fprintf(&b, "test instance %d: %s (predicted %d, truth %d)\n",
		e.TestIndex, e.Case, e.Predicted, e.Truth)
	fmt.Fprintf(&b, "  activated %s-side rules (weight %.3f, overlap threshold %.3f):\n",
		sideMark(e.Predicted == 1), e.SideWeight, e.Threshold)
	for _, rf := range e.ActivatedRules {
		fmt.Fprintf(&b, "    [w=%.3f] %s\n", rf.Weight, rf.Expr)
	}
	fmt.Fprintf(&b, "  %s distribution:\n", outcome)
	for i, c := range e.Related {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "    participant %d: %d related rows -> %.1f%%\n", i, c, e.CreditShare[i]*100)
	}
	if sum(e.Related) == 0 {
		b.WriteString("    (no related training data — uncovered instance)\n")
	}
	return b.String()
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
