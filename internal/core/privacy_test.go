package core

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/stats"
)

func TestFlipProbability(t *testing.T) {
	// eps -> 0 gives p -> 0.5 (pure noise); eps large gives p -> 0.
	if p := flipProbability(1e-9); math.Abs(p-0.5) > 1e-6 {
		t.Fatalf("flipProbability(~0) = %v, want ~0.5", p)
	}
	if p := flipProbability(10); p > 0.001 {
		t.Fatalf("flipProbability(10) = %v, want ~0", p)
	}
	if a, b := flipProbability(1), flipProbability(2); a <= b {
		t.Fatalf("flip probability must decrease with eps: %v vs %v", a, b)
	}
}

func TestPerturbActivationsFlipRate(t *testing.T) {
	r := stats.NewRNG(3)
	const width, trials = 200, 50
	eps := 1.0
	want := flipProbability(eps)
	flips := 0
	for trial := 0; trial < trials; trial++ {
		s := bitset.New(width)
		for i := 0; i < width; i += 3 {
			s.Set(i)
		}
		noisy := PerturbActivations(s, eps, r)
		for i := 0; i < width; i++ {
			if s.Test(i) != noisy.Test(i) {
				flips++
			}
		}
	}
	got := float64(flips) / float64(width*trials)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("empirical flip rate %v, want %v", got, want)
	}
}

func TestPerturbActivationsDoesNotMutateInput(t *testing.T) {
	r := stats.NewRNG(4)
	s := bitset.FromIndices(64, 1, 5, 9)
	clone := s.Clone()
	PerturbActivations(s, 0.5, r)
	if !s.Equal(clone) {
		t.Fatal("input bitset mutated")
	}
}

func TestPerturbActivationsPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for eps <= 0")
		}
	}()
	PerturbActivations(bitset.New(8), 0, stats.NewRNG(1))
}

func TestWithLocalDPHighEpsilonPreservesScores(t *testing.T) {
	f := buildFig2(t)
	base := NewTracer(f.rs, f.parts, Config{TauW: 0.6})
	exact := base.Trace(f.test).MicroScores()
	// eps=50: essentially no flips, scores identical.
	dp := base.WithLocalDP(50, 9)
	noisy := dp.Trace(f.test).MicroScores()
	for i := range exact {
		if math.Abs(exact[i]-noisy[i]) > 1e-12 {
			t.Fatalf("eps=50 changed scores: %v vs %v", exact, noisy)
		}
	}
}

func TestWithLocalDPLowEpsilonDegradesGracefully(t *testing.T) {
	f := buildFig2(t)
	base := NewTracer(f.rs, f.parts, Config{TauW: 0.6})
	exact := base.Trace(f.test).MicroScores()
	// Average rank agreement over several DP draws must beat random for a
	// moderate budget and stay defined (no panics) for a harsh one.
	var corr float64
	const reps = 10
	for s := int64(0); s < reps; s++ {
		noisy := base.WithLocalDP(3, s).Trace(f.test).MicroScores()
		corr += stats.Spearman(exact, noisy)
	}
	corr /= reps
	if corr < 0.3 {
		t.Fatalf("eps=3 rank agreement too low: %v", corr)
	}
	// Harsh budget still produces a valid score vector.
	harsh := base.WithLocalDP(0.1, 1).Trace(f.test).MicroScores()
	if len(harsh) != 3 {
		t.Fatalf("harsh DP broke scoring: %v", harsh)
	}
	// The DP tracer must not share mutated state with the base tracer.
	again := base.Trace(f.test).MicroScores()
	for i := range exact {
		if exact[i] != again[i] {
			t.Fatal("WithLocalDP corrupted the base tracer")
		}
	}
}
