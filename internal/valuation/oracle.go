package valuation

// The coalition-valuation engine: a concurrency-safe, memoizing utility
// oracle. Coalition utilities are the unit of work behind every baseline
// scheme — each distinct coalition mask costs one FedAvg retraining — so the
// oracle (1) shards its cache to keep lookups uncontended, (2) deduplicates
// in-flight evaluations singleflight-style (two goroutines asking for the
// same mask train it once; the second waits), and (3) bounds concurrent
// trainings with a worker semaphore so a large batch cannot oversubscribe
// the machine. Utilities are deterministic functions of the mask (FedAvg
// training is seeded), so results are bit-identical regardless of worker
// count or call interleaving.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/fl"
)

// MaxParticipants is the largest federation the uint64 coalition mask can
// address. NewOracle and Utility reject anything larger instead of silently
// aliasing masks.
const MaxParticipants = 64

// oracleShards is the cache shard count (power of two). Shards keep cache
// hits from serializing on one mutex when many permutation walkers hammer
// the oracle concurrently.
const oracleShards = 16

// inflight is one in-progress coalition evaluation; waiters block on done.
type inflight struct {
	done chan struct{}
	val  float64
	err  error
}

// oracleShard is one cache shard: completed utilities plus the in-flight
// table used for singleflight deduplication.
type oracleShard struct {
	mu       sync.Mutex
	done     map[uint64]float64
	inflight map[uint64]*inflight
}

// Oracle memoizes coalition utilities: each distinct coalition is trained
// (FedAvg over its members) and evaluated once, no matter how many
// goroutines ask for it. This is the black-box retraining loop that makes
// the combinatorial baselines expensive — CTFL's whole point is to avoid it.
type Oracle struct {
	trainer *fl.Trainer
	parts   []*fl.Participant
	test    *dataset.Table
	// n is the federation size the masks address.
	n int
	// trainFn, when non-nil, replaces FedAvg retraining + evaluation —
	// engine tests and benchmarks inject synthetic utilities with
	// controlled cost to exercise the concurrency machinery in isolation.
	trainFn func(mask uint64) (float64, error)
	// testX/testY hold the test set encoded once; per-coalition evaluation
	// must not pay the encoding again.
	testX [][]float64
	testY []int

	shards [oracleShards]oracleShard

	// Workers bounds concurrent coalition trainings; 0 means GOMAXPROCS.
	// Set it before the first Utility/EvalBatch call.
	Workers int
	semOnce sync.Once
	sem     chan struct{}

	evals atomic.Int64
	hits  atomic.Int64

	// ckpt, when attached, durably records every cache fill so a killed run
	// resumes without recomputation. See AttachCheckpoint.
	ckpt *Checkpoint

	// Obs receives engine telemetry; nil disables all of it (every
	// instrument is a nil-safe no-op).
	Obs *Obs

	// EmptyUtility is v(∅); defaults to majority-class accuracy on the test
	// set (the best label-only guess, ~50% on balanced tasks as in the
	// paper's Table II).
	EmptyUtility float64
}

// NewOracle builds a memoizing utility oracle over a fixed participant
// list. It fails when the federation exceeds MaxParticipants: a uint64
// coalition mask cannot address participant 65, and truncating would
// silently alias distinct coalitions.
func NewOracle(trainer *fl.Trainer, parts []*fl.Participant, test *dataset.Table) (*Oracle, error) {
	if len(parts) > MaxParticipants {
		return nil, fmt.Errorf("valuation: %d participants exceed the %d addressable by the uint64 coalition mask",
			len(parts), MaxParticipants)
	}
	pos := 0
	for _, in := range test.Instances {
		if in.Label == 1 {
			pos++
		}
	}
	maj := float64(pos) / float64(max(1, test.Len()))
	if maj < 0.5 {
		maj = 1 - maj
	}
	o := &Oracle{
		trainer:      trainer,
		parts:        parts,
		test:         test,
		n:            len(parts),
		EmptyUtility: maj,
	}
	o.testX, o.testY = trainer.Encoder().EncodeTable(test)
	o.initShards()
	return o, nil
}

// NewFuncOracle builds an oracle over n virtual participants whose utility
// is computed by fn instead of FedAvg retraining: the same memoizing,
// deduplicating, bounded-worker machinery over an arbitrary coalition game.
// The streaming round-valuation engine (internal/rounds) uses it with
// per-round model reconstruction as the utility; EmptyUtility defaults to 0
// and should be set by the caller when v(∅) is meaningful.
func NewFuncOracle(n int, fn func(mask uint64) (float64, error)) (*Oracle, error) {
	if n > MaxParticipants {
		return nil, fmt.Errorf("valuation: %d participants exceed the %d addressable by the uint64 coalition mask",
			n, MaxParticipants)
	}
	o := &Oracle{n: n, trainFn: fn}
	o.initShards()
	return o, nil
}

// newSyntheticOracle builds an oracle over n virtual participants whose
// "training" is the given function — the engine's concurrency, dedup and
// determinism machinery without FedAvg cost. In-package only (tests,
// benchmarks).
func newSyntheticOracle(n int, fn func(mask uint64) (float64, error)) *Oracle {
	o, err := NewFuncOracle(n, fn)
	if err != nil {
		panic(err)
	}
	return o
}

func (o *Oracle) initShards() {
	for i := range o.shards {
		o.shards[i].done = make(map[uint64]float64)
		o.shards[i].inflight = make(map[uint64]*inflight)
	}
}

// obs returns the instrument set, falling back to the shared inert one so
// the hot path never nil-checks more than a pointer.
func (o *Oracle) obs() *Obs {
	if o.Obs != nil {
		return o.Obs
	}
	return inertObs
}

// Evals reports the coalition trainings performed so far (cache misses).
func (o *Oracle) Evals() int { return int(o.evals.Load()) }

// CacheHits reports the utilities served without training: completed-cache
// hits plus calls that waited on another goroutine's in-flight training.
func (o *Oracle) CacheHits() int { return int(o.hits.Load()) }

// shard spreads masks across shards with a Fibonacci hash; nearby masks
// (singleton and leave-one-out families differ in one bit) land apart.
func (o *Oracle) shard(mask uint64) *oracleShard {
	return &o.shards[(mask*0x9E3779B97F4A7C15)>>(64-4)]
}

// checkMask rejects masks with bits beyond the federation size; such masks
// would alias a real coalition after truncation.
func (o *Oracle) checkMask(mask uint64) error {
	if o.n < MaxParticipants && mask>>uint(o.n) != 0 {
		return fmt.Errorf("valuation: coalition mask %#x has bits outside the %d-participant federation", mask, o.n)
	}
	return nil
}

// acquire blocks until a training slot is free; release returns it.
func (o *Oracle) acquire() {
	o.semOnce.Do(func() {
		w := o.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		o.sem = make(chan struct{}, w)
	})
	o.sem <- struct{}{}
}

func (o *Oracle) release() { <-o.sem }

// Utility returns v(D_S) for the coalition mask, training at most once per
// distinct coalition across all goroutines. Safe for concurrent use.
func (o *Oracle) Utility(mask uint64) (float64, error) {
	if err := o.checkMask(mask); err != nil {
		return 0, err
	}
	if mask == 0 {
		return o.EmptyUtility, nil
	}
	sh := o.shard(mask)
	sh.mu.Lock()
	if u, ok := sh.done[mask]; ok {
		sh.mu.Unlock()
		o.hits.Add(1)
		o.obs().CacheHits.Inc()
		return u, nil
	}
	if c, ok := sh.inflight[mask]; ok {
		sh.mu.Unlock()
		<-c.done
		if c.err == nil {
			o.hits.Add(1)
			o.obs().DedupWaits.Inc()
		}
		return c.val, c.err
	}
	c := &inflight{done: make(chan struct{})}
	sh.inflight[mask] = c
	sh.mu.Unlock()

	c.val, c.err = o.train(mask)

	sh.mu.Lock()
	if c.err == nil {
		sh.done[mask] = c.val
	}
	delete(sh.inflight, mask)
	sh.mu.Unlock()
	close(c.done)
	if c.err == nil && o.ckpt != nil {
		if o.ckpt.record(mask, c.val) {
			o.obs().CheckpointWrites.Inc()
		}
	}
	return c.val, c.err
}

// train performs the actual FedAvg retraining + evaluation for one mask,
// gated by the worker semaphore.
func (o *Oracle) train(mask uint64) (float64, error) {
	o.acquire()
	defer o.release()
	o.obs().InFlight.Add(1)
	defer o.obs().InFlight.Add(-1)
	start := time.Now()

	var u float64
	if o.trainFn != nil {
		var err error
		if u, err = o.trainFn(mask); err != nil {
			return 0, err
		}
	} else {
		var coalition []*fl.Participant
		for i, p := range o.parts {
			if mask&(1<<uint(i)) != 0 {
				coalition = append(coalition, p)
			}
		}
		model, err := o.trainer.Train(coalition)
		if err != nil {
			return 0, fmt.Errorf("valuation: training coalition %b: %w", mask, err)
		}
		u = model.Accuracy(o.testX, o.testY)
	}
	o.evals.Add(1)
	o.obs().Evals.Inc()
	o.obs().TrainSeconds.ObserveSince(start)
	return u, nil
}

// EvalBatch warms the cache for every mask in the plan, evaluating distinct
// uncached coalitions concurrently (bounded by Workers). Duplicate and
// already-cached masks cost nothing. On failure it returns the error of the
// earliest failing mask in plan order, so error reporting is deterministic
// regardless of scheduling.
func (o *Oracle) EvalBatch(plan []uint64) error {
	start := time.Now()
	seen := make(map[uint64]struct{}, len(plan))
	distinct := plan[:0:0]
	for _, m := range plan {
		if _, ok := seen[m]; ok {
			continue
		}
		seen[m] = struct{}{}
		distinct = append(distinct, m)
	}
	errs := make([]error, len(distinct))
	var wg sync.WaitGroup
	for i, m := range distinct {
		wg.Add(1)
		go func(i int, m uint64) {
			defer wg.Done()
			_, errs[i] = o.Utility(m)
		}(i, m)
	}
	wg.Wait()
	o.obs().BatchSeconds.ObserveSince(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
