package valuation

import (
	"repro/internal/telemetry"
)

// Obs collects the valuation engine's instrumentation: how many coalition
// retrainings actually ran, how much the cache and the in-flight dedup
// absorbed, how many trainings are running right now, and how long one
// coalition training takes. A nil Obs on Oracle disables all of it; the
// zero value is inert (every instrument is a nil-safe no-op), so the
// utility hot path never branches on more than one pointer.
type Obs struct {
	// Evals counts actual coalition trainings (cache misses).
	Evals *telemetry.Counter
	// CacheHits counts utilities served from the completed cache.
	CacheHits *telemetry.Counter
	// DedupWaits counts calls that blocked on another goroutine's
	// in-flight training of the same coalition instead of retraining.
	DedupWaits *telemetry.Counter
	// InFlight gauges concurrent coalition trainings (semaphore occupancy).
	InFlight *telemetry.Gauge
	// TrainSeconds times one coalition training + evaluation.
	TrainSeconds *telemetry.Histogram
	// BatchSeconds times one EvalBatch call end-to-end.
	BatchSeconds *telemetry.Histogram
	// CheckpointRestored counts utilities seeded into the cache by
	// AttachCheckpoint — trainings a resumed run did NOT repeat.
	CheckpointRestored *telemetry.Counter
	// CheckpointWrites counts utilities durably recorded to the checkpoint.
	CheckpointWrites *telemetry.Counter
	// CheckpointSkipped counts restored records rejected at attach time
	// (masks outside the federation).
	CheckpointSkipped *telemetry.Counter
}

// inertObs is the shared no-op instrument set used when Oracle.Obs is nil:
// every field is a nil instrument, and nil instruments no-op on use.
var inertObs = &Obs{}

// NewObs registers the valuation metric family on r and returns the handle
// to set as Oracle.Obs.
func NewObs(r *telemetry.Registry) *Obs {
	return &Obs{
		Evals:      r.Counter("ctfl_valuation_evals_total", "coalition FedAvg retrainings performed"),
		CacheHits:  r.Counter(`ctfl_valuation_served_total{source="cache"}`, "coalition utilities served from the completed cache"),
		DedupWaits: r.Counter(`ctfl_valuation_served_total{source="inflight"}`, "coalition utilities served by waiting on an in-flight training"),
		InFlight:   r.Gauge("ctfl_valuation_inflight_trainings", "coalition trainings currently running"),
		TrainSeconds: r.Histogram("ctfl_valuation_train_seconds",
			"one coalition FedAvg training + evaluation", nil),
		BatchSeconds: r.Histogram("ctfl_valuation_batch_seconds",
			"one EvalBatch plan evaluated end-to-end", nil),
		CheckpointRestored: r.Counter("ctfl_valuation_checkpoint_restored_total",
			"coalition utilities restored from a checkpoint at attach time"),
		CheckpointWrites: r.Counter("ctfl_valuation_checkpoint_writes_total",
			"coalition utilities durably recorded to the checkpoint"),
		CheckpointSkipped: r.Counter("ctfl_valuation_checkpoint_skipped_total",
			"checkpoint records rejected at attach time (foreign federation size)"),
	}
}
