package valuation

import (
	"errors"
	"math"
	"math/bits"
	"testing"

	"repro/internal/stats"
)

// tableII is the utility function of the paper's Table II motivating example:
// A and B hold similar sufficient data, C holds complementary critical data.
// Masks: bit0 = A, bit1 = B, bit2 = C.
func tableII(mask uint64) (float64, error) {
	switch mask {
	case 0b000:
		return 0.50, nil
	case 0b001, 0b010, 0b011: // A, B, AB
		return 0.80, nil
	case 0b100: // C
		return 0.65, nil
	case 0b101, 0b110, 0b111: // AC, BC, ABC
		return 0.90, nil
	}
	return 0, errors.New("bad mask")
}

func TestIndividualValues(t *testing.T) {
	got, err := IndividualValues(3, tableII)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.80, 0.80, 0.65}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Individual = %v, want %v", got, want)
		}
	}
}

func TestLeaveOneOutValues(t *testing.T) {
	got, err := LeaveOneOutValues(3, tableII)
	if err != nil {
		t.Fatal(err)
	}
	// v(N)=0.9; removing A → BC = 0.9 (loss 0), removing B likewise,
	// removing C → AB = 0.8 (loss 0.1). The substitutability blindness the
	// paper criticizes: A and B look worthless.
	want := []float64{0, 0, 0.1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("LOO = %v, want %v", got, want)
		}
	}
}

func TestExactShapleyTableII(t *testing.T) {
	got, err := ExactShapley(3, tableII)
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation over all 6 orderings (see EXPERIMENTS.md):
	// phi(A) = phi(B) = 0.85/6, phi(C) = 0.70/6.
	want := []float64{0.85 / 6, 0.85 / 6, 0.70 / 6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Shapley = %v, want %v", got, want)
		}
	}
	// Efficiency: sums to v(N) − v(∅).
	if math.Abs(stats.Sum(got)-0.4) > 1e-9 {
		t.Fatalf("efficiency violated: sum = %v", stats.Sum(got))
	}
}

func TestExactShapleyDummyAndSymmetry(t *testing.T) {
	// Additive game: v(S) = sum of member worths; Shapley must return the
	// worths exactly (dummy + additivity axioms).
	worth := []float64{0.1, 0.25, 0, 0.4}
	v := func(mask uint64) (float64, error) {
		s := 0.0
		for i, w := range worth {
			if mask&(1<<uint(i)) != 0 {
				s += w
			}
		}
		return s, nil
	}
	got, err := ExactShapley(4, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range worth {
		if math.Abs(got[i]-worth[i]) > 1e-9 {
			t.Fatalf("additive game Shapley = %v, want %v", got, worth)
		}
	}
}

func TestExactShapleyRejectsLargeN(t *testing.T) {
	if _, err := ExactShapley(21, tableII); err == nil {
		t.Fatal("n=21 should be rejected")
	}
}

func TestSampledShapleyConvergesToExact(t *testing.T) {
	exact, err := ExactShapley(3, tableII)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SampledShapley(3, tableII, ShapleyConfig{
		Permutations: 3000,
		Rand:         stats.NewRNG(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(got[i]-exact[i]) > 0.01 {
			t.Fatalf("sampled %v vs exact %v", got, exact)
		}
	}
}

func TestSampledShapleyTruncationPreservesRanking(t *testing.T) {
	exact, _ := ExactShapley(3, tableII)
	got, err := SampledShapley(3, tableII, ShapleyConfig{
		Permutations:  2000,
		TruncationEps: 0.005,
		Rand:          stats.NewRNG(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exact scores tie A and B, so rank correlation is ill-conditioned;
	// check absolute error and that C stays ranked last instead.
	for i := range exact {
		if math.Abs(got[i]-exact[i]) > 0.02 {
			t.Fatalf("truncated sampling drifted: exact %v got %v", exact, got)
		}
	}
	if got[2] >= got[0] || got[2] >= got[1] {
		t.Fatalf("C should rank last: %v", got)
	}
}

func TestSampledShapleyNeedsRand(t *testing.T) {
	if _, err := SampledShapley(3, tableII, ShapleyConfig{}); err == nil {
		t.Fatal("missing Rand should error")
	}
}

func TestSampledShapleyDefaultBudget(t *testing.T) {
	evals := 0
	v := func(mask uint64) (float64, error) {
		evals++
		return float64(bits.OnesCount64(mask)), nil
	}
	n := 8
	if _, err := SampledShapley(n, v, ShapleyConfig{Rand: stats.NewRNG(1)}); err != nil {
		t.Fatal(err)
	}
	// Default permutations = ceil(n log2(n+1)) → marginal evaluations
	// Θ(n² log n). With memoization disabled here, evals ≈ perms·n + 2.
	perms := int(math.Ceil(float64(n) * math.Log2(float64(n)+1)))
	want := perms*n + 2
	if evals != want {
		t.Fatalf("evals = %d, want %d", evals, want)
	}
}

func TestSampledLeastCoreTableII(t *testing.T) {
	got, err := SampledLeastCore(3, tableII, LeastCoreConfig{
		Samples: 6, // covers all non-trivial coalitions of n=3
		Rand:    stats.NewRNG(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Group rationality is a hard constraint.
	if math.Abs(stats.Sum(got)-0.9) > 1e-6 {
		t.Fatalf("least core sum = %v, want 0.9", stats.Sum(got))
	}
	// Core constraints with minimal deficit: every sampled singleton must be
	// within e* of its standalone value. Verify feasibility of returned phi
	// with the optimal deficit recovered from the binding constraint.
	var eStar float64
	for _, m := range []uint64{0b001, 0b010, 0b100, 0b011, 0b101, 0b110} {
		u, _ := tableII(m)
		sum := 0.0
		for i := 0; i < 3; i++ {
			if m&(1<<uint(i)) != 0 {
				sum += got[i]
			}
		}
		if d := u - sum; d > eStar {
			eStar = d
		}
	}
	// For this game the optimal least-core deficit is 0.35:
	// the constraints phi_A >= 0.8 - e, phi_B >= 0.8 - e, phi_C >= 0.65 - e
	// and sum = 0.9 force e >= (0.8+0.8+0.65-0.9)/3 = 0.45; pairwise
	// constraints are weaker. Recheck: AB: phi_A+phi_B >= 0.8 - e;
	// AC,BC >= 0.9 - e. LP optimum e* = 0.45.
	if eStar > 0.451 {
		t.Fatalf("least-core deficit %v exceeds optimum 0.45", eStar)
	}
}

func TestSampledLeastCoreNeedsRand(t *testing.T) {
	if _, err := SampledLeastCore(3, tableII, LeastCoreConfig{}); err == nil {
		t.Fatal("missing Rand should error")
	}
}

func TestUtilityErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	bad := func(mask uint64) (float64, error) {
		if bits.OnesCount64(mask) >= 2 {
			return 0, boom
		}
		return 0.5, nil
	}
	if _, err := LeaveOneOutValues(3, bad); !errors.Is(err, boom) {
		t.Fatalf("LOO error = %v", err)
	}
	if _, err := ExactShapley(3, bad); !errors.Is(err, boom) {
		t.Fatalf("Shapley error = %v", err)
	}
	if _, err := SampledShapley(3, bad, ShapleyConfig{Rand: stats.NewRNG(1)}); !errors.Is(err, boom) {
		t.Fatalf("sampled Shapley error = %v", err)
	}
	if _, err := SampledLeastCore(3, bad, LeastCoreConfig{Rand: stats.NewRNG(1)}); !errors.Is(err, boom) {
		t.Fatalf("least core error = %v", err)
	}
}

func TestFullMaskPanicsAbove64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic at n=65")
		}
	}()
	fullMask(65)
}
