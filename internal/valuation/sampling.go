package valuation

// Variance-reduced Shapley estimators. The paper's accelerated baseline
// cites permutation-sampling techniques (Mitchell et al., "Sampling
// permutations for Shapley value estimation"); this file implements the two
// standard ones on top of the same Utility abstraction:
//
//   - antithetic sampling: evaluate each sampled permutation together with
//     its reverse; marginal contributions in the two directions are
//     negatively correlated, which cancels much of the sampling noise;
//   - stratified sampling: estimate phi(i) = (1/n) sum_k E[marginal of i at
//     position k] with an explicit per-position average, guaranteeing every
//     position contributes equally instead of relying on chance.

import (
	"fmt"
	"math"
	"math/rand"
)

// AntitheticShapley estimates Shapley values from permutation pairs
// (sigma, reverse(sigma)). pairs is the number of pairs; 0 derives it from
// the same Θ(n² log n) budget as SampledShapley (half the permutations,
// each evaluated twice).
func AntitheticShapley(n int, v Utility, pairs int, r *rand.Rand) ([]float64, error) {
	if r == nil {
		return nil, fmt.Errorf("valuation: AntitheticShapley needs a Rand")
	}
	if pairs <= 0 {
		pairs = int(math.Ceil(float64(n) * math.Log2(float64(n)+1) / 2))
		if pairs < 1 {
			pairs = 1
		}
	}
	vEmpty, err := v(0)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	walk := func(order []int) error {
		mask := uint64(0)
		prev := vEmpty
		for _, i := range order {
			mask |= 1 << uint(i)
			cur, err := v(mask)
			if err != nil {
				return err
			}
			out[i] += cur - prev
			prev = cur
		}
		return nil
	}
	for p := 0; p < pairs; p++ {
		order := r.Perm(n)
		if err := walk(order); err != nil {
			return nil, err
		}
		rev := make([]int, n)
		for i, x := range order {
			rev[n-1-i] = x
		}
		if err := walk(rev); err != nil {
			return nil, err
		}
	}
	for i := range out {
		out[i] /= float64(2 * pairs)
	}
	return out, nil
}

// StratifiedShapley estimates phi(i) by averaging, for every position k in
// [0, n), the marginal contribution of i when inserted after a random
// (k)-subset of the other players — samplesPerStratum draws per (i, k)
// stratum. 0 derives samplesPerStratum from the Θ(n² log n) budget.
func StratifiedShapley(n int, v Utility, samplesPerStratum int, r *rand.Rand) ([]float64, error) {
	if r == nil {
		return nil, fmt.Errorf("valuation: StratifiedShapley needs a Rand")
	}
	if samplesPerStratum <= 0 {
		samplesPerStratum = int(math.Ceil(math.Log2(float64(n) + 1)))
		if samplesPerStratum < 1 {
			samplesPerStratum = 1
		}
	}
	out := make([]float64, n)
	others := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		others = others[:0]
		for j := 0; j < n; j++ {
			if j != i {
				others = append(others, j)
			}
		}
		phi := 0.0
		for k := 0; k < n; k++ {
			stratum := 0.0
			for s := 0; s < samplesPerStratum; s++ {
				r.Shuffle(len(others), func(a, b int) { others[a], others[b] = others[b], others[a] })
				mask := uint64(0)
				for _, j := range others[:k] {
					mask |= 1 << uint(j)
				}
				before, err := v(mask)
				if err != nil {
					return nil, err
				}
				after, err := v(mask | 1<<uint(i))
				if err != nil {
					return nil, err
				}
				stratum += after - before
			}
			phi += stratum / float64(samplesPerStratum)
		}
		out[i] = phi / float64(n)
	}
	return out, nil
}
