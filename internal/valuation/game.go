// Package valuation implements the four baseline contribution-estimation
// schemes the paper compares CTFL against (Section II-B / VI-A): Individual,
// LeaveOneOut, ShapleyValue (truncated Monte-Carlo permutation sampling with
// Θ(n² log n) marginal evaluations, per Liu et al.'s GTG-Shapley), and
// LeastCore (sampled coalition constraints solved with the repo's simplex
// LP). The game-theoretic cores are expressed over an abstract coalition
// utility so they can be tested against hand-built games; the FL bindings in
// schemes.go connect them to FedAvg retraining through a memoizing Oracle.
package valuation

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/lp"
)

// Utility maps a coalition (bitmask over participant indices; bit i set
// means participant i joins) to its data utility v(D_S).
type Utility func(mask uint64) (float64, error)

// fullMask returns the grand-coalition mask for n participants.
func fullMask(n int) uint64 {
	if n >= 64 {
		panic("valuation: more than 63 participants unsupported")
	}
	return (1 << uint(n)) - 1
}

// IndividualValues implements the Individual scheme: phi(i) = v({i}).
func IndividualValues(n int, v Utility) ([]float64, error) {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		u, err := v(1 << uint(i))
		if err != nil {
			return nil, err
		}
		out[i] = u
	}
	return out, nil
}

// LeaveOneOutValues implements phi(i) = v(D_N) - v(D_{N\i}).
func LeaveOneOutValues(n int, v Utility) ([]float64, error) {
	full := fullMask(n)
	vn, err := v(full)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		u, err := v(full &^ (1 << uint(i)))
		if err != nil {
			return nil, err
		}
		out[i] = vn - u
	}
	return out, nil
}

// ExactShapley computes the Shapley value by full subset enumeration:
// phi(i) = sum over S ⊆ N\{i} of |S|!(n-|S|-1)!/n! · (v(S∪{i}) − v(S)).
// Exponential in n; intended for small games and as ground truth in tests.
func ExactShapley(n int, v Utility) ([]float64, error) {
	if n > 20 {
		return nil, fmt.Errorf("valuation: ExactShapley limited to n <= 20, got %d", n)
	}
	// Precompute the coefficient for each coalition size.
	fact := make([]float64, n+1)
	fact[0] = 1
	for i := 1; i <= n; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	coef := make([]float64, n) // coef[s] for |S| = s
	for s := 0; s < n; s++ {
		coef[s] = fact[s] * fact[n-s-1] / fact[n]
	}
	out := make([]float64, n)
	full := fullMask(n)
	// Cache utilities of every subset once.
	util := make([]float64, full+1)
	for mask := uint64(0); mask <= full; mask++ {
		u, err := v(mask)
		if err != nil {
			return nil, err
		}
		util[mask] = u
	}
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		for mask := uint64(0); mask <= full; mask++ {
			if mask&bit != 0 {
				continue
			}
			s := bits.OnesCount64(mask)
			out[i] += coef[s] * (util[mask|bit] - util[mask])
		}
	}
	return out, nil
}

// ShapleyConfig tunes SampledShapley.
type ShapleyConfig struct {
	// Permutations sampled; 0 means ceil(n · log2(n)) so the total marginal
	// evaluations are Θ(n² log n), the budget the paper grants the
	// accelerated baseline.
	Permutations int
	// TruncationEps enables GTG-Shapley-style early stopping within a
	// permutation: once the running coalition's utility is within this
	// distance of v(D_N), the remaining marginals are taken as zero.
	TruncationEps float64
	// Rand drives permutation sampling; required.
	Rand *rand.Rand
}

// SampledShapley estimates the Shapley value by Monte-Carlo permutation
// sampling with truncation.
func SampledShapley(n int, v Utility, cfg ShapleyConfig) ([]float64, error) {
	if cfg.Rand == nil {
		return nil, fmt.Errorf("valuation: SampledShapley needs a Rand")
	}
	perms := cfg.Permutations
	if perms <= 0 {
		perms = int(math.Ceil(float64(n) * math.Log2(float64(n)+1)))
		if perms < 2 {
			perms = 2
		}
	}
	full := fullMask(n)
	vFull, err := v(full)
	if err != nil {
		return nil, err
	}
	vEmpty, err := v(0)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for p := 0; p < perms; p++ {
		order := cfg.Rand.Perm(n)
		mask := uint64(0)
		prev := vEmpty
		truncated := false
		for _, i := range order {
			if truncated {
				// Remaining marginals are treated as zero.
				continue
			}
			mask |= 1 << uint(i)
			cur, err := v(mask)
			if err != nil {
				return nil, err
			}
			out[i] += cur - prev
			prev = cur
			if cfg.TruncationEps > 0 && math.Abs(vFull-cur) < cfg.TruncationEps {
				truncated = true
			}
		}
	}
	for i := range out {
		out[i] /= float64(perms)
	}
	return out, nil
}

// LeastCoreConfig tunes SampledLeastCore.
type LeastCoreConfig struct {
	// Samples is the number of random coalition constraints; 0 means
	// ceil(n² log2 n), matching the paper's accelerated baseline budget.
	Samples int
	// Rand drives coalition sampling; required.
	Rand *rand.Rand
}

// SampledLeastCore solves the least-core LP of Eq. 2 over sampled coalition
// constraints: minimize e subject to sum_{i in S} phi(i) + e >= v(D_S) for
// each sampled S, and sum_i phi(i) = v(D_N).
func SampledLeastCore(n int, v Utility, cfg LeastCoreConfig) ([]float64, error) {
	if cfg.Rand == nil {
		return nil, fmt.Errorf("valuation: SampledLeastCore needs a Rand")
	}
	samples := cfg.Samples
	if samples <= 0 {
		samples = int(math.Ceil(float64(n) * float64(n) * math.Log2(float64(n)+1)))
	}
	full := fullMask(n)
	vFull, err := v(full)
	if err != nil {
		return nil, err
	}

	seen := map[uint64]bool{}
	var masks []uint64
	// Always include the singleton coalitions: they anchor individual
	// rationality and keep the sampled LP from degenerate solutions.
	for i := 0; i < n; i++ {
		m := uint64(1) << uint(i)
		seen[m] = true
		masks = append(masks, m)
	}
	for len(masks) < samples {
		m := cfg.Rand.Uint64() & full
		if m == 0 || m == full || seen[m] {
			// Skip trivial or duplicate coalitions, but avoid an infinite
			// loop when few coalitions exist.
			if len(seen) >= int(full)-1 {
				break
			}
			continue
		}
		seen[m] = true
		masks = append(masks, m)
	}

	// Variables: phi_0..phi_{n-1}, e. All free.
	nv := n + 1
	prob := &lp.Problem{
		Objective: make([]float64, nv),
		FreeVars:  make([]bool, nv),
	}
	prob.Objective[n] = 1
	for i := range prob.FreeVars {
		prob.FreeVars[i] = true
	}
	for _, m := range masks {
		u, err := v(m)
		if err != nil {
			return nil, err
		}
		row := lp.Constraint{Coeffs: make([]float64, nv), Op: lp.GE, RHS: u}
		for i := 0; i < n; i++ {
			if m&(1<<uint(i)) != 0 {
				row.Coeffs[i] = 1
			}
		}
		row.Coeffs[n] = 1
		prob.Constraints = append(prob.Constraints, row)
	}
	eq := lp.Constraint{Coeffs: make([]float64, nv), Op: lp.EQ, RHS: vFull}
	for i := 0; i < n; i++ {
		eq.Coeffs[i] = 1
	}
	prob.Constraints = append(prob.Constraints, eq)

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("valuation: least-core LP: %w", err)
	}
	return sol.X[:n], nil
}
