// Package valuation implements the four baseline contribution-estimation
// schemes the paper compares CTFL against (Section II-B / VI-A): Individual,
// LeaveOneOut, ShapleyValue (truncated Monte-Carlo permutation sampling with
// Θ(n² log n) marginal evaluations, per Liu et al.'s GTG-Shapley), and
// LeastCore (sampled coalition constraints solved with the repo's simplex
// LP). The game-theoretic cores are expressed over an abstract coalition
// utility so they can be tested against hand-built games; the FL bindings in
// schemes.go connect them to FedAvg retraining through a memoizing Oracle.
package valuation

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/lp"
)

// Utility maps a coalition (bitmask over participant indices; bit i set
// means participant i joins) to its data utility v(D_S).
type Utility func(mask uint64) (float64, error)

// fullMask returns the grand-coalition mask for n participants.
func fullMask(n int) uint64 {
	if n > MaxParticipants {
		panic("valuation: more than 64 participants unsupported")
	}
	if n == MaxParticipants {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// IndividualValues implements the Individual scheme: phi(i) = v({i}).
func IndividualValues(n int, v Utility) ([]float64, error) {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		u, err := v(1 << uint(i))
		if err != nil {
			return nil, err
		}
		out[i] = u
	}
	return out, nil
}

// LeaveOneOutValues implements phi(i) = v(D_N) - v(D_{N\i}).
func LeaveOneOutValues(n int, v Utility) ([]float64, error) {
	full := fullMask(n)
	vn, err := v(full)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		u, err := v(full &^ (1 << uint(i)))
		if err != nil {
			return nil, err
		}
		out[i] = vn - u
	}
	return out, nil
}

// ExactShapley computes the Shapley value by full subset enumeration:
// phi(i) = sum over S ⊆ N\{i} of |S|!(n-|S|-1)!/n! · (v(S∪{i}) − v(S)).
// Exponential in n; intended for small games and as ground truth in tests.
func ExactShapley(n int, v Utility) ([]float64, error) {
	if n > 20 {
		return nil, fmt.Errorf("valuation: ExactShapley limited to n <= 20, got %d", n)
	}
	// Precompute the coefficient for each coalition size.
	fact := make([]float64, n+1)
	fact[0] = 1
	for i := 1; i <= n; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	coef := make([]float64, n) // coef[s] for |S| = s
	for s := 0; s < n; s++ {
		coef[s] = fact[s] * fact[n-s-1] / fact[n]
	}
	out := make([]float64, n)
	full := fullMask(n)
	// Cache utilities of every subset once.
	util := make([]float64, full+1)
	for mask := uint64(0); mask <= full; mask++ {
		u, err := v(mask)
		if err != nil {
			return nil, err
		}
		util[mask] = u
	}
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		for mask := uint64(0); mask <= full; mask++ {
			if mask&bit != 0 {
				continue
			}
			s := bits.OnesCount64(mask)
			out[i] += coef[s] * (util[mask|bit] - util[mask])
		}
	}
	return out, nil
}

// ShapleyConfig tunes SampledShapley.
type ShapleyConfig struct {
	// Permutations sampled; 0 means ceil(n · log2(n)) so the total marginal
	// evaluations are Θ(n² log n), the budget the paper grants the
	// accelerated baseline.
	Permutations int
	// TruncationEps enables GTG-Shapley-style early stopping within a
	// permutation: once the running coalition's utility is within this
	// distance of v(D_N), the remaining marginals are taken as zero.
	TruncationEps float64
	// Rand drives permutation sampling; required. All permutations are
	// drawn up front (the utility function never consumes Rand, so the
	// drawn sequence is identical to the historical interleaved draws).
	Rand *rand.Rand
	// Workers is the number of permutations walked concurrently; 0 or 1
	// walks them sequentially. The estimate is bit-identical for every
	// worker count: each permutation walk is self-contained (truncation
	// depends only on its own running utility), per-walk marginals are
	// recorded in walk order, and the reduction replays them in permutation
	// order. Only use Workers > 1 with a concurrency-safe utility (Oracle).
	Workers int
	// Warm, when non-nil, receives the non-speculative mask plan (empty,
	// grand, and depth-1 permutation prefixes) before walking so a batching
	// oracle can train them concurrently. Oracle.EvalBatch fits.
	Warm func([]uint64) error
	// Truncated, when non-nil, is incremented once per permutation walk the
	// TruncationEps early stop actually cut short (walks that reach the last
	// participant are not counted). The streaming engine surfaces this as
	// its within-round truncation telemetry.
	Truncated *atomic.Int64
	// Variance, when non-nil, receives the per-participant sample variance
	// of the per-permutation marginal estimates (length n). This is the
	// run-to-run uncertainty FedRandom (arXiv 2602.05693) argues sampled
	// estimators must surface: the estimate is a mean over Permutations
	// draws, so its standard error is sqrt(variance/Permutations).
	// Truncated walks contribute zero marginals, exactly as they do to the
	// estimate itself. Telemetry only — it never feeds back into scores.
	Variance *[]float64
	// PermCount, when non-nil, receives the number of permutations actually
	// sampled (after the zero-value default is resolved).
	PermCount *int
}

// SampledShapley estimates the Shapley value by Monte-Carlo permutation
// sampling with truncation. With cfg.Workers > 1 the sampled permutations
// are walked concurrently against a shared (deduplicating) utility; the
// result is bit-identical to the sequential walk.
func SampledShapley(n int, v Utility, cfg ShapleyConfig) ([]float64, error) {
	if cfg.Rand == nil {
		return nil, fmt.Errorf("valuation: SampledShapley needs a Rand")
	}
	nperm := cfg.Permutations
	if nperm <= 0 {
		nperm = int(math.Ceil(float64(n) * math.Log2(float64(n)+1)))
		if nperm < 2 {
			nperm = 2
		}
	}
	perms := make([][]int, nperm)
	for p := range perms {
		perms[p] = cfg.Rand.Perm(n)
	}
	if cfg.Warm != nil {
		if err := cfg.Warm(PlanPermutationPrefixes(n, perms, 1)); err != nil {
			return nil, err
		}
	}
	full := fullMask(n)
	vFull, err := v(full)
	if err != nil {
		return nil, err
	}
	vEmpty, err := v(0)
	if err != nil {
		return nil, err
	}

	// One permutation's walk: marginals recorded in walk order. Truncated
	// tails record nothing, exactly like the sequential accumulation (which
	// never added a zero term for them).
	type step struct {
		idx   int
		delta float64
	}
	walks := make([][]step, nperm)
	walk := func(p int) error {
		order := perms[p]
		steps := make([]step, 0, n)
		mask := uint64(0)
		prev := vEmpty
		for _, i := range order {
			mask |= 1 << uint(i)
			cur, err := v(mask)
			if err != nil {
				return err
			}
			steps = append(steps, step{idx: i, delta: cur - prev})
			prev = cur
			if cfg.TruncationEps > 0 && math.Abs(vFull-cur) < cfg.TruncationEps {
				if len(steps) < n && cfg.Truncated != nil {
					cfg.Truncated.Add(1)
				}
				break
			}
		}
		walks[p] = steps
		return nil
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > nperm {
		workers = nperm
	}
	if workers == 1 {
		for p := 0; p < nperm; p++ {
			if err := walk(p); err != nil {
				return nil, err
			}
		}
	} else {
		errs := make([]error, nperm)
		var wg sync.WaitGroup
		next := int64(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(atomic.AddInt64(&next, 1))
					if p >= nperm {
						return
					}
					errs[p] = walk(p)
				}
			}()
		}
		wg.Wait()
		// Deterministic error reporting: earliest failing permutation wins.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Reduce in permutation order, replaying marginals in walk order — the
	// float additions happen in exactly the sequence the sequential
	// implementation performed them, so the sums are bit-identical.
	out := make([]float64, n)
	for p := 0; p < nperm; p++ {
		for _, s := range walks[p] {
			out[s.idx] += s.delta
		}
	}
	for i := range out {
		out[i] /= float64(nperm)
	}
	if cfg.PermCount != nil {
		*cfg.PermCount = nperm
	}
	if cfg.Variance != nil {
		// Sample variance of the per-permutation estimates, accumulated in
		// permutation order so it is as deterministic as the estimate: a
		// participant a truncated walk never reached contributed a zero
		// marginal to that permutation.
		vr := make([]float64, n)
		row := make([]float64, n)
		for p := 0; p < nperm; p++ {
			for i := range row {
				row[i] = 0
			}
			for _, s := range walks[p] {
				row[s.idx] = s.delta
			}
			for i := range row {
				d := row[i] - out[i]
				vr[i] += d * d
			}
		}
		if nperm > 1 {
			for i := range vr {
				vr[i] /= float64(nperm - 1)
			}
		} else {
			for i := range vr {
				vr[i] = 0
			}
		}
		*cfg.Variance = vr
	}
	return out, nil
}

// LeastCoreConfig tunes SampledLeastCore.
type LeastCoreConfig struct {
	// Samples is the number of random coalition constraints; 0 means
	// ceil(n² log2 n), matching the paper's accelerated baseline budget.
	Samples int
	// Rand drives coalition sampling; required.
	Rand *rand.Rand
	// Warm, when non-nil, receives every sampled constraint mask (plus the
	// grand coalition) before the LP rows are built, so a batching oracle
	// can train them concurrently. Coalition sampling never consults the
	// utility, so the plan is complete up front and the LP — built
	// sequentially in sample order from the warm cache — is bit-identical
	// to the unbatched path. Oracle.EvalBatch fits.
	Warm func([]uint64) error
}

// SampledLeastCore solves the least-core LP of Eq. 2 over sampled coalition
// constraints: minimize e subject to sum_{i in S} phi(i) + e >= v(D_S) for
// each sampled S, and sum_i phi(i) = v(D_N).
func SampledLeastCore(n int, v Utility, cfg LeastCoreConfig) ([]float64, error) {
	if cfg.Rand == nil {
		return nil, fmt.Errorf("valuation: SampledLeastCore needs a Rand")
	}
	samples := cfg.Samples
	if samples <= 0 {
		samples = int(math.Ceil(float64(n) * float64(n) * math.Log2(float64(n)+1)))
	}
	full := fullMask(n)
	seen := map[uint64]bool{}
	var masks []uint64
	// Always include the singleton coalitions: they anchor individual
	// rationality and keep the sampled LP from degenerate solutions.
	for i := 0; i < n; i++ {
		m := uint64(1) << uint(i)
		seen[m] = true
		masks = append(masks, m)
	}
	for len(masks) < samples {
		m := cfg.Rand.Uint64() & full
		if m == 0 || m == full || seen[m] {
			// Skip trivial or duplicate coalitions, but avoid an infinite
			// loop when few coalitions exist.
			if len(seen) >= int(full)-1 {
				break
			}
			continue
		}
		seen[m] = true
		masks = append(masks, m)
	}
	if cfg.Warm != nil {
		if err := cfg.Warm(append([]uint64{full}, masks...)); err != nil {
			return nil, err
		}
	}
	vFull, err := v(full)
	if err != nil {
		return nil, err
	}

	// Variables: phi_0..phi_{n-1}, e. All free.
	nv := n + 1
	prob := &lp.Problem{
		Objective: make([]float64, nv),
		FreeVars:  make([]bool, nv),
	}
	prob.Objective[n] = 1
	for i := range prob.FreeVars {
		prob.FreeVars[i] = true
	}
	for _, m := range masks {
		u, err := v(m)
		if err != nil {
			return nil, err
		}
		row := lp.Constraint{Coeffs: make([]float64, nv), Op: lp.GE, RHS: u}
		for i := 0; i < n; i++ {
			if m&(1<<uint(i)) != 0 {
				row.Coeffs[i] = 1
			}
		}
		row.Coeffs[n] = 1
		prob.Constraints = append(prob.Constraints, row)
	}
	eq := lp.Constraint{Coeffs: make([]float64, nv), Op: lp.EQ, RHS: vFull}
	for i := 0; i < n; i++ {
		eq.Coeffs[i] = 1
	}
	prob.Constraints = append(prob.Constraints, eq)

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("valuation: least-core LP: %w", err)
	}
	return sol.X[:n], nil
}
