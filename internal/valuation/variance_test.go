package valuation

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// TestSampledShapleyVarianceAdditiveGame: in an additive game every
// participant's marginal is the same in every permutation, so the
// sampling variance is exactly zero.
func TestSampledShapleyVarianceAdditiveGame(t *testing.T) {
	n := 4
	weights := []float64{1, 2, 3, 4}
	v := func(mask uint64) (float64, error) {
		var s float64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s += weights[i]
			}
		}
		return s, nil
	}
	var vr []float64
	var nperm int
	phi, err := SampledShapley(n, v, ShapleyConfig{
		Permutations: 16,
		Rand:         rand.New(rand.NewSource(1)),
		Variance:     &vr,
		PermCount:    &nperm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nperm != 16 {
		t.Fatalf("PermCount = %d, want 16", nperm)
	}
	if len(vr) != n {
		t.Fatalf("variance length = %d", len(vr))
	}
	for i := range vr {
		if vr[i] != 0 {
			t.Fatalf("additive game variance[%d] = %v, want 0", i, vr[i])
		}
		if math.Abs(phi[i]-weights[i]) > 1e-12 {
			t.Fatalf("phi[%d] = %v, want %v", i, phi[i], weights[i])
		}
	}
}

// TestSampledShapleyVarianceSuperadditive: when marginals depend on join
// position, the per-permutation estimates spread and the variance must be
// positive — and deterministic for a fixed seed.
func TestSampledShapleyVarianceSuperadditive(t *testing.T) {
	n := 4
	v := func(mask uint64) (float64, error) {
		s := float64(bits.OnesCount64(mask))
		return s * s, nil
	}
	run := func() ([]float64, []float64) {
		var vr []float64
		phi, err := SampledShapley(n, v, ShapleyConfig{
			Permutations: 12,
			Rand:         rand.New(rand.NewSource(7)),
			Variance:     &vr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return phi, vr
	}
	phi, vr := run()
	anyPositive := false
	for _, x := range vr {
		if x < 0 {
			t.Fatalf("negative variance: %v", vr)
		}
		if x > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Fatalf("position-dependent game produced zero variance: %v", vr)
	}
	phi2, vr2 := run()
	for i := range vr {
		if math.Float64bits(vr[i]) != math.Float64bits(vr2[i]) ||
			math.Float64bits(phi[i]) != math.Float64bits(phi2[i]) {
			t.Fatal("variance output not deterministic for a fixed seed")
		}
	}
}

// TestSampledShapleyVarianceDoesNotPerturbEstimate: requesting variance
// must leave the estimate bit-identical to a run without it.
func TestSampledShapleyVarianceDoesNotPerturbEstimate(t *testing.T) {
	n := 5
	v := func(mask uint64) (float64, error) {
		s := float64(bits.OnesCount64(mask))
		return s * math.Sqrt(s+1), nil
	}
	base, err := SampledShapley(n, v, ShapleyConfig{
		Permutations: 10, Rand: rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var vr []float64
	withVar, err := SampledShapley(n, v, ShapleyConfig{
		Permutations: 10, Rand: rand.New(rand.NewSource(3)), Variance: &vr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if math.Float64bits(base[i]) != math.Float64bits(withVar[i]) {
			t.Fatalf("variance request changed estimate at %d", i)
		}
	}
}
