package valuation

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stats"
)

// The engine benchmarks model a coalition training as a fixed-latency call
// (an FL client round-trip plus a small deterministic utility computation)
// so they measure the batching/dedup/scheduling machinery rather than
// FedAvg's CPU cost. Latency-bound work overlaps even on a single core,
// which is exactly the regime the worker pool targets: in a real
// federation the oracle waits on clients, not on local arithmetic.
const benchTrainLatency = time.Millisecond

func benchTrainFn(mask uint64) (float64, error) {
	time.Sleep(benchTrainLatency)
	return syntheticUtility(mask)
}

// BenchmarkOracleBatch times one cold EvalBatch over the Individual +
// LeaveOneOut plans (33 distinct coalitions at n=16) at several worker
// counts. The workers=1 case is the sequential baseline the parallel runs
// are compared against.
func BenchmarkOracleBatch(b *testing.B) {
	const n = 16
	plan := append(PlanIndividual(n), PlanLeaveOneOut(n)...)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := newSyntheticOracle(n, benchTrainFn)
				o.Workers = workers
				if err := o.EvalBatch(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSampledShapleyParallel times a full truncated-Monte-Carlo
// Shapley estimate (8 permutations over 12 participants) against a cold
// oracle, with the permutation walkers and the prefix warm-up batch
// running at several worker counts. Scores are bit-identical across the
// sub-benchmarks (see TestSampledShapleyMatchesLegacySequential); only
// the wall clock changes.
func BenchmarkSampledShapleyParallel(b *testing.B) {
	const (
		n     = 12
		perms = 8
	)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := newSyntheticOracle(n, benchTrainFn)
				o.Workers = workers
				_, err := SampledShapley(n, o.Utility, ShapleyConfig{
					Permutations: perms,
					Rand:         stats.NewRNG(7),
					Workers:      workers,
					Warm:         o.EvalBatch,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
