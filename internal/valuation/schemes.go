package valuation

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/fl"
)

// Scheme is the common face of every contribution estimator in this
// repository (the four baselines here and core.Scheme for CTFL): given the
// participants and the federation-reserved test set, produce one score per
// participant.
type Scheme interface {
	Name() string
	Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error)
}

// Oracle memoizes coalition utilities: each distinct coalition is trained
// (FedAvg over its members) and evaluated once. This is the black-box
// retraining loop that makes the combinatorial baselines expensive — CTFL's
// whole point is to avoid it.
type Oracle struct {
	trainer *fl.Trainer
	parts   []*fl.Participant
	test    *dataset.Table

	cache map[uint64]float64
	// Evals counts actual trainings performed (cache misses).
	Evals int
	// EmptyUtility is v(∅); defaults to majority-class accuracy on the test
	// set (the best label-only guess, ~50% on balanced tasks as in the
	// paper's Table II).
	EmptyUtility float64
}

// NewOracle builds a memoizing utility oracle over a fixed participant list.
func NewOracle(trainer *fl.Trainer, parts []*fl.Participant, test *dataset.Table) *Oracle {
	pos := 0
	for _, in := range test.Instances {
		if in.Label == 1 {
			pos++
		}
	}
	maj := float64(pos) / float64(max(1, test.Len()))
	if maj < 0.5 {
		maj = 1 - maj
	}
	return &Oracle{
		trainer:      trainer,
		parts:        parts,
		test:         test,
		cache:        map[uint64]float64{},
		EmptyUtility: maj,
	}
}

// Utility returns v(D_S) for the coalition mask, training at most once per
// distinct coalition.
func (o *Oracle) Utility(mask uint64) (float64, error) {
	if mask == 0 {
		return o.EmptyUtility, nil
	}
	if u, ok := o.cache[mask]; ok {
		return u, nil
	}
	var coalition []*fl.Participant
	for i, p := range o.parts {
		if mask&(1<<uint(i)) != 0 {
			coalition = append(coalition, p)
		}
	}
	model, err := o.trainer.Train(coalition)
	if err != nil {
		return 0, fmt.Errorf("valuation: training coalition %b: %w", mask, err)
	}
	u := o.trainer.Evaluate(model, o.test)
	o.cache[mask] = u
	o.Evals++
	return u, nil
}

// oracleFor returns shared when non-nil (coalition evaluations are then
// reused across schemes — only valid while the participant list is
// unchanged) and a fresh memoizing oracle otherwise.
func oracleFor(shared *Oracle, trainer *fl.Trainer, parts []*fl.Participant, test *dataset.Table) *Oracle {
	if shared != nil {
		return shared
	}
	return NewOracle(trainer, parts, test)
}

// Individual is the baseline phi(i) = v({i}).
type Individual struct {
	Trainer *fl.Trainer
	// SharedOracle optionally reuses coalition evaluations across schemes.
	SharedOracle *Oracle
}

// Name implements Scheme.
func (s *Individual) Name() string { return "Individual" }

// Scores implements Scheme.
func (s *Individual) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	o := oracleFor(s.SharedOracle, s.Trainer, parts, test)
	return IndividualValues(len(parts), o.Utility)
}

// LeaveOneOut is the baseline phi(i) = v(D_N) − v(D_{N\i}).
type LeaveOneOut struct {
	Trainer *fl.Trainer
	// SharedOracle optionally reuses coalition evaluations across schemes.
	SharedOracle *Oracle
}

// Name implements Scheme.
func (s *LeaveOneOut) Name() string { return "LeaveOneOut" }

// Scores implements Scheme.
func (s *LeaveOneOut) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	o := oracleFor(s.SharedOracle, s.Trainer, parts, test)
	return LeaveOneOutValues(len(parts), o.Utility)
}

// ShapleyValue is the truncated Monte-Carlo Shapley baseline.
type ShapleyValue struct {
	Trainer *fl.Trainer
	// Permutations: 0 means the Θ(n² log n)-marginals default.
	Permutations int
	// TruncationEps for early stopping (default 0.01).
	TruncationEps float64
	// Seed for permutation sampling.
	Seed int64
	// SharedOracle optionally reuses coalition evaluations across schemes.
	SharedOracle *Oracle
}

// Name implements Scheme.
func (s *ShapleyValue) Name() string { return "ShapleyValue" }

// Scores implements Scheme.
func (s *ShapleyValue) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	o := oracleFor(s.SharedOracle, s.Trainer, parts, test)
	eps := s.TruncationEps
	if eps == 0 {
		eps = 0.01
	}
	return SampledShapley(len(parts), o.Utility, ShapleyConfig{
		Permutations:  s.Permutations,
		TruncationEps: eps,
		Rand:          rand.New(rand.NewSource(s.Seed + 101)),
	})
}

// LeastCore is the sampled least-core baseline.
type LeastCore struct {
	Trainer *fl.Trainer
	// Samples: 0 means the ceil(n² log2 n) default.
	Samples int
	// Seed for coalition sampling.
	Seed int64
	// SharedOracle optionally reuses coalition evaluations across schemes.
	SharedOracle *Oracle
}

// Name implements Scheme.
func (s *LeastCore) Name() string { return "LeastCore" }

// Scores implements Scheme.
func (s *LeastCore) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	o := oracleFor(s.SharedOracle, s.Trainer, parts, test)
	return SampledLeastCore(len(parts), o.Utility, LeastCoreConfig{
		Samples: s.Samples,
		Rand:    rand.New(rand.NewSource(s.Seed + 202)),
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
