package valuation

import (
	"math/rand"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/fl"
)

// schemeWorkers resolves a scheme's Workers field: 0 means GOMAXPROCS.
func schemeWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Scheme is the common face of every contribution estimator in this
// repository (the four baselines here and core.Scheme for CTFL): given the
// participants and the federation-reserved test set, produce one score per
// participant.
type Scheme interface {
	Name() string
	Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error)
}

// oracleFor returns shared when non-nil (coalition evaluations are then
// reused across schemes — only valid while the participant list is
// unchanged) and a fresh memoizing oracle otherwise, with the scheme's
// worker bound applied. A shared oracle keeps its own configuration.
func oracleFor(shared *Oracle, trainer *fl.Trainer, parts []*fl.Participant, test *dataset.Table, workers int) (*Oracle, error) {
	if shared != nil {
		return shared, nil
	}
	o, err := NewOracle(trainer, parts, test)
	if err != nil {
		return nil, err
	}
	o.Workers = workers
	return o, nil
}

// Individual is the baseline phi(i) = v({i}).
type Individual struct {
	Trainer *fl.Trainer
	// Workers bounds concurrent coalition trainings when the scheme builds
	// its own oracle; 0 means GOMAXPROCS.
	Workers int
	// SharedOracle optionally reuses coalition evaluations across schemes.
	SharedOracle *Oracle
}

// Name implements Scheme.
func (s *Individual) Name() string { return "Individual" }

// Scores implements Scheme. The n singleton coalitions are planned up
// front and trained as one parallel batch; the scores are then read from
// the warm cache in index order.
func (s *Individual) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	o, err := oracleFor(s.SharedOracle, s.Trainer, parts, test, s.Workers)
	if err != nil {
		return nil, err
	}
	if err := o.EvalBatch(PlanIndividual(len(parts))); err != nil {
		return nil, err
	}
	return IndividualValues(len(parts), o.Utility)
}

// LeaveOneOut is the baseline phi(i) = v(D_N) − v(D_{N\i}).
type LeaveOneOut struct {
	Trainer *fl.Trainer
	// Workers bounds concurrent coalition trainings when the scheme builds
	// its own oracle; 0 means GOMAXPROCS.
	Workers int
	// SharedOracle optionally reuses coalition evaluations across schemes.
	SharedOracle *Oracle
}

// Name implements Scheme.
func (s *LeaveOneOut) Name() string { return "LeaveOneOut" }

// Scores implements Scheme. The grand coalition and the n leave-one-out
// coalitions are planned up front and trained as one parallel batch.
func (s *LeaveOneOut) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	o, err := oracleFor(s.SharedOracle, s.Trainer, parts, test, s.Workers)
	if err != nil {
		return nil, err
	}
	if err := o.EvalBatch(PlanLeaveOneOut(len(parts))); err != nil {
		return nil, err
	}
	return LeaveOneOutValues(len(parts), o.Utility)
}

// ShapleyValue is the truncated Monte-Carlo Shapley baseline.
type ShapleyValue struct {
	Trainer *fl.Trainer
	// Permutations: 0 means the Θ(n² log n)-marginals default.
	Permutations int
	// TruncationEps for early stopping (default 0.01).
	TruncationEps float64
	// Seed for permutation sampling.
	Seed int64
	// Workers bounds both the concurrent permutation walkers and (when the
	// scheme builds its own oracle) concurrent coalition trainings; 0 means
	// GOMAXPROCS. The estimate is bit-identical for every worker count.
	Workers int
	// SharedOracle optionally reuses coalition evaluations across schemes.
	SharedOracle *Oracle
}

// Name implements Scheme.
func (s *ShapleyValue) Name() string { return "ShapleyValue" }

// Scores implements Scheme. Permutations are drawn up front; the
// non-speculative prefix plan is batch-trained, then the permutation walks
// run concurrently against the deduplicating oracle with GTG-style
// truncation intact.
func (s *ShapleyValue) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	o, err := oracleFor(s.SharedOracle, s.Trainer, parts, test, s.Workers)
	if err != nil {
		return nil, err
	}
	eps := s.TruncationEps
	if eps == 0 {
		eps = 0.01
	}
	return SampledShapley(len(parts), o.Utility, ShapleyConfig{
		Permutations:  s.Permutations,
		TruncationEps: eps,
		Rand:          rand.New(rand.NewSource(s.Seed + 101)),
		Workers:       schemeWorkers(s.Workers),
		Warm:          o.EvalBatch,
	})
}

// LeastCore is the sampled least-core baseline.
type LeastCore struct {
	Trainer *fl.Trainer
	// Samples: 0 means the ceil(n² log2 n) default.
	Samples int
	// Seed for coalition sampling.
	Seed int64
	// Workers bounds concurrent coalition trainings when the scheme builds
	// its own oracle; 0 means GOMAXPROCS.
	Workers int
	// SharedOracle optionally reuses coalition evaluations across schemes.
	SharedOracle *Oracle
}

// Name implements Scheme.
func (s *LeastCore) Name() string { return "LeastCore" }

// Scores implements Scheme. Constraint coalitions are sampled up front and
// trained as one parallel batch; the LP is then built sequentially from the
// warm cache in sample order.
func (s *LeastCore) Scores(parts []*fl.Participant, test *dataset.Table) ([]float64, error) {
	o, err := oracleFor(s.SharedOracle, s.Trainer, parts, test, s.Workers)
	if err != nil {
		return nil, err
	}
	return SampledLeastCore(len(parts), o.Utility, LeastCoreConfig{
		Samples: s.Samples,
		Rand:    rand.New(rand.NewSource(s.Seed + 202)),
		Warm:    o.EvalBatch,
	})
}
