package valuation

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/stats"
)

// tinyFederation builds a fast 3-participant tic-tac-toe federation with a
// small model so scheme integration tests stay quick.
func tinyFederation(t *testing.T) (*fl.Trainer, []*fl.Participant, *dataset.Table) {
	t.Helper()
	tab := dataset.TicTacToe()
	r := stats.NewRNG(11)
	train, test := tab.Split(r, 0.25)
	enc, err := dataset.NewEncoder(tab.Schema, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	parts := fl.PartitionSkewLabel(train, 3, 0.8, r)
	trainer := fl.NewTrainer(enc, fl.TrainConfig{
		Rounds: 1, LocalEpochs: 6, Parallel: true,
		Model: nn.Config{Hidden: []int{32}, Grafting: true, Seed: 5, BatchSize: 128},
	})
	return trainer, parts, test
}

func TestOracleMemoizes(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	trainer, parts, test := tinyFederation(t)
	o, err := NewOracle(trainer, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	u1, err := o.Utility(0b011)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := o.Utility(0b011)
	if err != nil {
		t.Fatal(err)
	}
	if u1 != u2 {
		t.Fatalf("memoized utility changed: %v vs %v", u1, u2)
	}
	if o.Evals() != 1 {
		t.Fatalf("Evals = %d, want 1", o.Evals())
	}
	if u1 < 0.4 || u1 > 1 {
		t.Fatalf("implausible utility %v", u1)
	}
	// Empty coalition: majority-class accuracy, no training.
	e, err := o.Utility(0)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0.5 || e > 0.8 {
		t.Fatalf("empty utility = %v, want majority fraction", e)
	}
	if o.Evals() != 1 {
		t.Fatalf("empty coalition should not train; Evals = %d", o.Evals())
	}
}

func TestAllSchemesProduceScores(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	trainer, parts, test := tinyFederation(t)
	schemes := []Scheme{
		&Individual{Trainer: trainer},
		&LeaveOneOut{Trainer: trainer},
		&ShapleyValue{Trainer: trainer, Permutations: 4, Seed: 1},
		&LeastCore{Trainer: trainer, Samples: 8, Seed: 1},
	}
	wantNames := []string{"Individual", "LeaveOneOut", "ShapleyValue", "LeastCore"}
	for i, s := range schemes {
		if s.Name() != wantNames[i] {
			t.Fatalf("scheme %d name = %q, want %q", i, s.Name(), wantNames[i])
		}
		scores, err := s.Scores(parts, test)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(scores) != len(parts) {
			t.Fatalf("%s returned %d scores for %d participants", s.Name(), len(scores), len(parts))
		}
	}
}
